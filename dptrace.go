// Package dptrace is a differentially-private network trace analysis
// library: a Go reproduction of "Differentially-Private Network Trace
// Analysis" (McSherry & Mahajan, SIGCOMM 2010), including a
// PINQ-style query engine, the paper's privacy-efficient analysis
// toolkit, and its six reference analyses.
//
// This package is the public facade: it re-exports the engine
// (internal/core), the noise mechanisms (internal/noise), and the
// toolkit (internal/toolkit) as one documented surface. The analyses
// themselves live under internal/analyses and are exercised through
// the runnable examples in examples/ and the experiment harness in
// cmd/experiments.
//
// # Quick start
//
// Wrap records in a protected Queryable with a total privacy budget,
// transform declaratively, and extract noisy aggregates:
//
//	packets := loadTrace()
//	q, budget := dptrace.NewQueryable(packets, 1.0, dptrace.NewSeededSource(1, 2))
//	grouped := dptrace.GroupBy(
//	    q.Where(func(p Packet) bool { return p.DstPort == 80 }),
//	    func(p Packet) IPv4 { return p.SrcIP })
//	heavy := grouped.Where(func(g dptrace.Group[IPv4, Packet]) bool {
//	    total := 0
//	    for _, p := range g.Items { total += int(p.Len) }
//	    return total > 1024
//	})
//	count, err := heavy.NoisyCount(0.1) // ≈ true count ± Laplace noise
//	_ = budget.Spent()                  // 0.2: GroupBy doubles sensitivity
//
// The privacy accounting follows the paper's Table 1: Where, Select,
// Distinct, Join, Concat and Intersect do not amplify sensitivity;
// GroupBy doubles it; Partition charges the maximum over its parts.
package dptrace

import (
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
)

// Re-exported engine types. Generic aliases keep the internal types
// and the public names fully interchangeable.
type (
	// Queryable is an opaque handle to a protected dataset.
	Queryable[T any] = core.Queryable[T]
	// Group is one GroupBy output record.
	Group[K comparable, T any] = core.Group[K, T]
	// RootAgent tracks a dataset's cumulative privacy expenditure.
	RootAgent = core.RootAgent
	// Source yields the uniform randomness behind the noise
	// mechanisms.
	Source = noise.Source
)

// Re-exported engine errors.
var (
	// ErrBudgetExceeded is returned when an aggregation would exceed
	// the remaining privacy budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrInvalidEpsilon is returned for non-positive or non-finite ε.
	ErrInvalidEpsilon = core.ErrInvalidEpsilon
	// ErrCanceled is returned by aggregations whose pipeline context
	// was cancelled before the privacy charge; such queries spend zero
	// ε. It wraps the context's own error, so errors.Is also matches
	// context.Canceled or context.DeadlineExceeded.
	ErrCanceled = core.ErrCanceled
)

// NewQueryable wraps records as a protected dataset with the given
// total privacy budget; see core.NewQueryable.
func NewQueryable[T any](records []T, budget float64, src Source) (*Queryable[T], *RootAgent) {
	return core.NewQueryable(records, budget, src)
}

// ExecOptions selects the pipeline execution strategy (sequential or
// data-parallel). Execution strategy never changes results: parallel
// runs produce byte-identical records, ordering, and privacy charges.
type ExecOptions = core.ExecOptions

// DefaultParallelThreshold is the record count below which parallel
// execution falls back to sequential.
const DefaultParallelThreshold = core.DefaultParallelThreshold

// SetDefaultExecOptions sets the process-wide execution strategy
// inherited by new Queryables; see core.SetDefaultExecOptions.
func SetDefaultExecOptions(o ExecOptions) { core.SetDefaultExecOptions(o) }

// DefaultExecOptions returns the current process-wide execution
// strategy.
func DefaultExecOptions() ExecOptions { return core.DefaultExecOptions() }

// ParallelExecutions reports how many operator executions have taken
// the data-parallel path process-wide (an observability counter).
func ParallelExecutions() uint64 { return core.ParallelExecutions() }

// NewSeededSource returns a deterministic noise source for
// reproducible experiments. Use NewCryptoSource for deployments.
func NewSeededSource(seed1, seed2 uint64) Source { return noise.NewSeededSource(seed1, seed2) }

// NewCryptoSource returns a crypto/rand-backed noise source.
func NewCryptoSource() Source { return noise.NewCryptoSource() }

// LaplaceStd returns the noise standard deviation √2/ε of a
// sensitivity-1 aggregate, letting analysts judge significance.
func LaplaceStd(epsilon float64) float64 { return noise.LaplaceStd(epsilon) }

// Select applies f to every record; no sensitivity increase.
func Select[T, U any](q *Queryable[T], f func(T) U) *Queryable[U] { return core.Select(q, f) }

// SelectMany maps each record to at most fanout records, amplifying
// sensitivity by fanout.
func SelectMany[T, U any](q *Queryable[T], fanout int, f func(T) []U) *Queryable[U] {
	return core.SelectMany(q, fanout, f)
}

// Distinct keeps one record per key; no sensitivity increase.
func Distinct[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[T] {
	return core.Distinct(q, key)
}

// GroupBy groups records by key, doubling sensitivity (Table 1).
func GroupBy[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[Group[K, T]] {
	return core.GroupBy(q, key)
}

// Join is PINQ's bounded join: both inputs grouped by key and zipped,
// so neither input's sensitivity increases.
func Join[T, U any, K comparable, R any](a *Queryable[T], b *Queryable[U], keyA func(T) K, keyB func(U) K, result func(T, U) R) *Queryable[R] {
	return core.Join(a, b, keyA, keyB, result)
}

// GroupJoin is the bounded join variant yielding whole matched groups.
func GroupJoin[T, U any, K comparable, R any](a *Queryable[T], b *Queryable[U], keyA func(T) K, keyB func(U) K, result func(K, []T, []U) R) *Queryable[R] {
	return core.GroupJoin(a, b, keyA, keyB, result)
}

// Intersect keeps q's records whose key appears in other.
func Intersect[T, U any, K comparable](q *Queryable[T], other *Queryable[U], keyQ func(T) K, keyOther func(U) K) *Queryable[T] {
	return core.Intersect(q, other, keyQ, keyOther)
}

// Except keeps q's records whose key does not appear in other.
func Except[T, U any, K comparable](q *Queryable[T], other *Queryable[U], keyQ func(T) K, keyOther func(U) K) *Queryable[T] {
	return core.Except(q, other, keyQ, keyOther)
}

// Partition splits a dataset into per-key parts whose total privacy
// cost is the maximum over parts, not the sum.
func Partition[T any, K comparable](q *Queryable[T], keys []K, keyOf func(T) K) map[K]*Queryable[T] {
	return core.Partition(q, keys, keyOf)
}

// AggOption configures the Sum and Average aggregations.
type AggOption func(*aggConfig)

type aggConfig struct {
	bound float64
}

// WithBound clamps each record's contribution to [-bound, bound]
// (default 1.0), with correspondingly scaled noise. A wider bound
// admits larger true contributions at the price of proportionally
// more noise for the same ε.
func WithBound(bound float64) AggOption {
	return func(c *aggConfig) { c.bound = bound }
}

func applyAggOptions(opts []AggOption) aggConfig {
	c := aggConfig{bound: 1.0}
	for _, opt := range opts {
		if opt != nil {
			opt(&c)
		}
	}
	return c
}

// Sum returns the noisy sum of f over the dataset, each contribution
// clamped to ±bound (default 1.0, see WithBound), plus Laplace noise
// of std bound·√2/ε.
func Sum[T any](q *Queryable[T], epsilon float64, f func(T) float64, opts ...AggOption) (float64, error) {
	c := applyAggOptions(opts)
	return core.NoisySumScaled(q, epsilon, c.bound, f)
}

// Average returns the noisy average of f over the dataset, each
// contribution clamped to ±bound (default 1.0, see WithBound); noise
// std ≈ bound·√8/(εn).
func Average[T any](q *Queryable[T], epsilon float64, f func(T) float64, opts ...AggOption) (float64, error) {
	c := applyAggOptions(opts)
	return core.NoisyAverageScaled(q, epsilon, c.bound, f)
}

// NoisySum sums f clamped to [-1, 1] plus Laplace noise (std √2/ε).
//
// Deprecated: use Sum.
func NoisySum[T any](q *Queryable[T], epsilon float64, f func(T) float64) (float64, error) {
	return Sum(q, epsilon, f)
}

// NoisySumScaled sums f clamped to [-bound, bound] with
// correspondingly scaled noise.
//
// Deprecated: use Sum with WithBound.
func NoisySumScaled[T any](q *Queryable[T], epsilon, bound float64, f func(T) float64) (float64, error) {
	return Sum(q, epsilon, f, WithBound(bound))
}

// NoisyAverage averages f clamped to [-1, 1]; noise std ≈ √8/(εn).
//
// Deprecated: use Average.
func NoisyAverage[T any](q *Queryable[T], epsilon float64, f func(T) float64) (float64, error) {
	return Average(q, epsilon, f)
}

// NoisyAverageScaled averages f clamped to [-bound, bound].
//
// Deprecated: use Average with WithBound.
func NoisyAverageScaled[T any](q *Queryable[T], epsilon, bound float64, f func(T) float64) (float64, error) {
	return Average(q, epsilon, f, WithBound(bound))
}

// NoisyMedian selects an approximate median via the exponential
// mechanism.
func NoisyMedian[T any](q *Queryable[T], epsilon float64, f func(T) float64) (float64, error) {
	return core.NoisyMedian(q, epsilon, f)
}

// NoisyOrderStatistic selects an approximate quantile via the
// exponential mechanism.
func NoisyOrderStatistic[T any](q *Queryable[T], epsilon, fraction float64, f func(T) float64) (float64, error) {
	return core.NoisyOrderStatistic(q, epsilon, fraction, f)
}

// Sketch-backed aggregations: one-pass mergeable summaries (GK-family
// quantile ranks, count-min frequencies, HLL-style distinct counts)
// with calibrated noise on the released scalar. They answer the same
// questions as NoisyOrderStatistic / per-key counts / Distinct+count
// at trace scale in sketch-sized memory, and their parallel builds are
// byte-identical to sequential ones.

// DefaultQuantileAccuracy is the quantile summary's rank-accuracy
// target used when NoisyQuantile's sketchEps is 0.
const DefaultQuantileAccuracy = core.DefaultQuantileAccuracy

// NoisyQuantile returns a value of rank ≈ fraction·n selected by the
// exponential mechanism over a one-pass mergeable rank summary with
// accuracy target sketchEps (0 selects DefaultQuantileAccuracy).
// Memory is O(1/sketchEps) instead of a full sort.
func NoisyQuantile[T any](q *Queryable[T], epsilon, fraction, sketchEps float64, f func(T) float64) (float64, error) {
	return core.NoisyQuantile(q, epsilon, fraction, sketchEps, f)
}

// NoisyFrequency returns the approximate number of records whose key
// equals target, from a one-pass count-min sketch plus Laplace noise
// of scale 1/ε (sensitivity 1, like NoisyCount).
func NoisyFrequency[T any](q *Queryable[T], epsilon float64, key func(T) string, target string) (float64, error) {
	return core.NoisyFrequency(q, epsilon, key, target)
}

// NoisyDistinctSketch returns the approximate number of distinct keys
// from one-pass HLL-style registers plus Laplace noise of scale 1/ε.
func NoisyDistinctSketch[T any](q *Queryable[T], epsilon float64, key func(T) string) (float64, error) {
	return core.NoisyDistinctSketch(q, epsilon, key)
}

// Fused streaming execution: a Stream is the lazy counterpart of a
// Queryable for chains of record-wise operators — Where, StreamSelect,
// and StreamSelectMany compile into one loop that feeds the
// aggregation directly, with no intermediate slices. Results, noise
// draws, and ε-charges are byte-identical to the materializing path;
// fusion is purely an execution choice.

// Stream is a lazily-fused pipeline over a protected dataset; build
// one with Queryable.Stream(). Its Where, NoisyCount, NoisyCountInt,
// and Materialize are methods; the type-changing stages and remaining
// terminals are the Stream* functions below.
type Stream[T any] = core.Stream[T]

// StreamSelect fuses a one-to-one mapping stage onto a stream.
func StreamSelect[T, U any](s Stream[T], f func(T) U) Stream[U] {
	return core.StreamSelect(s, f)
}

// StreamSelectMany fuses a flattening stage (at most fanout outputs
// per record), amplifying sensitivity by fanout exactly like
// SelectMany.
func StreamSelectMany[T, U any](s Stream[T], fanout int, f func(T) []U) Stream[U] {
	return core.StreamSelectMany(s, fanout, f)
}

// StreamSum is Sum on the fused path: one pass, no intermediate
// slices, byte-identical to Sum on the materialized pipeline.
func StreamSum[T any](s Stream[T], epsilon float64, f func(T) float64, opts ...AggOption) (float64, error) {
	c := applyAggOptions(opts)
	return core.StreamNoisySumScaled(s, epsilon, c.bound, f)
}

// StreamAverage is Average on the fused path.
func StreamAverage[T any](s Stream[T], epsilon float64, f func(T) float64, opts ...AggOption) (float64, error) {
	c := applyAggOptions(opts)
	return core.StreamNoisyAverageScaled(s, epsilon, c.bound, f)
}

// StreamNoisyQuantile is NoisyQuantile on the fused path.
func StreamNoisyQuantile[T any](s Stream[T], epsilon, fraction, sketchEps float64, f func(T) float64) (float64, error) {
	return core.StreamNoisyQuantile(s, epsilon, fraction, sketchEps, f)
}

// StreamNoisyFrequency is NoisyFrequency on the fused path.
func StreamNoisyFrequency[T any](s Stream[T], epsilon float64, key func(T) string, target string) (float64, error) {
	return core.StreamNoisyFrequency(s, epsilon, key, target)
}

// StreamNoisyDistinctSketch is NoisyDistinctSketch on the fused path.
func StreamNoisyDistinctSketch[T any](s Stream[T], epsilon float64, key func(T) string) (float64, error) {
	return core.StreamNoisyDistinctSketch(s, epsilon, key)
}

// Toolkit re-exports (paper §4).
type (
	// StringCount is a discovered frequent string with noisy count.
	StringCount = toolkit.StringCount
	// FrequentStringsConfig parameterizes FrequentStrings.
	FrequentStringsConfig = toolkit.FrequentStringsConfig
	// Basket is an itemset-mining input record.
	Basket = toolkit.Basket
	// ItemsetCount is a mined frequent itemset with noisy support.
	ItemsetCount = toolkit.ItemsetCount
	// FrequentItemsetsConfig parameterizes FrequentItemsets.
	FrequentItemsetsConfig = toolkit.FrequentItemsetsConfig
)

// CDF1 measures a CDF with one noisy count per bucket; privacy cost
// |buckets|·ε. The paper's naive baseline — prefer CDF2 or CDF3.
func CDF1[T any](q *Queryable[T], epsilon float64, value func(T) int64, buckets []int64) ([]float64, error) {
	return toolkit.CDF1(q, epsilon, value, buckets)
}

// CDF2 measures a CDF by Partition + cumulative counts; privacy cost ε
// regardless of resolution.
func CDF2[T any](q *Queryable[T], epsilon float64, value func(T) int64, buckets []int64) ([]float64, error) {
	return toolkit.CDF2(q, epsilon, value, buckets)
}

// CDF3 measures a CDF at multiple resolutions; privacy cost
// ε·(log₂|buckets|+1) with the best asymptotic error.
func CDF3[T any](q *Queryable[T], epsilon float64, value func(T) int64, buckets []int64) ([]float64, error) {
	return toolkit.CDF3(q, epsilon, value, buckets)
}

// LinearBuckets builds uniformly spaced bucket edges for the CDF
// estimators.
func LinearBuckets(lo, step int64, count int) []int64 { return toolkit.LinearBuckets(lo, step, count) }

// NoisyHistogram measures per-bucket counts (the non-cumulative
// sibling of CDF2); privacy cost ε regardless of resolution.
func NoisyHistogram[T any](q *Queryable[T], epsilon float64, value func(T) int64, buckets []int64) ([]float64, error) {
	return toolkit.NoisyHistogram(q, epsilon, value, buckets)
}

// Onset is one detected event onset (see Onsets).
type Onset[K comparable] = toolkit.Onset[K]

// Onsets finds, per key, the events whose predecessor is more than
// gapUs earlier — the paper's privacy-efficient substitute for
// sliding-window burst detection. Aggregations on the result cost 4×.
func Onsets[T any, K comparable](q *Queryable[T], key func(T) K, timeUs func(T) int64, gapUs int64) *Queryable[Onset[K]] {
	return toolkit.Onsets(q, key, timeUs, gapUs)
}

// RangeTree is a hierarchy of noisy dyadic counts supporting
// arbitrary range queries by post-processing; see NewRangeTree.
type RangeTree = toolkit.RangeTree

// NewRangeTree measures a dyadic count tree once (cost
// ε·(log₂|buckets|+1)); every later Count(lo, hi) is free.
func NewRangeTree[T any](q *Queryable[T], epsilon float64, value func(T) int64, buckets []int64) (*RangeTree, error) {
	return toolkit.NewRangeTree(q, epsilon, value, buckets)
}

// IsotonicRegression restores monotonicity to a noisy CDF by
// pool-adjacent-violators; free of privacy cost (post-processing).
func IsotonicRegression(xs []float64) []float64 { return toolkit.IsotonicRegression(xs) }

// FrequentStrings discovers frequently occurring strings by iterative
// byte-wise prefix extension (paper §4.2).
func FrequentStrings(q *Queryable[[]byte], cfg FrequentStringsConfig) ([]StringCount, error) {
	return toolkit.FrequentStrings(q, cfg)
}

// FrequentItemsets mines frequently co-occurring item sets with
// partitioned support (paper §4.3).
func FrequentItemsets(q *Queryable[Basket], universe int, cfg FrequentItemsetsConfig) ([]ItemsetCount, error) {
	return toolkit.FrequentItemsets(q, universe, cfg)
}
