// Package linalg implements the small amount of dense linear algebra
// the graph-level analyses need: matrices, principal components
// analysis via power iteration with deflation (for Lakhina-style
// anomaly detection), k-means clustering, and Gaussian
// expectation-maximization (the costlier clustering alternative the
// paper declines for privacy reasons, implemented here as the
// comparator).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec computes m·v for a vector of length m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %d vs %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT computes mᵀ·v for a vector of length m.Rows, without
// materializing the transpose.
func (m *Matrix) MulVecT(v []float64) []float64 {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch %d vs %d", len(v), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		vi := v[i]
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// ColumnMeans returns the mean of each column.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		for j, x := range m.Row(i) {
			means[j] += x
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// CenterColumns subtracts each column's mean in place and returns the
// means that were removed.
func (m *Matrix) CenterColumns() []float64 {
	means := m.ColumnMeans()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Normalize scales v to unit norm in place; a zero vector is left
// unchanged and false is returned.
func Normalize(v []float64) bool {
	n := Norm2(v)
	if n == 0 {
		return false
	}
	for i := range v {
		v[i] /= n
	}
	return true
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// EuclideanDistSq returns the squared Euclidean distance of two
// equal-length vectors.
func EuclideanDistSq(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: distance length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
