package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[1] != 3 {
		t.Fatalf("Row = %v", row)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Fatal("Transpose wrong")
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
	gotT := m.MulVecT([]float64{1, 1})
	if gotT[0] != 4 || gotT[1] != 6 {
		t.Fatalf("MulVecT = %v, want [4 6]", gotT)
	}
}

func TestColumnMeansAndCenter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 10)
	m.Set(1, 0, 3)
	m.Set(1, 1, 20)
	means := m.ColumnMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColumnMeans = %v", means)
	}
	m.CenterColumns()
	if m.At(0, 0) != -1 || m.At(1, 1) != 5 {
		t.Fatal("CenterColumns wrong")
	}
}

func TestVectorOps(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	v := []float64{3, 4}
	if !Normalize(v) || !almostEq(Norm2(v), 1, 1e-12) {
		t.Fatal("Normalize wrong")
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Fatal("Normalize of zero vector should return false")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
	if EuclideanDistSq([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("EuclideanDistSq wrong")
	}
}

// TestPCARecoversDominantDirection: rows are multiples of a known
// direction plus tiny noise; the first component must align with it.
func TestPCARecoversDominantDirection(t *testing.T) {
	dir := []float64{0.6, 0.8, 0}
	rng := rand.New(rand.NewPCG(1, 2))
	m := NewMatrix(200, 3)
	for i := 0; i < 200; i++ {
		scale := rng.Float64()*10 - 5
		for j := 0; j < 3; j++ {
			m.Set(i, j, scale*dir[j]+0.01*(rng.Float64()-0.5))
		}
	}
	pca := ComputePCA(m, 1, 100)
	c := pca.Components[0]
	align := math.Abs(Dot(c, dir))
	if align < 0.999 {
		t.Fatalf("component alignment %v, want ~1 (component %v)", align, c)
	}
}

func TestPCASingularValuesDecreasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := NewMatrix(100, 5)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	pca := ComputePCA(m, 4, 60)
	for i := 1; i < len(pca.SingularValues); i++ {
		if pca.SingularValues[i] > pca.SingularValues[i-1]+1e-6 {
			t.Fatalf("singular values not decreasing: %v", pca.SingularValues)
		}
	}
}

func TestPCAResidualOrthogonalToComponents(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	m := NewMatrix(50, 4)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	pca := ComputePCA(m, 2, 80)
	vec := []float64{1, 2, 3, 4}
	res := pca.Residual(vec)
	for i, c := range pca.Components {
		if d := math.Abs(Dot(res, c)); d > 1e-8 {
			t.Fatalf("residual not orthogonal to component %d: %v", i, d)
		}
	}
	// Projection + residual reconstructs the vector.
	recon := make([]float64, 4)
	copy(recon, res)
	proj := pca.Project(vec)
	for i, c := range pca.Components {
		AXPY(proj[i], c, recon)
	}
	for j := range vec {
		if !almostEq(recon[j], vec[j], 1e-8) {
			t.Fatalf("reconstruction mismatch at %d: %v vs %v", j, recon[j], vec[j])
		}
	}
}

func TestPCAFullRankResidualIsZero(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(2, 0, 1)
	m.Set(2, 1, 1)
	pca := ComputePCA(m, 2, 100)
	norms := pca.ResidualNorms(m)
	for i, n := range norms {
		if n > 1e-6 {
			t.Fatalf("full-rank PCA leaves residual %v at row %d", n, i)
		}
	}
}

func TestPCADeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	m := NewMatrix(30, 3)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	a := ComputePCA(m, 2, 50)
	b := ComputePCA(m, 2, 50)
	for i := range a.Components {
		for j := range a.Components[i] {
			if a.Components[i][j] != b.Components[i][j] {
				t.Fatal("PCA not deterministic")
			}
		}
	}
}

func TestPCAKClampedToCols(t *testing.T) {
	m := NewMatrix(4, 2)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	pca := ComputePCA(m, 10, 30)
	if len(pca.Components) > 2 {
		t.Fatalf("got %d components for 2 columns", len(pca.Components))
	}
}

func makeClusteredPoints(k, perCluster, dim int, sep, jitter float64, seed uint64) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	centers := make([][]float64, k)
	for c := range centers {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(c) * sep
		}
		centers[c] = v
	}
	var points [][]float64
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = centers[c][j] + (rng.Float64()-0.5)*jitter
			}
			points = append(points, p)
		}
	}
	return points, centers
}

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	// k-means is sensitive to initialization; take the best of a few
	// seeds, as any practical pipeline would.
	points, _ := makeClusteredPoints(3, 100, 4, 10, 1, 7)
	best := math.Inf(1)
	for seed := uint64(1); seed <= 5; seed++ {
		st := NewKMeansStateFromPoints(points, 3, seed)
		prev := st.ObjectiveSq(points)
		for i := 0; i < 15; i++ {
			st.LloydStep(points)
			obj := st.ObjectiveSq(points)
			if obj > prev+1e-9 {
				t.Fatalf("squared objective increased: %v -> %v", prev, obj)
			}
			prev = obj
		}
		if final := st.Objective(points); final < best {
			best = final
		}
	}
	if best > 1.0 {
		t.Fatalf("best final objective %v, want < 1 (jitter scale)", best)
	}
}

func TestKMeansAssignNearest(t *testing.T) {
	st := &KMeansState{Centers: [][]float64{{0, 0}, {10, 10}}}
	if st.Assign([]float64{1, 1}) != 0 || st.Assign([]float64{9, 9}) != 1 {
		t.Fatal("Assign picked wrong center")
	}
}

func TestKMeansUpdateKeepsNilCenters(t *testing.T) {
	st := &KMeansState{Centers: [][]float64{{1, 1}, {2, 2}}}
	st.Update([][]float64{nil, {5, 5}})
	if st.Centers[0][0] != 1 || st.Centers[1][0] != 5 {
		t.Fatalf("Update wrong: %v", st.Centers)
	}
}

func TestKMeansStateDeterministicInit(t *testing.T) {
	a := NewKMeansState(3, 2, 0, 1, 42)
	b := NewKMeansState(3, 2, 0, 1, 42)
	for i := range a.Centers {
		for j := range a.Centers[i] {
			if a.Centers[i][j] != b.Centers[i][j] {
				t.Fatal("same seed, different init")
			}
		}
	}
}

func TestGaussianEMImprovesLikelihood(t *testing.T) {
	points, _ := makeClusteredPoints(2, 150, 3, 8, 1, 21)
	init := NewKMeansState(2, 3, 0, 10, 33)
	em := NewGaussianEMState(init.Centers)
	prev := math.Inf(-1)
	for i := 0; i < 20; i++ {
		ll := em.Step(points)
		if i > 2 && ll < prev-1e-6 {
			t.Fatalf("log-likelihood decreased: %v -> %v at iter %d", prev, ll, i)
		}
		prev = ll
	}
	if obj := em.Objective(points); obj > 1.5 {
		t.Fatalf("EM objective %v, want small", obj)
	}
}

func TestGaussianEMAssign(t *testing.T) {
	em := NewGaussianEMState([][]float64{{0, 0}, {10, 10}})
	if em.Assign([]float64{1, 0}) != 0 || em.Assign([]float64{10, 9}) != 1 {
		t.Fatal("EM Assign wrong")
	}
}

func TestGaussianEMEmptyPoints(t *testing.T) {
	em := NewGaussianEMState([][]float64{{0}})
	if ll := em.Step(nil); ll != 0 {
		t.Fatalf("empty Step = %v", ll)
	}
}

// Property: the PCA residual norm never exceeds the original norm.
func TestPCAResidualShrinksProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	m := NewMatrix(40, 4)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 10
	}
	pca := ComputePCA(m, 2, 60)
	f := func(a, b, c, d int8) bool {
		vec := []float64{float64(a), float64(b), float64(c), float64(d)}
		return Norm2(pca.Residual(vec)) <= Norm2(vec)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lloyd steps never increase the squared k-means objective
// (the classic monotonicity guarantee; the non-squared Fig 5 axis is
// not guaranteed monotone).
func TestLloydMonotoneProperty(t *testing.T) {
	f := func(seed uint16) bool {
		points, _ := makeClusteredPoints(3, 30, 2, 6, 2, uint64(seed)+1)
		st := NewKMeansState(3, 2, 0, 15, uint64(seed)+2)
		prev := st.ObjectiveSq(points)
		for i := 0; i < 5; i++ {
			st.LloydStep(points)
			obj := st.ObjectiveSq(points)
			if obj > prev+1e-9 {
				return false
			}
			prev = obj
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
