package linalg

import (
	"math"
)

// GaussianEMState implements spherical Gaussian mixture EM — the
// clustering algorithm Eriksson et al. originally used for passive
// topology discovery. The paper notes Gaussian EM is expressible under
// differential privacy but costs more budget per iteration than
// k-means (it must estimate means, variances, and weights), so the
// private analysis uses k-means; this implementation provides the
// non-private comparator and the substrate for the privacy-cost
// ablation bench.
type GaussianEMState struct {
	Means     [][]float64
	Variances []float64 // one spherical variance per component
	Weights   []float64 // mixing proportions, sum to 1
}

// NewGaussianEMState seeds EM from k-means-style initial centers with
// unit variances and uniform weights.
func NewGaussianEMState(centers [][]float64) *GaussianEMState {
	k := len(centers)
	st := &GaussianEMState{
		Means:     make([][]float64, k),
		Variances: make([]float64, k),
		Weights:   make([]float64, k),
	}
	for i, c := range centers {
		cp := make([]float64, len(c))
		copy(cp, c)
		st.Means[i] = cp
		st.Variances[i] = 1
		st.Weights[i] = 1 / float64(k)
	}
	return st
}

// logGaussian returns the log density of a spherical Gaussian at p.
func logGaussian(p, mean []float64, variance float64) float64 {
	if variance <= 0 {
		variance = 1e-9
	}
	d := float64(len(p))
	return -0.5*(d*math.Log(2*math.Pi*variance)) - EuclideanDistSq(p, mean)/(2*variance)
}

// Step performs one EM iteration over points and returns the average
// log-likelihood. Component responsibilities use the log-sum-exp trick
// for stability.
func (s *GaussianEMState) Step(points [][]float64) float64 {
	k := len(s.Means)
	if len(points) == 0 || k == 0 {
		return 0
	}
	dim := len(points[0])
	respSum := make([]float64, k)
	weighted := make([][]float64, k)
	sqSum := make([]float64, k)
	for i := range weighted {
		weighted[i] = make([]float64, dim)
	}
	var totalLL float64
	logp := make([]float64, k)
	for _, p := range points {
		maxLog := math.Inf(-1)
		for c := 0; c < k; c++ {
			logp[c] = math.Log(s.Weights[c]+1e-12) + logGaussian(p, s.Means[c], s.Variances[c])
			if logp[c] > maxLog {
				maxLog = logp[c]
			}
		}
		var denom float64
		for c := 0; c < k; c++ {
			denom += math.Exp(logp[c] - maxLog)
		}
		totalLL += maxLog + math.Log(denom)
		for c := 0; c < k; c++ {
			r := math.Exp(logp[c]-maxLog) / denom
			respSum[c] += r
			AXPY(r, p, weighted[c])
			sqSum[c] += r * EuclideanDistSq(p, s.Means[c])
		}
	}
	n := float64(len(points))
	for c := 0; c < k; c++ {
		if respSum[c] < 1e-9 {
			continue // dead component keeps its parameters
		}
		for j := range weighted[c] {
			weighted[c][j] /= respSum[c]
		}
		s.Means[c] = weighted[c]
		s.Variances[c] = sqSum[c] / (respSum[c] * float64(dim))
		if s.Variances[c] < 1e-6 {
			s.Variances[c] = 1e-6
		}
		s.Weights[c] = respSum[c] / n
	}
	return totalLL / n
}

// Assign returns the most responsible component for p.
func (s *GaussianEMState) Assign(p []float64) int {
	best, bestLog := 0, math.Inf(-1)
	for c := range s.Means {
		l := math.Log(s.Weights[c]+1e-12) + logGaussian(p, s.Means[c], s.Variances[c])
		if l > bestLog {
			best, bestLog = c, l
		}
	}
	return best
}

// Objective reports the same average nearest-mean distance as
// KMeansState.Objective, so EM and k-means runs are directly
// comparable on the Fig 5 axis.
func (s *GaussianEMState) Objective(points [][]float64) float64 {
	km := &KMeansState{Centers: s.Means}
	return km.Objective(points)
}
