package linalg

import "math/rand/v2"

// PCA holds the top principal components of a matrix: the singular
// directions of the column space, as used by Lakhina et al.'s
// network-wide anomaly detector (the paper's §5.3.1 analysis).
type PCA struct {
	// Components are unit vectors of length Cols of the input matrix,
	// ordered by decreasing singular value.
	Components [][]float64
	// SingularValues are the corresponding singular values.
	SingularValues []float64
}

// ComputePCA finds the top k right-singular vectors of m (rows =
// observations, cols = features) by power iteration on mᵀm with
// deflation. iters controls the number of power-iteration steps per
// component (30-100 is plenty for the well-separated spectra that
// traffic matrices exhibit). The matrix is not modified.
//
// Deterministic: the iteration starts from a fixed-seed random vector,
// so repeated runs agree, which the experiment harness relies on.
func ComputePCA(m *Matrix, k, iters int) *PCA {
	if k <= 0 {
		panic("linalg: PCA needs k >= 1")
	}
	if k > m.Cols {
		k = m.Cols
	}
	if iters <= 0 {
		iters = 50
	}
	rng := rand.New(rand.NewPCG(0xC0FFEE, 0xDECAF))
	work := m.Clone()
	pca := &PCA{}
	for c := 0; c < k; c++ {
		v := make([]float64, work.Cols)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		if !Normalize(v) {
			break
		}
		var sigma float64
		for it := 0; it < iters; it++ {
			// v <- normalize(mᵀ(m v))
			u := work.MulVec(v)
			w := work.MulVecT(u)
			n := Norm2(w)
			if n == 0 {
				break
			}
			for i := range w {
				w[i] /= n
			}
			v = w
		}
		// Singular value = |m v|.
		sigma = Norm2(work.MulVec(v))
		pca.Components = append(pca.Components, v)
		pca.SingularValues = append(pca.SingularValues, sigma)
		// Deflate: remove the captured component from every row.
		for i := 0; i < work.Rows; i++ {
			row := work.Row(i)
			proj := Dot(row, v)
			AXPY(-proj, v, row)
		}
	}
	return pca
}

// Project returns the coordinates of vec in the component basis.
func (p *PCA) Project(vec []float64) []float64 {
	out := make([]float64, len(p.Components))
	for i, c := range p.Components {
		out[i] = Dot(vec, c)
	}
	return out
}

// Residual returns vec minus its projection onto the component
// subspace — the "anomalous" part of the signal in Lakhina et al.'s
// terminology.
func (p *PCA) Residual(vec []float64) []float64 {
	out := make([]float64, len(vec))
	copy(out, vec)
	for _, c := range p.Components {
		proj := Dot(out, c)
		AXPY(-proj, c, out)
	}
	return out
}

// ResidualNorms applies Residual to every row of m and returns each
// row's Euclidean residual norm. For a time×link traffic matrix this
// is the per-time-bin volume of anomalous traffic (Fig 4's y-axis).
func (p *PCA) ResidualNorms(m *Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Norm2(p.Residual(m.Row(i)))
	}
	return out
}
