package linalg

import (
	"math"
	"math/rand/v2"
)

// KMeansState carries the evolving centers of a k-means run. The DP
// topology analysis drives iterations itself (each iteration costs
// privacy budget), so the state is exposed rather than hidden behind a
// single Fit call.
type KMeansState struct {
	Centers [][]float64
}

// NewKMeansState initializes k centers of the given dimension from a
// seeded RNG, uniform over [lo, hi] per coordinate. The paper
// initializes all privacy levels from "a common random set of
// vectors"; passing the same seed reproduces that setup.
func NewKMeansState(k, dim int, lo, hi float64, seed uint64) *KMeansState {
	rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = lo + rng.Float64()*(hi-lo)
		}
		centers[i] = c
	}
	return &KMeansState{Centers: centers}
}

// NewKMeansStateFromPoints initializes centers by sampling k distinct
// points (a common k-means seeding that avoids empty regions). If
// fewer than k points exist, remaining centers are copies of sampled
// points perturbed deterministically.
func NewKMeansStateFromPoints(points [][]float64, k int, seed uint64) *KMeansState {
	if len(points) == 0 || k <= 0 {
		panic("linalg: NewKMeansStateFromPoints needs points and k >= 1")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xA5A5A5A5))
	perm := rng.Perm(len(points))
	centers := make([][]float64, k)
	for i := 0; i < k; i++ {
		src := points[perm[i%len(perm)]]
		c := make([]float64, len(src))
		copy(c, src)
		if i >= len(perm) {
			for j := range c {
				c[j] += rng.Float64() - 0.5
			}
		}
		centers[i] = c
	}
	return &KMeansState{Centers: centers}
}

// Assign returns the index of the nearest center to vec.
func (s *KMeansState) Assign(vec []float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, c := range s.Centers {
		if d := EuclideanDistSq(vec, c); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Objective returns the k-means objective the paper plots in Fig 5:
// the average Euclidean distance from each point to its nearest
// center (their "RMSE").
func (s *KMeansState) Objective(points [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range s.Centers {
			if d := EuclideanDistSq(p, c); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(points))
}

// ObjectiveSq returns the mean squared distance from each point to its
// nearest center — the quantity Lloyd iterations monotonically
// decrease (the plotted Fig 5 objective is the non-squared average,
// which is close but not guaranteed monotone).
func (s *KMeansState) ObjectiveSq(points [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range s.Centers {
			if d := EuclideanDistSq(p, c); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(points))
}

// Update replaces the centers with newCenters; any nil entry keeps the
// previous center (a cluster that received no noisy mass).
func (s *KMeansState) Update(newCenters [][]float64) {
	for i, c := range newCenters {
		if c != nil {
			s.Centers[i] = c
		}
	}
}

// LloydStep performs one exact (non-private) Lloyd iteration: assign
// each point to its nearest center, recompute centers as cluster
// means. It is the noise-free baseline for the Fig 5 comparison.
// Empty clusters keep their previous center.
func (s *KMeansState) LloydStep(points [][]float64) {
	if len(points) == 0 {
		return
	}
	dim := len(s.Centers[0])
	sums := make([][]float64, len(s.Centers))
	counts := make([]int, len(s.Centers))
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for _, p := range points {
		a := s.Assign(p)
		AXPY(1, p, sums[a])
		counts[a]++
	}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		for j := range sums[i] {
			sums[i][j] /= float64(counts[i])
		}
		s.Centers[i] = sums[i]
	}
}
