package tracegen

import (
	"math"
	"testing"

	"dptrace/internal/trace"
)

// smallHotspot returns a config sized for fast unit tests.
func smallHotspot() HotspotConfig {
	cfg := DefaultHotspotConfig()
	cfg.Sessions = 400
	cfg.Hosts = 120
	cfg.Servers = 40
	cfg.Worms = 8
	cfg.WormDispersion = 20
	cfg.LowDispersionPayloads = 3
	cfg.BackgroundStrings = 50
	cfg.BackgroundTotal = 5000
	cfg.StonePairs = 4
	cfg.DecoyFlows = 6
	cfg.StoneActivations = 200
	cfg.Duration = 600
	return cfg
}

func TestHotspotDeterministic(t *testing.T) {
	a, _ := Hotspot(smallHotspot())
	b, _ := Hotspot(smallHotspot())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].SrcIP != b[i].SrcIP || a[i].Seq != b[i].Seq {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestHotspotSortedByTime(t *testing.T) {
	pkts, _ := Hotspot(smallHotspot())
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Time < pkts[i-1].Time {
			t.Fatalf("packets out of order at %d", i)
		}
	}
}

func TestHotspotLengthSpikes(t *testing.T) {
	pkts, _ := Hotspot(smallHotspot())
	var n40, n1492 int
	for _, p := range pkts {
		switch p.Len {
		case 40:
			n40++
		case 1492:
			n1492++
		}
	}
	if frac := float64(n40) / float64(len(pkts)); frac < 0.10 {
		t.Errorf("40-byte spike only %.2f of packets", frac)
	}
	if frac := float64(n1492) / float64(len(pkts)); frac < 0.05 {
		t.Errorf("1492-byte spike only %.2f of packets", frac)
	}
}

func TestHotspotHandshakesWellFormed(t *testing.T) {
	pkts, _ := Hotspot(smallHotspot())
	// Index SYN-ACKs by (dst, src, ack) and check each matches a SYN.
	syns := make(map[[3]uint64]int64) // key: src,dst,seq -> time
	for _, p := range pkts {
		if p.IsSYN() {
			syns[[3]uint64{uint64(p.SrcIP), uint64(p.DstIP), uint64(p.Seq)}] = p.Time
		}
	}
	matched := 0
	for _, p := range pkts {
		if !p.IsSYNACK() {
			continue
		}
		key := [3]uint64{uint64(p.DstIP), uint64(p.SrcIP), uint64(p.Ack - 1)}
		if tSyn, ok := syns[key]; ok {
			matched++
			rttUs := p.Time - tSyn
			if rttUs <= 0 || rttUs > 2_000_000 {
				t.Fatalf("implausible RTT %d us", rttUs)
			}
		}
	}
	if matched < 300 {
		t.Fatalf("only %d matched handshakes, want most of 400 sessions", matched)
	}
}

func TestHotspotRetransmissions(t *testing.T) {
	pkts, _ := Hotspot(smallHotspot())
	type key struct {
		flow trace.FlowKey
		seq  uint32
	}
	first := make(map[key]int64)
	retx := 0
	for _, p := range pkts {
		if p.Proto != trace.ProtoTCP || p.Flags.Has(trace.FlagSYN) {
			continue
		}
		k := key{p.Flow(), p.Seq}
		if t0, seen := first[k]; seen {
			diff := p.Time - t0
			if diff > 0 && diff <= 260_000 {
				retx++
			}
		} else {
			first[k] = p.Time
		}
	}
	if retx < 30 {
		t.Fatalf("only %d retransmissions found; loss injection broken?", retx)
	}
}

func TestHotspotWormDispersion(t *testing.T) {
	cfg := smallHotspot()
	_, truth := Hotspot(cfg)
	worms, lows := 0, 0
	for _, pt := range truth.Payloads {
		if pt.IsWorm {
			worms++
			if pt.SrcCount < cfg.WormDispersion || pt.DstCount < cfg.WormDispersion {
				t.Errorf("worm %q dispersion %d/%d below %d",
					pt.Payload, pt.SrcCount, pt.DstCount, cfg.WormDispersion)
			}
		} else if pt.SrcCount == 1 && pt.Count > cfg.WormDispersion {
			lows++
		}
	}
	if worms != cfg.Worms {
		t.Errorf("got %d worm payloads, want %d", worms, cfg.Worms)
	}
	if lows < cfg.LowDispersionPayloads {
		t.Errorf("got %d low-dispersion decoys, want >= %d", lows, cfg.LowDispersionPayloads)
	}
}

func TestHotspotBackgroundHeavyTail(t *testing.T) {
	_, truth := Hotspot(smallHotspot())
	// Truth is sorted by decreasing count; the head should dominate.
	if len(truth.Payloads) < 10 {
		t.Fatalf("only %d payloads", len(truth.Payloads))
	}
	top, tenth := truth.Payloads[0].Count, truth.Payloads[9].Count
	if top < 2*tenth {
		t.Errorf("top count %d not >> 10th count %d", top, tenth)
	}
	for i := 1; i < len(truth.Payloads); i++ {
		if truth.Payloads[i].Count > truth.Payloads[i-1].Count {
			t.Fatal("truth payloads not sorted by count")
		}
	}
}

func TestHotspotStoneFlowsPresent(t *testing.T) {
	cfg := smallHotspot()
	pkts, truth := Hotspot(cfg)
	if len(truth.StonePairs) != cfg.StonePairs {
		t.Fatalf("got %d stone pairs, want %d", len(truth.StonePairs), cfg.StonePairs)
	}
	counts := make(map[trace.FlowKey]int)
	for _, p := range pkts {
		counts[p.Flow()]++
	}
	for _, pair := range truth.StonePairs {
		if counts[pair[0]] < cfg.StoneActivations/2 || counts[pair[1]] < cfg.StoneActivations/2 {
			t.Errorf("stone pair %v has too few packets: %d/%d",
				pair, counts[pair[0]], counts[pair[1]])
		}
	}
	for _, f := range truth.DecoyFlows {
		if counts[f] < cfg.StoneActivations/2 {
			t.Errorf("decoy flow %v has too few packets: %d", f, counts[f])
		}
	}
}

func TestHotspotStonePairsCorrelated(t *testing.T) {
	cfg := smallHotspot()
	pkts, truth := Hotspot(cfg)
	// Bucket packet times per flow at 40ms; correlated pairs should
	// share most buckets.
	buckets := make(map[trace.FlowKey]map[int64]bool)
	for _, p := range pkts {
		f := p.Flow()
		if buckets[f] == nil {
			buckets[f] = make(map[int64]bool)
		}
		buckets[f][p.Time/40_000] = true
	}
	overlap := func(a, b trace.FlowKey) float64 {
		shared := 0
		for t := range buckets[a] {
			if buckets[b][t] || buckets[b][t+1] {
				shared++
			}
		}
		return float64(shared) / float64(len(buckets[a]))
	}
	for _, pair := range truth.StonePairs {
		if o := overlap(pair[0], pair[1]); o < 0.5 {
			t.Errorf("stone pair overlap %.2f, want > 0.5", o)
		}
	}
	// A stone flow and an unrelated decoy should overlap much less.
	if o := overlap(truth.StonePairs[0][0], truth.DecoyFlows[0]); o > 0.35 {
		t.Errorf("unrelated flows overlap %.2f, want small", o)
	}
}

func TestHotspotPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	Hotspot(HotspotConfig{Sessions: 1, Hosts: 0, Servers: 1})
}

func smallIsp() IspConfig {
	return IspConfig{
		Seed: 7, Links: 40, Bins: 100, MeanPacketsPerBin: 8, NoiseFrac: 0.05,
		Anomalies: []AnomalySpec{{StartBin: 50, Duration: 4, Links: []int{3, 4}, Factor: 6}},
	}
}

func TestIspCountsMatchSamples(t *testing.T) {
	samples, truth := IspTraffic(smallIsp())
	total := 0
	for _, row := range truth.Counts {
		for _, c := range row {
			total += c
		}
	}
	if total != len(samples) {
		t.Fatalf("truth total %d != %d samples", total, len(samples))
	}
	// Cross-check one cell.
	var cell int
	for _, s := range samples {
		if s.Link == 3 && s.Bin == 50 {
			cell++
		}
	}
	if cell != truth.Counts[3][50] {
		t.Fatalf("cell (3,50): %d samples vs truth %d", cell, truth.Counts[3][50])
	}
}

func TestIspAnomalyVisible(t *testing.T) {
	_, truth := IspTraffic(smallIsp())
	// Link 3's count in the anomaly window should greatly exceed its
	// neighbors outside the window.
	var inside, outside, nIn, nOut float64
	for b := 0; b < 100; b++ {
		c := float64(truth.Counts[3][b])
		if b >= 50 && b < 54 {
			inside += c
			nIn++
		} else if b >= 40 && b < 50 {
			outside += c
			nOut++
		}
	}
	if inside/nIn < 3*(outside/nOut) {
		t.Errorf("anomaly not visible: inside mean %.1f, outside mean %.1f",
			inside/nIn, outside/nOut)
	}
}

func TestIspDeterministic(t *testing.T) {
	a, _ := IspTraffic(smallIsp())
	b, _ := IspTraffic(smallIsp())
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestIspDiurnalVariation(t *testing.T) {
	cfg := smallIsp()
	cfg.Anomalies = nil
	cfg.Bins = 96 // one day
	_, truth := IspTraffic(cfg)
	// Sum across links per bin; max and min bins should differ clearly.
	sums := make([]float64, cfg.Bins)
	for _, row := range truth.Counts {
		for b, c := range row {
			sums[b] += float64(c)
		}
	}
	min, max := math.Inf(1), 0.0
	for _, s := range sums {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 1.1*min {
		t.Errorf("no diurnal variation: min %.0f, max %.0f", min, max)
	}
}

func smallScatter() ScatterConfig {
	cfg := DefaultScatterConfig()
	cfg.IPsPerCluster = 60
	cfg.Clusters = 4
	cfg.Monitors = 10
	return cfg
}

func TestScatterRecordCounts(t *testing.T) {
	cfg := smallScatter()
	records, truth := IPScatter(cfg)
	wantIPs := cfg.Clusters * cfg.IPsPerCluster
	if len(truth.ClusterOf) != wantIPs {
		t.Fatalf("got %d IPs, want %d", len(truth.ClusterOf), wantIPs)
	}
	maxRecords := wantIPs * cfg.Monitors
	expected := float64(maxRecords) * (1 - cfg.MissingFrac)
	if math.Abs(float64(len(records))-expected) > 0.1*float64(maxRecords) {
		t.Fatalf("got %d records, expected ~%.0f", len(records), expected)
	}
}

func TestScatterHopsNearCenters(t *testing.T) {
	cfg := smallScatter()
	records, truth := IPScatter(cfg)
	for _, r := range records {
		c := truth.ClusterOf[r.IP]
		center := truth.Centers[c][r.Monitor]
		if d := math.Abs(float64(r.Hops) - center); d > float64(cfg.Jitter)+0.01 && r.Hops != 1 {
			t.Fatalf("record %+v deviates %v from center %v", r, d, center)
		}
	}
}

func TestScatterClustersSeparated(t *testing.T) {
	_, truth := IPScatter(smallScatter())
	// Any two latent centers should differ in several coordinates.
	for i := 0; i < len(truth.Centers); i++ {
		for j := i + 1; j < len(truth.Centers); j++ {
			var distSq float64
			for m := range truth.Centers[i] {
				d := truth.Centers[i][m] - truth.Centers[j][m]
				distSq += d * d
			}
			if math.Sqrt(distSq) < 5 {
				t.Errorf("clusters %d and %d too close: %.1f", i, j, math.Sqrt(distSq))
			}
		}
	}
}

func TestScatterDeterministic(t *testing.T) {
	a, _ := IPScatter(smallScatter())
	b, _ := IPScatter(smallScatter())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestScatterPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	IPScatter(ScatterConfig{Monitors: 0})
}
