package tracegen

import (
	"fmt"
	"math/rand/v2"

	"dptrace/internal/trace"
)

// ScatterConfig parameterizes the IPscatter substitute: hop-count
// observations from Monitors vantage points to IP addresses that live
// in Clusters latent topological clusters — the structure the passive
// topology-mapping analysis (paper §5.3.2) recovers by k-means.
type ScatterConfig struct {
	Seed uint64
	// Monitors is the number of vantage points; the paper's dataset
	// had 38 PlanetLab sites.
	Monitors int
	// Clusters is the number of latent topological clusters; the
	// paper's Fig 5 clusters with nine centers.
	Clusters int
	// IPsPerCluster is the number of addresses per cluster.
	IPsPerCluster int
	// Jitter is the ± range of per-observation hop-count noise.
	Jitter int
	// MissingFrac is the probability that an (IP, monitor) reading is
	// absent, exercising the analysis's noisy-average imputation.
	MissingFrac float64
	// MinHops/MaxHops bound the latent hop distances.
	MinHops, MaxHops int
}

// DefaultScatterConfig mirrors the paper's shape: 38 monitors, nine
// latent clusters, and a realistic hop range.
func DefaultScatterConfig() ScatterConfig {
	return ScatterConfig{
		Seed:          3,
		Monitors:      38,
		Clusters:      9,
		IPsPerCluster: 900,
		Jitter:        1,
		MissingFrac:   0.15,
		MinHops:       3,
		MaxHops:       26,
	}
}

// ScatterTruth is the generator's ground truth.
type ScatterTruth struct {
	// Centers[c][m] is cluster c's latent hop count to monitor m.
	Centers [][]float64
	// ClusterOf maps each generated IP to its latent cluster.
	ClusterOf map[trace.IPv4]int
}

// IPScatter generates hop-count records and ground truth. Each present
// (IP, monitor) pair yields one record; records are grouped by IP.
func IPScatter(cfg ScatterConfig) ([]trace.HopRecord, *ScatterTruth) {
	if cfg.Monitors <= 0 || cfg.Clusters <= 0 || cfg.IPsPerCluster <= 0 || cfg.MaxHops <= cfg.MinHops {
		panic(fmt.Sprintf("tracegen: invalid scatter config %+v", cfg))
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xBEEFCAFE))
	truth := &ScatterTruth{ClusterOf: make(map[trace.IPv4]int)}
	for c := 0; c < cfg.Clusters; c++ {
		center := make([]float64, cfg.Monitors)
		for m := range center {
			center[m] = float64(cfg.MinHops + rng.IntN(cfg.MaxHops-cfg.MinHops))
		}
		truth.Centers = append(truth.Centers, center)
	}
	var records []trace.HopRecord
	ipCounter := 0
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < cfg.IPsPerCluster; i++ {
			ip := trace.MakeIPv4(100+byte(c), byte(ipCounter>>16), byte(ipCounter>>8), byte(ipCounter))
			ipCounter++
			truth.ClusterOf[ip] = c
			for m := 0; m < cfg.Monitors; m++ {
				if rng.Float64() < cfg.MissingFrac {
					continue
				}
				hops := int(truth.Centers[c][m]) + rng.IntN(2*cfg.Jitter+1) - cfg.Jitter
				if hops < 1 {
					hops = 1
				}
				records = append(records, trace.HopRecord{
					Monitor: int32(m), IP: ip, Hops: int32(hops),
				})
			}
		}
	}
	return records, truth
}
