package tracegen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dptrace/internal/trace"
)

// AnomalySpec injects a volume anomaly: traffic on the given links is
// multiplied by Factor for the bins [StartBin, StartBin+Duration).
type AnomalySpec struct {
	StartBin int
	Duration int
	Links    []int
	Factor   float64
}

// IspConfig parameterizes the IspTraffic substitute: per-link volumes
// across 15-minute bins with diurnal and weekly structure, plus
// injected anomalies, de-aggregated into LinkSample records exactly as
// the paper de-aggregated its ISP's aggregate feeds into 1500-byte
// packets.
type IspConfig struct {
	Seed  uint64
	Links int
	Bins  int // 15-minute bins; 672 = one week
	// MeanPacketsPerBin scales the de-aggregated record count. The
	// paper's trace had 15.7B records; experiments here run at a few
	// million by lowering this mean, which only rescales the count
	// matrix the analysis consumes.
	MeanPacketsPerBin float64
	// NoiseFrac is the multiplicative volume jitter (e.g. 0.05).
	NoiseFrac float64
	Anomalies []AnomalySpec
}

// DefaultIspConfig mirrors the paper's shape: 400 links, one week of
// 15-minute bins, and a strong anomaly around time bin 270 (the bin the
// paper's Figure 4 calls out), plus two smaller ones.
func DefaultIspConfig() IspConfig {
	return IspConfig{
		Seed:              2,
		Links:             400,
		Bins:              672,
		MeanPacketsPerBin: 12,
		NoiseFrac:         0.05,
		Anomalies: []AnomalySpec{
			{StartBin: 268, Duration: 5, Links: []int{12, 13, 14, 15}, Factor: 6},
			{StartBin: 120, Duration: 3, Links: []int{200, 201}, Factor: 4},
			{StartBin: 500, Duration: 4, Links: []int{77, 78, 79}, Factor: 5},
		},
	}
}

// IspTruth records the generator's ground truth for validation.
type IspTruth struct {
	// Counts is the noise-free link×bin packet-count matrix
	// (Counts[link][bin]).
	Counts [][]int
	// Anomalies echoes the injected anomaly specs.
	Anomalies []AnomalySpec
}

// IspTraffic generates the de-aggregated link trace and its ground
// truth. Records are ordered by bin then link, mirroring a time-ordered
// aggregate feed.
func IspTraffic(cfg IspConfig) ([]trace.LinkSample, *IspTruth) {
	if cfg.Links <= 0 || cfg.Bins <= 0 || cfg.MeanPacketsPerBin < 0 {
		panic(fmt.Sprintf("tracegen: invalid isp config %+v", cfg))
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xFACEFEED))

	// Per-link base volume: lognormal-ish spread so links differ by
	// an order of magnitude, with a random diurnal phase.
	base := make([]float64, cfg.Links)
	phase := make([]float64, cfg.Links)
	for l := range base {
		base[l] = cfg.MeanPacketsPerBin * math.Exp(rng.NormFloat64()*0.5)
		phase[l] = rng.Float64() * 2 * math.Pi
	}

	anomalyFactor := func(link, bin int) float64 {
		f := 1.0
		for _, a := range cfg.Anomalies {
			if bin < a.StartBin || bin >= a.StartBin+a.Duration {
				continue
			}
			for _, al := range a.Links {
				if al == link {
					f *= a.Factor
				}
			}
		}
		return f
	}

	const binsPerDay = 96 // 24h / 15min
	counts := make([][]int, cfg.Links)
	for l := range counts {
		counts[l] = make([]int, cfg.Bins)
	}
	var samples []trace.LinkSample
	for b := 0; b < cfg.Bins; b++ {
		// Diurnal swing (halved at night) and a mild weekend dip.
		day := float64(b) / binsPerDay
		weekend := 1.0
		if int(day)%7 >= 5 {
			weekend = 0.75
		}
		for l := 0; l < cfg.Links; l++ {
			diurnal := 1 + 0.5*math.Sin(2*math.Pi*float64(b)/binsPerDay+phase[l])
			vol := base[l] * diurnal * weekend * anomalyFactor(l, b)
			vol *= 1 + cfg.NoiseFrac*rng.NormFloat64()
			n := int(math.Round(vol))
			if n < 0 {
				n = 0
			}
			counts[l][b] = n
			for i := 0; i < n; i++ {
				samples = append(samples, trace.LinkSample{Link: int32(l), Bin: int32(b)})
			}
		}
	}
	return samples, &IspTruth{Counts: counts, Anomalies: cfg.Anomalies}
}
