// Package tracegen synthesizes the three datasets of the SIGCOMM 2010
// study. The real traces are proprietary (a hotspot tcpdump with
// payloads, a confidential ISP's link volumes, and a processed
// PlanetLab traceroute set), so each generator plants — with known
// ground truth — exactly the features the paper's experiments measure:
// handshake RTTs, retransmission dynamics, packet-size and port
// distributions, high-dispersion worm payloads, heavy-tailed payload
// strings, co-activated stepping-stone flows, link-volume anomalies,
// and clustered hop-count vectors. DESIGN.md §2 documents why each
// substitution preserves the evaluated behaviour.
package tracegen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"dptrace/internal/trace"
)

// Well-known ports the Hotspot generator draws from; the weights mimic
// hotspot traffic dominated by web, with the ssh/mail/smb/imap
// presence the itemset-mining experiment expects.
var portWeights = []struct {
	port   uint16
	weight float64
}{
	{80, 0.42}, {443, 0.25}, {22, 0.08}, {53, 0.07}, {25, 0.05},
	{445, 0.04}, {139, 0.03}, {993, 0.03}, {8080, 0.02}, {110, 0.01},
}

// Port profiles given to client hosts so that frequent itemset mining
// finds the co-used port sets the paper reports as its top five:
// (22,80), (25,22), (443,80), (445,139), (993,22).
var portProfiles = [][]uint16{
	{22, 80},
	{25, 22},
	{443, 80},
	{445, 139},
	{993, 22},
	{80},
	{443},
	{80, 443, 22}, // noise profile: supports several pairs
}

// profileWeights orders the five planted pairs by decreasing support.
var profileWeights = []float64{0.24, 0.20, 0.17, 0.14, 0.11, 0.06, 0.05, 0.03}

// HotspotConfig parameterizes the Hotspot substitute. The zero value
// is not useful; start from DefaultHotspotConfig.
type HotspotConfig struct {
	Seed uint64

	// Sessions is the number of TCP sessions (handshake + data).
	Sessions int
	// Hosts is the client address pool size.
	Hosts int
	// Servers is the server address pool size.
	Servers int

	// LossRate is the per-data-packet probability of a downstream
	// loss, observed as a retransmission (same sequence number).
	LossRate float64

	// Worms is the number of distinct high-dispersion payloads
	// (sources and destinations both above WormDispersion).
	Worms int
	// WormDispersion is the number of distinct sources and of
	// distinct destinations each worm payload is seen with.
	WormDispersion int
	// LowDispersionPayloads is the number of frequent payloads that
	// FAIL the dispersion test (few sources), exercising the worm
	// fingerprinting filter's negative side.
	LowDispersionPayloads int

	// BackgroundStrings is the number of distinct heavy-tailed
	// payload strings planted for the Table 4 frequent-string
	// experiment; string i gets a count ∝ 1/(i+1)^1.1.
	BackgroundStrings int
	// BackgroundTotal is the total number of background-string
	// packets shared out across the strings.
	BackgroundTotal int

	// FlowReuse is the probability that a session opens a follow-up
	// TCP connection on the same 5-tuple after the previous one ends
	// (and again after that, geometrically) — persistent-connection
	// behaviour that exercises connection-id preprocessing.
	FlowReuse float64

	// StonePairs is the number of correlated stepping-stone flow
	// pairs; DecoyFlows is the number of interactive flows with
	// independent activation processes.
	StonePairs int
	DecoyFlows int
	// StoneActivations is the target number of idle-to-active
	// transitions per stone flow; the paper evaluates flows with
	// [1200, 1400] activations.
	StoneActivations int

	// Duration is the trace length in seconds.
	Duration float64
}

// DefaultHotspotConfig returns a configuration sized for experiments
// that run in seconds on a laptop (roughly 2-3·10⁵ packets) while
// keeping every planted feature at the paper's parameter values.
func DefaultHotspotConfig() HotspotConfig {
	return HotspotConfig{
		Seed:                  1,
		Sessions:              3000,
		Hosts:                 600,
		Servers:               150,
		LossRate:              0.03,
		FlowReuse:             0.2,
		Worms:                 29,
		WormDispersion:        60,
		LowDispersionPayloads: 8,
		BackgroundStrings:     300,
		BackgroundTotal:       60000,
		StonePairs:            22,
		DecoyFlows:            20,
		StoneActivations:      1300,
		Duration:              1800,
	}
}

// PayloadTruth records one planted payload string and its ground-truth
// statistics.
type PayloadTruth struct {
	Payload  string
	Count    int // number of packets carrying it
	SrcCount int // distinct source IPs
	DstCount int // distinct destination IPs
	IsWorm   bool
}

// HotspotTruth is the generator's ground truth, used by the evaluation
// harness to score private analyses without re-deriving the truth from
// raw packets.
type HotspotTruth struct {
	// Payloads lists every planted payload (worms, low-dispersion
	// decoys, background strings) sorted by decreasing count.
	Payloads []PayloadTruth
	// StonePairs lists the truly correlated flow pairs.
	StonePairs [][2]trace.FlowKey
	// DecoyFlows lists interactive flows with independent activity.
	DecoyFlows []trace.FlowKey
	// TopPortPairs lists the planted co-used port pairs in decreasing
	// support order.
	TopPortPairs [][2]uint16
	// Connections is the number of TCP connections the session
	// generator opened (>= Sessions when FlowReuse > 0).
	Connections int
}

// Hotspot generates the packet trace and its ground truth. Packets are
// returned sorted by timestamp, as a capture would be.
func Hotspot(cfg HotspotConfig) ([]trace.Packet, *HotspotTruth) {
	if cfg.Sessions < 0 || cfg.Hosts <= 0 || cfg.Servers <= 0 {
		panic(fmt.Sprintf("tracegen: invalid hotspot config %+v", cfg))
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xDEADBEEF))
	g := &hotspotGen{cfg: cfg, rng: rng}
	g.assignProfiles()
	g.genSessions()
	g.genWorms()
	g.genBackgroundStrings()
	g.genSteppingStones()
	sort.SliceStable(g.packets, func(i, j int) bool { return g.packets[i].Time < g.packets[j].Time })
	truth := &HotspotTruth{
		Payloads:    g.payloadTruth(),
		StonePairs:  g.stonePairs,
		DecoyFlows:  g.decoyFlows,
		Connections: g.connections,
		TopPortPairs: [][2]uint16{
			{22, 80}, {25, 22}, {443, 80}, {445, 139}, {993, 22},
		},
	}
	return g.packets, truth
}

type payloadStats struct {
	count  int
	srcs   map[trace.IPv4]struct{}
	dsts   map[trace.IPv4]struct{}
	isWorm bool
}

type hotspotGen struct {
	cfg     HotspotConfig
	rng     *rand.Rand
	packets []trace.Packet

	hostProfiles []int // profile index per client host
	payloads     map[string]*payloadStats
	stonePairs   [][2]trace.FlowKey
	decoyFlows   []trace.FlowKey
	connections  int // TCP connections emitted by genSessions
}

func (g *hotspotGen) clientIP(h int) trace.IPv4 {
	return trace.MakeIPv4(10, 1, byte(h/256), byte(h%256))
}

func (g *hotspotGen) serverIP(s int) trace.IPv4 {
	return trace.MakeIPv4(172, 16, byte(s/256), byte(s%256))
}

func (g *hotspotGen) assignProfiles() {
	g.hostProfiles = make([]int, g.cfg.Hosts)
	for h := range g.hostProfiles {
		u := g.rng.Float64()
		acc := 0.0
		for i, w := range profileWeights {
			acc += w
			if u < acc {
				g.hostProfiles[h] = i
				break
			}
		}
	}
	g.payloads = make(map[string]*payloadStats)
}

// usec converts seconds to the trace's microsecond timestamps.
func usec(s float64) int64 { return int64(math.Round(s * 1e6)) }

// sampleRTT draws a handshake RTT in seconds: a bimodal mixture of
// nearby (LAN/regional ~5-50 ms) and far (transcontinental ~80-300 ms)
// servers, as hotspot traffic exhibits.
func (g *hotspotGen) sampleRTT() float64 {
	if g.rng.Float64() < 0.6 {
		return 0.005 + g.rng.ExpFloat64()*0.015
	}
	return 0.080 + g.rng.ExpFloat64()*0.060
}

// sampleRTO draws a retransmission delay in seconds, concentrated in
// the 10-250 ms range Figure 1 plots at 1 ms resolution.
func (g *hotspotGen) sampleRTO() float64 {
	v := 0.010 + g.rng.ExpFloat64()*0.050
	if v > 0.249 {
		v = 0.249
	}
	return v
}

// pickServerPort draws from the host's port profile usually, falling
// back to the global port mix; this both plants the itemset pairs and
// keeps the overall port CDF heavy on web traffic.
func (g *hotspotGen) pickServerPort(host int) uint16 {
	profile := portProfiles[g.hostProfiles[host]]
	// Hosts stick to their profile almost always: real clients have
	// stable service habits, and the §4.3 itemset experiment depends
	// on baskets that aren't polluted by one-off ports (a stray port
	// makes the basket support extra candidate pairs, diluting its
	// partitioned support across them).
	if g.rng.Float64() < 0.95 {
		return profile[g.rng.IntN(len(profile))]
	}
	u := g.rng.Float64()
	acc := 0.0
	for _, pw := range portWeights {
		acc += pw.weight
		if u < acc {
			return pw.port
		}
	}
	return uint16(1024 + g.rng.IntN(60000))
}

// dataLen draws a packet length with the paper's signature spikes at
// 40 bytes (pure ACKs) and 1492 bytes (802.3 MTU).
func (g *hotspotGen) dataLen() uint16 {
	u := g.rng.Float64()
	switch {
	case u < 0.30:
		return 40
	case u < 0.65:
		return 1492
	default:
		return uint16(80 + g.rng.IntN(1380))
	}
}

func (g *hotspotGen) emit(p trace.Packet) {
	g.packets = append(g.packets, p)
	if len(p.Payload) > 0 {
		st, ok := g.payloads[string(p.Payload)]
		if !ok {
			st = &payloadStats{srcs: map[trace.IPv4]struct{}{}, dsts: map[trace.IPv4]struct{}{}}
			g.payloads[string(p.Payload)] = st
		}
		st.count++
		st.srcs[p.SrcIP] = struct{}{}
		st.dsts[p.DstIP] = struct{}{}
	}
}

// genSessions produces TCP sessions: handshake (for Fig 3a RTTs), data
// packets with losses and retransmissions (Fig 1 time diffs, Fig 3b
// loss rates), and the length/port mix of Fig 2. With probability
// FlowReuse a session opens further connections on the same 5-tuple
// (persistent-connection behaviour), which connection-id
// preprocessing must tease apart.
func (g *hotspotGen) genSessions() {
	for s := 0; s < g.cfg.Sessions; s++ {
		host := g.rng.IntN(g.cfg.Hosts)
		server := g.rng.IntN(g.cfg.Servers)
		src := g.clientIP(host)
		dst := g.serverIP(server)
		sport := uint16(1024 + g.rng.IntN(60000))
		dport := g.pickServerPort(host)
		start := g.rng.Float64() * g.cfg.Duration
		// Web sessions are usually preceded by a DNS lookup — the
		// service dependency the communication-rule analysis (Kandula
		// et al., reproduced in internal/analyses/commrules) mines.
		if (dport == 80 || dport == 443) && g.rng.Float64() < 0.8 {
			resolver := trace.MakeIPv4(10, 0, 0, 53)
			qport := uint16(1024 + g.rng.IntN(60000))
			g.emit(trace.Packet{Time: usec(start - 0.030), SrcIP: src, DstIP: resolver,
				SrcPort: qport, DstPort: 53, Proto: trace.ProtoUDP, Len: 64})
			g.emit(trace.Packet{Time: usec(start - 0.010), SrcIP: resolver, DstIP: src,
				SrcPort: 53, DstPort: qport, Proto: trace.ProtoUDP, Len: 128})
		}
		for {
			end := g.genConnection(src, dst, sport, dport, start)
			g.connections++
			if g.rng.Float64() >= g.cfg.FlowReuse || end >= g.cfg.Duration {
				break
			}
			// Idle gap, then a fresh handshake on the same 5-tuple.
			start = end + 0.1 + g.rng.ExpFloat64()*2
			if start >= g.cfg.Duration {
				break
			}
		}
	}
}

// genConnection emits one TCP connection (handshake plus data) and
// returns the time of its last packet in seconds.
func (g *hotspotGen) genConnection(src, dst trace.IPv4, sport, dport uint16, start float64) float64 {
	rtt := g.sampleRTT()
	isn := g.rng.Uint32()

	g.emit(trace.Packet{Time: usec(start), SrcIP: src, DstIP: dst,
		SrcPort: sport, DstPort: dport, Proto: trace.ProtoTCP,
		Flags: trace.FlagSYN, Seq: isn, Len: 40})
	serverISN := g.rng.Uint32()
	g.emit(trace.Packet{Time: usec(start + rtt), SrcIP: dst, DstIP: src,
		SrcPort: dport, DstPort: sport, Proto: trace.ProtoTCP,
		Flags: trace.FlagSYN | trace.FlagACK, Seq: serverISN, Ack: isn + 1, Len: 40})
	g.emit(trace.Packet{Time: usec(start + rtt*1.5), SrcIP: src, DstIP: dst,
		SrcPort: sport, DstPort: dport, Proto: trace.ProtoTCP,
		Flags: trace.FlagACK, Seq: isn + 1, Ack: serverISN + 1, Len: 40})

	// Data packets; a heavy-tailed count so some flows exceed the
	// >10-packet threshold Fig 3b applies.
	n := 3 + int(g.rng.ExpFloat64()*12)
	t := start + rtt*1.5
	seq := isn + 1
	for i := 0; i < n; i++ {
		next := t + 0.002 + g.rng.ExpFloat64()*0.020
		if next > g.cfg.Duration {
			break
		}
		t = next
		ln := g.dataLen()
		pkt := trace.Packet{Time: usec(t), SrcIP: src, DstIP: dst,
			SrcPort: sport, DstPort: dport, Proto: trace.ProtoTCP,
			Flags: trace.FlagACK | trace.FlagPSH, Seq: seq, Ack: serverISN + 1, Len: ln}
		g.emit(pkt)
		if g.rng.Float64() < g.cfg.LossRate {
			// Downstream loss: the monitor sees a retransmission
			// with the same sequence number after an RTO.
			retx := pkt
			retx.Time = usec(t + g.sampleRTO())
			g.emit(retx)
		}
		seq += uint32(ln)
	}
	return t
}

// wormString builds a distinct, fixed-length payload for worm w.
func wormString(w int) []byte {
	return []byte(fmt.Sprintf("WORM%04d:xBADxC0DEx%04d", w, w*7919%9973))
}

// lowDispString builds a frequent-but-concentrated payload.
func lowDispString(i int) []byte {
	return []byte(fmt.Sprintf("BULK%04d:keepalive-%04d", i, i*31%997))
}

// backgroundString builds the i-th heavy-tailed background payload.
func backgroundString(i int) []byte {
	return []byte(fmt.Sprintf("BG%06d:%08x", i, uint32(i)*2654435761))
}

// genWorms plants Worms high-dispersion payloads (≥ WormDispersion
// distinct sources AND destinations) and LowDispersionPayloads decoys
// that are frequent but concentrated on few hosts.
func (g *hotspotGen) genWorms() {
	for w := 0; w < g.cfg.Worms; w++ {
		payload := wormString(w)
		// Worm w's packet count decays gently with w, so the worms
		// straddle the noise-dependent frequency thresholds: at strong
		// privacy the rarer worms vanish from the frequent-string
		// search first, reproducing the paper's miss progression
		// ("payloads with low overall presence but above average
		// dispersal").
		pkts := 104 + (g.cfg.Worms-1-w)*3
		if pkts < g.cfg.WormDispersion {
			pkts = g.cfg.WormDispersion
		}
		for i := 0; i < pkts; i++ {
			// Cycle through dispersion-many sources and destinations;
			// the rotating offset makes each block of WormDispersion
			// packets cover every source AND every destination, so both
			// distinct counts hit the threshold within one block.
			srcIdx := i % g.cfg.WormDispersion
			dstIdx := (i + i/g.cfg.WormDispersion) % g.cfg.WormDispersion
			src := trace.MakeIPv4(10, 9, byte(srcIdx), byte(w))
			dst := trace.MakeIPv4(192, 168, byte(dstIdx), byte(w))
			t := g.rng.Float64() * g.cfg.Duration
			g.emit(trace.Packet{Time: usec(t), SrcIP: src, DstIP: dst,
				SrcPort: uint16(1024 + g.rng.IntN(60000)), DstPort: 445,
				Proto: trace.ProtoTCP, Flags: trace.FlagACK | trace.FlagPSH,
				Seq: g.rng.Uint32(), Len: uint16(60 + len(payload)),
				Payload: payload})
		}
		if st, ok := g.payloads[string(payload)]; ok {
			st.isWorm = true
		}
	}
	for d := 0; d < g.cfg.LowDispersionPayloads; d++ {
		payload := lowDispString(d)
		src := g.clientIP(d % g.cfg.Hosts)
		dst := g.serverIP(d % g.cfg.Servers)
		pkts := g.cfg.WormDispersion * 4
		for i := 0; i < pkts; i++ {
			t := g.rng.Float64() * g.cfg.Duration
			g.emit(trace.Packet{Time: usec(t), SrcIP: src, DstIP: dst,
				SrcPort: 4000 + uint16(d), DstPort: 80,
				Proto: trace.ProtoTCP, Flags: trace.FlagACK | trace.FlagPSH,
				Seq: g.rng.Uint32(), Len: uint16(60 + len(payload)),
				Payload: payload})
		}
	}
}

// genBackgroundStrings spreads BackgroundTotal packets over
// BackgroundStrings payloads with a Zipf(1.1) frequency law — the
// heavy-hitter population Table 4's top-10 search runs against.
func (g *hotspotGen) genBackgroundStrings() {
	if g.cfg.BackgroundStrings == 0 || g.cfg.BackgroundTotal == 0 {
		return
	}
	weights := make([]float64, g.cfg.BackgroundStrings)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
		total += weights[i]
	}
	// Each string circulates within a small community of hosts and
	// servers, as real repeated payloads do (a popular resource is
	// fetched by many clients, but one specific payload string comes
	// from few origins). Keeping the dispersion low ensures only the
	// planted worms pass the fingerprinting dispersion filter.
	const srcWindow, dstWindow = 12, 8
	for i := range weights {
		count := int(math.Round(weights[i] / total * float64(g.cfg.BackgroundTotal)))
		payload := backgroundString(i)
		srcBase := (i * 37) % g.cfg.Hosts
		dstBase := (i * 17) % g.cfg.Servers
		for j := 0; j < count; j++ {
			host := (srcBase + g.rng.IntN(srcWindow)) % g.cfg.Hosts
			server := (dstBase + g.rng.IntN(dstWindow)) % g.cfg.Servers
			t := g.rng.Float64() * g.cfg.Duration
			// Payload strings ride on the host's usual services; a
			// fixed port here would add that port to every host's
			// basket and poison the itemset experiment.
			g.emit(trace.Packet{Time: usec(t),
				SrcIP: g.clientIP(host), DstIP: g.serverIP(server),
				SrcPort: uint16(1024 + g.rng.IntN(60000)), DstPort: g.pickServerPort(host),
				Proto: trace.ProtoTCP, Flags: trace.FlagACK | trace.FlagPSH,
				Seq: g.rng.Uint32(), Len: uint16(60 + len(payload)),
				Payload: payload})
		}
	}
}

// genSteppingStones emits StonePairs correlated interactive flow pairs
// plus DecoyFlows independent ones. A stone pair shares activity
// epochs: flow A goes idle→active at t, flow B within the paper's
// δ=40 ms window. Epochs are separated by more than T_idle=0.5 s so
// each epoch is one idle-to-active transition.
func (g *hotspotGen) genSteppingStones() {
	const tIdle = 0.5
	makeFlow := func(id int, sport, dport uint16) trace.FlowKey {
		return trace.FlowKey{
			SrcIP:   trace.MakeIPv4(10, 5, byte(id/256), byte(id%256)),
			DstIP:   trace.MakeIPv4(172, 20, byte(id%256), byte(id/256)),
			SrcPort: sport, DstPort: dport, Proto: trace.ProtoTCP,
		}
	}
	emitBurst := func(f trace.FlowKey, t float64) {
		n := 1 + g.rng.IntN(3)
		for i := 0; i < n; i++ {
			g.emit(trace.Packet{Time: usec(t + float64(i)*0.005),
				SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort,
				DstPort: f.DstPort, Proto: f.Proto,
				Flags: trace.FlagACK | trace.FlagPSH,
				Seq:   g.rng.Uint32(), Len: 92})
		}
	}
	// Mean epoch gap chosen so StoneActivations epochs fit the trace.
	gap := g.cfg.Duration / float64(g.cfg.StoneActivations+1)
	if gap < tIdle+0.05 {
		gap = tIdle + 0.05
	}
	for s := 0; s < g.cfg.StonePairs; s++ {
		fa := makeFlow(2*s, 22, 22)
		fb := makeFlow(2*s+1, 3022, 22)
		g.stonePairs = append(g.stonePairs, [2]trace.FlowKey{fa, fb})
		t := g.rng.Float64() * gap
		for t < g.cfg.Duration {
			emitBurst(fa, t)
			// Correlated activation within δ=40 ms, in order. Keystroke
			// forwarding lags are a few ms, so most co-activations land
			// in the same δ bin (the paper's noise-free correlations sit
			// near 0.8, not 1.0, for the same reason).
			emitBurst(fb, t+0.002+g.rng.Float64()*0.016)
			t += tIdle + 0.05 + g.rng.ExpFloat64()*(gap-tIdle)
		}
	}
	for d := 0; d < g.cfg.DecoyFlows; d++ {
		f := makeFlow(1000+d, 22, 22)
		g.decoyFlows = append(g.decoyFlows, f)
		t := g.rng.Float64() * gap
		for t < g.cfg.Duration {
			emitBurst(f, t)
			t += tIdle + 0.05 + g.rng.ExpFloat64()*(gap-tIdle)
		}
	}
}

func (g *hotspotGen) payloadTruth() []PayloadTruth {
	out := make([]PayloadTruth, 0, len(g.payloads))
	for s, st := range g.payloads {
		out = append(out, PayloadTruth{
			Payload:  s,
			Count:    st.count,
			SrcCount: len(st.srcs),
			DstCount: len(st.dsts),
			IsWorm:   st.isWorm,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Payload < out[j].Payload
	})
	return out
}
