package noise

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSeededSourceDeterministic(t *testing.T) {
	a := NewSeededSource(1, 2)
	b := NewSeededSource(1, 2)
	for i := 0; i < 1000; i++ {
		va, vb := a.Float64(), b.Float64()
		if va != vb {
			t.Fatalf("draw %d: %v != %v", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, va)
		}
	}
}

func TestSeededSourceDifferentSeedsDiffer(t *testing.T) {
	a := NewSeededSource(1, 2)
	b := NewSeededSource(3, 4)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestCryptoSourceRange(t *testing.T) {
	src := NewCryptoSource()
	for i := 0; i < 1000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("crypto draw out of [0,1): %v", v)
		}
	}
}

func TestLockedSourceConcurrent(t *testing.T) {
	src := NewLockedSource(NewSeededSource(7, 7))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := src.Float64()
				if v < 0 || v >= 1 {
					t.Errorf("locked draw out of range: %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLaplaceMomentsMatchTheory checks the empirical mean and standard
// deviation of Laplace samples against the theory the paper quotes:
// mean 0, std = √2·scale.
func TestLaplaceMomentsMatchTheory(t *testing.T) {
	src := NewSeededSource(11, 13)
	for _, scale := range []float64{0.1, 1, 10} {
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := Laplace(src, scale)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		std := math.Sqrt(sumSq/n - mean*mean)
		wantStd := math.Sqrt2 * scale
		if math.Abs(mean) > 0.03*wantStd {
			t.Errorf("scale %v: mean %v too far from 0 (std %v)", scale, mean, wantStd)
		}
		if math.Abs(std-wantStd)/wantStd > 0.03 {
			t.Errorf("scale %v: std %v, want %v", scale, std, wantStd)
		}
	}
}

// TestLaplaceForEpsilonStd verifies Table 1's claim: a sensitivity-1
// query at privacy ε has noise std √2/ε.
func TestLaplaceForEpsilonStd(t *testing.T) {
	src := NewSeededSource(5, 9)
	for _, eps := range []float64{0.1, 1.0, 10.0} {
		const n = 100000
		var sumSq float64
		for i := 0; i < n; i++ {
			x := LaplaceForEpsilon(src, 1, eps)
			sumSq += x * x
		}
		std := math.Sqrt(sumSq / n)
		want := LaplaceStd(eps)
		if math.Abs(std-want)/want > 0.05 {
			t.Errorf("eps %v: std %v, want %v", eps, std, want)
		}
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	src := NewSeededSource(21, 22)
	const n = 100000
	pos := 0
	for i := 0; i < n; i++ {
		if Laplace(src, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("positive fraction %v, want ~0.5", frac)
	}
}

func TestLaplaceInvalidScalePanics(t *testing.T) {
	src := NewSeededSource(1, 1)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Laplace(%v) did not panic", bad)
				}
			}()
			Laplace(src, bad)
		}()
	}
}

func TestGeometricMassAtZero(t *testing.T) {
	src := NewSeededSource(2, 4)
	const n = 200000
	eps := 1.0
	zero := 0
	for i := 0; i < n; i++ {
		if Geometric(src, 1, eps) == 0 {
			zero++
		}
	}
	alpha := math.Exp(-eps)
	want := (1 - alpha) / (1 + alpha)
	got := float64(zero) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(0) = %v, want %v", got, want)
	}
}

func TestGeometricSymmetryAndIntegrality(t *testing.T) {
	src := NewSeededSource(8, 16)
	const n = 100000
	var sum int64
	for i := 0; i < n; i++ {
		sum += Geometric(src, 1, 0.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean) > 0.1 {
		t.Errorf("geometric mean %v, want ~0", mean)
	}
}

// TestGeometricStdMatchesLaplace: for small ε the geometric mechanism's
// std approaches the Laplace std √2/ε.
func TestGeometricStdMatchesLaplace(t *testing.T) {
	src := NewSeededSource(3, 5)
	const n = 200000
	eps := 0.1
	var sumSq float64
	for i := 0; i < n; i++ {
		x := float64(Geometric(src, 1, eps))
		sumSq += x * x
	}
	std := math.Sqrt(sumSq / n)
	want := math.Sqrt2 / eps
	if math.Abs(std-want)/want > 0.05 {
		t.Errorf("geometric std %v, want ≈%v", std, want)
	}
}

func TestExponentialPrefersHighScores(t *testing.T) {
	src := NewSeededSource(14, 15)
	scores := []float64{0, 0, 10, 0}
	counts := make([]int, len(scores))
	const n = 10000
	for i := 0; i < n; i++ {
		counts[Exponential(src, scores, 1, 1.0)]++
	}
	if counts[2] < n*9/10 {
		t.Errorf("high-score candidate chosen only %d/%d times", counts[2], n)
	}
}

func TestExponentialUniformWhenScoresEqual(t *testing.T) {
	src := NewSeededSource(31, 32)
	scores := []float64{5, 5, 5, 5}
	counts := make([]int, len(scores))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[Exponential(src, scores, 1, 1.0)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("candidate %d frequency %v, want ~0.25", i, frac)
		}
	}
}

// TestExponentialDPRatio empirically bounds the probability ratio
// between two adjacent score vectors by exp(ε), the defining property
// of the mechanism.
func TestExponentialDPRatio(t *testing.T) {
	srcA := NewSeededSource(41, 42)
	srcB := NewSeededSource(41, 42)
	// Adjacent databases: one record moved changes each score by ≤ 1.
	scoresA := []float64{3, 2, 1}
	scoresB := []float64{2, 3, 1} // each coordinate changed by ≤ 1
	const n = 400000
	countA, countB := make([]int, 3), make([]int, 3)
	for i := 0; i < n; i++ {
		countA[Exponential(srcA, scoresA, 1, 1.0)]++
		countB[Exponential(srcB, scoresB, 1, 1.0)]++
	}
	for i := 0; i < 3; i++ {
		pa := float64(countA[i]) / n
		pb := float64(countB[i]) / n
		if pa == 0 || pb == 0 {
			continue
		}
		ratio := pa / pb
		if ratio > math.Exp(1.0)*1.1 || ratio < 1.1/math.Exp(1.0)/1.21 {
			t.Errorf("candidate %d: ratio %v exceeds e^ε bound", i, ratio)
		}
	}
}

func TestExponentialSingleCandidate(t *testing.T) {
	src := NewSeededSource(1, 2)
	if got := Exponential(src, []float64{-3}, 1, 0.1); got != 0 {
		t.Errorf("single candidate returned %d", got)
	}
}

func TestExponentialEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty candidate list did not panic")
		}
	}()
	Exponential(NewSeededSource(1, 1), nil, 1, 1)
}

func TestLaplaceStdFormula(t *testing.T) {
	if got, want := LaplaceStd(1), math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Errorf("LaplaceStd(1) = %v, want %v", got, want)
	}
	if got, want := LaplaceStd(0.1), math.Sqrt2*10; math.Abs(got-want) > 1e-9 {
		t.Errorf("LaplaceStd(0.1) = %v, want %v", got, want)
	}
}

// Property: Laplace samples are always finite for positive scales.
func TestLaplaceAlwaysFinite(t *testing.T) {
	src := NewSeededSource(99, 100)
	f := func(raw uint8) bool {
		scale := 0.01 + float64(raw)/8 // positive scales up to ~32
		x := Laplace(src, scale)
		return !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: geometric samples scale inversely with epsilon — larger ε
// never yields a heavier tail on average over many draws.
func TestGeometricTailShrinksWithEpsilon(t *testing.T) {
	src := NewSeededSource(77, 78)
	meanAbs := func(eps float64) float64 {
		var s float64
		const n = 50000
		for i := 0; i < n; i++ {
			v := Geometric(src, 1, eps)
			if v < 0 {
				v = -v
			}
			s += float64(v)
		}
		return s / n
	}
	small, large := meanAbs(0.1), meanAbs(10)
	if small <= large {
		t.Errorf("mean |noise| at ε=0.1 (%v) not larger than at ε=10 (%v)", small, large)
	}
}

// TestLaplaceQuantilesMatchTheory checks the sampled distribution's
// shape (not just moments) at several quantiles of the Laplace CDF:
// F(x) = 1/2 exp(x/b) for x<0, 1 - 1/2 exp(-x/b) for x>=0.
func TestLaplaceQuantilesMatchTheory(t *testing.T) {
	src := NewSeededSource(101, 102)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = Laplace(src, 1)
	}
	// Empirical fraction below x vs theory.
	theory := func(x float64) float64 {
		if x < 0 {
			return 0.5 * math.Exp(x)
		}
		return 1 - 0.5*math.Exp(-x)
	}
	for _, x := range []float64{-2, -1, -0.5, 0, 0.5, 1, 2} {
		below := 0
		for _, s := range samples {
			if s < x {
				below++
			}
		}
		got := float64(below) / n
		want := theory(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("F(%v): empirical %v, theory %v", x, got, want)
		}
	}
}
