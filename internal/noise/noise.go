// Package noise implements the randomized mechanisms that underpin
// differential privacy in this repository: the Laplace mechanism, the
// geometric (discrete Laplace) mechanism, and the exponential mechanism.
//
// All mechanisms draw randomness from a Source. Experiments use a
// deterministic seeded source so results are reproducible; deployments
// that care about the security of the guarantee should use
// NewCryptoSource. Floating-point Laplace sampling is subject to the
// least-significant-bit attack of Mironov (CCS'12); this repository
// reproduces the SIGCOMM 2010 study and intentionally does not
// implement snapping, but the caveat is documented here and in the
// README.
package noise

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"math"
	mrand "math/rand/v2"
	"sync"
)

// Source yields uniform random variates in [0, 1). Implementations must
// be safe for use from a single goroutine; wrap with NewLockedSource for
// concurrent use.
type Source interface {
	// Float64 returns a uniformly distributed value in [0, 1).
	Float64() float64
}

// seededSource is a deterministic PCG-backed source for reproducible
// experiments.
type seededSource struct {
	rng *mrand.Rand
}

// NewSeededSource returns a deterministic Source seeded with the two
// given words. Identical seeds yield identical noise streams.
func NewSeededSource(seed1, seed2 uint64) Source {
	return &seededSource{rng: mrand.New(mrand.NewPCG(seed1, seed2))}
}

func (s *seededSource) Float64() float64 { return s.rng.Float64() }

// cryptoSource draws from crypto/rand. It panics if the kernel's
// randomness source fails, which matches the behaviour expected of a
// privacy-critical component: silently degraded randomness would void
// the differential-privacy guarantee.
type cryptoSource struct{}

// NewCryptoSource returns a Source backed by crypto/rand, suitable for
// real deployments of the mechanisms.
func NewCryptoSource() Source { return cryptoSource{} }

func (cryptoSource) Float64() float64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("noise: crypto/rand failed: " + err.Error())
	}
	// 53 random bits scaled into [0, 1).
	return float64(binary.LittleEndian.Uint64(buf[:])>>11) / (1 << 53)
}

// lockedSource serializes access to an underlying Source.
type lockedSource struct {
	mu  sync.Mutex
	src Source
}

// NewLockedSource wraps src so it may be shared across goroutines.
func NewLockedSource(src Source) Source {
	return &lockedSource{src: src}
}

func (l *lockedSource) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src.Float64()
}

// ErrInvalidScale reports a non-positive noise scale or epsilon.
var ErrInvalidScale = errors.New("noise: scale and epsilon must be positive")

// Laplace returns one sample of Laplace noise with the given scale b
// (mean 0, standard deviation b·√2), using inverse-CDF sampling.
func Laplace(src Source, scale float64) float64 {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(ErrInvalidScale)
	}
	// u uniform in (-0.5, 0.5]; the open lower bound protects Log from 0.
	u := src.Float64() - 0.5
	if u == -0.5 {
		u = 0.5
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u+math.SmallestNonzeroFloat64)
}

// LaplaceForEpsilon returns Laplace noise calibrated for a query of the
// given L1 sensitivity at privacy level epsilon: scale = sensitivity/ε.
// The standard deviation of the returned noise is √2·sensitivity/ε,
// matching Table 1 of the paper for sensitivity-1 counts and sums.
func LaplaceForEpsilon(src Source, sensitivity, epsilon float64) float64 {
	if epsilon <= 0 || sensitivity <= 0 {
		panic(ErrInvalidScale)
	}
	return Laplace(src, sensitivity/epsilon)
}

// Geometric returns one sample of the two-sided geometric (discrete
// Laplace) distribution with parameter alpha = exp(-ε/sensitivity).
// It is the integer-valued analogue of the Laplace mechanism, useful
// when a count must remain integral.
func Geometric(src Source, sensitivity, epsilon float64) int64 {
	if epsilon <= 0 || sensitivity <= 0 {
		panic(ErrInvalidScale)
	}
	alpha := math.Exp(-epsilon / sensitivity)
	// Sample magnitude from a geometric distribution, then a sign.
	// P(|X| = k) ∝ alpha^k; P(X=0) = (1-alpha)/(1+alpha).
	u := src.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Remaining mass split evenly between the two signs.
	u = (u - p0) / (1 - p0) // uniform in [0,1)
	sign := int64(1)
	if u < 0.5 {
		sign = -1
		u = u * 2
	} else {
		u = (u - 0.5) * 2
	}
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// Magnitude k ≥ 1 with P(k) ∝ alpha^k: inverse-CDF of geometric.
	k := int64(math.Floor(math.Log(u)/math.Log(alpha))) + 1
	if k < 1 {
		k = 1
	}
	return sign * k
}

// Exponential implements the exponential mechanism over a finite set of
// candidates. It returns the index of the chosen candidate, where the
// probability of choosing index i is proportional to
// exp(ε·score[i]/(2·sensitivity)). Scores may be any finite values;
// sensitivity is the per-record sensitivity of the score function.
func Exponential(src Source, scores []float64, sensitivity, epsilon float64) int {
	if epsilon <= 0 || sensitivity <= 0 {
		panic(ErrInvalidScale)
	}
	if len(scores) == 0 {
		panic(errors.New("noise: exponential mechanism needs at least one candidate"))
	}
	// Subtract the max score for numerical stability.
	maxScore := math.Inf(-1)
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	weights := make([]float64, len(scores))
	total := 0.0
	for i, s := range scores {
		w := math.Exp(epsilon * (s - maxScore) / (2 * sensitivity))
		weights[i] = w
		total += w
	}
	target := src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(scores) - 1
}

// LaplaceStd returns the standard deviation of the Laplace noise that a
// sensitivity-1 query at the given epsilon incurs: √2/ε. Analysts use
// this to judge whether noisy results are statistically significant, as
// the paper emphasizes the noise distribution is public.
func LaplaceStd(epsilon float64) float64 {
	if epsilon <= 0 {
		panic(ErrInvalidScale)
	}
	return math.Sqrt2 / epsilon
}
