package sketch

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestDistinctAccuracy(t *testing.T) {
	for _, n := range []int{100, 5000, 100000} {
		d := NewDistinct(14)
		for i := 0; i < n; i++ {
			d.Add(fmt.Sprintf("10.0.%d.%d", i/256, i%256))
		}
		est := d.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// 1.04/√16384 ≈ 0.8% standard error; 5% is a generous gate.
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %.0f, relative error %.1f%%", n, est, relErr*100)
		}
	}
}

func TestDistinctDuplicatesDontCount(t *testing.T) {
	d := NewDistinct(12)
	for i := 0; i < 10000; i++ {
		d.Add("the-same-host")
	}
	if est := d.Estimate(); est < 0.5 || est > 3 {
		t.Errorf("10000 duplicates of one key: estimate %.2f, want ≈1", est)
	}
}

func TestDistinctMergeExact(t *testing.T) {
	// Register-max merge: shard union == whole build, bit for bit.
	keys := make([]string, 20000)
	for i := range keys {
		keys[i] = fmt.Sprintf("host-%d", i%3000)
	}
	whole := NewDistinct(12)
	for _, k := range keys {
		whole.Add(k)
	}
	for _, shards := range []int{2, 4} {
		merged := NewDistinct(12)
		for s := 0; s < shards; s++ {
			part := NewDistinct(12)
			lo, hi := s*len(keys)/shards, (s+1)*len(keys)/shards
			for _, k := range keys[lo:hi] {
				part.Add(k)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(whole.regs, merged.regs) {
			t.Fatalf("shards=%d: merged registers differ from whole build", shards)
		}
	}
}

func TestDistinctMergeCommutativeIdempotent(t *testing.T) {
	mk := func(lo, hi int) *Distinct {
		d := NewDistinct(10)
		for i := lo; i < hi; i++ {
			d.Add(fmt.Sprintf("k%d", i))
		}
		return d
	}
	ab, ba := mk(0, 1000), mk(500, 1500)
	_ = ab.Merge(mk(500, 1500))
	_ = ba.Merge(mk(0, 1000))
	if !reflect.DeepEqual(ab.regs, ba.regs) {
		t.Fatal("distinct merge is not commutative")
	}
	// Idempotent: merging a sketch with itself changes nothing.
	self := mk(0, 1000)
	before := append([]uint8(nil), self.regs...)
	_ = self.Merge(mk(0, 1000))
	if !reflect.DeepEqual(before, self.regs) {
		t.Fatal("distinct merge is not idempotent")
	}
}

func TestDistinctPrecisionMismatch(t *testing.T) {
	if err := NewDistinct(10).Merge(NewDistinct(12)); err == nil {
		t.Fatal("mismatched precisions merged without error")
	}
}

func TestDistinctBadPrecision(t *testing.T) {
	for _, p := range []uint8{0, 3, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDistinct(%d) did not panic", p)
				}
			}()
			NewDistinct(p)
		}()
	}
}
