package sketch

import (
	"fmt"
	"math"
	"sort"
)

// Tuple is one retained value of a Quantile summary together with
// inclusive bounds on its rank: RMin ≤ #{inserted x : x ≤ Value} ≤
// RMax. Exactly-built summaries have RMin == RMax; merging widens the
// interval by at most the partner summary's local coverage gap.
type Tuple struct {
	Value      float64
	RMin, RMax int
	// Dups is a lower bound on the number of inserted values equal to
	// Value (a value re-inserted after compaction dropped its tuple
	// loses the dropped copies from the bound). It lets rankBoundsAt
	// subtract the whole duplicate run — not just one element — when
	// bounding a v just below Value, which keeps merges of summaries
	// with heavy duplicates near-exact: without it, a value slightly
	// below a duplicate run inherits the run's full rank span as
	// upper-bound slack and Query can prefer it for ranks it cannot
	// realize.
	Dups int
}

// Quantile is a mergeable rank summary in the Greenwald–Khanna /
// mergeable-summaries family. It retains O(1/ε) tuples with explicit
// rank intervals and guarantees that Query(φ) returns a value whose
// true rank is within ε·n of φ·n.
//
// The design choice — explicit RMin/RMax bounds instead of GK's
// (g, Δ) deltas — is what makes Merge exact and commutative: merged
// bounds are symmetric sums of the two inputs' bounds, and the
// compaction that follows depends only on the merged tuple list and
// total count. Build the same data through any composition of
// same-shape blocks and the bytes come out identical, which is the
// property the engine's parallel == sequential pinning rests on.
//
// Not safe for concurrent use.
type Quantile struct {
	eps    float64
	n      int
	tuples []Tuple   // sorted by Value, strictly increasing
	buf    []float64 // pending inserts, compacted at bufCap
}

// NewQuantile returns an empty summary targeting rank error ε·n,
// 0 < ε < 1. Memory is O(1/ε) tuples.
func NewQuantile(eps float64) *Quantile {
	if !(eps > 0 && eps < 1) || math.IsNaN(eps) {
		panic(fmt.Sprintf("sketch: quantile eps must be in (0,1), got %v", eps))
	}
	return &Quantile{eps: eps}
}

// Eps returns the summary's rank-error target.
func (q *Quantile) Eps() float64 { return q.eps }

// Count returns the number of values inserted (including merged-in
// summaries' counts).
func (q *Quantile) Count() int { return q.n + len(q.buf) }

// bufCap is the pending-insert buffer size: small enough to bound
// transient memory, large enough that compaction cost amortizes. It
// is a pure function of ε, so identical insert sequences compact at
// identical points — part of the determinism contract.
func (q *Quantile) bufCap() int {
	c := int(2 / q.eps)
	if c < 64 {
		c = 64
	}
	if c > 1<<14 {
		c = 1 << 14
	}
	return c
}

// Insert adds one value to the summary.
func (q *Quantile) Insert(v float64) {
	q.buf = append(q.buf, v)
	if len(q.buf) >= q.bufCap() {
		q.flush()
	}
}

// flush folds the pending buffer into the tuple list: sort, summarize
// exactly, merge, compact.
func (q *Quantile) flush() {
	if len(q.buf) == 0 {
		return
	}
	sort.Float64s(q.buf)
	exact := make([]Tuple, 0, len(q.buf))
	for i := 0; i < len(q.buf); {
		j := i
		for j < len(q.buf) && q.buf[j] == q.buf[i] {
			j++
		}
		exact = append(exact, Tuple{Value: q.buf[i], RMin: j, RMax: j, Dups: j - i})
		i = j
	}
	q.tuples = mergeTuples(q.tuples, q.n, exact, len(q.buf))
	q.n += len(q.buf)
	q.buf = q.buf[:0]
	q.compact()
}

// Merge folds other into q. Both summaries' pending buffers are
// flushed first; other is unchanged apart from that flush. Merging is
// exact over the tracked bounds and commutative: Merge(a,b) and
// Merge(b,a) produce byte-identical summaries.
func (q *Quantile) Merge(other *Quantile) {
	q.flush()
	other.flush()
	q.tuples = mergeTuples(q.tuples, q.n, other.tuples, other.n)
	q.n += other.n
	q.compact()
}

// rankBoundsAt reports the summary's bounds on #{x ≤ v} for an
// arbitrary v, from the nearest retained tuples.
func rankBoundsAt(tuples []Tuple, n int, v float64) (lo, hi int) {
	if len(tuples) == 0 {
		return 0, n
	}
	// The first and last tuples are always retained (flush summarizes
	// exactly and compact keeps both anchors), so they pin the true
	// extremes: below the minimum nothing is ≤ v, above the maximum
	// everything is. Without these anchors a merge inflates RMax for
	// values below the partner summary's minimum, and Query can then
	// prefer a near-minimum value for a high-rank target.
	if v < tuples[0].Value {
		return 0, 0
	}
	if v > tuples[len(tuples)-1].Value {
		return n, n
	}
	// Largest tuple value ≤ v gives the lower bound; the tuple at v
	// (or the next one above, minus the element that realizes it)
	// gives the upper bound.
	i := sort.Search(len(tuples), func(i int) bool { return tuples[i].Value > v })
	// tuples[i] is the first with Value > v.
	if i > 0 {
		lo = tuples[i-1].RMin
		if tuples[i-1].Value == v {
			return lo, tuples[i-1].RMax
		}
	}
	if i < len(tuples) {
		// tuples[i].Value > v, and at least Dups elements of that value
		// sit above v, so all of them come off its RMax.
		d := tuples[i].Dups
		if d < 1 {
			d = 1
		}
		hi = tuples[i].RMax - d
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}
	return lo, n
}

// mergeTuples combines two tuple lists over disjoint multisets into
// the summary of their union: the value set is the (deduplicated)
// union, and each bound is the symmetric sum of the two inputs'
// bounds at that value. O(|a|+|b|·log|a|) in the worst case; the
// lists stay O(1/ε) after compaction so this is cheap.
func mergeTuples(a []Tuple, na int, b []Tuple, nb int) []Tuple {
	if len(a) == 0 {
		return append([]Tuple(nil), b...)
	}
	if len(b) == 0 {
		return append([]Tuple(nil), a...)
	}
	out := make([]Tuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i >= len(a):
			v = b[j].Value
		case j >= len(b):
			v = a[i].Value
		case a[i].Value <= b[j].Value:
			v = a[i].Value
		default:
			v = b[j].Value
		}
		aLo, aHi := rankBoundsAt(a, na, v)
		bLo, bHi := rankBoundsAt(b, nb, v)
		// The streams are disjoint, so duplicate counts add (a side
		// without a tuple at v contributes none it can prove).
		dups := 0
		for i < len(a) && a[i].Value == v {
			dups += a[i].Dups
			i++
		}
		for j < len(b) && b[j].Value == v {
			dups += b[j].Dups
			j++
		}
		out = append(out, Tuple{Value: v, RMin: aLo + bLo, RMax: aHi + bHi, Dups: dups})
	}
	return out
}

// compact prunes tuples while keeping the coverage invariant: after
// compaction, for any rank t there is a retained tuple whose interval
// midpoint is within ~ε·n/2 of t. First and last tuples are always
// kept (they anchor the extremes). Deterministic: decisions depend
// only on the tuple list and n.
func (q *Quantile) compact() {
	if len(q.tuples) <= 2 {
		return
	}
	stride := int(q.eps * float64(q.n) / 2)
	if stride < 1 {
		return
	}
	out := q.tuples[:1]
	last := q.tuples[0]
	for i := 1; i < len(q.tuples)-1; i++ {
		// Dropping tuple i leaves the gap last..tuples[i+1]; keep i
		// unless that gap stays within the stride.
		if q.tuples[i+1].RMax-last.RMin > stride {
			out = append(out, q.tuples[i])
			last = q.tuples[i]
		}
	}
	out = append(out, q.tuples[len(q.tuples)-1])
	q.tuples = out
}

// Query returns a value whose rank is within ε·n of fraction·n
// (fraction in [0, 1]; 0.5 is the median). An empty summary returns
// 0. Deterministic: ties break toward the lower value.
func (q *Quantile) Query(fraction float64) float64 {
	q.flush()
	if q.n == 0 || len(q.tuples) == 0 {
		return 0
	}
	t := fraction * float64(q.n)
	best, bestDist := 0, math.Inf(1)
	for i := range q.tuples {
		lo, hi := spanOf(q.tuples, i)
		d := distToSpan(t, lo, hi)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return q.tuples[best].Value
}

// spanOf returns the plausible rank span of tuple i: a value with
// many duplicates occupies every rank from just above its
// predecessor's count up to its own, so the span runs from the
// previous tuple's RMin to this tuple's RMax. This is what makes
// Query exact on heavy-duplicate data, where per-tuple uncertainty is
// zero but per-value rank ranges are wide.
func spanOf(tuples []Tuple, i int) (lo, hi float64) {
	if i > 0 {
		lo = float64(tuples[i-1].RMin)
	}
	return lo, float64(tuples[i].RMax)
}

// distToSpan is the distance from t to the interval [lo, hi].
func distToSpan(t, lo, hi float64) float64 {
	if t < lo {
		return lo - t
	}
	if t > hi {
		return t - hi
	}
	return 0
}

// Tuples returns the retained tuples (after flushing pending
// inserts). The DP layer uses them as the candidate set for the
// exponential mechanism; mutating the returned slice corrupts the
// summary.
func (q *Quantile) Tuples() []Tuple {
	q.flush()
	return q.tuples
}
