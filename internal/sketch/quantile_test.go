package sketch

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// rankError returns the distance from target rank t to the true rank
// interval of v in sorted data: [#{x < v}, #{x ≤ v}].
func rankError(sorted []float64, v, t float64) float64 {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	if t < float64(lo) {
		return float64(lo) - t
	}
	if t > float64(hi) {
		return t - float64(hi)
	}
	return 0
}

// adversarialOrderings generates the insertion orders that
// historically break rank sketches: sorted, reverse-sorted,
// organ-pipe (sorted halves interleaved outward-in), heavy
// duplicates, and seeded-random.
func adversarialOrderings(n int) map[string][]float64 {
	rng := rand.New(rand.NewPCG(7, 11))
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.Float64() * 1e6
	}
	sorted := append([]float64(nil), base...)
	sort.Float64s(sorted)
	reversed := make([]float64, n)
	for i, v := range sorted {
		reversed[n-1-i] = v
	}
	organ := make([]float64, 0, n)
	for i, j := 0, n-1; i <= j; i, j = i+1, j-1 {
		organ = append(organ, sorted[i])
		if i != j {
			organ = append(organ, sorted[j])
		}
	}
	dupes := make([]float64, n)
	for i := range dupes {
		dupes[i] = float64(i % 17)
	}
	return map[string][]float64{
		"random":     base,
		"sorted":     sorted,
		"reversed":   reversed,
		"organpipe":  organ,
		"duplicates": dupes,
	}
}

func TestQuantileRankErrorAdversarial(t *testing.T) {
	const n = 50000
	for _, eps := range []float64{0.05, 0.01} {
		for name, data := range adversarialOrderings(n) {
			q := NewQuantile(eps)
			for _, v := range data {
				q.Insert(v)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for f := 0.0; f <= 1.0; f += 0.05 {
				target := f * float64(n)
				got := q.Query(f)
				if err := rankError(sorted, got, target); err > eps*float64(n)+2 {
					t.Errorf("eps=%v %s f=%.2f: rank error %.0f > %.0f", eps, name, f, err, eps*float64(n))
				}
			}
			if q.Count() != n {
				t.Errorf("%s: Count = %d, want %d", name, q.Count(), n)
			}
		}
	}
}

func TestQuantileExactSmall(t *testing.T) {
	q := NewQuantile(0.01)
	for i := 10; i >= 1; i-- {
		q.Insert(float64(i))
	}
	if got := q.Query(0); got != 1 {
		t.Errorf("Query(0) = %v, want 1", got)
	}
	if got := q.Query(1); got != 10 {
		t.Errorf("Query(1) = %v, want 10", got)
	}
	mid := q.Query(0.5)
	if mid < 4 || mid > 6 {
		t.Errorf("Query(0.5) = %v, want ~5", mid)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	q := NewQuantile(0.01)
	if got := q.Query(0.5); got != 0 {
		t.Errorf("empty Query = %v, want 0", got)
	}
	q.Insert(42)
	if got := q.Query(0.5); got != 42 {
		t.Errorf("single Query = %v, want 42", got)
	}
	if q.Count() != 1 {
		t.Errorf("Count = %d, want 1", q.Count())
	}
}

func quantileState(q *Quantile) ([]Tuple, int) {
	return append([]Tuple(nil), q.Tuples()...), q.Count()
}

func TestQuantileMergeCommutative(t *testing.T) {
	mk := func(seed uint64, n int) *Quantile {
		rng := rand.New(rand.NewPCG(seed, 3))
		q := NewQuantile(0.02)
		for i := 0; i < n; i++ {
			q.Insert(rng.Float64() * 100)
		}
		return q
	}
	ab1, ab2 := mk(1, 30000), mk(2, 20000)
	ba1, ba2 := mk(1, 30000), mk(2, 20000)
	ab1.Merge(ab2)
	ba2.Merge(ba1)
	abT, abN := quantileState(ab1)
	baT, baN := quantileState(ba2)
	if abN != baN {
		t.Fatalf("merge counts differ: %d vs %d", abN, baN)
	}
	if !reflect.DeepEqual(abT, baT) {
		t.Fatalf("Merge is not commutative: %d vs %d tuples", len(abT), len(baT))
	}
}

func TestQuantileShardMergeAccuracy(t *testing.T) {
	// Shard-built-and-merged summaries must honor the same rank
	// bound as a single sequential build, however the shards split.
	const n, eps = 60000, 0.02
	rng := rand.New(rand.NewPCG(5, 9))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 1000
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	for _, shards := range []int{2, 4, 7} {
		merged := NewQuantile(eps)
		for s := 0; s < shards; s++ {
			part := NewQuantile(eps)
			lo, hi := s*n/shards, (s+1)*n/shards
			for _, v := range data[lo:hi] {
				part.Insert(v)
			}
			merged.Merge(part)
		}
		if merged.Count() != n {
			t.Fatalf("shards=%d: Count = %d, want %d", shards, merged.Count(), n)
		}
		for f := 0.0; f <= 1.0; f += 0.1 {
			got := merged.Query(f)
			if err := rankError(sorted, got, f*float64(n)); err > eps*float64(n)+2 {
				t.Errorf("shards=%d f=%.1f: rank error %.0f > %.0f", shards, f, err, eps*float64(n))
			}
		}
	}
}

func TestQuantileFoldDeterministic(t *testing.T) {
	// Folding identical block summaries in identical order must give
	// identical bytes — the foundation of parallel == sequential at
	// the engine layer.
	build := func() ([]Tuple, int) {
		rng := rand.New(rand.NewPCG(21, 8))
		merged := NewQuantile(0.02)
		for b := 0; b < 5; b++ {
			blk := NewQuantile(0.02)
			for i := 0; i < 10000; i++ {
				blk.Insert(rng.Float64())
			}
			merged.Merge(blk)
		}
		return quantileState(merged)
	}
	t1, n1 := build()
	t2, n2 := build()
	if n1 != n2 || !reflect.DeepEqual(t1, t2) {
		t.Fatal("identical fold produced different summaries")
	}
}

func TestQuantileTupleBoundsValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	q := NewQuantile(0.05)
	data := make([]float64, 20000)
	for i := range data {
		data[i] = math.Floor(rng.Float64() * 500)
		q.Insert(data[i])
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	prev := math.Inf(-1)
	for _, tp := range q.Tuples() {
		if tp.Value <= prev {
			t.Fatalf("tuples not strictly increasing at %v", tp.Value)
		}
		prev = tp.Value
		trueRank := sort.Search(len(sorted), func(i int) bool { return sorted[i] > tp.Value })
		if trueRank < tp.RMin || trueRank > tp.RMax {
			t.Errorf("value %v: true rank %d outside [%d, %d]", tp.Value, trueRank, tp.RMin, tp.RMax)
		}
	}
}

func TestQuantileBadEps(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantile(%v) did not panic", eps)
				}
			}()
			NewQuantile(eps)
		}()
	}
}
