// Package sketch implements the mergeable one-pass summaries behind
// the engine's sketch-backed aggregations (core.NoisyQuantile,
// core.NoisyFrequency, core.NoisyDistinctSketch): a GK-style
// ε-quantile summary, a count-min frequency sketch, and an
// HLL-style distinct counter.
//
// Two properties matter more here than asymptotic optimality, and
// both are load-bearing for the privacy engine above:
//
//   - Mergeability. Each sketch supports Merge, so the engine can
//     build per-shard sketches in parallel and combine them. Count-min
//     merges by counter addition and the distinct sketch by register
//     maximum — both exact, associative, and commutative. The
//     quantile summary's merge is exact over its tracked rank bounds
//     and commutative by construction; the engine folds shard
//     summaries in a canonical order, so parallel and sequential
//     builds are byte-identical (pinned by tests).
//
//   - Determinism. All hashing is seeded FNV-1a with fixed per-row
//     mixing — never a per-process random seed — and all compaction
//     decisions depend only on sketch contents. The same records in
//     the same order always produce the same sketch bytes, which is
//     what lets the DP layer promise byte-identical noisy outputs
//     across execution strategies.
//
// Sketches are not safe for concurrent mutation; the engine gives
// each worker its own and merges on the coordinating goroutine.
package sketch

// fnv64a is the 64-bit FNV-1a hash of s. It is the deterministic
// process-independent base hash all sketches share.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a fixed bijective scrambler used
// to derive per-row hash functions from the base hash without
// re-reading the key.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
