package sketch

import (
	"fmt"
	"testing"
)

// Benchmarks for the sketch building blocks themselves; the end-to-end
// aggregation costs (engine contract, noise, parallel builds) live in
// internal/core's bench suite.

func BenchmarkQuantileInsert1M(b *testing.B) {
	const n = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewQuantile(0.01)
		for j := 0; j < n; j++ {
			q.Insert(float64(j % 1500))
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

func BenchmarkQuantileMerge(b *testing.B) {
	mk := func(lo int) *Quantile {
		q := NewQuantile(0.01)
		for j := 0; j < 1<<16; j++ {
			q.Insert(float64((lo + j) % 997))
		}
		return q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, c := mk(0), mk(1<<15)
		b.StartTimer()
		a.Merge(c)
	}
}

func BenchmarkCountMinAdd1M(b *testing.B) {
	const n = 1 << 20
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("host-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCountMin(8192, 4)
		for j := 0; j < n; j++ {
			c.Add(keys[j&1023])
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

func BenchmarkDistinctAdd1M(b *testing.B) {
	const n = 1 << 20
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("10.0.%d.%d", i/256, i%256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDistinct(12)
		for j := 0; j < n; j++ {
			d.Add(keys[j&4095])
		}
	}
	b.ReportMetric(float64(n), "records/op")
}
