package sketch

import (
	"encoding/binary"
	"math"
	"reflect"
	"sort"
	"testing"
)

// FuzzQuantileMerge throws arbitrary byte-derived value streams at
// the quantile summary: whatever the split, inserts must never
// panic, Merge must stay commutative, rank bounds must stay valid,
// and the query error must respect ε·n. check.sh runs this as a
// short smoke (same pattern as FuzzLedgerDecode).
func FuzzQuantileMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, split uint8) {
		var values []float64
		for i := 0; i+8 <= len(raw) && len(values) < 4096; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i : i+8]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			values = append(values, v)
		}
		const eps = 0.05
		cut := 0
		if len(values) > 0 {
			cut = int(split) % (len(values) + 1)
		}
		a1, b1 := NewQuantile(eps), NewQuantile(eps)
		a2, b2 := NewQuantile(eps), NewQuantile(eps)
		for _, v := range values[:cut] {
			a1.Insert(v)
			a2.Insert(v)
		}
		for _, v := range values[cut:] {
			b1.Insert(v)
			b2.Insert(v)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		if a1.Count() != len(values) || b2.Count() != len(values) {
			t.Fatalf("counts: %d / %d, want %d", a1.Count(), b2.Count(), len(values))
		}
		if !reflect.DeepEqual(a1.Tuples(), b2.Tuples()) {
			t.Fatal("merge not commutative")
		}
		if len(values) == 0 {
			return
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		n := float64(len(values))
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			got := a1.Query(frac)
			if err := rankError(sorted, got, frac*n); err > eps*n+2 {
				t.Fatalf("f=%.2f: rank error %.1f > %.1f (n=%d)", frac, err, eps*n, len(values))
			}
		}
	})
}

// FuzzCountMinMerge checks the frequency sketch on arbitrary key
// streams: no panics, estimates never undercount, and shard merges
// equal the whole-stream sketch exactly.
func FuzzCountMinMerge(f *testing.F) {
	f.Add([]byte("abc def abc"), uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, split uint8) {
		var keys []string
		for i := 0; i+2 <= len(raw) && len(keys) < 2048; i += 2 {
			keys = append(keys, string(raw[i:i+2]))
		}
		whole := NewCountMin(64, 3)
		truth := map[string]uint64{}
		for _, k := range keys {
			whole.Add(k)
			truth[k]++
		}
		cut := 0
		if len(keys) > 0 {
			cut = int(split) % (len(keys) + 1)
		}
		merged := NewCountMin(64, 3)
		part := NewCountMin(64, 3)
		for _, k := range keys[:cut] {
			merged.Add(k)
		}
		for _, k := range keys[cut:] {
			part.Add(k)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(whole.rows, merged.rows) {
			t.Fatal("shard merge differs from whole-stream sketch")
		}
		d := NewDistinct(6)
		for k, want := range truth {
			if got := whole.Estimate(k); got < want {
				t.Fatalf("Estimate(%q) = %d undercounts %d", k, got, want)
			}
			d.Add(k)
		}
		if len(truth) > 0 && d.Estimate() <= 0 {
			t.Fatal("distinct estimate not positive")
		}
	})
}
