package sketch

import (
	"fmt"
	"math"
)

// CountMin is a count-min frequency sketch: depth rows of width
// counters, each row indexed by an independent deterministic hash of
// the key. Estimate never undercounts; it overcounts by at most
// 2n/width with probability 1 − 2^−depth (the classic bound with
// e/width tightened to the pairwise-independent form).
//
// Merging adds counters position-wise, which is exact: the merge of
// the sketches of two streams IS the sketch of their concatenation,
// independent of how the stream was split. That makes Merge
// associative and commutative to the byte, the property the parallel
// engine's shard builds rely on.
//
// Not safe for concurrent use.
type CountMin struct {
	width, depth int
	rows         [][]uint64
}

// NewCountMin returns an empty sketch with the given geometry.
// width ≥ 1 counter per row, 1 ≤ depth ≤ 16 rows.
func NewCountMin(width, depth int) *CountMin {
	if width < 1 || depth < 1 || depth > 16 {
		panic(fmt.Sprintf("sketch: bad count-min geometry %dx%d", width, depth))
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, rows: rows}
}

// NewCountMinForError returns a sketch sized so the additive
// overcount is at most errFrac·n with failure probability ≤ delta:
// width = ⌈2/errFrac⌉, depth = ⌈log2(1/delta)⌉.
func NewCountMinForError(errFrac, delta float64) *CountMin {
	if !(errFrac > 0 && errFrac < 1) || !(delta > 0 && delta < 1) {
		panic("sketch: count-min errFrac and delta must be in (0,1)")
	}
	width := int(math.Ceil(2 / errFrac))
	depth := int(math.Ceil(math.Log2(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	if depth > 16 {
		depth = 16
	}
	return NewCountMin(width, depth)
}

// Width returns the per-row counter count.
func (c *CountMin) Width() int { return c.width }

// Depth returns the row count.
func (c *CountMin) Depth() int { return c.depth }

// index returns the counter index of key in row.
func (c *CountMin) index(h uint64, row int) int {
	return int(mix64(h^uint64(row+1)) % uint64(c.width))
}

// Add counts one occurrence of key.
func (c *CountMin) Add(key string) { c.AddN(key, 1) }

// AddN counts n occurrences of key.
func (c *CountMin) AddN(key string, n uint64) {
	h := fnv64a(key)
	for row := 0; row < c.depth; row++ {
		c.rows[row][c.index(h, row)] += n
	}
}

// Estimate returns the sketch's frequency estimate for key: the
// minimum counter across rows. Never below the true count.
func (c *CountMin) Estimate(key string) uint64 {
	h := fnv64a(key)
	est := uint64(math.MaxUint64)
	for row := 0; row < c.depth; row++ {
		if v := c.rows[row][c.index(h, row)]; v < est {
			est = v
		}
	}
	return est
}

// Merge adds other's counters into c. The geometries must match
// (shard sketches are built from the same constructor parameters).
func (c *CountMin) Merge(other *CountMin) error {
	if c.width != other.width || c.depth != other.depth {
		return fmt.Errorf("sketch: count-min geometry mismatch: %dx%d vs %dx%d",
			c.width, c.depth, other.width, other.depth)
	}
	for row := range c.rows {
		for i := range c.rows[row] {
			c.rows[row][i] += other.rows[row][i]
		}
	}
	return nil
}
