package sketch

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := NewCountMin(256, 4)
	truth := map[string]uint64{}
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("key-%d", int(rng.ExpFloat64()*100))
		c.Add(k)
		truth[k]++
	}
	for k, want := range truth {
		if got := c.Estimate(k); got < want {
			t.Errorf("Estimate(%q) = %d, undercounts true %d", k, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// width=2/errFrac gives overcount ≤ errFrac·n with high
	// probability; check the typical case with margin.
	const n = 100000
	c := NewCountMinForError(0.01, 0.01)
	rng := rand.New(rand.NewPCG(3, 7))
	truth := map[string]uint64{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", rng.IntN(5000))
		c.Add(k)
		truth[k]++
	}
	bad := 0
	for k, want := range truth {
		if got := c.Estimate(k); float64(got-want) > 0.02*n {
			bad++
		}
	}
	if bad > len(truth)/20 {
		t.Errorf("%d/%d keys overcounted beyond 2%%·n", bad, len(truth))
	}
}

func TestCountMinMergeExact(t *testing.T) {
	// The merge of two shard sketches must equal the sketch of the
	// whole stream, bit for bit — counter addition is exact.
	rng := rand.New(rand.NewPCG(9, 9))
	keys := make([]string, 30000)
	for i := range keys {
		keys[i] = fmt.Sprintf("host-%d", rng.IntN(700))
	}
	whole := NewCountMin(512, 4)
	for _, k := range keys {
		whole.Add(k)
	}
	for _, shards := range []int{2, 3, 5} {
		merged := NewCountMin(512, 4)
		for s := 0; s < shards; s++ {
			part := NewCountMin(512, 4)
			lo, hi := s*len(keys)/shards, (s+1)*len(keys)/shards
			for _, k := range keys[lo:hi] {
				part.Add(k)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(whole.rows, merged.rows) {
			t.Fatalf("shards=%d: merged sketch differs from whole-stream sketch", shards)
		}
	}
}

func TestCountMinMergeCommutativeAssociative(t *testing.T) {
	mk := func(seed uint64) *CountMin {
		rng := rand.New(rand.NewPCG(seed, 2))
		c := NewCountMin(128, 3)
		for i := 0; i < 5000; i++ {
			c.Add(fmt.Sprintf("k%d", rng.IntN(300)))
		}
		return c
	}
	// Commutative: a+b == b+a.
	ab, ba := mk(1), mk(2)
	if err := ab.Merge(mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(mk(1)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab.rows, ba.rows) {
		t.Fatal("count-min merge is not commutative")
	}
	// Associative: (a+b)+c == a+(b+c).
	left := mk(1)
	_ = left.Merge(mk(2))
	_ = left.Merge(mk(3))
	bc := mk(2)
	_ = bc.Merge(mk(3))
	right := mk(1)
	_ = right.Merge(bc)
	if !reflect.DeepEqual(left.rows, right.rows) {
		t.Fatal("count-min merge is not associative")
	}
}

func TestCountMinGeometryMismatch(t *testing.T) {
	a, b := NewCountMin(64, 4), NewCountMin(128, 4)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched geometry merged without error")
	}
}

func TestCountMinBadGeometry(t *testing.T) {
	for _, g := range [][2]int{{0, 4}, {64, 0}, {64, 17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCountMin(%d,%d) did not panic", g[0], g[1])
				}
			}()
			NewCountMin(g[0], g[1])
		}()
	}
}
