package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// Distinct is an HLL-style distinct counter: m = 2^precision
// registers, each holding the maximum leading-zero run (ρ) observed
// among keys hashing into it. The estimator is the standard HLL
// harmonic mean with linear-counting correction for small
// cardinalities; relative standard error ≈ 1.04/√m.
//
// Merging takes the register-wise maximum, which is exact in the same
// sense as count-min's counter addition: the merge of two streams'
// sketches is the sketch of the union, so Merge is associative,
// commutative, and idempotent to the byte.
//
// Not safe for concurrent use.
type Distinct struct {
	precision uint8
	regs      []uint8
}

// NewDistinct returns an empty counter with 2^precision registers,
// 4 ≤ precision ≤ 16. Precision 12 (4096 registers, ≈1.6% error) is
// a good default for per-trace distinct-host style questions.
func NewDistinct(precision uint8) *Distinct {
	if precision < 4 || precision > 16 {
		panic(fmt.Sprintf("sketch: distinct precision must be in [4,16], got %d", precision))
	}
	return &Distinct{precision: precision, regs: make([]uint8, 1<<precision)}
}

// Precision returns the register-count exponent.
func (d *Distinct) Precision() uint8 { return d.precision }

// Add observes key.
func (d *Distinct) Add(key string) {
	h := mix64(fnv64a(key))
	idx := h >> (64 - uint(d.precision))
	// ρ: position of the leftmost 1 in the remaining bits, 1-based.
	rest := h<<uint(d.precision) | 1<<(uint(d.precision)-1)
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > d.regs[idx] {
		d.regs[idx] = rho
	}
}

// Estimate returns the estimated number of distinct keys observed.
func (d *Distinct) Estimate() float64 {
	m := float64(len(d.regs))
	sum := 0.0
	zeros := 0
	for _, r := range d.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Linear counting handles the small range where most registers
	// are still empty.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other's registers into d via register-wise maximum.
// Precisions must match.
func (d *Distinct) Merge(other *Distinct) error {
	if d.precision != other.precision {
		return fmt.Errorf("sketch: distinct precision mismatch: %d vs %d", d.precision, other.precision)
	}
	for i, r := range other.regs {
		if r > d.regs[i] {
			d.regs[i] = r
		}
	}
	return nil
}
