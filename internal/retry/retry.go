// Package retry is the shared capped-exponential-backoff policy used
// by everything in this repo that re-dials or re-sends: the analyst
// client retrying shed queries and the replication follower re-dialing
// its primary. Centralizing it keeps the jitter discipline uniform —
// every reconnect storm in the fleet decorrelates the same way.
package retry

import (
	"context"
	"crypto/rand"
	"math/big"
	"time"
)

// Policy controls retry pacing: exponential backoff from BaseBackoff,
// doubling per attempt, capped at MaxBackoff, spread by ±Jitter.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). Values below 1 behave as 1. Loops that retry forever
	// (e.g. a replication follower) ignore it and use Backoff alone.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each delay uniformly over ±Jitter fraction
	// (e.g. 0.2 → 80%..120% of the computed backoff).
	Jitter float64
}

// Backoff computes the pre-jitter delay for retry i (0-based). The cap
// also catches shift overflow (d <= 0).
func (p Policy) Backoff(i int) time.Duration {
	d := p.BaseBackoff << uint(i)
	if p.MaxBackoff > 0 && (d > p.MaxBackoff || d <= 0) {
		d = p.MaxBackoff
	}
	return d
}

// Jittered spreads d over ±Jitter using crypto randomness (callers
// have no seeded-determinism contract, and crypto/rand avoids seeding
// concerns in concurrent users).
func (p Policy) Jittered(d time.Duration) time.Duration {
	if p.Jitter <= 0 || d <= 0 {
		return d
	}
	span := int64(float64(d) * p.Jitter * 2)
	if span <= 0 {
		return d
	}
	n, err := rand.Int(rand.Reader, big.NewInt(span))
	if err != nil {
		return d
	}
	return d - time.Duration(span/2) + time.Duration(n.Int64())
}

// Delay is the jittered backoff for retry i — the value callers
// actually sleep.
func (p Policy) Delay(i int) time.Duration {
	return p.Jittered(p.Backoff(i))
}

// Sleep waits Delay(i) or until ctx is done, returning ctx.Err() in
// the latter case.
func (p Policy) Sleep(ctx context.Context, i int) error {
	d := p.Delay(i)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
