package retry

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	// Shift overflow must land on the cap, not go negative.
	if got := p.Backoff(62); got != 2*time.Second {
		t.Errorf("Backoff(62) = %v, want cap", got)
	}
}

func TestJitteredBounds(t *testing.T) {
	p := Policy{Jitter: 0.2}
	d := time.Second
	for i := 0; i < 100; i++ {
		got := p.Jittered(d)
		if got < 800*time.Millisecond || got > 1200*time.Millisecond {
			t.Fatalf("Jittered(%v) = %v outside ±20%%", d, got)
		}
	}
	if got := (Policy{}).Jittered(d); got != d {
		t.Errorf("zero jitter changed the delay: %v", got)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	p := Policy{BaseBackoff: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if err := (Policy{}).Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-delay Sleep = %v", err)
	}
}
