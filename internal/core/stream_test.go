package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// Differential tests for the fused streaming path: for the same
// pipeline and the same noise-source seed, the fused and
// materializing executions must produce byte-identical values,
// identical errors, and identical ε-charges — including refusal
// boundaries and cancellation — at GOMAXPROCS 1 and 4 and across the
// parallel strategies' worker counts. These run under -race in the
// tier-1 gate, like the PR2 parallel differential tests they mirror.

// fusedCase is one pipeline expressed both ways.
type fusedCase struct {
	name  string
	mat   func(q *Queryable[flowRec]) (float64, error)
	fused func(s Stream[flowRec]) (float64, error)
}

var fusedCases = []fusedCase{
	{
		name: "where/count",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			return q.Where(func(f flowRec) bool { return f.Len%3 == 0 }).NoisyCount(0.4)
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			return s.Where(func(f flowRec) bool { return f.Len%3 == 0 }).NoisyCount(0.4)
		},
	},
	{
		name: "where/select/sum",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			w := q.Where(func(f flowRec) bool { return f.Port%2 == 0 })
			m := Select(w, func(f flowRec) float64 { return float64(f.Len) / 1500 })
			return NoisySum(m, 0.3, func(v float64) float64 { return v })
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			w := s.Where(func(f flowRec) bool { return f.Port%2 == 0 })
			m := StreamSelect(w, func(f flowRec) float64 { return float64(f.Len) / 1500 })
			return StreamNoisySum(m, 0.3, func(v float64) float64 { return v })
		},
	},
	{
		name: "where/where/sumscaled",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			w := q.Where(func(f flowRec) bool { return f.Len > 100 }).
				Where(func(f flowRec) bool { return f.Port != 3 })
			return NoisySumScaled(w, 0.25, 1500, func(f flowRec) float64 { return float64(f.Len) })
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			w := s.Where(func(f flowRec) bool { return f.Len > 100 }).
				Where(func(f flowRec) bool { return f.Port != 3 })
			return StreamNoisySumScaled(w, 0.25, 1500, func(f flowRec) float64 { return float64(f.Len) })
		},
	},
	{
		name: "selectmany/count",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			m := SelectMany(q, 2, func(f flowRec) []flowRec {
				if f.Port%2 == 0 {
					return []flowRec{f, f, f} // truncated to fanout
				}
				return []flowRec{f}
			})
			return m.NoisyCount(0.2)
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			m := StreamSelectMany(s, 2, func(f flowRec) []flowRec {
				if f.Port%2 == 0 {
					return []flowRec{f, f, f}
				}
				return []flowRec{f}
			})
			return m.NoisyCount(0.2)
		},
	},
	{
		name: "where/select/average",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			w := q.Where(func(f flowRec) bool { return f.Len%5 != 0 })
			m := Select(w, func(f flowRec) float64 { return float64(f.Port) })
			return NoisyAverageScaled(m, 0.3, 64, func(v float64) float64 { return v })
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			w := s.Where(func(f flowRec) bool { return f.Len%5 != 0 })
			m := StreamSelect(w, func(f flowRec) float64 { return float64(f.Port) })
			return StreamNoisyAverageScaled(m, 0.3, 64, func(v float64) float64 { return v })
		},
	},
	{
		name: "select/where/quantile",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			m := Select(q, func(f flowRec) float64 { return float64(f.Len) })
			w := m.Where(func(v float64) bool { return v > 10 })
			return NoisyQuantile(w, 0.5, 0.9, 0.01, func(v float64) float64 { return v })
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			m := StreamSelect(s, func(f flowRec) float64 { return float64(f.Len) })
			w := m.Where(func(v float64) bool { return v > 10 })
			return StreamNoisyQuantile(w, 0.5, 0.9, 0.01, func(v float64) float64 { return v })
		},
	},
	{
		name: "where/frequency",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			w := q.Where(func(f flowRec) bool { return f.Len > 50 })
			return NoisyFrequency(w, 0.4, func(f flowRec) string {
				return string(rune('a' + f.Port%16))
			}, "c")
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			w := s.Where(func(f flowRec) bool { return f.Len > 50 })
			return StreamNoisyFrequency(w, 0.4, func(f flowRec) string {
				return string(rune('a' + f.Port%16))
			}, "c")
		},
	},
	{
		name: "where/distinctcount",
		mat: func(q *Queryable[flowRec]) (float64, error) {
			w := q.Where(func(f flowRec) bool { return f.Len > 50 })
			return NoisyDistinctSketch(w, 0.4, func(f flowRec) string {
				return string(rune('A' + f.Src%64))
			})
		},
		fused: func(s Stream[flowRec]) (float64, error) {
			w := s.Where(func(f flowRec) bool { return f.Len > 50 })
			return StreamNoisyDistinctSketch(w, 0.4, func(f flowRec) string {
				return string(rune('A' + f.Src%64))
			})
		},
	},
}

// TestFusedMatchesMaterializing is the headline differential test: the
// fused value, error, and ε-charge must equal the materializing path's
// bit for bit, at every input size, with the materializing side run
// both sequentially and under the parallel strategies.
func TestFusedMatchesMaterializing(t *testing.T) {
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })

		rng := rand.New(rand.NewSource(int64(90 + gmp)))
		for _, n := range inputSizes {
			flows := randomFlows(rng, n)
			for _, tc := range fusedCases {
				for _, workers := range []int{1, 4} {
					q, root := NewQueryable(flows, 100, noise.NewSeededSource(11, 13))
					matV, matErr := tc.mat(q.WithExecOptions(parExec(workers)))
					matSpent := root.Spent()

					q2, root2 := NewQueryable(flows, 100, noise.NewSeededSource(11, 13))
					fusedV, fusedErr := tc.fused(q2.WithExecOptions(parExec(workers)).Stream())
					fusedSpent := root2.Spent()

					if math.Float64bits(matV) != math.Float64bits(fusedV) {
						t.Fatalf("%s (n=%d, workers=%d, gmp=%d): fused value %v differs from materializing %v",
							tc.name, n, workers, gmp, fusedV, matV)
					}
					if !errors.Is(fusedErr, matErr) && !errors.Is(matErr, fusedErr) {
						t.Fatalf("%s (n=%d): fused err %v, materializing err %v", tc.name, n, fusedErr, matErr)
					}
					if matSpent != fusedSpent {
						t.Fatalf("%s (n=%d): fused charge %v differs from materializing %v",
							tc.name, n, fusedSpent, matSpent)
					}
				}
			}
		}
	}
}

// TestFusedCountIntMatches covers the integral-count terminal, whose
// geometric draw consumes a different number of uniforms than Laplace.
func TestFusedCountIntMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flows := randomFlows(rng, 4096)
	q, root := NewQueryable(flows, 10, noise.NewSeededSource(5, 6))
	matV, matErr := q.Where(func(f flowRec) bool { return f.Len > 700 }).NoisyCountInt(0.5)

	q2, root2 := NewQueryable(flows, 10, noise.NewSeededSource(5, 6))
	fusedV, fusedErr := q2.Stream().Where(func(f flowRec) bool { return f.Len > 700 }).NoisyCountInt(0.5)

	if matV != fusedV || !errors.Is(fusedErr, matErr) && !errors.Is(matErr, fusedErr) {
		t.Fatalf("countint: fused (%d, %v) vs materializing (%d, %v)", fusedV, fusedErr, matV, matErr)
	}
	if root.Spent() != root2.Spent() {
		t.Fatalf("countint: charges differ: %v vs %v", root2.Spent(), root.Spent())
	}
}

// TestFusedRefusalBoundary pins the refusal behavior: when the budget
// runs out mid-sequence, the fused path refuses at exactly the same
// aggregation, with the same error and the same final ledger, as the
// materializing path — including the sensitivity-scaled charge of a
// fused SelectMany.
func TestFusedRefusalBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	flows := randomFlows(rng, 1000)

	run := func(useFused bool) ([]error, float64) {
		q, root := NewQueryable(flows, 1.0, noise.NewSeededSource(2, 3))
		var errs []error
		// Plain count at ε=0.6, then a fanout-3 SelectMany count at
		// ε=0.2 (charges 0.6 > remaining 0.4 — must refuse), then a
		// plain count at ε=0.4 (exactly exhausts the budget).
		if useFused {
			_, e1 := q.Stream().NoisyCount(0.6)
			m := StreamSelectMany(q.Stream(), 3, func(f flowRec) []flowRec { return []flowRec{f} })
			_, e2 := m.NoisyCount(0.2)
			_, e3 := q.Stream().NoisyCount(0.4)
			errs = []error{e1, e2, e3}
		} else {
			_, e1 := q.NoisyCount(0.6)
			m := SelectMany(q, 3, func(f flowRec) []flowRec { return []flowRec{f} })
			_, e2 := m.NoisyCount(0.2)
			_, e3 := q.NoisyCount(0.4)
			errs = []error{e1, e2, e3}
		}
		return errs, root.Spent()
	}

	matErrs, matSpent := run(false)
	fusedErrs, fusedSpent := run(true)

	for i := range matErrs {
		if (matErrs[i] == nil) != (fusedErrs[i] == nil) ||
			(matErrs[i] != nil && !errors.Is(fusedErrs[i], ErrBudgetExceeded)) {
			t.Fatalf("agg %d: fused err %v, materializing err %v", i, fusedErrs[i], matErrs[i])
		}
	}
	if matErrs[1] == nil || !errors.Is(matErrs[1], ErrBudgetExceeded) {
		t.Fatalf("scenario broken: second aggregation should refuse, got %v", matErrs[1])
	}
	if matSpent != fusedSpent {
		t.Fatalf("final ledger differs: fused %v, materializing %v", fusedSpent, matSpent)
	}
	if matSpent != 1.0 {
		t.Fatalf("scenario broken: want budget exactly exhausted, spent %v", matSpent)
	}
}

// TestFusedCancellation pins the PR3 contract on the fused path: a
// stream whose context is cancelled before the aggregation returns
// ErrCanceled and charges zero ε, for every terminal.
func TestFusedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	flows := randomFlows(rng, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	q, root := NewQueryable(flows, 10, noise.NewSeededSource(1, 2))
	s := q.WithContext(ctx).Stream().Where(func(f flowRec) bool { return f.Len > 0 })

	checks := []struct {
		name string
		run  func() error
	}{
		{"count", func() error { _, err := s.NoisyCount(0.5); return err }},
		{"countint", func() error { _, err := s.NoisyCountInt(0.5); return err }},
		{"sum", func() error { _, err := StreamNoisySum(s, 0.5, func(f flowRec) float64 { return 1 }); return err }},
		{"average", func() error { _, err := StreamNoisyAverage(s, 0.5, func(f flowRec) float64 { return 1 }); return err }},
		{"quantile", func() error {
			_, err := StreamNoisyQuantile(s, 0.5, 0.5, 0, func(f flowRec) float64 { return float64(f.Len) })
			return err
		}},
		{"frequency", func() error {
			_, err := StreamNoisyFrequency(s, 0.5, func(f flowRec) string { return "k" }, "k")
			return err
		}},
		{"distinctcount", func() error {
			_, err := StreamNoisyDistinctSketch(s, 0.5, func(f flowRec) string { return "k" })
			return err
		}},
	}
	for _, c := range checks {
		err := c.run()
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want ErrCanceled wrapping context.Canceled, got %v", c.name, err)
		}
	}
	if spent := root.Spent(); spent != 0 {
		t.Fatalf("cancelled stream aggregations charged ε=%v, want 0", spent)
	}

	// Materialize on a cancelled context short-circuits to empty,
	// exactly like the materializing transformations.
	if out := s.Materialize(); len(out.records) != 0 {
		t.Fatalf("Materialize on cancelled ctx produced %d records, want 0", len(out.records))
	}
}

// TestFusedInvalidParams: parameter validation happens before the
// charge, identically to the materializing path.
func TestFusedInvalidParams(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	flows := randomFlows(rng, 100)
	q, root := NewQueryable(flows, 10, noise.NewSeededSource(1, 2))
	s := q.Stream()

	cases := []struct {
		name string
		run  func() error
	}{
		{"count/eps<0", func() error { _, err := s.NoisyCount(-1); return err }},
		{"count/eps=0", func() error { _, err := s.NoisyCount(0); return err }},
		{"count/eps=NaN", func() error { _, err := s.NoisyCount(math.NaN()); return err }},
		{"sum/bound<0", func() error {
			_, err := StreamNoisySumScaled(s, 0.5, -2, func(f flowRec) float64 { return 1 })
			return err
		}},
		{"average/bound=Inf", func() error {
			_, err := StreamNoisyAverageScaled(s, 0.5, math.Inf(1), func(f flowRec) float64 { return 1 })
			return err
		}},
		{"quantile/fraction>1", func() error {
			_, err := StreamNoisyQuantile(s, 0.5, 1.5, 0, func(f flowRec) float64 { return 1 })
			return err
		}},
		{"quantile/sketcheps>=1", func() error {
			_, err := StreamNoisyQuantile(s, 0.5, 0.5, 1.5, func(f flowRec) float64 { return 1 })
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("%s: want ErrInvalidEpsilon, got %v", c.name, err)
		}
	}
	if spent := root.Spent(); spent != 0 {
		t.Fatalf("invalid-parameter aggregations charged ε=%v, want 0", spent)
	}
}

// TestFusedPanicContained: a panicking stage surfaces as ErrInternal
// with the charge standing — the conservative divergence documented in
// stream.go (the stage runs post-Apply on the fused path).
func TestFusedPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	flows := randomFlows(rng, 100)
	q, root := NewQueryable(flows, 10, noise.NewSeededSource(1, 2))
	s := q.Stream().Where(func(f flowRec) bool { panic("analyst bug") })
	_, err := s.NoisyCount(0.5)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
	if spent := root.Spent(); spent != 0.5 {
		t.Fatalf("post-Apply panic should leave the charge standing: spent %v, want 0.5", spent)
	}
}

// TestFusedProfile: on a recorded pipeline every fused stage appears
// in the profile, in pipeline order, tagged with the fused strategy
// and zero duration, with correct record counts; the pass's wall time
// lands on the aggregation row.
func TestFusedProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	flows := randomFlows(rng, 1000)
	pr := obs.NewProfileRecorder(nil)
	q, _ := NewQueryable(flows, 10, noise.NewSeededSource(1, 2))
	s := q.WithRecorder(pr).Stream().Where(func(f flowRec) bool { return f.Len%2 == 0 })
	m := StreamSelect(s, func(f flowRec) int { return f.Len })
	if _, err := StreamNoisySum(m, 0.5, func(v int) float64 { return float64(v) / 1500 }); err != nil {
		t.Fatal(err)
	}

	want := 0
	for _, f := range flows {
		if f.Len%2 == 0 {
			want++
		}
	}
	p := pr.Profile()
	if len(p.Ops) != 2 {
		t.Fatalf("profile has %d op rows, want 2: %+v", len(p.Ops), p.Ops)
	}
	wantOps := []obs.ProfileOp{
		{Op: "where", Strategy: obs.StrategyFused, RecordsIn: float64(len(flows)), RecordsOut: float64(want)},
		{Op: "select", Strategy: obs.StrategyFused, RecordsIn: float64(want), RecordsOut: float64(want)},
	}
	if !reflect.DeepEqual(p.Ops, wantOps) {
		t.Fatalf("fused op rows:\n got %+v\nwant %+v", p.Ops, wantOps)
	}
	if got := p.FusedOps(); got != 2 {
		t.Fatalf("FusedOps() = %d, want 2", got)
	}
	if len(p.Aggs) != 1 || p.Aggs[0].Agg != "sum" || p.Aggs[0].Outcome != obs.OutcomeOK {
		t.Fatalf("aggregation row: %+v", p.Aggs)
	}
}

// TestStreamMaterialize: the escape hatch yields exactly the records
// the materializing operators would, and the result continues into
// unfused operators (GroupBy) with the stream's agent and source.
func TestStreamMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	flows := randomFlows(rng, 2000)

	q, root := NewQueryable(flows, 10, noise.NewSeededSource(9, 9))
	mat := q.Where(func(f flowRec) bool { return f.Port < 10 })
	g1 := GroupBy(mat, func(f flowRec) uint16 { return f.Port })
	v1, err1 := g1.NoisyCount(0.5)

	q2, root2 := NewQueryable(flows, 10, noise.NewSeededSource(9, 9))
	st := q2.Stream().Where(func(f flowRec) bool { return f.Port < 10 }).Materialize()
	if !reflect.DeepEqual(st.records, mat.records) {
		t.Fatalf("Materialize records differ from materializing Where")
	}
	g2 := GroupBy(st, func(f flowRec) uint16 { return f.Port })
	v2, err2 := g2.NoisyCount(0.5)

	if math.Float64bits(v1) != math.Float64bits(v2) || (err1 == nil) != (err2 == nil) {
		t.Fatalf("GroupBy after Materialize: (%v, %v) vs (%v, %v)", v2, err2, v1, err1)
	}
	if root.Spent() != root2.Spent() {
		t.Fatalf("charges differ: %v vs %v", root2.Spent(), root.Spent())
	}
}

// TestStreamValueSemantics: deriving two pipelines from one base
// stream must not cross-contaminate — streams are values.
func TestStreamValueSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	flows := randomFlows(rng, 1000)
	q, _ := NewQueryable(flows, 100, noise.NewSeededSource(4, 4))
	base := q.Stream().Where(func(f flowRec) bool { return f.Len > 100 })

	a := base.Where(func(f flowRec) bool { return f.Port%2 == 0 })
	b := base.Where(func(f flowRec) bool { return f.Port%2 == 1 })

	na := a.Materialize()
	nb := b.Materialize()
	wantA, wantB := 0, 0
	for _, f := range flows {
		if f.Len > 100 {
			if f.Port%2 == 0 {
				wantA++
			} else {
				wantB++
			}
		}
	}
	if len(na.records) != wantA || len(nb.records) != wantB {
		t.Fatalf("sibling pipelines interfered: a=%d (want %d), b=%d (want %d)",
			len(na.records), wantA, len(nb.records), wantB)
	}
}
