package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dptrace/internal/noise"
)

func newTestQueryable[T any](records []T, budget float64) (*Queryable[T], *RootAgent) {
	return NewQueryable(records, budget, noise.NewSeededSource(42, 43))
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestWhereFilters(t *testing.T) {
	q, _ := newTestQueryable(ints(100), math.Inf(1))
	even := q.Where(func(x int) bool { return x%2 == 0 })
	if len(even.records) != 50 {
		t.Fatalf("got %d records, want 50", len(even.records))
	}
	for _, x := range even.records {
		if x%2 != 0 {
			t.Fatalf("odd record %d survived filter", x)
		}
	}
}

func TestWhereSharesAgent(t *testing.T) {
	q, root := newTestQueryable(ints(10), 1.0)
	filtered := q.Where(func(int) bool { return true })
	if _, err := filtered.NoisyCount(0.6); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("root spent %v, want 0.6 (Where adds no sensitivity)", got)
	}
}

func TestSelectMapsAndPreservesSensitivity(t *testing.T) {
	q, root := newTestQueryable(ints(10), 1.0)
	doubled := Select(q, func(x int) int { return 2 * x })
	if doubled.records[3] != 6 {
		t.Fatalf("Select result wrong: %v", doubled.records)
	}
	if _, err := doubled.NoisyCount(0.5); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("root spent %v, want 0.5", got)
	}
}

func TestSelectManyFanoutScaling(t *testing.T) {
	q, root := newTestQueryable(ints(5), math.Inf(1))
	tripled := SelectMany(q, 3, func(x int) []int { return []int{x, x, x} })
	if len(tripled.records) != 15 {
		t.Fatalf("got %d records, want 15", len(tripled.records))
	}
	if _, err := tripled.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("root spent %v, want 3.0 (fanout x3)", got)
	}
}

func TestSelectManyTruncatesOverFanout(t *testing.T) {
	q, _ := newTestQueryable(ints(1), math.Inf(1))
	out := SelectMany(q, 2, func(int) []int { return []int{1, 2, 3, 4} })
	if len(out.records) != 2 {
		t.Fatalf("fanout bound not enforced: %d records", len(out.records))
	}
}

func TestSelectManyInvalidFanoutPanics(t *testing.T) {
	q, _ := newTestQueryable(ints(1), 1)
	defer func() {
		if recover() == nil {
			t.Error("fanout 0 did not panic")
		}
	}()
	SelectMany(q, 0, func(x int) []int { return nil })
}

func TestDistinctKeepsFirstOccurrence(t *testing.T) {
	q, root := newTestQueryable([]int{3, 1, 3, 2, 1, 3}, 1.0)
	d := Distinct(q, func(x int) int { return x })
	want := []int{3, 1, 2}
	if len(d.records) != len(want) {
		t.Fatalf("got %v, want %v", d.records, want)
	}
	for i := range want {
		if d.records[i] != want[i] {
			t.Fatalf("got %v, want %v", d.records, want)
		}
	}
	if _, err := d.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 1.0 {
		t.Fatalf("Distinct amplified sensitivity: spent %v", got)
	}
}

func TestGroupByGroupsAndDoubles(t *testing.T) {
	q, root := newTestQueryable(ints(10), math.Inf(1))
	grouped := GroupBy(q, func(x int) int { return x % 3 })
	if len(grouped.records) != 3 {
		t.Fatalf("got %d groups, want 3", len(grouped.records))
	}
	// First-appearance order: keys 0, 1, 2.
	for i, g := range grouped.records {
		if g.Key != i {
			t.Fatalf("group %d has key %v, want %d", i, g.Key, i)
		}
		for _, x := range g.Items {
			if x%3 != g.Key {
				t.Fatalf("record %d in group %d", x, g.Key)
			}
		}
	}
	if _, err := grouped.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 2.0 {
		t.Fatalf("root spent %v, want 2.0 (GroupBy doubles)", got)
	}
}

func TestGroupByTwiceQuadruples(t *testing.T) {
	q, root := newTestQueryable(ints(20), math.Inf(1))
	g1 := GroupBy(q, func(x int) int { return x % 4 })
	g2 := GroupBy(g1, func(g Group[int, int]) int { return g.Key % 2 })
	if _, err := g2.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 4.0 {
		t.Fatalf("root spent %v, want 4.0 (two GroupBys)", got)
	}
}

func TestJoinZipsMatchedGroups(t *testing.T) {
	syns, _ := newTestQueryable([]string{"a1", "b1", "c1"}, math.Inf(1))
	acks, _ := newTestQueryable([]string{"a2", "c2", "d2"}, math.Inf(1))
	joined := Join(syns, acks,
		func(s string) byte { return s[0] },
		func(s string) byte { return s[0] },
		func(s, a string) string { return s + a })
	want := map[string]bool{"a1a2": true, "c1c2": true}
	if len(joined.records) != 2 {
		t.Fatalf("got %v, want 2 joined records", joined.records)
	}
	for _, r := range joined.records {
		if !want[r] {
			t.Fatalf("unexpected join output %q", r)
		}
	}
}

func TestJoinBoundedPerKey(t *testing.T) {
	// A classic equijoin would produce 3x3=9 pairs for the shared key;
	// the bounded join zips to min(3,3)=3.
	left, _ := newTestQueryable([]int{1, 1, 1}, math.Inf(1))
	right, _ := newTestQueryable([]int{1, 1, 1}, math.Inf(1))
	joined := Join(left, right,
		func(x int) int { return x },
		func(x int) int { return x },
		func(a, b int) int { return a + b })
	if len(joined.records) != 3 {
		t.Fatalf("bounded join emitted %d records, want 3", len(joined.records))
	}
}

func TestJoinChargesBothInputs(t *testing.T) {
	left, rootL := newTestQueryable(ints(5), 10)
	right, rootR := newTestQueryable(ints(5), 10)
	joined := Join(left, right,
		func(x int) int { return x }, func(x int) int { return x },
		func(a, b int) int { return a })
	if _, err := joined.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if rootL.Spent() != 1.0 || rootR.Spent() != 1.0 {
		t.Fatalf("spent %v/%v, want 1.0 each (Table 1: no increase)", rootL.Spent(), rootR.Spent())
	}
}

func TestSelfJoinChargesTwice(t *testing.T) {
	q, root := newTestQueryable(ints(5), 10)
	joined := Join(q, q,
		func(x int) int { return x }, func(x int) int { return x },
		func(a, b int) int { return a })
	if _, err := joined.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 2.0 {
		t.Fatalf("self-join spent %v, want 2.0", got)
	}
}

func TestGroupJoinPairsGroups(t *testing.T) {
	left, rootL := newTestQueryable([]int{1, 1, 2}, math.Inf(1))
	right, _ := newTestQueryable([]int{1, 2, 2, 3}, math.Inf(1))
	gj := GroupJoin(left, right,
		func(x int) int { return x }, func(x int) int { return x },
		func(k int, ls, rs []int) [2]int { return [2]int{len(ls), len(rs)} })
	if len(gj.records) != 2 {
		t.Fatalf("got %d keys, want 2", len(gj.records))
	}
	if gj.records[0] != [2]int{2, 1} || gj.records[1] != [2]int{1, 2} {
		t.Fatalf("group sizes wrong: %v", gj.records)
	}
	if _, err := gj.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if got := rootL.Spent(); got != 2.0 {
		t.Fatalf("GroupJoin left spent %v, want 2.0", got)
	}
}

func TestIntersectFiltersByOtherKeys(t *testing.T) {
	q, rootQ := newTestQueryable([]int{1, 2, 3, 4, 5}, 10)
	other, rootO := newTestQueryable([]int{20, 40}, 10)
	inter := Intersect(q, other,
		func(x int) int { return x }, func(x int) int { return x / 10 })
	if len(inter.records) != 2 {
		t.Fatalf("got %v, want [2 4]", inter.records)
	}
	if _, err := inter.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if rootQ.Spent() != 1.0 || rootO.Spent() != 1.0 {
		t.Fatalf("spent %v/%v, want 1.0 each", rootQ.Spent(), rootO.Spent())
	}
}

func TestExceptFiltersByOtherKeys(t *testing.T) {
	q, rootQ := newTestQueryable([]int{1, 2, 3, 4, 5}, 10)
	other, rootO := newTestQueryable([]int{20, 40}, 10)
	diff := Except(q, other,
		func(x int) int { return x }, func(x int) int { return x / 10 })
	if len(diff.records) != 3 {
		t.Fatalf("got %v, want [1 3 5]", diff.records)
	}
	for _, x := range diff.records {
		if x == 2 || x == 4 {
			t.Fatalf("excluded record %d survived", x)
		}
	}
	if _, err := diff.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if rootQ.Spent() != 1.0 || rootO.Spent() != 1.0 {
		t.Fatalf("spent %v/%v, want 1.0 each", rootQ.Spent(), rootO.Spent())
	}
}

func TestConcatCombinesAndChargesBoth(t *testing.T) {
	a, rootA := newTestQueryable(ints(3), 10)
	b, rootB := newTestQueryable(ints(4), 10)
	c := a.Concat(b)
	if len(c.records) != 7 {
		t.Fatalf("got %d records, want 7", len(c.records))
	}
	if _, err := c.NoisyCount(1.0); err != nil {
		t.Fatal(err)
	}
	if rootA.Spent() != 1.0 || rootB.Spent() != 1.0 {
		t.Fatalf("spent %v/%v, want 1.0 each", rootA.Spent(), rootB.Spent())
	}
}

func TestPartitionDisjointCover(t *testing.T) {
	q, _ := newTestQueryable(ints(100), math.Inf(1))
	keys := []int{0, 1, 2}
	parts := Partition(q, keys, func(x int) int { return x % 3 })
	total := 0
	for k, p := range parts {
		for _, x := range p.records {
			if x%3 != k {
				t.Fatalf("record %d in part %d", x, k)
			}
		}
		total += len(p.records)
	}
	if total != 100 {
		t.Fatalf("parts cover %d records, want 100", total)
	}
}

func TestPartitionDropsUnlistedKeys(t *testing.T) {
	q, _ := newTestQueryable(ints(10), math.Inf(1))
	parts := Partition(q, []int{0}, func(x int) int { return x % 3 })
	if len(parts) != 1 || len(parts[0].records) != 4 {
		t.Fatalf("unexpected parts: %d keys, %d records", len(parts), len(parts[0].records))
	}
}

func TestPartitionMissingKeyYieldsEmptyPart(t *testing.T) {
	q, _ := newTestQueryable(ints(10), math.Inf(1))
	parts := Partition(q, []int{99}, func(x int) int { return x })
	p, ok := parts[99]
	if !ok || len(p.records) != 0 {
		t.Fatalf("missing key should map to empty part, got %v", parts)
	}
	if _, err := p.NoisyCount(1.0); err != nil {
		t.Fatalf("aggregating an empty part must still work: %v", err)
	}
}

func TestPartitionBudgetIsMax(t *testing.T) {
	q, root := newTestQueryable(ints(100), math.Inf(1))
	keys := []int{0, 1, 2, 3}
	parts := Partition(q, keys, func(x int) int { return x % 4 })
	for _, k := range keys {
		if _, err := parts[k].NoisyCount(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := root.Spent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("root spent %v, want 0.5 (max across parts)", got)
	}
	// A second round on just one part raises the max.
	if _, err := parts[2].NoisyCount(0.25); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("root spent %v, want 0.75", got)
	}
}

func TestPartitionDuplicateKeysPanics(t *testing.T) {
	q, _ := newTestQueryable(ints(10), 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate partition keys did not panic")
		}
	}()
	Partition(q, []int{1, 1}, func(x int) int { return x })
}

func TestNestedPartitionBudget(t *testing.T) {
	// Partition by link, then each part by time: cost = max over
	// links of (max over times) — the Fig 4 pattern.
	q, root := newTestQueryable(ints(1000), math.Inf(1))
	links := []int{0, 1, 2, 3, 4}
	byLink := Partition(q, links, func(x int) int { return x % 5 })
	times := []int{0, 1, 2, 3}
	for _, l := range links {
		byTime := Partition(byLink[l], times, func(x int) int { return (x / 5) % 4 })
		for _, tm := range times {
			if _, err := byTime[tm].NoisyCount(0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := root.Spent(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("nested partition spent %v, want 0.1", got)
	}
}

func TestBudgetRefusalSurfacesFromAggregation(t *testing.T) {
	q, _ := newTestQueryable(ints(10), 0.5)
	if _, err := q.NoisyCount(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NoisyCount(0.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestGroupByBudgetRefusalLeavesSiblingBudget(t *testing.T) {
	// A grouped aggregation that would cost 2x must be refused without
	// consuming anything.
	q, root := newTestQueryable(ints(10), 1.0)
	g := GroupBy(q, func(x int) int { return x % 2 })
	if _, err := g.NoisyCount(0.8); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded (cost 1.6 > 1.0)", err)
	}
	if root.Spent() != 0 {
		t.Fatalf("refused aggregation consumed %v", root.Spent())
	}
	if _, err := q.NoisyCount(1.0); err != nil {
		t.Fatalf("full budget should remain: %v", err)
	}
}

// Property: Where never increases the record count and never changes
// the budget without an aggregation.
func TestWherePropertyNoBudgetTouch(t *testing.T) {
	f := func(data []int, threshold int) bool {
		q, root := newTestQueryable(data, 1.0)
		w := q.Where(func(x int) bool { return x > threshold })
		return len(w.records) <= len(data) && root.Spent() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Partition parts are pairwise disjoint and their union is
// the subset of records with listed keys.
func TestPartitionProperty(t *testing.T) {
	f := func(data []uint8) bool {
		recs := make([]int, len(data))
		for i, d := range data {
			recs[i] = int(d)
		}
		q, _ := newTestQueryable(recs, math.Inf(1))
		keys := []int{0, 1, 2}
		parts := Partition(q, keys, func(x int) int { return x % 4 })
		total := 0
		for k, p := range parts {
			for _, x := range p.records {
				if x%4 != k {
					return false
				}
			}
			total += len(p.records)
		}
		wantTotal := 0
		for _, x := range recs {
			if x%4 != 3 {
				wantTotal++
			}
		}
		return total == wantTotal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupBy groups partition the input exactly.
func TestGroupByProperty(t *testing.T) {
	f := func(data []uint8) bool {
		q, _ := newTestQueryable(data, math.Inf(1))
		g := GroupBy(q, func(x uint8) uint8 { return x % 7 })
		seen := 0
		keys := make(map[uint8]bool)
		for _, grp := range g.records {
			if keys[grp.Key] {
				return false // duplicate group key
			}
			keys[grp.Key] = true
			if len(grp.Items) == 0 {
				return false // empty group
			}
			for _, x := range grp.Items {
				if x%7 != grp.Key {
					return false
				}
			}
			seen += len(grp.Items)
		}
		return seen == len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
