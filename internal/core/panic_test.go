package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dptrace/internal/noise"
)

// These tests pin the panic-containment contract: a panic in a
// parallel worker surfaces on the coordinating goroutine as a
// recoverable *WorkerPanic (instead of killing the process), and the
// aggregation boundary converts panics to ErrInternal with the same
// ε-contract as cancellation — before agent.Apply nothing is charged,
// after Apply the charge stands.

// manyInts returns enough records to clear any parallel threshold.
func manyInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestWorkerPanicIsRecoverableOnCaller(t *testing.T) {
	q, _ := NewQueryable(manyInts(1000), math.Inf(1), noise.NewSeededSource(1, 2))
	q = q.WithExecOptions(ExecOptions{Workers: 4, Threshold: 1})

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		WhereRecorded(q, func(v int) bool {
			if v == 617 {
				panic("predicate bug")
			}
			return true
		})
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", recovered, recovered)
	}
	if wp.Value != "predicate bug" {
		t.Fatalf("WorkerPanic.Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 || !strings.Contains(string(wp.Stack), "panic_test") {
		t.Fatalf("WorkerPanic.Stack should capture the worker's stack, got %q", wp.Stack)
	}
	if !strings.Contains(wp.Error(), "predicate bug") {
		t.Fatalf("Error() = %q", wp.Error())
	}
}

func TestGroupByWorkerPanicIsRecoverable(t *testing.T) {
	q, _ := NewQueryable(manyInts(1000), math.Inf(1), noise.NewSeededSource(3, 4))
	q = q.WithExecOptions(ExecOptions{Workers: 4, Threshold: 1})

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		GroupBy(q, func(v int) int {
			if v == 123 {
				panic("key bug")
			}
			return v % 7
		})
	}()
	if _, ok := recovered.(*WorkerPanic); !ok {
		t.Fatalf("recovered %T, want *WorkerPanic", recovered)
	}
}

func TestAggregationPanicAfterApplyChargesAndReturnsErrInternal(t *testing.T) {
	q, root := NewQueryable(manyInts(100), 5.0, noise.NewSeededSource(5, 6))
	v, err := NoisySum(q, 0.5, func(v int) float64 {
		panic("selector bug")
	})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if v != 0 {
		t.Fatalf("value on panic = %v, want zero", v)
	}
	// The selector runs after agent.Apply: the charge stands
	// (conservative — the same contract as post-Apply cancellation).
	if got := root.Spent(); got != 0.5 {
		t.Fatalf("spent = %v, want the applied 0.5", got)
	}
	// The engine survives: the next aggregation works normally.
	if _, err := q.NoisyCount(0.5); err != nil {
		t.Fatalf("count after recovered panic: %v", err)
	}
	if got := root.Spent(); got != 1.0 {
		t.Fatalf("spent after second query = %v, want 1.0", got)
	}
}

func TestParallelWorkerPanicBecomesErrInternalAtAggregation(t *testing.T) {
	// End-to-end through both layers: the worker guard re-raises on the
	// caller, whose next aggregation boundary... is not in this chain —
	// WhereRecorded is a transformation. So run the panicking predicate
	// inside an aggregation's selector via a derived pipeline instead:
	// the panic must cross runWorkers (transformation) and be caught by
	// a caller-side recover, then a direct aggregation panic must come
	// out as ErrInternal. Combined here to mirror dpserver's layering.
	q, root := NewQueryable(manyInts(2000), math.Inf(1), noise.NewSeededSource(7, 8))
	q = q.WithExecOptions(ExecOptions{Workers: 4, Threshold: 1})

	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = panicError(r)
			}
		}()
		filtered := WhereRecorded(q, func(v int) bool {
			if v == 1999 {
				panic("late worker bug")
			}
			return true
		})
		_, err = filtered.NoisyCount(0.1)
		return err
	}
	err := run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "late worker bug") {
		t.Fatalf("err should carry the panic value: %v", err)
	}
	// The panic fired during the transformation, before any Apply.
	if got := root.Spent(); got != 0 {
		t.Fatalf("spent = %v, want 0 (panic before Apply)", got)
	}
}

func TestMedianSelectorPanicContained(t *testing.T) {
	q, root := NewQueryable(manyInts(50), 2.0, noise.NewSeededSource(9, 10))
	_, err := NoisyMedian(q, 0.3, func(v int) float64 { panic("median bug") })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if got := root.Spent(); got != 0.3 {
		t.Fatalf("spent = %v, want 0.3 (post-Apply panic keeps the charge)", got)
	}
}
