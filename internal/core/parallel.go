package core

import (
	"hash/maphash"
	"sort"
)

// This file holds the data-parallel execution strategies selected by
// ExecOptions (see exec.go). Two families:
//
//   - Chunked worker-pool execution for the embarrassingly-parallel
//     operators (Where/Select/SelectMany/Distinct/Partition): the
//     input is split into one contiguous chunk per worker, each worker
//     processes its chunk independently into private storage, and the
//     results are merged in chunk order. Because chunks cover the
//     input in order and the merge concatenates in chunk order, the
//     output is byte-identical to the sequential single-pass loop.
//
//   - Sharded-hash execution for the keyed operators (GroupBy/Join/
//     GroupJoin/Intersect/Except): keys are hash-partitioned across
//     one shard per worker, each worker builds its shard's map
//     concurrently (a key's records all land in exactly one shard, so
//     no locks), and the shards are merged by each key's global
//     first-appearance index — restoring the documented
//     first-appearance order exactly.
//
// Key functions are user code of unknown cost, so both families
// evaluate them inside the parallel phase (once per record — the
// sequential paths hold the same single-evaluation contract).
//
// The shard hash (hash/maphash.Comparable) is seeded randomly per
// process. That randomness never reaches the output: shard assignment
// only decides WHICH worker builds a key's group, while the merge
// order comes from first-appearance indexes, which are a pure function
// of the input ordering.

// shardSeed seeds the hash that partitions keys across shards.
var shardSeed = maphash.MakeSeed()

// shardOf assigns key k to one of w shards.
func shardOf[K comparable](k K, w int) int {
	return int(maphash.Comparable(shardSeed, k) % uint64(w))
}

// mergeChunks concatenates per-worker output slices in chunk order.
// The result is non-nil even when empty, matching the sequential
// paths' make([]T, 0, …) outputs.
func mergeChunks[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// whereParallel is the chunked strategy behind WhereRecorded; see the
// sequential Where for the semantics.
func whereParallel[T any](q *Queryable[T], pred func(T) bool) *Queryable[T] {
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	parts := make([][]T, w)
	runWorkers(w, func(i int) {
		lo, hi := chunk(n, w, i)
		out := make([]T, 0, hi-lo)
		for j, r := range q.records[lo:hi] {
			if cn.poll(j) {
				return
			}
			if pred(r) {
				out = append(out, r)
			}
		}
		parts[i] = out
	})
	if cn.abandoned() {
		return derive(q, []T{}, q.agent)
	}
	parallelExecs.Add(1)
	return derive(q, mergeChunks(parts), q.agent)
}

// selectParallel is the chunked strategy behind SelectRecorded:
// workers write disjoint ranges of a pre-sized output slice.
func selectParallel[T, U any](q *Queryable[T], f func(T) U) *Queryable[U] {
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	out := make([]U, n)
	runWorkers(w, func(i int) {
		lo, hi := chunk(n, w, i)
		for j := lo; j < hi; j++ {
			if cn.poll(j - lo) {
				return
			}
			out[j] = f(q.records[j])
		}
	})
	if cn.abandoned() {
		return derive(q, []U{}, q.agent)
	}
	parallelExecs.Add(1)
	return derive(q, out, q.agent)
}

// selectManyParallel is the chunked strategy for SelectMany.
func selectManyParallel[T, U any](q *Queryable[T], fanout int, f func(T) []U) *Queryable[U] {
	start := opStart(q.rec)
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	parts := make([][]U, w)
	runWorkers(w, func(i int) {
		lo, hi := chunk(n, w, i)
		out := make([]U, 0, hi-lo)
		for j, r := range q.records[lo:hi] {
			if cn.poll(j) {
				return
			}
			mapped := f(r)
			if len(mapped) > fanout {
				mapped = mapped[:fanout]
			}
			out = append(out, mapped...)
		}
		parts[i] = out
	})
	if cn.abandoned() {
		return derive(q, []U{}, newScaleAgent(q.agent, float64(fanout)))
	}
	parallelExecs.Add(1)
	out := mergeChunks(parts)
	opDone(q.rec, "selectmany", start, n, len(out), w)
	return derive(q, out, newScaleAgent(q.agent, float64(fanout)))
}

// distinctParallel parallelizes the key computation and per-chunk
// dedup; a sequential pass over the (much smaller) per-chunk survivors
// restores the global first-appearance order.
func distinctParallel[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[T] {
	start := opStart(q.rec)
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	recParts := make([][]T, w)
	keyParts := make([][]K, w)
	runWorkers(w, func(i int) {
		lo, hi := chunk(n, w, i)
		seen := make(map[K]struct{}, hi-lo)
		recs := make([]T, 0, hi-lo)
		keys := make([]K, 0, hi-lo)
		for j, r := range q.records[lo:hi] {
			if cn.poll(j) {
				return
			}
			k := key(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			recs = append(recs, r)
			keys = append(keys, k)
		}
		recParts[i] = recs
		keyParts[i] = keys
	})
	if cn.abandoned() {
		return derive(q, []T{}, q.agent)
	}
	// Cross-chunk dedup: chunks are scanned in input order and each
	// chunk preserved its local first appearances, so the global first
	// appearance of every key survives.
	total := 0
	for _, p := range recParts {
		total += len(p)
	}
	seen := make(map[K]struct{}, total)
	out := make([]T, 0, total)
	for ci, recs := range recParts {
		for j, r := range recs {
			k := keyParts[ci][j]
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
	}
	parallelExecs.Add(1)
	opDone(q.rec, "distinct", start, n, len(out), w)
	return derive(q, out, q.agent)
}

// keyedGroup is one key's records plus the global index of the key's
// first appearance, the merge ordinal that restores sequential order.
type keyedGroup[K comparable, T any] struct {
	first int
	key   K
	items []T
}

// buildShards hash-partitions records by key across w shards and
// builds each shard's groups concurrently. Within a shard, groups are
// naturally ordered by first appearance (records are scanned in input
// order). The returned maps index each shard's groups for lookups.
func buildShards[T any, K comparable](records []T, keyFn func(T) K, w int, cn *canceler) (groups [][]keyedGroup[K, T], index []map[K]int) {
	n := len(records)
	// Phase 1 (chunked): evaluate the key function once per record and
	// tag each record with its shard.
	keys := make([]K, n)
	shards := make([]uint32, n)
	cw := w
	if cw > n {
		cw = n
	}
	runWorkers(cw, func(i int) {
		lo, hi := chunk(n, cw, i)
		for j := lo; j < hi; j++ {
			if cn.poll(j - lo) {
				return
			}
			k := keyFn(records[j])
			keys[j] = k
			shards[j] = uint32(shardOf(k, w))
		}
	})
	if cn.abandoned() {
		return make([][]keyedGroup[K, T], w), make([]map[K]int, w)
	}
	// Phase 2 (sharded): each worker owns one shard and scans the tag
	// array for its records. A key's records all carry the same tag, so
	// shard maps never race.
	groups = make([][]keyedGroup[K, T], w)
	index = make([]map[K]int, w)
	runWorkers(w, func(s int) {
		idx := make(map[K]int)
		var gs []keyedGroup[K, T]
		for j := 0; j < n; j++ {
			if cn.poll(j) {
				return
			}
			if shards[j] != uint32(s) {
				continue
			}
			k := keys[j]
			if gi, ok := idx[k]; ok {
				gs[gi].items = append(gs[gi].items, records[j])
			} else {
				idx[k] = len(gs)
				gs = append(gs, keyedGroup[K, T]{first: j, key: k, items: []T{records[j]}})
			}
		}
		groups[s] = gs
		index[s] = idx
	})
	return groups, index
}

// mergeByFirst flattens per-shard groups into global first-appearance
// order.
func mergeByFirst[K comparable, T any](shards [][]keyedGroup[K, T]) []keyedGroup[K, T] {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	all := make([]keyedGroup[K, T], 0, total)
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	return all
}

// shardLookup finds key k's records in sharded groups built with the
// same width.
func shardLookup[K comparable, T any](groups [][]keyedGroup[K, T], index []map[K]int, k K) ([]T, bool) {
	s := shardOf(k, len(groups))
	gi, ok := index[s][k]
	if !ok {
		return nil, false
	}
	return groups[s][gi].items, true
}

// groupByParallel is the sharded-hash strategy for GroupBy.
func groupByParallel[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[Group[K, T]] {
	start := opStart(q.rec)
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	shards, _ := buildShards(q.records, key, w, cn)
	if cn.abandoned() {
		return derive(q, []Group[K, T]{}, newScaleAgent(q.agent, 2))
	}
	ordered := mergeByFirst(shards)
	groups := make([]Group[K, T], len(ordered))
	for i, g := range ordered {
		groups[i] = Group[K, T]{Key: g.key, Items: g.items}
	}
	parallelExecs.Add(1)
	opDone(q.rec, "groupby", start, n, len(groups), w)
	return derive(q, groups, newScaleAgent(q.agent, 2))
}

// joinParallel is the sharded-hash strategy for Join: both sides'
// groups build concurrently, then the zip phase is chunked over the
// left side's first-appearance key order.
func joinParallel[T, U any, K comparable, R any](
	a *Queryable[T], b *Queryable[U],
	keyA func(T) K, keyB func(U) K,
	result func(T, U) R,
) *Queryable[R] {
	rec := combineRec(a.rec, b.rec)
	ctx := combineCtx(a.ctx, b.ctx)
	start := opStart(rec)
	w := a.exec.width(len(a.records) + len(b.records))
	cn := newCanceler(ctx)
	var shardsA [][]keyedGroup[K, T]
	var shardsB [][]keyedGroup[K, U]
	var indexB []map[K]int
	runWorkers(2, func(side int) {
		if side == 0 {
			shardsA, _ = buildShards(a.records, keyA, w, cn)
		} else {
			shardsB, indexB = buildShards(b.records, keyB, w, cn)
		}
	})
	empty := func() *Queryable[R] {
		res := derive(a, []R{}, newDualAgent(a.agent, b.agent))
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if cn.abandoned() {
		return empty()
	}
	orderA := mergeByFirst(shardsA)

	nk := len(orderA)
	cw := w
	if cw > nk {
		cw = nk
	}
	if cw < 1 {
		cw = 1
	}
	parts := make([][]R, cw)
	runWorkers(cw, func(i int) {
		lo, hi := chunk(nk, cw, i)
		out := make([]R, 0, hi-lo)
		for gi, g := range orderA[lo:hi] {
			if cn.poll(gi) {
				return
			}
			gb, ok := shardLookup(shardsB, indexB, g.key)
			if !ok {
				continue
			}
			ga := g.items
			n := len(ga)
			if len(gb) < n {
				n = len(gb)
			}
			for j := 0; j < n; j++ {
				out = append(out, result(ga[j], gb[j]))
			}
		}
		parts[i] = out
	})
	if cn.abandoned() {
		return empty()
	}
	out := mergeChunks(parts)
	parallelExecs.Add(1)
	opDone(rec, "join", start, len(a.records)+len(b.records), len(out), w)
	res := derive(a, out, newDualAgent(a.agent, b.agent))
	res.rec = rec
	res.ctx = ctx
	return res
}

// groupJoinParallel is the sharded-hash strategy for GroupJoin.
func groupJoinParallel[T, U any, K comparable, R any](
	a *Queryable[T], b *Queryable[U],
	keyA func(T) K, keyB func(U) K,
	result func(K, []T, []U) R,
) *Queryable[R] {
	rec := combineRec(a.rec, b.rec)
	ctx := combineCtx(a.ctx, b.ctx)
	start := opStart(rec)
	w := a.exec.width(len(a.records) + len(b.records))
	cn := newCanceler(ctx)
	var shardsA [][]keyedGroup[K, T]
	var shardsB [][]keyedGroup[K, U]
	var indexB []map[K]int
	runWorkers(2, func(side int) {
		if side == 0 {
			shardsA, _ = buildShards(a.records, keyA, w, cn)
		} else {
			shardsB, indexB = buildShards(b.records, keyB, w, cn)
		}
	})
	agent := func() Agent {
		return newDualAgent(newScaleAgent(a.agent, 2), newScaleAgent(b.agent, 2))
	}
	empty := func() *Queryable[R] {
		res := derive(a, []R{}, agent())
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if cn.abandoned() {
		return empty()
	}
	orderA := mergeByFirst(shardsA)

	nk := len(orderA)
	cw := w
	if cw > nk {
		cw = nk
	}
	if cw < 1 {
		cw = 1
	}
	parts := make([][]R, cw)
	runWorkers(cw, func(i int) {
		lo, hi := chunk(nk, cw, i)
		out := make([]R, 0, hi-lo)
		for gi, g := range orderA[lo:hi] {
			if cn.poll(gi) {
				return
			}
			gb, ok := shardLookup(shardsB, indexB, g.key)
			if !ok {
				continue
			}
			out = append(out, result(g.key, g.items, gb))
		}
		parts[i] = out
	})
	if cn.abandoned() {
		return empty()
	}
	out := mergeChunks(parts)
	parallelExecs.Add(1)
	opDone(rec, "groupjoin", start, len(a.records)+len(b.records), len(out), w)
	res := derive(a, out, agent())
	res.rec = rec
	res.ctx = ctx
	return res
}

// buildKeySet hash-partitions other-side keys across w shard sets,
// building them concurrently.
func buildKeySet[U any, K comparable](records []U, keyFn func(U) K, w int, cn *canceler) []map[K]struct{} {
	n := len(records)
	keys := make([]K, n)
	shards := make([]uint32, n)
	cw := w
	if cw > n {
		cw = n
	}
	if cw < 1 {
		cw = 1
	}
	runWorkers(cw, func(i int) {
		lo, hi := chunk(n, cw, i)
		for j := lo; j < hi; j++ {
			if cn.poll(j - lo) {
				return
			}
			k := keyFn(records[j])
			keys[j] = k
			shards[j] = uint32(shardOf(k, w))
		}
	})
	sets := make([]map[K]struct{}, w)
	if cn.abandoned() {
		return sets
	}
	runWorkers(w, func(s int) {
		set := make(map[K]struct{})
		for j := 0; j < n; j++ {
			if cn.poll(j) {
				return
			}
			if shards[j] == uint32(s) {
				set[keys[j]] = struct{}{}
			}
		}
		sets[s] = set
	})
	return sets
}

// semiJoinParallel implements Intersect (keep=true) and Except
// (keep=false): a sharded set build over other, then a chunked filter
// of q's records against it.
func semiJoinParallel[T, U any, K comparable](
	q *Queryable[T], other *Queryable[U],
	keyQ func(T) K, keyOther func(U) K,
	keep bool, op string,
) *Queryable[T] {
	rec := combineRec(q.rec, other.rec)
	ctx := combineCtx(q.ctx, other.ctx)
	start := opStart(rec)
	n := len(q.records)
	w := q.exec.width(n + len(other.records))
	cn := newCanceler(ctx)
	empty := func() *Queryable[T] {
		res := derive(q, []T{}, newDualAgent(q.agent, other.agent))
		res.rec = rec
		res.ctx = ctx
		return res
	}
	present := buildKeySet(other.records, keyOther, w, cn)
	if cn.abandoned() {
		return empty()
	}

	cw := w
	if cw > n {
		cw = n
	}
	if cw < 1 {
		cw = 1
	}
	parts := make([][]T, cw)
	runWorkers(cw, func(i int) {
		lo, hi := chunk(n, cw, i)
		out := make([]T, 0, hi-lo)
		for j, r := range q.records[lo:hi] {
			if cn.poll(j) {
				return
			}
			k := keyQ(r)
			_, ok := present[shardOf(k, w)][k]
			if ok == keep {
				out = append(out, r)
			}
		}
		parts[i] = out
	})
	if cn.abandoned() {
		return empty()
	}
	out := mergeChunks(parts)
	parallelExecs.Add(1)
	opDone(rec, op, start, n+len(other.records), len(out), w)
	res := derive(q, out, newDualAgent(q.agent, other.agent))
	res.rec = rec
	res.ctx = ctx
	return res
}

// partitionParallel is the chunked strategy for Partition: each worker
// fills private buckets for its chunk, merged bucket-wise in chunk
// order.
func partitionParallel[T any, K comparable](q *Queryable[T], keys []K, keyOf func(T) K, wanted map[K]int) map[K]*Queryable[T] {
	start := opStart(q.rec)
	n := len(q.records)
	w := q.exec.width(n)
	cn := newCanceler(q.ctx)
	localBuckets := make([][][]T, w)
	localMatched := make([]int, w)
	runWorkers(w, func(i int) {
		lo, hi := chunk(n, w, i)
		buckets := make([][]T, len(keys))
		matched := 0
		for j, r := range q.records[lo:hi] {
			if cn.poll(j) {
				return
			}
			if bi, ok := wanted[keyOf(r)]; ok {
				buckets[bi] = append(buckets[bi], r)
				matched++
			}
		}
		localBuckets[i] = buckets
		localMatched[i] = matched
	})
	if cn.abandoned() {
		shared := newPartitionAgent(q.agent, len(keys))
		parts := make(map[K]*Queryable[T], len(keys))
		for i, k := range keys {
			parts[k] = derive(q, []T(nil), shared.member(i))
		}
		return parts
	}
	matched := 0
	for _, m := range localMatched {
		matched += m
	}
	// Merge per-key in chunk order. Buckets with no records stay nil,
	// matching the sequential path.
	buckets := make([][]T, len(keys))
	for bi := range keys {
		for ci := 0; ci < w; ci++ {
			buckets[bi] = append(buckets[bi], localBuckets[ci][bi]...)
		}
	}
	shared := newPartitionAgent(q.agent, len(keys))
	parts := make(map[K]*Queryable[T], len(keys))
	for i, k := range keys {
		parts[k] = derive(q, buckets[i], shared.member(i))
	}
	parallelExecs.Add(1)
	opDone(q.rec, "partition", start, n, matched, w)
	return parts
}
