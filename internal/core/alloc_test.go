package core

import (
	"math"
	"testing"

	"dptrace/internal/noise"
)

// Allocation-budget guards for the fused streaming path. The fused
// engine's reason to exist is that a chained pipeline costs a constant
// handful of heap objects instead of per-operator record slices; these
// tests pin that contract with testing.AllocsPerRun so a regression
// (an accidental closure capture, an interface box in the hot path)
// fails the gate rather than silently eating the win.
//
// The guards skip under -race (the detector's instrumentation inflates
// allocation counts); check.sh runs them in a dedicated non-race
// invocation.

// allocQueryable is small — allocation counts don't depend on n, and
// AllocsPerRun runs the function many times.
func allocQueryable(tb testing.TB) *Queryable[int] {
	tb.Helper()
	records := make([]int, 4096)
	for i := range records {
		records[i] = i
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 2))
	// Force the unrecorded fast path regardless of any process-wide
	// default recorder another test may have installed.
	return q.WithRecorder(nil)
}

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race; check.sh runs this guard without it")
	}
}

// TestAllocFusedWhereSelectSum: the flagship fused chain is at most 2
// allocations per run — one stage link for the type-changing Select
// (the source Where folds into the scan loop for free) and one
// accumulator sink for the terminal.
func TestAllocFusedWhereSelectSum(t *testing.T) {
	skipUnderRace(t)
	q := allocQueryable(t)
	allocs := testing.AllocsPerRun(20, func() {
		s := q.Stream().Where(func(x int) bool { return x%2 == 0 })
		m := StreamSelect(s, func(x int) float64 { return float64(x) })
		if _, err := StreamNoisySum(m, 1.0, func(v float64) float64 { return v }); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("fused Where→Select→Sum: %.0f allocs/op, budget is 2", allocs)
	}
}

// TestAllocFusedWhereCount: a filtered count is 1 allocation — the
// predicate folds into the source loop, leaving only the count sink.
func TestAllocFusedWhereCount(t *testing.T) {
	skipUnderRace(t)
	q := allocQueryable(t)
	allocs := testing.AllocsPerRun(20, func() {
		s := q.Stream().Where(func(x int) bool { return x%2 == 0 })
		if _, err := s.NoisyCount(1.0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("fused Where→Count: %.0f allocs/op, budget is 1", allocs)
	}
}

// TestAllocUnfusedWhere / TestAllocUnfusedSelect: the materializing
// operators stay at their long-standing 1 allocation (the output
// slice) — the fused path must never regress the plain path, whose
// inlining contract is documented in instrument.go.
func TestAllocUnfusedWhere(t *testing.T) {
	skipUnderRace(t)
	q := allocQueryable(t)
	allocs := testing.AllocsPerRun(20, func() {
		_ = q.Where(func(x int) bool { return x%2 == 0 })
	})
	if allocs != 1 {
		t.Fatalf("materializing Where: %.0f allocs/op, want exactly 1 (the output slice)", allocs)
	}
}

func TestAllocUnfusedSelect(t *testing.T) {
	skipUnderRace(t)
	q := allocQueryable(t)
	allocs := testing.AllocsPerRun(20, func() {
		_ = Select(q, func(x int) int { return x * 2 })
	})
	if allocs != 1 {
		t.Fatalf("materializing Select: %.0f allocs/op, want exactly 1 (the output slice)", allocs)
	}
}
