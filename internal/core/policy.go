package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dptrace/internal/noise"
)

// This file implements the budget-policy machinery the paper's §7
// sketches for data owners: sequential composition across analysts
// (costs add, so a shared total budget bounds cumulative leakage),
// per-analyst caps, and budgets that relax over time ("reduce privacy
// cost (i.e., increase ε) with time such that the data is available
// longer").

// NewQueryableFor wraps records with an explicit budget agent, for
// policy layers that manage agents themselves (e.g. AnalystPolicy).
// Most callers want NewQueryable.
func NewQueryableFor[T any](records []T, agent Agent, src noise.Source) *Queryable[T] {
	return &Queryable[T]{
		records: records,
		agent:   agent,
		src:     noise.NewLockedSource(src),
		rec:     DefaultRecorder(),
		exec:    DefaultExecOptions(),
	}
}

// AnalystPolicy enforces two simultaneous bounds over one dataset: a
// TOTAL privacy budget across all analysts (differential privacy
// composes additively, so this caps cumulative leakage) and a
// per-analyst cap (no single analyst can consume the whole allowance).
type AnalystPolicy struct {
	mu         sync.Mutex
	total      *RootAgent
	perAnalyst float64
	analysts   map[string]*RootAgent

	// Per-analyst spend journal (see SetSpendJournal); nil = none.
	journalSpend    func(analyst string, epsilon float64) error
	journalRollback func(analyst string, epsilon float64)
}

// NewAnalystPolicy creates a policy with the given bounds. Either may
// be math.Inf(1) to disable that bound.
func NewAnalystPolicy(totalBudget, perAnalystBudget float64) *AnalystPolicy {
	return &AnalystPolicy{
		total:      NewRootAgent(totalBudget),
		perAnalyst: perAnalystBudget,
		analysts:   make(map[string]*RootAgent),
	}
}

// AgentFor returns the budget agent for one analyst: spends are
// charged atomically against both the analyst's cap and the shared
// total. The same analyst name always maps to the same cap.
func (p *AnalystPolicy) AgentFor(analyst string) Agent {
	return newDualAgent(p.analystRoot(analyst), p.total)
}

// SilentAgentFor is AgentFor with journal suppression: accepted
// charges move the same in-memory ledgers (the analyst's cap and the
// shared total, atomically) but skip the per-charge spend journal.
// The caller owns durability for these spends. The standing-query
// scheduler is the intended user: each window's measured charge is
// journaled together with its cursor advance as one atomic
// standing_window event, whose replay folds the same ε into the same
// per-analyst and total sums.
func (p *AnalystPolicy) SilentAgentFor(analyst string) Agent {
	return newDualAgent(silentRoot{p.analystRoot(analyst)}, silentRoot{p.total})
}

func (p *AnalystPolicy) analystRoot(analyst string) *RootAgent {
	p.mu.Lock()
	defer p.mu.Unlock()
	root, ok := p.analysts[analyst]
	if !ok {
		root = NewRootAgent(p.perAnalyst)
		if p.journalSpend != nil {
			root.SetJournal(analystJournal{analyst: analyst, policy: p})
		}
		p.analysts[analyst] = root
	}
	return root
}

// SetSpendJournal installs a durable spend journal on the policy:
// every analyst's acknowledged charge first passes through spend (an
// error refuses the charge), and rollbacks of acked charges pass
// through rollback. Charges are journaled at the per-analyst agent —
// the shared total is the in-order sum of per-analyst movements, so a
// replayed journal reconstructs both ledgers exactly. Install before
// the policy serves queries; it applies to existing and future
// analysts.
func (p *AnalystPolicy) SetSpendJournal(
	spend func(analyst string, epsilon float64) error,
	rollback func(analyst string, epsilon float64),
) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.journalSpend = spend
	p.journalRollback = rollback
	for analyst, root := range p.analysts {
		root.SetJournal(analystJournal{analyst: analyst, policy: p})
	}
}

// RestoreSpent force-sets recovered cumulative spends — the
// crash-recovery path, bypassing budget checks and journaling.
// perAnalyst maps analyst name to recovered spend; total is the shared
// budget's recovered in-order sum (NOT recomputed from the map, whose
// iteration order would change the float accumulation).
func (p *AnalystPolicy) RestoreSpent(perAnalyst map[string]float64, total float64) {
	for analyst, spent := range perAnalyst {
		p.analystRoot(analyst).restoreSpent(spent)
	}
	p.total.restoreSpent(total)
}

// Budgets returns the policy's configured bounds (the constructor's
// arguments): the shared total and the per-analyst cap. The ledger
// layer re-journals a dataset registration from these when a promoted
// replica discovers it was never persisted.
func (p *AnalystPolicy) Budgets() (total, perAnalyst float64) {
	return p.total.Budget(), p.perAnalyst
}

// analystJournal adapts the policy's journal funcs to one analyst's
// SpendJournal. The funcs are read without the policy lock: they are
// fixed before serving begins (SetSpendJournal contract).
type analystJournal struct {
	analyst string
	policy  *AnalystPolicy
}

func (j analystJournal) JournalSpend(epsilon float64) error {
	return j.policy.journalSpend(j.analyst, epsilon)
}

func (j analystJournal) JournalRollback(epsilon float64) {
	if j.policy.journalRollback != nil {
		j.policy.journalRollback(j.analyst, epsilon)
	}
}

// SpentBy reports one analyst's cumulative privacy cost.
func (p *AnalystPolicy) SpentBy(analyst string) float64 {
	return p.analystRoot(analyst).Spent()
}

// RemainingFor reports how much one analyst may still spend — the
// lesser of their personal remainder and the shared total's.
func (p *AnalystPolicy) RemainingFor(analyst string) float64 {
	personal := p.analystRoot(analyst).Remaining()
	if shared := p.total.Remaining(); shared < personal {
		return shared
	}
	return personal
}

// PerAnalystBudget reports the per-analyst allowance this policy was
// created with (+Inf when unlimited) — the denominator for budget
// burn-rate telemetry.
func (p *AnalystPolicy) PerAnalystBudget() float64 { return p.perAnalyst }

// TotalSpent reports the cumulative cost across all analysts.
func (p *AnalystPolicy) TotalSpent() float64 { return p.total.Spent() }

// TotalRemaining reports the shared budget's remainder.
func (p *AnalystPolicy) TotalRemaining() float64 { return p.total.Remaining() }

// RelaxingBudget is a budget that grows with time: it starts at base
// and gains ratePerSecond indefinitely (or up to max, if max is
// finite). The paper's §7 suggests this as a policy for long-lived
// datasets: early analysts get strong protection; as data ages the
// owner tolerates more cumulative leakage.
type RelaxingBudget struct {
	mu            sync.Mutex
	base          float64
	ratePerSecond float64
	max           float64
	start         time.Time
	now           func() time.Time
	spent         float64
}

// NewRelaxingBudget creates a relaxing budget. now may be nil (wall
// clock); tests inject a fake clock.
func NewRelaxingBudget(base, ratePerSecond, max float64, now func() time.Time) *RelaxingBudget {
	if base < 0 || ratePerSecond < 0 || math.IsNaN(base) || math.IsNaN(ratePerSecond) {
		panic(fmt.Sprintf("core: invalid relaxing budget base=%v rate=%v", base, ratePerSecond))
	}
	if now == nil {
		now = time.Now
	}
	return &RelaxingBudget{
		base:          base,
		ratePerSecond: ratePerSecond,
		max:           max,
		start:         now(),
		now:           now,
	}
}

// allowance returns the budget available at the current time.
func (b *RelaxingBudget) allowance() float64 {
	elapsed := b.now().Sub(b.start).Seconds()
	if elapsed < 0 {
		elapsed = 0
	}
	a := b.base + b.ratePerSecond*elapsed
	if a > b.max {
		a = b.max
	}
	return a
}

// Apply implements Agent.
func (b *RelaxingBudget) Apply(epsilon float64) error {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return ErrInvalidEpsilon
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.spent+epsilon > b.allowance()+1e-12 {
		return fmt.Errorf("%w: requested %v, available now %v", ErrBudgetExceeded, epsilon, b.allowance()-b.spent)
	}
	b.spent += epsilon
	return nil
}

// Rollback implements Agent.
func (b *RelaxingBudget) Rollback(epsilon float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spent -= epsilon
	if b.spent < 0 {
		b.spent = 0
	}
}

// Spent reports the cumulative privacy cost so far.
func (b *RelaxingBudget) Spent() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Available reports what could be spent right now.
func (b *RelaxingBudget) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowance() - b.spent
}
