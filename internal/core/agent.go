// Package core implements a differentially-private query engine modeled
// on PINQ (Privacy INtegrated Queries, McSherry SIGMOD'09), the platform
// used by "Differentially-Private Network Trace Analysis" (McSherry &
// Mahajan, SIGCOMM 2010).
//
// A protected dataset is wrapped in a Queryable, which supports SQL-like
// transformations (Where, Select, GroupBy, Join, Concat, Intersect,
// Partition, ...) and noisy aggregations (NoisyCount, NoisySum,
// NoisyAverage, NoisyMedian). Transformations never reveal data; they
// return new Queryables and adjust the sensitivity bookkeeping exactly
// as the paper's Table 1 prescribes. Aggregations charge the dataset's
// privacy budget and perturb their result with noise calibrated to the
// query's sensitivity.
//
// Budget accounting is implemented as a tree of Agents mirroring PINQ's
// design: every Queryable points at an agent; an aggregation run at ε on
// a Queryable with stability s requests s·ε from its agent, which
// forwards (possibly scaled or max-combined) requests up to the root
// agent holding the dataset's total budget.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExceeded is returned when an aggregation would exceed the
// dataset's remaining privacy budget. The paper (§7) relies on this
// refusal to let data owners bound cumulative privacy loss across
// analysts; note that unlike the bit-leakage proposals the paper
// critiques, the refusal itself is not data-dependent.
var ErrBudgetExceeded = errors.New("core: privacy budget exceeded")

// ErrInvalidEpsilon is returned for non-positive or non-finite ε.
var ErrInvalidEpsilon = errors.New("core: epsilon must be positive and finite")

// ErrJournal is returned (wrapped) when a RootAgent's spend journal
// refuses an append: the charge is NOT applied. Durability gates
// acknowledgement — a spend that could not be made durable must not
// happen, or a crash would silently re-open the budget.
var ErrJournal = errors.New("core: spend journal append failed")

// ErrInternal is returned (wrapped) when an aggregation recovers a
// panic — a bug in user-supplied functions (predicates, selectors, key
// functions) or in the engine itself. The ε-contract matches
// cancellation (ErrCanceled): a panic raised before agent.Apply
// charges zero ε; a panic after Apply leaves the charge standing,
// because the noisy computation may have partially run and the
// conservative reading is that budget was consumed.
var ErrInternal = errors.New("core: internal error (recovered panic)")

// A SpendJournal durably records budget movements. RootAgent calls
// JournalSpend BEFORE acknowledging a charge (an error refuses the
// charge) and JournalRollback when a previously-acked charge is undone
// by an atomic multi-parent spend. Implementations are called with the
// agent's lock held and must not call back into the agent.
type SpendJournal interface {
	JournalSpend(epsilon float64) error
	JournalRollback(epsilon float64)
}

// budgetSlack is the ε-comparison tolerance in Apply: ten charges of
// 0.1 against a budget of 1.0 sum to 0.9999999999999999 in float64,
// and a replayed ledger must land on the exact same refusal boundary
// as the live run, so the boundary itself tolerates accumulation
// error well below any real ε.
const budgetSlack = 1e-9

// An Agent authorizes privacy expenditures. Implementations are safe
// for concurrent use.
type Agent interface {
	// Apply requests permission to spend epsilon of privacy budget.
	// It returns ErrBudgetExceeded (or wraps it) if the spend is not
	// permitted; on error no budget is consumed.
	Apply(epsilon float64) error
	// Rollback undoes a previously successful Apply of the same
	// epsilon. It is used internally for atomic multi-parent spends.
	Rollback(epsilon float64)
}

// RootAgent owns the total privacy budget of one protected dataset.
type RootAgent struct {
	mu      sync.Mutex
	budget  float64 // total allowance; may be +Inf
	spent   float64
	journal SpendJournal // optional; see SetJournal
}

// NewRootAgent returns an agent with the given total budget. Pass
// math.Inf(1) for an unlimited budget (useful for calibration runs).
func NewRootAgent(budget float64) *RootAgent {
	if budget < 0 || math.IsNaN(budget) {
		panic(fmt.Sprintf("core: invalid budget %v", budget))
	}
	return &RootAgent{budget: budget}
}

// SetJournal installs a spend journal: every subsequent successful
// Apply is journaled before it returns, and a journal error refuses
// the charge. Install journals at setup time, before the agent serves
// concurrent spends.
func (a *RootAgent) SetJournal(j SpendJournal) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.journal = j
}

// restoreSpent force-sets the cumulative spend — the crash-recovery
// path, which replays a journal rather than re-charging through Apply.
// It bypasses both the budget check and the journal.
func (a *RootAgent) restoreSpent(spent float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = spent
}

// Apply implements Agent. When a journal is installed, the spend is
// journaled before it is acknowledged: a journal failure refuses the
// charge, so an acked charge is never lost to a crash.
func (a *RootAgent) Apply(epsilon float64) error {
	return a.apply(epsilon, true)
}

func (a *RootAgent) apply(epsilon float64, journaled bool) error {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return ErrInvalidEpsilon
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent+epsilon > a.budget+budgetSlack {
		return fmt.Errorf("%w: requested %v, remaining %v", ErrBudgetExceeded, epsilon, a.budget-a.spent)
	}
	if journaled && a.journal != nil {
		if err := a.journal.JournalSpend(epsilon); err != nil {
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	a.spent += epsilon
	return nil
}

// Rollback implements Agent.
func (a *RootAgent) Rollback(epsilon float64) {
	a.rollback(epsilon, true)
}

func (a *RootAgent) rollback(epsilon float64, journaled bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if journaled && a.journal != nil {
		a.journal.JournalRollback(epsilon)
	}
	a.spent -= epsilon
	if a.spent < 0 {
		a.spent = 0
	}
}

// silentRoot is a view of a RootAgent whose charges bypass the spend
// journal: same budget bound, same spent accumulator, no per-charge
// journal traffic. The standing-query scheduler charges through it —
// it journals each window's charge and cursor as ONE atomic ledger
// event, so a separate per-charge journal record would double-count
// the ε on replay (and a crash between the two records could charge a
// window without advancing its cursor).
type silentRoot struct{ root *RootAgent }

func (a silentRoot) Apply(epsilon float64) error { return a.root.apply(epsilon, false) }
func (a silentRoot) Rollback(epsilon float64)    { a.root.rollback(epsilon, false) }

// Spent reports the cumulative privacy cost charged so far.
func (a *RootAgent) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining reports the unspent budget, clamped at zero: float
// accumulation error can leave spent a few ulps past budget (Apply
// tolerates budgetSlack of overshoot), and "-1.1e-16 remaining" is a
// confusing owner-facing number for an exhausted ledger.
func (a *RootAgent) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.budget - a.spent; r > 0 {
		return r
	}
	return 0
}

// Budget reports the total budget the agent was created with.
func (a *RootAgent) Budget() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// scaleAgent multiplies every request by a constant factor before
// forwarding it to its parent. GroupBy installs a ×2 scale ("increases
// sensitivity by two", Table 1); bounded SelectMany installs ×k.
type scaleAgent struct {
	parent Agent
	factor float64
}

func newScaleAgent(parent Agent, factor float64) Agent {
	if factor == 1 {
		return parent
	}
	return &scaleAgent{parent: parent, factor: factor}
}

func (a *scaleAgent) Apply(epsilon float64) error {
	return a.parent.Apply(epsilon * a.factor)
}

func (a *scaleAgent) Rollback(epsilon float64) {
	a.parent.Rollback(epsilon * a.factor)
}

// dualAgent forwards requests to two parents, as required by binary
// transformations (Join, Concat, Intersect) whose output depends on two
// protected inputs. The spend is atomic: if the second parent refuses,
// the first is rolled back.
type dualAgent struct {
	left, right Agent
}

func newDualAgent(left, right Agent) Agent {
	if left == right {
		// Self-join/self-concat: a single record appears on both
		// sides, so a request must be charged twice to the shared
		// parent.
		return &scaleAgent{parent: left, factor: 2}
	}
	return &dualAgent{left: left, right: right}
}

func (a *dualAgent) Apply(epsilon float64) error {
	if err := a.left.Apply(epsilon); err != nil {
		return err
	}
	if err := a.right.Apply(epsilon); err != nil {
		a.left.Rollback(epsilon)
		return err
	}
	return nil
}

func (a *dualAgent) Rollback(epsilon float64) {
	a.left.Rollback(epsilon)
	a.right.Rollback(epsilon)
}

// partitionAgent implements the paper's Partition semantics: the cost
// charged to the source dataset is the MAXIMUM over the parts'
// cumulative costs, not their sum. Each part gets a partMember handle;
// the shared partitionAgent forwards to the parent only increases in
// the maximum.
type partitionAgent struct {
	mu      sync.Mutex
	parent  Agent
	perPart []float64
	max     float64
}

func newPartitionAgent(parent Agent, parts int) *partitionAgent {
	return &partitionAgent{parent: parent, perPart: make([]float64, parts)}
}

// member returns the agent for one part.
func (a *partitionAgent) member(i int) Agent {
	return &partMember{shared: a, index: i}
}

func (a *partitionAgent) apply(i int, epsilon float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	newSpend := a.perPart[i] + epsilon
	if newSpend > a.max {
		delta := newSpend - a.max
		if err := a.parent.Apply(delta); err != nil {
			return err
		}
		a.max = newSpend
	}
	a.perPart[i] = newSpend
	return nil
}

func (a *partitionAgent) rollback(i int, epsilon float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.perPart[i] -= epsilon
	if a.perPart[i] < 0 {
		a.perPart[i] = 0
	}
	// The maximum may have dropped; refund the difference upstream.
	newMax := 0.0
	for _, s := range a.perPart {
		if s > newMax {
			newMax = s
		}
	}
	if newMax < a.max {
		a.parent.Rollback(a.max - newMax)
		a.max = newMax
	}
}

type partMember struct {
	shared *partitionAgent
	index  int
}

func (m *partMember) Apply(epsilon float64) error {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return ErrInvalidEpsilon
	}
	return m.shared.apply(m.index, epsilon)
}

func (m *partMember) Rollback(epsilon float64) {
	m.shared.rollback(m.index, epsilon)
}
