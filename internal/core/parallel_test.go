package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"dptrace/internal/noise"
)

// Differential determinism tests for the parallel execution engine:
// for a fixed input ordering, every operator must produce identical
// output records in identical order — and identical budget charges —
// whether it runs sequentially or under the chunked/sharded parallel
// strategies, at any GOMAXPROCS. These run under -race in the tier-1
// gate, so they double as the engine's concurrency-safety tests.

// parExec forces the parallel strategies on for any input size.
func parExec(workers int) ExecOptions {
	return ExecOptions{Workers: workers, Threshold: 1}
}

// flowRec is a record type with several usable keys, shaped like the
// engine's real packet workloads.
type flowRec struct {
	Src  uint32
	Dst  uint32
	Port uint16
	Len  int
}

// randomFlows builds a deterministic pseudo-random input with heavy
// key skew (many duplicate ports, some duplicate hosts) so grouping
// operators see both tiny and large groups.
func randomFlows(rng *rand.Rand, n int) []flowRec {
	out := make([]flowRec, n)
	for i := range out {
		out[i] = flowRec{
			Src:  uint32(rng.Intn(max(n/7, 1))),
			Dst:  uint32(rng.Intn(max(n/3, 1))),
			Port: uint16(rng.Intn(17)),
			Len:  rng.Intn(1500),
		}
	}
	return out
}

// inputSizes exercises empty, tiny, odd, and chunk-spanning inputs.
var inputSizes = []int{0, 1, 7, 1023, 20000}

// diffCase runs one operator both ways on one input and compares the
// output records and the budget charge of a subsequent aggregation.
// op receives the prepared Queryable and returns the transformed
// records (via the returned Queryable) plus performs one aggregation
// so charges flow to the root agent.
func diffCase[R any](t *testing.T, name string, flows []flowRec, workers int,
	op func(q *Queryable[flowRec]) (*Queryable[R], float64)) {
	t.Helper()

	run := func(exec ExecOptions) ([]R, float64, float64) {
		q, root := NewQueryable(flows, 100, noise.NewSeededSource(11, 13))
		out, eps := op(q.WithExecOptions(exec))
		if eps > 0 {
			if _, err := out.NoisyCount(eps); err != nil {
				t.Fatalf("%s: NoisyCount: %v", name, err)
			}
		}
		return out.records, root.Spent(), eps
	}

	seqOut, seqSpent, _ := run(ExecOptions{})
	parOut, parSpent, _ := run(parExec(workers))

	if !reflect.DeepEqual(seqOut, parOut) {
		t.Fatalf("%s (n=%d, workers=%d): parallel output differs from sequential\nseq: len %d\npar: len %d",
			name, len(flows), workers, len(seqOut), len(parOut))
	}
	if seqSpent != parSpent {
		t.Fatalf("%s (n=%d, workers=%d): budget charge differs: seq %v, par %v",
			name, len(flows), workers, seqSpent, parSpent)
	}
}

// TestParallelMatchesSequential is the differential test the engine's
// determinism guarantee rests on: every operator, randomized inputs,
// several sizes and worker counts, GOMAXPROCS 1 and 4.
func TestParallelMatchesSequential(t *testing.T) {
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })

		rng := rand.New(rand.NewSource(int64(42 + gmp)))
		for _, n := range inputSizes {
			flows := randomFlows(rng, n)
			other := randomFlows(rng, max(n/2, 1))
			for _, workers := range []int{2, 4, 7} {
				diffCase(t, "where", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					return WhereRecorded(q, func(f flowRec) bool { return f.Len%3 == 0 }), 0.5
				})
				diffCase(t, "select", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					return SelectRecorded(q, func(f flowRec) flowRec { f.Len *= 2; return f }), 0.5
				})
				diffCase(t, "selectmany", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					return SelectMany(q, 2, func(f flowRec) []flowRec {
						if f.Port%2 == 0 {
							return []flowRec{f, f, f} // clamped to fanout
						}
						return []flowRec{f}
					}), 0.5
				})
				diffCase(t, "distinct", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					return Distinct(q, func(f flowRec) uint32 { return f.Src }), 0.5
				})
				diffCase(t, "groupby", flows, workers, func(q *Queryable[flowRec]) (*Queryable[Group[uint16, flowRec]], float64) {
					return GroupBy(q, func(f flowRec) uint16 { return f.Port }), 0.5
				})
				diffCase(t, "join", flows, workers, func(q *Queryable[flowRec]) (*Queryable[int], float64) {
					b := NewQueryableFor(other, NewRootAgent(math.Inf(1)), noise.NewSeededSource(3, 5)).
						WithExecOptions(q.Exec())
					return Join(q, b,
						func(f flowRec) uint32 { return f.Dst },
						func(f flowRec) uint32 { return f.Src },
						func(x, y flowRec) int { return x.Len + y.Len }), 0.5
				})
				diffCase(t, "groupjoin", flows, workers, func(q *Queryable[flowRec]) (*Queryable[[3]int], float64) {
					b := NewQueryableFor(other, NewRootAgent(math.Inf(1)), noise.NewSeededSource(3, 5)).
						WithExecOptions(q.Exec())
					return GroupJoin(q, b,
						func(f flowRec) uint16 { return f.Port },
						func(f flowRec) uint16 { return f.Port },
						func(k uint16, ga, gb []flowRec) [3]int { return [3]int{int(k), len(ga), len(gb)} }), 0.5
				})
				diffCase(t, "intersect", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					b := NewQueryableFor(other, NewRootAgent(math.Inf(1)), noise.NewSeededSource(3, 5))
					return Intersect(q, b,
						func(f flowRec) uint32 { return f.Src },
						func(f flowRec) uint32 { return f.Src }), 0.5
				})
				diffCase(t, "except", flows, workers, func(q *Queryable[flowRec]) (*Queryable[flowRec], float64) {
					b := NewQueryableFor(other, NewRootAgent(math.Inf(1)), noise.NewSeededSource(3, 5))
					return Except(q, b,
						func(f flowRec) uint32 { return f.Src },
						func(f flowRec) uint32 { return f.Src }), 0.5
				})
			}
		}
	}
}

// TestParallelPartitionMatchesSequential covers Partition separately
// (its output is a map of parts, not one Queryable).
func TestParallelPartitionMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []uint16{0, 1, 2, 3, 5, 8, 13}
	for _, n := range inputSizes {
		flows := randomFlows(rng, n)
		run := func(exec ExecOptions) (map[uint16][]flowRec, float64) {
			q, root := NewQueryable(flows, 100, noise.NewSeededSource(11, 13))
			parts := Partition(q.WithExecOptions(exec), keys, func(f flowRec) uint16 { return f.Port })
			outs := make(map[uint16][]flowRec, len(parts))
			for k, p := range parts {
				outs[k] = p.records
				if _, err := p.NoisyCount(0.25); err != nil {
					t.Fatalf("partition count: %v", err)
				}
			}
			return outs, root.Spent()
		}
		seqOut, seqSpent := run(ExecOptions{})
		parOut, parSpent := run(parExec(4))
		if !reflect.DeepEqual(seqOut, parOut) {
			t.Fatalf("partition (n=%d): parallel parts differ from sequential", n)
		}
		if seqSpent != parSpent {
			t.Fatalf("partition (n=%d): budget charge differs: seq %v, par %v", n, seqSpent, parSpent)
		}
		// Partition max-accounting: 7 parts each charged 0.25 must cost
		// 0.25 total, regardless of execution strategy.
		if want := 0.25; seqSpent != want {
			t.Fatalf("partition charge = %v, want %v", seqSpent, want)
		}
	}
}

// TestParallelThresholdGate checks small inputs stay on the sequential
// path even with workers configured, and that crossing the threshold
// flips to the parallel strategy (visible via the process counter).
func TestParallelThresholdGate(t *testing.T) {
	flows := randomFlows(rand.New(rand.NewSource(3)), 100)
	q, _ := NewQueryable(flows, math.Inf(1), noise.NewSeededSource(1, 2))

	small := q.WithExecOptions(ExecOptions{Workers: 4, Threshold: 101})
	before := ParallelExecutions()
	GroupBy(small, func(f flowRec) uint16 { return f.Port })
	if got := ParallelExecutions(); got != before {
		t.Fatalf("input below threshold took the parallel path (%d executions added)", got-before)
	}

	big := q.WithExecOptions(ExecOptions{Workers: 4, Threshold: 100})
	before = ParallelExecutions()
	GroupBy(big, func(f flowRec) uint16 { return f.Port })
	if got := ParallelExecutions(); got != before+1 {
		t.Fatalf("input at threshold did not take the parallel path (counter %d -> %d)", before, got)
	}
}

// TestExecPropagation: execution options must survive derivation, like
// the noise source and recorder, so a pipeline configured once stays
// configured.
func TestExecPropagation(t *testing.T) {
	q, _ := NewQueryable([]int{1, 2, 3}, math.Inf(1), noise.NewSeededSource(1, 2))
	p := q.WithParallelism(8)
	if got := p.Exec().Workers; got != 8 {
		t.Fatalf("WithParallelism(8).Exec().Workers = %d", got)
	}
	child := Select(p, func(x int) int { return x + 1 })
	if got := child.Exec().Workers; got != 8 {
		t.Fatalf("derived child lost exec options: Workers = %d", got)
	}
	grandchild := child.Where(func(x int) bool { return x > 0 })
	if got := grandchild.Exec().Workers; got != 8 {
		t.Fatalf("grandchild lost exec options: Workers = %d", got)
	}
}

// TestWithParallelismDefaultsToGOMAXPROCS documents the workers<=0
// convention.
func TestWithParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	q, _ := NewQueryable([]int{1}, math.Inf(1), noise.NewSeededSource(1, 2))
	if got, want := q.WithParallelism(0).Exec().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("WithParallelism(0).Workers = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestDefaultExecOptions: NewQueryable and NewQueryableFor must pick
// up the process-wide configuration (the cmd/experiments -parallel
// path).
func TestDefaultExecOptions(t *testing.T) {
	SetDefaultExecOptions(ExecOptions{Workers: 3, Threshold: 5})
	defer SetDefaultExecOptions(ExecOptions{})

	q, _ := NewQueryable([]int{1}, math.Inf(1), noise.NewSeededSource(1, 2))
	if got := q.Exec(); got.Workers != 3 || got.Threshold != 5 {
		t.Fatalf("NewQueryable did not inherit default exec options: %+v", got)
	}
	qf := NewQueryableFor([]int{1}, NewRootAgent(1), noise.NewSeededSource(1, 2))
	if got := qf.Exec(); got.Workers != 3 || got.Threshold != 5 {
		t.Fatalf("NewQueryableFor did not inherit default exec options: %+v", got)
	}

	SetDefaultExecOptions(ExecOptions{})
	q2, _ := NewQueryable([]int{1}, math.Inf(1), noise.NewSeededSource(1, 2))
	if got := q2.Exec(); got != (ExecOptions{}) {
		t.Fatalf("zero default exec options did not reset: %+v", got)
	}
}

// TestParallelRefusalMatchesSequential: a budget refusal must be
// identical (and leave identical ledger state) under both strategies.
func TestParallelRefusalMatchesSequential(t *testing.T) {
	flows := randomFlows(rand.New(rand.NewSource(9)), 5000)
	run := func(exec ExecOptions) (error, float64) {
		q, root := NewQueryable(flows, 1.0, noise.NewSeededSource(11, 13))
		g := GroupBy(q.WithExecOptions(exec), func(f flowRec) uint16 { return f.Port })
		// GroupBy doubles sensitivity: ε=0.6 requests 1.2 > 1.0.
		_, err := g.NoisyCount(0.6)
		return err, root.Spent()
	}
	seqErr, seqSpent := run(ExecOptions{})
	parErr, parSpent := run(parExec(4))
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("refusal differs: seq %v, par %v", seqErr, parErr)
	}
	if seqErr == nil {
		t.Fatal("expected a budget refusal")
	}
	if seqSpent != parSpent || seqSpent != 0 {
		t.Fatalf("refusal charged budget: seq %v, par %v", seqSpent, parSpent)
	}
}
