package core

import (
	"math"
	"testing"

	"dptrace/internal/noise"
)

// repeatedCounts runs NoisyCount n times on fresh unlimited-budget
// queryables over the same records and returns the noise samples.
func repeatedCounts(t *testing.T, records []int, epsilon float64, n int) []float64 {
	t.Helper()
	src := noise.NewSeededSource(7, 11)
	q, _ := NewQueryable(records, math.Inf(1), src)
	out := make([]float64, n)
	for i := range out {
		v, err := q.NoisyCount(epsilon)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v - float64(len(records))
	}
	return out
}

func stddev(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	return math.Sqrt(sumSq/n - mean*mean)
}

// TestNoisyCountStdMatchesTable1 verifies the paper's Table 1: Count's
// added noise has std sqrt(2)/epsilon.
func TestNoisyCountStdMatchesTable1(t *testing.T) {
	for _, eps := range []float64{0.1, 1.0, 10.0} {
		samples := repeatedCounts(t, ints(1000), eps, 30000)
		got := stddev(samples)
		want := math.Sqrt2 / eps
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("eps %v: noise std %v, want %v", eps, got, want)
		}
	}
}

func TestNoisyCountUnbiased(t *testing.T) {
	samples := repeatedCounts(t, ints(500), 1.0, 30000)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	if mean := sum / float64(len(samples)); math.Abs(mean) > 0.05 {
		t.Errorf("noise mean %v, want ~0", mean)
	}
}

func TestNoisyCountIntIsIntegral(t *testing.T) {
	q, _ := newTestQueryable(ints(100), math.Inf(1))
	for i := 0; i < 100; i++ {
		v, err := q.NoisyCountInt(1.0)
		if err != nil {
			t.Fatal(err)
		}
		_ = v // type int64 guarantees integrality; check plausibility
		if v < 50 || v > 150 {
			t.Errorf("count %d wildly off 100 at eps=1", v)
		}
	}
}

func TestNoisySumClampsToUnitRange(t *testing.T) {
	// Records worth +10 each must be clamped to +1 each.
	recs := make([]float64, 100)
	for i := range recs {
		recs[i] = 10
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(3, 4))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v, err := NoisySum(q, 10.0, func(x float64) float64 { return x })
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-100) > 1 {
		t.Errorf("clamped sum mean %v, want ~100 (clamp to 1 each)", mean)
	}
}

func TestNoisySumScaledWiderBound(t *testing.T) {
	recs := []float64{5, -3, 7, 2}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(5, 6))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v, err := NoisySumScaled(q, 10.0, 10, func(x float64) float64 { return x })
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-11) > 0.5 {
		t.Errorf("scaled sum mean %v, want ~11", mean)
	}
}

func TestNoisySumScaledNoiseGrowsWithBound(t *testing.T) {
	q, _ := NewQueryable(make([]float64, 10), math.Inf(1), noise.NewSeededSource(9, 9))
	noiseStd := func(bound float64) float64 {
		samples := make([]float64, 20000)
		for i := range samples {
			v, err := NoisySumScaled(q, 1.0, bound, func(float64) float64 { return 0 })
			if err != nil {
				t.Fatal(err)
			}
			samples[i] = v
		}
		return stddev(samples)
	}
	s1, s10 := noiseStd(1), noiseStd(10)
	if ratio := s10 / s1; ratio < 8 || ratio > 12 {
		t.Errorf("noise std ratio %v for 10x bound, want ~10", ratio)
	}
}

// TestNoisyAverageStdMatchesTable1: std ~ sqrt(8)/(eps*n).
func TestNoisyAverageStdMatchesTable1(t *testing.T) {
	const n = 200
	recs := make([]float64, n)
	for i := range recs {
		recs[i] = 0.5
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(13, 17))
	eps := 1.0
	samples := make([]float64, 30000)
	for i := range samples {
		v, err := NoisyAverage(q, eps, func(x float64) float64 { return x })
		if err != nil {
			t.Fatal(err)
		}
		samples[i] = v - 0.5
	}
	got := stddev(samples)
	want := math.Sqrt(8) / (eps * n)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("average noise std %v, want %v", got, want)
	}
}

func TestNoisyAverageEmptyDataset(t *testing.T) {
	q, _ := NewQueryable([]float64{}, math.Inf(1), noise.NewSeededSource(1, 1))
	v, err := NoisyAverage(q, 1.0, func(x float64) float64 { return x })
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("empty average not finite: %v", v)
	}
}

// TestNoisyMedianPartitionBalance: Table 1 says the returned value
// partitions the input into sets whose sizes differ by roughly
// sqrt(2)/eps.
func TestNoisyMedianPartitionBalance(t *testing.T) {
	const n = 10001
	recs := make([]float64, n)
	for i := range recs {
		recs[i] = float64(i)
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(19, 23))
	eps := 1.0
	const trials = 500
	var totalImbalance float64
	for i := 0; i < trials; i++ {
		v, err := NoisyMedian(q, eps, func(x float64) float64 { return x })
		if err != nil {
			t.Fatal(err)
		}
		below := v // values are 0..n-1, so rank == value
		above := float64(n-1) - v
		totalImbalance += math.Abs(below - above)
	}
	avg := totalImbalance / trials
	// Imbalance should be O(1/eps): tiny relative to n.
	if avg > 50 {
		t.Errorf("average partition imbalance %v, want O(sqrt(2)/eps) ~ small", avg)
	}
}

func TestNoisyMedianEmpty(t *testing.T) {
	q, _ := NewQueryable([]float64{}, math.Inf(1), noise.NewSeededSource(1, 2))
	v, err := NoisyMedian(q, 1.0, func(x float64) float64 { return x })
	if err != nil || v != 0 {
		t.Errorf("empty median = %v, %v; want 0, nil", v, err)
	}
}

func TestNoisyOrderStatisticQuartiles(t *testing.T) {
	const n = 4000
	recs := make([]float64, n)
	for i := range recs {
		recs[i] = float64(i)
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(29, 31))
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		v, err := NoisyOrderStatistic(q, 1.0, frac, func(x float64) float64 { return x })
		if err != nil {
			t.Fatal(err)
		}
		want := frac * n
		if math.Abs(v-want) > 60 {
			t.Errorf("order stat %v: got %v, want ~%v", frac, v, want)
		}
	}
}

func TestNoisyOrderStatisticRejectsBadFraction(t *testing.T) {
	q, _ := newTestQueryable(ints(10), 1)
	if _, err := NoisyOrderStatistic(q, 1.0, 1.5, func(x int) float64 { return float64(x) }); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestAggregationsRejectInvalidEpsilon(t *testing.T) {
	q, root := newTestQueryable(ints(10), 1)
	for _, eps := range []float64{0, -0.5, math.NaN(), math.Inf(1)} {
		if _, err := q.NoisyCount(eps); err == nil {
			t.Errorf("NoisyCount(%v) accepted", eps)
		}
		if _, err := NoisySum(q, eps, func(x int) float64 { return 1 }); err == nil {
			t.Errorf("NoisySum(%v) accepted", eps)
		}
		if _, err := NoisyAverage(q, eps, func(x int) float64 { return 1 }); err == nil {
			t.Errorf("NoisyAverage(%v) accepted", eps)
		}
		if _, err := NoisyMedian(q, eps, func(x int) float64 { return 1 }); err == nil {
			t.Errorf("NoisyMedian(%v) accepted", eps)
		}
	}
	if root.Spent() != 0 {
		t.Errorf("invalid epsilons consumed budget: %v", root.Spent())
	}
}

// TestPaperExampleDistinctHosts reproduces the §2.3 example shape:
// filter to port 80, group by source, keep groups with >1024 summed
// bytes, count with eps=0.1. Expected error ±10 means a correct answer
// of 120 should come back within a few tens.
func TestPaperExampleDistinctHosts(t *testing.T) {
	type pkt struct {
		srcIP   int
		dstPort int
		len     int
	}
	var packets []pkt
	// 120 hosts that send >1024 bytes to port 80.
	for h := 0; h < 120; h++ {
		for p := 0; p < 3; p++ {
			packets = append(packets, pkt{srcIP: h, dstPort: 80, len: 500})
		}
	}
	// 80 hosts below the threshold, plus non-port-80 chatter.
	for h := 200; h < 280; h++ {
		packets = append(packets, pkt{srcIP: h, dstPort: 80, len: 100})
		packets = append(packets, pkt{srcIP: h, dstPort: 443, len: 5000})
	}
	src := noise.NewSeededSource(2010, 8)
	q, root := NewQueryable(packets, 1.0, src)
	grouped := GroupBy(q.Where(func(p pkt) bool { return p.dstPort == 80 }),
		func(p pkt) int { return p.srcIP })
	heavy := grouped.Where(func(g Group[int, pkt]) bool {
		total := 0
		for _, p := range g.Items {
			total += p.len
		}
		return total > 1024
	})
	got, err := heavy.NoisyCount(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Noise std for the grouped count is 2*sqrt(2)/0.1 ~ 28.
	if math.Abs(got-120) > 120 {
		t.Errorf("noisy distinct-host count %v, want ~120", got)
	}
	// GroupBy doubles: 0.1 spends 0.2.
	if spent := root.Spent(); math.Abs(spent-0.2) > 1e-12 {
		t.Errorf("spent %v, want 0.2", spent)
	}
}
