package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file is the execution-strategy layer of the engine. Every
// transformation has one privacy semantics (Table 1) but may have two
// execution strategies: the sequential single-pass loops the seed
// shipped with, and the data-parallel implementations in parallel.go.
// ExecOptions selects between them per Queryable; the default is
// sequential, so pipelines that never opt in behave (and benchmark)
// exactly as before.
//
// The headline guarantee is determinism: for a fixed input ordering
// and noise seed, the parallel and sequential strategies produce
// byte-identical output slices in identical order and identical
// privacy-budget charges. Parallelism is therefore invisible to the
// privacy accounting — agents are constructed from the transformation
// graph alone, transformations never spend budget, and aggregations
// observe the same records in the same order either way. The
// differential test in parallel_test.go enforces this for every
// operator on randomized inputs.

// DefaultParallelThreshold is the input size below which the parallel
// strategies fall back to the sequential loops when ExecOptions.
// Threshold is zero. Splitting a small input across goroutines costs
// more in scheduling and merge overhead than the loop itself; 32k
// records is roughly where chunked filtering starts to win on
// commodity cores.
const DefaultParallelThreshold = 1 << 15

// ExecOptions selects the execution strategy for a Queryable's
// transformations. The zero value means sequential execution.
type ExecOptions struct {
	// Workers is the number of concurrent workers for the parallel
	// strategies. Values <= 1 select the sequential loops.
	Workers int
	// Threshold is the minimum input record count before the parallel
	// strategy engages; below it the sequential loop runs even when
	// Workers > 1. Zero means DefaultParallelThreshold.
	Threshold int
}

// active reports whether the parallel strategy should run for an input
// of n records.
func (o ExecOptions) active(n int) bool {
	if o.Workers <= 1 {
		return false
	}
	t := o.Threshold
	if t <= 0 {
		t = DefaultParallelThreshold
	}
	return n >= t
}

// width returns the effective worker count for n records: never more
// workers than records, never fewer than one.
func (o ExecOptions) width(n int) int {
	w := o.Workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WithParallelism returns a view of this Queryable whose derived
// pipeline uses workers concurrent workers for large transformations
// (workers <= 0 means runtime.GOMAXPROCS(0)). Records, budget agent,
// noise source and recorder are shared; only the execution strategy
// differs. Inputs smaller than the threshold (DefaultParallelThreshold
// unless overridden with WithExecOptions) still run sequentially.
//
// Two operators are exempt: the plain Where method and Select function
// always run sequentially, because their bodies must stay within the
// compiler's inlining budget (see the note in instrument.go — a
// dispatch branch costs the same budget as a recorder hook). Their
// exec-aware twins WhereRecorded and SelectRecorded honor the
// parallelism setting, as do all other operators in their plain form.
func (q *Queryable[T]) WithParallelism(workers int) *Queryable[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := *q
	out.exec.Workers = workers
	return &out
}

// WithExecOptions returns a view of this Queryable with the full
// execution configuration applied; see WithParallelism.
func (q *Queryable[T]) WithExecOptions(o ExecOptions) *Queryable[T] {
	out := *q
	out.exec = o
	return &out
}

// Exec returns this Queryable's execution configuration.
func (q *Queryable[T]) Exec() ExecOptions { return q.exec }

// defaultExec is the process-wide execution configuration picked up by
// NewQueryable/NewQueryableFor, mirroring defaultRecorder: it exists
// for whole-program opt-in (cmd/experiments -parallel) where threading
// options through every analysis would be noise.
var defaultExec atomic.Value // of ExecOptions

// SetDefaultExecOptions installs the execution configuration future
// NewQueryable and NewQueryableFor calls inherit. The zero value turns
// parallel execution back off. Existing Queryables are unaffected.
func SetDefaultExecOptions(o ExecOptions) {
	defaultExec.Store(o)
}

// DefaultExecOptions returns the configuration set by
// SetDefaultExecOptions (zero value when unset).
func DefaultExecOptions() ExecOptions {
	if o, ok := defaultExec.Load().(ExecOptions); ok {
		return o
	}
	return ExecOptions{}
}

// parallelExecs counts transformations that took a parallel strategy,
// process-wide. Exposed for operational dashboards (dpserver registers
// it as dp_parallel_exec_total); it carries no per-dataset or
// per-record information.
var parallelExecs atomic.Uint64

// ParallelExecutions reports how many transformations have executed
// under a parallel strategy since process start.
func ParallelExecutions() uint64 { return parallelExecs.Load() }

// chunk returns the half-open bounds [lo, hi) of chunk i when n items
// are split into w balanced contiguous chunks.
func chunk(n, w, i int) (lo, hi int) {
	base, rem := n/w, n%w
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// WorkerPanic carries a panic that occurred on a parallel-exec worker
// goroutine back to the coordinating goroutine. A panic on a spawned
// goroutine is unrecoverable by the caller's deferred recover — it
// would kill the whole process — so runWorkers recovers it in the
// worker, waits for the remaining workers to drain, and re-raises it
// as a *WorkerPanic on the goroutine that called runWorkers. There the
// aggregation guards (recoverAgg) and the server's HTTP middleware can
// recover it like any single-goroutine panic.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at the panic site.
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("core: panic in parallel worker: %v", p.Value)
}

// runWorkers runs fn(0) … fn(w-1) on w goroutines and waits for all of
// them. Workers must write to disjoint state (their own chunk of a
// pre-sized slice, their own shard); the WaitGroup provides the
// happens-before edge that makes those writes visible to the caller.
// A panic in any worker is contained: every worker still runs to
// completion (or its own panic), and the first panic is re-raised on
// the calling goroutine as a *WorkerPanic.
func runWorkers(w int, fn func(worker int)) {
	if w == 1 {
		fn(0)
		return
	}
	var (
		wg      sync.WaitGroup
		panicMu sync.Mutex
		wp      *WorkerPanic
	)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if wp == nil {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			fn(i)
		}()
	}
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
}
