//go:build !race

package core

// raceEnabled is false in ordinary builds; see race_enabled.go.
const raceEnabled = false
