package core

import (
	"context"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// Queryable is an opaque handle to a protected dataset of records of
// type T. Analysts never see the records; they apply transformations
// (which return new Queryables) and aggregations (which return noisy
// scalars and charge the privacy budget).
//
// The zero value is not usable; construct one with NewQueryable.
type Queryable[T any] struct {
	records []T
	agent   Agent
	src     noise.Source
	rec     obs.Recorder    // nil (the default) disables telemetry
	exec    ExecOptions     // zero value (the default) = sequential execution
	ctx     context.Context // nil (the default) = never cancelled; see WithContext
}

// NewQueryable wraps records as a protected dataset with the given
// total privacy budget. Noise is drawn from src, which is wrapped to be
// safe for concurrent use; pass noise.NewCryptoSource() for deployments
// and a seeded source for reproducible experiments.
//
// The returned RootAgent lets the data owner observe cumulative
// privacy expenditure (it reveals nothing about the data).
func NewQueryable[T any](records []T, budget float64, src noise.Source) (*Queryable[T], *RootAgent) {
	root := NewRootAgent(budget)
	return &Queryable[T]{
		records: records,
		agent:   root,
		src:     noise.NewLockedSource(src),
		rec:     DefaultRecorder(),
		exec:    DefaultExecOptions(),
	}, root
}

// derive builds a child Queryable sharing this one's noise source,
// recorder, execution configuration, and context.
func derive[T, U any](q *Queryable[T], records []U, agent Agent) *Queryable[U] {
	return &Queryable[U]{records: records, agent: agent, src: q.src, rec: q.rec, exec: q.exec, ctx: q.ctx}
}

// Where returns the subset of records satisfying pred. Filtering does
// not amplify sensitivity (Table 1), so the result shares this
// Queryable's agent. The predicate may inspect records arbitrarily: its
// outputs stay behind the privacy curtain.
//
// Where carries no recorder hooks and no parallel dispatch: its body
// must stay within the compiler's inlining budget so the predicate
// devirtualizes in the hot loop (a hook or dispatch call costs 2x on
// a 1M-record scan). Instrumented or parallel pipelines use
// WhereRecorded instead, which honors WithParallelism.
func (q *Queryable[T]) Where(pred func(T) bool) *Queryable[T] {
	out := make([]T, 0, len(q.records))
	for _, r := range q.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return derive(q, out, q.agent)
}

// Concat appends other's records to this Queryable's. Each output
// record stems from exactly one input record of one input, so neither
// input's sensitivity increases (Table 1), but aggregations on the
// result charge both inputs' budgets.
func (q *Queryable[T]) Concat(other *Queryable[T]) *Queryable[T] {
	rec := combineRec(q.rec, other.rec)
	ctx := combineCtx(q.ctx, other.ctx)
	res := derive(q, []T{}, newDualAgent(q.agent, other.agent))
	res.rec = rec
	res.ctx = ctx
	if ctxErr(ctx) != nil {
		return res
	}
	start := opStart(rec)
	out := make([]T, 0, len(q.records)+len(other.records))
	out = append(out, q.records...)
	out = append(out, other.records...)
	opDone(rec, "concat", start, len(q.records)+len(other.records), len(out), 0)
	res.records = out
	return res
}

// Select applies f to every record, yielding a Queryable of the mapped
// type. One-to-one record mappings do not amplify sensitivity.
//
// Like Where, Select is hook- and dispatch-free to keep its trivial
// loop inlinable; instrumented or parallel pipelines use
// SelectRecorded, which honors WithParallelism.
func Select[T, U any](q *Queryable[T], f func(T) U) *Queryable[U] {
	out := make([]U, len(q.records))
	for i, r := range q.records {
		out[i] = f(r)
	}
	return derive(q, out, q.agent)
}

// SelectMany applies f to every record and flattens the results,
// keeping at most fanout outputs per record. Because one input record
// can influence up to fanout output records, the result's sensitivity
// is amplified by fanout; fanout must be ≥ 1.
func SelectMany[T, U any](q *Queryable[T], fanout int, f func(T) []U) *Queryable[U] {
	if fanout < 1 {
		panic("core: SelectMany fanout must be >= 1")
	}
	if ctxErr(q.ctx) != nil {
		return derive(q, []U{}, newScaleAgent(q.agent, float64(fanout)))
	}
	if q.exec.active(len(q.records)) {
		return selectManyParallel(q, fanout, f)
	}
	start := opStart(q.rec)
	out := make([]U, 0, len(q.records))
	for _, r := range q.records {
		mapped := f(r)
		if len(mapped) > fanout {
			mapped = mapped[:fanout]
		}
		out = append(out, mapped...)
	}
	opDone(q.rec, "selectmany", start, len(q.records), len(out), 0)
	return derive(q, out, newScaleAgent(q.agent, float64(fanout)))
}

// Distinct keeps one record per distinct key. Removing duplicates does
// not amplify sensitivity (Table 1): adding or removing one input
// record changes the output by at most one record.
func Distinct[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[T] {
	if ctxErr(q.ctx) != nil {
		return derive(q, []T{}, q.agent)
	}
	if q.exec.active(len(q.records)) {
		return distinctParallel(q, key)
	}
	start := opStart(q.rec)
	// Keys are evaluated once into a slice so the dedup map (and the
	// output) can be sized from a sampled cardinality estimate instead
	// of the record count — a skewed input no longer allocates a
	// record-count-sized map to hold a handful of keys.
	keys := make([]K, len(q.records))
	for i, r := range q.records {
		keys[i] = key(r)
	}
	hint := cardinalityHint(keys)
	seen := make(map[K]struct{}, hint)
	out := make([]T, 0, hint)
	for i, r := range q.records {
		k := keys[i]
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	opDone(q.rec, "distinct", start, len(q.records), len(out), 0)
	return derive(q, out, q.agent)
}

// Group is one output record of GroupBy: a key and the records that
// share it. Group contents are only ever inspected inside later
// transformations, never revealed directly.
type Group[K comparable, T any] struct {
	Key   K
	Items []T
}

// cardinalitySample is how many keys cardinalityHint inspects. Large
// enough that heavily-skewed key sets (a handful of ports across a
// million packets) saturate the sample, small enough to be free next
// to the grouping pass itself.
const cardinalitySample = 1024

// cardinalityHint estimates the number of distinct keys from an
// evenly-strided sample, so keyed operators can size their maps close
// to the true group count instead of the record count. The estimator
// is deliberately simple: keys that appear only once in the sample
// ("singletons") are evidence of a long tail of unseen keys, so each
// one is scaled up by the sampling ratio; keys seen repeatedly are
// evidence of saturation and count once. Skewed workloads (17 ports
// across 1M packets) estimate ≈17 instead of 1M; all-distinct
// workloads estimate ≈n. The hint only sizes allocations — correctness
// never depends on it.
func cardinalityHint[K comparable](records []K) int {
	n := len(records)
	if n <= cardinalitySample {
		return n
	}
	step := n / cardinalitySample
	counts := make(map[K]int, cardinalitySample)
	for i := 0; i < cardinalitySample; i++ {
		counts[records[i*step]]++
	}
	singletons := 0
	for _, c := range counts {
		if c == 1 {
			singletons++
		}
	}
	est := (len(counts) - singletons) + singletons*step
	if est > n {
		est = n
	}
	if est < 1 {
		est = 1
	}
	return est
}

// GroupBy groups records by key. One input record arriving or departing
// changes at most one group, but that change both removes the old
// version of the group and adds a new one — hence GroupBy "increases
// sensitivity by two" (Table 1), which the result's agent accounts for.
//
// Groups are emitted in first-appearance order of their keys, so the
// pipeline is deterministic for a fixed input ordering.
//
// Memory: all group contents live in one shared arena sized exactly to
// the input, carved into capacity-clipped sub-slices per group, and
// the group index is sized from a sampled cardinality estimate rather
// than the record count. Compared to the naive per-group append loops
// this cuts a skewed 1M-record grouping from ~64 MB and one
// allocation per growth step to a handful of exactly-sized
// allocations (see BenchmarkGroupBy1M). Appending to a group's Items
// reallocates (the cap is clipped), so groups stay independent.
func GroupBy[T any, K comparable](q *Queryable[T], key func(T) K) *Queryable[Group[K, T]] {
	if ctxErr(q.ctx) != nil {
		return derive(q, []Group[K, T]{}, newScaleAgent(q.agent, 2))
	}
	if q.exec.active(len(q.records)) {
		return groupByParallel(q, key)
	}
	start := opStart(q.rec)
	n := len(q.records)
	// Pass 1: evaluate keys once, assign group ids in first-appearance
	// order, count each group's size.
	keys := make([]K, n)
	for i, r := range q.records {
		keys[i] = key(r)
	}
	index := make(map[K]int, cardinalityHint(keys))
	counts := make([]int, 0, 64)
	for _, k := range keys {
		if id, ok := index[k]; ok {
			counts[id]++
		} else {
			index[k] = len(counts)
			counts = append(counts, 1)
		}
	}
	// Pass 2: prefix-sum the counts into arena offsets and scatter the
	// records; each group's Items is a cap-clipped window of the arena.
	arena := make([]T, n)
	offsets := make([]int, len(counts))
	off := 0
	for id, c := range counts {
		offsets[id] = off
		off += c
	}
	cursors := append([]int(nil), offsets...)
	for i, r := range q.records {
		id := index[keys[i]]
		arena[cursors[id]] = r
		cursors[id]++
	}
	groups := make([]Group[K, T], len(counts))
	for k, id := range index {
		lo, hi := offsets[id], offsets[id]+counts[id]
		groups[id] = Group[K, T]{Key: k, Items: arena[lo:hi:hi]}
	}
	opDone(q.rec, "groupby", start, n, len(groups), 0)
	return derive(q, groups, newScaleAgent(q.agent, 2))
}

// Join is PINQ's bounded join. Unlike a SQL equijoin — where one record
// can match unboundedly many partners and would destroy the privacy
// guarantee — both inputs are grouped by key and the matched groups are
// zipped pairwise, so each input record influences at most one output
// record. Neither input's sensitivity increases (Table 1).
func Join[T, U any, K comparable, R any](
	a *Queryable[T], b *Queryable[U],
	keyA func(T) K, keyB func(U) K,
	result func(T, U) R,
) *Queryable[R] {
	rec := combineRec(a.rec, b.rec)
	ctx := combineCtx(a.ctx, b.ctx)
	if ctxErr(ctx) != nil {
		res := derive(a, []R{}, newDualAgent(a.agent, b.agent))
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if a.exec.active(len(a.records) + len(b.records)) {
		return joinParallel(a, b, keyA, keyB, result)
	}
	start := opStart(rec)
	groupsA := make(map[K][]T, len(a.records))
	orderA := make([]K, 0, len(a.records))
	for _, r := range a.records {
		k := keyA(r)
		if _, ok := groupsA[k]; !ok {
			orderA = append(orderA, k)
		}
		groupsA[k] = append(groupsA[k], r)
	}
	groupsB := make(map[K][]U, len(b.records))
	for _, r := range b.records {
		k := keyB(r)
		groupsB[k] = append(groupsB[k], r)
	}
	// Each left record contributes at most one zipped pair.
	out := make([]R, 0, min(len(a.records), len(b.records)))
	for _, k := range orderA {
		ga := groupsA[k]
		gb, ok := groupsB[k]
		if !ok {
			continue
		}
		n := len(ga)
		if len(gb) < n {
			n = len(gb)
		}
		for i := 0; i < n; i++ {
			out = append(out, result(ga[i], gb[i]))
		}
	}
	opDone(rec, "join", start, len(a.records)+len(b.records), len(out), 0)
	res := derive(a, out, newDualAgent(a.agent, b.agent))
	res.rec = rec
	res.ctx = ctx
	return res
}

// GroupJoin is the variant of the bounded join that hands the result
// function the full pair of matched groups rather than zipped record
// pairs, matching the paper's description that "the Join results in a
// list of pairs of groups". Each output record corresponds to one key,
// so each input record influences at most two output records (its
// group's pair changes); the ×2 is folded into each input's charge.
func GroupJoin[T, U any, K comparable, R any](
	a *Queryable[T], b *Queryable[U],
	keyA func(T) K, keyB func(U) K,
	result func(K, []T, []U) R,
) *Queryable[R] {
	rec := combineRec(a.rec, b.rec)
	ctx := combineCtx(a.ctx, b.ctx)
	if ctxErr(ctx) != nil {
		agent := newDualAgent(newScaleAgent(a.agent, 2), newScaleAgent(b.agent, 2))
		res := derive(a, []R{}, agent)
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if a.exec.active(len(a.records) + len(b.records)) {
		return groupJoinParallel(a, b, keyA, keyB, result)
	}
	start := opStart(rec)
	groupsA := make(map[K][]T, len(a.records))
	orderA := make([]K, 0, len(a.records))
	for _, r := range a.records {
		k := keyA(r)
		if _, ok := groupsA[k]; !ok {
			orderA = append(orderA, k)
		}
		groupsA[k] = append(groupsA[k], r)
	}
	groupsB := make(map[K][]U, len(b.records))
	for _, r := range b.records {
		k := keyB(r)
		groupsB[k] = append(groupsB[k], r)
	}
	// At most one output record per distinct left key.
	out := make([]R, 0, len(orderA))
	for _, k := range orderA {
		gb, ok := groupsB[k]
		if !ok {
			continue
		}
		out = append(out, result(k, groupsA[k], gb))
	}
	opDone(rec, "groupjoin", start, len(a.records)+len(b.records), len(out), 0)
	agent := newDualAgent(newScaleAgent(a.agent, 2), newScaleAgent(b.agent, 2))
	res := derive(a, out, agent)
	res.rec = rec
	res.ctx = ctx
	return res
}

// Intersect keeps records of q whose key also appears in other,
// emitting each matched key's records from q once. Like Where with a
// protected predicate; no sensitivity increase for either input.
func Intersect[T, U any, K comparable](q *Queryable[T], other *Queryable[U], keyQ func(T) K, keyOther func(U) K) *Queryable[T] {
	rec := combineRec(q.rec, other.rec)
	ctx := combineCtx(q.ctx, other.ctx)
	if ctxErr(ctx) != nil {
		res := derive(q, []T{}, newDualAgent(q.agent, other.agent))
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if q.exec.active(len(q.records) + len(other.records)) {
		return semiJoinParallel(q, other, keyQ, keyOther, true, "intersect")
	}
	start := opStart(rec)
	present := make(map[K]struct{}, len(other.records))
	for _, r := range other.records {
		present[keyOther(r)] = struct{}{}
	}
	out := make([]T, 0, len(q.records))
	for _, r := range q.records {
		if _, ok := present[keyQ(r)]; ok {
			out = append(out, r)
		}
	}
	opDone(rec, "intersect", start, len(q.records)+len(other.records), len(out), 0)
	res := derive(q, out, newDualAgent(q.agent, other.agent))
	res.rec = rec
	res.ctx = ctx
	return res
}

// Except keeps records of q whose key does NOT appear in other — the
// set-difference counterpart of Intersect. Like a Where with a
// protected predicate: no sensitivity increase for either input, but
// aggregations charge both budgets.
func Except[T, U any, K comparable](q *Queryable[T], other *Queryable[U], keyQ func(T) K, keyOther func(U) K) *Queryable[T] {
	rec := combineRec(q.rec, other.rec)
	ctx := combineCtx(q.ctx, other.ctx)
	if ctxErr(ctx) != nil {
		res := derive(q, []T{}, newDualAgent(q.agent, other.agent))
		res.rec = rec
		res.ctx = ctx
		return res
	}
	if q.exec.active(len(q.records) + len(other.records)) {
		return semiJoinParallel(q, other, keyQ, keyOther, false, "except")
	}
	start := opStart(rec)
	present := make(map[K]struct{}, len(other.records))
	for _, r := range other.records {
		present[keyOther(r)] = struct{}{}
	}
	out := make([]T, 0, len(q.records))
	for _, r := range q.records {
		if _, ok := present[keyQ(r)]; !ok {
			out = append(out, r)
		}
	}
	opDone(rec, "except", start, len(q.records)+len(other.records), len(out), 0)
	res := derive(q, out, newDualAgent(q.agent, other.agent))
	res.rec = rec
	res.ctx = ctx
	return res
}

// Partition splits the dataset into one part per key. The parts are
// disjoint, so the privacy cost charged to the source is the MAXIMUM of
// the parts' cumulative costs rather than their sum — the property the
// paper leans on throughout (per-bucket CDFs, per-link matrices,
// per-candidate evaluations). Records whose key is not listed are
// dropped. The returned map has exactly the given keys; missing keys
// map to empty parts.
func Partition[T any, K comparable](q *Queryable[T], keys []K, keyOf func(T) K) map[K]*Queryable[T] {
	wanted := make(map[K]int, len(keys))
	for i, k := range keys {
		if _, dup := wanted[k]; dup {
			panic("core: Partition keys must be distinct")
		}
		wanted[k] = i
	}
	if ctxErr(q.ctx) != nil {
		shared := newPartitionAgent(q.agent, len(keys))
		parts := make(map[K]*Queryable[T], len(keys))
		for i, k := range keys {
			parts[k] = derive(q, []T(nil), shared.member(i))
		}
		return parts
	}
	if q.exec.active(len(q.records)) {
		return partitionParallel(q, keys, keyOf, wanted)
	}
	start := opStart(q.rec)
	buckets := make([][]T, len(keys))
	matched := 0
	for _, r := range q.records {
		if i, ok := wanted[keyOf(r)]; ok {
			buckets[i] = append(buckets[i], r)
			matched++
		}
	}
	shared := newPartitionAgent(q.agent, len(keys))
	parts := make(map[K]*Queryable[T], len(keys))
	for i, k := range keys {
		parts[k] = derive(q, buckets[i], shared.member(i))
	}
	opDone(q.rec, "partition", start, len(q.records), matched, 0)
	return parts
}
