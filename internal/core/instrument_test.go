package core

import (
	"math"
	"testing"
	"time"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// captureRecorder records every callback for assertions.
type captureRecorder struct {
	ops  []capturedOp
	aggs []capturedAgg
}

type capturedOp struct {
	op      string
	d       time.Duration
	in, out int
	workers int
}

type capturedAgg struct {
	agg, outcome string
	epsilon      float64
}

func (c *captureRecorder) OpDone(op string, d time.Duration, in, out, workers int) {
	c.ops = append(c.ops, capturedOp{op, d, in, out, workers})
}

func (c *captureRecorder) AggDone(agg, outcome string, epsilon float64, d time.Duration) {
	c.aggs = append(c.aggs, capturedAgg{agg, outcome, epsilon})
}

func TestRecorderSeesPipeline(t *testing.T) {
	records := make([]int, 100)
	for i := range records {
		records[i] = i
	}
	q, _ := NewQueryable(records, 10.0, noise.NewSeededSource(1, 2))
	rec := &captureRecorder{}
	q = q.WithRecorder(rec)

	filtered := WhereRecorded(q, func(x int) bool { return x%2 == 0 })
	mapped := SelectRecorded(filtered, func(x int) int { return x })
	grouped := GroupBy(mapped, func(x int) int { return x % 5 })
	if _, err := grouped.NoisyCount(0.1); err != nil {
		t.Fatal(err)
	}

	wantOps := []capturedOp{
		{op: "where", in: 100, out: 50},
		{op: "select", in: 50, out: 50},
		{op: "groupby", in: 50, out: 5},
	}
	if len(rec.ops) != len(wantOps) {
		t.Fatalf("ops = %+v, want %d entries", rec.ops, len(wantOps))
	}
	for i, w := range wantOps {
		got := rec.ops[i]
		if got.op != w.op || got.in != w.in || got.out != w.out {
			t.Fatalf("op %d = %+v, want %+v", i, got, w)
		}
	}
	if len(rec.aggs) != 1 || rec.aggs[0] != (capturedAgg{"count", obs.OutcomeOK, 0.1}) {
		t.Fatalf("aggs = %+v", rec.aggs)
	}
}

func TestRecorderBinaryOpsAndPartition(t *testing.T) {
	a, _ := NewQueryable([]int{1, 2, 3, 4}, math.Inf(1), noise.NewSeededSource(1, 2))
	rec := &captureRecorder{}
	a = a.WithRecorder(rec)
	b, _ := NewQueryable([]int{3, 4, 5}, math.Inf(1), noise.NewSeededSource(3, 4))

	// The recorder must survive binary combination with an
	// uninstrumented input.
	j := Join(a, b, func(x int) int { return x }, func(x int) int { return x },
		func(x, y int) int { return x + y })
	if len(rec.ops) != 1 || rec.ops[0].op != "join" || rec.ops[0].in != 7 || rec.ops[0].out != 2 {
		t.Fatalf("join op = %+v", rec.ops)
	}
	if _, err := j.NoisyCount(0.1); err != nil {
		t.Fatal(err)
	}
	if len(rec.aggs) != 1 {
		t.Fatalf("join result lost the recorder: %+v", rec.aggs)
	}

	rec.ops = nil
	parts := Partition(a, []int{0, 1}, func(x int) int { return x % 2 })
	if len(rec.ops) != 1 || rec.ops[0].op != "partition" || rec.ops[0].in != 4 || rec.ops[0].out != 4 {
		t.Fatalf("partition op = %+v", rec.ops)
	}
	rec.aggs = nil
	if _, err := parts[0].NoisyCount(0.5); err != nil {
		t.Fatal(err)
	}
	if len(rec.aggs) != 1 {
		t.Fatal("partition member lost the recorder")
	}
}

func TestRecorderOutcomes(t *testing.T) {
	q, _ := NewQueryable([]int{1, 2, 3}, 0.5, noise.NewSeededSource(1, 2))
	rec := &captureRecorder{}
	q = q.WithRecorder(rec)

	if _, err := q.NoisyCount(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NoisyCount(0.4); err == nil {
		t.Fatal("expected refusal")
	}
	if _, err := q.NoisyCount(-1); err == nil {
		t.Fatal("expected epsilon error")
	}
	want := []capturedAgg{
		{"count", obs.OutcomeOK, 0.4},
		{"count", obs.OutcomeRefused, 0.4},
		{"count", obs.OutcomeError, -1},
	}
	if len(rec.aggs) != len(want) {
		t.Fatalf("aggs = %+v", rec.aggs)
	}
	for i, w := range want {
		if rec.aggs[i] != w {
			t.Fatalf("agg %d = %+v, want %+v", i, rec.aggs[i], w)
		}
	}
}

func TestDefaultRecorder(t *testing.T) {
	if DefaultRecorder() != nil {
		t.Fatal("default recorder should start nil")
	}
	reg := obs.NewRegistry()
	SetDefaultRecorder(obs.NewMetricsRecorder(reg))
	defer SetDefaultRecorder(nil)

	q, _ := NewQueryable([]int{1, 2, 3}, math.Inf(1), noise.NewSeededSource(1, 2))
	WhereRecorded(q, func(int) bool { return true })
	if _, err := q.NoisyCount(0.1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dp_op_records_in_total", "op", "where").Value(); got != 3 {
		t.Fatalf("default recorder missed where: %v", got)
	}
	if got := reg.Counter("dp_agg_total", "agg", "count", "outcome", "ok").Value(); got != 1 {
		t.Fatalf("default recorder missed count: %v", got)
	}

	SetDefaultRecorder(nil)
	q2, _ := NewQueryable([]int{1}, math.Inf(1), noise.NewSeededSource(1, 2))
	WhereRecorded(q2, func(int) bool { return true })
	if got := reg.Counter("dp_op_records_in_total", "op", "where").Value(); got != 3 {
		t.Fatalf("recorder not detached: %v", got)
	}
}

func TestRootAgentRegisterGauges(t *testing.T) {
	reg := obs.NewRegistry()
	q, root := NewQueryable([]int{1, 2, 3}, 2.0, noise.NewSeededSource(1, 2))
	root.RegisterGauges(reg, "dataset", "t")
	if _, err := q.NoisyCount(0.5); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	got := map[string]float64{}
	for _, g := range snap.Gauges {
		if g.Labels["dataset"] == "t" {
			got[g.Name] = g.Value
		}
	}
	if got["dp_budget_total"] != 2.0 || got["dp_budget_spent"] != 0.5 || got["dp_budget_remaining"] != 1.5 {
		t.Fatalf("budget gauges = %v", got)
	}
}

func TestPerAnalystSpent(t *testing.T) {
	p := NewAnalystPolicy(10, 2)
	src := noise.NewSeededSource(1, 2)
	qa := NewQueryableFor([]int{1, 2}, p.AgentFor("alice"), src)
	qb := NewQueryableFor([]int{1, 2}, p.AgentFor("bob"), src)
	if _, err := qa.NoisyCount(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := qb.NoisyCount(0.25); err != nil {
		t.Fatal(err)
	}
	got := p.PerAnalystSpent()
	if got["alice"] != 0.5 || got["bob"] != 0.25 || len(got) != 2 {
		t.Fatalf("per-analyst spent = %v", got)
	}
}
