package core

import (
	"errors"
	"math"
	"testing"
)

// recordingJournal captures journaled spends and can be told to fail.
type recordingJournal struct {
	spends    []float64
	rollbacks []float64
	fail      error
}

func (j *recordingJournal) JournalSpend(epsilon float64) error {
	if j.fail != nil {
		return j.fail
	}
	j.spends = append(j.spends, epsilon)
	return nil
}

func (j *recordingJournal) JournalRollback(epsilon float64) {
	j.rollbacks = append(j.rollbacks, epsilon)
}

func TestJournalBeforeAck(t *testing.T) {
	j := &recordingJournal{}
	a := NewRootAgent(1.0)
	a.SetJournal(j)
	if err := a.Apply(0.3); err != nil {
		t.Fatal(err)
	}
	if len(j.spends) != 1 || j.spends[0] != 0.3 {
		t.Fatalf("journal saw %v, want [0.3]", j.spends)
	}
	a.Rollback(0.3)
	if len(j.rollbacks) != 1 || j.rollbacks[0] != 0.3 {
		t.Fatalf("journal saw rollbacks %v, want [0.3]", j.rollbacks)
	}
	if got := a.Spent(); got != 0 {
		t.Fatalf("spent %v after rollback, want 0", got)
	}
}

func TestJournalErrorRefusesCharge(t *testing.T) {
	j := &recordingJournal{fail: errors.New("disk full")}
	a := NewRootAgent(1.0)
	a.SetJournal(j)
	err := a.Apply(0.3)
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("Apply with failing journal: %v, want ErrJournal", err)
	}
	if got := a.Spent(); got != 0 {
		t.Fatalf("refused charge still consumed %v of budget", got)
	}
	// A budget-exceeded spend must be refused BEFORE it reaches the
	// journal — refusals consume nothing and need no durability.
	j2 := &recordingJournal{}
	a2 := NewRootAgent(0.1)
	a2.SetJournal(j2)
	if err := a2.Apply(0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if len(j2.spends) != 0 {
		t.Fatalf("refused charge was journaled: %v", j2.spends)
	}
}

// TestTenTenthsExhaustExactly is the satellite-1 regression: ten
// charges of 0.1 against a budget of 1.0 sum to 0.9999999999999999 in
// float64. The slack in Apply's comparison admits all ten, an 11th is
// refused, and Remaining never reports a negative sliver.
func TestTenTenthsExhaustExactly(t *testing.T) {
	a := NewRootAgent(1.0)
	for i := 0; i < 10; i++ {
		if err := a.Apply(0.1); err != nil {
			t.Fatalf("charge %d of 0.1 against 1.0: %v", i+1, err)
		}
	}
	if err := a.Apply(0.1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("11th charge: %v, want ErrBudgetExceeded", err)
	}
	if rem := a.Remaining(); rem < 0 {
		t.Fatalf("Remaining() = %v, want clamped at 0", rem)
	}
	// Float accumulation leaves spent slightly under 1.0; Remaining
	// must not leak that sliver as spendable either — a sliver-sized
	// Apply is still refused above, and the reported value is tiny.
	if rem := a.Remaining(); rem > budgetSlack {
		t.Fatalf("Remaining() = %v, want ≤ %v", rem, budgetSlack)
	}
}

// TestReplayLandsOnSameRefusalBoundary mirrors crash recovery: journal
// the live per-analyst charges in order, then restore a fresh policy
// from the journal and verify it sits at the bit-identical boundary —
// same Spent, same refusals, same remaining headroom.
func TestReplayLandsOnSameRefusalBoundary(t *testing.T) {
	live := NewAnalystPolicy(10, 1.0)
	var journal []float64 // in event order, as the ledger would hold
	var total float64
	live.SetSpendJournal(
		func(analyst string, epsilon float64) error {
			journal = append(journal, epsilon)
			total += epsilon
			return nil
		},
		func(analyst string, epsilon float64) {
			journal = append(journal, -epsilon)
			total -= epsilon
		},
	)
	agent := live.AgentFor("alice")
	for i := 0; i < 10; i++ {
		if err := agent.Apply(0.1); err != nil {
			t.Fatalf("live charge %d: %v", i+1, err)
		}
	}
	if err := agent.Apply(0.1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("live 11th charge: %v, want ErrBudgetExceeded", err)
	}

	// Replay: fold the journal in order, exactly as ledger.State does.
	var aliceSpent float64
	for _, e := range journal {
		aliceSpent += e
	}
	restored := NewAnalystPolicy(10, 1.0)
	restored.RestoreSpent(map[string]float64{"alice": aliceSpent}, total)

	if got, want := restored.SpentBy("alice"), live.SpentBy("alice"); got != want {
		t.Fatalf("replayed Spent %v, live %v — not bit-identical", got, want)
	}
	if got, want := restored.TotalSpent(), live.TotalSpent(); got != want {
		t.Fatalf("replayed TotalSpent %v, live %v", got, want)
	}
	if err := restored.AgentFor("alice").Apply(0.1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("replayed policy accepted a charge the live one refused: %v", err)
	}
	if got, want := restored.RemainingFor("alice"), live.RemainingFor("alice"); got != want {
		t.Fatalf("replayed Remaining %v, live %v", got, want)
	}
	if rem := restored.RemainingFor("alice"); rem < 0 {
		t.Fatalf("replayed Remaining %v, want clamped at 0", rem)
	}
}

func TestRemainingClampsAtZero(t *testing.T) {
	// restoreSpent can legitimately overshoot the budget: a rollback
	// journal append that failed leaves the ledger over-counting (the
	// safe direction). Remaining must clamp rather than go negative.
	a := NewRootAgent(1.0)
	a.restoreSpent(1.5)
	if got := a.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %v, want 0", got)
	}
	if !math.IsInf(NewRootAgent(math.Inf(1)).Remaining(), 1) {
		t.Fatal("unlimited budget must report +Inf remaining")
	}
}

// TestPolicyJournalSeesDualCharges: a per-analyst charge moves both
// the analyst root and the shared total; only the analyst root is
// journaled (the total is reconstructed as the in-order event sum),
// so a dual-agent refusal must journal nothing.
func TestPolicyJournalSeesDualCharges(t *testing.T) {
	p := NewAnalystPolicy(0.5, 1.0) // shared total is the binding cap
	var events int
	p.SetSpendJournal(
		func(analyst string, epsilon float64) error { events++; return nil },
		func(analyst string, epsilon float64) { events++ },
	)
	if err := p.AgentFor("alice").Apply(0.4); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("successful charge journaled %d events, want 1", events)
	}
	// bob has per-analyst headroom but the shared total refuses; the
	// already-journaled analyst-side spend must be rolled back so the
	// replayed ledger never counts a charge that was not acked.
	if err := p.AgentFor("bob").Apply(0.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if got := p.SpentBy("bob"); got != 0 {
		t.Fatalf("refused dual charge left bob at %v", got)
	}
}
