package core

import (
	"math"
	"runtime"
	"testing"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// Micro-benchmarks for the engine's operations, sized at 1M records to
// expose per-record costs and allocation behaviour (-benchmem). Every
// transformation benchmark has a sequential and a parallel variant
// (suffix "Parallel", workers = GOMAXPROCS, threshold forced low), so
// `go test -bench . -cpu 1,4` reports the execution engine's scaling.
// `make bench` parses the output into BENCH_core.json for the perf
// trajectory across PRs.

const benchRecords = 1 << 20

func benchQueryable(b *testing.B) *Queryable[int] {
	b.Helper()
	records := make([]int, benchRecords)
	for i := range records {
		records[i] = i
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 2))
	return q
}

// benchParallel configures q for parallel execution at the benchmark's
// GOMAXPROCS (so -cpu controls the worker count) with the size gate
// disabled.
func benchParallel(q *Queryable[int]) *Queryable[int] {
	return q.WithExecOptions(ExecOptions{Workers: runtime.GOMAXPROCS(0), Threshold: 1})
}

// reportRecords attaches the per-op record count so ns/op is
// convertible to records/s across benches with different input sizes.
func reportRecords(b *testing.B, n int) {
	b.ReportMetric(float64(n), "records/op")
}

func BenchmarkWhere1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Where(func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkWhere1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WhereRecorded(q, func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkSelect1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(q, func(x int) int { return x * 2 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkSelect1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SelectRecorded(q, func(x int) int { return x * 2 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkGroupBy1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GroupBy(q, func(x int) int { return x % 1024 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkGroupBy1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GroupBy(q, func(x int) int { return x % 1024 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkDistinct1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distinct(q, func(x int) int { return x % 4096 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkDistinct1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distinct(q, func(x int) int { return x % 4096 })
	}
	reportRecords(b, benchRecords)
}

func benchPartitionKeys() []int {
	keys := make([]int, 256)
	for i := range keys {
		keys[i] = i
	}
	return keys
}

func BenchmarkPartition1M(b *testing.B) {
	q := benchQueryable(b)
	keys := benchPartitionKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(q, keys, func(x int) int { return x % 256 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkPartition1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	keys := benchPartitionKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(q, keys, func(x int) int { return x % 256 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkJoin1M(b *testing.B) {
	q := benchQueryable(b)
	other := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(q, other,
			func(x int) int { return x }, func(x int) int { return x },
			func(a, c int) int { return a + c })
	}
	reportRecords(b, 2*benchRecords)
}

func BenchmarkJoin1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	other := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(q, other,
			func(x int) int { return x }, func(x int) int { return x },
			func(a, c int) int { return a + c })
	}
	reportRecords(b, 2*benchRecords)
}

// BenchmarkWhere1MRecorded measures the instrumented path (metrics
// recorder attached, WhereRecorded entry point); compare against
// BenchmarkWhere1M for the telemetry overhead. Plain Where carries no
// hooks at all — see the inlining note in instrument.go.
func BenchmarkWhere1MRecorded(b *testing.B) {
	q := benchQueryable(b).WithRecorder(obs.NewMetricsRecorder(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WhereRecorded(q, func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyCountRecorded(b *testing.B) {
	q := benchQueryable(b).WithRecorder(obs.NewMetricsRecorder(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.NoisyCount(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisyCount(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.NoisyCount(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisySum1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisySum(q, 1.0, func(x int) float64 { return float64(x % 2) }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyMedian100k(b *testing.B) {
	records := make([]float64, 100_000)
	for i := range records {
		records[i] = float64(i)
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyMedian(q, 1.0, func(x float64) float64 { return x }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, 100_000)
}

func BenchmarkBudgetAgentApply(b *testing.B) {
	root := NewRootAgent(math.Inf(1))
	agent := newScaleAgent(root, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agent.Apply(0.001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionAgentApply(b *testing.B) {
	root := NewRootAgent(math.Inf(1))
	p := newPartitionAgent(root, 64)
	members := make([]Agent, 64)
	for i := range members {
		members[i] = p.member(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := members[i%64].Apply(0.001); err != nil {
			b.Fatal(err)
		}
	}
}
