package core

import (
	"math"
	"runtime"
	"testing"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// Micro-benchmarks for the engine's operations, sized at 1M records to
// expose per-record costs and allocation behaviour (-benchmem). Every
// transformation benchmark has a sequential and a parallel variant
// (suffix "Parallel", workers = GOMAXPROCS, threshold forced low), so
// `go test -bench . -cpu 1,4` reports the execution engine's scaling.
// `make bench` parses the output into BENCH_core.json for the perf
// trajectory across PRs.

const benchRecords = 1 << 20

func benchQueryable(b *testing.B) *Queryable[int] {
	b.Helper()
	records := make([]int, benchRecords)
	for i := range records {
		records[i] = i
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 2))
	return q
}

// benchParallel configures q for parallel execution at the benchmark's
// GOMAXPROCS (so -cpu controls the worker count) with the size gate
// disabled.
func benchParallel(q *Queryable[int]) *Queryable[int] {
	return q.WithExecOptions(ExecOptions{Workers: runtime.GOMAXPROCS(0), Threshold: 1})
}

// reportRecords attaches the per-op record count so ns/op is
// convertible to records/s across benches with different input sizes.
func reportRecords(b *testing.B, n int) {
	b.ReportMetric(float64(n), "records/op")
}

func BenchmarkWhere1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Where(func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkWhere1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WhereRecorded(q, func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkSelect1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(q, func(x int) int { return x * 2 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkSelect1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SelectRecorded(q, func(x int) int { return x * 2 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkGroupBy1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GroupBy(q, func(x int) int { return x % 1024 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkGroupBy1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GroupBy(q, func(x int) int { return x % 1024 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkDistinct1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distinct(q, func(x int) int { return x % 4096 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkDistinct1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distinct(q, func(x int) int { return x % 4096 })
	}
	reportRecords(b, benchRecords)
}

func benchPartitionKeys() []int {
	keys := make([]int, 256)
	for i := range keys {
		keys[i] = i
	}
	return keys
}

func BenchmarkPartition1M(b *testing.B) {
	q := benchQueryable(b)
	keys := benchPartitionKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(q, keys, func(x int) int { return x % 256 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkPartition1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	keys := benchPartitionKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(q, keys, func(x int) int { return x % 256 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkJoin1M(b *testing.B) {
	q := benchQueryable(b)
	other := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(q, other,
			func(x int) int { return x }, func(x int) int { return x },
			func(a, c int) int { return a + c })
	}
	reportRecords(b, 2*benchRecords)
}

func BenchmarkJoin1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	other := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Join(q, other,
			func(x int) int { return x }, func(x int) int { return x },
			func(a, c int) int { return a + c })
	}
	reportRecords(b, 2*benchRecords)
}

// BenchmarkWhere1MRecorded measures the instrumented path (metrics
// recorder attached, WhereRecorded entry point); compare against
// BenchmarkWhere1M for the telemetry overhead. Plain Where carries no
// hooks at all — see the inlining note in instrument.go.
func BenchmarkWhere1MRecorded(b *testing.B) {
	q := benchQueryable(b).WithRecorder(obs.NewMetricsRecorder(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WhereRecorded(q, func(x int) bool { return x%2 == 0 })
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyCountRecorded(b *testing.B) {
	q := benchQueryable(b).WithRecorder(obs.NewMetricsRecorder(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.NoisyCount(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisyCount(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.NoisyCount(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisySum1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisySum(q, 1.0, func(x int) float64 { return float64(x % 2) }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyMedian100k(b *testing.B) {
	records := make([]float64, 100_000)
	for i := range records {
		records[i] = float64(i)
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyMedian(q, 1.0, func(x float64) float64 { return x }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, 100_000)
}

// BenchmarkWhereSelectSum1M is the three-pass materializing pipeline
// the fused engine is measured against: Where and Select each
// materialize a full intermediate slice before NoisySum scans the
// last one.
func BenchmarkWhereSelectSum1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := q.Where(func(x int) bool { return x%2 == 0 })
		m := Select(w, func(x int) float64 { return float64(x&1023) / 1024 })
		if _, err := NoisySum(m, 1.0, func(v float64) float64 { return v }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

// BenchmarkFusedWhereSelectSum1M is the same pipeline on the fused
// streaming path: one loop, no intermediate slices, ≤ 2 allocs/op
// (pinned by alloc_test.go). Compare bytes/op against
// BenchmarkWhereSelectSum1M for the memory-traffic win.
func BenchmarkFusedWhereSelectSum1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := q.Stream().Where(func(x int) bool { return x%2 == 0 })
		m := StreamSelect(s, func(x int) float64 { return float64(x&1023) / 1024 })
		if _, err := StreamNoisySum(m, 1.0, func(v float64) float64 { return v }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

// benchPacket is a realistically-sized trace record (32 bytes), where
// skipped intermediate slices translate into real memory traffic.
type benchPacket struct {
	Src, Dst uint32
	Port     uint16
	Flags    uint16
	Len      uint32
	Ts       int64
	Seq      uint64
}

func benchPacketQueryable(b *testing.B) *Queryable[benchPacket] {
	b.Helper()
	records := make([]benchPacket, benchRecords)
	for i := range records {
		records[i] = benchPacket{
			Src:  uint32(i * 2654435761),
			Port: uint16(i % 1024),
			Len:  uint32(i % 1500),
		}
	}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 2))
	return q
}

func BenchmarkPacketWhereSelectSum1M(b *testing.B) {
	q := benchPacketQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := q.Where(func(p benchPacket) bool { return p.Port < 512 })
		m := Select(w, func(p benchPacket) float64 { return float64(p.Len) / 1500 })
		if _, err := NoisySum(m, 1.0, func(v float64) float64 { return v }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkPacketFusedWhereSelectSum1M(b *testing.B) {
	q := benchPacketQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := q.Stream().Where(func(p benchPacket) bool { return p.Port < 512 })
		m := StreamSelect(s, func(p benchPacket) float64 { return float64(p.Len) / 1500 })
		if _, err := StreamNoisySum(m, 1.0, func(v float64) float64 { return v }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

// Sketch-backed aggregations over 1M records: one pass, sketch-sized
// memory instead of sort- or map-sized.
func BenchmarkNoisyQuantile1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyQuantile(q, 1.0, 0.5, 0.01, func(x int) float64 { return float64(x % 1500) }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyQuantile1MParallel(b *testing.B) {
	q := benchParallel(benchQueryable(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyQuantile(q, 1.0, 0.5, 0.01, func(x int) float64 { return float64(x % 1500) }); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyFrequency1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyFrequency(q, 1.0, func(x int) string {
			return string(rune('a' + x%64))
		}, "b"); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkNoisyDistinctSketch1M(b *testing.B) {
	q := benchQueryable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyDistinctSketch(q, 1.0, func(x int) string {
			return string(rune('a' + x%4096))
		}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchRecords)
}

func BenchmarkBudgetAgentApply(b *testing.B) {
	root := NewRootAgent(math.Inf(1))
	agent := newScaleAgent(root, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agent.Apply(0.001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionAgentApply(b *testing.B) {
	root := NewRootAgent(math.Inf(1))
	p := newPartitionAgent(root, 64)
	members := make([]Agent, 64)
	for i := range members {
		members[i] = p.member(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := members[i%64].Apply(0.001); err != nil {
			b.Fatal(err)
		}
	}
}
