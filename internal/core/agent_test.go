package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestRootAgentEnforcesBudget(t *testing.T) {
	a := NewRootAgent(1.0)
	if err := a.Apply(0.6); err != nil {
		t.Fatalf("first apply: %v", err)
	}
	if err := a.Apply(0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget apply: got %v, want ErrBudgetExceeded", err)
	}
	if err := a.Apply(0.4); err != nil {
		t.Fatalf("exact-fit apply: %v", err)
	}
	if got := a.Spent(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("spent = %v, want 1.0", got)
	}
	if got := a.Remaining(); math.Abs(got) > 1e-9 {
		t.Fatalf("remaining = %v, want 0", got)
	}
}

func TestRootAgentRejectsInvalidEpsilon(t *testing.T) {
	a := NewRootAgent(10)
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := a.Apply(eps); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("Apply(%v): got %v, want ErrInvalidEpsilon", eps, err)
		}
	}
	if a.Spent() != 0 {
		t.Errorf("invalid applies consumed budget: %v", a.Spent())
	}
}

func TestRootAgentFailedApplyConsumesNothing(t *testing.T) {
	a := NewRootAgent(1.0)
	_ = a.Apply(0.9)
	before := a.Spent()
	_ = a.Apply(0.2) // refused
	if a.Spent() != before {
		t.Errorf("failed apply changed spent: %v -> %v", before, a.Spent())
	}
}

func TestRootAgentRollback(t *testing.T) {
	a := NewRootAgent(1.0)
	_ = a.Apply(0.7)
	a.Rollback(0.7)
	if a.Spent() != 0 {
		t.Fatalf("spent after rollback = %v", a.Spent())
	}
	if err := a.Apply(1.0); err != nil {
		t.Fatalf("full budget should be available again: %v", err)
	}
}

func TestRootAgentUnlimited(t *testing.T) {
	a := NewRootAgent(math.Inf(1))
	for i := 0; i < 1000; i++ {
		if err := a.Apply(100); err != nil {
			t.Fatalf("unlimited agent refused: %v", err)
		}
	}
}

func TestScaleAgentMultiplies(t *testing.T) {
	root := NewRootAgent(10)
	s := newScaleAgent(root, 2)
	if err := s.Apply(3); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 6 {
		t.Fatalf("spent = %v, want 6 (2x scaling)", got)
	}
	s.Rollback(3)
	if got := root.Spent(); got != 0 {
		t.Fatalf("spent after rollback = %v, want 0", got)
	}
}

func TestScaleAgentFactorOneIsIdentity(t *testing.T) {
	root := NewRootAgent(10)
	if got := newScaleAgent(root, 1); got != Agent(root) {
		t.Error("factor-1 scale should return the parent unchanged")
	}
}

func TestScaleAgentNested(t *testing.T) {
	root := NewRootAgent(100)
	s := newScaleAgent(newScaleAgent(root, 2), 2) // two GroupBys
	if err := s.Apply(1); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 4 {
		t.Fatalf("nested scale spent = %v, want 4", got)
	}
}

func TestDualAgentChargesBoth(t *testing.T) {
	a, b := NewRootAgent(10), NewRootAgent(10)
	d := newDualAgent(a, b)
	if err := d.Apply(2); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 2 || b.Spent() != 2 {
		t.Fatalf("spent = %v, %v; want 2, 2", a.Spent(), b.Spent())
	}
}

func TestDualAgentAtomicOnRefusal(t *testing.T) {
	a, b := NewRootAgent(10), NewRootAgent(1)
	d := newDualAgent(a, b)
	if err := d.Apply(5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if a.Spent() != 0 {
		t.Fatalf("left agent charged %v despite right refusal", a.Spent())
	}
}

func TestDualAgentSelfChargesTwice(t *testing.T) {
	root := NewRootAgent(10)
	d := newDualAgent(root, root)
	if err := d.Apply(2); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 4 {
		t.Fatalf("self-dual spent = %v, want 4", got)
	}
}

func TestPartitionAgentMaxSemantics(t *testing.T) {
	root := NewRootAgent(10)
	p := newPartitionAgent(root, 3)
	m0, m1, m2 := p.member(0), p.member(1), p.member(2)

	// Spending on one part charges the root.
	if err := m0.Apply(1); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 1 {
		t.Fatalf("after part0 spends 1: root spent %v, want 1", got)
	}
	// Spending the same amount on siblings is free: max unchanged.
	if err := m1.Apply(1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Apply(1); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 1 {
		t.Fatalf("after all parts spend 1: root spent %v, want 1 (max, not sum)", got)
	}
	// Raising one part's total raises the root by the delta only.
	if err := m1.Apply(2); err != nil {
		t.Fatal(err)
	}
	if got := root.Spent(); got != 3 {
		t.Fatalf("after part1 total 3: root spent %v, want 3", got)
	}
}

func TestPartitionAgentRefusalPropagates(t *testing.T) {
	root := NewRootAgent(2)
	p := newPartitionAgent(root, 2)
	if err := p.member(0).Apply(2); err != nil {
		t.Fatal(err)
	}
	if err := p.member(1).Apply(3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	// The refused part's spend must not be recorded.
	if err := p.member(1).Apply(2); err != nil {
		t.Fatalf("retry within budget refused: %v", err)
	}
	if got := root.Spent(); got != 2 {
		t.Fatalf("root spent %v, want 2", got)
	}
}

func TestPartitionAgentRollbackRecomputesMax(t *testing.T) {
	root := NewRootAgent(10)
	p := newPartitionAgent(root, 2)
	m0, m1 := p.member(0), p.member(1)
	_ = m0.Apply(1)
	_ = m1.Apply(4)
	if got := root.Spent(); got != 4 {
		t.Fatalf("root spent %v, want 4", got)
	}
	m1.Rollback(4)
	if got := root.Spent(); got != 1 {
		t.Fatalf("root spent after rollback %v, want 1 (part0's max)", got)
	}
}

func TestPartitionAgentConcurrent(t *testing.T) {
	root := NewRootAgent(math.Inf(1))
	const parts, spends = 8, 200
	p := newPartitionAgent(root, parts)
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(m Agent) {
			defer wg.Done()
			for j := 0; j < spends; j++ {
				if err := m.Apply(0.01); err != nil {
					t.Errorf("concurrent apply: %v", err)
					return
				}
			}
		}(p.member(i))
	}
	wg.Wait()
	want := 0.01 * spends
	if got := root.Spent(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("root spent %v, want %v (max across equal parts)", got, want)
	}
}

// Property: for any sequence of per-part spends, the root is charged
// exactly the maximum of the per-part cumulative totals.
func TestPartitionAgentMaxProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		const parts = 4
		root := NewRootAgent(math.Inf(1))
		p := newPartitionAgent(root, parts)
		totals := make([]float64, parts)
		for i, r := range raw {
			part := i % parts
			eps := float64(r%100+1) / 100
			if err := p.member(part).Apply(eps); err != nil {
				return false
			}
			totals[part] += eps
		}
		max := 0.0
		for _, v := range totals {
			if v > max {
				max = v
			}
		}
		return math.Abs(root.Spent()-max) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewRootAgentPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative budget did not panic")
		}
	}()
	NewRootAgent(-1)
}
