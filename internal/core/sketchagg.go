package core

import (
	"math"

	"dptrace/internal/noise"
	"dptrace/internal/sketch"
)

// This file adds the sketch-backed aggregations: NoisyQuantile (GK
// rank summary + exponential mechanism), NoisyFrequency (count-min +
// Laplace), and NoisyDistinctSketch (HLL-style registers + Laplace).
// They are what make quantile / heavy-hitter / distinct-count
// analyses practical at trace scale — one pass, O(1/ε_sketch) or
// O(sketch-width) memory, no full sort or giant map.
//
// ε-contract: identical to every other aggregation — ctx checked
// BEFORE agent.Apply (cancelled queries charge zero ε), one Apply of
// the analyst's ε through the pipeline's agent chain (so SelectMany /
// GroupBy sensitivity scaling applies unchanged), one noise draw on
// the released scalar. The sketch is internal state and is never
// released; only the noised output leaves the privacy curtain. See
// DESIGN.md §S32 for the sensitivity calibration of each mechanism.
//
// Determinism: sketch builds are deterministic functions of the
// record sequence. The quantile build partitions the sequence into
// fixed sketchBlock-sized blocks and folds per-block summaries in
// block order, so the parallel build (workers each building their
// own blocks) is byte-identical to the sequential one — the block
// structure, not the worker count, decides every merge. Count-min
// and distinct merges are exact (counter addition / register max), so
// any deterministic sharding yields identical sketches. Both
// properties are pinned by tests.

// sketchBlock is the fixed number of consecutive records per
// quantile-summary block. It is a structural constant of the build —
// never derived from worker count — which is exactly why parallel
// and sequential builds agree to the byte.
const sketchBlock = 1 << 14

// DefaultQuantileAccuracy is the quantile summary's rank-accuracy
// target ε_sketch when the caller passes 0: ranks are off by at most
// 0.5% of n, comfortably below the exponential mechanism's own noise
// at the ε values trace analyses use.
const DefaultQuantileAccuracy = 0.005

// Frequency-sketch geometry: 4 rows × 8192 counters ≈ 256 KiB,
// overcount ≤ ~0.025% of n with probability 1-2^-4 per query.
const (
	freqSketchWidth = 8192
	freqSketchDepth = 4
)

// distinctSketchPrecision gives 2^12 registers ≈ 1.6% relative
// standard error on distinct counts.
const distinctSketchPrecision = 12

// validFraction validates a rank fraction the way NoisyOrderStatistic
// does.
func validFraction(fraction float64) error {
	if fraction < 0 || fraction > 1 || math.IsNaN(fraction) {
		return ErrInvalidEpsilon
	}
	return nil
}

// resolveSketchEps applies the default and validates.
func resolveSketchEps(sketchEps float64) (float64, error) {
	if sketchEps == 0 {
		return DefaultQuantileAccuracy, nil
	}
	if !(sketchEps > 0 && sketchEps < 1) || math.IsNaN(sketchEps) {
		return 0, ErrInvalidEpsilon
	}
	return sketchEps, nil
}

// buildQuantileSketch builds the fold of fixed-block summaries over
// records, in parallel when exec says so. Block boundaries depend
// only on record positions, merges happen in block order, and every
// per-block build is deterministic — so worker count never changes a
// byte of the result.
func buildQuantileSketch[T any](records []T, exec ExecOptions, sketchEps float64, f func(T) float64) *sketch.Quantile {
	n := len(records)
	merged := sketch.NewQuantile(sketchEps)
	if n == 0 {
		return merged
	}
	blocks := (n + sketchBlock - 1) / sketchBlock
	buildBlock := func(b int) *sketch.Quantile {
		blk := sketch.NewQuantile(sketchEps)
		lo := b * sketchBlock
		hi := lo + sketchBlock
		if hi > n {
			hi = n
		}
		for _, r := range records[lo:hi] {
			blk.Insert(f(r))
		}
		return blk
	}
	if exec.active(n) {
		w := exec.width(blocks)
		parts := make([]*sketch.Quantile, blocks)
		runWorkers(w, func(worker int) {
			lo, hi := chunk(blocks, w, worker)
			for b := lo; b < hi; b++ {
				parts[b] = buildBlock(b)
			}
		})
		parallelExecs.Add(1)
		for _, p := range parts {
			merged.Merge(p)
		}
		return merged
	}
	for b := 0; b < blocks; b++ {
		merged.Merge(buildBlock(b))
	}
	return merged
}

// quantileChoose runs the exponential mechanism over the summary's
// retained tuples: candidate i's score is the negated distance from
// the target rank to the tuple's plausible rank span. Adding or
// removing one record moves every rank bound — and hence every
// span endpoint and the target — by at most one, so the score
// sensitivity is 1, the same calibration NoisyMedian and
// NoisyOrderStatistic use for their rank scores. Exactly one noise
// draw (inside noise.Exponential).
func quantileChoose(src noise.Source, qs *sketch.Quantile, fraction, epsilon float64) float64 {
	tuples := qs.Tuples()
	if len(tuples) == 0 {
		return 0
	}
	target := fraction * float64(qs.Count())
	scores := make([]float64, len(tuples))
	for i := range tuples {
		lo := 0.0
		if i > 0 {
			lo = float64(tuples[i-1].RMin)
		}
		hi := float64(tuples[i].RMax)
		d := 0.0
		switch {
		case target < lo:
			d = lo - target
		case target > hi:
			d = target - hi
		}
		scores[i] = -d
	}
	idx := noise.Exponential(src, scores, 1, epsilon)
	return tuples[idx].Value
}

// NoisyQuantile returns a value whose rank is near fraction·n,
// selected by the exponential mechanism over a mergeable one-pass
// rank summary with accuracy target sketchEps (0 means
// DefaultQuantileAccuracy). It is the sketch-backed, trace-scale
// counterpart of NoisyOrderStatistic: O(1/sketchEps) memory instead
// of a full sort, at the cost of candidates being summary tuples
// rather than every distinct value. Charges ε like every aggregation.
func NoisyQuantile[T any](q *Queryable[T], epsilon, fraction, sketchEps float64, f func(T) float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "quantile", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "quantile", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	if err := validFraction(fraction); err != nil {
		aggDone(q.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	se, serr := resolveSketchEps(sketchEps)
	if serr != nil {
		aggDone(q.rec, "quantile", start, epsilon, serr)
		return 0, serr
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	if len(q.records) == 0 {
		aggDone(q.rec, "quantile", start, epsilon, nil)
		return 0, nil
	}
	qs := buildQuantileSketch(q.records, q.exec, se, f)
	v = quantileChoose(q.src, qs, fraction, epsilon)
	aggDone(q.rec, "quantile", start, epsilon, nil)
	return v, nil
}

// buildFrequencySketch builds the count-min sketch over keys, sharded
// across workers when exec says so. Counter addition is exact, so the
// merged shard sketches equal the sequential build bit for bit.
func buildFrequencySketch[T any](records []T, exec ExecOptions, key func(T) string) *sketch.CountMin {
	n := len(records)
	if exec.active(n) {
		w := exec.width(n)
		parts := make([]*sketch.CountMin, w)
		runWorkers(w, func(worker int) {
			c := sketch.NewCountMin(freqSketchWidth, freqSketchDepth)
			lo, hi := chunk(n, w, worker)
			for _, r := range records[lo:hi] {
				c.Add(key(r))
			}
			parts[worker] = c
		})
		parallelExecs.Add(1)
		merged := parts[0]
		for _, p := range parts[1:] {
			// Same geometry by construction; the error is impossible.
			if err := merged.Merge(p); err != nil {
				panic(err)
			}
		}
		return merged
	}
	c := sketch.NewCountMin(freqSketchWidth, freqSketchDepth)
	for _, r := range records {
		c.Add(key(r))
	}
	return c
}

// NoisyFrequency returns the approximate number of records whose key
// equals target, from a one-pass count-min sketch, perturbed with
// Laplace noise of scale 1/ε. One record contributes one increment,
// so the estimate's sensitivity is 1 — the same calibration as
// NoisyCount — and the sketch's (public-geometry) overcount is a
// bias, not a privacy cost. Charges ε like every aggregation.
func NoisyFrequency[T any](q *Queryable[T], epsilon float64, key func(T) string, target string) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "frequency", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "frequency", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "frequency", start, epsilon, err)
		return 0, err
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "frequency", start, epsilon, err)
		return 0, err
	}
	c := buildFrequencySketch(q.records, q.exec, key)
	v = float64(c.Estimate(target)) + noise.LaplaceForEpsilon(q.src, 1, epsilon)
	aggDone(q.rec, "frequency", start, epsilon, nil)
	return v, nil
}

// buildDistinctSketch builds the HLL-style registers over keys,
// sharded across workers when exec says so; register-max merge is
// exact, so shard builds equal the sequential build bit for bit.
func buildDistinctSketch[T any](records []T, exec ExecOptions, key func(T) string) *sketch.Distinct {
	n := len(records)
	if exec.active(n) {
		w := exec.width(n)
		parts := make([]*sketch.Distinct, w)
		runWorkers(w, func(worker int) {
			d := sketch.NewDistinct(distinctSketchPrecision)
			lo, hi := chunk(n, w, worker)
			for _, r := range records[lo:hi] {
				d.Add(key(r))
			}
			parts[worker] = d
		})
		parallelExecs.Add(1)
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				panic(err)
			}
		}
		return merged
	}
	d := sketch.NewDistinct(distinctSketchPrecision)
	for _, r := range records {
		d.Add(key(r))
	}
	return d
}

// NoisyDistinctSketch returns the approximate number of distinct keys
// among the records, from one-pass HLL-style registers, perturbed
// with Laplace noise of scale 1/ε. The released quantity is a
// distinct count, whose ideal sensitivity is 1 (one record adds or
// removes at most one distinct key); the registers themselves are
// never released. The estimator's deviation from the true distinct
// count is public-geometry bias, like count-min's overcount. Charges
// ε like every aggregation. See DESIGN.md §S32 for the honest caveat
// on estimator-level vs ideal sensitivity.
func NoisyDistinctSketch[T any](q *Queryable[T], epsilon float64, key func(T) string) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "distinctcount", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "distinctcount", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "distinctcount", start, epsilon, err)
		return 0, err
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "distinctcount", start, epsilon, err)
		return 0, err
	}
	d := buildDistinctSketch(q.records, q.exec, key)
	v = d.Estimate() + noise.LaplaceForEpsilon(q.src, 1, epsilon)
	aggDone(q.rec, "distinctcount", start, epsilon, nil)
	return v, nil
}

// quantileSink feeds a fused stream into the same fixed-block
// quantile fold the materializing build uses: a fresh block summary
// every sketchBlock accepted records, folded in order. Record
// positions in the fused output stream line up with positions in the
// materialized slice, so the sketches — and every noisy output — are
// byte-identical across the two paths.
type quantileSink[T any] struct {
	f      func(T) float64
	merged *sketch.Quantile
	cur    *sketch.Quantile
	se     float64
	inCur  int
	n      int
}

func (k *quantileSink[T]) accept(v T) {
	if k.inCur == sketchBlock {
		k.merged.Merge(k.cur)
		k.cur = sketch.NewQuantile(k.se)
		k.inCur = 0
	}
	k.cur.Insert(k.f(v))
	k.inCur++
	k.n++
}

func (k *quantileSink[T]) finish() *sketch.Quantile {
	if k.inCur > 0 {
		k.merged.Merge(k.cur)
		k.inCur = 0
	}
	return k.merged
}

// StreamNoisyQuantile is the fused NoisyQuantile: the summary is
// built directly from the fused pipeline's output, one pass, no
// intermediate slices, byte-identical to the materializing path.
func StreamNoisyQuantile[T any](s Stream[T], epsilon, fraction, sketchEps float64, f func(T) float64) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "quantile", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "quantile", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	if err := validFraction(fraction); err != nil {
		aggDone(s.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	se, serr := resolveSketchEps(sketchEps)
	if serr != nil {
		aggDone(s.rec, "quantile", start, epsilon, serr)
		return 0, serr
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "quantile", start, epsilon, err)
		return 0, err
	}
	k := &quantileSink[T]{f: f, se: se, merged: sketch.NewQuantile(se), cur: sketch.NewQuantile(se)}
	s.consume(k)
	if k.n == 0 {
		aggDone(s.rec, "quantile", start, epsilon, nil)
		return 0, nil
	}
	v = quantileChoose(s.nsrc, k.finish(), fraction, epsilon)
	aggDone(s.rec, "quantile", start, epsilon, nil)
	return v, nil
}

// freqSink feeds a fused stream into a count-min sketch.
type freqSink[T any] struct {
	key func(T) string
	c   *sketch.CountMin
}

func (k *freqSink[T]) accept(v T) { k.c.Add(k.key(v)) }

// StreamNoisyFrequency is the fused NoisyFrequency.
func StreamNoisyFrequency[T any](s Stream[T], epsilon float64, key func(T) string, target string) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "frequency", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "frequency", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "frequency", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "frequency", start, epsilon, err)
		return 0, err
	}
	k := &freqSink[T]{key: key, c: sketch.NewCountMin(freqSketchWidth, freqSketchDepth)}
	s.consume(k)
	v = float64(k.c.Estimate(target)) + noise.LaplaceForEpsilon(s.nsrc, 1, epsilon)
	aggDone(s.rec, "frequency", start, epsilon, nil)
	return v, nil
}

// distinctSink feeds a fused stream into HLL-style registers.
type distinctSink[T any] struct {
	key func(T) string
	d   *sketch.Distinct
}

func (k *distinctSink[T]) accept(v T) { k.d.Add(k.key(v)) }

// StreamNoisyDistinctSketch is the fused NoisyDistinctSketch.
func StreamNoisyDistinctSketch[T any](s Stream[T], epsilon float64, key func(T) string) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "distinctcount", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "distinctcount", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "distinctcount", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "distinctcount", start, epsilon, err)
		return 0, err
	}
	k := &distinctSink[T]{key: key, d: sketch.NewDistinct(distinctSketchPrecision)}
	s.consume(k)
	v = k.d.Estimate() + noise.LaplaceForEpsilon(s.nsrc, 1, epsilon)
	aggDone(s.rec, "distinctcount", start, epsilon, nil)
	return v, nil
}
