package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"dptrace/internal/noise"
)

// The cancellation contract: a query cancelled before its aggregation
// fires charges zero ε and surfaces ErrCanceled wrapping the context's
// own error; a live (or nil) context leaves results byte-identical to
// an un-contextualized pipeline.

func TestCancelBeforeAggregationChargesZero(t *testing.T) {
	records := make([]float64, 1000)
	for i := range records {
		records[i] = float64(i % 10)
	}
	q, root := NewQueryable(records, 5.0, noise.NewSeededSource(1, 2))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	filtered := q.WithContext(ctx).Where(func(v float64) bool { return v > 2 })
	if _, err := filtered.NoisyCount(1.0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("NoisyCount on cancelled ctx: err = %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled should wrap context.Canceled, got %v", err)
	}
	if spent := root.Spent(); spent != 0 {
		t.Fatalf("cancelled query charged ε = %v, want 0", spent)
	}

	// Every aggregation honors the gate.
	if _, err := filtered.NoisyCountInt(1.0); !errors.Is(err, ErrCanceled) {
		t.Errorf("NoisyCountInt: err = %v, want ErrCanceled", err)
	}
	if _, err := NoisySum(filtered, 1.0, func(v float64) float64 { return v }); !errors.Is(err, ErrCanceled) {
		t.Errorf("NoisySum: err = %v, want ErrCanceled", err)
	}
	if _, err := NoisyAverage(filtered, 1.0, func(v float64) float64 { return v }); !errors.Is(err, ErrCanceled) {
		t.Errorf("NoisyAverage: err = %v, want ErrCanceled", err)
	}
	if _, err := NoisyMedian(filtered, 1.0, func(v float64) float64 { return v }); !errors.Is(err, ErrCanceled) {
		t.Errorf("NoisyMedian: err = %v, want ErrCanceled", err)
	}
	if _, err := NoisyOrderStatistic(filtered, 1.0, 0.25, func(v float64) float64 { return v }); !errors.Is(err, ErrCanceled) {
		t.Errorf("NoisyOrderStatistic: err = %v, want ErrCanceled", err)
	}
	if spent := root.Spent(); spent != 0 {
		t.Fatalf("after all refused aggregations, ε = %v, want 0", spent)
	}
}

func TestDeadlineExceededChargesZero(t *testing.T) {
	q, root := NewQueryable([]int{1, 2, 3}, 1.0, noise.NewSeededSource(3, 4))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	<-ctx.Done()

	_, err := q.WithContext(ctx).NoisyCount(0.5)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if root.Spent() != 0 {
		t.Fatalf("expired-deadline query charged ε = %v, want 0", root.Spent())
	}
}

func TestContextPropagatesThroughDerivedPipeline(t *testing.T) {
	records := make([]int, 100)
	q, root := NewQueryable(records, 10.0, noise.NewSeededSource(5, 6))
	ctx, cancel := context.WithCancel(context.Background())

	// The context attaches at the head; every derived stage inherits it.
	pipeline := SelectMany(
		Distinct(q.WithContext(ctx).Where(func(int) bool { return true }),
			func(v int) int { return v }),
		2, func(v int) []int { return []int{v, v} })
	if pipeline.Context() != ctx {
		t.Fatalf("derived Queryable lost its context")
	}

	cancel()
	if _, err := pipeline.NoisyCount(1.0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if root.Spent() != 0 {
		t.Fatalf("ε = %v, want 0", root.Spent())
	}
}

func TestCancelledTransformationsShortCircuit(t *testing.T) {
	records := []int{1, 2, 3, 4, 5}
	q, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(7, 8))
	other, _ := NewQueryable(records, math.Inf(1), noise.NewSeededSource(9, 10))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cq := q.WithContext(ctx)

	calls := 0
	count := func(v int) int { calls++; return v }
	_ = WhereRecorded(cq, func(v int) bool { count(v); return true })
	_ = SelectRecorded(cq, count)
	_ = SelectMany(cq, 1, func(v int) []int { count(v); return nil })
	_ = Distinct(cq, count)
	_ = GroupBy(cq, count)
	_ = Join(cq, other, count, func(v int) int { return v }, func(a, b int) int { return a })
	_ = GroupJoin(cq, other, count, func(v int) int { return v }, func(k int, a, b []int) int { return k })
	_ = Intersect(cq, other, count, func(v int) int { return v })
	_ = Except(cq, other, count, func(v int) int { return v })
	_ = cq.Concat(other)
	parts := Partition(cq, []int{1, 2}, count)
	if calls != 0 {
		t.Fatalf("cancelled transformations evaluated user functions %d times, want 0", calls)
	}
	if len(parts) != 2 {
		t.Fatalf("cancelled Partition returned %d parts, want 2", len(parts))
	}
	if _, err := parts[1].NoisyCount(1.0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("partition part should inherit cancelled ctx, err = %v", err)
	}
}

func TestCancelMidScanParallel(t *testing.T) {
	n := DefaultParallelThreshold * 2
	records := make([]float64, n)
	q, root := NewQueryable(records, 1.0, noise.NewSeededSource(11, 12))
	ctx, cancel := context.WithCancel(context.Background())

	var seen atomic.Int64
	pred := func(float64) bool {
		if seen.Add(1) == int64(n/4) {
			cancel()
		}
		return true
	}
	out := WhereRecorded(q.WithContext(ctx).WithParallelism(4), pred)
	// Whether or not the workers abandoned before finishing, the
	// aggregation must observe the cancellation and refuse to charge.
	if _, err := out.NoisyCount(0.5); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if root.Spent() != 0 {
		t.Fatalf("ε = %v, want 0", root.Spent())
	}
}

func TestLiveContextKeepsResultsIdentical(t *testing.T) {
	n := DefaultParallelThreshold + 100
	records := make([]float64, n)
	for i := range records {
		records[i] = float64(i % 97)
	}
	pipeline := func(q *Queryable[float64]) (float64, error) {
		f := WhereRecorded(q, func(v float64) bool { return v > 10 })
		g := GroupBy(f, func(v float64) float64 { return math.Mod(v, 7) })
		return g.NoisyCount(0.25)
	}

	plain, _ := NewQueryable(records, 1.0, noise.NewSeededSource(21, 22))
	vPlain, err := pipeline(plain)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, _ := NewQueryable(records, 1.0, noise.NewSeededSource(21, 22))
	vCtx, err := pipeline(withCtx.WithContext(context.Background()).WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if vPlain != vCtx {
		t.Fatalf("live context changed result: %v != %v", vCtx, vPlain)
	}
}

// TestChargedAggregationCompletes pins the other half of the
// invariant: once ε is charged the aggregation returns a value even if
// the context fires immediately after; the spend is real either way.
func TestChargedAggregationCompletes(t *testing.T) {
	q, root := NewQueryable([]int{1, 2, 3}, 1.0, noise.NewSeededSource(31, 32))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := q.WithContext(ctx).NoisyCount(0.5); err != nil {
		t.Fatalf("live-context aggregation failed: %v", err)
	}
	if root.Spent() != 0.5 {
		t.Fatalf("ε = %v, want 0.5", root.Spent())
	}
}
