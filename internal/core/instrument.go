package core

import (
	"errors"
	"sync/atomic"
	"time"

	"dptrace/internal/obs"
)

// This file wires the engine to the observability layer.
// Transformations report an obs.Recorder.OpDone (operator name, wall
// time, records in/out) and aggregations an AggDone (outcome and
// requested ε). The recorder rides along the Queryable derivation
// chain exactly like the noise source; when it is nil — the default —
// the instrumentation collapses to a nil check and zero clock reads,
// so library users who never ask for telemetry pay nothing.
//
// Two operators are the exception: Where and Select have bodies small
// enough (inline cost ~66 of the 80 budget) that the compiler
// inlines them into callers and devirtualizes their per-record
// closures. Any in-method hook — even a guarded call — costs at least
// 57 budget units and breaks that, doubling 1M-record scan times for
// everyone, recorded or not. So those two stay hook-free and have
// explicit recorded twins below (WhereRecorded, SelectRecorded) that
// instrumented pipelines call instead. All other operators do enough
// work per call (maps, sorts, multi-slice merges) that they were never
// inline candidates, and keep their dynamic hooks.
//
// The same budget arithmetic applies to the execution engine's
// parallel dispatch (exec.go): a strategy branch inside Where or
// Select would cost an out-of-line call and break the same inlining.
// The twins therefore also carry the parallel dispatch — they are the
// parallel-capable spellings of Where and Select — while every other
// operator dispatches in its plain form.

// defaultRecorder is the process-wide recorder picked up by
// NewQueryable/NewQueryableFor at construction time. It exists for
// whole-program instrumentation (cmd/experiments -metrics) where
// threading a recorder through every analysis would be noise; services
// like dpserver attach recorders explicitly with WithRecorder instead.
var defaultRecorder atomic.Value // of recorderBox

type recorderBox struct{ rec obs.Recorder }

// SetDefaultRecorder installs the recorder future NewQueryable and
// NewQueryableFor calls inherit. Pass nil to turn default telemetry
// back off. Existing Queryables are unaffected.
func SetDefaultRecorder(rec obs.Recorder) {
	defaultRecorder.Store(recorderBox{rec: rec})
}

// DefaultRecorder returns the recorder set by SetDefaultRecorder, or
// nil.
func DefaultRecorder() obs.Recorder {
	if b, ok := defaultRecorder.Load().(recorderBox); ok {
		return b.rec
	}
	return nil
}

// WithRecorder returns a view of this Queryable whose derived
// pipeline reports telemetry to rec (nil disables reporting). The
// records and budget agent are shared; only the recorder differs.
func (q *Queryable[T]) WithRecorder(rec obs.Recorder) *Queryable[T] {
	out := *q
	out.rec = rec
	return &out
}

// WhereRecorded is Where plus recorder instrumentation and parallel
// dispatch: the filter's duration and records in/out reach the
// pipeline's recorder, and Queryables configured with WithParallelism
// filter with the chunked worker pool. Semantics, output ordering,
// and budget accounting are identical to Where.
func WhereRecorded[T any](q *Queryable[T], pred func(T) bool) *Queryable[T] {
	if ctxErr(q.ctx) != nil {
		return derive(q, []T{}, q.agent)
	}
	start := opStart(q.rec)
	var out *Queryable[T]
	var w int
	if q.exec.active(len(q.records)) {
		out = whereParallel(q, pred)
		w = q.exec.width(len(q.records))
	} else {
		out = q.Where(pred)
	}
	opDone(q.rec, "where", start, len(q.records), len(out.records), w)
	return out
}

// SelectRecorded is Select plus recorder instrumentation and parallel
// dispatch (see WhereRecorded).
func SelectRecorded[T, U any](q *Queryable[T], f func(T) U) *Queryable[U] {
	if ctxErr(q.ctx) != nil {
		return derive(q, []U{}, q.agent)
	}
	start := opStart(q.rec)
	var out *Queryable[U]
	var w int
	if q.exec.active(len(q.records)) {
		out = selectParallel(q, f)
		w = q.exec.width(len(q.records))
	} else {
		out = Select(q, f)
	}
	opDone(q.rec, "select", start, len(q.records), len(out.records), w)
	return out
}

// opStart samples the clock only when a recorder is attached.
func opStart(rec obs.Recorder) time.Time {
	if rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// opDone reports one completed transformation. workers is 0 for
// sequential execution and the shard count when the parallel engine
// ran the operator.
func opDone(rec obs.Recorder, op string, start time.Time, in, out, workers int) {
	if rec == nil {
		return
	}
	rec.OpDone(op, time.Since(start), in, out, workers)
}

// aggDone reports one aggregation attempt, classifying err into the
// ok/refused/error outcome the paper's owner-side ledger distinguishes.
func aggDone(rec obs.Recorder, agg string, start time.Time, epsilon float64, err error) {
	if rec == nil {
		return
	}
	outcome := obs.OutcomeOK
	switch {
	case err == nil:
	case errors.Is(err, ErrBudgetExceeded):
		outcome = obs.OutcomeRefused
	default:
		outcome = obs.OutcomeError
	}
	rec.AggDone(agg, outcome, epsilon, time.Since(start))
}

// combineRec picks the recorder for a binary transformation's output:
// the left input's when it has one, else the right's. (When both
// inputs carry the same recorder — the common case, one per query —
// this is also that recorder.)
func combineRec(a, b obs.Recorder) obs.Recorder {
	if a != nil {
		return a
	}
	return b
}

// RegisterGauges exports this agent's budget state as live gauges:
// dp_budget_total, dp_budget_spent, and dp_budget_remaining, with the
// given labels (alternating key/value, e.g. "dataset", "hotspot").
// Values are read at scrape time, so they always reflect the current
// ledger. Budget state is the owner-visible quantity the paper's §7
// policies are built on; it reveals spending, never data.
func (a *RootAgent) RegisterGauges(reg *obs.Registry, labels ...string) {
	reg.GaugeFunc("dp_budget_total", a.Budget, labels...)
	reg.GaugeFunc("dp_budget_spent", a.Spent, labels...)
	reg.GaugeFunc("dp_budget_remaining", a.Remaining, labels...)
}

// RegisterGauges exports the policy's shared budget as live gauges
// (see RootAgent.RegisterGauges).
func (p *AnalystPolicy) RegisterGauges(reg *obs.Registry, labels ...string) {
	p.total.RegisterGauges(reg, labels...)
}

// PerAnalystSpent reports every known analyst's cumulative charge —
// the policy-side ground truth that owner dashboards reconcile the
// audit ledger against.
func (p *AnalystPolicy) PerAnalystSpent() map[string]float64 {
	p.mu.Lock()
	names := make([]string, 0, len(p.analysts))
	for name := range p.analysts {
		names = append(names, name)
	}
	p.mu.Unlock()
	out := make(map[string]float64, len(names))
	for _, name := range names {
		out[name] = p.analystRoot(name).Spent()
	}
	return out
}
