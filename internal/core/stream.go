package core

import (
	"context"
	"math"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// This file is the fused streaming execution path of the engine. The
// materializing operators in queryable.go allocate one output slice
// per transformation, so a Where→Select→NoisySum pipeline makes three
// full passes and three heap copies over data it could scan once. A
// Stream is the lazy alternative for chains of record-wise operators
// (Where, Select, SelectMany): stages compose into a single loop that
// feeds the aggregation directly, with no intermediate slices.
//
// The hard invariant is that fusion is purely an execution choice:
// for the same pipeline and the same noise-source state, the fused
// and materializing paths produce byte-identical results, identical
// noise draws (same number of Source.Float64 calls in the same
// order), and identical ε-charges including refusal boundaries. That
// holds by construction —
//
//   - stages visit records in input order, exactly like the
//     sequential loops (and therefore like the parallel strategies,
//     which are themselves byte-identical to sequential — the PR2
//     invariant), so floating-point accumulation order is unchanged;
//   - SelectMany truncates to fanout and wraps the budget agent in
//     the same newScaleAgent call the materializing operator uses, so
//     the ε arithmetic is the same float64 expression;
//   - aggregation terminals run the same contract in the same order
//     as aggregate.go: recoverAgg guard, ctx check BEFORE
//     agent.Apply (a cancelled query charges zero ε), ε/bound
//     validation, Apply, scan, one calibrated noise draw
//
// — and is pinned by the differential tests in stream_test.go at
// GOMAXPROCS {1,4} under -race.
//
// One deliberate divergence, in the conservative direction: fusion is
// lazy, so analyst-supplied predicates/selectors execute during the
// terminal scan, which happens AFTER agent.Apply. A stage that panics
// therefore surfaces as ErrInternal with the charge standing, where
// the materializing path would have panicked while transforming —
// before any charge. Never less is charged than the materializing
// path would charge (DESIGN.md §S32).
//
// Allocation budget: constructing a Stream and folding the first
// Where into it are allocation-free; each further stage is exactly
// one heap object (the stage link, or a composed predicate closure);
// each terminal allocates one accumulator sink. Where→Select→Sum is
// 2 allocs/op total, pinned by alloc_test.go. Recorded pipelines
// (rec != nil) trade that for per-stage record counting: every stage
// becomes a counted link and appears in the profile with the "fused"
// strategy tag (obs.FusedWorkers) and zero duration — the single
// pass's wall time lands on the aggregation row.
//
// Streams may be freely derived from (each derivation owns its
// chain), but a single Stream must not be consumed by two
// aggregations concurrently: stage links hold per-run state.

// sink consumes a fused stream one record at a time.
type sink[T any] interface{ accept(T) }

// feeder replays a derived stream's fused chain into a sink.
type feeder[T any] interface{ feedInto(down sink[T]) }

// fusedStage is the per-stage record counter behind profile rows; it
// is only allocated (and only counted) on recorded pipelines.
type fusedStage struct {
	op      string
	in, out int
}

// Stream is a lazily-fused pipeline over a Queryable's records:
// transformations accumulate into a single loop that runs when an
// aggregation terminal consumes the stream. Construct one with
// Queryable.Stream.
//
// Streams are values: deriving a new stage never mutates its input
// stream, so a Stream can be reused as the base of several pipelines.
type Stream[T any] struct {
	recs   []T          // source records (source mode; feed == nil)
	pred   func(T) bool // filter folded onto the source, nil = none
	feed   feeder[T]    // fused chain replay (derived mode)
	agent  Agent
	nsrc   noise.Source
	rec    obs.Recorder
	exec   ExecOptions
	ctx    context.Context
	stages []*fusedStage // profile rows, recorded pipelines only
}

// Stream returns a fused streaming view of this Queryable: the same
// records, budget agent, noise source, recorder, execution options,
// and context, consumed lazily in one pass instead of per-operator
// materialized slices.
func (q *Queryable[T]) Stream() Stream[T] {
	return Stream[T]{
		recs:  q.records,
		agent: q.agent,
		nsrc:  q.src,
		rec:   q.rec,
		exec:  q.exec,
		ctx:   q.ctx,
	}
}

// appendStage returns a fresh slice so sibling derivations never
// share a tail (streams are values; their stage lists must be too).
func appendStage(stages []*fusedStage, st *fusedStage) []*fusedStage {
	out := make([]*fusedStage, len(stages)+1)
	copy(out, stages)
	out[len(stages)] = st
	return out
}

// Where fuses a filter stage onto the stream. On an unrecorded source
// stream the predicate folds directly into the source loop
// (allocation-free for the first Where, one composed closure per
// further Where); recorded or derived streams add one stage link.
// Filtering does not amplify sensitivity, so the agent is unchanged —
// exactly like the materializing Where.
func (s Stream[T]) Where(pred func(T) bool) Stream[T] {
	if s.rec == nil && s.feed == nil {
		if s.pred == nil {
			s.pred = pred
			return s
		}
		prev := s.pred
		s.pred = func(v T) bool { return prev(v) && pred(v) }
		return s
	}
	k := &whereLink[T]{src: s, pred: pred}
	if s.rec != nil {
		k.st = &fusedStage{op: "where"}
		s.stages = appendStage(s.stages, k.st)
	}
	s.feed = k
	s.recs, s.pred = nil, nil
	return s
}

// StreamSelect fuses a one-to-one mapping stage onto the stream,
// yielding a stream of the mapped type. One stage link is allocated;
// no records are. Sensitivity and agent are unchanged, exactly like
// the materializing Select.
func StreamSelect[T, U any](s Stream[T], f func(T) U) Stream[U] {
	out := Stream[U]{agent: s.agent, nsrc: s.nsrc, rec: s.rec, exec: s.exec, ctx: s.ctx, stages: s.stages}
	k := &selectLink[T, U]{src: s, f: f}
	if s.rec != nil {
		k.st = &fusedStage{op: "select"}
		out.stages = appendStage(s.stages, k.st)
	}
	out.feed = k
	return out
}

// StreamSelectMany fuses a flattening stage: f maps each record to a
// slice, truncated to at most fanout outputs. Exactly like the
// materializing SelectMany, one input record can influence up to
// fanout output records, so the stream's agent is wrapped in the
// same sensitivity scaling (the identical newScaleAgent call, so the
// downstream ε arithmetic is bit-for-bit the same expression).
func StreamSelectMany[T, U any](s Stream[T], fanout int, f func(T) []U) Stream[U] {
	if fanout < 1 {
		panic("core: SelectMany fanout must be >= 1")
	}
	out := Stream[U]{agent: newScaleAgent(s.agent, float64(fanout)), nsrc: s.nsrc, rec: s.rec, exec: s.exec, ctx: s.ctx, stages: s.stages}
	k := &selectManyLink[T, U]{src: s, fanout: fanout, f: f}
	if s.rec != nil {
		k.st = &fusedStage{op: "selectmany"}
		out.stages = appendStage(s.stages, k.st)
	}
	out.feed = k
	return out
}

// whereLink is a fused filter stage. It is both the feeder of its
// output stream and the sink its source pushes into — one object per
// stage, which is what keeps fused chains at one alloc per stage.
type whereLink[T any] struct {
	src  Stream[T]
	pred func(T) bool
	st   *fusedStage
	down sink[T]
}

func (k *whereLink[T]) feedInto(down sink[T]) {
	k.down = down
	k.src.feedSink(k)
}

func (k *whereLink[T]) accept(v T) {
	if k.st != nil {
		k.st.in++
	}
	if k.pred(v) {
		if k.st != nil {
			k.st.out++
		}
		k.down.accept(v)
	}
}

// selectLink is a fused mapping stage (see whereLink).
type selectLink[T, U any] struct {
	src  Stream[T]
	f    func(T) U
	st   *fusedStage
	down sink[U]
}

func (k *selectLink[T, U]) feedInto(down sink[U]) {
	k.down = down
	k.src.feedSink(k)
}

func (k *selectLink[T, U]) accept(v T) {
	if k.st != nil {
		k.st.in++
		k.st.out++
	}
	k.down.accept(k.f(v))
}

// selectManyLink is a fused flattening stage (see whereLink). The
// truncation order matches the materializing SelectMany: f's result
// is cut to fanout, then emitted in order.
type selectManyLink[T, U any] struct {
	src    Stream[T]
	fanout int
	f      func(T) []U
	st     *fusedStage
	down   sink[U]
}

func (k *selectManyLink[T, U]) feedInto(down sink[U]) {
	k.down = down
	k.src.feedSink(k)
}

func (k *selectManyLink[T, U]) accept(v T) {
	if k.st != nil {
		k.st.in++
	}
	mapped := k.f(v)
	if len(mapped) > k.fanout {
		mapped = mapped[:k.fanout]
	}
	if k.st != nil {
		k.st.out += len(mapped)
	}
	for _, u := range mapped {
		k.down.accept(u)
	}
}

// feedSink pushes the stream's records into down: derived streams
// replay their chain, source streams loop the records (with the
// folded predicate hoisted out of the loop).
func (s *Stream[T]) feedSink(down sink[T]) {
	if s.feed != nil {
		s.feed.feedInto(down)
		return
	}
	if s.pred == nil {
		for _, r := range s.recs {
			down.accept(r)
		}
		return
	}
	for _, r := range s.recs {
		if s.pred(r) {
			down.accept(r)
		}
	}
}

// consume runs the fused loop into down and, on recorded pipelines,
// emits one OpDone per fused stage in pipeline order with the
// obs.FusedWorkers sentinel. Per-stage durations are reported as
// zero: the stages ran interleaved in one loop whose wall time the
// aggregation row carries.
func (s *Stream[T]) consume(down sink[T]) {
	if s.rec == nil {
		s.feedSink(down)
		return
	}
	for _, st := range s.stages {
		st.in, st.out = 0, 0
	}
	s.feedSink(down)
	for _, st := range s.stages {
		s.rec.OpDone(st.op, 0, st.in, st.out, obs.FusedWorkers)
	}
}

// aggCtxErr mirrors Queryable.aggCtxErr for stream terminals.
func (s *Stream[T]) aggCtxErr() error {
	if err := ctxErr(s.ctx); err != nil {
		return canceledErr(err)
	}
	return nil
}

// countSink tallies records.
type countSink[T any] struct{ n int }

func (k *countSink[T]) accept(T) { k.n++ }

// sumSink accumulates clamped values in stream order — the same
// float64 additions, in the same order, as the materializing
// NoisySumScaled loop.
type sumSink[T any] struct {
	sum, bound float64
	f          func(T) float64
}

func (k *sumSink[T]) accept(v T) { k.sum += clamp(k.f(v), k.bound) }

// avgSink is sumSink plus the record count NoisyAverage divides by.
type avgSink[T any] struct {
	sum, bound float64
	n          int
	f          func(T) float64
}

func (k *avgSink[T]) accept(v T) {
	k.n++
	k.sum += clamp(k.f(v), k.bound)
}

// collectSink materializes the stream.
type collectSink[T any] struct{ out []T }

func (k *collectSink[T]) accept(v T) { k.out = append(k.out, v) }

// NoisyCount runs the fused pipeline once and returns the record
// count perturbed with Laplace noise of scale 1/ε, charging ε exactly
// like Queryable.NoisyCount: same validation order, same ctx-before-
// Apply contract, same single noise draw.
func (s Stream[T]) NoisyCount(epsilon float64) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "count", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "count", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "count", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "count", start, epsilon, err)
		return 0, err
	}
	k := &countSink[T]{}
	s.consume(k)
	v = float64(k.n) + noise.LaplaceForEpsilon(s.nsrc, 1, epsilon)
	aggDone(s.rec, "count", start, epsilon, nil)
	return v, nil
}

// NoisyCountInt is NoisyCount with the geometric (discrete Laplace)
// mechanism, mirroring Queryable.NoisyCountInt.
func (s Stream[T]) NoisyCountInt(epsilon float64) (v int64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "countint", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "countint", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "countint", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "countint", start, epsilon, err)
		return 0, err
	}
	k := &countSink[T]{}
	s.consume(k)
	v = int64(k.n) + noise.Geometric(s.nsrc, 1, epsilon)
	aggDone(s.rec, "countint", start, epsilon, nil)
	return v, nil
}

// StreamNoisySum is the fused NoisySum: values clamped to [-1, 1],
// summed in one pass, Laplace noise of scale 1/ε.
func StreamNoisySum[T any](s Stream[T], epsilon float64, f func(T) float64) (float64, error) {
	return StreamNoisySumScaled(s, epsilon, 1, f)
}

// StreamNoisySumScaled is the fused NoisySumScaled: one pass, byte-
// identical result, noise draw, and ε-charge to the materializing
// path on the same pipeline and noise-source state.
func StreamNoisySumScaled[T any](s Stream[T], epsilon, bound float64, f func(T) float64) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "sum", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "sum", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "sum", start, epsilon, err)
		return 0, err
	}
	if err := validBound(bound); err != nil {
		aggDone(s.rec, "sum", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "sum", start, epsilon, err)
		return 0, err
	}
	k := &sumSink[T]{bound: bound, f: f}
	s.consume(k)
	v = k.sum + noise.LaplaceForEpsilon(s.nsrc, bound, epsilon)
	aggDone(s.rec, "sum", start, epsilon, nil)
	return v, nil
}

// StreamNoisyAverage is the fused NoisyAverage (clamp to [-1, 1]).
func StreamNoisyAverage[T any](s Stream[T], epsilon float64, f func(T) float64) (float64, error) {
	return StreamNoisyAverageScaled(s, epsilon, 1, f)
}

// StreamNoisyAverageScaled is the fused NoisyAverageScaled: the count
// and the clamped sum come from the same single pass, and the empty-
// stream noise floor matches the materializing path.
func StreamNoisyAverageScaled[T any](s Stream[T], epsilon, bound float64, f func(T) float64) (v float64, err error) {
	start := opStart(s.rec)
	defer recoverAgg(s.rec, "average", start, epsilon, &v, &err)
	if cerr := s.aggCtxErr(); cerr != nil {
		aggDone(s.rec, "average", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(s.rec, "average", start, epsilon, err)
		return 0, err
	}
	if err := validBound(bound); err != nil {
		aggDone(s.rec, "average", start, epsilon, err)
		return 0, err
	}
	if err := s.agent.Apply(epsilon); err != nil {
		aggDone(s.rec, "average", start, epsilon, err)
		return 0, err
	}
	k := &avgSink[T]{bound: bound, f: f}
	s.consume(k)
	if k.n == 0 {
		v = noise.LaplaceForEpsilon(s.nsrc, 2*bound, epsilon)
		aggDone(s.rec, "average", start, epsilon, nil)
		return v, nil
	}
	v = k.sum/float64(k.n) + noise.LaplaceForEpsilon(s.nsrc, 2*bound/float64(k.n), epsilon)
	aggDone(s.rec, "average", start, epsilon, nil)
	return v, nil
}

// Materialize runs the fused pipeline once and returns its records as
// an ordinary Queryable — the escape hatch for continuing into
// operators the streaming path does not fuse (GroupBy, Join,
// Partition, the order-statistic aggregations). The result carries
// the stream's agent, noise source, recorder, execution options, and
// context, so the rest of the pipeline behaves as if it had been
// built from materializing operators all along. On a cancelled
// context it short-circuits to an empty Queryable, exactly like the
// materializing transformations.
func (s Stream[T]) Materialize() *Queryable[T] {
	out := &Queryable[T]{agent: s.agent, src: s.nsrc, rec: s.rec, exec: s.exec, ctx: s.ctx}
	if ctxErr(s.ctx) != nil {
		out.records = []T{}
		return out
	}
	k := &collectSink[T]{out: make([]T, 0)}
	s.consume(k)
	out.records = k.out
	return out
}

// validBound validates a clamp bound the way the materializing
// aggregations do.
func validBound(bound float64) error {
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return ErrInvalidEpsilon
	}
	return nil
}
