package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dptrace/internal/noise"
)

func TestAnalystPolicyPerAnalystCap(t *testing.T) {
	p := NewAnalystPolicy(math.Inf(1), 1.0)
	alice := p.AgentFor("alice")
	if err := alice.Apply(0.8); err != nil {
		t.Fatal(err)
	}
	if err := alice.Apply(0.3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-cap apply: %v", err)
	}
	// Bob has his own cap.
	if err := p.AgentFor("bob").Apply(0.8); err != nil {
		t.Fatalf("bob blocked by alice's spending: %v", err)
	}
	if got := p.SpentBy("alice"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("alice spent %v", got)
	}
	if got := p.TotalSpent(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("total spent %v, want 1.6 (composition adds)", got)
	}
}

func TestAnalystPolicySharedTotal(t *testing.T) {
	p := NewAnalystPolicy(1.0, math.Inf(1))
	if err := p.AgentFor("alice").Apply(0.7); err != nil {
		t.Fatal(err)
	}
	// Bob is personally unconstrained but the shared total refuses.
	if err := p.AgentFor("bob").Apply(0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("shared total not enforced: %v", err)
	}
	// The refusal must not have consumed bob's personal budget.
	if got := p.SpentBy("bob"); got != 0 {
		t.Errorf("bob spent %v after refusal", got)
	}
	if err := p.AgentFor("bob").Apply(0.3); err != nil {
		t.Fatalf("within-total apply refused: %v", err)
	}
}

func TestAnalystPolicyRemainingFor(t *testing.T) {
	p := NewAnalystPolicy(1.0, 0.6)
	_ = p.AgentFor("alice").Apply(0.5)
	// Alice personally has 0.1 left; shared has 0.5: min is 0.1.
	if got := p.RemainingFor("alice"); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("alice remaining %v, want 0.1", got)
	}
	// Bob has 0.6 cap but shared only 0.5.
	if got := p.RemainingFor("bob"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("bob remaining %v, want 0.5", got)
	}
}

func TestAnalystPolicyAgentStability(t *testing.T) {
	// The same analyst's agent must draw from the same cap across
	// AgentFor calls.
	p := NewAnalystPolicy(math.Inf(1), 1.0)
	if err := p.AgentFor("carol").Apply(0.6); err != nil {
		t.Fatal(err)
	}
	if err := p.AgentFor("carol").Apply(0.6); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("second handle forgot prior spending: %v", err)
	}
}

func TestAnalystPolicyConcurrent(t *testing.T) {
	p := NewAnalystPolicy(math.Inf(1), math.Inf(1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			a := p.AgentFor(string(rune('a' + id%3)))
			for j := 0; j < 100; j++ {
				if err := a.Apply(0.01); err != nil {
					t.Errorf("concurrent apply: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := p.TotalSpent(); math.Abs(got-8) > 1e-6 {
		t.Errorf("total spent %v, want 8", got)
	}
}

func TestNewQueryableForUsesPolicyAgent(t *testing.T) {
	p := NewAnalystPolicy(math.Inf(1), 0.5)
	q := NewQueryableFor([]int{1, 2, 3}, p.AgentFor("dave"), noise.NewSeededSource(1, 2))
	if _, err := q.NoisyCount(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NoisyCount(0.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("policy cap not enforced through Queryable: %v", err)
	}
	if got := p.SpentBy("dave"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("dave spent %v", got)
	}
}

func TestRelaxingBudgetGrowsWithTime(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	b := NewRelaxingBudget(0.5, 0.1, math.Inf(1), now)

	if err := b.Apply(0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("early over-spend allowed: %v", err)
	}
	// 10 seconds later the allowance grew by 1.0.
	clock = clock.Add(10 * time.Second)
	if err := b.Apply(0.4); err != nil {
		t.Fatalf("relaxed budget still refused: %v", err)
	}
	if got := b.Spent(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("spent %v, want 0.8", got)
	}
	if got := b.Available(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("available %v, want 0.7", got)
	}
}

func TestRelaxingBudgetCappedAtMax(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewRelaxingBudget(0, 1, 2.0, func() time.Time { return clock })
	clock = clock.Add(time.Hour)
	if err := b.Apply(2.0); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0.1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("max cap not enforced: %v", err)
	}
}

func TestRelaxingBudgetRollback(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewRelaxingBudget(1, 0, 1, func() time.Time { return clock })
	_ = b.Apply(0.8)
	b.Rollback(0.8)
	if err := b.Apply(1.0); err != nil {
		t.Fatalf("rollback did not restore: %v", err)
	}
}

func TestRelaxingBudgetAsQueryableAgent(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewRelaxingBudget(0.1, 0.1, math.Inf(1), func() time.Time { return clock })
	q := NewQueryableFor(ints(100), b, noise.NewSeededSource(3, 4))
	if _, err := q.NoisyCount(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NoisyCount(0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("early query should be refused")
	}
	clock = clock.Add(5 * time.Second)
	if _, err := q.NoisyCount(0.5); err != nil {
		t.Fatalf("later query refused: %v", err)
	}
}

func TestRelaxingBudgetInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative base did not panic")
		}
	}()
	NewRelaxingBudget(-1, 0, 1, nil)
}
