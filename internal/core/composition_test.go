package core

import (
	"math"
	"testing"
	"testing/quick"

	"dptrace/internal/noise"
)

// TestSequentialCompositionProperty drives random sequences of
// aggregations through random transformation chains and checks that
// the root's cumulative charge equals the analytically expected total
// — the additive sequential composition that §7's budget policies
// rely on.
func TestSequentialCompositionProperty(t *testing.T) {
	type step struct {
		// op selects the pipeline: 0 direct, 1 grouped (x2),
		// 2 double-grouped (x4), 3 partitioned (max), 4 self-join (x2).
		Op      uint8
		EpsTick uint8 // epsilon = (EpsTick%10+1)/10
	}
	f := func(steps []step) bool {
		records := ints(64)
		q, root := NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 2))
		expected := 0.0
		for _, s := range steps {
			eps := float64(s.EpsTick%10+1) / 10
			switch s.Op % 5 {
			case 0:
				if _, err := q.NoisyCount(eps); err != nil {
					return false
				}
				expected += eps
			case 1:
				g := GroupBy(q, func(x int) int { return x % 4 })
				if _, err := g.NoisyCount(eps); err != nil {
					return false
				}
				expected += 2 * eps
			case 2:
				g := GroupBy(GroupBy(q, func(x int) int { return x % 8 }),
					func(g Group[int, int]) int { return g.Key % 2 })
				if _, err := g.NoisyCount(eps); err != nil {
					return false
				}
				expected += 4 * eps
			case 3:
				parts := Partition(q, []int{0, 1, 2}, func(x int) int { return x % 3 })
				for k := 0; k < 3; k++ {
					if _, err := parts[k].NoisyCount(eps); err != nil {
						return false
					}
				}
				expected += eps // max across equal parts
			case 4:
				j := Join(q, q,
					func(x int) int { return x }, func(x int) int { return x },
					func(a, b int) int { return a })
				if _, err := j.NoisyCount(eps); err != nil {
					return false
				}
				expected += 2 * eps // self-join charges both sides
			}
		}
		return math.Abs(root.Spent()-expected) < 1e-9*float64(len(steps)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCompositionAcrossDerivedViews: spending through any number of
// cost-free transformations (Where/Select/Distinct) must charge
// exactly like spending on the source.
func TestCompositionAcrossDerivedViews(t *testing.T) {
	q, root := NewQueryable(ints(100), math.Inf(1), noise.NewSeededSource(3, 4))
	view := Distinct(
		Select(
			q.Where(func(x int) bool { return x%2 == 0 }),
			func(x int) int { return x / 2 }),
		func(x int) int { return x })
	for i := 0; i < 10; i++ {
		if _, err := view.NoisyCount(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if got := root.Spent(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("spent %v through cost-free views, want 1.0", got)
	}
}

// TestPartitionThenGroupByComposition: stability factors compose
// multiplicatively through nested derivations (partition member then
// GroupBy: the partition's max-accounting sees 2x requests).
func TestPartitionThenGroupByComposition(t *testing.T) {
	q, root := NewQueryable(ints(100), math.Inf(1), noise.NewSeededSource(5, 6))
	parts := Partition(q, []int{0, 1}, func(x int) int { return x % 2 })
	for k := 0; k < 2; k++ {
		g := GroupBy(parts[k], func(x int) int { return x % 10 })
		if _, err := g.NoisyCount(0.5); err != nil {
			t.Fatal(err)
		}
	}
	// Each part was charged 1.0 (0.5 x 2); the partition forwards the
	// max: 1.0.
	if got := root.Spent(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("spent %v, want 1.0", got)
	}
}
