//go:build race

package core

// raceEnabled reports whether this binary was built with the race
// detector. The allocation-budget guards in alloc_test.go skip under
// -race: the detector instruments allocations and inflates the counts
// the guards pin. check.sh runs those guards in a separate non-race
// invocation.
const raceEnabled = true
