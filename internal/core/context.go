package core

import (
	"context"
	"errors"
	"sync/atomic"
)

// This file threads context.Context through the engine so a query
// whose caller has gone away — a cancelled HTTP request, an expired
// deadline — stops burning CPU instead of running to completion for
// nobody.
//
// The contract matters more than the mechanism: cancellation NEVER
// changes privacy accounting. Every aggregation checks its context
// BEFORE charging the budget agent, so a query cancelled before its
// aggregation fires charges zero ε and returns ErrCanceled; once the
// charge has been applied the aggregation completes normally (the
// remaining work is a noise draw, not worth abandoning a paid-for
// answer over). Transformations on a cancelled context short-circuit
// to empty outputs — harmless, because the only way to observe a
// transformation's output is an aggregation, which will refuse.
//
// Check placement follows the execution strategies (see exec.go):
// sequential non-inline operators check once at entry; the parallel
// strategies additionally check between chunk strides
// (cancelStride records) so long scans abandon mid-chunk. The plain
// Where method and Select function remain check-free for the same
// inlining-budget reason they are hook- and dispatch-free
// (instrument.go); their Recorded twins honor cancellation.

// ErrCanceled is returned by aggregations whose context was cancelled
// or past its deadline before the privacy charge was applied. It
// always wraps the context's own error, so
// errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) also hold. No budget is
// consumed on this path.
var ErrCanceled = errors.New("core: query canceled before aggregation; no budget charged")

// cancelStride is how many records a parallel worker processes
// between context checks: large enough that the mask-and-compare is
// noise next to the per-record work, small enough that cancellation
// lands within microseconds on commodity cores.
const cancelStride = 1 << 13

// WithContext returns a view of this Queryable whose derived pipeline
// observes ctx: transformations stop early and aggregations refuse —
// without charging — once ctx is cancelled or past its deadline.
// Records, budget agent, noise source, recorder, and execution
// strategy are shared; a nil ctx restores the never-cancelled
// default.
func (q *Queryable[T]) WithContext(ctx context.Context) *Queryable[T] {
	out := *q
	out.ctx = ctx
	return &out
}

// Context returns the context attached with WithContext, or nil.
func (q *Queryable[T]) Context() context.Context { return q.ctx }

// ctxErr reports the context's error, tolerating the nil context that
// un-contextualized Queryables carry.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// canceledErr wraps a non-nil context error in ErrCanceled.
func canceledErr(cause error) error {
	return errors.Join(ErrCanceled, cause)
}

// combineCtx picks the context for a binary transformation's output,
// mirroring combineRec: the left input's when set, else the right's.
func combineCtx(a, b context.Context) context.Context {
	if a != nil {
		return a
	}
	return b
}

// aggCtxErr is the aggregation-side gate: it returns the ErrCanceled
// wrapper to surface, or nil when the query may proceed to charge.
func (q *Queryable[T]) aggCtxErr() error {
	if err := ctxErr(q.ctx); err != nil {
		return canceledErr(err)
	}
	return nil
}

// canceler coordinates cooperative cancellation across parallel
// workers. Each worker polls once per record with its loop index; the
// context itself is consulted only at cancelStride boundaries, and in
// between workers observe each other's verdict through a shared flag,
// so the per-record cost is a nil check and a mask compare. A nil
// canceler (nil context) never cancels.
type canceler struct {
	ctx  context.Context
	stop atomic.Bool
}

func newCanceler(ctx context.Context) *canceler {
	if ctx == nil {
		return nil
	}
	return &canceler{ctx: ctx}
}

// poll reports whether the worker at loop index i should abandon its
// chunk.
func (c *canceler) poll(i int) bool {
	if c == nil {
		return false
	}
	if i&(cancelStride-1) != 0 {
		return false
	}
	if c.stop.Load() {
		return true
	}
	if c.ctx.Err() != nil {
		c.stop.Store(true)
		return true
	}
	return false
}

// abandoned reports whether any worker bailed out mid-chunk, i.e. the
// per-worker outputs are partial and must be discarded. A run that
// completed before the context fired keeps its (complete, valid)
// result; the aggregation-side gate still refuses to charge for it.
func (c *canceler) abandoned() bool {
	return c != nil && c.stop.Load()
}
