package core

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"dptrace/internal/noise"
)

// Tests for the sketch-backed aggregations: the parallel sketch builds
// must be byte-identical to the sequential ones (the fixed-block /
// exact-merge determinism contract), the mechanisms must land near the
// true answers at generous ε, and the ε-contract (ctx before Apply,
// validation before charge, refusal on exhaustion) must match every
// other aggregation.

// TestSketchAggParallelMatchesSequential pins the shard-merge ==
// sequential-build guarantee under the real engine: same seeded noise
// source, any worker count, GOMAXPROCS 1 and 4 — identical outputs
// and identical charges.
func TestSketchAggParallelMatchesSequential(t *testing.T) {
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })

		rng := rand.New(rand.NewSource(int64(400 + gmp)))
		// Sizes straddling sketchBlock so multi-block quantile builds
		// and uneven worker chunks are both exercised.
		for _, n := range []int{0, 1, 1023, sketchBlock - 1, sketchBlock + 1, 3 * sketchBlock} {
			flows := randomFlows(rng, n)
			aggs := []struct {
				name string
				run  func(q *Queryable[flowRec]) (float64, error)
			}{
				{"quantile", func(q *Queryable[flowRec]) (float64, error) {
					return NoisyQuantile(q, 0.5, 0.75, 0.02, func(f flowRec) float64 { return float64(f.Len) })
				}},
				{"frequency", func(q *Queryable[flowRec]) (float64, error) {
					return NoisyFrequency(q, 0.5, func(f flowRec) string {
						return string(rune('a' + f.Port%16))
					}, "b")
				}},
				{"distinctcount", func(q *Queryable[flowRec]) (float64, error) {
					return NoisyDistinctSketch(q, 0.5, func(f flowRec) string {
						return string(rune('A' + f.Src%128))
					})
				}},
			}
			for _, agg := range aggs {
				q, root := NewQueryable(flows, 100, noise.NewSeededSource(17, 19))
				seqV, seqErr := agg.run(q)
				for _, workers := range []int{2, 4, 7} {
					qp, rootP := NewQueryable(flows, 100, noise.NewSeededSource(17, 19))
					parV, parErr := agg.run(qp.WithExecOptions(parExec(workers)))
					if math.Float64bits(seqV) != math.Float64bits(parV) {
						t.Fatalf("%s (n=%d, workers=%d, gmp=%d): parallel %v differs from sequential %v",
							agg.name, n, workers, gmp, parV, seqV)
					}
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("%s (n=%d, workers=%d): errs %v vs %v", agg.name, n, workers, parErr, seqErr)
					}
					if root.Spent() != rootP.Spent() {
						t.Fatalf("%s (n=%d, workers=%d): charges differ", agg.name, n, workers)
					}
				}
			}
		}
	}
}

// TestNoisyQuantileAccuracy: at generous ε the mechanism's answer must
// sit within (sketch error + mechanism slack) of the true quantile's
// rank.
func TestNoisyQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	const n = 60000
	vals := make([]float64, n)
	recs := make([]flowRec, n)
	for i := range recs {
		l := rng.Intn(1500)
		recs[i] = flowRec{Len: l}
		vals[i] = float64(l)
	}
	sort.Float64s(vals)
	const sketchEps = 0.01
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(1, 1))
		got, err := NoisyQuantile(q, 50, frac, sketchEps, func(f flowRec) float64 { return float64(f.Len) })
		if err != nil {
			t.Fatal(err)
		}
		// Rank of the returned value vs the target rank.
		lo := sort.SearchFloat64s(vals, got)
		hi := sort.Search(n, func(i int) bool { return vals[i] > got })
		target := frac * n
		rankErr := 0.0
		if target < float64(lo) {
			rankErr = float64(lo) - target
		} else if target > float64(hi) {
			rankErr = target - float64(hi)
		}
		// Sketch contributes ≤ sketchEps·n; at ε=50 the exponential
		// mechanism adds a few hundred ranks of slack at most.
		if limit := sketchEps*n + 0.01*n; rankErr > limit {
			t.Errorf("fraction %.2f: returned %v has rank error %.0f > %.0f", frac, got, rankErr, limit)
		}
	}
}

// TestNoisyFrequencyAccuracy: the sketch estimate plus noise must land
// near the true key frequency at generous ε.
func TestNoisyFrequencyAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	const n = 50000
	recs := make([]flowRec, n)
	trueHits := 0
	for i := range recs {
		recs[i] = flowRec{Port: uint16(rng.Intn(100))}
		if recs[i].Port == 7 {
			trueHits++
		}
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(2, 2))
	got, err := NoisyFrequency(q, 50, func(f flowRec) string {
		return string(rune('0' + f.Port%10))
	}, "7")
	if err != nil {
		t.Fatal(err)
	}
	// Key "7" collects ports ≡ 7 (mod 10); recount under that mapping.
	want := 0
	for _, r := range recs {
		if r.Port%10 == 7 {
			want++
		}
	}
	// Count-min never undercounts; width 8192 over 10 keys means no
	// collisions in practice, and ε=50 noise is sub-unit.
	if math.Abs(got-float64(want)) > 0.01*float64(want)+5 {
		t.Errorf("frequency estimate %v, true %d", got, want)
	}
}

// TestNoisyDistinctAccuracy: HLL estimate plus noise lands within a
// few percent of the true distinct count.
func TestNoisyDistinctAccuracy(t *testing.T) {
	const n, distinct = 40000, 2500
	recs := make([]flowRec, n)
	for i := range recs {
		recs[i] = flowRec{Src: uint32(i % distinct)}
	}
	q, _ := NewQueryable(recs, math.Inf(1), noise.NewSeededSource(3, 3))
	got, err := NoisyDistinctSketch(q, 50, func(f flowRec) string {
		return string(rune(f.Src)) + string(rune(f.Src>>8))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-distinct) / distinct; rel > 0.08 {
		t.Errorf("distinct estimate %v, true %d (%.1f%% off)", got, distinct, rel*100)
	}
}

// TestSketchAggContract: parameter validation, refusal, and empty
// inputs follow the shared aggregation contract.
func TestSketchAggContract(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	flows := randomFlows(rng, 200)
	lenOf := func(f flowRec) float64 { return float64(f.Len) }
	keyOf := func(f flowRec) string { return "k" }

	t.Run("validation-before-charge", func(t *testing.T) {
		q, root := NewQueryable(flows, 10, noise.NewSeededSource(1, 1))
		if _, err := NoisyQuantile(q, -1, 0.5, 0, lenOf); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("bad ε: %v", err)
		}
		if _, err := NoisyQuantile(q, 0.5, 2, 0, lenOf); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("bad fraction: %v", err)
		}
		if _, err := NoisyQuantile(q, 0.5, 0.5, -0.1, lenOf); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("bad sketchEps: %v", err)
		}
		if _, err := NoisyFrequency(q, math.NaN(), keyOf, "k"); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("frequency bad ε: %v", err)
		}
		if _, err := NoisyDistinctSketch(q, 0, keyOf); !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("distinct bad ε: %v", err)
		}
		if spent := root.Spent(); spent != 0 {
			t.Fatalf("invalid parameters charged ε=%v", spent)
		}
	})

	t.Run("refusal", func(t *testing.T) {
		q, root := NewQueryable(flows, 1, noise.NewSeededSource(1, 1))
		if _, err := NoisyQuantile(q, 0.8, 0.5, 0, lenOf); err != nil {
			t.Fatal(err)
		}
		if _, err := NoisyFrequency(q, 0.8, keyOf, "k"); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("want refusal, got %v", err)
		}
		if spent := root.Spent(); spent != 0.8 {
			t.Fatalf("refused aggregation moved the ledger: %v", spent)
		}
	})

	t.Run("empty", func(t *testing.T) {
		q, root := NewQueryable([]flowRec{}, 10, noise.NewSeededSource(1, 1))
		v, err := NoisyQuantile(q, 0.5, 0.5, 0, lenOf)
		if err != nil || v != 0 {
			t.Fatalf("empty quantile: (%v, %v), want (0, nil)", v, err)
		}
		// Count-like sketches still answer (pure noise) on empty data,
		// like NoisyCount.
		if _, err := NoisyFrequency(q, 0.5, keyOf, "k"); err != nil {
			t.Fatalf("empty frequency: %v", err)
		}
		if _, err := NoisyDistinctSketch(q, 0.5, keyOf); err != nil {
			t.Fatalf("empty distinct: %v", err)
		}
		// All three charged.
		if spent := root.Spent(); spent != 1.5 {
			t.Fatalf("spent %v, want 1.5", spent)
		}
	})
}

// TestQuantileDefaultSketchEps: passing 0 selects the documented
// default accuracy rather than failing validation.
func TestQuantileDefaultSketchEps(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	flows := randomFlows(rng, 1000)
	q, _ := NewQueryable(flows, 10, noise.NewSeededSource(1, 1))
	if _, err := NoisyQuantile(q, 0.5, 0.5, 0, func(f flowRec) float64 { return float64(f.Len) }); err != nil {
		t.Fatalf("sketchEps=0 (default): %v", err)
	}
}
