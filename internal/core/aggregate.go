package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dptrace/internal/noise"
	"dptrace/internal/obs"
)

// clamp restricts v to [-bound, bound].
func clamp(v, bound float64) float64 {
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}

// recoverAgg is the aggregation-boundary panic guard: deferred at the
// top of every Noisy* aggregation, it converts a panic — typically a
// bug in an analyst-supplied selector, or a *WorkerPanic re-raised by
// runWorkers — into an ErrInternal result instead of unwinding into
// the caller (and, in dpserver, killing the process). The ε-contract
// mirrors cancellation: the panic sites all lie after agent.Apply, so
// a recovered panic leaves any applied charge standing (conservative);
// a panic before Apply never charged. aggDone still fires so the
// telemetry records the failed aggregation.
func recoverAgg[V any](rec obs.Recorder, agg string, start time.Time, epsilon float64, v *V, err *error) {
	if r := recover(); r != nil {
		var zero V
		*v = zero
		*err = panicError(r)
		aggDone(rec, agg, start, epsilon, *err)
	}
}

// panicError wraps a recovered panic value as ErrInternal.
func panicError(r any) error {
	if wp, ok := r.(*WorkerPanic); ok {
		return fmt.Errorf("%w: %v", ErrInternal, wp.Value)
	}
	return fmt.Errorf("%w: %v", ErrInternal, r)
}

// NoisyCount returns the number of records perturbed with Laplace noise
// of scale 1/ε (standard deviation √2/ε, Table 1), charging ε —
// amplified by any accumulated sensitivity scaling — to the budget.
func (q *Queryable[T]) NoisyCount(epsilon float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "count", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "count", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "count", start, epsilon, err)
		return 0, err
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "count", start, epsilon, err)
		return 0, err
	}
	v = float64(len(q.records)) + noise.LaplaceForEpsilon(q.src, 1, epsilon)
	aggDone(q.rec, "count", start, epsilon, nil)
	return v, nil
}

// NoisyCountInt is NoisyCount with the geometric (discrete Laplace)
// mechanism, for analyses that need an integral count. The noise
// magnitude is essentially that of NoisyCount.
func (q *Queryable[T]) NoisyCountInt(epsilon float64) (v int64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "countint", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "countint", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "countint", start, epsilon, err)
		return 0, err
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "countint", start, epsilon, err)
		return 0, err
	}
	v = int64(len(q.records)) + noise.Geometric(q.src, 1, epsilon)
	aggDone(q.rec, "countint", start, epsilon, nil)
	return v, nil
}

// NoisySum sums f over the records after clamping each value to
// [-1, 1], then adds Laplace noise of scale 1/ε (std √2/ε, Table 1).
// The clamping is what bounds the sensitivity: without it one record
// could move the sum arbitrarily and no finite noise would suffice.
func NoisySum[T any](q *Queryable[T], epsilon float64, f func(T) float64) (float64, error) {
	return NoisySumScaled(q, epsilon, 1, f)
}

// NoisySumScaled is NoisySum with values clamped to [-bound, bound] and
// noise scaled to match: Laplace of scale bound/ε. It still charges ε;
// the wider clamp trades more noise for less truncation bias, a choice
// the analyst makes from public knowledge of the value range.
func NoisySumScaled[T any](q *Queryable[T], epsilon, bound float64, f func(T) float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "sum", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "sum", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "sum", start, epsilon, err)
		return 0, err
	}
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		aggDone(q.rec, "sum", start, epsilon, ErrInvalidEpsilon)
		return 0, ErrInvalidEpsilon
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "sum", start, epsilon, err)
		return 0, err
	}
	sum := 0.0
	for _, r := range q.records {
		sum += clamp(f(r), bound)
	}
	v = sum + noise.LaplaceForEpsilon(q.src, bound, epsilon)
	aggDone(q.rec, "sum", start, epsilon, nil)
	return v, nil
}

// NoisyAverage returns the mean of f over the records, clamped to
// [-1, 1], with noise of standard deviation ≈ √8/(εn) (Table 1): the
// mean of n clamped values moves by at most 2/n when one record
// changes, so the Laplace scale is 2/(εn). An empty dataset yields 0
// plus noise at the n=1 scale.
func NoisyAverage[T any](q *Queryable[T], epsilon float64, f func(T) float64) (float64, error) {
	return NoisyAverageScaled(q, epsilon, 1, f)
}

// NoisyAverageScaled is NoisyAverage with values clamped to
// [-bound, bound]: noise scale 2·bound/(εn), so the noise standard
// deviation is bound·√8/(εn). The analyst picks the bound from public
// knowledge of the value range (e.g. hop counts ≤ 32); it does not
// depend on the data.
func NoisyAverageScaled[T any](q *Queryable[T], epsilon, bound float64, f func(T) float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "average", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "average", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "average", start, epsilon, err)
		return 0, err
	}
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		aggDone(q.rec, "average", start, epsilon, ErrInvalidEpsilon)
		return 0, ErrInvalidEpsilon
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "average", start, epsilon, err)
		return 0, err
	}
	n := len(q.records)
	if n == 0 {
		v = noise.LaplaceForEpsilon(q.src, 2*bound, epsilon)
		aggDone(q.rec, "average", start, epsilon, nil)
		return v, nil
	}
	sum := 0.0
	for _, r := range q.records {
		sum += clamp(f(r), bound)
	}
	v = sum/float64(n) + noise.LaplaceForEpsilon(q.src, 2*bound/float64(n), epsilon)
	aggDone(q.rec, "average", start, epsilon, nil)
	return v, nil
}

// NoisyMedian selects a record value via the exponential mechanism with
// the rank-balance score -|#below - #above|: the returned value
// partitions the input into two sets whose sizes differ by roughly
// √2/ε (Table 1). The candidate set is the distinct values present in
// the data; the mechanism's randomization is what protects each
// record's presence.
func NoisyMedian[T any](q *Queryable[T], epsilon float64, f func(T) float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "median", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "median", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "median", start, epsilon, err)
		return 0, err
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "median", start, epsilon, err)
		return 0, err
	}
	if len(q.records) == 0 {
		aggDone(q.rec, "median", start, epsilon, nil)
		return 0, nil
	}
	values := make([]float64, len(q.records))
	for i, r := range q.records {
		values[i] = f(r)
	}
	sort.Float64s(values)
	// Distinct candidates with their rank ranges.
	type cand struct {
		value float64
		below int // strictly below
		above int // strictly above
	}
	cands := make([]cand, 0, len(values))
	i := 0
	for i < len(values) {
		j := i
		for j < len(values) && values[j] == values[i] {
			j++
		}
		cands = append(cands, cand{value: values[i], below: i, above: len(values) - j})
		i = j
	}
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = -math.Abs(float64(c.below - c.above))
	}
	// Moving one record changes each |below-above| by at most 1.
	idx := noise.Exponential(q.src, scores, 1, epsilon)
	aggDone(q.rec, "median", start, epsilon, nil)
	return cands[idx].value, nil
}

// NoisyOrderStatistic generalizes NoisyMedian to an arbitrary rank
// fraction in [0, 1] (0.5 recovers the median). Useful for the noisy
// quantiles that several trace analyses report.
func NoisyOrderStatistic[T any](q *Queryable[T], epsilon, fraction float64, f func(T) float64) (v float64, err error) {
	start := opStart(q.rec)
	defer recoverAgg(q.rec, "orderstat", start, epsilon, &v, &err)
	if cerr := q.aggCtxErr(); cerr != nil {
		aggDone(q.rec, "orderstat", start, epsilon, cerr)
		return 0, cerr
	}
	if err := validEpsilon(epsilon); err != nil {
		aggDone(q.rec, "orderstat", start, epsilon, err)
		return 0, err
	}
	if fraction < 0 || fraction > 1 || math.IsNaN(fraction) {
		aggDone(q.rec, "orderstat", start, epsilon, ErrInvalidEpsilon)
		return 0, ErrInvalidEpsilon
	}
	if err := q.agent.Apply(epsilon); err != nil {
		aggDone(q.rec, "orderstat", start, epsilon, err)
		return 0, err
	}
	if len(q.records) == 0 {
		aggDone(q.rec, "orderstat", start, epsilon, nil)
		return 0, nil
	}
	values := make([]float64, len(q.records))
	for i, r := range q.records {
		values[i] = f(r)
	}
	sort.Float64s(values)
	target := fraction * float64(len(values))
	type cand struct {
		value float64
		rank  float64
	}
	cands := make([]cand, 0, len(values))
	i := 0
	for i < len(values) {
		j := i
		for j < len(values) && values[j] == values[i] {
			j++
		}
		cands = append(cands, cand{value: values[i], rank: float64(i+j) / 2})
		i = j
	}
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = -math.Abs(c.rank - target)
	}
	idx := noise.Exponential(q.src, scores, 1, epsilon)
	aggDone(q.rec, "orderstat", start, epsilon, nil)
	return cands[idx].value, nil
}

func validEpsilon(epsilon float64) error {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return ErrInvalidEpsilon
	}
	return nil
}
