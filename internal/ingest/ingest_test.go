package ingest

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dptrace/internal/trace"
)

func testPackets(n int) []trace.Packet {
	ps := make([]trace.Packet, n)
	for i := range ps {
		ps[i] = trace.Packet{
			Time:  int64(i) * 1000,
			SrcIP: trace.MakeIPv4(10, 0, byte(i>>8), byte(i)),
			DstIP: trace.MakeIPv4(10, 1, 0, 1),
			Proto: 6, Len: 100,
		}
	}
	return ps
}

func TestPipelineAppliesBatches(t *testing.T) {
	p := New(Limits{})
	defer p.Close()

	var mu sync.Mutex
	var store []trace.Packet

	body := trace.MarshalPacketsNDJSON(testPackets(50))
	size := int64(len(body))
	if err := p.Reserve(size); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	n, err := p.Submit(&Job{
		Kind: KindPacket, ContentType: ContentTypeNDJSON, Data: body,
		Apply: func(d Decoded) error {
			mu.Lock()
			store = append(store, d.Packets...)
			mu.Unlock()
			return nil
		},
	}, size)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if n != 50 || len(store) != 50 {
		t.Fatalf("expected 50 records applied, got n=%d len=%d", n, len(store))
	}
	st := p.Stats()
	if st.AppliedBatches != 1 || st.AppliedRecords != 50 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BytesInFlight != 0 || st.BatchesInFlight != 0 {
		t.Fatalf("reservation not released: %+v", st)
	}
}

func TestPipelineDPTRDecode(t *testing.T) {
	p := New(Limits{})
	defer p.Close()

	var buf bytes.Buffer
	if err := trace.WritePackets(&buf, testPackets(7)); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	size := int64(len(body))
	if err := p.Reserve(size); err != nil {
		t.Fatal(err)
	}
	var got int
	n, err := p.Submit(&Job{
		Kind: KindPacket, ContentType: ContentTypeDPTR, Data: body,
		Apply: func(d Decoded) error { got = len(d.Packets); return nil },
	}, size)
	if err != nil || n != 7 || got != 7 {
		t.Fatalf("n=%d got=%d err=%v", n, got, err)
	}
}

func TestReserveShedsAtWatermark(t *testing.T) {
	p := New(Limits{MaxBytesInFlight: 1000, MaxBatchesInFlight: 4})
	defer p.Close()

	if err := p.Reserve(600); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	if err := p.Reserve(600); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	// The refused reservation must have been rolled back.
	if err := p.Reserve(400); err != nil {
		t.Fatalf("reserve after shed: %v", err)
	}
	st := p.Stats()
	if st.ShedBatches != 1 || st.BytesInFlight != 1000 {
		t.Fatalf("stats: %+v", st)
	}
	p.Unreserve(600)
	p.Unreserve(400)
}

func TestReserveShedsAtBatchWatermark(t *testing.T) {
	p := New(Limits{MaxBatchesInFlight: 2})
	defer p.Close()
	if err := p.Reserve(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	p.Unreserve(1)
	p.Unreserve(1)
}

func TestReserveRejectsOversizeBatch(t *testing.T) {
	p := New(Limits{MaxBatchBytes: 100})
	defer p.Close()
	if err := p.Reserve(101); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	if st := p.Stats(); st.RejectedBatches != 1 || st.BytesInFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPipelineDecodeErrorFailsBatchAndReleases(t *testing.T) {
	p := New(Limits{})
	defer p.Close()
	body := []byte("not ndjson at all")
	size := int64(len(body))
	if err := p.Reserve(size); err != nil {
		t.Fatal(err)
	}
	_, err := p.Submit(&Job{
		Kind: KindPacket, ContentType: ContentTypeNDJSON, Data: body,
		Apply: func(Decoded) error { t.Error("apply ran on decode error"); return nil },
	}, size)
	if err == nil {
		t.Fatal("expected decode error")
	}
	st := p.Stats()
	if st.FailedBatches != 1 || st.BytesInFlight != 0 || st.BatchesInFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPipelineApplyErrorPropagates(t *testing.T) {
	p := New(Limits{})
	defer p.Close()
	body := trace.MarshalLinkSamplesNDJSON([]trace.LinkSample{{Link: 1, Bin: 2}})
	size := int64(len(body))
	if err := p.Reserve(size); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err := p.Submit(&Job{
		Kind: KindLink, ContentType: ContentTypeNDJSON, Data: body,
		Apply: func(Decoded) error { return boom },
	}, size)
	if !errors.Is(err, boom) {
		t.Fatalf("expected apply error, got %v", err)
	}
}

// TestPipelineBoundedUnderFlood hammers admission from many goroutines
// and asserts the exact invariants the watermark discipline promises:
// in-flight bytes never observed above the limit, and every record of
// every ACKed batch is applied exactly once.
func TestPipelineBoundedUnderFlood(t *testing.T) {
	const limitBytes = 4096
	p := New(Limits{MaxBytesInFlight: limitBytes, MaxBatchesInFlight: 8, DecodeWorkers: 2})
	defer p.Close()

	var applied atomic.Int64
	var acked atomic.Int64
	var wg sync.WaitGroup
	body := trace.MarshalLinkSamplesNDJSON([]trace.LinkSample{{Link: 1, Bin: 1}, {Link: 2, Bin: 2}})
	size := int64(len(body))

	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := p.Reserve(size); err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected reserve error: %v", err)
					}
					continue
				}
				if got := p.Stats().BytesInFlight; got > limitBytes {
					t.Errorf("bytes in flight %d > limit %d", got, limitBytes)
				}
				n, err := p.Submit(&Job{
					Kind: KindLink, ContentType: ContentTypeNDJSON, Data: body,
					Apply: func(d Decoded) error {
						applied.Add(int64(len(d.Links)))
						return nil
					},
				}, size)
				if err != nil {
					t.Errorf("submit: %v", err)
					continue
				}
				acked.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	if applied.Load() != acked.Load() {
		t.Fatalf("applied %d records but acked %d", applied.Load(), acked.Load())
	}
	st := p.Stats()
	if st.PeakBytesInFlight > limitBytes {
		t.Fatalf("peak bytes %d exceeded limit %d", st.PeakBytesInFlight, limitBytes)
	}
	if st.BytesInFlight != 0 || st.BatchesInFlight != 0 {
		t.Fatalf("leaked reservations: %+v", st)
	}
	if st.AppliedBatches+st.FailedBatches != st.AdmittedBatches {
		t.Fatalf("admitted %d != applied %d + failed %d", st.AdmittedBatches, st.AppliedBatches, st.FailedBatches)
	}
}

func TestCloseDrainsAndRefuses(t *testing.T) {
	p := New(Limits{})
	body := trace.MarshalLinkSamplesNDJSON([]trace.LinkSample{{Link: 1, Bin: 1}})
	size := int64(len(body))

	var wg sync.WaitGroup
	var applied atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Reserve(size); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = p.Submit(&Job{
				Kind: KindLink, ContentType: ContentTypeNDJSON, Data: body,
				Apply: func(d Decoded) error { applied.Add(1); return nil },
			}, size)
		}()
	}
	wg.Wait() // all submitted jobs answered before we close
	p.Close()
	if applied.Load() != 8 {
		t.Fatalf("expected 8 applied before close, got %d", applied.Load())
	}
	if err := p.Reserve(size); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed after close, got %v", err)
	}
	p.Close() // idempotent
}

func TestDecodeUnsupportedContentType(t *testing.T) {
	if _, err := Decode(KindPacket, "text/plain", nil); err == nil {
		t.Fatal("expected error for unsupported content type")
	}
	if _, err := Decode(Kind(99), ContentTypeNDJSON, nil); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}
