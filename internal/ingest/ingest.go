// Package ingest is the bounded-buffer live-ingestion pipeline behind
// POST /v1/ingest/{dataset}: receiver → batched decoder → dataset
// appender, modeled on the receiver/writer split of production trace
// agents. Its one structural guarantee is that memory is bounded by
// configuration, not by offered load: every batch must reserve its
// bytes and a batch slot against hard watermarks BEFORE its body is
// read, and reservations are only released when the batch has been
// fully applied (or refused). When the watermarks are hit the caller
// gets ErrOverloaded synchronously — the HTTP layer turns that into
// 429 + Retry-After — so overload sheds at the edge instead of
// queueing toward OOM.
//
// Stages:
//
//	receiver (HTTP handler)  — admission: Reserve(bytes) or shed
//	decode workers           — Content-Type → typed records, CPU-parallel
//	appender (single)        — applies batches serially via the Apply
//	                           callback, which takes the dataset write
//	                           lock; serial apply keeps lock hold times
//	                           short and makes applied-batch ordering
//	                           deterministic per pipeline
//
// The pipeline knows nothing about datasets or privacy budgets: the
// Apply callback owns that. Snapshot consistency for concurrent
// queries is the callback's contract (see dpserver), not this
// package's.
package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dptrace/internal/trace"
)

// ErrOverloaded is returned by Reserve when admitting the batch would
// exceed a watermark. Callers translate it to 429.
var ErrOverloaded = errors.New("ingest: pipeline overloaded")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrTooLarge is returned by Reserve for a single batch bigger than
// MaxBatchBytes — retrying the same batch cannot succeed, so it is
// distinct from ErrOverloaded (413 vs 429 at the HTTP layer).
var ErrTooLarge = errors.New("ingest: batch exceeds size limit")

// Kind names which record stream a batch belongs to.
type Kind uint8

const (
	KindPacket Kind = iota + 1
	KindLink
	KindHop
)

// Content types the decoder stage understands (mirrored in
// internal/dpserver/api).
const (
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeDPTR   = "application/x-dptr"
)

// Limits are the pipeline's admission watermarks and worker shape.
// Zero values take the defaults below.
type Limits struct {
	// MaxBatchBytes caps one batch body; larger batches are refused
	// with ErrTooLarge. Default 8 MiB.
	MaxBatchBytes int64
	// MaxBytesInFlight caps the sum of admitted-but-unapplied batch
	// bytes. Default 64 MiB.
	MaxBytesInFlight int64
	// MaxBatchesInFlight caps the number of admitted-but-unapplied
	// batches. Default 256.
	MaxBatchesInFlight int64
	// DecodeWorkers is the decoder-stage parallelism. Default 2.
	DecodeWorkers int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBatchBytes <= 0 {
		l.MaxBatchBytes = 8 << 20
	}
	if l.MaxBytesInFlight <= 0 {
		l.MaxBytesInFlight = 64 << 20
	}
	if l.MaxBatchesInFlight <= 0 {
		l.MaxBatchesInFlight = 256
	}
	if l.DecodeWorkers <= 0 {
		l.DecodeWorkers = 2
	}
	return l
}

// Decoded is one batch after the decoder stage: exactly one of the
// slices is non-nil, matching the job's Kind.
type Decoded struct {
	Packets []trace.Packet
	Links   []trace.LinkSample
	Hops    []trace.HopRecord
}

// Records is the record count of whichever stream is populated.
func (d Decoded) Records() int {
	return len(d.Packets) + len(d.Links) + len(d.Hops)
}

// Job is one admitted batch travelling the pipeline.
type Job struct {
	Kind        Kind
	ContentType string
	Data        []byte
	// Apply is run by the single appender goroutine once the batch is
	// decoded. It must be short: it holds whatever lock the dataset
	// store needs.
	Apply func(Decoded) error

	reservation int64
	done        chan error
}

// Stats is a snapshot of pipeline counters, all monotonic except the
// in-flight gauges.
type Stats struct {
	AdmittedBatches uint64
	AdmittedBytes   uint64
	ShedBatches     uint64 // refused with ErrOverloaded
	RejectedBatches uint64 // refused with ErrTooLarge
	AppliedBatches  uint64
	AppliedRecords  uint64
	FailedBatches   uint64 // decode or apply error

	BytesInFlight   int64
	BatchesInFlight int64
	// High watermarks actually observed, for sizing the limits.
	PeakBytesInFlight   int64
	PeakBatchesInFlight int64
}

// Pipeline is the bounded ingestion pipeline. Construct with New,
// feed with Reserve+Submit, stop with Close.
type Pipeline struct {
	limits Limits

	bytesInFlight   atomic.Int64
	batchesInFlight atomic.Int64
	peakBytes       atomic.Int64
	peakBatches     atomic.Int64

	admittedBatches atomic.Uint64
	admittedBytes   atomic.Uint64
	shedBatches     atomic.Uint64
	rejectedBatches atomic.Uint64
	appliedBatches  atomic.Uint64
	appliedRecords  atomic.Uint64
	failedBatches   atomic.Uint64

	decodeCh chan *Job
	applyCh  chan appliedJob

	// closeMu serializes channel sends against close: Submit sends
	// under RLock, Close flips closed under Lock, so once Close holds
	// the write lock no sender is mid-send and later senders observe
	// closed. Sends cannot block under the lock because admission
	// bounds in-flight batches to the channel capacity.
	closeMu   sync.RWMutex
	closeOnce sync.Once
	closed    atomic.Bool
	decodeWg  sync.WaitGroup
	applyWg   sync.WaitGroup
}

type appliedJob struct {
	job     *Job
	decoded Decoded
	err     error
}

// New starts the pipeline's decode workers and appender.
func New(limits Limits) *Pipeline {
	limits = limits.withDefaults()
	p := &Pipeline{
		limits: limits,
		// Admission bounds batches in flight, so a channel with that
		// capacity never blocks an admitted Submit.
		decodeCh: make(chan *Job, limits.MaxBatchesInFlight),
		applyCh:  make(chan appliedJob, limits.MaxBatchesInFlight),
	}
	for i := 0; i < limits.DecodeWorkers; i++ {
		p.decodeWg.Add(1)
		go p.decodeWorker()
	}
	p.applyWg.Add(1)
	go p.appender()
	return p
}

// Limits reports the configured (defaulted) watermarks.
func (p *Pipeline) Limits() Limits { return p.limits }

// Reserve admits size bytes and one batch slot, or refuses. On
// success the reservation is held until the submitted job completes;
// a caller that reserves but never submits must call Unreserve.
//
// The add-then-check-then-subtract discipline makes the bound exact
// under concurrency: the counters may transiently overshoot inside
// this function, but a batch only keeps its reservation if the
// post-add totals are within the watermarks, so admitted bytes never
// exceed MaxBytesInFlight.
func (p *Pipeline) Reserve(size int64) error {
	if size > p.limits.MaxBatchBytes {
		p.rejectedBatches.Add(1)
		return fmt.Errorf("%w: %d bytes > limit %d", ErrTooLarge, size, p.limits.MaxBatchBytes)
	}
	if p.closed.Load() {
		return ErrClosed
	}
	b := p.bytesInFlight.Add(size)
	n := p.batchesInFlight.Add(1)
	if b > p.limits.MaxBytesInFlight || n > p.limits.MaxBatchesInFlight {
		p.bytesInFlight.Add(-size)
		p.batchesInFlight.Add(-1)
		p.shedBatches.Add(1)
		return ErrOverloaded
	}
	atomicMax(&p.peakBytes, b)
	atomicMax(&p.peakBatches, n)
	p.admittedBatches.Add(1)
	p.admittedBytes.Add(uint64(size))
	return nil
}

// Unreserve returns a reservation that will not be submitted (e.g.
// the body read failed after admission).
func (p *Pipeline) Unreserve(size int64) {
	p.bytesInFlight.Add(-size)
	p.batchesInFlight.Add(-1)
	// The batch never travelled, so back out its admission counters'
	// effect on shed/applied accounting by counting it failed.
	p.failedBatches.Add(1)
}

// Submit sends an admitted job through decode and apply, blocking
// until the batch is fully applied (or fails). size must be the value
// passed to the matching Reserve. Returns the number of records
// applied.
func (p *Pipeline) Submit(job *Job, size int64) (int, error) {
	job.reservation = size
	job.done = make(chan error, 1)
	recs := make(chan int, 1)
	// Thread the record count back alongside the error: wrap Apply so
	// the appender stays ignorant of the response shape.
	userApply := job.Apply
	job.Apply = func(d Decoded) error {
		if err := userApply(d); err != nil {
			return err
		}
		recs <- d.Records()
		return nil
	}
	p.closeMu.RLock()
	if p.closed.Load() {
		p.closeMu.RUnlock()
		p.Unreserve(size)
		return 0, ErrClosed
	}
	p.decodeCh <- job
	p.closeMu.RUnlock()
	if err := <-job.done; err != nil {
		return 0, err
	}
	return <-recs, nil
}

// decodeWorker turns batch bytes into typed records.
func (p *Pipeline) decodeWorker() {
	defer p.decodeWg.Done()
	for job := range p.decodeCh {
		d, err := Decode(job.Kind, job.ContentType, job.Data)
		job.Data = nil // decoded; let the raw bytes go before apply queues
		p.applyCh <- appliedJob{job: job, decoded: d, err: err}
	}
}

// appender applies decoded batches serially and releases
// reservations. Apply callbacks run on this one goroutine.
func (p *Pipeline) appender() {
	defer p.applyWg.Done()
	for aj := range p.applyCh {
		err := aj.err
		if err == nil {
			err = aj.job.Apply(aj.decoded)
		}
		if err != nil {
			p.failedBatches.Add(1)
		} else {
			p.appliedBatches.Add(1)
			p.appliedRecords.Add(uint64(aj.decoded.Records()))
		}
		p.bytesInFlight.Add(-aj.job.reservation)
		p.batchesInFlight.Add(-1)
		aj.job.done <- err
	}
}

// Close stops intake and drains in-flight batches: every job already
// submitted is decoded, applied, and answered before Close returns.
// Safe to call more than once; Reserve/Submit afterwards return
// ErrClosed.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.closeMu.Lock()
		p.closed.Store(true)
		p.closeMu.Unlock()
		close(p.decodeCh)
		p.decodeWg.Wait()
		close(p.applyCh)
		p.applyWg.Wait()
	})
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		AdmittedBatches:     p.admittedBatches.Load(),
		AdmittedBytes:       p.admittedBytes.Load(),
		ShedBatches:         p.shedBatches.Load(),
		RejectedBatches:     p.rejectedBatches.Load(),
		AppliedBatches:      p.appliedBatches.Load(),
		AppliedRecords:      p.appliedRecords.Load(),
		FailedBatches:       p.failedBatches.Load(),
		BytesInFlight:       p.bytesInFlight.Load(),
		BatchesInFlight:     p.batchesInFlight.Load(),
		PeakBytesInFlight:   p.peakBytes.Load(),
		PeakBatchesInFlight: p.peakBatches.Load(),
	}
}

// Decode turns one batch body into typed records. Exposed so tests
// and offline tools can reuse the exact wire decoding the pipeline
// applies.
func Decode(kind Kind, contentType string, data []byte) (Decoded, error) {
	switch contentType {
	case ContentTypeNDJSON:
		switch kind {
		case KindPacket:
			ps, err := trace.ParsePacketsNDJSON(data)
			return Decoded{Packets: ps}, err
		case KindLink:
			ls, err := trace.ParseLinkSamplesNDJSON(data)
			return Decoded{Links: ls}, err
		case KindHop:
			hs, err := trace.ParseHopRecordsNDJSON(data)
			return Decoded{Hops: hs}, err
		}
	case ContentTypeDPTR:
		r := bytes.NewReader(data)
		switch kind {
		case KindPacket:
			ps, err := trace.ReadPackets(r)
			return Decoded{Packets: ps}, err
		case KindLink:
			ls, err := trace.ReadLinkSamples(r)
			return Decoded{Links: ls}, err
		case KindHop:
			hs, err := trace.ReadHopRecords(r)
			return Decoded{Hops: hs}, err
		}
	default:
		return Decoded{}, fmt.Errorf("ingest: unsupported content type %q", contentType)
	}
	return Decoded{}, fmt.Errorf("ingest: unknown kind %d", kind)
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
