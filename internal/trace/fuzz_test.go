package trace

import (
	"bytes"
	"testing"
)

// FuzzReadPackets hardens the trace reader against corrupt or
// adversarial inputs: it must never panic or over-allocate, only
// return errors.
func FuzzReadPackets(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	if err := WritePackets(&buf, []Packet{
		{Time: 1, SrcIP: 2, DstIP: 3, SrcPort: 4, DstPort: 5,
			Proto: ProtoTCP, Flags: FlagSYN, Seq: 6, Ack: 7, Len: 40,
			Payload: []byte("hello")},
	}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("DPTR"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[20] = 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, err := ReadPackets(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful parses must round-trip identically.
		var out bytes.Buffer
		if err := WritePackets(&out, pkts); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadPackets(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(pkts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pkts), len(again))
		}
	})
}

// FuzzReadLinkSamples and FuzzReadHopRecords cover the fixed-layout
// readers.
func FuzzReadLinkSamples(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteLinkSamples(&buf, []LinkSample{{Link: 1, Bin: 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadLinkSamples(bytes.NewReader(data))
	})
}

func FuzzReadHopRecords(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteHopRecords(&buf, []HopRecord{{Monitor: 1, IP: 2, Hops: 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadHopRecords(bytes.NewReader(data))
	})
}
