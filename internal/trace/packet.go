// Package trace defines the record types that the paper's three
// datasets consist of — packets (Hotspot), de-aggregated link samples
// (IspTraffic), and hop-count observations (IPscatter) — together with
// a compact binary on-disk format for them.
//
// Records are plain values: the privacy machinery lives entirely in
// internal/core, which wraps slices of these records, so the types here
// deliberately know nothing about differential privacy.
package trace

import (
	"fmt"
	"net/netip"
)

// IPv4 is an IPv4 address as a big-endian 32-bit integer. Using a
// fixed-size integer keeps records comparable (usable as map keys and
// PINQ grouping keys) and cheap to serialize.
type IPv4 uint32

// MakeIPv4 builds an address from its four octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Addr converts to a netip.Addr for interoperability with the standard
// library's address handling.
func (ip IPv4) Addr() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

// Protocol numbers, per IANA.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoICMP = 1
)

// TCPFlags is the TCP flag byte; only the bits the analyses consult
// are named.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Has reports whether all bits in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// Packet is one record of a packet-level trace: the Hotspot dataset's
// <timestamp, packet> rows. Timestamps are microseconds from the start
// of the trace; integral microseconds keep every analysis deterministic
// and serialization exact.
type Packet struct {
	Time    int64 // microseconds since trace start
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Flags   TCPFlags
	Seq     uint32 // TCP sequence number
	Ack     uint32 // TCP acknowledgment number
	Len     uint16 // total packet length in bytes
	Payload []byte // application payload (may be nil)
}

// FlowKey is the standard 5-tuple the paper's flow-level analyses key
// on.
type FlowKey struct {
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Flow returns the packet's 5-tuple.
func (p *Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the 5-tuple of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// String renders "src:port > dst:port/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d > %s:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// IsSYN reports a pure connection-request segment (SYN without ACK).
func (p *Packet) IsSYN() bool {
	return p.Proto == ProtoTCP && p.Flags.Has(FlagSYN) && !p.Flags.Has(FlagACK)
}

// IsSYNACK reports the second handshake segment.
func (p *Packet) IsSYNACK() bool {
	return p.Proto == ProtoTCP && p.Flags.Has(FlagSYN|FlagACK)
}

// LinkSample is one record of the de-aggregated IspTraffic dataset:
// a synthetic 1500-byte packet observed on a link in a time bin. The
// paper's ISP provided 15-minute aggregate volumes which it
// de-aggregated into such records; we generate them directly.
type LinkSample struct {
	Link int32 // link identifier, 0-based
	Bin  int32 // 15-minute time bin, 0-based
}

// HopRecord is one record of the IPscatter dataset: the TTL-derived
// hop distance from one IP address to one monitor.
type HopRecord struct {
	Monitor int32
	IP      IPv4
	Hops    int32
}
