package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseTcpdump reads the textual output of `tcpdump -tt -n` (epoch
// timestamps, no name resolution) and converts each parsed line into a
// Packet — the on-ramp for running the private analyses over real
// captures. Recognized shapes:
//
//	1616175417.123456 IP 10.0.0.5.52344 > 93.184.216.34.80: Flags [S], seq 1000, win 64240, length 0
//	1616175417.150000 IP 93.184.216.34.80 > 10.0.0.5.52344: Flags [S.], seq 500, ack 1001, win 65535, length 0
//	1616175417.150100 IP 10.0.0.5.52344 > 93.184.216.34.80: Flags [P.], seq 1001:1101, ack 501, win 501, length 100
//	1616175417.200000 IP 10.0.0.1.53 > 10.0.0.2.5353: UDP, length 64
//
// Timestamps become microseconds relative to the first parsed packet.
// Lines that do not parse (continuation lines, truncated packets,
// non-IPv4 traffic) are skipped and counted; the caller decides
// whether the skip count is acceptable. Seq ranges ("1001:1101") keep
// their first number; the payload length after "length" becomes Len
// plus a nominal 40-byte header (tcpdump reports payload length for
// TCP), capped at 65535.
func ParseTcpdump(r io.Reader) (packets []Packet, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var base int64 = -1
	for sc.Scan() {
		line := sc.Text()
		p, ok := parseTcpdumpLine(line)
		if !ok {
			if strings.TrimSpace(line) != "" {
				skipped++
			}
			continue
		}
		if base < 0 {
			base = p.Time
		}
		p.Time -= base
		packets = append(packets, p)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: reading tcpdump output: %w", err)
	}
	return packets, skipped, nil
}

// parseTcpdumpLine parses one line; ok is false for unrecognized
// shapes.
func parseTcpdumpLine(line string) (Packet, bool) {
	var p Packet
	fields := strings.Fields(line)
	if len(fields) < 5 || fields[1] != "IP" {
		return p, false
	}
	ts, err := parseEpochMicros(fields[0])
	if err != nil {
		return p, false
	}
	p.Time = ts
	srcIP, srcPort, ok := splitHostPort(fields[2])
	if !ok {
		return p, false
	}
	if fields[3] != ">" {
		return p, false
	}
	dstIP, dstPort, ok := splitHostPort(strings.TrimSuffix(fields[4], ":"))
	if !ok {
		return p, false
	}
	p.SrcIP, p.SrcPort = srcIP, srcPort
	p.DstIP, p.DstPort = dstIP, dstPort

	rest := strings.Join(fields[5:], " ")
	switch {
	case strings.HasPrefix(rest, "Flags ["):
		p.Proto = ProtoTCP
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return p, false
		}
		for _, c := range rest[len("Flags ["):end] {
			switch c {
			case 'S':
				p.Flags |= FlagSYN
			case 'F':
				p.Flags |= FlagFIN
			case 'R':
				p.Flags |= FlagRST
			case 'P':
				p.Flags |= FlagPSH
			case '.':
				p.Flags |= FlagACK
			}
		}
		if v, ok := numberAfter(rest, "seq "); ok {
			p.Seq = uint32(v)
		}
		if v, ok := numberAfter(rest, "ack "); ok {
			p.Ack = uint32(v)
		}
	case strings.HasPrefix(rest, "UDP,"):
		p.Proto = ProtoUDP
	case strings.HasPrefix(rest, "ICMP"):
		p.Proto = ProtoICMP
	default:
		return p, false
	}
	if v, ok := numberAfter(rest, "length "); ok {
		ln := v + 40 // tcpdump reports payload length; add a nominal header
		if ln > 65535 {
			ln = 65535
		}
		p.Len = uint16(ln)
	} else {
		return p, false
	}
	return p, true
}

// parseEpochMicros parses "1616175417.123456" into microseconds.
func parseEpochMicros(s string) (int64, error) {
	sec, frac, _ := strings.Cut(s, ".")
	secs, err := strconv.ParseInt(sec, 10, 64)
	if err != nil {
		return 0, err
	}
	us := int64(0)
	if frac != "" {
		// Right-pad/truncate the fraction to 6 digits.
		if len(frac) > 6 {
			frac = frac[:6]
		}
		for len(frac) < 6 {
			frac += "0"
		}
		us, err = strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, err
		}
	}
	return secs*1_000_000 + us, nil
}

// splitHostPort parses "a.b.c.d.port" into an IPv4 and a port.
func splitHostPort(s string) (IPv4, uint16, bool) {
	lastDot := strings.LastIndexByte(s, '.')
	if lastDot < 0 {
		return 0, 0, false
	}
	port, err := strconv.ParseUint(s[lastDot+1:], 10, 16)
	if err != nil {
		return 0, 0, false
	}
	var octets [4]int
	parts := strings.Split(s[:lastDot], ".")
	if len(parts) != 4 {
		return 0, 0, false
	}
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return 0, 0, false
		}
		octets[i] = v
	}
	return MakeIPv4(byte(octets[0]), byte(octets[1]), byte(octets[2]), byte(octets[3])),
		uint16(port), true
}

// numberAfter extracts the integer following the first occurrence of
// marker (stopping at the first non-digit; "seq 1001:1101" yields
// 1001).
func numberAfter(s, marker string) (int64, bool) {
	i := strings.Index(s, marker)
	if i < 0 {
		return 0, false
	}
	j := i + len(marker)
	k := j
	for k < len(s) && s[k] >= '0' && s[k] <= '9' {
		k++
	}
	if k == j {
		return 0, false
	}
	v, err := strconv.ParseInt(s[j:k], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
