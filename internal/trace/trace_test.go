package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestIPv4String(t *testing.T) {
	ip := MakeIPv4(192, 168, 1, 200)
	if got := ip.String(); got != "192.168.1.200" {
		t.Fatalf("String = %q", got)
	}
	if got := ip.Addr().String(); got != "192.168.1.200" {
		t.Fatalf("Addr = %q", got)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 100, DstPort: 200, Proto: ProtoTCP}
	r := k.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 200 || r.DstPort != 100 {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should be identity")
	}
}

func TestTCPFlagHelpers(t *testing.T) {
	syn := Packet{Proto: ProtoTCP, Flags: FlagSYN}
	synack := Packet{Proto: ProtoTCP, Flags: FlagSYN | FlagACK}
	data := Packet{Proto: ProtoTCP, Flags: FlagACK}
	udp := Packet{Proto: ProtoUDP, Flags: FlagSYN}
	if !syn.IsSYN() || syn.IsSYNACK() {
		t.Error("SYN misclassified")
	}
	if synack.IsSYN() || !synack.IsSYNACK() {
		t.Error("SYN-ACK misclassified")
	}
	if data.IsSYN() || data.IsSYNACK() {
		t.Error("data packet misclassified")
	}
	if udp.IsSYN() {
		t.Error("UDP packet classified as SYN")
	}
}

func samplePackets() []Packet {
	return []Packet{
		{Time: 0, SrcIP: MakeIPv4(10, 0, 0, 1), DstIP: MakeIPv4(10, 0, 0, 2),
			SrcPort: 12345, DstPort: 80, Proto: ProtoTCP, Flags: FlagSYN,
			Seq: 1000, Len: 40},
		{Time: 1500, SrcIP: MakeIPv4(10, 0, 0, 2), DstIP: MakeIPv4(10, 0, 0, 1),
			SrcPort: 80, DstPort: 12345, Proto: ProtoTCP, Flags: FlagSYN | FlagACK,
			Seq: 555, Ack: 1001, Len: 40},
		{Time: 3000, SrcIP: MakeIPv4(10, 0, 0, 1), DstIP: MakeIPv4(10, 0, 0, 2),
			SrcPort: 12345, DstPort: 80, Proto: ProtoTCP, Flags: FlagACK | FlagPSH,
			Seq: 1001, Ack: 556, Len: 1492, Payload: []byte("GET / HTTP/1.1\r\n")},
		{Time: 4000, SrcIP: MakeIPv4(8, 8, 8, 8), DstIP: MakeIPv4(10, 0, 0, 1),
			SrcPort: 53, DstPort: 5353, Proto: ProtoUDP, Len: 120, Payload: []byte{0, 1, 2}},
	}
}

func TestPacketRoundTrip(t *testing.T) {
	want := samplePackets()
	var buf bytes.Buffer
	if err := WritePackets(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPackets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Time != g.Time || w.SrcIP != g.SrcIP || w.DstIP != g.DstIP ||
			w.SrcPort != g.SrcPort || w.DstPort != g.DstPort ||
			w.Proto != g.Proto || w.Flags != g.Flags ||
			w.Seq != g.Seq || w.Ack != g.Ack || w.Len != g.Len ||
			!bytes.Equal(w.Payload, g.Payload) {
			t.Fatalf("packet %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestEmptyPacketTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePackets(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPackets(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestLinkSampleRoundTrip(t *testing.T) {
	want := []LinkSample{{Link: 0, Bin: 0}, {Link: 399, Bin: 671}, {Link: 7, Bin: 100}}
	var buf bytes.Buffer
	if err := WriteLinkSamples(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLinkSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHopRecordRoundTrip(t *testing.T) {
	want := []HopRecord{
		{Monitor: 0, IP: MakeIPv4(1, 2, 3, 4), Hops: 12},
		{Monitor: 37, IP: MakeIPv4(200, 201, 202, 203), Hops: 3},
	}
	var buf bytes.Buffer
	if err := WriteHopRecords(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHopRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadPackets(bytes.NewReader([]byte("NOPE0123456789ab"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestWrongKindRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinkSamples(&buf, []LinkSample{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPackets(&buf); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("got %v, want ErrWrongKind", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePackets(&buf, samplePackets()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadPackets(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := ReadPackets(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestCorruptPayloadLengthRejected(t *testing.T) {
	// Craft a header claiming one packet, then a fixed part and an
	// absurd varint payload length.
	var buf bytes.Buffer
	if err := WritePackets(&buf, []Packet{{Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The varint length byte sits right after header (16) + fixed (32).
	raw[16+32] = 0xFF
	raw = append(raw[:16+32+1], 0xFF, 0xFF, 0x7F) // ~34M payload claim
	if _, err := ReadPackets(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

// Property: arbitrary packets survive a round trip bit-exactly.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(tm int64, src, dst uint32, sp, dp uint16, proto, flags uint8, seq, ack uint32, ln uint16, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		p := Packet{Time: tm, SrcIP: IPv4(src), DstIP: IPv4(dst), SrcPort: sp,
			DstPort: dp, Proto: proto, Flags: TCPFlags(flags), Seq: seq, Ack: ack,
			Len: ln, Payload: payload}
		var buf bytes.Buffer
		if err := WritePackets(&buf, []Packet{p}); err != nil {
			return false
		}
		got, err := ReadPackets(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.Time == p.Time && g.SrcIP == p.SrcIP && g.DstIP == p.DstIP &&
			g.SrcPort == p.SrcPort && g.DstPort == p.DstPort && g.Proto == p.Proto &&
			g.Flags == p.Flags && g.Seq == p.Seq && g.Ack == p.Ack && g.Len == p.Len &&
			bytes.Equal(g.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Ensure readers don't over-read past the declared records.
func TestReaderStopsAtCount(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePackets(&buf, samplePackets()[:1]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("trailing garbage")
	got, err := ReadPackets(io.LimitReader(&buf, int64(buf.Len())))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d packets, err %v", len(got), err)
	}
}
