package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-disk format is a little-endian binary container:
//
//	magic   [4]byte "DPTR"
//	version uint16  (currently 1)
//	kind    uint16  (KindPacket | KindLink | KindHop)
//	count   uint64  number of records
//	records ...     fixed layout per kind; packets carry a
//	                varint-prefixed payload
//
// The format is deliberately trivial — the point of this repository is
// the privacy machinery, not a pcap replacement — but it is versioned
// and self-describing enough that the CLI tools can refuse mismatched
// inputs with a clear error.

// Record-stream kinds.
const (
	KindPacket uint16 = 1
	KindLink   uint16 = 2
	KindHop    uint16 = 3
)

const (
	formatVersion uint16 = 1
	// maxPayload bounds per-packet payloads, protecting readers from
	// corrupt length prefixes.
	maxPayload = 1 << 16
)

var magic = [4]byte{'D', 'P', 'T', 'R'}

// maxPrealloc caps slice pre-allocation from the (untrusted) header
// count: a forged count must not let a tiny file allocate gigabytes.
// Reads beyond this grow normally via append.
const maxPrealloc = 1 << 20

// Errors returned by the readers.
var (
	ErrBadMagic   = errors.New("trace: bad magic (not a DPTR file)")
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrWrongKind  = errors.New("trace: file holds a different record kind")
)

func writeHeader(w io.Writer, kind uint16, count uint64) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], kind)
	binary.LittleEndian.PutUint64(hdr[4:12], count)
	_, err := w.Write(hdr[:])
	return err
}

func readHeader(r io.Reader, wantKind uint16) (count uint64, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return 0, ErrBadMagic
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != formatVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if k := binary.LittleEndian.Uint16(hdr[2:4]); k != wantKind {
		return 0, fmt.Errorf("%w: got kind %d, want %d", ErrWrongKind, k, wantKind)
	}
	return binary.LittleEndian.Uint64(hdr[4:12]), nil
}

// WritePackets writes a packet trace.
func WritePackets(w io.Writer, packets []Packet) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeHeader(bw, KindPacket, uint64(len(packets))); err != nil {
		return err
	}
	var fixed [31]byte
	var lenBuf [binary.MaxVarintLen64]byte
	for i := range packets {
		p := &packets[i]
		binary.LittleEndian.PutUint64(fixed[0:8], uint64(p.Time))
		binary.LittleEndian.PutUint32(fixed[8:12], uint32(p.SrcIP))
		binary.LittleEndian.PutUint32(fixed[12:16], uint32(p.DstIP))
		binary.LittleEndian.PutUint16(fixed[16:18], p.SrcPort)
		binary.LittleEndian.PutUint16(fixed[18:20], p.DstPort)
		fixed[20] = p.Proto
		fixed[21] = byte(p.Flags)
		binary.LittleEndian.PutUint32(fixed[22:26], p.Seq)
		binary.LittleEndian.PutUint32(fixed[26:30], p.Ack)
		// Len is 2 bytes but offset 30 would overflow 31; write after.
		if _, err := bw.Write(fixed[:30]); err != nil {
			return err
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], p.Len)
		if _, err := bw.Write(l[:]); err != nil {
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(p.Payload)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(p.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPackets reads a packet trace written by WritePackets.
func ReadPackets(r io.Reader) ([]Packet, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	count, err := readHeader(br, KindPacket)
	if err != nil {
		return nil, err
	}
	packets := make([]Packet, 0, min(count, maxPrealloc))
	var fixed [32]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, fixed[:]); err != nil {
			return nil, fmt.Errorf("trace: packet %d: %w", i, err)
		}
		p := Packet{
			Time:    int64(binary.LittleEndian.Uint64(fixed[0:8])),
			SrcIP:   IPv4(binary.LittleEndian.Uint32(fixed[8:12])),
			DstIP:   IPv4(binary.LittleEndian.Uint32(fixed[12:16])),
			SrcPort: binary.LittleEndian.Uint16(fixed[16:18]),
			DstPort: binary.LittleEndian.Uint16(fixed[18:20]),
			Proto:   fixed[20],
			Flags:   TCPFlags(fixed[21]),
			Seq:     binary.LittleEndian.Uint32(fixed[22:26]),
			Ack:     binary.LittleEndian.Uint32(fixed[26:30]),
			Len:     binary.LittleEndian.Uint16(fixed[30:32]),
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: packet %d payload length: %w", i, err)
		}
		if plen > maxPayload {
			return nil, fmt.Errorf("trace: packet %d payload length %d exceeds limit", i, plen)
		}
		if plen > 0 {
			p.Payload = make([]byte, plen)
			if _, err := io.ReadFull(br, p.Payload); err != nil {
				return nil, fmt.Errorf("trace: packet %d payload: %w", i, err)
			}
		}
		packets = append(packets, p)
	}
	return packets, nil
}

// WriteLinkSamples writes a de-aggregated link trace.
func WriteLinkSamples(w io.Writer, samples []LinkSample) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeHeader(bw, KindLink, uint64(len(samples))); err != nil {
		return err
	}
	var buf [8]byte
	for _, s := range samples {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(s.Link))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(s.Bin))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLinkSamples reads a link trace written by WriteLinkSamples.
func ReadLinkSamples(r io.Reader) ([]LinkSample, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	count, err := readHeader(br, KindLink)
	if err != nil {
		return nil, err
	}
	samples := make([]LinkSample, 0, min(count, maxPrealloc))
	var buf [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: link sample %d: %w", i, err)
		}
		samples = append(samples, LinkSample{
			Link: int32(binary.LittleEndian.Uint32(buf[0:4])),
			Bin:  int32(binary.LittleEndian.Uint32(buf[4:8])),
		})
	}
	return samples, nil
}

// WriteHopRecords writes an IPscatter-style hop-count trace.
func WriteHopRecords(w io.Writer, records []HopRecord) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeHeader(bw, KindHop, uint64(len(records))); err != nil {
		return err
	}
	var buf [12]byte
	for _, rec := range records {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(rec.Monitor))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(rec.IP))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(rec.Hops))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHopRecords reads a hop-count trace written by WriteHopRecords.
func ReadHopRecords(r io.Reader) ([]HopRecord, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	count, err := readHeader(br, KindHop)
	if err != nil {
		return nil, err
	}
	records := make([]HopRecord, 0, min(count, maxPrealloc))
	var buf [12]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: hop record %d: %w", i, err)
		}
		records = append(records, HopRecord{
			Monitor: int32(binary.LittleEndian.Uint32(buf[0:4])),
			IP:      IPv4(binary.LittleEndian.Uint32(buf[4:8])),
			Hops:    int32(binary.LittleEndian.Uint32(buf[8:12])),
		})
	}
	return records, nil
}
