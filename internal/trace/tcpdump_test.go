package trace

import (
	"strings"
	"testing"
)

const sampleTcpdump = `1616175417.100000 IP 10.0.0.5.52344 > 93.184.216.34.80: Flags [S], seq 1000, win 64240, options [mss 1460], length 0
1616175417.150000 IP 93.184.216.34.80 > 10.0.0.5.52344: Flags [S.], seq 500, ack 1001, win 65535, length 0
1616175417.150100 IP 10.0.0.5.52344 > 93.184.216.34.80: Flags [P.], seq 1001:1101, ack 501, win 501, length 100
1616175417.200000 IP 10.0.0.1.53 > 10.0.0.2.5353: UDP, length 64
garbage line that should be skipped
1616175417.300000 IP6 fe80::1.546 > ff02::2.547: dhcp6 solicit
1616175417.400000 IP 10.0.0.5.52344 > 93.184.216.34.80: Flags [F.], seq 1101, ack 501, win 501, length 0
`

func TestParseTcpdumpSample(t *testing.T) {
	packets, skipped, err := ParseTcpdump(strings.NewReader(sampleTcpdump))
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 5 {
		t.Fatalf("parsed %d packets, want 5", len(packets))
	}
	if skipped != 2 {
		t.Fatalf("skipped %d lines, want 2 (garbage + IPv6)", skipped)
	}

	syn := packets[0]
	if syn.Time != 0 {
		t.Errorf("first packet time %d, want 0 (relative)", syn.Time)
	}
	if !syn.IsSYN() || syn.Seq != 1000 || syn.SrcPort != 52344 || syn.DstPort != 80 {
		t.Errorf("SYN parsed wrong: %+v", syn)
	}
	if syn.SrcIP.String() != "10.0.0.5" || syn.DstIP.String() != "93.184.216.34" {
		t.Errorf("addresses parsed wrong: %s > %s", syn.SrcIP, syn.DstIP)
	}
	if syn.Len != 40 {
		t.Errorf("SYN length %d, want 40 (0 payload + header)", syn.Len)
	}

	synack := packets[1]
	if !synack.IsSYNACK() || synack.Ack != 1001 {
		t.Errorf("SYN-ACK parsed wrong: %+v", synack)
	}
	if synack.Time != 50_000 {
		t.Errorf("SYN-ACK time %d, want 50000 us", synack.Time)
	}

	data := packets[2]
	if !data.Flags.Has(FlagPSH | FlagACK) {
		t.Errorf("data flags %v", data.Flags)
	}
	if data.Seq != 1001 {
		t.Errorf("range seq %d, want 1001", data.Seq)
	}
	if data.Len != 140 {
		t.Errorf("data length %d, want 140", data.Len)
	}

	udp := packets[3]
	if udp.Proto != ProtoUDP || udp.SrcPort != 53 {
		t.Errorf("UDP parsed wrong: %+v", udp)
	}

	fin := packets[4]
	if !fin.Flags.Has(FlagFIN | FlagACK) {
		t.Errorf("FIN flags %v", fin.Flags)
	}
}

// TestParseTcpdumpHandshakePairs: parsed real-format output must feed
// the analyses — a SYN and its SYN-ACK join on ack = seq+1.
func TestParseTcpdumpHandshakePairs(t *testing.T) {
	packets, _, err := ParseTcpdump(strings.NewReader(sampleTcpdump))
	if err != nil {
		t.Fatal(err)
	}
	syn, synack := packets[0], packets[1]
	if synack.Ack != syn.Seq+1 {
		t.Fatalf("handshake arithmetic broken: ack %d vs seq %d", synack.Ack, syn.Seq)
	}
	if syn.Flow().Reverse() != synack.Flow() {
		t.Fatal("flow reversal broken across parsed directions")
	}
}

func TestParseTcpdumpEmptyAndGarbage(t *testing.T) {
	packets, skipped, err := ParseTcpdump(strings.NewReader(""))
	if err != nil || len(packets) != 0 || skipped != 0 {
		t.Fatalf("empty input: %d packets, %d skipped, %v", len(packets), skipped, err)
	}
	packets, skipped, err = ParseTcpdump(strings.NewReader("not tcpdump\nat all\n"))
	if err != nil || len(packets) != 0 || skipped != 2 {
		t.Fatalf("garbage input: %d packets, %d skipped, %v", len(packets), skipped, err)
	}
}

func TestParseTcpdumpMalformedVariants(t *testing.T) {
	cases := []string{
		"1616175417.1 IP 10.0.0.5.52344 > : Flags [S], seq 1, length 0",         // no dest
		"xxxx IP 10.0.0.5.1 > 10.0.0.6.2: Flags [S], seq 1, length 0",           // bad timestamp
		"1616175417.1 IP 10.0.0.5.1 > 10.0.0.6.2: Flags [S, seq 1, length 0",    // unclosed flags
		"1616175417.1 IP 10.0.0.999.1 > 10.0.0.6.2: Flags [S], seq 1, length 0", // bad octet
		"1616175417.1 IP 10.0.0.5.1 > 10.0.0.6.2: Flags [S], seq 1",             // no length
		"1616175417.1 IP 10.0.0.5.1 > 10.0.0.6.2: SCTP, length 10",              // unknown proto
	}
	for _, line := range cases {
		if _, ok := parseTcpdumpLine(line); ok {
			t.Errorf("malformed line parsed: %q", line)
		}
	}
}

func TestParseEpochMicros(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1.5", 1_500_000},
		{"1.000001", 1_000_001},
		{"10", 10_000_000},
		{"1.1234567", 1_123_456}, // truncated to 6 digits
	}
	for _, c := range cases {
		got, err := parseEpochMicros(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseEpochMicros(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := parseEpochMicros("abc.def"); err == nil {
		t.Error("bad timestamp accepted")
	}
}
