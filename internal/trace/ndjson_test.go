package trace

import (
	"strings"
	"testing"
)

func TestPacketsNDJSONRoundTrip(t *testing.T) {
	in := []Packet{
		{Time: 1000, SrcIP: MakeIPv4(10, 0, 0, 1), DstIP: MakeIPv4(10, 0, 0, 2),
			SrcPort: 443, DstPort: 51000, Proto: 6, Flags: FlagSYN | FlagACK,
			Seq: 7, Ack: 9, Len: 1200, Payload: []byte("hello")},
		{Time: 2000, SrcIP: MakeIPv4(192, 168, 1, 5), DstIP: MakeIPv4(8, 8, 8, 8),
			Proto: 17, Len: 64},
	}
	data := MarshalPacketsNDJSON(in)
	if got := strings.Count(string(data), "\n"); got != len(in) {
		t.Fatalf("expected %d lines, got %d", len(in), got)
	}
	out, err := ParsePacketsNDJSON(data)
	if err != nil {
		t.Fatalf("ParsePacketsNDJSON: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("expected %d packets, got %d", len(in), len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Time != b.Time || a.SrcIP != b.SrcIP || a.DstIP != b.DstIP ||
			a.SrcPort != b.SrcPort || a.DstPort != b.DstPort ||
			a.Proto != b.Proto || a.Flags != b.Flags ||
			a.Seq != b.Seq || a.Ack != b.Ack || a.Len != b.Len ||
			string(a.Payload) != string(b.Payload) {
			t.Errorf("packet %d: round-trip mismatch: %+v != %+v", i, a, b)
		}
	}
}

func TestLinkSamplesNDJSONRoundTrip(t *testing.T) {
	in := []LinkSample{{Link: 3, Bin: 12}, {Link: 0, Bin: 0}}
	out, err := ParseLinkSamplesNDJSON(MarshalLinkSamplesNDJSON(in))
	if err != nil {
		t.Fatalf("ParseLinkSamplesNDJSON: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("expected %d samples, got %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("sample %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestHopRecordsNDJSONRoundTrip(t *testing.T) {
	in := []HopRecord{
		{Monitor: 1, IP: MakeIPv4(172, 16, 0, 9), Hops: 14},
		{Monitor: 2, IP: MakeIPv4(10, 1, 2, 3), Hops: 3},
	}
	out, err := ParseHopRecordsNDJSON(MarshalHopRecordsNDJSON(in))
	if err != nil {
		t.Fatalf("ParseHopRecordsNDJSON: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("expected %d records, got %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("record %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestParseNDJSONSkipsBlankLines(t *testing.T) {
	data := []byte("\n{\"link\":1,\"bin\":2}\n\n  \n{\"link\":3,\"bin\":4}\n\n")
	out, err := ParseLinkSamplesNDJSON(data)
	if err != nil {
		t.Fatalf("ParseLinkSamplesNDJSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 samples, got %d", len(out))
	}
}

func TestParseNDJSONNoTrailingNewline(t *testing.T) {
	data := []byte(`{"link":1,"bin":2}`)
	out, err := ParseLinkSamplesNDJSON(data)
	if err != nil || len(out) != 1 {
		t.Fatalf("expected 1 sample, got %d (err=%v)", len(out), err)
	}
}

func TestParsePacketsNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"malformed json", "{\"time\":1,\"srcIP\":\"1.2.3.4\",\"dstIP\":\"5.6.7.8\",\"len\":1}\nnot json\n", "line 2"},
		{"unknown field", `{"time":1,"srcIP":"1.2.3.4","dstIP":"5.6.7.8","len":1,"bogus":true}`, "line 1"},
		{"bad src ip", `{"time":1,"srcIP":"nope","dstIP":"5.6.7.8","len":1}`, "srcIP"},
		{"ipv6 dst", `{"time":1,"srcIP":"1.2.3.4","dstIP":"::1","len":1}`, "not IPv4"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePacketsNDJSON([]byte(c.data))
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseLinkSamplesNDJSONRejectsNegative(t *testing.T) {
	if _, err := ParseLinkSamplesNDJSON([]byte(`{"link":-1,"bin":0}`)); err == nil {
		t.Fatal("expected error for negative link")
	}
}

func TestParseHopRecordsNDJSONRejectsNegativeMonitor(t *testing.T) {
	if _, err := ParseHopRecordsNDJSON([]byte(`{"monitor":-1,"ip":"1.2.3.4","hops":2}`)); err == nil {
		t.Fatal("expected error for negative monitor")
	}
}
