package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
)

// NDJSON batch encoding: one JSON object per line, the wire format
// live ingestion speaks (Content-Type application/x-ndjson; see
// internal/dpserver/api). It exists alongside the DPTR binary
// container because ingest senders are often not Go programs — a
// capture agent shelling out packets as JSON lines needs no varint
// framing — while high-volume senders use the binary form. Both
// decode to identical records.
//
// The decoders are strict (unknown fields refused, addresses must be
// IPv4) and report the 1-based line number of the first bad record,
// because an ingest 400 must tell the sender which line to look at.

// PacketJSON is the NDJSON wire shape of one Packet. Payload rides as
// standard JSON base64; absent fields are zero.
type PacketJSON struct {
	Time    int64  `json:"time"`
	SrcIP   string `json:"srcIP"`
	DstIP   string `json:"dstIP"`
	SrcPort uint16 `json:"srcPort,omitempty"`
	DstPort uint16 `json:"dstPort,omitempty"`
	Proto   uint8  `json:"proto,omitempty"`
	Flags   uint8  `json:"flags,omitempty"`
	Seq     uint32 `json:"seq,omitempty"`
	Ack     uint32 `json:"ack,omitempty"`
	Len     uint16 `json:"len"`
	Payload []byte `json:"payload,omitempty"`
}

// LinkSampleJSON is the NDJSON wire shape of one LinkSample.
type LinkSampleJSON struct {
	Link int32 `json:"link"`
	Bin  int32 `json:"bin"`
}

// HopRecordJSON is the NDJSON wire shape of one HopRecord.
type HopRecordJSON struct {
	Monitor int32  `json:"monitor"`
	IP      string `json:"ip"`
	Hops    int32  `json:"hops"`
}

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("trace: bad IPv4 %q: %w", s, err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("trace: %q is not IPv4", s)
	}
	b := a.As4()
	return MakeIPv4(b[0], b[1], b[2], b[3]), nil
}

// forEachLine invokes fn for every non-blank line with its 1-based
// line number, stopping on the first error.
func forEachLine(data []byte, fn func(line int, raw []byte) error) error {
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if err := fn(lineNo, line); err != nil {
			return err
		}
	}
	return nil
}

// decodeStrict unmarshals one line refusing unknown fields.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// ParsePacketsNDJSON decodes a batch of PacketJSON lines.
func ParsePacketsNDJSON(data []byte) ([]Packet, error) {
	var out []Packet
	err := forEachLine(data, func(line int, raw []byte) error {
		var pj PacketJSON
		if err := decodeStrict(raw, &pj); err != nil {
			return fmt.Errorf("trace: ndjson line %d: %w", line, err)
		}
		src, err := ParseIPv4(pj.SrcIP)
		if err != nil {
			return fmt.Errorf("trace: ndjson line %d srcIP: %w", line, err)
		}
		dst, err := ParseIPv4(pj.DstIP)
		if err != nil {
			return fmt.Errorf("trace: ndjson line %d dstIP: %w", line, err)
		}
		out = append(out, Packet{
			Time: pj.Time, SrcIP: src, DstIP: dst,
			SrcPort: pj.SrcPort, DstPort: pj.DstPort,
			Proto: pj.Proto, Flags: TCPFlags(pj.Flags),
			Seq: pj.Seq, Ack: pj.Ack, Len: pj.Len, Payload: pj.Payload,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParseLinkSamplesNDJSON decodes a batch of LinkSampleJSON lines.
func ParseLinkSamplesNDJSON(data []byte) ([]LinkSample, error) {
	var out []LinkSample
	err := forEachLine(data, func(line int, raw []byte) error {
		var lj LinkSampleJSON
		if err := decodeStrict(raw, &lj); err != nil {
			return fmt.Errorf("trace: ndjson line %d: %w", line, err)
		}
		if lj.Link < 0 || lj.Bin < 0 {
			return fmt.Errorf("trace: ndjson line %d: link and bin must be non-negative", line)
		}
		out = append(out, LinkSample{Link: lj.Link, Bin: lj.Bin})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParseHopRecordsNDJSON decodes a batch of HopRecordJSON lines.
func ParseHopRecordsNDJSON(data []byte) ([]HopRecord, error) {
	var out []HopRecord
	err := forEachLine(data, func(line int, raw []byte) error {
		var hj HopRecordJSON
		if err := decodeStrict(raw, &hj); err != nil {
			return fmt.Errorf("trace: ndjson line %d: %w", line, err)
		}
		ip, err := ParseIPv4(hj.IP)
		if err != nil {
			return fmt.Errorf("trace: ndjson line %d ip: %w", line, err)
		}
		if hj.Monitor < 0 {
			return fmt.Errorf("trace: ndjson line %d: monitor must be non-negative", line)
		}
		out = append(out, HopRecord{Monitor: hj.Monitor, IP: ip, Hops: hj.Hops})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendPacketNDJSON appends one packet as a JSON line (with trailing
// newline) to dst — the sender-side encoder, allocation-friendly for
// batch building.
func AppendPacketNDJSON(dst []byte, p *Packet) []byte {
	b, _ := json.Marshal(PacketJSON{
		Time: p.Time, SrcIP: p.SrcIP.String(), DstIP: p.DstIP.String(),
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: p.Proto, Flags: uint8(p.Flags),
		Seq: p.Seq, Ack: p.Ack, Len: p.Len, Payload: p.Payload,
	})
	dst = append(dst, b...)
	return append(dst, '\n')
}

// MarshalPacketsNDJSON encodes a packet batch as NDJSON.
func MarshalPacketsNDJSON(packets []Packet) []byte {
	var dst []byte
	for i := range packets {
		dst = AppendPacketNDJSON(dst, &packets[i])
	}
	return dst
}

// AppendLinkSampleNDJSON appends one link sample as a JSON line.
func AppendLinkSampleNDJSON(dst []byte, s LinkSample) []byte {
	b, _ := json.Marshal(LinkSampleJSON{Link: s.Link, Bin: s.Bin})
	dst = append(dst, b...)
	return append(dst, '\n')
}

// MarshalLinkSamplesNDJSON encodes a link-sample batch as NDJSON.
func MarshalLinkSamplesNDJSON(samples []LinkSample) []byte {
	var dst []byte
	for _, s := range samples {
		dst = AppendLinkSampleNDJSON(dst, s)
	}
	return dst
}

// AppendHopRecordNDJSON appends one hop record as a JSON line.
func AppendHopRecordNDJSON(dst []byte, h HopRecord) []byte {
	b, _ := json.Marshal(HopRecordJSON{Monitor: h.Monitor, IP: h.IP.String(), Hops: h.Hops})
	dst = append(dst, b...)
	return append(dst, '\n')
}

// MarshalHopRecordsNDJSON encodes a hop-record batch as NDJSON.
func MarshalHopRecordsNDJSON(records []HopRecord) []byte {
	var dst []byte
	for _, h := range records {
		dst = AppendHopRecordNDJSON(dst, h)
	}
	return dst
}
