package steppingstone

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func stoneTrace(t *testing.T) ([]trace.Packet, *tracegen.HotspotTruth, tracegen.HotspotConfig) {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 200
	cfg.Hosts = 60
	cfg.Servers = 20
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 5
	cfg.DecoyFlows = 10
	cfg.StoneActivations = 250
	cfg.Duration = 600
	pkts, truth := tracegen.Hotspot(cfg)
	return pkts, truth, cfg
}

func interactiveFlows(truth *tracegen.HotspotTruth) []trace.FlowKey {
	var flows []trace.FlowKey
	for _, p := range truth.StonePairs {
		flows = append(flows, p[0], p[1])
	}
	flows = append(flows, truth.DecoyFlows...)
	return flows
}

func TestExactActivationsRespectIdleGap(t *testing.T) {
	pkts := []trace.Packet{
		{Time: 0, SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP},
		{Time: 100_000, SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP},   // active: no
		{Time: 800_000, SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP},   // gap 700ms: yes
		{Time: 900_000, SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP},   // no
		{Time: 2_000_000, SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP}, // yes
	}
	acts := ExactActivations(pkts, DefaultTIdleUs)
	if len(acts) != 3 {
		t.Fatalf("got %d activations, want 3 (first packet + two gaps): %+v", len(acts), acts)
	}
	wantTimes := []int64{0, 800_000, 2_000_000}
	for i, a := range acts {
		if a.TimeUs != wantTimes[i] {
			t.Fatalf("activation %d at %d, want %d", i, a.TimeUs, wantTimes[i])
		}
	}
}

// TestPrivateActivationsMatchExact: the bucketed two-pass derivation
// should find nearly the same activations as the exact scan.
func TestPrivateActivationsMatchExact(t *testing.T) {
	pkts, truth, _ := stoneTrace(t)
	exact := ExactActivations(pkts, DefaultTIdleUs)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(21, 22))
	acts := Activations(q, DefaultTIdleUs)
	flows := interactiveFlows(truth)
	// Compare per-flow counts with huge epsilon (negligible noise).
	parts := core.Partition(acts, flows, func(a Activation) trace.FlowKey { return a.Flow })
	exactCount := make(map[trace.FlowKey]int)
	for _, a := range exact {
		exactCount[a.Flow]++
	}
	for _, f := range flows {
		c, err := parts[f].NoisyCount(1000)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(exactCount[f])
		// The bucket trick misses activations whose predecessor falls
		// just outside its bucket; allow a small relative gap.
		if math.Abs(c-want) > 0.15*want+3 {
			t.Errorf("flow %v: bucketed activations %v, exact %v", f, c, want)
		}
	}
}

func TestActivationsPrivacyCost(t *testing.T) {
	pkts, _, _ := stoneTrace(t)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(23, 24))
	acts := Activations(q, DefaultTIdleUs)
	if _, err := acts.NoisyCount(0.5); err != nil {
		t.Fatal(err)
	}
	// Two Concat'ed GroupBys over the same trace: 2x2x0.5 = 2.0.
	if spent := root.Spent(); math.Abs(spent-2.0) > 1e-9 {
		t.Errorf("spent %v, want 2.0", spent)
	}
}

func TestCandidateFlowsSelectsByActivationCount(t *testing.T) {
	pkts, truth, cfg := stoneTrace(t)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(25, 26))
	acts := Activations(q, DefaultTIdleUs)
	flows := interactiveFlows(truth)
	// All interactive flows have ~StoneActivations activations; session
	// flows (not listed) have few. A generous band catches them all.
	lo, hi := float64(cfg.StoneActivations)*0.3, float64(cfg.StoneActivations)*2
	got, err := CandidateFlows(acts, flows, 10, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Errorf("selected %d/%d interactive flows", len(got), len(flows))
	}
	// A disjoint band selects none.
	none, err := CandidateFlows(acts, flows, 10, 1e6, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("absurd band selected %d flows", len(none))
	}
}

func TestEvaluatePairsRanksStonesFirst(t *testing.T) {
	pkts, truth, _ := stoneTrace(t)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(27, 28))
	acts := Activations(q, DefaultTIdleUs)
	flows := interactiveFlows(truth)
	scores, err := EvaluatePairs(acts, flows, DefaultDeltaUs, 10)
	if err != nil {
		t.Fatal(err)
	}
	isStone := func(a, b trace.FlowKey) bool {
		for _, p := range truth.StonePairs {
			if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
				return true
			}
		}
		return false
	}
	// The top len(StonePairs) scores should all be true stone pairs.
	for i := 0; i < len(truth.StonePairs); i++ {
		if !isStone(scores[i].A, scores[i].B) {
			t.Errorf("rank %d pair %v-%v is not a true stone (corr %v)",
				i, scores[i].A, scores[i].B, scores[i].Corr)
		}
		if scores[i].Corr < 0.3 {
			t.Errorf("true stone pair correlation %v below the paper's 0.3 threshold", scores[i].Corr)
		}
	}
	// Non-stone pairs should score low.
	var worstNonStone float64
	for _, s := range scores {
		if !isStone(s.A, s.B) && s.Corr > worstNonStone {
			worstNonStone = s.Corr
		}
	}
	if worstNonStone > 0.3 {
		t.Errorf("a non-stone pair scored %v (> 0.3)", worstNonStone)
	}
}

func TestExactPairCorrelation(t *testing.T) {
	a := trace.FlowKey{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 2, Proto: 6}
	b := trace.FlowKey{SrcIP: 3, SrcPort: 3, DstIP: 4, DstPort: 4, Proto: 6}
	acts := []Activation{
		{Flow: a, TimeUs: 0}, {Flow: b, TimeUs: 10_000}, // correlated
		{Flow: a, TimeUs: 1_000_000}, {Flow: b, TimeUs: 1_030_000}, // correlated
		{Flow: a, TimeUs: 5_000_000}, // not followed
		{Flow: b, TimeUs: 9_000_000}, // not preceded
	}
	got := ExactPairCorrelation(acts, a, b, DefaultDeltaUs)
	want := 2.0 * 2 / 6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("correlation %v, want %v", got, want)
	}
	if c := ExactPairCorrelation(nil, a, b, DefaultDeltaUs); c != 0 {
		t.Fatalf("empty correlation %v, want 0", c)
	}
}

func TestExactTopPairsFindStones(t *testing.T) {
	pkts, truth, _ := stoneTrace(t)
	acts := ExactActivations(pkts, DefaultTIdleUs)
	flows := interactiveFlows(truth)
	top := ExactTopPairs(acts, flows, DefaultDeltaUs)
	for i := 0; i < len(truth.StonePairs); i++ {
		found := false
		for _, p := range truth.StonePairs {
			if (p[0] == top[i].A && p[1] == top[i].B) || (p[0] == top[i].B && p[1] == top[i].A) {
				found = true
			}
		}
		if !found {
			t.Errorf("exact rank %d is not a true stone pair (corr %v)", i, top[i].Corr)
		}
	}
}

func TestActivationsPanicsOnBadTIdle(t *testing.T) {
	q, _ := core.NewQueryable([]trace.Packet{}, 1, noise.NewSeededSource(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("tIdle=0 did not panic")
		}
	}()
	Activations(q, 0)
}
