// Package steppingstone reproduces the paper's §5.2.2 analysis:
// detecting stepping-stone relationships between flows (Zhang &
// Paxson, USENIX Security'00) under differential privacy. Two flows
// are suspected of forming a stepping-stone chain when their
// idle-to-active transitions are correlated in time.
//
// The private pipeline follows the paper's approximations:
//
//   - Idle-to-active transitions ("activations") are found with the
//     bucketed GroupBy trick: group packets by (flow, time/(2·T_idle)),
//     confirm the last packet of each bucket's second half, and repeat
//     with the times shifted by T_idle to catch the first halves.
//   - Correlation between flows is approximated by binning activations
//     at δ resolution and counting shared bins — the paper's trade of
//     fidelity (versus a second sliding window) for privacy
//     efficiency.
//   - Candidate pairs are evaluated after Partitioning the activations
//     by flow, which the paper notes "reduces the privacy cost
//     dramatically": the partition's max-accounting means the cost
//     scales with the evaluations per flow, not the number of pairs.
//
// The exact sliding-window detector the paper validates against (their
// Perl script) is implemented alongside.
package steppingstone

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Paper parameter values: a flow is idle after 0.5 s without packets;
// two activations are correlated within 40 ms.
const (
	DefaultTIdleUs = 500_000
	DefaultDeltaUs = 40_000
)

// Activation is one idle-to-active transition of a flow.
type Activation struct {
	Flow   trace.FlowKey
	TimeUs int64
}

// Activations derives, behind the privacy curtain, the idle-to-active
// transitions of every flow using the paper's two shifted bucketing
// passes — the toolkit's Onsets primitive, keyed by 5-tuple. The
// result is a protected dataset; aggregations on it cost 4× their ε
// (two Concat'ed GroupBys over the same trace).
func Activations(q *core.Queryable[trace.Packet], tIdleUs int64) *core.Queryable[Activation] {
	if tIdleUs <= 0 {
		panic("steppingstone: tIdle must be positive")
	}
	onsets := toolkit.Onsets(q,
		func(p trace.Packet) trace.FlowKey { return p.Flow() },
		func(p trace.Packet) int64 { return p.Time },
		tIdleUs)
	return core.Select(onsets, func(o toolkit.Onset[trace.FlowKey]) Activation {
		return Activation{Flow: o.Key, TimeUs: o.TimeUs}
	})
}

// CandidateFlows selects, privately, the flows whose noisy activation
// count lies in [lo, hi] — the paper restricts Table 5 to flows with
// [1200, 1400] activations to keep the correlation data sparse enough
// for mining. The flow universe is public (endpoint enumeration);
// the counts are noisy. Cost: epsilon × the activation multiplier
// (Partition max-accounting covers all flows at once).
func CandidateFlows(acts *core.Queryable[Activation], flows []trace.FlowKey, epsilon float64, lo, hi float64) ([]trace.FlowKey, error) {
	parts := core.Partition(acts, flows, func(a Activation) trace.FlowKey { return a.Flow })
	var out []trace.FlowKey
	for _, f := range flows {
		c, err := parts[f].NoisyCount(epsilon)
		if err != nil {
			return nil, err
		}
		if c >= lo && c <= hi {
			out = append(out, f)
		}
	}
	return out, nil
}

// PairScore is one evaluated flow pair with its correlation estimate.
type PairScore struct {
	A, B trace.FlowKey
	Corr float64
}

// EvaluatePairs estimates, for every pair of candidate flows, the
// correlation of their activations: activations are binned at δ
// resolution per flow (after Partitioning by flow), and
// corr(A,B) = 2·|shared bins| / (|bins A| + |bins B|), each count
// noisy at epsilon. Pairs come back sorted by decreasing correlation.
func EvaluatePairs(acts *core.Queryable[Activation], flows []trace.FlowKey, deltaUs int64, epsilon float64) ([]PairScore, error) {
	var pairs [][2]trace.FlowKey
	for i := 0; i < len(flows); i++ {
		for j := i + 1; j < len(flows); j++ {
			pairs = append(pairs, [2]trace.FlowKey{flows[i], flows[j]})
		}
	}
	return EvaluatePairList(acts, pairs, deltaUs, epsilon)
}

// EvaluatePairList is EvaluatePairs restricted to an explicit list of
// candidate pairs (e.g. the survivors of DiscoverPairs). Thanks to the
// Partition max-accounting, the privacy cost scales with the number of
// evaluations the busiest flow participates in — "reduces the privacy
// cost dramatically" versus measuring over the whole dataset per pair.
func EvaluatePairList(acts *core.Queryable[Activation], pairs [][2]trace.FlowKey, deltaUs int64, epsilon float64) ([]PairScore, error) {
	if deltaUs <= 0 {
		panic("steppingstone: delta must be positive")
	}
	seen := make(map[trace.FlowKey]bool)
	var flows []trace.FlowKey
	for _, p := range pairs {
		for _, f := range p {
			if !seen[f] {
				seen[f] = true
				flows = append(flows, f)
			}
		}
	}
	parts := core.Partition(acts, flows, func(a Activation) trace.FlowKey { return a.Flow })
	// Per flow: the distinct δ-bins its activations touch.
	bins := make(map[trace.FlowKey]*core.Queryable[int64], len(flows))
	counts := make(map[trace.FlowKey]float64, len(flows))
	for _, f := range flows {
		b := core.Distinct(
			core.Select(parts[f], func(a Activation) int64 { return a.TimeUs / deltaUs }),
			func(v int64) int64 { return v })
		bins[f] = b
		c, err := b.NoisyCount(epsilon)
		if err != nil {
			return nil, err
		}
		counts[f] = c
	}
	var out []PairScore
	for _, p := range pairs {
		a, b := p[0], p[1]
		shared, err := core.Join(bins[a], bins[b],
			func(v int64) int64 { return v },
			func(v int64) int64 { return v },
			func(x, y int64) int64 { return x },
		).NoisyCount(epsilon)
		if err != nil {
			return nil, err
		}
		denom := counts[a] + counts[b]
		corr := 0.0
		if denom > 0 {
			corr = 2 * shared / denom
		}
		out = append(out, PairScore{A: a, B: b, Corr: corr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Corr > out[j].Corr })
	return out, nil
}

// DiscoverPairs is the paper's privacy-efficient discovery step: bin
// the activations at δ resolution, form one basket of simultaneously
// active flows per bin, and run frequent itemset mining to surface
// pairs of flows that co-activate often. Because a basket contributes
// to only one candidate pair per round (partitioned support), dense
// data — many flows active in the same bin — dilutes the evidence,
// which is exactly the failure mode the paper reports at strong
// privacy. The returned pairs carry their noisy mined support.
func DiscoverPairs(acts *core.Queryable[Activation], flows []trace.FlowKey, deltaUs int64, epsilon, threshold float64) ([]PairScore, error) {
	if deltaUs <= 0 {
		panic("steppingstone: delta must be positive")
	}
	flowIndex := make(map[trace.FlowKey]int, len(flows))
	for i, f := range flows {
		flowIndex[f] = i
	}
	binned := core.GroupBy(acts, func(a Activation) int64 { return a.TimeUs / deltaUs })
	baskets := core.Select(binned, func(g core.Group[int64, Activation]) toolkit.Basket {
		present := make(map[int]bool)
		for _, a := range g.Items {
			if idx, ok := flowIndex[a.Flow]; ok {
				present[idx] = true
			}
		}
		items := make([]int, 0, len(present))
		for idx := range present {
			items = append(items, idx)
		}
		sort.Ints(items)
		return toolkit.Basket{ID: uint64(g.Key), Items: items}
	})
	mined, err := toolkit.FrequentItemsets(baskets, len(flows), toolkit.FrequentItemsetsConfig{
		MaxSize:         2,
		EpsilonPerRound: epsilon,
		Threshold:       threshold,
	})
	if err != nil {
		return nil, err
	}
	var out []PairScore
	for _, ic := range mined {
		if len(ic.Items) == 2 {
			out = append(out, PairScore{
				A: flows[ic.Items[0]], B: flows[ic.Items[1]], Corr: ic.Count,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Corr > out[j].Corr })
	return out, nil
}

// ExactActivations computes idle-to-active transitions exactly: a
// packet is an activation when its flow's previous packet is more than
// tIdle earlier (a flow's first packet is an activation).
func ExactActivations(packets []trace.Packet, tIdleUs int64) []Activation {
	byFlow := make(map[trace.FlowKey][]int64)
	for i := range packets {
		p := &packets[i]
		byFlow[p.Flow()] = append(byFlow[p.Flow()], p.Time)
	}
	var out []Activation
	for f, times := range byFlow {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		prev := int64(-1)
		for _, t := range times {
			if prev < 0 || t-prev > tIdleUs {
				out = append(out, Activation{Flow: f, TimeUs: t})
			}
			prev = t
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimeUs != out[j].TimeUs {
			return out[i].TimeUs < out[j].TimeUs
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// ExactPairCorrelation is the faithful sliding-window correlation the
// paper's Perl baseline computes: the fraction of activations involved
// in an ordered A-then-B coincidence within δ, normalized like the
// private estimate: 2·|coincidences| / (|acts A| + |acts B|).
func ExactPairCorrelation(acts []Activation, a, b trace.FlowKey, deltaUs int64) float64 {
	var ta, tb []int64
	for _, x := range acts {
		switch x.Flow {
		case a:
			ta = append(ta, x.TimeUs)
		case b:
			tb = append(tb, x.TimeUs)
		}
	}
	if len(ta)+len(tb) == 0 {
		return 0
	}
	sort.Slice(ta, func(i, j int) bool { return ta[i] < ta[j] })
	sort.Slice(tb, func(i, j int) bool { return tb[i] < tb[j] })
	matched := 0
	j := 0
	for _, t := range ta {
		for j < len(tb) && tb[j] <= t {
			j++
		}
		if j < len(tb) && tb[j]-t <= deltaUs {
			matched++
			j++ // each B activation matches at most one A activation
		}
	}
	return 2 * float64(matched) / float64(len(ta)+len(tb))
}

// ExactTopPairs ranks all pairs of the given flows by exact
// correlation, descending.
func ExactTopPairs(acts []Activation, flows []trace.FlowKey, deltaUs int64) []PairScore {
	var out []PairScore
	for i := 0; i < len(flows); i++ {
		for j := i + 1; j < len(flows); j++ {
			out = append(out, PairScore{
				A: flows[i], B: flows[j],
				Corr: ExactPairCorrelation(acts, flows[i], flows[j], deltaUs),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Corr > out[j].Corr })
	return out
}
