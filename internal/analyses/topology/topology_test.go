package topology

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/tracegen"
)

func scatterData(t *testing.T) ([]float64, tracegen.ScatterConfig, *tracegen.ScatterTruth, Config) {
	t.Helper()
	gen := tracegen.ScatterConfig{
		Seed: 9, Monitors: 12, Clusters: 4, IPsPerCluster: 150,
		Jitter: 1, MissingFrac: 0.15, MinHops: 3, MaxHops: 26,
	}
	_, truth := tracegen.IPScatter(gen)
	cfg := Config{
		Monitors:            gen.Monitors,
		K:                   gen.Clusters,
		MaxHops:             32,
		EpsilonImpute:       1.0,
		EpsilonPerIteration: 1.0,
		Iterations:          8,
		Seed:                77,
	}
	return nil, gen, truth, cfg
}

func TestExactVectorsImputeMissing(t *testing.T) {
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	vectors := ExactVectors(records, cfg.Monitors)
	if len(vectors) != gen.Clusters*gen.IPsPerCluster {
		t.Fatalf("got %d vectors, want %d", len(vectors), gen.Clusters*gen.IPsPerCluster)
	}
	for _, v := range vectors {
		if len(v) != cfg.Monitors {
			t.Fatalf("vector has %d coords, want %d", len(v), cfg.Monitors)
		}
		for _, x := range v {
			if x <= 0 || x > float64(gen.MaxHops)+1 {
				t.Fatalf("implausible coordinate %v", x)
			}
		}
	}
}

func TestExactKMeansRecoverClusters(t *testing.T) {
	_, gen, truth, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	points := ExactVectors(records, cfg.Monitors)
	res := ExactKMeans(points, cfg)
	if len(res.Objective) != cfg.Iterations+1 {
		t.Fatalf("got %d objective points, want %d", len(res.Objective), cfg.Iterations+1)
	}
	final := res.Objective[len(res.Objective)-1]
	if final >= res.Objective[0] {
		t.Errorf("objective did not improve: %v -> %v", res.Objective[0], final)
	}
	// Random-vector initialization (the paper's setup) routinely gets
	// stuck above the jitter level — Fig 5's noise-free curve flattens
	// around 11 on a 10-20 axis — so require clear improvement rather
	// than jitter-level recovery.
	if final > 0.7*res.Objective[0] {
		t.Errorf("final objective %v improved too little from %v", final, res.Objective[0])
	}
	_ = truth
}

func TestPrivateKMeansTracksExactAtWeakPrivacy(t *testing.T) {
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	points := ExactVectors(records, cfg.Monitors)
	exact := ExactKMeans(points, cfg)

	cfg.EpsilonPerIteration = 10
	cfg.EpsilonImpute = 10
	q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(41, 42))
	vectors, _, err := AssembleVectors(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	private, err := PrivateKMeans(vectors, cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	ef := exact.Objective[len(exact.Objective)-1]
	pf := private.Objective[len(private.Objective)-1]
	if pf > ef*1.3+1 {
		t.Errorf("weak-privacy objective %v far from exact %v", pf, ef)
	}
}

// TestPrivacyOrderingOfObjectives is the Fig 5 shape: stronger privacy
// should not beat weaker privacy (averaged over seeds).
func TestPrivacyOrderingOfObjectives(t *testing.T) {
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	points := ExactVectors(records, cfg.Monitors)
	finalAt := func(eps float64) float64 {
		var total float64
		const runs = 3
		for r := uint64(0); r < runs; r++ {
			c := cfg
			c.EpsilonPerIteration = eps
			c.EpsilonImpute = eps
			q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(100+r, 200+r))
			vectors, _, err := AssembleVectors(q, c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := PrivateKMeans(vectors, c, points)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Objective[len(res.Objective)-1]
		}
		return total / runs
	}
	strong, weak := finalAt(0.1), finalAt(10)
	if weak > strong*1.05 {
		t.Errorf("objective at eps=10 (%v) worse than eps=0.1 (%v)", weak, strong)
	}
}

func TestPrivateKMeansBudgetAccounting(t *testing.T) {
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	cfg.Iterations = 3
	q, root := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(51, 52))
	vectors, _, err := AssembleVectors(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrivateKMeans(vectors, cfg, nil); err != nil {
		t.Fatal(err)
	}
	// Imputation: 1.0 (partition by monitor, max accounting).
	// Iterations: vectors carry GroupBy's 2x, so 3 x 1.0 x 2 = 6.0.
	want := cfg.EpsilonImpute + float64(cfg.Iterations)*cfg.EpsilonPerIteration*2
	if spent := root.Spent(); math.Abs(spent-want) > 1e-6 {
		t.Errorf("spent %v, want %v", spent, want)
	}
}

func TestPrivateKMeansSharedInitMatchesExact(t *testing.T) {
	// Objective[0] must be identical across private and exact runs:
	// the paper initializes all privacy levels with the same vectors.
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	points := ExactVectors(records, cfg.Monitors)
	exact := ExactKMeans(points, cfg)
	q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(61, 62))
	vectors, _, err := AssembleVectors(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	private, err := PrivateKMeans(vectors, cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(private.Objective[0]-exact.Objective[0]) > 1e-9 {
		t.Errorf("initial objectives differ: %v vs %v", private.Objective[0], exact.Objective[0])
	}
}

func TestPrivateKMeansInvalidConfig(t *testing.T) {
	_, gen, _, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(1, 1))
	vectors, _, err := AssembleVectors(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.K = 0
	if _, err := PrivateKMeans(vectors, bad, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAssembleVectorsMonitorAverages(t *testing.T) {
	_, gen, truth, cfg := scatterData(t)
	records, _ := tracegen.IPScatter(gen)
	q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(71, 72))
	cfg.EpsilonImpute = 10
	_, averages, err := AssembleVectors(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each monitor's average should be near the mean of cluster
	// centers for that monitor.
	for m := 0; m < cfg.Monitors; m++ {
		var mean float64
		for _, c := range truth.Centers {
			mean += c[m]
		}
		mean /= float64(len(truth.Centers))
		if math.Abs(averages[m]-mean) > 3 {
			t.Errorf("monitor %d average %v, cluster mean %v", m, averages[m], mean)
		}
	}
}
