package topology

import (
	"fmt"
	"math"

	"dptrace/internal/core"
	"dptrace/internal/linalg"
)

// PrivateGaussianEM is the clustering algorithm Eriksson et al.
// originally used, run under differential privacy — the option the
// paper declines ("Gaussian EM is also expressible, [but] has a higher
// privacy cost and is consequently less accurate").
//
// The cost asymmetry is structural. K-means hard-assigns every vector
// to one cluster, so the per-cluster statistics live in DISJOINT
// partitions and Partition's max-accounting prices a whole iteration
// at (d+1) noisy measurements. EM's responsibilities overlap: every
// record contributes to every component, so each of the K·(d+2)
// statistics (soft count, d weighted coordinate sums, and a weighted
// squared-distance sum per component) is a separate noisy sum over the
// WHOLE dataset, and their costs add. At an equal per-iteration
// budget, EM's per-measurement ε is K·(d+2)/(d+1) times smaller than
// k-means' — roughly K times more noise, which is exactly the
// "algorithmic complexity vs privacy cost" trade-off §5.3.2 calls out.
func PrivateGaussianEM(vectors *core.Queryable[HopVector], cfg Config, evalPoints [][]float64) (*Result, error) {
	if cfg.K <= 0 || cfg.Iterations < 0 {
		return nil, fmt.Errorf("topology: invalid config k=%d iters=%d", cfg.K, cfg.Iterations)
	}
	init := linalg.NewKMeansState(cfg.K, cfg.Monitors, 0, cfg.MaxHops, cfg.Seed)
	state := linalg.NewGaussianEMState(init.Centers)
	res := &Result{}
	record := func() {
		if evalPoints != nil {
			res.Objective = append(res.Objective, state.Objective(evalPoints))
		}
	}
	record()
	// K components × (1 soft count + Monitors coordinate sums + 1
	// squared-distance sum), every one a full-dataset measurement.
	epsShare := cfg.EpsilonPerIteration / float64(cfg.K*(cfg.Monitors+2))
	dim := float64(cfg.Monitors)
	varBound := cfg.MaxHops * cfg.MaxHops * dim

	for it := 0; it < cfg.Iterations; it++ {
		// Freeze the current parameters for the responsibility
		// closures (public state + one record in, a weight out).
		means := make([][]float64, cfg.K)
		for c := range means {
			means[c] = state.Means[c]
		}
		variances := append([]float64(nil), state.Variances...)
		weights := append([]float64(nil), state.Weights...)
		resp := func(v HopVector, c int) float64 {
			logp := make([]float64, cfg.K)
			maxLog := math.Inf(-1)
			for k := 0; k < cfg.K; k++ {
				vr := variances[k]
				if vr <= 0 {
					vr = 1e-9
				}
				logp[k] = math.Log(weights[k]+1e-12) -
					0.5*dim*math.Log(2*math.Pi*vr) -
					linalg.EuclideanDistSq(v.coords, means[k])/(2*vr)
				if logp[k] > maxLog {
					maxLog = logp[k]
				}
			}
			var denom float64
			for k := 0; k < cfg.K; k++ {
				denom += math.Exp(logp[k] - maxLog)
			}
			return math.Exp(logp[c]-maxLog) / denom
		}

		newMeans := make([][]float64, cfg.K)
		newVars := make([]float64, cfg.K)
		newWeights := make([]float64, cfg.K)
		var totalResp float64
		for c := 0; c < cfg.K; c++ {
			comp := c
			softCount, err := core.NoisySum(vectors, epsShare, func(v HopVector) float64 {
				return resp(v, comp)
			})
			if err != nil {
				return nil, fmt.Errorf("topology: EM iteration %d component %d: %w", it, c, err)
			}
			if softCount < 1 {
				newMeans[c] = state.Means[c]
				newVars[c] = state.Variances[c]
				newWeights[c] = 1e-6
				continue
			}
			mean := make([]float64, cfg.Monitors)
			for m := 0; m < cfg.Monitors; m++ {
				coord := m
				s, err := core.NoisySumScaled(vectors, epsShare, cfg.MaxHops, func(v HopVector) float64 {
					return resp(v, comp) * v.coords[coord]
				})
				if err != nil {
					return nil, err
				}
				mean[m] = s / softCount
			}
			sq, err := core.NoisySumScaled(vectors, epsShare, varBound, func(v HopVector) float64 {
				return resp(v, comp) * linalg.EuclideanDistSq(v.coords, means[comp])
			})
			if err != nil {
				return nil, err
			}
			newMeans[c] = mean
			newVars[c] = math.Max(sq/(softCount*dim), 1e-3)
			newWeights[c] = softCount
			totalResp += softCount
		}
		if totalResp <= 0 {
			totalResp = 1
		}
		for c := 0; c < cfg.K; c++ {
			state.Means[c] = newMeans[c]
			state.Variances[c] = newVars[c]
			state.Weights[c] = math.Max(newWeights[c]/totalResp, 1e-9)
		}
		record()
	}
	res.Centers = state.Means
	return res, nil
}
