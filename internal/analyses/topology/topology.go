// Package topology reproduces the paper's §5.3.2 analysis: passive
// network topology discovery (Eriksson, Barford & Nowak, SIGCOMM'08)
// under differential privacy. IP addresses are clustered by their
// hop-count vectors to a set of monitors; topologically close
// addresses have similar vectors.
//
// Following the paper, the private pipeline:
//
//  1. Measures each monitor's average hop count with a noisy Average,
//     to impute missing (IP, monitor) readings.
//  2. Assembles one vector per IP behind the privacy curtain (GroupBy
//     on IP with the imputation inside the transformation).
//  3. Runs differentially-private k-means: each iteration Partitions
//     the vectors by nearest center and re-estimates every center from
//     noisy per-cluster sums and counts; each iteration costs one ε.
//
// The paper chose k-means over the original Gaussian EM because EM's
// extra parameters (variances, weights) cost more budget per
// iteration; the non-private EM comparator lives in internal/linalg
// and the cost trade-off is exercised by the ablation bench.
package topology

import (
	"fmt"

	"dptrace/internal/core"
	"dptrace/internal/linalg"
	"dptrace/internal/trace"
)

// Config parameterizes the private clustering run.
type Config struct {
	Monitors int
	K        int // number of centers; the paper uses nine
	// MaxHops bounds hop values for clamping noisy sums; public
	// knowledge (TTL-derived distances are small).
	MaxHops float64
	// EpsilonImpute is spent (once, per monitor partition) on the
	// per-monitor average used to fill missing readings.
	EpsilonImpute float64
	// EpsilonPerIteration is the privacy cost of each k-means
	// iteration, split internally between per-cluster counts and
	// per-coordinate sums.
	EpsilonPerIteration float64
	Iterations          int
	// Seed initializes the shared starting centers; the paper uses a
	// common random set of vectors for every privacy level.
	Seed uint64
}

// Result carries the clustering trajectory.
type Result struct {
	// Objective[i] is the k-means objective (average distance of each
	// vector to its nearest center — Fig 5's "RMSE") after i
	// iterations; Objective[0] is the shared initialization.
	Objective []float64
	// Centers are the final cluster centers.
	Centers [][]float64
}

// HopVector is one IP's imputed hop-count vector; it stays behind
// the privacy curtain (only ever inside a Queryable).
type HopVector struct {
	coords []float64
}

// AssembleVectors builds, behind the curtain, one hop-count vector per
// IP with missing monitors imputed from the noisy per-monitor
// averages. Monitors' averages cost EpsilonImpute once (Partition by
// monitor; max-accounting).
func AssembleVectors(q *core.Queryable[trace.HopRecord], cfg Config) (*core.Queryable[HopVector], []float64, error) {
	monitorKeys := make([]int32, cfg.Monitors)
	for i := range monitorKeys {
		monitorKeys[i] = int32(i)
	}
	byMonitor := core.Partition(q, monitorKeys, func(r trace.HopRecord) int32 { return r.Monitor })
	averages := make([]float64, cfg.Monitors)
	for m, key := range monitorKeys {
		avg, err := core.NoisyAverageScaled(byMonitor[key], cfg.EpsilonImpute, cfg.MaxHops,
			func(r trace.HopRecord) float64 { return float64(r.Hops) })
		if err != nil {
			return nil, nil, fmt.Errorf("topology: monitor %d average: %w", m, err)
		}
		averages[m] = avg
	}
	groups := core.GroupBy(q, func(r trace.HopRecord) trace.IPv4 { return r.IP })
	vectors := core.Select(groups, func(g core.Group[trace.IPv4, trace.HopRecord]) HopVector {
		v := make([]float64, cfg.Monitors)
		copy(v, averages)
		for _, r := range g.Items {
			if int(r.Monitor) < cfg.Monitors {
				v[r.Monitor] = float64(r.Hops)
			}
		}
		return HopVector{coords: v}
	})
	return vectors, averages, nil
}

// PrivateKMeans runs cfg.Iterations differentially-private Lloyd
// iterations from the seeded shared initialization. evalPoints, if
// non-nil, are the points the objective is evaluated against after
// each iteration — an evaluation-side computation (the paper plots it
// to compare privacy levels) that costs no budget because it never
// touches the protected Queryable.
func PrivateKMeans(vectors *core.Queryable[HopVector], cfg Config, evalPoints [][]float64) (*Result, error) {
	if cfg.K <= 0 || cfg.Iterations < 0 {
		return nil, fmt.Errorf("topology: invalid config k=%d iters=%d", cfg.K, cfg.Iterations)
	}
	state := linalg.NewKMeansState(cfg.K, cfg.Monitors, 0, cfg.MaxHops, cfg.Seed)
	res := &Result{}
	record := func() {
		if evalPoints != nil {
			res.Objective = append(res.Objective, state.Objective(evalPoints))
		}
	}
	record()
	// Split each iteration's budget over one count and Monitors sums
	// per cluster; sibling clusters are free under max-accounting.
	epsShare := cfg.EpsilonPerIteration / float64(cfg.Monitors+1)
	clusterKeys := make([]int, cfg.K)
	for i := range clusterKeys {
		clusterKeys[i] = i
	}
	for it := 0; it < cfg.Iterations; it++ {
		centers := state.Centers
		parts := core.Partition(vectors, clusterKeys, func(v HopVector) int {
			best, bestD := 0, -1.0
			for c, center := range centers {
				d := linalg.EuclideanDistSq(v.coords, center)
				if bestD < 0 || d < bestD {
					best, bestD = c, d
				}
			}
			return best
		})
		newCenters := make([][]float64, cfg.K)
		for c := 0; c < cfg.K; c++ {
			count, err := parts[c].NoisyCount(epsShare)
			if err != nil {
				return nil, fmt.Errorf("topology: iteration %d cluster %d: %w", it, c, err)
			}
			if count < 1 {
				continue // too little noisy mass; keep the old center
			}
			center := make([]float64, cfg.Monitors)
			for m := 0; m < cfg.Monitors; m++ {
				coord := m
				sum, err := core.NoisySumScaled(parts[c], epsShare, cfg.MaxHops,
					func(v HopVector) float64 { return v.coords[coord] })
				if err != nil {
					return nil, fmt.Errorf("topology: iteration %d cluster %d coord %d: %w", it, c, m, err)
				}
				center[m] = sum / count
			}
			newCenters[c] = center
		}
		state.Update(newCenters)
		record()
	}
	res.Centers = state.Centers
	return res, nil
}

// ExactKMeans runs the same trajectory without noise (the paper's
// "noise-free" curve): identical shared initialization, exact Lloyd
// steps, objective evaluated on the same points.
func ExactKMeans(points [][]float64, cfg Config) *Result {
	state := linalg.NewKMeansState(cfg.K, cfg.Monitors, 0, cfg.MaxHops, cfg.Seed)
	res := &Result{Objective: []float64{state.Objective(points)}}
	for it := 0; it < cfg.Iterations; it++ {
		state.LloydStep(points)
		res.Objective = append(res.Objective, state.Objective(points))
	}
	res.Centers = state.Centers
	return res
}

// ExactVectors assembles the noise-free hop vectors (exact per-monitor
// means for imputation) for evaluation and for the exact baseline.
func ExactVectors(records []trace.HopRecord, monitors int) [][]float64 {
	sums := make([]float64, monitors)
	counts := make([]float64, monitors)
	for _, r := range records {
		if int(r.Monitor) < monitors {
			sums[r.Monitor] += float64(r.Hops)
			counts[r.Monitor]++
		}
	}
	averages := make([]float64, monitors)
	for m := range averages {
		if counts[m] > 0 {
			averages[m] = sums[m] / counts[m]
		}
	}
	type slot struct {
		v []float64
	}
	order := make([]trace.IPv4, 0)
	byIP := make(map[trace.IPv4]*slot)
	for _, r := range records {
		s, ok := byIP[r.IP]
		if !ok {
			v := make([]float64, monitors)
			copy(v, averages)
			s = &slot{v: v}
			byIP[r.IP] = s
			order = append(order, r.IP)
		}
		if int(r.Monitor) < monitors {
			s.v[r.Monitor] = float64(r.Hops)
		}
	}
	out := make([][]float64, len(order))
	for i, ip := range order {
		out[i] = byIP[ip].v
	}
	return out
}
