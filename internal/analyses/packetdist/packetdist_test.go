package packetdist

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func testTrace(t *testing.T) []trace.Packet {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 500
	cfg.Hosts = 100
	cfg.Servers = 30
	cfg.Worms = 4
	cfg.WormDispersion = 10
	cfg.BackgroundStrings = 30
	cfg.BackgroundTotal = 3000
	cfg.StonePairs = 2
	cfg.DecoyFlows = 2
	cfg.StoneActivations = 100
	cfg.Duration = 300
	pkts, _ := tracegen.Hotspot(cfg)
	return pkts
}

func TestLengthCDFCloseToExact(t *testing.T) {
	pkts := testTrace(t)
	buckets := LengthBuckets(8)
	exact := ExactLengthCDF(pkts, buckets)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(1, 2))
	private, err := PrivateLengthCDF(q, 0.1, buckets)
	if err != nil {
		t.Fatal(err)
	}
	if len(private) != len(exact) {
		t.Fatalf("length mismatch %d vs %d", len(private), len(exact))
	}
	rmse, err := RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 0.01% on 7M packets; our trace is ~4 orders
	// smaller, so scale expectations accordingly but stay tight.
	if rmse > 0.25 {
		t.Errorf("length CDF RMSE %v too high", rmse)
	}
	// CDF2's cost is one epsilon regardless of bucket count.
	if spent := root.Spent(); math.Abs(spent-0.1) > 1e-9 {
		t.Errorf("spent %v, want 0.1", spent)
	}
}

func TestPortCDFCloseToExact(t *testing.T) {
	pkts := testTrace(t)
	buckets := PortBuckets(512)
	exact := ExactPortCDF(pkts, buckets)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(3, 4))
	private, err := PrivatePortCDF(q, 1.0, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.25 {
		t.Errorf("port CDF RMSE %v too high", rmse)
	}
}

func TestExactLengthCDFCapturesSpikes(t *testing.T) {
	pkts := testTrace(t)
	buckets := LengthBuckets(1) // 1-byte resolution
	exact := ExactLengthCDF(pkts, buckets)
	// Spike at 40: jump between cdf(40) and cdf(41) indices.
	jumpAt := func(length int64) float64 {
		// buckets[i] = i+1, cdf value at index i counts < i+1.
		return exact[length] - exact[length-1]
	}
	if jumpAt(40) < float64(len(pkts))*0.10 {
		t.Errorf("40-byte spike %v too small", jumpAt(40))
	}
	if jumpAt(1492) < float64(len(pkts))*0.03 {
		t.Errorf("1492-byte spike %v too small", jumpAt(1492))
	}
}

func TestCDFMonotoneExact(t *testing.T) {
	pkts := testTrace(t)
	exact := ExactLengthCDF(pkts, LengthBuckets(16))
	for i := 1; i < len(exact); i++ {
		if exact[i] < exact[i-1] {
			t.Fatalf("exact CDF decreases at %d", i)
		}
	}
}

func TestAccuracyImprovesWithEpsilon(t *testing.T) {
	pkts := testTrace(t)
	buckets := LengthBuckets(8)
	exact := ExactLengthCDF(pkts, buckets)
	rmseAt := func(eps float64) float64 {
		// Average over a few runs to reduce flakiness.
		var total float64
		const runs = 5
		for r := 0; r < runs; r++ {
			q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(uint64(r), 77))
			private, err := PrivateLengthCDF(q, eps, buckets)
			if err != nil {
				t.Fatal(err)
			}
			rmse, _ := RMSE(private, exact)
			total += rmse
		}
		return total / runs
	}
	weak, strong := rmseAt(10), rmseAt(0.01)
	if weak >= strong {
		t.Errorf("RMSE at eps=10 (%v) should beat eps=0.01 (%v)", weak, strong)
	}
}

func TestBudgetEnforced(t *testing.T) {
	pkts := testTrace(t)
	q, _ := core.NewQueryable(pkts, 0.05, noise.NewSeededSource(1, 1))
	if _, err := PrivateLengthCDF(q, 0.1, LengthBuckets(8)); err == nil {
		t.Fatal("over-budget CDF accepted")
	}
}

// TestScaleMillionPackets exercises the full Fig 2 pipeline at ~1M
// packets — closer to the paper's 7M-packet Hotspot — verifying that
// accuracy improves with scale and that the pipeline stays fast enough
// for interactive use. Skipped under -short.
func TestScaleMillionPackets(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 35000
	cfg.Hosts = 2000
	cfg.Servers = 400
	cfg.BackgroundTotal = 100000
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	pkts, _ := tracegen.Hotspot(cfg)
	if len(pkts) < 900_000 {
		t.Fatalf("only %d packets generated", len(pkts))
	}
	buckets := LengthBuckets(8)
	exact := ExactLengthCDF(pkts, buckets)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(91, 92))
	private, err := PrivateLengthCDF(q, 0.1, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	// At ~1M packets the relative error approaches the paper's 0.01%.
	if rmse > 0.001 {
		t.Errorf("RMSE %v at 1M packets, want < 0.1%%", rmse)
	}
}
