// Package packetdist reproduces the paper's §5.1.1 packet-level
// analysis: differentially-private CDFs of packet lengths and
// destination ports (Figure 2). Both are instances of the toolkit's
// partition-based CDF2 estimator — the method the paper uses for its
// experiments — so the privacy cost of each full-resolution CDF is a
// single ε.
package packetdist

import (
	"dptrace/internal/core"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// LengthBuckets returns the bucket edges Figure 2(a) plots: every
// `step` bytes up to 1520 (past the 1492 MTU spike).
func LengthBuckets(step int64) []int64 {
	return toolkit.LinearBuckets(0, step, int(1520/step))
}

// PortBuckets returns bucket edges covering the full port range at the
// given step, as in Figure 2(b).
func PortBuckets(step int64) []int64 {
	return toolkit.LinearBuckets(0, step, int(65536/step))
}

// PrivateLengthCDF measures the packet-length CDF at privacy level
// epsilon (total — CDF2's cost is resolution-independent).
func PrivateLengthCDF(q *core.Queryable[trace.Packet], epsilon float64, buckets []int64) ([]float64, error) {
	return toolkit.CDF2(q, epsilon, func(p trace.Packet) int64 { return int64(p.Len) }, buckets)
}

// PrivatePortCDF measures the destination-port CDF at privacy level
// epsilon.
func PrivatePortCDF(q *core.Queryable[trace.Packet], epsilon float64, buckets []int64) ([]float64, error) {
	return toolkit.CDF2(q, epsilon, func(p trace.Packet) int64 { return int64(p.DstPort) }, buckets)
}

// ExactLengthCDF is the noise-free baseline of PrivateLengthCDF.
func ExactLengthCDF(packets []trace.Packet, buckets []int64) []float64 {
	return exactCDF(packets, buckets, func(p trace.Packet) int64 { return int64(p.Len) })
}

// ExactPortCDF is the noise-free baseline of PrivatePortCDF.
func ExactPortCDF(packets []trace.Packet, buckets []int64) []float64 {
	return exactCDF(packets, buckets, func(p trace.Packet) int64 { return int64(p.DstPort) })
}

// exactCDF counts each value into its bucket, then accumulates — the
// same semantics as CDF2 without noise.
func exactCDF(packets []trace.Packet, buckets []int64, value func(trace.Packet) int64) []float64 {
	out := make([]float64, len(buckets))
	freq := make([]float64, len(buckets))
	for _, p := range packets {
		v := value(p)
		idx := searchBucket(v, buckets)
		if idx >= 0 {
			freq[idx]++
		}
	}
	run := 0.0
	for i, f := range freq {
		run += f
		out[i] = run
	}
	return out
}

func searchBucket(v int64, buckets []int64) int {
	lo, hi := 0, len(buckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < buckets[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(buckets) {
		return -1
	}
	return lo
}

// RMSE computes the paper's relative error metric between a private
// and a noise-free CDF.
func RMSE(private, exact []float64) (float64, error) {
	return stats.RMSE(private, exact)
}
