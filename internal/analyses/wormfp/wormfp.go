// Package wormfp reproduces the paper's §5.1.2 analysis: automated
// worm fingerprinting (Singh et al., OSDI'04) under differential
// privacy. The analysis hunts for payload strings that are both
// frequent and "dispersed" — originated by and destined to many
// distinct IP addresses.
//
// The private pipeline follows the paper exactly:
//
//  1. Count the suspicious payload groups (GroupBy payload, filter by
//     distinct-source and distinct-destination thresholds, noisy
//     count) — the "2739 ± 10" style headline number.
//  2. Spell out candidate payloads with the toolkit's frequent-string
//     search, which only reveals strings backed by many records.
//  3. Evaluate each candidate's dispersion: Partition the trace by
//     candidate payload and take noisy distinct-source and
//     distinct-destination counts per part.
package wormfp

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Config parameterizes the private worm-fingerprinting run.
type Config struct {
	// SrcThreshold and DstThreshold are the dispersion requirements:
	// a payload is suspicious when its distinct sources and distinct
	// destinations both exceed them. The paper evaluates 50/50 (and 5
	// for the group-count example).
	SrcThreshold float64
	DstThreshold float64
	// PayloadLength is the string length the frequent-string search
	// spells out. Candidate payloads are prefixes of this length.
	PayloadLength int
	// EpsilonPerRound is spent per frequent-string round.
	EpsilonPerRound float64
	// FrequencyThreshold is the minimum noisy count for a payload
	// prefix to stay a candidate.
	FrequencyThreshold float64
	// MaxCandidates caps the frequent-string search's survivors per
	// round (see toolkit.FrequentStringsConfig); 0 means a default of
	// 128.
	MaxCandidates int
	// EpsilonEval is spent per dispersion measurement on each
	// candidate (two measurements per candidate: sources and
	// destinations; Partition max-accounting keeps the total at
	// 2·EpsilonEval).
	EpsilonEval float64
}

// Fingerprint is one candidate payload with its noisy dispersion.
type Fingerprint struct {
	Payload    []byte
	Count      float64 // noisy occurrence count from the search
	SrcCount   float64 // noisy distinct sources
	DstCount   float64 // noisy distinct destinations
	Suspicious bool    // both dispersion thresholds exceeded
}

// SuspiciousGroupCount reproduces the paper's first query: the noisy
// number of payload groups whose dispersion exceeds both thresholds.
// The groups stay behind the privacy curtain; only their count leaves.
// Cost: 2·epsilon (GroupBy doubles sensitivity).
func SuspiciousGroupCount(q *core.Queryable[trace.Packet], epsilon float64, srcThr, dstThr int) (float64, error) {
	groups := core.GroupBy(payloadPackets(q), func(p trace.Packet) string { return string(p.Payload) })
	suspicious := groups.Where(func(g core.Group[string, trace.Packet]) bool {
		return distinctSrcs(g.Items) > srcThr && distinctDsts(g.Items) > dstThr
	})
	return suspicious.NoisyCount(epsilon)
}

// Run executes the full private pipeline and returns every candidate
// payload the frequent-string search surfaced, with noisy dispersion
// measurements and the suspicion verdict, sorted by decreasing count.
func Run(q *core.Queryable[trace.Packet], cfg Config) ([]Fingerprint, error) {
	payloads := core.Select(payloadPackets(q), func(p trace.Packet) []byte { return p.Payload })
	maxCands := cfg.MaxCandidates
	if maxCands <= 0 {
		maxCands = 128
	}
	candidates, err := toolkit.FrequentStrings(payloads, toolkit.FrequentStringsConfig{
		Length:          cfg.PayloadLength,
		EpsilonPerRound: cfg.EpsilonPerRound,
		Threshold:       cfg.FrequencyThreshold,
		MaxCandidates:   maxCands,
	})
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	// Partition the trace by candidate payload prefix and measure each
	// part's dispersion. One partition; each part pays 2·EpsilonEval.
	keys := make([]string, len(candidates))
	for i, c := range candidates {
		keys[i] = string(c.Value)
	}
	prefixLen := cfg.PayloadLength
	parts := core.Partition(payloadPackets(q), keys, func(p trace.Packet) string {
		if len(p.Payload) < prefixLen {
			return ""
		}
		return string(p.Payload[:prefixLen])
	})
	out := make([]Fingerprint, 0, len(candidates))
	for i, c := range candidates {
		part := parts[keys[i]]
		srcs := core.Distinct(core.Select(part, func(p trace.Packet) trace.IPv4 { return p.SrcIP }),
			func(ip trace.IPv4) trace.IPv4 { return ip })
		srcCount, err := srcs.NoisyCount(cfg.EpsilonEval)
		if err != nil {
			return nil, err
		}
		dsts := core.Distinct(core.Select(part, func(p trace.Packet) trace.IPv4 { return p.DstIP }),
			func(ip trace.IPv4) trace.IPv4 { return ip })
		dstCount, err := dsts.NoisyCount(cfg.EpsilonEval)
		if err != nil {
			return nil, err
		}
		out = append(out, Fingerprint{
			Payload:    c.Value,
			Count:      c.Count,
			SrcCount:   srcCount,
			DstCount:   dstCount,
			Suspicious: srcCount > cfg.SrcThreshold && dstCount > cfg.DstThreshold,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out, nil
}

// ExactFingerprint is the noise-free ground truth for one payload.
type ExactFingerprint struct {
	Payload  string
	Count    int
	SrcCount int
	DstCount int
}

// Exact computes, without any privacy machinery, the payloads whose
// dispersion exceeds both thresholds — the baseline the paper's
// recovered-payload fractions (7/24/29 of 29) are measured against.
// Payloads are truncated to prefixLen to match the private search's
// candidates. Results are sorted by decreasing count.
func Exact(packets []trace.Packet, prefixLen, srcThr, dstThr int) []ExactFingerprint {
	type agg struct {
		count int
		srcs  map[trace.IPv4]struct{}
		dsts  map[trace.IPv4]struct{}
	}
	byPayload := make(map[string]*agg)
	for i := range packets {
		p := &packets[i]
		if len(p.Payload) < prefixLen {
			continue
		}
		key := string(p.Payload[:prefixLen])
		a, ok := byPayload[key]
		if !ok {
			a = &agg{srcs: map[trace.IPv4]struct{}{}, dsts: map[trace.IPv4]struct{}{}}
			byPayload[key] = a
		}
		a.count++
		a.srcs[p.SrcIP] = struct{}{}
		a.dsts[p.DstIP] = struct{}{}
	}
	var out []ExactFingerprint
	for key, a := range byPayload {
		if len(a.srcs) > srcThr && len(a.dsts) > dstThr {
			out = append(out, ExactFingerprint{
				Payload: key, Count: a.count,
				SrcCount: len(a.srcs), DstCount: len(a.dsts),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Payload < out[j].Payload
	})
	return out
}

func payloadPackets(q *core.Queryable[trace.Packet]) *core.Queryable[trace.Packet] {
	return q.Where(func(p trace.Packet) bool { return len(p.Payload) > 0 })
}

func distinctSrcs(pkts []trace.Packet) int {
	seen := make(map[trace.IPv4]struct{}, len(pkts))
	for i := range pkts {
		seen[pkts[i].SrcIP] = struct{}{}
	}
	return len(seen)
}

func distinctDsts(pkts []trace.Packet) int {
	seen := make(map[trace.IPv4]struct{}, len(pkts))
	for i := range pkts {
		seen[pkts[i].DstIP] = struct{}{}
	}
	return len(seen)
}
