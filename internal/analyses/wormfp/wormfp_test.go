package wormfp

import (
	"math"
	"strings"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func wormTrace(t *testing.T) ([]trace.Packet, *tracegen.HotspotTruth, tracegen.HotspotConfig) {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 300
	cfg.Hosts = 80
	cfg.Servers = 20
	cfg.Worms = 6
	cfg.WormDispersion = 25
	cfg.LowDispersionPayloads = 3
	cfg.BackgroundStrings = 20
	cfg.BackgroundTotal = 4000
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	cfg.Duration = 300
	pkts, truth := tracegen.Hotspot(cfg)
	return pkts, truth, cfg
}

func TestExactFindsAllWorms(t *testing.T) {
	pkts, truth, cfg := wormTrace(t)
	got := Exact(pkts, 8, cfg.WormDispersion-1, cfg.WormDispersion-1)
	wormPrefixes := make(map[string]bool)
	for _, pt := range truth.Payloads {
		if pt.IsWorm {
			wormPrefixes[pt.Payload[:8]] = true
		}
	}
	found := 0
	for _, fp := range got {
		if wormPrefixes[fp.Payload] {
			found++
		}
	}
	if found != cfg.Worms {
		t.Fatalf("exact analysis found %d/%d worms: %+v", found, cfg.Worms, got)
	}
	// Low-dispersion decoys must NOT appear.
	for _, fp := range got {
		if strings.HasPrefix(fp.Payload, "BULK") {
			t.Errorf("low-dispersion payload %q flagged", fp.Payload)
		}
	}
}

func TestPrivateRecoversWormsAtWeakPrivacy(t *testing.T) {
	pkts, _, cfg := wormTrace(t)
	exact := Exact(pkts, 8, cfg.WormDispersion-1, cfg.WormDispersion-1)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(5, 6))
	got, err := Run(q, Config{
		SrcThreshold:       float64(cfg.WormDispersion - 1),
		DstThreshold:       float64(cfg.WormDispersion - 1),
		PayloadLength:      8,
		EpsilonPerRound:    10, // weak privacy: should recover everything
		FrequencyThreshold: 30,
		EpsilonEval:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	suspicious := make(map[string]bool)
	for _, fp := range got {
		if fp.Suspicious {
			suspicious[string(fp.Payload)] = true
		}
	}
	missed := 0
	for _, e := range exact {
		if !suspicious[e.Payload] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("weak privacy missed %d/%d true fingerprints", missed, len(exact))
	}
}

func TestPrivateMissesMoreAtStrongPrivacy(t *testing.T) {
	pkts, _, cfg := wormTrace(t)
	exact := Exact(pkts, 8, cfg.WormDispersion-1, cfg.WormDispersion-1)
	recovered := func(eps float64, seed uint64) int {
		q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(seed, seed+1))
		got, err := Run(q, Config{
			SrcThreshold:       float64(cfg.WormDispersion - 1),
			DstThreshold:       float64(cfg.WormDispersion - 1),
			PayloadLength:      8,
			EpsilonPerRound:    eps,
			FrequencyThreshold: 60,
			EpsilonEval:        eps,
		})
		if err != nil {
			t.Fatal(err)
		}
		exactSet := make(map[string]bool)
		for _, e := range exact {
			exactSet[e.Payload] = true
		}
		n := 0
		for _, fp := range got {
			if fp.Suspicious && exactSet[string(fp.Payload)] {
				n++
			}
		}
		return n
	}
	// Average over seeds: strong privacy recovers no more than weak.
	var strong, weak int
	for seed := uint64(0); seed < 3; seed++ {
		strong += recovered(0.05, 10+seed)
		weak += recovered(10, 20+seed)
	}
	if strong > weak {
		t.Errorf("recovered %d at eps=0.05 but %d at eps=10", strong, weak)
	}
	if weak < 3*len(exact)*8/10 {
		t.Errorf("weak privacy recovered only %d/%d", weak, 3*len(exact))
	}
}

func TestSuspiciousGroupCount(t *testing.T) {
	pkts, _, cfg := wormTrace(t)
	exact := Exact(pkts, 8, cfg.WormDispersion-1, cfg.WormDispersion-1)
	// The noisy group count uses full payloads, not prefixes; worm
	// payloads are distinct at full length too.
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(7, 8))
	got, err := SuspiciousGroupCount(q, 1.0, cfg.WormDispersion-1, cfg.WormDispersion-1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(len(exact))) > 15 {
		t.Errorf("noisy group count %v, want ~%d", got, len(exact))
	}
	// GroupBy doubles the charge.
	if spent := root.Spent(); math.Abs(spent-2.0) > 1e-9 {
		t.Errorf("spent %v, want 2.0", spent)
	}
}

func TestRunEmptyCandidates(t *testing.T) {
	pkts, _, _ := wormTrace(t)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(9, 10))
	got, err := Run(q, Config{
		SrcThreshold: 10, DstThreshold: 10, PayloadLength: 8,
		EpsilonPerRound: 1.0, FrequencyThreshold: 1e9, EpsilonEval: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("absurd threshold yielded %d candidates", len(got))
	}
}

func TestExactEmptyTrace(t *testing.T) {
	if got := Exact(nil, 8, 5, 5); len(got) != 0 {
		t.Fatalf("empty trace yielded %v", got)
	}
}
