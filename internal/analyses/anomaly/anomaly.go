// Package anomaly reproduces the paper's §5.3.1 analysis:
// network-wide traffic anomaly detection (Lakhina, Crovella & Diot,
// SIGCOMM'04) under differential privacy. The link×time traffic
// matrix is extracted with noisy counts — a nested Partition whose
// total privacy cost is a single ε thanks to max-accounting — and the
// "mathematically sophisticated" part (PCA, residual norms) runs on
// the already-noised aggregate, free of further privacy charges.
package anomaly

import (
	"fmt"

	"dptrace/internal/core"
	"dptrace/internal/linalg"
	"dptrace/internal/trace"
)

// PrivateLoadMatrix measures the time×link packet-count matrix at
// privacy level epsilon: Partition by link, then each link's records
// by time bin, and count each cell. The paper's code fragment is
// exactly this nested partition; its total privacy cost is epsilon
// because sibling cells are disjoint.
//
// Rows are time bins, columns are links — the orientation Lakhina et
// al. apply PCA to. Negative noisy counts are kept (clamping would
// bias the spectrum; PCA is robust to the small negatives).
func PrivateLoadMatrix(q *core.Queryable[trace.LinkSample], links, bins int, epsilon float64) (*linalg.Matrix, error) {
	if links <= 0 || bins <= 0 {
		return nil, fmt.Errorf("anomaly: need positive dimensions, got %d links x %d bins", links, bins)
	}
	linkKeys := make([]int32, links)
	for i := range linkKeys {
		linkKeys[i] = int32(i)
	}
	binKeys := make([]int32, bins)
	for i := range binKeys {
		binKeys[i] = int32(i)
	}
	m := linalg.NewMatrix(bins, links)
	rows := core.Partition(q, linkKeys, func(s trace.LinkSample) int32 { return s.Link })
	for l, lk := range linkKeys {
		cells := core.Partition(rows[lk], binKeys, func(s trace.LinkSample) int32 { return s.Bin })
		for b, bk := range binKeys {
			c, err := cells[bk].NoisyCount(epsilon)
			if err != nil {
				return nil, fmt.Errorf("anomaly: cell (link %d, bin %d): %w", l, b, err)
			}
			m.Set(b, l, c)
		}
	}
	return m, nil
}

// ExactLoadMatrix builds the noise-free time×link matrix from the
// generator's ground-truth counts (counts[link][bin]).
func ExactLoadMatrix(counts [][]int) *linalg.Matrix {
	links := len(counts)
	if links == 0 {
		return linalg.NewMatrix(0, 0)
	}
	bins := len(counts[0])
	m := linalg.NewMatrix(bins, links)
	for l := 0; l < links; l++ {
		for b := 0; b < bins; b++ {
			m.Set(b, l, float64(counts[l][b]))
		}
	}
	return m
}

// ResidualNorms runs the Lakhina pipeline on a load matrix: the first
// k principal components model "normal" traffic; each time bin's
// residual norm is its volume of anomalous traffic — the y-axis of
// Figure 4. Column means are removed first, as PCA requires. The
// input matrix is not modified.
func ResidualNorms(m *linalg.Matrix, k int) []float64 {
	centered := m.Clone()
	centered.CenterColumns()
	pca := linalg.ComputePCA(centered, k, 60)
	return pca.ResidualNorms(centered)
}

// TopAnomalies returns the indices of the n time bins with the largest
// residual norms, descending.
func TopAnomalies(norms []float64, n int) []int {
	idx := make([]int, len(norms))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is small.
	if n > len(idx) {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if norms[idx[j]] > norms[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}
