package anomaly

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func ispConfig() tracegen.IspConfig {
	return tracegen.IspConfig{
		Seed: 42, Links: 60, Bins: 192, MeanPacketsPerBin: 300, NoiseFrac: 0.05,
		Anomalies: []tracegen.AnomalySpec{
			{StartBin: 100, Duration: 4, Links: []int{5, 6, 7}, Factor: 6},
		},
	}
}

func TestExactResidualsFlagInjectedAnomaly(t *testing.T) {
	cfg := ispConfig()
	_, truth := tracegen.IspTraffic(cfg)
	m := ExactLoadMatrix(truth.Counts)
	norms := ResidualNorms(m, 2)
	if len(norms) != cfg.Bins {
		t.Fatalf("got %d norms, want %d", len(norms), cfg.Bins)
	}
	top := TopAnomalies(norms, 4)
	anomalous := map[int]bool{100: true, 101: true, 102: true, 103: true}
	hits := 0
	for _, b := range top {
		if anomalous[b] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("top-4 residual bins %v miss the injected anomaly window", top)
	}
}

func TestPrivateMatrixCloseToExact(t *testing.T) {
	cfg := ispConfig()
	samples, truth := tracegen.IspTraffic(cfg)
	q, root := core.NewQueryable(samples, math.Inf(1), noise.NewSeededSource(31, 32))
	private, err := PrivateLoadMatrix(q, cfg.Links, cfg.Bins, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactLoadMatrix(truth.Counts)
	var maxDiff float64
	for i := range private.Data {
		if d := math.Abs(private.Data[i] - exact.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	// Laplace(1/0.1): |noise| beyond ~150 is astronomically unlikely.
	if maxDiff > 200 {
		t.Errorf("max cell error %v too large", maxDiff)
	}
	// Nested partition: total cost one epsilon.
	if spent := root.Spent(); math.Abs(spent-0.1) > 1e-9 {
		t.Errorf("spent %v, want 0.1", spent)
	}
}

// TestPrivateResidualsMatchExact is the Fig 4 claim: the anomaly curve
// under strong privacy is nearly indistinguishable from noise-free.
func TestPrivateResidualsMatchExact(t *testing.T) {
	cfg := ispConfig()
	samples, truth := tracegen.IspTraffic(cfg)
	q, _ := core.NewQueryable(samples, math.Inf(1), noise.NewSeededSource(33, 34))
	private, err := PrivateLoadMatrix(q, cfg.Links, cfg.Bins, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactLoadMatrix(truth.Counts)
	pNorms := ResidualNorms(private, 2)
	eNorms := ResidualNorms(exact, 2)
	rmse, err := stats.RMSE(pNorms, eNorms)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 0.17% on its huge trace; ours is smaller so
	// tolerate more, but the curves must still track closely.
	if rmse > 0.30 {
		t.Errorf("residual norm RMSE %v, want small", rmse)
	}
	// The injected anomaly must still stand out privately.
	top := TopAnomalies(pNorms, 4)
	anomalous := map[int]bool{100: true, 101: true, 102: true, 103: true}
	hits := 0
	for _, b := range top {
		if anomalous[b] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("private top-4 bins %v miss the anomaly", top)
	}
}

func TestPrivateLoadMatrixRejectsBadDims(t *testing.T) {
	q, _ := core.NewQueryable([]trace.LinkSample{}, 1, noise.NewSeededSource(1, 1))
	if _, err := PrivateLoadMatrix(q, 0, 5, 1); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := PrivateLoadMatrix(q, 5, 0, 1); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestTopAnomaliesOrdering(t *testing.T) {
	norms := []float64{1, 9, 3, 7, 5}
	top := TopAnomalies(norms, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopAnomalies = %v, want %v", top, want)
		}
	}
	if got := TopAnomalies(norms, 99); len(got) != len(norms) {
		t.Fatalf("n clamp failed: %v", got)
	}
}

func TestExactLoadMatrixEmpty(t *testing.T) {
	m := ExactLoadMatrix(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty matrix %dx%d", m.Rows, m.Cols)
	}
}
