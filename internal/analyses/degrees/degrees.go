// Package degrees implements the graph-level statistics the paper's
// §5.3 opens with as the "relatively easy to produce" cases:
// distributions of in- and out-degrees of hosts in the communication
// graph, optionally restricted to ports or protocols (restrict with
// Where before calling). Degree here is the number of distinct peers,
// the standard communication-graph degree.
//
// Contrast with the diameter or the maximum degree, which the same
// paragraph notes are "difficult or impossible to compute because
// they rely on a handful of records" — exactly the fragile statistics
// differential privacy refuses to answer accurately.
package degrees

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// OutDegrees derives, behind the curtain, each source host's number of
// distinct destinations. Aggregations cost 2× (GroupBy).
func OutDegrees(q *core.Queryable[trace.Packet]) *core.Queryable[int64] {
	groups := core.GroupBy(q, func(p trace.Packet) trace.IPv4 { return p.SrcIP })
	return core.Select(groups, func(g core.Group[trace.IPv4, trace.Packet]) int64 {
		return distinctPeers(g.Items, false)
	})
}

// InDegrees derives each destination host's number of distinct
// sources. Aggregations cost 2× (GroupBy).
func InDegrees(q *core.Queryable[trace.Packet]) *core.Queryable[int64] {
	groups := core.GroupBy(q, func(p trace.Packet) trace.IPv4 { return p.DstIP })
	return core.Select(groups, func(g core.Group[trace.IPv4, trace.Packet]) int64 {
		return distinctPeers(g.Items, true)
	})
}

// PrivateOutDegreeCDF measures the out-degree distribution at privacy
// level epsilon (total cost 2·epsilon).
func PrivateOutDegreeCDF(q *core.Queryable[trace.Packet], epsilon float64, buckets []int64) ([]float64, error) {
	return toolkit.CDF2(OutDegrees(q), epsilon, func(v int64) int64 { return v }, buckets)
}

// PrivateInDegreeCDF measures the in-degree distribution at privacy
// level epsilon (total cost 2·epsilon).
func PrivateInDegreeCDF(q *core.Queryable[trace.Packet], epsilon float64, buckets []int64) ([]float64, error) {
	return toolkit.CDF2(InDegrees(q), epsilon, func(v int64) int64 { return v }, buckets)
}

// ExactOutDegrees returns the noise-free out-degrees, sorted.
func ExactOutDegrees(packets []trace.Packet) []int64 {
	return exactDegrees(packets, false)
}

// ExactInDegrees returns the noise-free in-degrees, sorted.
func ExactInDegrees(packets []trace.Packet) []int64 {
	return exactDegrees(packets, true)
}

func exactDegrees(packets []trace.Packet, in bool) []int64 {
	peers := make(map[trace.IPv4]map[trace.IPv4]struct{})
	for i := range packets {
		node, peer := packets[i].SrcIP, packets[i].DstIP
		if in {
			node, peer = peer, node
		}
		if peers[node] == nil {
			peers[node] = make(map[trace.IPv4]struct{})
		}
		peers[node][peer] = struct{}{}
	}
	out := make([]int64, 0, len(peers))
	for _, set := range peers {
		out = append(out, int64(len(set)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func distinctPeers(pkts []trace.Packet, in bool) int64 {
	seen := make(map[trace.IPv4]struct{}, len(pkts))
	for i := range pkts {
		peer := pkts[i].DstIP
		if in {
			peer = pkts[i].SrcIP
		}
		seen[peer] = struct{}{}
	}
	return int64(len(seen))
}
