package degrees

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func degreeTrace(t *testing.T) []trace.Packet {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 800
	cfg.Hosts = 200
	cfg.Servers = 50
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	pkts, _ := tracegen.Hotspot(cfg)
	return pkts
}

func exactCDF(values []int64, buckets []int64) []float64 {
	freq := make([]float64, len(buckets))
	for _, v := range values {
		for i, edge := range buckets {
			if v < edge {
				freq[i]++
				break
			}
		}
	}
	out := make([]float64, len(buckets))
	run := 0.0
	for i, f := range freq {
		run += f
		out[i] = run
	}
	return out
}

func TestExactDegreesHandCrafted(t *testing.T) {
	pkts := []trace.Packet{
		{SrcIP: 1, DstIP: 10}, {SrcIP: 1, DstIP: 11}, {SrcIP: 1, DstIP: 10}, // out-degree 2
		{SrcIP: 2, DstIP: 10}, // out-degree 1
	}
	out := ExactOutDegrees(pkts)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("out-degrees %v, want [1 2]", out)
	}
	in := ExactInDegrees(pkts)
	// Node 10 has in-degree 2 (from 1 and 2), node 11 has 1.
	if len(in) != 2 || in[0] != 1 || in[1] != 2 {
		t.Fatalf("in-degrees %v, want [1 2]", in)
	}
}

func TestPrivateOutDegreeCDFMatchesExact(t *testing.T) {
	pkts := degreeTrace(t)
	buckets := toolkit.LinearBuckets(0, 2, 32)
	exact := exactCDF(ExactOutDegrees(pkts), buckets)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(81, 82))
	private, err := PrivateOutDegreeCDF(q, 0.1, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := stats.RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.5 {
		t.Errorf("out-degree CDF RMSE %v too high", rmse)
	}
	if spent := root.Spent(); math.Abs(spent-0.2) > 1e-9 {
		t.Errorf("spent %v, want 0.2 (GroupBy doubles)", spent)
	}
}

func TestPrivateInDegreeCDFMatchesExact(t *testing.T) {
	pkts := degreeTrace(t)
	buckets := toolkit.LinearBuckets(0, 8, 32)
	exact := exactCDF(ExactInDegrees(pkts), buckets)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(83, 84))
	private, err := PrivateInDegreeCDF(q, 1.0, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := stats.RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.3 {
		t.Errorf("in-degree CDF RMSE %v too high", rmse)
	}
}

// TestPortRestrictedDegrees: the §5.3 phrasing "restricted to various
// ports" is a Where before the degree derivation.
func TestPortRestrictedDegrees(t *testing.T) {
	pkts := degreeTrace(t)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(85, 86))
	web := q.Where(func(p trace.Packet) bool { return p.DstPort == 80 })
	degs := OutDegrees(web)
	c, err := degs.NoisyCount(100)
	if err != nil {
		t.Fatal(err)
	}
	// Only hosts that touched port 80 appear.
	webHosts := make(map[trace.IPv4]bool)
	for i := range pkts {
		if pkts[i].DstPort == 80 {
			webHosts[pkts[i].SrcIP] = true
		}
	}
	if math.Abs(c-float64(len(webHosts))) > 3 {
		t.Errorf("restricted degree count ~%v, want ~%d", c, len(webHosts))
	}
}

// TestMaxDegreeIsFragile demonstrates the §5.3 negative claim: the
// maximum degree depends on a handful of records, so its noisy
// estimate at strong privacy is unreliable — while the CDF body is
// fine. We measure the max via a high quantile of the noisy degrees.
func TestMaxDegreeIsFragile(t *testing.T) {
	pkts := degreeTrace(t)
	exact := ExactOutDegrees(pkts)
	trueMax := float64(exact[len(exact)-1])
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(87, 88))
	degs := OutDegrees(q)
	// The exponential-mechanism "max" (order statistic at 1.0) at
	// strong privacy lands on whatever value has enough mass near the
	// top — typically NOT the true maximum.
	var devSum float64
	const runs = 20
	for i := 0; i < runs; i++ {
		v, err := core.NoisyOrderStatistic(degs, 0.1, 1.0, func(d int64) float64 { return float64(d) })
		if err != nil {
			t.Fatal(err)
		}
		devSum += math.Abs(v - trueMax)
	}
	medianDeg := float64(exact[len(exact)/2])
	if devSum/runs < 0.01*trueMax && trueMax > medianDeg*1.5 {
		t.Logf("note: noisy max unexpectedly accurate (deviation %v)", devSum/runs)
	}
	// No hard assertion on inaccuracy (data-dependent); the test
	// documents the behaviour and guards that the call path works.
}
