package flowcdf

import (
	"errors"
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
)

// synthFlows builds nFlows flows where flow i carries i+1 packets, so
// the flow-size distribution is exactly 1..nFlows.
func synthFlows(nFlows int) []trace.Packet {
	var out []trace.Packet
	for i := 0; i < nFlows; i++ {
		p := trace.Packet{
			SrcIP:   trace.IPv4(0x0a000000 + uint32(i)),
			DstIP:   0x0a000001,
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   trace.ProtoTCP,
			Len:     512,
		}
		for j := 0; j <= i; j++ {
			out = append(out, p)
		}
	}
	return out
}

func TestExactFlowSizeCDF(t *testing.T) {
	packets := synthFlows(100) // sizes 1..100
	got := ExactFlowSizeCDF(packets, []float64{0.25, 0.5, 0.99})
	// Sorted sizes are 1..100; rank int(f*100) indexes size f*100+1.
	want := []float64{26, 51, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("exact[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPrivateFlowSizeCDFAccuracyAndCharge(t *testing.T) {
	packets := synthFlows(400)
	fractions := Fractions(9)
	root := core.NewRootAgent(math.Inf(1))
	q := core.NewQueryableFor(packets, root, noise.NewSeededSource(5, 7))

	const perProbe = 10.0
	private, err := PrivateFlowSizeCDF(q, perProbe, 0.001, fractions)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactFlowSizeCDF(packets, fractions)
	rmse, err := RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.05 {
		t.Errorf("relative RMSE %v at eps=%v, want < 0.05 (private %v, exact %v)",
			rmse, perProbe, private, exact)
	}

	// GroupBy doubles sensitivity: K probes at ε each charge 2·K·ε.
	wantSpent := 2 * perProbe * float64(len(fractions))
	if got := root.Spent(); math.Abs(got-wantSpent) > 1e-9 {
		t.Errorf("spent %v, want %v", got, wantSpent)
	}
}

func TestPrivateFlowSizeCDFRefusal(t *testing.T) {
	packets := synthFlows(10)
	root := core.NewRootAgent(1.0)
	q := core.NewQueryableFor(packets, root, noise.NewSeededSource(5, 7))
	// One probe at ε=1 charges 2.0 > budget 1.0: refused, nothing spent.
	if _, err := PrivateFlowSizeCDF(q, 1.0, 0, Fractions(1)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if got := root.Spent(); got != 0 {
		t.Errorf("refused probe spent %v, want 0", got)
	}
}
