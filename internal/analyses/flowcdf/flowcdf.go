// Package flowcdf measures the distribution of flow sizes — packets
// per src→dst host conversation — as a differentially-private CDF
// built from noisy quantiles. Where the toolkit's CDF estimators fix a
// value grid and measure noisy counts per bucket, this analysis
// inverts the axes: it fixes a grid of rank fractions and asks the
// engine's sketch-backed NoisyQuantile for the flow size at each rank.
// That suits heavy-tailed flow-size distributions, where a fixed value
// grid wastes resolution on the sparse tail; rank-spaced probes adapt
// to wherever the mass is.
//
// The pipeline is GroupBy(host pair) → count per group → quantile,
// executed on the engine's fused streaming path: the per-group size
// projection fuses into the one-pass sketch build, with no
// intermediate size slice. Sensitivity: GroupBy doubles sensitivity
// (one packet can leave one conversation and join another), and each
// quantile is an exponential-mechanism release of sensitivity 1, so a
// K-point CDF at per-probe ε costs 2·K·ε of the (packet-principal)
// budget.
package flowcdf

import (
	"fmt"
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/stats"
	"dptrace/internal/trace"
)

// FlowKey identifies a conversation: the directed src→dst host pair.
type FlowKey struct {
	Src, Dst trace.IPv4
}

func keyOf(p trace.Packet) FlowKey {
	return FlowKey{Src: p.SrcIP, Dst: p.DstIP}
}

// Fractions returns k rank fractions evenly spaced on (0, 1):
// 1/(k+1), 2/(k+1), …, k/(k+1) — the probe grid for a k-point CDF.
func Fractions(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(i+1) / float64(k+1)
	}
	return out
}

// TailFractions is a probe grid weighted toward the upper tail, where
// heavy-tailed flow-size distributions carry their information.
func TailFractions() []float64 {
	return []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}
}

// PrivateFlowSizeCDF returns the noisy flow-size quantile at each rank
// fraction, spending epsilonPerProbe on each (2× that in sensitivity-
// adjusted charge, from the GroupBy). sketchEps is the rank-accuracy
// target of the underlying mergeable summary (0 = engine default).
func PrivateFlowSizeCDF(q *core.Queryable[trace.Packet], epsilonPerProbe, sketchEps float64, fractions []float64) ([]float64, error) {
	grouped := core.GroupBy(q, keyOf)
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		sizes := core.StreamSelect(grouped.Stream(),
			func(g core.Group[FlowKey, trace.Packet]) float64 { return float64(len(g.Items)) })
		v, err := core.StreamNoisyQuantile(sizes, epsilonPerProbe, f, sketchEps,
			func(s float64) float64 { return s })
		if err != nil {
			return nil, fmt.Errorf("flowcdf: probe %d (fraction %v): %w", i, f, err)
		}
		out[i] = v
	}
	return out, nil
}

// ExactFlowSizeCDF is the noise-free baseline: per-flow packet counts,
// read at the same rank fractions with the same lower-rank convention
// the quantile sketch uses (value at rank ⌈f·n⌉).
func ExactFlowSizeCDF(packets []trace.Packet, fractions []float64) []float64 {
	counts := map[FlowKey]int{}
	for _, p := range packets {
		counts[keyOf(p)]++
	}
	sizes := make([]float64, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, float64(n))
	}
	sort.Float64s(sizes)
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		if len(sizes) == 0 {
			continue
		}
		rank := int(f * float64(len(sizes)))
		if rank >= len(sizes) {
			rank = len(sizes) - 1
		}
		out[i] = sizes[rank]
	}
	return out
}

// RMSE is the relative root-mean-square error between a private curve
// and its exact baseline.
func RMSE(private, exact []float64) (float64, error) {
	return stats.RMSE(private, exact)
}
