package commrules

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func ruleConfig() Config {
	return Config{
		Ports:            []uint16{53, 80, 443, 22, 25},
		WindowUs:         30_000_000, // 30 s windows
		EpsilonPerRound:  1.0,
		SupportThreshold: 20,
		MinUses:          1,
	}
}

func ruleTrace(t *testing.T) []trace.Packet {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 1500
	cfg.Hosts = 300
	cfg.Servers = 60
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	cfg.Duration = 900
	pkts, _ := tracegen.Hotspot(cfg)
	return pkts
}

func findRule(rules []Rule, ant, cons uint16) *Rule {
	for i := range rules {
		if rules[i].Antecedent == ant && rules[i].Consequent == cons {
			return &rules[i]
		}
	}
	return nil
}

// TestExactRulesFindDNSDependency: the generator emits a DNS lookup
// before 80% of web sessions, so "80 => 53" should have high
// confidence while unrelated pairs stay low.
func TestExactRulesFindDNSDependency(t *testing.T) {
	pkts := ruleTrace(t)
	rules := ExactRules(pkts, ruleConfig())
	webDNS := findRule(rules, 80, 53)
	if webDNS == nil {
		t.Fatal("rule 80 => 53 not found")
	}
	if webDNS.Confidence < 0.7 {
		t.Errorf("80 => 53 confidence %v, want high (DNS precedes 80%% of web)", webDNS.Confidence)
	}
	// SSH traffic does not trigger mail: low-confidence or absent.
	if r := findRule(rules, 22, 25); r != nil && r.Confidence > 0.5 {
		t.Errorf("22 => 25 confidence %v, want low", r.Confidence)
	}
}

func TestPrivateRulesMatchExactOrdering(t *testing.T) {
	pkts := ruleTrace(t)
	cfg := ruleConfig()
	exact := ExactRules(pkts, cfg)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(71, 72))
	private, err := PrivateRules(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(private) == 0 {
		t.Fatal("no private rules mined")
	}
	// The DNS-before-web dependency must surface privately too.
	pRule := findRule(private, 80, 53)
	if pRule == nil {
		t.Fatalf("private mining missed 80 => 53 (got %v)", private)
	}
	eRule := findRule(exact, 80, 53)
	// Partitioned support biases confidence DOWN, never up (pair
	// support is split, antecedent support is split less).
	if pRule.Confidence > eRule.Confidence*1.3+0.1 {
		t.Errorf("private confidence %v implausibly above exact %v",
			pRule.Confidence, eRule.Confidence)
	}
	if pRule.Confidence < 0.2 {
		t.Errorf("private confidence %v too diluted to be useful", pRule.Confidence)
	}
	// Budget: two mining rounds at 1.0 through a x2 GroupBy.
	if spent := root.Spent(); math.Abs(spent-4.0) > 1e-9 {
		t.Errorf("spent %v, want 4.0", spent)
	}
}

func TestPrivateRulesBudgetExhaustion(t *testing.T) {
	pkts := ruleTrace(t)
	cfg := ruleConfig()
	q, _ := core.NewQueryable(pkts, 1.0, noise.NewSeededSource(73, 74))
	if _, err := PrivateRules(q, cfg); err == nil {
		t.Fatal("mining within budget 1.0 should fail (needs 4.0)")
	}
}

func TestRulesFromItemsetsConfidenceClamp(t *testing.T) {
	// Noisy supports can make pair > antecedent; confidence clamps at 1.
	ports := []uint16{53, 80}
	mined := []toolkit.ItemsetCount{
		{Items: []int{0}, Count: 50},
		{Items: []int{1}, Count: 100},
		{Items: []int{0, 1}, Count: 60}, // above antecedent 0's support
	}
	rules := rulesFromItemsets(mined, ports)
	r := findRule(rules, 53, 80)
	if r == nil {
		t.Fatal("rule 53 => 80 missing")
	}
	if r.Confidence != 1 {
		t.Errorf("confidence %v, want clamped to 1", r.Confidence)
	}
	r = findRule(rules, 80, 53)
	if r == nil || math.Abs(r.Confidence-0.6) > 1e-9 {
		t.Errorf("80 => 53 confidence = %+v, want 0.6", r)
	}
}
