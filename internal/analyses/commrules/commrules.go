// Package commrules reproduces the analysis the paper's §5.2.3
// mentions reproducing "with a high fidelity" but omits for space:
// Kandula, Chandra & Katabi's communication-rule mining ("What's
// going on? Learning communication rules in edge networks",
// SIGCOMM'08). A communication rule "A ⇒ B" says that a host
// contacting service A in a time window tends to also contact service
// B in that window — DNS-before-web being the canonical example.
//
// The private pipeline builds one basket per (host, time window) of
// the services contacted, mines frequently co-occurring service pairs
// with the toolkit's partitioned-support itemset miner, and scores
// rule confidence from the noisy supports. Partitioned support
// undercounts pairs that co-occur with other frequent services, so
// confidences are conservative — a bias the exact baseline quantifies.
package commrules

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Rule is one mined communication rule with its noisy statistics.
type Rule struct {
	// Antecedent and Consequent are service ports.
	Antecedent, Consequent uint16
	// Support is the noisy number of (host, window) baskets assigned
	// to the pair.
	Support float64
	// Confidence estimates P(consequent | antecedent) from noisy
	// supports.
	Confidence float64
}

// Config parameterizes the mining run.
type Config struct {
	// Ports is the public service vocabulary to mine over.
	Ports []uint16
	// WindowUs is the time window within which co-contacted services
	// count as co-occurring.
	WindowUs int64
	// EpsilonPerRound is the itemset miner's per-round cost (two
	// rounds: singletons and pairs).
	EpsilonPerRound float64
	// SupportThreshold is the minimum noisy support for a service or
	// pair to survive.
	SupportThreshold float64
	// MinUses is the minimum packets a host must send toward a
	// service within a window for it to enter the basket, filtering
	// one-off noise.
	MinUses int
}

// hostWindow keys the basket GroupBy.
type hostWindow struct {
	host   trace.IPv4
	window int64
}

// PrivateRules mines communication rules from a packet trace.
// Total privacy cost: 2 rounds × EpsilonPerRound × 2 (GroupBy).
func PrivateRules(q *core.Queryable[trace.Packet], cfg Config) ([]Rule, error) {
	portIndex := make(map[uint16]int, len(cfg.Ports))
	for i, p := range cfg.Ports {
		portIndex[p] = i
	}
	minUses := cfg.MinUses
	if minUses < 1 {
		minUses = 1
	}
	groups := core.GroupBy(q, func(p trace.Packet) hostWindow {
		return hostWindow{host: p.SrcIP, window: p.Time / cfg.WindowUs}
	})
	baskets := core.Select(groups, func(g core.Group[hostWindow, trace.Packet]) toolkit.Basket {
		uses := make(map[int]int)
		for _, p := range g.Items {
			if idx, ok := portIndex[p.DstPort]; ok {
				uses[idx]++
			}
		}
		items := make([]int, 0, len(uses))
		for idx, n := range uses {
			if n >= minUses {
				items = append(items, idx)
			}
		}
		sort.Ints(items)
		return toolkit.Basket{
			ID:    uint64(g.Key.host)<<20 ^ uint64(g.Key.window),
			Items: items,
		}
	})
	mined, err := toolkit.FrequentItemsets(baskets, len(cfg.Ports), toolkit.FrequentItemsetsConfig{
		MaxSize:         2,
		EpsilonPerRound: cfg.EpsilonPerRound,
		Threshold:       cfg.SupportThreshold,
	})
	if err != nil {
		return nil, err
	}
	return rulesFromItemsets(mined, cfg.Ports), nil
}

// rulesFromItemsets converts singleton and pair supports into directed
// rules with confidence = support(pair)/support(antecedent).
func rulesFromItemsets(mined []toolkit.ItemsetCount, ports []uint16) []Rule {
	singleton := make(map[int]float64)
	for _, ic := range mined {
		if len(ic.Items) == 1 {
			singleton[ic.Items[0]] = ic.Count
		}
	}
	var rules []Rule
	for _, ic := range mined {
		if len(ic.Items) != 2 {
			continue
		}
		a, b := ic.Items[0], ic.Items[1]
		for _, dir := range [][2]int{{a, b}, {b, a}} {
			ant := singleton[dir[0]]
			if ant <= 0 {
				continue
			}
			conf := ic.Count / ant
			if conf > 1 {
				conf = 1
			}
			rules = append(rules, Rule{
				Antecedent: ports[dir[0]], Consequent: ports[dir[1]],
				Support: ic.Count, Confidence: conf,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules
}

// ExactRules computes, without privacy machinery, the true windowed
// co-occurrence rules: support(pair) counts every basket containing
// both services (no partitioning), confidence = support(pair)/
// support(antecedent).
func ExactRules(packets []trace.Packet, cfg Config) []Rule {
	portIndex := make(map[uint16]int, len(cfg.Ports))
	for i, p := range cfg.Ports {
		portIndex[p] = i
	}
	minUses := cfg.MinUses
	if minUses < 1 {
		minUses = 1
	}
	uses := make(map[hostWindow]map[int]int)
	for i := range packets {
		p := &packets[i]
		idx, ok := portIndex[p.DstPort]
		if !ok {
			continue
		}
		k := hostWindow{host: p.SrcIP, window: p.Time / cfg.WindowUs}
		if uses[k] == nil {
			uses[k] = make(map[int]int)
		}
		uses[k][idx]++
	}
	single := make([]float64, len(cfg.Ports))
	pair := make(map[[2]int]float64)
	for _, u := range uses {
		var items []int
		for idx, n := range u {
			if n >= minUses {
				items = append(items, idx)
			}
		}
		sort.Ints(items)
		for i, a := range items {
			single[a]++
			for _, b := range items[i+1:] {
				pair[[2]int{a, b}]++
			}
		}
	}
	var rules []Rule
	for key, support := range pair {
		for _, dir := range [][2]int{{key[0], key[1]}, {key[1], key[0]}} {
			if single[dir[0]] <= 0 {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: cfg.Ports[dir[0]], Consequent: cfg.Ports[dir[1]],
				Support: support, Confidence: support / single[dir[0]],
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules
}
