// Package flowstats reproduces the paper's §5.2.1 flow-level analysis:
// the Swing-style (Vishwanath & Vahdat) flow properties — handshake
// RTT, downstream loss rate, and retransmission timing — measured as
// differentially-private CDFs (Figures 1 and 3).
//
// RTT pairs each TCP SYN with its SYN-ACK through PINQ's bounded Join
// on (addresses, ports, sequence arithmetic). Loss rate groups packets
// by 5-tuple flow and compares distinct sequence numbers to total
// packets. Retransmission delay joins each first transmission with its
// duplicate.
package flowstats

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// handshakeKey is the join key matching a SYN to its SYN-ACK: the
// SYN-ACK acknowledges seq+1 on the reversed 4-tuple.
type handshakeKey struct {
	a, b   trace.IPv4
	pa, pb uint16
	val    uint32
}

// RTTMicros derives, behind the privacy curtain, one RTT sample
// (microseconds) per completed handshake: Join SYNs with SYN-ACKs
// where ack = seq+1. The result is a protected dataset ready for a CDF
// or other aggregation; the Join itself costs nothing until
// aggregated (then 2×, both sides deriving from the same trace).
func RTTMicros(q *core.Queryable[trace.Packet]) *core.Queryable[int64] {
	syns := q.Where(func(p trace.Packet) bool { return p.IsSYN() })
	acks := q.Where(func(p trace.Packet) bool { return p.IsSYNACK() })
	return core.Join(syns, acks,
		func(p trace.Packet) handshakeKey {
			return handshakeKey{a: p.SrcIP, b: p.DstIP, pa: p.SrcPort, pb: p.DstPort, val: p.Seq + 1}
		},
		func(p trace.Packet) handshakeKey {
			return handshakeKey{a: p.DstIP, b: p.SrcIP, pa: p.DstPort, pb: p.SrcPort, val: p.Ack}
		},
		func(syn, ack trace.Packet) int64 { return ack.Time - syn.Time })
}

// PrivateRTTCDF measures the RTT CDF (Figure 3a) in the given
// millisecond buckets at privacy level epsilon. Total cost: 2·epsilon
// (self-join).
func PrivateRTTCDF(q *core.Queryable[trace.Packet], epsilon float64, bucketsMs []int64) ([]float64, error) {
	rtts := RTTMicros(q)
	return toolkit.CDF2(rtts, epsilon, func(us int64) int64 { return us / 1000 }, bucketsMs)
}

// ExactRTTs returns the noise-free RTT samples in microseconds.
func ExactRTTs(packets []trace.Packet) []int64 {
	synTime := make(map[handshakeKey][]int64)
	for i := range packets {
		p := &packets[i]
		if p.IsSYN() {
			k := handshakeKey{a: p.SrcIP, b: p.DstIP, pa: p.SrcPort, pb: p.DstPort, val: p.Seq + 1}
			synTime[k] = append(synTime[k], p.Time)
		}
	}
	var out []int64
	for i := range packets {
		p := &packets[i]
		if !p.IsSYNACK() {
			continue
		}
		k := handshakeKey{a: p.DstIP, b: p.SrcIP, pa: p.DstPort, pb: p.SrcPort, val: p.Ack}
		if times, ok := synTime[k]; ok && len(times) > 0 {
			// Mirror the bounded join's zip: consume one SYN per ACK.
			out = append(out, p.Time-times[0])
			synTime[k] = times[1:]
		}
	}
	return out
}

// LossPermille derives per-flow downstream loss rates (in permille,
// for integral CDF bucketing): group packets by flow, keep flows with
// more than minPackets packets, and compare distinct sequence numbers
// to total packets — a retransmitted (lost downstream) packet repeats
// its sequence number. Costs 2× at aggregation time (GroupBy).
func LossPermille(q *core.Queryable[trace.Packet], minPackets int) *core.Queryable[int64] {
	flows := core.GroupBy(dataPackets(q), func(p trace.Packet) trace.FlowKey { return p.Flow() })
	big := flows.Where(func(g core.Group[trace.FlowKey, trace.Packet]) bool {
		return len(g.Items) > minPackets
	})
	return core.Select(big, func(g core.Group[trace.FlowKey, trace.Packet]) int64 {
		return lossPermilleOf(g.Items)
	})
}

// PrivateLossCDF measures the loss-rate CDF (Figure 3b) in permille
// buckets at privacy level epsilon. Total cost: 2·epsilon (GroupBy).
func PrivateLossCDF(q *core.Queryable[trace.Packet], epsilon float64, minPackets int, bucketsPermille []int64) ([]float64, error) {
	loss := LossPermille(q, minPackets)
	return toolkit.CDF2(loss, epsilon, func(v int64) int64 { return v }, bucketsPermille)
}

// ExactLossPermille returns the noise-free per-flow loss rates in
// permille for flows with more than minPackets packets.
func ExactLossPermille(packets []trace.Packet, minPackets int) []int64 {
	flows := make(map[trace.FlowKey][]trace.Packet)
	for i := range packets {
		p := packets[i]
		if !isDataPacket(&p) {
			continue
		}
		flows[p.Flow()] = append(flows[p.Flow()], p)
	}
	var out []int64
	for _, pkts := range flows {
		if len(pkts) > minPackets {
			out = append(out, lossPermilleOf(pkts))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// retxKey identifies one transmission of one flow's sequence number.
type retxKey struct {
	flow trace.FlowKey
	seq  uint32
}

// RetransmitDelaysMs derives, behind the curtain, the time difference
// in milliseconds between each packet and its retransmission — the
// quantity Figure 1 builds its CDFs over. First transmissions join
// with their duplicates on (flow, seq); the bounded join pairs each
// first transmission with one retransmission.
func RetransmitDelaysMs(q *core.Queryable[trace.Packet]) *core.Queryable[int64] {
	data := dataPackets(q)
	// Within each (flow, seq) group, split first packet vs rest using
	// GroupBy, then measure last-first. Groups with one packet (no
	// retransmission) yield no sample; the Where drops them.
	groups := core.GroupBy(data, func(p trace.Packet) retxKey {
		return retxKey{flow: p.Flow(), seq: p.Seq}
	})
	dup := groups.Where(func(g core.Group[retxKey, trace.Packet]) bool {
		return len(g.Items) >= 2
	})
	return core.Select(dup, func(g core.Group[retxKey, trace.Packet]) int64 {
		const maxInt64 = int64(^uint64(0) >> 1)
		first, second := maxInt64, maxInt64
		for _, p := range g.Items {
			switch {
			case p.Time < first:
				second = first
				first = p.Time
			case p.Time < second:
				second = p.Time
			}
		}
		return (second - first) / 1000
	})
}

// PrivateRetransmitCDF measures the retransmission-delay CDF in
// millisecond buckets. Total cost: 2·epsilon (GroupBy).
func PrivateRetransmitCDF(q *core.Queryable[trace.Packet], epsilon float64, bucketsMs []int64) ([]float64, error) {
	delays := RetransmitDelaysMs(q)
	return toolkit.CDF2(delays, epsilon, func(v int64) int64 { return v }, bucketsMs)
}

// ExactRetransmitDelaysMs returns the noise-free retransmission
// delays in milliseconds.
func ExactRetransmitDelaysMs(packets []trace.Packet) []int64 {
	groups := make(map[retxKey][]int64)
	for i := range packets {
		p := packets[i]
		if !isDataPacket(&p) {
			continue
		}
		k := retxKey{flow: p.Flow(), seq: p.Seq}
		groups[k] = append(groups[k], p.Time)
	}
	var out []int64
	for _, times := range groups {
		if len(times) < 2 {
			continue
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		out = append(out, (times[1]-times[0])/1000)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExactCDFFromValues builds the noise-free cumulative counts of values
// over the given buckets (values ≥ the last edge are dropped),
// mirroring the toolkit estimators' semantics.
func ExactCDFFromValues(values []int64, buckets []int64) []float64 {
	freq := make([]float64, len(buckets))
	for _, v := range values {
		idx := sort.Search(len(buckets), func(i int) bool { return v < buckets[i] })
		if idx < len(buckets) {
			freq[idx]++
		}
	}
	out := make([]float64, len(buckets))
	run := 0.0
	for i, f := range freq {
		run += f
		out[i] = run
	}
	return out
}

func lossPermilleOf(pkts []trace.Packet) int64 {
	distinct := make(map[uint32]struct{}, len(pkts))
	for i := range pkts {
		distinct[pkts[i].Seq] = struct{}{}
	}
	loss := 1 - float64(len(distinct))/float64(len(pkts))
	return int64(loss * 1000)
}

func isDataPacket(p *trace.Packet) bool {
	return p.Proto == trace.ProtoTCP && !p.Flags.Has(trace.FlagSYN) && p.Len > 40
}

func dataPackets(q *core.Queryable[trace.Packet]) *core.Queryable[trace.Packet] {
	return q.Where(func(p trace.Packet) bool { return isDataPacket(&p) })
}
