package flowstats

import (
	"sort"

	"dptrace/internal/core"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// The paper could not isolate individual TCP connections inside a
// 5-tuple flow with PINQ's operations and notes two fixes: "The data
// owner could pre-process the traces to add a 'connection id' field,
// or PINQ could be extended with more flexible grouping
// transformations. Once connections are identified, the
// connection-level analyses are straightforward." This file implements
// the first fix and the straightforward analysis on top of it.

// ConnPacket is a packet annotated with its connection ordinal within
// its 5-tuple flow — the pre-processed record the data owner exposes.
type ConnPacket struct {
	trace.Packet
	// Conn is 0 for the flow's first connection and increments at
	// every subsequent SYN on the same 5-tuple.
	Conn uint32
}

// connKey identifies one connection.
type connKey struct {
	flow trace.FlowKey
	conn uint32
}

// canonicalFlow maps both directions of a TCP conversation onto one
// key, so a connection's forward data and reverse ACKs share a
// connection stream.
func canonicalFlow(f trace.FlowKey) trace.FlowKey {
	if f.SrcIP > f.DstIP || (f.SrcIP == f.DstIP && f.SrcPort > f.DstPort) {
		return f.Reverse()
	}
	return f
}

// WithConnectionIDs is the data owner's preprocessing: it scans the
// trace in time order and assigns each packet a connection ordinal
// within its BIDIRECTIONAL flow (both directions share the stream),
// starting a new connection whenever a SYN (without ACK) appears on an
// already-seen flow. Packets of a flow seen before any SYN belong to
// connection 0 (a connection already in progress when capture began).
// The input is not modified.
func WithConnectionIDs(packets []trace.Packet) []ConnPacket {
	// Process in time order without disturbing the caller's slice.
	order := make([]int, len(packets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return packets[order[a]].Time < packets[order[b]].Time
	})
	type flowState struct {
		conn    uint32
		sawSYN  bool
		started bool
	}
	states := make(map[trace.FlowKey]*flowState)
	out := make([]ConnPacket, len(packets))
	for _, idx := range order {
		p := packets[idx]
		f := canonicalFlow(p.Flow())
		st, ok := states[f]
		if !ok {
			st = &flowState{}
			states[f] = st
		}
		if p.IsSYN() {
			if st.started && st.sawSYN {
				st.conn++ // a fresh handshake on a known flow
			}
			st.sawSYN = true
		}
		st.started = true
		out[idx] = ConnPacket{Packet: p, Conn: st.conn}
	}
	return out
}

// PacketsPerConnection derives, behind the curtain, the packet count
// of every connection. Aggregations on the result cost 2× (GroupBy).
func PacketsPerConnection(q *core.Queryable[ConnPacket]) *core.Queryable[int64] {
	groups := core.GroupBy(q, func(p ConnPacket) connKey {
		return connKey{flow: canonicalFlow(p.Flow()), conn: p.Conn}
	})
	return core.Select(groups, func(g core.Group[connKey, ConnPacket]) int64 {
		return int64(len(g.Items))
	})
}

// PrivatePacketsPerConnectionCDF measures the per-connection packet
// count distribution — the Swing statistic the paper could not
// reproduce without this preprocessing. Total cost: 2·epsilon.
func PrivatePacketsPerConnectionCDF(q *core.Queryable[ConnPacket], epsilon float64, buckets []int64) ([]float64, error) {
	counts := PacketsPerConnection(q)
	return toolkit.CDF2(counts, epsilon, func(v int64) int64 { return v }, buckets)
}

// ExactPacketsPerConnection is the noise-free baseline: sorted packet
// counts per connection.
func ExactPacketsPerConnection(packets []ConnPacket) []int64 {
	counts := make(map[connKey]int64)
	for i := range packets {
		k := connKey{flow: canonicalFlow(packets[i].Flow()), conn: packets[i].Conn}
		counts[k]++
	}
	out := make([]int64, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
