package flowstats

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

func flowTrace(t *testing.T) []trace.Packet {
	t.Helper()
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 800
	cfg.Hosts = 150
	cfg.Servers = 40
	cfg.LossRate = 0.05
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	cfg.Duration = 600
	pkts, _ := tracegen.Hotspot(cfg)
	return pkts
}

func TestExactRTTsPlausible(t *testing.T) {
	pkts := flowTrace(t)
	rtts := ExactRTTs(pkts)
	if len(rtts) < 600 {
		t.Fatalf("only %d RTT samples from 800 sessions", len(rtts))
	}
	for _, us := range rtts {
		if us <= 0 || us > 2_000_000 {
			t.Fatalf("implausible RTT %d us", us)
		}
	}
}

func TestPrivateRTTCDFMatchesExact(t *testing.T) {
	pkts := flowTrace(t)
	buckets := toolkit.LinearBuckets(0, 10, 60) // 10ms buckets to 600ms
	exactVals := ExactRTTs(pkts)
	ms := make([]int64, len(exactVals))
	for i, us := range exactVals {
		ms[i] = us / 1000
	}
	exact := ExactCDFFromValues(ms, buckets)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(11, 12))
	private, err := PrivateRTTCDF(q, 0.1, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := stats.RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.6 {
		t.Errorf("RTT CDF RMSE %v too high", rmse)
	}
	// Self-join: CDF at 0.1 costs 0.2.
	if spent := root.Spent(); math.Abs(spent-0.2) > 1e-9 {
		t.Errorf("spent %v, want 0.2", spent)
	}
}

func TestExactLossRatesReflectLossInjection(t *testing.T) {
	pkts := flowTrace(t)
	loss := ExactLossPermille(pkts, 10)
	if len(loss) < 50 {
		t.Fatalf("only %d flows above 10 packets", len(loss))
	}
	var nonZero int
	for _, l := range loss {
		if l < 0 || l > 1000 {
			t.Fatalf("loss out of range: %d", l)
		}
		if l > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no flow shows loss despite 5% injection")
	}
}

func TestPrivateLossCDFMatchesExact(t *testing.T) {
	pkts := flowTrace(t)
	buckets := toolkit.LinearBuckets(0, 25, 40) // permille buckets to 1000
	exact := ExactCDFFromValues(ExactLossPermille(pkts, 10), buckets)
	q, root := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(13, 14))
	private, err := PrivateLossCDF(q, 0.1, 10, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := stats.RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.6 {
		t.Errorf("loss CDF RMSE %v too high", rmse)
	}
	// GroupBy: CDF at 0.1 costs 0.2.
	if spent := root.Spent(); math.Abs(spent-0.2) > 1e-9 {
		t.Errorf("spent %v, want 0.2", spent)
	}
}

func TestExactRetransmitDelaysInRange(t *testing.T) {
	pkts := flowTrace(t)
	delays := ExactRetransmitDelaysMs(pkts)
	if len(delays) < 30 {
		t.Fatalf("only %d retransmit delays", len(delays))
	}
	for _, d := range delays {
		if d < 0 || d > 300 {
			t.Fatalf("delay %d ms outside generator's RTO range", d)
		}
	}
}

func TestPrivateRetransmitCDF(t *testing.T) {
	pkts := flowTrace(t)
	buckets := toolkit.LinearBuckets(0, 1, 256) // 1ms buckets, as Fig 1
	exact := ExactCDFFromValues(ExactRetransmitDelaysMs(pkts), buckets)
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(15, 16))
	private, err := PrivateRetransmitCDF(q, 1.0, buckets)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := stats.MaxAbsDiff(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	// CDF2 over 256 buckets at eps=1: accumulated error stays modest.
	if diff > 120 {
		t.Errorf("retransmit CDF max error %v too high", diff)
	}
}

// TestRTTJoinIsBounded: duplicate SYNs cannot multiply matches beyond
// the bounded join's zip.
func TestRTTJoinIsBounded(t *testing.T) {
	mkSyn := func(tm int64) trace.Packet {
		return trace.Packet{Time: tm, SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80,
			Proto: trace.ProtoTCP, Flags: trace.FlagSYN, Seq: 100, Len: 40}
	}
	mkAck := func(tm int64) trace.Packet {
		return trace.Packet{Time: tm, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 10,
			Proto: trace.ProtoTCP, Flags: trace.FlagSYN | trace.FlagACK, Seq: 500, Ack: 101, Len: 40}
	}
	// 3 identical SYNs (retries) and 1 SYN-ACK: one pair, not three.
	pkts := []trace.Packet{mkSyn(0), mkSyn(1000), mkSyn(2000), mkAck(5000)}
	q, _ := core.NewQueryable(pkts, math.Inf(1), noise.NewSeededSource(17, 18))
	rtts := RTTMicros(q)
	c, err := rtts.NoisyCount(100) // tiny noise
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1 {
		t.Errorf("bounded join produced ~%v pairs, want 1", c)
	}
}

func TestExactCDFFromValuesDropsOutOfRange(t *testing.T) {
	got := ExactCDFFromValues([]int64{1, 5, 99}, []int64{2, 4, 6})
	want := []float64{1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
