package flowstats

import (
	"math"
	"testing"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

// mkPkt builds a minimal TCP packet on flow (1->2, 10->80).
func mkPkt(tm int64, flags trace.TCPFlags, seq uint32) trace.Packet {
	return trace.Packet{Time: tm, SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80,
		Proto: trace.ProtoTCP, Flags: flags, Seq: seq, Len: 100}
}

func TestWithConnectionIDsSplitsOnSYN(t *testing.T) {
	pkts := []trace.Packet{
		mkPkt(0, trace.FlagSYN, 100),  // conn 0 handshake
		mkPkt(10, trace.FlagACK, 101), // conn 0 data
		mkPkt(20, trace.FlagACK, 102), // conn 0 data
		mkPkt(30, trace.FlagSYN, 500), // conn 1: fresh SYN
		mkPkt(40, trace.FlagACK, 501), // conn 1 data
		mkPkt(50, trace.FlagSYN, 900), // conn 2
	}
	tagged := WithConnectionIDs(pkts)
	want := []uint32{0, 0, 0, 1, 1, 2}
	for i, cp := range tagged {
		if cp.Conn != want[i] {
			t.Fatalf("packet %d: conn %d, want %d", i, cp.Conn, want[i])
		}
	}
}

func TestWithConnectionIDsMidstreamCapture(t *testing.T) {
	// Data before any SYN: connection 0 already in progress; the
	// first SYN starts a NEW connection only if one was already seen.
	pkts := []trace.Packet{
		mkPkt(0, trace.FlagACK, 50),   // pre-capture connection
		mkPkt(10, trace.FlagSYN, 100), // first observed handshake
		mkPkt(20, trace.FlagACK, 101),
	}
	tagged := WithConnectionIDs(pkts)
	// The first SYN doesn't increment (no prior SYN seen); midstream
	// data and the new handshake share ordinal 0 — a documented
	// limitation of SYN-boundary splitting at capture start.
	if tagged[0].Conn != 0 || tagged[1].Conn != 0 || tagged[2].Conn != 0 {
		t.Fatalf("unexpected conns: %v %v %v", tagged[0].Conn, tagged[1].Conn, tagged[2].Conn)
	}
}

func TestWithConnectionIDsUnsortedInput(t *testing.T) {
	// Assignment must follow time order even if the slice is shuffled.
	pkts := []trace.Packet{
		mkPkt(30, trace.FlagSYN, 500), // conn 1 (later in time)
		mkPkt(0, trace.FlagSYN, 100),  // conn 0
		mkPkt(40, trace.FlagACK, 501), // conn 1 data
		mkPkt(10, trace.FlagACK, 101), // conn 0 data
	}
	tagged := WithConnectionIDs(pkts)
	want := []uint32{1, 0, 1, 0}
	for i, cp := range tagged {
		if cp.Conn != want[i] {
			t.Fatalf("packet %d: conn %d, want %d", i, cp.Conn, want[i])
		}
	}
}

func TestWithConnectionIDsSeparateFlows(t *testing.T) {
	other := trace.Packet{Time: 5, SrcIP: 9, DstIP: 2, SrcPort: 10, DstPort: 80,
		Proto: trace.ProtoTCP, Flags: trace.FlagSYN, Seq: 1, Len: 40}
	pkts := []trace.Packet{
		mkPkt(0, trace.FlagSYN, 100),
		other,
		mkPkt(10, trace.FlagSYN, 200), // second conn on flow 1
	}
	tagged := WithConnectionIDs(pkts)
	if tagged[1].Conn != 0 {
		t.Fatalf("other flow's conn = %d, want 0", tagged[1].Conn)
	}
	if tagged[2].Conn != 1 {
		t.Fatalf("reused flow's conn = %d, want 1", tagged[2].Conn)
	}
}

func TestConnectionCountMatchesGeneratorTruth(t *testing.T) {
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 500
	cfg.FlowReuse = 0.4
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	pkts, truth := tracegen.Hotspot(cfg)
	if truth.Connections <= cfg.Sessions {
		t.Fatalf("FlowReuse produced no extra connections: %d", truth.Connections)
	}
	// Restrict to handshake-bearing flows: the generator's DNS
	// lookups are SYN-less UDP exchanges that would each count as a
	// degenerate in-progress connection.
	hasSYN := make(map[trace.FlowKey]bool)
	for i := range pkts {
		if pkts[i].IsSYN() {
			hasSYN[pkts[i].Flow()] = true
			hasSYN[pkts[i].Flow().Reverse()] = true
		}
	}
	tcp := make([]trace.Packet, 0, len(pkts))
	for i := range pkts {
		if hasSYN[pkts[i].Flow()] {
			tcp = append(tcp, pkts[i])
		}
	}
	tagged := WithConnectionIDs(tcp)
	counts := ExactPacketsPerConnection(tagged)
	// Every generated connection emits at least a SYN, so the split
	// should recover nearly all of them (sessions whose follow-up SYN
	// fell past the trace end are the slack).
	if len(counts) < truth.Connections*95/100 || len(counts) > truth.Connections {
		t.Fatalf("split found %d connections, generator opened %d", len(counts), truth.Connections)
	}
}

func TestPrivatePacketsPerConnectionCDF(t *testing.T) {
	cfg := tracegen.DefaultHotspotConfig()
	cfg.Sessions = 600
	cfg.FlowReuse = 0.3
	cfg.Worms = 0
	cfg.LowDispersionPayloads = 0
	cfg.BackgroundStrings = 0
	cfg.BackgroundTotal = 0
	cfg.StonePairs = 0
	cfg.DecoyFlows = 0
	pkts, _ := tracegen.Hotspot(cfg)
	tagged := WithConnectionIDs(pkts)

	buckets := toolkit.LinearBuckets(0, 4, 32)
	exact := ExactCDFFromValues(ExactPacketsPerConnection(tagged), buckets)
	q, root := core.NewQueryable(tagged, math.Inf(1), noise.NewSeededSource(61, 62))
	private, err := PrivatePacketsPerConnectionCDF(q, 0.1, buckets)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := stats.RMSE(private, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.5 {
		t.Errorf("per-connection CDF RMSE %v too high", rmse)
	}
	// GroupBy doubles the charge.
	if spent := root.Spent(); math.Abs(spent-0.2) > 1e-9 {
		t.Errorf("spent %v, want 0.2", spent)
	}
}
