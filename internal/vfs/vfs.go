// Package vfs abstracts the small slice of filesystem behavior the
// durable privacy-budget ledger depends on, so that every I/O failure
// path — EIO on append, ENOSPC mid-record, a failed fsync, a torn
// rename, power loss between a write and its sync — can be exercised
// deterministically in tests.
//
// Two implementations ship here: OS, a thin pass-through to the real
// filesystem, and FaultFS (fault.go), a wrapper that injects scripted
// or randomized faults and can simulate a crash by truncating every
// file back to its last-synced length. internal/ledger takes an FS in
// its Options; production callers leave it nil and get OS.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file surface the ledger uses: positioned and
// sequential writes, explicit durability, and close. Reads happen
// through FS.ReadFile (the ledger replays whole segments).
type File interface {
	io.Writer
	io.WriterAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
}

// FS is the filesystem surface the ledger runs on. Implementations
// must be safe for concurrent use (the ledger serializes its own
// writes, but metrics and tooling may read concurrently).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so creations and renames inside it are
	// durable. Some platforms refuse directory syncs; callers treat
	// errors as best-effort.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
