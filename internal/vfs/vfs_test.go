package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func mustOpen(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return f
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fsys := OS{}
	f := mustOpen(t, fsys, path)
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

func TestFaultRuleFiresOnNthMatch(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS{})
	fsys.Inject(Rule{Op: OpWrite, Path: "target", N: 2, Err: syscall.EIO})

	f := mustOpen(t, fsys, filepath.Join(dir, "target"))
	defer f.Close()
	other := mustOpen(t, fsys, filepath.Join(dir, "other"))
	defer other.Close()

	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	// A non-matching path must not consume the rule's count.
	if _, err := other.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("other-path write should pass: %v", err)
	}
	if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2 should inject EIO, got %v", err)
	}
	if _, err := f.WriteAt([]byte("c"), 1); err != nil {
		t.Fatalf("write 3 should pass (rule not sticky): %v", err)
	}
	if got := fsys.Injected(); len(got) != 1 {
		t.Fatalf("Injected = %v, want one entry", got)
	}
}

func TestStickyRuleKeepsFiring(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS{})
	fsys.Inject(Rule{Op: OpSync, N: 2, Err: syscall.ENOSPC, Sticky: true})
	f := mustOpen(t, fsys, filepath.Join(dir, "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("sync %d should inject ENOSPC, got %v", i+2, err)
		}
	}
}

func TestShortWriteTearsRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fsys := NewFaultFS(OS{})
	fsys.Inject(Rule{Op: OpWrite, Short: 3, Err: syscall.ENOSPC})
	f := mustOpen(t, fsys, path)
	n, err := f.WriteAt([]byte("abcdef"), 0)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 3 {
		t.Fatalf("want 3 bytes through, got %d", n)
	}
	f.Close()
	data, _ := fsys.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("on-disk bytes = %q, want torn prefix \"abc\"", data)
	}
}

func TestCrashTruncatesToDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fsys := NewFaultFS(OS{})
	f := mustOpen(t, fsys, path)
	if _, err := f.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("lost"), 8); err != nil {
		t.Fatal(err)
	}
	// No sync after the second write: a power loss may drop it.
	if err := fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() = false after SimulateCrash")
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash = %v, want ErrCrashed", err)
	}
	if _, err := fsys.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash should fail with ErrCrashed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable!" {
		t.Fatalf("survived bytes = %q, want only the synced prefix", data)
	}
}

func TestCrashRulePoisonsEverything(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS{})
	fsys.Inject(Rule{Op: OpRename, Crash: true})
	f := mustOpen(t, fsys, filepath.Join(dir, "f"))
	f.Close()
	if err := fsys.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename = %v, want ErrCrashed", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("mkdir after crash = %v, want ErrCrashed", err)
	}
}

func TestRenameCarriesWatermarks(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS{})
	oldPath := filepath.Join(dir, "old")
	newPath := filepath.Join(dir, "new")
	f := mustOpen(t, fsys, oldPath)
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close() // close does not sync: nothing durable yet
	if err := fsys.Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("unsynced bytes survived the crash under the new name: %q", data)
	}
}

func TestPreexistingBytesAreDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("previous-process"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewFaultFS(OS{})
	f := mustOpen(t, fsys, path)
	if _, err := f.WriteAt([]byte("-new"), 16); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "previous-process" {
		t.Fatalf("crash kept %q, want the preexisting bytes only", data)
	}
}

func TestChaosDeterministicForSeed(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		fsys := NewFaultFS(OS{})
		fsys.SetChaos(42, 0.3, OpWrite)
		f := mustOpen(t, fsys, filepath.Join(dir, "f"))
		defer f.Close()
		var outcomes []string
		for i := 0; i < 20; i++ {
			if _, err := f.WriteAt([]byte("x"), int64(i)); err != nil {
				outcomes = append(outcomes, "fail")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos not deterministic at op %d: %v vs %v", i, a, b)
		}
	}
	fsys := NewFaultFS(OS{})
	fsys.SetChaos(42, 0.3, OpWrite)
	if fsys.ChaosInjected() != 0 {
		t.Fatal("chaos hits before any op")
	}
}

func TestCountsTrackOps(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS{})
	f := mustOpen(t, fsys, filepath.Join(dir, "f"))
	_, _ = f.WriteAt([]byte("x"), 0)
	_ = f.Sync()
	f.Close()
	c := fsys.Counts()
	if c[OpOpen] != 1 || c[OpWrite] != 1 || c[OpSync] != 1 || c[OpClose] != 1 {
		t.Fatalf("Counts = %v", c)
	}
}
