package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
)

// Op classifies filesystem operations for fault matching.
type Op string

const (
	OpMkdirAll Op = "mkdirall"
	OpOpen     Op = "open"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpRemove   Op = "remove"
	OpRename   Op = "rename"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
	OpWrite    Op = "write" // File.Write and File.WriteAt
	OpSync     Op = "sync"  // File.Sync
	OpClose    Op = "close" // File.Close
)

var (
	// ErrInjected is the default error returned by a fired fault rule.
	ErrInjected = errors.New("vfs: injected fault")
	// ErrCrashed is returned by every operation once the FS has crashed
	// (a Crash rule fired or SimulateCrash was called): the process is
	// notionally dead and must "restart" on the surviving files.
	ErrCrashed = errors.New("vfs: simulated crash")
)

// Rule schedules one deterministic fault.
type Rule struct {
	// Op is the operation class the rule matches.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it
	// as a substring (e.g. "wal-" or ".tmp").
	Path string
	// N fires the rule on the Nth matching operation, 1-based; 0 means
	// the first.
	N int
	// Err is the injected error; nil means ErrInjected. Use syscall
	// errors (EIO, ENOSPC) to model specific disks.
	Err error
	// Short, for OpWrite, writes only the first Short bytes through to
	// the underlying file before failing — a torn write, the on-disk
	// shape of ENOSPC or a crash mid-append.
	Short int
	// Sticky keeps the rule firing on every matching operation from N
	// onward — a disk that stays broken.
	Sticky bool
	// Crash flips the whole FS into the crashed state when the rule
	// fires: this operation and all later ones fail with ErrCrashed.
	// Combine with SimulateCrash-style recovery by reopening the
	// directory with a fresh FS.
	Crash bool
}

type activeRule struct {
	Rule
	seen int
}

// FaultFS wraps an FS with deterministic scripted fault injection,
// optional seeded random ("chaos") faults, and crash simulation. It
// tracks a durability watermark per file — the byte length covered by
// the last successful Sync — so SimulateCrash can model power loss by
// truncating every file back to what the kernel had promised was
// stable. All methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []*activeRule
	counts   map[Op]int
	log      []string
	crashed  bool
	written  map[string]int64 // current end-of-file per path
	durable  map[string]int64 // bytes guaranteed to survive a crash
	chaosOps map[Op]bool
	chaosP   float64
	chaosRnd *rand.Rand
	chaosHit int
}

// NewFaultFS wraps inner (nil means the real OS) with fault injection.
// With no rules installed it is a transparent pass-through that still
// tracks durability watermarks.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{
		inner:   inner,
		counts:  make(map[Op]int),
		written: make(map[string]int64),
		durable: make(map[string]int64),
	}
}

// Inject schedules fault rules. Rules are matched in installation
// order; the first one that fires wins for that operation.
func (f *FaultFS) Inject(rules ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range rules {
		rr := r
		f.rules = append(f.rules, &activeRule{Rule: rr})
	}
}

// SetChaos arms seeded random fault injection: each operation in ops
// fails with probability p, deterministically for a given seed and
// operation sequence. Scripted rules still take precedence.
func (f *FaultFS) SetChaos(seed int64, p float64, ops ...Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chaosRnd = rand.New(rand.NewSource(seed))
	f.chaosP = p
	f.chaosOps = make(map[Op]bool, len(ops))
	for _, op := range ops {
		f.chaosOps[op] = true
	}
}

// Counts returns how many times each operation class has been invoked
// (including refused invocations, excluding those after a crash).
func (f *FaultFS) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Injected returns a human-readable log of every fired fault.
func (f *FaultFS) Injected() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// Crashed reports whether the FS is in the crashed state.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// SimulateCrash models power loss: every tracked file is truncated in
// the underlying FS to its last-synced length (bytes the kernel never
// promised are lost), and the FS is marked crashed so further use
// through it fails. Reopen the directory with a fresh FS (or the real
// OS) to "restart the machine" on the surviving files. Renames and
// removals are treated as immediately durable — a simplification that
// makes the model conservative about file contents, not metadata.
func (f *FaultFS) SimulateCrash() error {
	f.mu.Lock()
	f.crashed = true
	type cut struct {
		path string
		keep int64
	}
	var cuts []cut
	for path, w := range f.written {
		if d := f.durable[path]; d < w {
			cuts = append(cuts, cut{path, d})
		}
	}
	f.mu.Unlock()
	for _, c := range cuts {
		if err := f.inner.Truncate(c.path, c.keep); err != nil {
			return fmt.Errorf("vfs: crash truncate %s: %w", c.path, err)
		}
	}
	return nil
}

// hit records one operation and returns the rule that fires for it, if
// any. The returned rule has Err filled in.
func (f *FaultFS) hit(op Op, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return &Rule{Op: op, Err: ErrCrashed}
	}
	f.counts[op]++
	for _, r := range f.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		n := r.N
		if n <= 0 {
			n = 1
		}
		if r.seen != n && !(r.Sticky && r.seen > n) {
			continue
		}
		fired := r.Rule
		if fired.Err == nil {
			fired.Err = ErrInjected
		}
		if fired.Crash {
			f.crashed = true
			fired.Err = ErrCrashed
		}
		f.log = append(f.log, fmt.Sprintf("%s %s (match %d): %v", op, path, r.seen, fired.Err))
		return &fired
	}
	if f.chaosOps[op] && f.chaosRnd != nil && f.chaosRnd.Float64() < f.chaosP {
		f.chaosHit++
		f.log = append(f.log, fmt.Sprintf("%s %s: chaos", op, path))
		return &Rule{Op: op, Err: ErrInjected}
	}
	return nil
}

// ChaosInjected reports how many chaos (random) faults have fired.
func (f *FaultFS) ChaosInjected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.chaosHit
}

// noteWrite advances a path's end-of-file watermark.
func (f *FaultFS) noteWrite(path string, end int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if end > f.written[path] {
		f.written[path] = end
	}
}

// noteSync marks everything written to path so far as durable.
func (f *FaultFS) noteSync(path string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.durable[path] = f.written[path]
}

// noteOpen (re)registers a path after a successful open. Preexisting
// bytes beyond any tracked durable watermark are assumed durable —
// they were there before this FS started observing the file.
func (f *FaultFS) noteOpen(path string, size int64, trunc bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if trunc {
		f.written[path] = 0
		f.durable[path] = 0
		return
	}
	if _, tracked := f.written[path]; !tracked {
		f.written[path] = size
		f.durable[path] = size
	}
}

// --- FS implementation ----------------------------------------------

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if r := f.hit(OpMkdirAll, path); r != nil {
		return r.Err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := f.hit(OpOpen, name); r != nil {
		return nil, r.Err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if flag&os.O_TRUNC == 0 {
		if end, err := file.Seek(0, io.SeekEnd); err == nil {
			size = end
			_, _ = file.Seek(0, io.SeekStart)
		}
	}
	f.noteOpen(name, size, flag&os.O_TRUNC != 0)
	return &faultFile{f: file, fs: f, path: name}, nil
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := f.hit(OpReadDir, name); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if r := f.hit(OpReadFile, name); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Remove(name string) error {
	if r := f.hit(OpRemove, name); r != nil {
		return r.Err
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.written, name)
	delete(f.durable, name)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.hit(OpRename, oldpath); r != nil {
		return r.Err
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if w, ok := f.written[oldpath]; ok {
		f.written[newpath] = w
		f.durable[newpath] = f.durable[oldpath]
		delete(f.written, oldpath)
		delete(f.durable, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if r := f.hit(OpTruncate, name); r != nil {
		return r.Err
	}
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	f.written[name] = size
	if f.durable[name] > size {
		f.durable[name] = size
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) SyncDir(name string) error {
	if r := f.hit(OpSyncDir, name); r != nil {
		return r.Err
	}
	return f.inner.SyncDir(name)
}

// faultFile routes a file's writes, syncs, and close through its
// owning FaultFS for fault matching and watermark tracking.
type faultFile struct {
	f    File
	fs   *FaultFS
	path string

	mu  sync.Mutex
	pos int64 // sequential-write position, for Write watermarks
}

func (w *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if r := w.fs.hit(OpWrite, w.path); r != nil {
		if r.Short > 0 && r.Short < len(p) && !errors.Is(r.Err, ErrCrashed) {
			n, _ := w.f.WriteAt(p[:r.Short], off)
			w.fs.noteWrite(w.path, off+int64(n))
			return n, r.Err
		}
		return 0, r.Err
	}
	n, err := w.f.WriteAt(p, off)
	w.fs.noteWrite(w.path, off+int64(n))
	return n, err
}

func (w *faultFile) Write(p []byte) (int, error) {
	if r := w.fs.hit(OpWrite, w.path); r != nil {
		if r.Short > 0 && r.Short < len(p) && !errors.Is(r.Err, ErrCrashed) {
			n, _ := w.f.Write(p[:r.Short])
			w.advance(int64(n))
			return n, r.Err
		}
		return 0, r.Err
	}
	n, err := w.f.Write(p)
	w.advance(int64(n))
	return n, err
}

func (w *faultFile) advance(n int64) {
	w.mu.Lock()
	w.pos += n
	end := w.pos
	w.mu.Unlock()
	w.fs.noteWrite(w.path, end)
}

func (w *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := w.f.Seek(offset, whence)
	if err == nil {
		w.mu.Lock()
		w.pos = pos
		w.mu.Unlock()
	}
	return pos, err
}

func (w *faultFile) Sync() error {
	if r := w.fs.hit(OpSync, w.path); r != nil {
		return r.Err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fs.noteSync(w.path)
	return nil
}

func (w *faultFile) Close() error {
	if r := w.fs.hit(OpClose, w.path); r != nil {
		return r.Err
	}
	// Close does NOT advance the durability watermark: the power-loss
	// model counts only what an fsync has promised.
	return w.f.Close()
}
