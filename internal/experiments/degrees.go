package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/degrees"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
)

// DegreesResult measures the §5.3 "easy" graph statistics: in/out
// degree CDFs at the three privacy levels.
type DegreesResult struct {
	OutCurves []Fig2Curve
	InCurves  []Fig2Curve
	Buckets   []int64
	OutExact  []float64
	InExact   []float64
}

// RunDegrees measures both degree distributions on the Hotspot trace.
func RunDegrees(seed uint64) *DegreesResult {
	h := hotspot()
	res := &DegreesResult{Buckets: toolkit.LinearBuckets(0, 4, 64)}
	exactCDF := func(values []int64) []float64 {
		freq := make([]float64, len(res.Buckets))
		for _, v := range values {
			idx := v / 4
			if idx >= 0 && int(idx) < len(freq) {
				freq[idx]++
			}
		}
		out := make([]float64, len(freq))
		run := 0.0
		for i, f := range freq {
			run += f
			out[i] = run
		}
		return out
	}
	res.OutExact = exactCDF(degrees.ExactOutDegrees(h.packets))
	res.InExact = exactCDF(degrees.ExactInDegrees(h.packets))

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(170+i)))
		out, err := degrees.PrivateOutDegreeCDF(q, eps, res.Buckets)
		if err != nil {
			panic(err)
		}
		rmse, _ := stats.RMSE(out, res.OutExact)
		res.OutCurves = append(res.OutCurves, Fig2Curve{Epsilon: eps, Values: out, RMSE: rmse})

		q, _ = core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(180+i)))
		in, err := degrees.PrivateInDegreeCDF(q, eps, res.Buckets)
		if err != nil {
			panic(err)
		}
		rmse, _ = stats.RMSE(in, res.InExact)
		res.InCurves = append(res.InCurves, Fig2Curve{Epsilon: eps, Values: in, RMSE: rmse})
	}
	return res
}

// String renders the RMSE summary.
func (r *DegreesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3 — in/out degree distributions (the \"easy\" graph statistics)\n")
	for _, c := range r.OutCurves {
		fmt.Fprintf(&b, "out-degree CDF eps=%-5.1f relative RMSE = %.3f%%\n", c.Epsilon, c.RMSE*100)
	}
	for _, c := range r.InCurves {
		fmt.Fprintf(&b, "in-degree CDF  eps=%-5.1f relative RMSE = %.3f%%\n", c.Epsilon, c.RMSE*100)
	}
	return b.String()
}

// Series implements Plotter.
func (r *DegreesResult) Series() []Series {
	x := bucketsToX(r.Buckets)
	out := []Series{
		{Name: "out-noise-free", X: x, Y: r.OutExact},
		{Name: "in-noise-free", X: x, Y: r.InExact},
	}
	for _, c := range r.OutCurves {
		out = append(out, Series{Name: fmt.Sprintf("out-eps=%g", c.Epsilon), X: x, Y: c.Values})
	}
	for _, c := range r.InCurves {
		out = append(out, Series{Name: fmt.Sprintf("in-eps=%g", c.Epsilon), X: x, Y: c.Values})
	}
	return out
}
