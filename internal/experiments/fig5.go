package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/topology"
	"dptrace/internal/core"
	"dptrace/internal/noise"
)

// Fig5Curve is one clustering trajectory.
type Fig5Curve struct {
	Label     string
	Objective []float64 // objective after 0..Iterations iterations
}

// Fig5Result reproduces Figure 5: the k-means objective (average
// distance to nearest center, the paper's "RMSE") against iteration
// count, for the three privacy levels and the noise-free run, all
// from a common random initialization. The paper's shape: ε=10 is
// nearly identical to noise-free, ε=1 close, ε=0.1 roughly 50% worse.
type Fig5Result struct {
	Iterations int
	Curves     []Fig5Curve
}

// fig5Config returns the clustering configuration shared by all runs.
func fig5Config(d *scatterData, eps float64) topology.Config {
	return topology.Config{
		Monitors:            d.cfg.Monitors,
		K:                   9, // the paper uses nine centers
		MaxHops:             float64(d.cfg.MaxHops) + 6,
		EpsilonImpute:       eps,
		EpsilonPerIteration: eps,
		Iterations:          10,
		Seed:                90210,
	}
}

// RunFig5 runs the private clustering at each privacy level plus the
// exact baseline, evaluating every trajectory on the same exact
// vectors.
func RunFig5(seed uint64) *Fig5Result {
	d := scatter()
	points := topology.ExactVectors(d.records, d.cfg.Monitors)
	res := &Fig5Result{Iterations: 10}

	exact := topology.ExactKMeans(points, fig5Config(d, 1))
	res.Curves = append(res.Curves, Fig5Curve{Label: "noise-free", Objective: exact.Objective})

	for i, eps := range Epsilons {
		cfg := fig5Config(d, eps)
		q, _ := core.NewQueryable(d.records, math.Inf(1), noise.NewSeededSource(seed, uint64(120+i)))
		vectors, _, err := topology.AssembleVectors(q, cfg)
		if err != nil {
			panic(err)
		}
		private, err := topology.PrivateKMeans(vectors, cfg, points)
		if err != nil {
			panic(err)
		}
		res.Curves = append(res.Curves, Fig5Curve{
			Label:     fmt.Sprintf("epsilon=%g", eps),
			Objective: private.Objective,
		})
	}
	return res
}

// String renders the objective-vs-iteration series.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — clustering objective vs iteration (9 centers, shared init)\n")
	fmt.Fprintf(&b, "%-12s", "iteration")
	for i := 0; i <= r.Iterations; i++ {
		fmt.Fprintf(&b, "%8d", i)
	}
	fmt.Fprintln(&b)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-12s", c.Label)
		for _, v := range c.Objective {
			fmt.Fprintf(&b, "%8.2f", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
