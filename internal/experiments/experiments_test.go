package experiments

import (
	"fmt"
	"math"
	"testing"
)

// These tests assert the SHAPE of every reproduced table and figure:
// who wins, by roughly what factor, and where the crossovers fall —
// the reproduction contract stated in DESIGN.md.

func TestTable1NoiseMatchesTheory(t *testing.T) {
	res := RunTable1(1)
	for _, row := range res.Rows {
		if row.Operation == "Median imbalance" {
			// Table 1 says "approx"; the exponential mechanism's
			// imbalance is the right order but not exactly Laplace.
			if row.EmpiricalStd > 5*row.TheoryStd+1 {
				t.Errorf("%s eps=%v: empirical %v way above theory %v",
					row.Operation, row.Epsilon, row.EmpiricalStd, row.TheoryStd)
			}
			continue
		}
		if math.Abs(row.EmpiricalStd-row.TheoryStd)/row.TheoryStd > 0.10 {
			t.Errorf("%s eps=%v: empirical std %v, theory %v",
				row.Operation, row.Epsilon, row.EmpiricalStd, row.TheoryStd)
		}
	}
	if math.Abs(res.GroupByFactor-2) > 1e-9 {
		t.Errorf("GroupBy factor %v, want 2", res.GroupByFactor)
	}
	if math.Abs(res.PartitionCostRatio-1) > 1e-9 {
		t.Errorf("Partition cost ratio %v, want 1", res.PartitionCostRatio)
	}
	if res.JoinLeftCost != 1 || res.JoinRightCost != 1 {
		t.Errorf("Join costs %v/%v, want 1/1", res.JoinLeftCost, res.JoinRightCost)
	}
}

func TestQuickstartWithinExpectedError(t *testing.T) {
	res := RunQuickstart(1)
	if math.Abs(res.NoisyCount-float64(res.TrueCount)) > 2*res.ExpectedErr {
		t.Errorf("noisy %v vs true %d exceeds twice the expected error %v",
			res.NoisyCount, res.TrueCount, res.ExpectedErr)
	}
	if math.Abs(res.BudgetSpent-0.2) > 1e-9 {
		t.Errorf("budget spent %v, want 0.2 (GroupBy doubles 0.1)", res.BudgetSpent)
	}
}

// TestFig1ErrorOrdering is the Figure 1 claim: at equal total budget,
// the naive estimator's error dwarfs the partition-based ones.
func TestFig1ErrorOrdering(t *testing.T) {
	res := RunFig1(1, 1.0)
	if res.AbsRMSE1 < 3*res.AbsRMSE2 {
		t.Errorf("cdf1 RMSE %v not clearly above cdf2 %v", res.AbsRMSE1, res.AbsRMSE2)
	}
	if res.AbsRMSE1 < 3*res.AbsRMSE3 {
		t.Errorf("cdf1 RMSE %v not clearly above cdf3 %v", res.AbsRMSE1, res.AbsRMSE3)
	}
	// cdf2 and cdf3 should both be small relative to the data scale
	// (tens of thousands of records).
	final := res.Exact[len(res.Exact)-1]
	if res.AbsRMSE2 > 0.05*final || res.AbsRMSE3 > 0.05*final {
		t.Errorf("cdf2/cdf3 errors (%v, %v) not small vs scale %v",
			res.AbsRMSE2, res.AbsRMSE3, final)
	}
}

func TestFig2RMSEDecreasesWithEpsilon(t *testing.T) {
	res := RunFig2(1)
	for i := 1; i < len(res.LengthCurves); i++ {
		if res.LengthCurves[i].RMSE > res.LengthCurves[i-1].RMSE {
			t.Errorf("length RMSE not decreasing: %v", res.LengthCurves)
		}
	}
	// Strong privacy must still be accurate (paper: 0.01%; ours is a
	// smaller trace so allow up to 1%).
	if res.LengthCurves[0].RMSE > 0.01 {
		t.Errorf("length RMSE at eps=0.1 is %v, want < 1%%", res.LengthCurves[0].RMSE)
	}
	if res.PortCurves[0].RMSE > 0.01 {
		t.Errorf("port RMSE at eps=0.1 is %v, want < 1%%", res.PortCurves[0].RMSE)
	}
	// Less data, more relative error — the paper's 1/10th probe.
	if res.TenthDataRMSE < res.LengthCurves[0].RMSE {
		t.Errorf("tenth-data RMSE %v not above full-data %v",
			res.TenthDataRMSE, res.LengthCurves[0].RMSE)
	}
}

func TestTable4TopTenCorrect(t *testing.T) {
	res := RunTable4(1, 1.0)
	if res.CorrectTop10 != 10 {
		t.Errorf("discovered %d/10 of the true top-10", res.CorrectTop10)
	}
	if !res.OrderPreserved {
		t.Error("top-10 order not preserved")
	}
	for _, row := range res.Rows {
		if math.Abs(row.PercentErr) > 1 {
			t.Errorf("string %q error %v%%, want sub-1%%", row.Payload, row.PercentErr)
		}
	}
}

func TestItemsetsTopFivePlanted(t *testing.T) {
	res := RunItemsets(1, 1.0)
	if res.CorrectTop != 5 {
		t.Errorf("planted pairs in top five: %d/5", res.CorrectTop)
	}
}

// TestWormRecoveryProgression is the §5.1.2 claim: recovery is
// monotone in ε, poor at strong privacy, complete at weak privacy.
func TestWormRecoveryProgression(t *testing.T) {
	res := RunWorm(1)
	if len(res.Levels) != 3 {
		t.Fatalf("got %d levels", len(res.Levels))
	}
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Recovered < res.Levels[i-1].Recovered {
			t.Errorf("recovery not monotone: %+v", res.Levels)
		}
	}
	if res.Levels[0].Recovered > res.Levels[0].Total/2 {
		t.Errorf("strong privacy recovered %d/%d, expected a small fraction",
			res.Levels[0].Recovered, res.Levels[0].Total)
	}
	if res.Levels[2].Recovered != res.Levels[2].Total {
		t.Errorf("weak privacy recovered %d/%d, expected all",
			res.Levels[2].Recovered, res.Levels[2].Total)
	}
	// The group count is a noisy version of the truth.
	if math.Abs(res.NoisyGroupCount-float64(res.TrueGroupCount)) > 30 {
		t.Errorf("group count %v vs true %d", res.NoisyGroupCount, res.TrueGroupCount)
	}
}

func TestFig3AccuracyAtStrongPrivacy(t *testing.T) {
	res := RunFig3(1)
	// Paper: RTT 2.8%, loss 0.2% at eps=0.1. Same order for us.
	if res.RTTCurves[0].RMSE > 0.10 {
		t.Errorf("RTT RMSE at eps=0.1: %v", res.RTTCurves[0].RMSE)
	}
	if res.LossCurves[0].RMSE > 0.10 {
		t.Errorf("loss RMSE at eps=0.1: %v", res.LossCurves[0].RMSE)
	}
	for i := 1; i < 3; i++ {
		if res.RTTCurves[i].RMSE > res.RTTCurves[i-1].RMSE {
			t.Errorf("RTT RMSE not decreasing with eps")
		}
	}
}

// TestTable5Shape: at paper-scale signal all levels detect cleanly;
// in the low-signal regime strong privacy fails while medium and weak
// succeed — the paper's crossover.
func TestTable5Shape(t *testing.T) {
	res := RunTable5(1)
	for _, l := range res.Levels {
		if l.K == 0 {
			t.Errorf("paper-scale eps=%v: nothing detected", l.Epsilon)
			continue
		}
		if float64(l.FalsePositives) > 0.2*float64(l.K) {
			t.Errorf("paper-scale eps=%v: %d/%d false positives", l.Epsilon, l.FalsePositives, l.K)
		}
		if l.NoisyCorrMean < 0.5 {
			t.Errorf("paper-scale eps=%v: noisy corr %v, want high", l.Epsilon, l.NoisyCorrMean)
		}
	}
	sparse := res.SparseLevels
	if sparse[0].K > 5 && sparse[0].FalsePositives < sparse[0].K/2 {
		t.Errorf("low-signal eps=0.1 detected cleanly (%d pairs, %d FPs); expected failure",
			sparse[0].K, sparse[0].FalsePositives)
	}
	for _, l := range sparse[1:] {
		if l.K == 0 || float64(l.FalsePositives) > 0.2*float64(l.K) {
			t.Errorf("low-signal eps=%v should detect cleanly: K=%d FP=%d",
				l.Epsilon, l.K, l.FalsePositives)
		}
	}
}

// TestFig4AnomalyRobustToNoise: the flagged bins coincide with the
// injected anomaly at every privacy level, and the RMSE shrinks with
// ε.
func TestFig4AnomalyRobustToNoise(t *testing.T) {
	res := RunFig4(1)
	injected := map[int]bool{268: true, 269: true, 270: true, 271: true, 272: true}
	check := func(bins []int, label string) {
		hits := 0
		for _, b := range bins {
			if injected[b] {
				hits++
			}
		}
		if hits < 4 {
			t.Errorf("%s: top bins %v miss the injected anomaly", label, bins)
		}
	}
	check(res.TopBinsExact, "noise-free")
	for i, c := range res.Curves {
		check(res.TopBinsByEps[i], fmt.Sprintf("eps=%g", c.Epsilon))
	}
	for i := 1; i < len(res.Curves); i++ {
		if res.Curves[i].RMSE > res.Curves[i-1].RMSE {
			t.Errorf("fig4 RMSE not decreasing with eps")
		}
	}
	// Medium privacy should already be near-indistinguishable.
	if res.Curves[1].RMSE > 0.05 {
		t.Errorf("eps=1 RMSE %v, want < 5%%", res.Curves[1].RMSE)
	}
}

// TestFig5PrivacyOrdering: weak privacy tracks the noise-free curve;
// strong privacy is clearly worse.
func TestFig5PrivacyOrdering(t *testing.T) {
	res := RunFig5(1)
	final := func(c Fig5Curve) float64 { return c.Objective[len(c.Objective)-1] }
	exact := final(res.Curves[0])
	strong := final(res.Curves[1]) // eps=0.1
	weak := final(res.Curves[3])   // eps=10
	if weak > exact*1.10 {
		t.Errorf("eps=10 final %v should track noise-free %v", weak, exact)
	}
	if strong < exact*1.2 {
		t.Errorf("eps=0.1 final %v suspiciously close to noise-free %v", strong, exact)
	}
	// Shared initialization across all curves.
	init := res.Curves[0].Objective[0]
	for _, c := range res.Curves[1:] {
		if math.Abs(c.Objective[0]-init) > 1e-9 {
			t.Errorf("curve %s does not share the initialization", c.Label)
		}
	}
}

func TestTable2Assembles(t *testing.T) {
	res := RunTable2(1)
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.HighAccuracyAt == "not reached" {
			t.Errorf("%s: accuracy never reached", row.Analysis)
		}
	}
}
