package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// ThresholdSweepResult quantifies the paper's counter-intuitive §4.3
// remark — "these high thresholds allow us to learn more" — on the
// frequent-string search: too LOW a threshold floods the candidate
// set with noise-promoted prefixes (splitting attention and compute,
// and at the extreme exploding the branching), while too HIGH a
// threshold prunes genuinely frequent strings. The sweep measures
// both failure modes at a fixed privacy level.
type ThresholdSweepResult struct {
	Epsilon    float64
	Thresholds []float64
	// TruePositives[i] is how many of the generator's 25 most
	// frequent planted strings were recovered at Thresholds[i];
	// FalsePositives[i] is how many reported strings are not planted
	// at all.
	TruePositives  []int
	FalsePositives []int
	// Candidates[i] is the total number of strings reported.
	Candidates []int
}

// sweepTopK is how many planted strings the sweep scores against.
const sweepTopK = 25

// RunThresholdSweep sweeps the survival threshold at ε=0.5/round.
func RunThresholdSweep(seed uint64, epsilon float64) *ThresholdSweepResult {
	h := hotspot()
	// Ground truth: the top planted strings by 8-byte prefix.
	trueCount := make(map[string]int)
	for _, pt := range h.truth.Payloads {
		if len(pt.Payload) >= prefixLen {
			trueCount[pt.Payload[:prefixLen]] += pt.Count
		}
	}
	type kv struct {
		s string
		n int
	}
	ranked := make([]kv, 0, len(trueCount))
	for s, n := range trueCount {
		ranked = append(ranked, kv{s, n})
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].n > ranked[i].n {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	top := make(map[string]bool)
	for i := 0; i < sweepTopK && i < len(ranked); i++ {
		top[ranked[i].s] = true
	}

	noiseStd := noise.LaplaceStd(epsilon)
	res := &ThresholdSweepResult{
		Epsilon: epsilon,
		// From well below the noise floor to well above the planted
		// counts.
		Thresholds: []float64{noiseStd, 3 * noiseStd, 60, 120, 300, 1000, 5000},
	}
	for i, thr := range res.Thresholds {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(160+i)))
		payloads := core.Select(
			q.Where(func(p trace.Packet) bool { return len(p.Payload) >= prefixLen }),
			func(p trace.Packet) []byte { return p.Payload })
		found, err := toolkit.FrequentStrings(payloads, toolkit.FrequentStringsConfig{
			Length:          prefixLen,
			EpsilonPerRound: epsilon,
			Threshold:       thr,
			MaxCandidates:   512,
		})
		if err != nil {
			panic(err)
		}
		tp, fp := 0, 0
		for _, sc := range found {
			s := string(sc.Value)
			switch {
			case top[s]:
				tp++
			case trueCount[s] == 0:
				fp++
			}
		}
		res.TruePositives = append(res.TruePositives, tp)
		res.FalsePositives = append(res.FalsePositives, fp)
		res.Candidates = append(res.Candidates, len(found))
	}
	return res
}

// String renders the sweep.
func (r *ThresholdSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — frequent-string threshold sweep (eps/round=%g, top-%d scored)\n",
		r.Epsilon, sweepTopK)
	fmt.Fprintf(&b, "%10s %12s %10s %10s\n", "threshold", "candidates", "true+", "false+")
	for i, thr := range r.Thresholds {
		fmt.Fprintf(&b, "%10.1f %12d %10d %10d\n",
			thr, r.Candidates[i], r.TruePositives[i], r.FalsePositives[i])
	}
	fmt.Fprintf(&b, "(low thresholds admit noise-promoted junk; very high thresholds prune real strings)\n")
	return b.String()
}

// Series implements Plotter.
func (r *ThresholdSweepResult) Series() []Series {
	x := r.Thresholds
	tp := make([]float64, len(r.TruePositives))
	fp := make([]float64, len(r.FalsePositives))
	for i := range tp {
		tp[i] = float64(r.TruePositives[i])
		fp[i] = float64(r.FalsePositives[i])
	}
	return []Series{
		{Name: "true-positives", X: x, Y: tp},
		{Name: "false-positives", X: x, Y: fp},
	}
}
