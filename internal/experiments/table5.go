package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/steppingstone"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
)

// Table5Level is the stepping-stone evaluation at one privacy level.
type Table5Level struct {
	Epsilon float64
	// NoisyCorrMean/Std summarize the bucketed noisy correlations of
	// the top-K pairs.
	NoisyCorrMean, NoisyCorrStd float64
	// ExactCorrMean/Std summarize the faithful sliding-window
	// correlations of those same pairs.
	ExactCorrMean, ExactCorrStd float64
	// FalsePositives counts top-K pairs with essentially no actual
	// correlation, out of K.
	FalsePositives int
	K              int
}

// Table5Result reproduces Table 5: private detection of stepping
// stones (paper: false positives 18/20, 1/20, 2/20 at ε=0.1, 1, 10).
type Table5Result struct {
	// Levels evaluates the paper-scale trace (~1300 activations per
	// flow).
	Levels []Table5Level
	// SparseLevels evaluates the low-signal variant (~60 activations
	// per flow), where the mined support sits near the ε=0.1 noise
	// floor — the regime in which the paper's strong-privacy run
	// collapsed.
	SparseLevels []Table5Level
	// TruePairs is the number of planted stone pairs among the
	// candidates.
	TruePairs int
}

// RunTable5 evaluates the top-K candidate pairs at every privacy
// level against the exact baseline, on both the paper-scale and the
// low-signal traces.
func RunTable5(seed uint64) *Table5Result {
	res := &Table5Result{TruePairs: len(hotspot().truth.StonePairs)}
	res.Levels = runTable5On(hotspot(), seed)
	res.SparseLevels = runTable5On(hotspotSparse(), seed+1000)
	return res
}

func runTable5On(h *hotspotData, seed uint64) []Table5Level {
	// Candidate flows: the interactive flows, as the paper restricts
	// to flows with [1200, 1400] activations. The flow universe is
	// public; membership in the band is checked privately below.
	var flows []trace.FlowKey
	for _, p := range h.truth.StonePairs {
		flows = append(flows, p[0], p[1])
	}
	flows = append(flows, h.truth.DecoyFlows...)

	exactActs := steppingstone.ExactActivations(h.packets, steppingstone.DefaultTIdleUs)
	var levels []Table5Level
	const k = 20

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(100+i)))
		acts := steppingstone.Activations(q, steppingstone.DefaultTIdleUs)
		candidates, err := steppingstone.CandidateFlows(acts, flows, eps,
			float64(h.cfg.StoneActivations)*0.5, float64(h.cfg.StoneActivations)*2)
		if err != nil {
			panic(err)
		}
		if len(candidates) < 2 {
			// At strong privacy the band check may reject everything;
			// fall back to the full public candidate list, as an
			// analyst would widen the band.
			candidates = flows
		}
		// Stage 1 (the paper's approximation): frequent itemset mining
		// over δ-bins surfaces candidate pairs; the threshold must
		// clear the noise floor.
		mined, err := steppingstone.DiscoverPairs(acts, candidates,
			steppingstone.DefaultDeltaUs, eps, 20+5*noise.LaplaceStd(eps))
		if err != nil {
			panic(err)
		}
		if len(mined) > 2*k {
			mined = mined[:2*k]
		}
		pairs := make([][2]trace.FlowKey, len(mined))
		for j, m := range mined {
			pairs[j] = [2]trace.FlowKey{m.A, m.B}
		}
		// Stage 2: evaluate each mined pair's bucketed correlation
		// after Partitioning the activations by flow.
		scores, err := steppingstone.EvaluatePairList(acts, pairs, steppingstone.DefaultDeltaUs, eps)
		if err != nil {
			panic(err)
		}
		top := scores
		if len(top) > k {
			top = top[:k]
		}
		level := Table5Level{Epsilon: eps, K: len(top)}
		var noisy, exact []float64
		for _, s := range top {
			noisy = append(noisy, s.Corr)
			e := steppingstone.ExactPairCorrelation(exactActs, s.A, s.B, steppingstone.DefaultDeltaUs)
			exact = append(exact, e)
			if e < 0.05 {
				level.FalsePositives++
			}
		}
		level.NoisyCorrMean, level.NoisyCorrStd = meanStd(noisy)
		level.ExactCorrMean, level.ExactCorrStd = meanStd(exact)
		levels = append(levels, level)
	}
	return levels
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / float64(len(xs)))
}

// String renders the Table 5 rows.
func (r *Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — private detection of stepping stones (top-%d pairs, %d true stones planted)\n",
		20, r.TruePairs)
	render := func(title string, levels []Table5Level) {
		fmt.Fprintf(&b, "%s\n", title)
		fmt.Fprintf(&b, "%6s %18s %18s %16s\n", "eps", "noisy corr", "noise-free corr", "false positives")
		for _, l := range levels {
			fmt.Fprintf(&b, "%6.1f %9.2f ± %5.2f %9.2f ± %5.2f %11d/%d\n",
				l.Epsilon, l.NoisyCorrMean, l.NoisyCorrStd,
				l.ExactCorrMean, l.ExactCorrStd, l.FalsePositives, l.K)
		}
	}
	render("paper-scale signal (~1300 activations/flow):", r.Levels)
	render("low-signal variant (~60 activations/flow):", r.SparseLevels)
	fmt.Fprintf(&b, "(paper: 0.06±0.07/0.72±0.10/0.78±0.03 noisy; FPs 18/20, 1/20, 2/20)\n")
	return b.String()
}
