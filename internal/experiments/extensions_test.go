package experiments

import "testing"

func TestCommRulesFindDependency(t *testing.T) {
	res := RunCommRules(1, 1.0)
	if !res.DNSRuleFound {
		t.Error("DNS-before-web dependency not mined")
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined")
	}
	// Private confidences track exact ones: same order of magnitude,
	// and the private top rule must be genuinely strong in truth.
	top := res.Rules[0]
	if top.ExactConfidence < 0.3 {
		t.Errorf("top private rule %d=>%d has exact confidence %v — a false discovery",
			top.Antecedent, top.Consequent, top.ExactConfidence)
	}
}

func TestConnectionsExtension(t *testing.T) {
	res := RunConnections(1, 0.1)
	// 3000 sessions at FlowReuse 0.2 open ~3750 connections.
	if res.Connections < 3000 || res.Connections > 5000 {
		t.Errorf("connections %d outside plausible range", res.Connections)
	}
	if res.ReusedFlows < 300 {
		t.Errorf("only %d follow-up connections; FlowReuse not exercised", res.ReusedFlows)
	}
	if res.RMSE > 0.05 {
		t.Errorf("per-connection CDF RMSE %v too high", res.RMSE)
	}
}

func TestDegreesAccurate(t *testing.T) {
	res := RunDegrees(1)
	for _, c := range res.OutCurves {
		if c.RMSE > 0.10 {
			t.Errorf("out-degree RMSE at eps=%v: %v", c.Epsilon, c.RMSE)
		}
	}
	for i := 1; i < len(res.InCurves); i++ {
		if res.InCurves[i].RMSE > res.InCurves[i-1].RMSE {
			t.Errorf("in-degree RMSE not decreasing with eps")
		}
	}
}
