package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/flowstats"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
)

// Fig1Result compares the three CDF estimators against the noise-free
// CDF of retransmission time differences (paper Figure 1), at an
// equal TOTAL privacy budget so the error comparison is fair.
type Fig1Result struct {
	TotalEpsilon float64
	BucketsMs    []int64
	Exact        []float64
	CDF1         []float64
	CDF2         []float64
	CDF3         []float64
	// CDF3Isotonic is CDF3 post-processed with isotonic regression —
	// the smoothing the paper mentions can help (§4.1 ablation).
	CDF3Isotonic []float64
	// AbsRMSE per method against Exact.
	AbsRMSE1, AbsRMSE2, AbsRMSE3, AbsRMSE3Iso float64
}

// RunFig1 measures the retransmission-delay CDF (1 ms buckets,
// 0-256 ms) with all three estimators, each spending the same total
// budget.
func RunFig1(seed uint64, totalEpsilon float64) *Fig1Result {
	h := hotspot()
	buckets := toolkit.LinearBuckets(0, 1, 256)
	exact := flowstats.ExactCDFFromValues(flowstats.ExactRetransmitDelaysMs(h.packets), buckets)

	res := &Fig1Result{TotalEpsilon: totalEpsilon, BucketsMs: buckets, Exact: exact}
	nb := float64(len(buckets))
	levels := math.Log2(nb) + 1

	// All three run over the same derived dataset; each estimator's
	// per-measurement ε is scaled so the TOTAL cost (through the
	// GroupBy ×2 of the retransmit derivation) matches.
	run := func(srcSeed uint64, f func(q *core.Queryable[int64]) ([]float64, error)) []float64 {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, srcSeed))
		delays := flowstats.RetransmitDelaysMs(q)
		out, err := f(delays)
		if err != nil {
			panic(err)
		}
		return out
	}
	id := func(v int64) int64 { return v }
	res.CDF1 = run(11, func(q *core.Queryable[int64]) ([]float64, error) {
		return toolkit.CDF1(q, totalEpsilon/nb, id, buckets)
	})
	res.CDF2 = run(12, func(q *core.Queryable[int64]) ([]float64, error) {
		return toolkit.CDF2(q, totalEpsilon, id, buckets)
	})
	res.CDF3 = run(13, func(q *core.Queryable[int64]) ([]float64, error) {
		return toolkit.CDF3(q, totalEpsilon/levels, id, buckets)
	})
	res.CDF3Isotonic = toolkit.IsotonicRegression(res.CDF3)

	res.AbsRMSE1, _ = stats.AbsRMSE(res.CDF1, exact)
	res.AbsRMSE2, _ = stats.AbsRMSE(res.CDF2, exact)
	res.AbsRMSE3, _ = stats.AbsRMSE(res.CDF3, exact)
	res.AbsRMSE3Iso, _ = stats.AbsRMSE(res.CDF3Isotonic, exact)
	return res
}

// String renders the per-method errors and a sampled series.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — CDF estimators on retransmission time diffs (total eps=%.2f, %d buckets)\n",
		r.TotalEpsilon, len(r.BucketsMs))
	fmt.Fprintf(&b, "abs RMSE: cdf1=%.1f  cdf2=%.1f  cdf3=%.1f  cdf3+isotonic=%.1f\n",
		r.AbsRMSE1, r.AbsRMSE2, r.AbsRMSE3, r.AbsRMSE3Iso)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n", "ms", "noise-free", "cdf1", "cdf2", "cdf3")
	for i := 0; i < len(r.BucketsMs); i += 32 {
		fmt.Fprintf(&b, "%6d %12.0f %12.0f %12.0f %12.0f\n",
			r.BucketsMs[i], r.Exact[i], r.CDF1[i], r.CDF2[i], r.CDF3[i])
	}
	return b.String()
}
