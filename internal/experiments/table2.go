package experiments

import (
	"fmt"
	"strings"
)

// Table2Row summarizes one analysis, mirroring the paper's Table 2.
type Table2Row struct {
	Analysis       string
	Expressibility string
	// HighAccuracyAt is the weakest ε level at which the measured
	// error was low, mapped to the paper's strong/medium/weak wording.
	HighAccuracyAt string
	PaperSays      string
	Detail         string
}

// Table2Result assembles the qualitative summary from the measured
// experiments, the way the paper's Table 2 condenses §5.
type Table2Result struct {
	Rows []Table2Row
}

// accuracyLabel maps the strongest privacy level whose relative RMSE
// cleared the threshold onto the paper's vocabulary.
func accuracyLabel(rmseByEps map[float64]float64, threshold float64) string {
	switch {
	case rmseByEps[0.1] <= threshold:
		return "strong privacy"
	case rmseByEps[1.0] <= threshold:
		return "medium privacy"
	case rmseByEps[10.0] <= threshold:
		return "weak privacy"
	default:
		return "not reached"
	}
}

// RunTable2 runs (or reuses) the per-analysis experiments and builds
// the summary.
func RunTable2(seed uint64) *Table2Result {
	res := &Table2Result{}

	fig2 := RunFig2(seed)
	lenRMSE := map[float64]float64{}
	for _, c := range fig2.LengthCurves {
		lenRMSE[c.Epsilon] = c.RMSE
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Packet size and port dist. (§5.1.1)",
		Expressibility: "faithful",
		HighAccuracyAt: accuracyLabel(lenRMSE, 0.05),
		PaperSays:      "faithful / strong privacy",
		Detail:         fmt.Sprintf("length RMSE at eps=0.1: %.3f%%", lenRMSE[0.1]*100),
	})

	worm := RunWorm(seed)
	wormLabel := "not reached"
	for _, l := range worm.Levels {
		if l.Total > 0 && float64(l.Recovered) >= 0.9*float64(l.Total) {
			switch l.Epsilon {
			case 0.1:
				wormLabel = "strong privacy"
			case 1.0:
				if wormLabel == "not reached" {
					wormLabel = "medium privacy"
				}
			case 10.0:
				if wormLabel == "not reached" {
					wormLabel = "weak privacy"
				}
			}
		}
	}
	recovered := make([]string, 0, len(worm.Levels))
	for _, l := range worm.Levels {
		recovered = append(recovered, fmt.Sprintf("%d/%d", l.Recovered, l.Total))
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Worm fingerprinting (§5.1.2)",
		Expressibility: "faithful",
		HighAccuracyAt: wormLabel,
		PaperSays:      "faithful / weak privacy",
		Detail:         "recovered " + strings.Join(recovered, ", "),
	})

	fig3 := RunFig3(seed)
	rttRMSE := map[float64]float64{}
	for _, c := range fig3.RTTCurves {
		rttRMSE[c.Epsilon] = c.RMSE
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Common flow properties (§5.2.1)",
		Expressibility: "could not isolate connections in a flow",
		HighAccuracyAt: accuracyLabel(rttRMSE, 0.10),
		PaperSays:      "approximated / strong privacy",
		Detail:         fmt.Sprintf("RTT RMSE at eps=0.1: %.3f%%", rttRMSE[0.1]*100),
	})

	t5 := RunTable5(seed)
	// Label from the low-signal variant, the regime where privacy
	// level actually decides success (K == 0 means nothing surfaced).
	stoneLabel := "not reached"
	for _, l := range t5.SparseLevels {
		if l.K > 0 && float64(l.FalsePositives) <= 0.2*float64(l.K) {
			switch l.Epsilon {
			case 0.1:
				stoneLabel = "strong privacy"
			case 1.0:
				if stoneLabel == "not reached" {
					stoneLabel = "medium privacy"
				}
			case 10.0:
				if stoneLabel == "not reached" {
					stoneLabel = "weak privacy"
				}
			}
		}
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Stepping stone detection (§5.2.2)",
		Expressibility: "sliding windows approximated by binning",
		HighAccuracyAt: stoneLabel,
		PaperSays:      "approximated / medium privacy",
		Detail: fmt.Sprintf("false positives %d, %d, %d of top-%d",
			t5.Levels[0].FalsePositives, t5.Levels[1].FalsePositives,
			t5.Levels[2].FalsePositives, t5.Levels[0].K),
	})

	fig4 := RunFig4(seed)
	anomRMSE := map[float64]float64{}
	for _, c := range fig4.Curves {
		anomRMSE[c.Epsilon] = c.RMSE
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Anomaly detection (§5.3.1)",
		Expressibility: "faithful",
		HighAccuracyAt: accuracyLabel(anomRMSE, 0.05),
		PaperSays:      "faithful / strong privacy",
		Detail:         fmt.Sprintf("residual RMSE at eps=0.1: %.3f%%", anomRMSE[0.1]*100),
	})

	fig5 := RunFig5(seed)
	exactFinal := fig5.Curves[0].Objective[len(fig5.Curves[0].Objective)-1]
	topoRMSE := map[float64]float64{}
	for i, eps := range Epsilons {
		c := fig5.Curves[i+1]
		final := c.Objective[len(c.Objective)-1]
		topoRMSE[eps] = (final - exactFinal) / exactFinal
	}
	res.Rows = append(res.Rows, Table2Row{
		Analysis:       "Passive topology mapping (§5.3.2)",
		Expressibility: "k-means instead of Gaussian EM",
		HighAccuracyAt: accuracyLabel(topoRMSE, 0.10),
		PaperSays:      "simpler clustering / weak privacy",
		Detail: fmt.Sprintf("final objective overhead vs exact: %.0f%%/%.0f%%/%.0f%%",
			topoRMSE[0.1]*100, topoRMSE[1.0]*100, topoRMSE[10.0]*100),
	})
	return res
}

// String renders the summary table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — analyses summary (measured on synthetic substitutes)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-40s\n", row.Analysis)
		fmt.Fprintf(&b, "    expressibility: %s\n", row.Expressibility)
		fmt.Fprintf(&b, "    high accuracy:  %s (paper: %s)\n", row.HighAccuracyAt, row.PaperSays)
		fmt.Fprintf(&b, "    measured:       %s\n", row.Detail)
	}
	return b.String()
}
