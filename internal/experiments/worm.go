package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/wormfp"
	"dptrace/internal/core"
	"dptrace/internal/noise"
)

// WormLevel is the recovery result at one privacy level.
type WormLevel struct {
	Epsilon   float64
	Recovered int // true fingerprints recovered
	Total     int // noise-free fingerprints
}

// WormResult reproduces §5.1.2: the noisy suspicious-group count and
// the fraction of true fingerprints recovered at each privacy level
// (the paper reports 7, 24 and 29 of 29 at ε = 0.1, 1, 10).
type WormResult struct {
	GroupCountEpsilon float64
	NoisyGroupCount   float64
	TrueGroupCount    int
	Levels            []WormLevel
}

// wormDispersion is the dispersion threshold for the experiment; the
// generator plants worms at dispersion 60, and the paper evaluates
// thresholds of 50.
const wormDispersion = 50

// RunWorm runs the full §5.1.2 pipeline at every privacy level.
func RunWorm(seed uint64) *WormResult {
	h := hotspot()
	exact := wormfp.Exact(h.packets, prefixLen, wormDispersion, wormDispersion)
	exactSet := make(map[string]bool, len(exact))
	for _, e := range exact {
		exactSet[e.Payload] = true
	}

	// The paper's first probe counts suspicious groups with thresholds
	// at 5 (reporting 2739 ± 10); the group identities stay hidden.
	res := &WormResult{GroupCountEpsilon: 1.0}
	q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, 66))
	gc, err := wormfp.SuspiciousGroupCount(q, res.GroupCountEpsilon, 5, 5)
	if err != nil {
		panic(err)
	}
	res.NoisyGroupCount = gc
	res.TrueGroupCount = len(wormfp.Exact(h.packets, prefixLen, 5, 5))

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(70+i)))
		found, err := wormfp.Run(q, wormfp.Config{
			SrcThreshold:  wormDispersion,
			DstThreshold:  wormDispersion,
			PayloadLength: prefixLen,
			// The frequency threshold must clear the noise floor to
			// avoid false-positive explosion: a few noise std above
			// the base threshold, as an analyst aware of the public
			// noise distribution would set it.
			EpsilonPerRound:    eps,
			FrequencyThreshold: 100 + 5*noise.LaplaceStd(eps),
			EpsilonEval:        eps,
		})
		if err != nil {
			panic(err)
		}
		recovered := 0
		for _, fp := range found {
			if fp.Suspicious && exactSet[string(fp.Payload)] {
				recovered++
			}
		}
		res.Levels = append(res.Levels, WormLevel{Epsilon: eps, Recovered: recovered, Total: len(exact)})
	}
	return res
}

// String renders the recovery progression.
func (r *WormResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.1.2 — worm fingerprinting (dispersion threshold %d)\n", wormDispersion)
	fmt.Fprintf(&b, "suspicious payload groups: noisy %.0f vs true %d (eps=%.1f)\n",
		r.NoisyGroupCount, r.TrueGroupCount, r.GroupCountEpsilon)
	for _, l := range r.Levels {
		fmt.Fprintf(&b, "eps=%-5.1f recovered %d/%d fingerprints (paper: 7/24/29 of 29)\n",
			l.Epsilon, l.Recovered, l.Total)
	}
	return b.String()
}
