package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/anomaly"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
)

// Fig4Result reproduces Figure 4: the norm of anomalous traffic per
// time bin, computed privately at three levels and without noise
// (paper: all four curves indistinguishable; RMSE 0.17% at ε=0.1).
type Fig4Result struct {
	Bins       int
	ExactNorms []float64
	Curves     []Fig2Curve
	// TopBinsExact/PerEps list the highest-residual time bins; the
	// injected anomaly sits around bin 270.
	TopBinsExact []int
	TopBinsByEps [][]int
}

// RunFig4 extracts the load matrix privately at each ε and runs the
// PCA residual pipeline.
func RunFig4(seed uint64) *Fig4Result {
	d := isp()
	exactM := anomaly.ExactLoadMatrix(d.truth.Counts)
	res := &Fig4Result{Bins: d.cfg.Bins}
	res.ExactNorms = anomaly.ResidualNorms(exactM, anomalyRank)
	res.TopBinsExact = anomaly.TopAnomalies(res.ExactNorms, 5)

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(d.samples, math.Inf(1), noise.NewSeededSource(seed, uint64(110+i)))
		m, err := anomaly.PrivateLoadMatrix(q, d.cfg.Links, d.cfg.Bins, eps)
		if err != nil {
			panic(err)
		}
		norms := anomaly.ResidualNorms(m, anomalyRank)
		rmse, _ := stats.RMSE(norms, res.ExactNorms)
		res.Curves = append(res.Curves, Fig2Curve{Epsilon: eps, Values: norms, RMSE: rmse})
		res.TopBinsByEps = append(res.TopBinsByEps, anomaly.TopAnomalies(norms, 5))
	}
	return res
}

// String renders the RMSE summary and flagged bins.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — PCA anomaly norms over %d time bins\n", r.Bins)
	fmt.Fprintf(&b, "noise-free top bins: %v (anomaly injected at 268-272)\n", r.TopBinsExact)
	for i, c := range r.Curves {
		fmt.Fprintf(&b, "eps=%-5.1f relative RMSE vs noise-free = %.3f%%  top bins %v\n",
			c.Epsilon, c.RMSE*100, r.TopBinsByEps[i])
	}
	// Peak-to-median ratio shows the anomaly "clearly standing out".
	peak := 0.0
	for _, v := range r.ExactNorms {
		if v > peak {
			peak = v
		}
	}
	med := stats.Quantile(r.ExactNorms, 0.5)
	if med > 0 {
		fmt.Fprintf(&b, "noise-free peak/median residual: %.1fx\n", peak/med)
	}
	return b.String()
}
