package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/flowcdf"
	"dptrace/internal/core"
	"dptrace/internal/noise"
)

// FlowCDFPoint is one privacy level of the flow-size CDF: the noisy
// quantile curve and its relative RMSE against the noise-free curve.
type FlowCDFPoint struct {
	Epsilon float64 // per-probe ε (total charge is 2·K·ε)
	Values  []float64
	RMSE    float64
}

// FlowCDFResult is the accuracy-vs-ε sweep of the quantile-sketch
// flow-size CDF (packets per 5-tuple flow), built on the engine's
// fused streaming path.
type FlowCDFResult struct {
	Fractions []float64
	Exact     []float64
	Points    []FlowCDFPoint
}

// RunFlowCDF probes the flow-size distribution at a tail-weighted grid
// of rank fractions for each privacy level, reporting the error of the
// rank-spaced quantile method as ε shrinks. The sketch's rank-accuracy target is
// fixed (public geometry), so the curve isolates the cost of privacy:
// at ε=10 the error is sketch-limited, at ε=0.1 mechanism-limited.
func RunFlowCDF(seed uint64) *FlowCDFResult {
	h := hotspot()
	res := &FlowCDFResult{Fractions: flowcdf.TailFractions()}
	res.Exact = flowcdf.ExactFlowSizeCDF(h.packets, res.Fractions)

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(50+i)))
		values, err := flowcdf.PrivateFlowSizeCDF(q, eps, 0.001, res.Fractions)
		if err != nil {
			panic(err)
		}
		rmse, _ := flowcdf.RMSE(values, res.Exact)
		res.Points = append(res.Points, FlowCDFPoint{Epsilon: eps, Values: values, RMSE: rmse})
	}
	return res
}

// String renders the accuracy-vs-ε table.
func (r *FlowCDFResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flow-size CDF — noisy quantiles over a mergeable rank sketch (fused path)\n")
	fmt.Fprintf(&b, "%-10s", "fraction")
	for _, f := range r.Fractions {
		fmt.Fprintf(&b, "%8.3f", f)
	}
	fmt.Fprintf(&b, "\n%-10s", "exact")
	for _, v := range r.Exact {
		fmt.Fprintf(&b, "%8.0f", v)
	}
	b.WriteString("\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "eps=%-6.1f", p.Epsilon)
		for _, v := range p.Values {
			fmt.Fprintf(&b, "%8.0f", v)
		}
		fmt.Fprintf(&b, "  relative RMSE = %.2f%%\n", p.RMSE*100)
	}
	return b.String()
}
