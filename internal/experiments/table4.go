package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Table4Row is one discovered frequent payload string.
type Table4Row struct {
	Payload    string
	TrueCount  int
	EstCount   float64
	PercentErr float64
}

// Table4Result reproduces Table 4: the top-10 payload strings
// discovered privately, with true counts, estimated counts and
// relative error.
type Table4Result struct {
	Epsilon float64
	Rows    []Table4Row
	// CorrectTop10 is how many of the discovered top-10 match the
	// ground-truth top-10 (the paper discovers all ten, in order).
	CorrectTop10 int
	// OrderPreserved reports whether the discovered top-10 came out
	// in the true frequency order.
	OrderPreserved bool
}

// prefixLen is the string length the Table 4 search spells out; the
// generator's planted payloads are distinct at this length.
const prefixLen = 8

// RunTable4 runs the frequent-string search over the Hotspot payloads
// and scores the top 10 against ground truth.
func RunTable4(seed uint64, epsilonPerRound float64) *Table4Result {
	h := hotspot()
	q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, 44))
	payloads := core.Select(
		q.Where(func(p trace.Packet) bool { return len(p.Payload) >= prefixLen }),
		func(p trace.Packet) []byte { return p.Payload })
	found, err := toolkit.FrequentStrings(payloads, toolkit.FrequentStringsConfig{
		Length:          prefixLen,
		EpsilonPerRound: epsilonPerRound,
		Threshold:       120,
		MaxCandidates:   256,
	})
	if err != nil {
		panic(err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].Count > found[j].Count })
	if len(found) > 10 {
		found = found[:10]
	}

	// Ground truth by 8-byte prefix.
	trueCount := make(map[string]int)
	for _, pt := range h.truth.Payloads {
		if len(pt.Payload) >= prefixLen {
			trueCount[pt.Payload[:prefixLen]] += pt.Count
		}
	}
	type kv struct {
		s string
		n int
	}
	truthTop := make([]kv, 0, len(trueCount))
	for s, n := range trueCount {
		truthTop = append(truthTop, kv{s, n})
	}
	sort.Slice(truthTop, func(i, j int) bool {
		if truthTop[i].n != truthTop[j].n {
			return truthTop[i].n > truthTop[j].n
		}
		return truthTop[i].s < truthTop[j].s
	})
	top10 := make(map[string]bool)
	for i := 0; i < 10 && i < len(truthTop); i++ {
		top10[truthTop[i].s] = true
	}

	res := &Table4Result{Epsilon: epsilonPerRound, OrderPreserved: true}
	prev := math.MaxInt64
	for _, sc := range found {
		s := string(sc.Value)
		tc := trueCount[s]
		pe := 0.0
		if tc > 0 {
			pe = (sc.Count - float64(tc)) / float64(tc) * 100
		}
		res.Rows = append(res.Rows, Table4Row{
			Payload: s, TrueCount: tc, EstCount: sc.Count, PercentErr: pe,
		})
		if top10[s] {
			res.CorrectTop10++
		}
		if tc > prev {
			res.OrderPreserved = false
		}
		prev = tc
	}
	return res
}

// String renders the Table 4 rows.
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — top-10 frequent payload strings (eps/round=%.1f)\n", r.Epsilon)
	fmt.Fprintf(&b, "%-12s %12s %14s %8s\n", "string", "true count", "est. count", "% err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12d %14.3f %8.3f\n",
			row.Payload, row.TrueCount, row.EstCount, row.PercentErr)
	}
	fmt.Fprintf(&b, "correct among true top-10: %d/10, order preserved: %v\n",
		r.CorrectTop10, r.OrderPreserved)
	return b.String()
}
