package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/core"
	"dptrace/internal/noise"
)

// Table1Row is one empirical noise-calibration measurement.
type Table1Row struct {
	Operation string
	Epsilon   float64
	TheoryStd float64
	// EmpiricalStd is the measured standard deviation of the added
	// noise over many repetitions.
	EmpiricalStd float64
}

// Table1Result reproduces the quantitative half of the paper's
// Table 1: the noise each aggregation adds, plus probes verifying the
// sensitivity bookkeeping of the transformations.
type Table1Result struct {
	Rows []Table1Row
	// GroupByFactor is the measured budget multiplier of one GroupBy
	// (Table 1 says 2).
	GroupByFactor float64
	// PartitionCostRatio is (budget charged by aggregating every
	// part) / (single part's cost); Table 1 says 1 (the maximum, not
	// the sum).
	PartitionCostRatio float64
	// JoinLeftCost and JoinRightCost are the per-input charges of one
	// aggregation on a Join at ε=1 (Table 1: no increase → 1).
	JoinLeftCost, JoinRightCost float64
}

// RunTable1 measures the noise distributions and budget behaviour.
func RunTable1(seed uint64) *Table1Result {
	const reps = 20000
	res := &Table1Result{}
	records := make([]float64, 1000)
	for i := range records {
		records[i] = 0.5
	}

	for _, eps := range Epsilons {
		// Count noise.
		q, _ := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 1))
		samples := make([]float64, reps)
		for i := range samples {
			v, err := q.NoisyCount(eps)
			if err != nil {
				panic(err)
			}
			samples[i] = v - float64(len(records))
		}
		res.Rows = append(res.Rows, Table1Row{
			Operation: "Count", Epsilon: eps,
			TheoryStd: math.Sqrt2 / eps, EmpiricalStd: stdOf(samples),
		})

		// Sum noise (values clamped to [-1,1]; true sum 500).
		q, _ = core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 2))
		for i := range samples {
			v, err := core.NoisySum(q, eps, func(x float64) float64 { return x })
			if err != nil {
				panic(err)
			}
			samples[i] = v - 500
		}
		res.Rows = append(res.Rows, Table1Row{
			Operation: "Sum", Epsilon: eps,
			TheoryStd: math.Sqrt2 / eps, EmpiricalStd: stdOf(samples),
		})

		// Average noise: std sqrt(8)/(eps n).
		q, _ = core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 3))
		for i := range samples {
			v, err := core.NoisyAverage(q, eps, func(x float64) float64 { return x })
			if err != nil {
				panic(err)
			}
			samples[i] = v - 0.5
		}
		res.Rows = append(res.Rows, Table1Row{
			Operation: "Average", Epsilon: eps,
			TheoryStd: math.Sqrt(8) / (eps * float64(len(records))), EmpiricalStd: stdOf(samples),
		})

		// Median partition imbalance: ~sqrt(2)/eps.
		ranked := make([]float64, 1001)
		for i := range ranked {
			ranked[i] = float64(i)
		}
		q2, _ := core.NewQueryable(ranked, math.Inf(1), noise.NewSeededSource(seed, 4))
		imb := make([]float64, 2000)
		for i := range imb {
			v, err := core.NoisyMedian(q2, eps, func(x float64) float64 { return x })
			if err != nil {
				panic(err)
			}
			below, above := v, float64(len(ranked)-1)-v
			imb[i] = below - above
		}
		res.Rows = append(res.Rows, Table1Row{
			Operation: "Median imbalance", Epsilon: eps,
			TheoryStd: math.Sqrt2 / eps, EmpiricalStd: stdOf(imb),
		})
	}

	// Transformation bookkeeping probes.
	q, root := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 5))
	g := core.GroupBy(q, func(x float64) int { return int(x) })
	if _, err := g.NoisyCount(1.0); err != nil {
		panic(err)
	}
	res.GroupByFactor = root.Spent()

	q, root = core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 6))
	parts := core.Partition(q, []int{0, 1, 2, 3}, func(x float64) int { return int(x*8) % 4 })
	for k := 0; k < 4; k++ {
		if _, err := parts[k].NoisyCount(1.0); err != nil {
			panic(err)
		}
	}
	res.PartitionCostRatio = root.Spent() / 1.0

	left, rootL := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 7))
	right, rootR := core.NewQueryable(records, math.Inf(1), noise.NewSeededSource(seed, 8))
	joined := core.Join(left, right,
		func(x float64) float64 { return x }, func(x float64) float64 { return x },
		func(a, b float64) float64 { return a })
	if _, err := joined.NoisyCount(1.0); err != nil {
		panic(err)
	}
	res.JoinLeftCost, res.JoinRightCost = rootL.Spent(), rootR.Spent()
	return res
}

func stdOf(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	return math.Sqrt(sumSq/n - mean*mean)
}

// String renders the measurement rows.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — aggregation noise and transformation bookkeeping\n")
	fmt.Fprintf(&b, "%-18s %8s %14s %14s\n", "operation", "eps", "theory std", "measured std")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8.1f %14.5f %14.5f\n",
			row.Operation, row.Epsilon, row.TheoryStd, row.EmpiricalStd)
	}
	fmt.Fprintf(&b, "GroupBy sensitivity factor: %.2f (paper: 2)\n", r.GroupByFactor)
	fmt.Fprintf(&b, "Partition cost / single part: %.2f (paper: max, i.e. 1)\n", r.PartitionCostRatio)
	fmt.Fprintf(&b, "Join per-input cost at eps=1: %.2f / %.2f (paper: no increase)\n",
		r.JoinLeftCost, r.JoinRightCost)
	return b.String()
}
