package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/topology"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// EMAblationResult compares private k-means against private Gaussian
// EM at the SAME per-iteration privacy budget — the §5.3.2 trade-off
// between algorithmic sophistication and privacy cost, made
// quantitative. EM estimates K·(d+2) overlapping statistics per
// iteration where k-means needs d+1 disjoint ones, so EM's
// per-measurement noise is ~K× larger.
type EMAblationResult struct {
	Epsilon float64
	// Final objectives (average distance to nearest center) after the
	// same number of iterations from the same initialization.
	ExactFinal, KMeansFinal, EMFinal float64
	// MeasurementsPerIteration contrasts the accounting.
	KMeansMeasurements, EMMeasurements int
}

// RunEMAblation runs both private algorithms on the IPscatter data.
func RunEMAblation(seed uint64, epsilon float64) *EMAblationResult {
	d := scatter()
	points := topology.ExactVectors(d.records, d.cfg.Monitors)
	cfg := fig5Config(d, epsilon)
	cfg.Iterations = 8

	exact := topology.ExactKMeans(points, cfg)

	q1, _ := core.NewQueryable(d.records, math.Inf(1), noise.NewSeededSource(seed, 130))
	vectors1, _, err := topology.AssembleVectors(q1, cfg)
	if err != nil {
		panic(err)
	}
	km, err := topology.PrivateKMeans(vectors1, cfg, points)
	if err != nil {
		panic(err)
	}

	q2, _ := core.NewQueryable(d.records, math.Inf(1), noise.NewSeededSource(seed, 131))
	vectors2, _, err := topology.AssembleVectors(q2, cfg)
	if err != nil {
		panic(err)
	}
	em, err := topology.PrivateGaussianEM(vectors2, cfg, points)
	if err != nil {
		panic(err)
	}

	final := func(obj []float64) float64 { return obj[len(obj)-1] }
	return &EMAblationResult{
		Epsilon:            epsilon,
		ExactFinal:         final(exact.Objective),
		KMeansFinal:        final(km.Objective),
		EMFinal:            final(em.Objective),
		KMeansMeasurements: cfg.Monitors + 1,
		EMMeasurements:     cfg.K * (cfg.Monitors + 2),
	}
}

// String renders the comparison.
func (r *EMAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — k-means vs Gaussian EM at equal per-iteration budget (eps=%g)\n", r.Epsilon)
	fmt.Fprintf(&b, "noisy measurements per iteration: k-means %d (disjoint, max-priced), EM %d (overlapping, summed)\n",
		r.KMeansMeasurements, r.EMMeasurements)
	fmt.Fprintf(&b, "final objective: exact %.2f, private k-means %.2f, private EM %.2f\n",
		r.ExactFinal, r.KMeansFinal, r.EMFinal)
	fmt.Fprintf(&b, "(the paper chose k-means because EM's extra parameters cost budget; EM should do worse here)\n")
	return b.String()
}

// CDFScalingResult verifies the paper's §4.1 error-scaling laws by
// sweeping the bucket count at a fixed total budget: CDF1's error
// grows ∝ |buckets|, CDF2's ∝ √|buckets|, CDF3's ∝ log^{3/2}|buckets|.
type CDFScalingResult struct {
	TotalEpsilon float64
	BucketCounts []int
	// RMSE[method][i] is the average absolute RMSE at BucketCounts[i];
	// methods are indexed 0=CDF1, 1=CDF2, 2=CDF3.
	RMSE [3][]float64
	// FittedExponents are least-squares slopes of log(RMSE) vs
	// log(buckets) per method — the measured scaling laws (theory: 1,
	// 0.5, and sub-0.5 for the log^{3/2} law).
	FittedExponents [3]float64
}

// RunCDFScaling sweeps bucket counts over a synthetic uniform dataset,
// averaging several runs per point to stabilize the fit.
func RunCDFScaling(seed uint64, totalEpsilon float64) *CDFScalingResult {
	const records = 1 << 16
	values := make([]int64, records)
	for i := range values {
		values[i] = int64(i % 1024)
	}
	res := &CDFScalingResult{
		TotalEpsilon: totalEpsilon,
		BucketCounts: []int{16, 32, 64, 128, 256, 512, 1024},
	}
	const runs = 5
	for _, nb := range res.BucketCounts {
		buckets := toolkit.LinearBuckets(0, int64(1024/nb), nb)
		exact := make([]float64, nb)
		{
			freq := make([]float64, nb)
			for _, v := range values {
				idx := int(v) / (1024 / nb)
				if idx < nb {
					freq[idx]++
				}
			}
			run := 0.0
			for i, f := range freq {
				run += f
				exact[i] = run
			}
		}
		var sums [3]float64
		for r := uint64(0); r < runs; r++ {
			id := func(v int64) int64 { return v }
			q1, _ := core.NewQueryable(values, math.Inf(1), noise.NewSeededSource(seed+r, uint64(nb)))
			c1, err := toolkit.CDF1(q1, totalEpsilon/float64(nb), id, buckets)
			if err != nil {
				panic(err)
			}
			q2, _ := core.NewQueryable(values, math.Inf(1), noise.NewSeededSource(seed+r, uint64(nb)+1))
			c2, err := toolkit.CDF2(q2, totalEpsilon, id, buckets)
			if err != nil {
				panic(err)
			}
			levels := math.Log2(float64(nb)) + 1
			q3, _ := core.NewQueryable(values, math.Inf(1), noise.NewSeededSource(seed+r, uint64(nb)+2))
			c3, err := toolkit.CDF3(q3, totalEpsilon/levels, id, buckets)
			if err != nil {
				panic(err)
			}
			for m, c := range [][]float64{c1, c2, c3} {
				rmse, _ := stats.AbsRMSE(c, exact)
				sums[m] += rmse
			}
		}
		for m := range sums {
			res.RMSE[m] = append(res.RMSE[m], sums[m]/runs)
		}
	}
	for m := range res.RMSE {
		res.FittedExponents[m] = logLogSlope(res.BucketCounts, res.RMSE[m])
	}
	return res
}

// logLogSlope fits log(y) = a + b·log(x) by least squares and returns b.
func logLogSlope(xs []int, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(float64(xs[i])), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// String renders the sweep and fitted laws.
func (r *CDFScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — CDF error scaling vs resolution (total eps=%g)\n", r.TotalEpsilon)
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "buckets", "cdf1 rmse", "cdf2 rmse", "cdf3 rmse")
	for i, nb := range r.BucketCounts {
		fmt.Fprintf(&b, "%8d %12.1f %12.1f %12.1f\n", nb, r.RMSE[0][i], r.RMSE[1][i], r.RMSE[2][i])
	}
	fmt.Fprintf(&b, "fitted log-log slopes: cdf1 %.2f (theory 1), cdf2 %.2f (theory 0.5), cdf3 %.2f (theory < 0.5)\n",
		r.FittedExponents[0], r.FittedExponents[1], r.FittedExponents[2])
	return b.String()
}

// PrincipalResult explores the paper's §3/§7 open issue: what happens
// to analysis fidelity when the privacy principal is coarsened from
// packets to hosts. Host-level protection aggregates each host's
// packets into one logical record, so far fewer records support each
// statistic and the same ε buys less accuracy — "the analysis fidelity
// will decrease as fewer records are able to contribute".
type PrincipalResult struct {
	Epsilon float64
	// RMSE of the packet-length CDF when each packet is a record.
	PacketPrincipalRMSE float64
	// RMSE when each host is one record (its packets' mean length
	// representing it — one contribution per host).
	HostPrincipalRMSE float64
	Hosts, Packets    int
}

// RunPrincipal compares packet-level and host-level principals on the
// packet-length CDF.
func RunPrincipal(seed uint64, epsilon float64) *PrincipalResult {
	h := hotspot()
	buckets := toolkit.LinearBuckets(0, 16, 95)

	// Packet principal: the usual Fig 2 measurement.
	exactPkts := make([]float64, len(buckets))
	{
		freq := make([]float64, len(buckets))
		for i := range h.packets {
			idx := int(h.packets[i].Len) / 16
			if idx < len(freq) {
				freq[idx]++
			}
		}
		run := 0.0
		for i, f := range freq {
			run += f
			exactPkts[i] = run
		}
	}
	q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, 140))
	private, err := toolkit.CDF2(q, epsilon, func(p trace.Packet) int64 { return int64(p.Len) }, buckets)
	if err != nil {
		panic(err)
	}
	packetRMSE, _ := stats.RMSE(private, exactPkts)

	// Host principal: aggregate to one record per source host (its
	// mean packet length), then measure the same CDF over hosts.
	type hostRec struct {
		meanLen int64
	}
	sums := map[uint32]int64{}
	counts := map[uint32]int64{}
	for i := range h.packets {
		k := uint32(h.packets[i].SrcIP)
		sums[k] += int64(h.packets[i].Len)
		counts[k]++
	}
	hosts := make([]hostRec, 0, len(sums))
	for k := range sums {
		hosts = append(hosts, hostRec{meanLen: sums[k] / counts[k]})
	}
	exactHosts := make([]float64, len(buckets))
	{
		freq := make([]float64, len(buckets))
		for _, hr := range hosts {
			idx := int(hr.meanLen) / 16
			if idx >= 0 && idx < len(freq) {
				freq[idx]++
			}
		}
		run := 0.0
		for i, f := range freq {
			run += f
			exactHosts[i] = run
		}
	}
	hq, _ := core.NewQueryable(hosts, math.Inf(1), noise.NewSeededSource(seed, 141))
	hPrivate, err := toolkit.CDF2(hq, epsilon, func(r hostRec) int64 { return r.meanLen }, buckets)
	if err != nil {
		panic(err)
	}
	hostRMSE, _ := stats.RMSE(hPrivate, exactHosts)

	return &PrincipalResult{
		Epsilon:             epsilon,
		PacketPrincipalRMSE: packetRMSE,
		HostPrincipalRMSE:   hostRMSE,
		Hosts:               len(hosts),
		Packets:             len(h.packets),
	}
}

// String renders the comparison.
func (r *PrincipalResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — privacy principal granularity (eps=%g)\n", r.Epsilon)
	fmt.Fprintf(&b, "packet principal (%d records): length-CDF RMSE %.4f%%\n",
		r.Packets, r.PacketPrincipalRMSE*100)
	fmt.Fprintf(&b, "host principal   (%d records): mean-length-CDF RMSE %.4f%%\n",
		r.Hosts, r.HostPrincipalRMSE*100)
	fmt.Fprintf(&b, "(host-level guarantees protect whole hosts but leave ~%dx fewer records per statistic)\n",
		r.Packets/max(r.Hosts, 1))
	return b.String()
}
