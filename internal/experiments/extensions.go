package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/commrules"
	"dptrace/internal/analyses/flowstats"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// CommRulesResult reproduces the analysis §5.2.3 mentions but omits
// for space: Kandula et al.'s communication-rule mining. The headline
// dependency in the synthetic trace is DNS-before-web.
type CommRulesResult struct {
	Epsilon float64
	// Top private rules with their exact counterparts' confidence.
	Rules []CommRuleRow
	// DNSRuleFound reports whether the planted 80 ⇒ 53 dependency
	// surfaced privately.
	DNSRuleFound bool
}

// CommRuleRow pairs a private rule with its exact confidence.
type CommRuleRow struct {
	Antecedent, Consequent uint16
	PrivateConfidence      float64
	ExactConfidence        float64
}

// RunCommRules mines rules privately and scores them against the
// exact baseline.
func RunCommRules(seed uint64, epsilon float64) *CommRulesResult {
	h := hotspot()
	cfg := commrules.Config{
		Ports:            []uint16{53, 80, 443, 22, 25, 445, 139, 993},
		WindowUs:         30_000_000,
		EpsilonPerRound:  epsilon,
		SupportThreshold: 20 + 5*noise.LaplaceStd(epsilon),
		MinUses:          1,
	}
	exact := commrules.ExactRules(h.packets, cfg)
	exactConf := make(map[[2]uint16]float64, len(exact))
	for _, r := range exact {
		exactConf[[2]uint16{r.Antecedent, r.Consequent}] = r.Confidence
	}
	q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, 150))
	private, err := commrules.PrivateRules(q, cfg)
	if err != nil {
		panic(err)
	}
	res := &CommRulesResult{Epsilon: epsilon}
	for i, r := range private {
		if i < 8 {
			res.Rules = append(res.Rules, CommRuleRow{
				Antecedent: r.Antecedent, Consequent: r.Consequent,
				PrivateConfidence: r.Confidence,
				ExactConfidence:   exactConf[[2]uint16{r.Antecedent, r.Consequent}],
			})
		}
		// The planted dependency counts in either direction: DNS
		// precedes web, so {53,80} windows coincide both ways.
		if (r.Antecedent == 80 && r.Consequent == 53) ||
			(r.Antecedent == 53 && r.Consequent == 80) {
			res.DNSRuleFound = true
		}
	}
	return res
}

// String renders the mined rules.
func (r *CommRulesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.2.3 — communication rules (Kandula et al.), eps/round=%g\n", r.Epsilon)
	fmt.Fprintf(&b, "%8s %18s %18s\n", "rule", "private conf", "exact conf")
	for _, row := range r.Rules {
		fmt.Fprintf(&b, "%3d => %-3d %14.2f %18.2f\n",
			row.Antecedent, row.Consequent, row.PrivateConfidence, row.ExactConfidence)
	}
	fmt.Fprintf(&b, "DNS-before-web dependency (80 => 53) surfaced: %v\n", r.DNSRuleFound)
	return b.String()
}

// ConnectionsResult exercises the §5.2.1 extension: with the data
// owner's connection-id preprocessing, the per-connection statistics
// the paper "could not isolate" become a straightforward CDF.
type ConnectionsResult struct {
	Epsilon float64
	// Connections is the noise-free number of connections found by
	// the SYN-boundary split.
	Connections int
	// ReusedFlows is how many 5-tuples carried more than one
	// connection — the case a flow-level analysis cannot see.
	ReusedFlows int
	// RMSE of the private per-connection packet-count CDF.
	RMSE float64
}

// RunConnections runs the preprocessing and the per-connection CDF.
// Only handshake-bearing flows enter the split: payload-injection
// packets on one-off ephemeral ports would otherwise each count as a
// degenerate single-packet "connection".
func RunConnections(seed uint64, epsilon float64) *ConnectionsResult {
	h := hotspot()
	hasSYN := make(map[trace.FlowKey]bool)
	for i := range h.packets {
		if h.packets[i].IsSYN() {
			f := h.packets[i].Flow()
			hasSYN[f] = true
			hasSYN[f.Reverse()] = true
		}
	}
	sessionPackets := make([]trace.Packet, 0, len(h.packets))
	for i := range h.packets {
		if hasSYN[h.packets[i].Flow()] {
			sessionPackets = append(sessionPackets, h.packets[i])
		}
	}
	tagged := flowstats.WithConnectionIDs(sessionPackets)
	counts := flowstats.ExactPacketsPerConnection(tagged)
	reused := 0
	for i := range tagged {
		if tagged[i].Conn > 0 && tagged[i].IsSYN() {
			reused++
		}
	}
	buckets := toolkit.LinearBuckets(0, 4, 32)
	exact := flowstats.ExactCDFFromValues(counts, buckets)
	q, _ := core.NewQueryable(tagged, math.Inf(1), noise.NewSeededSource(seed, 151))
	private, err := flowstats.PrivatePacketsPerConnectionCDF(q, epsilon, buckets)
	if err != nil {
		panic(err)
	}
	rmse, _ := stats.RMSE(private, exact)
	return &ConnectionsResult{
		Epsilon:     epsilon,
		Connections: len(counts),
		ReusedFlows: reused,
		RMSE:        rmse,
	}
}

// String renders the connection statistics.
func (r *ConnectionsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.2.1 extension — connection-id preprocessing (eps=%g)\n", r.Epsilon)
	fmt.Fprintf(&b, "connections split out: %d (%d follow-up connections on reused 5-tuples)\n",
		r.Connections, r.ReusedFlows)
	fmt.Fprintf(&b, "per-connection packet-count CDF RMSE: %.3f%%\n", r.RMSE*100)
	fmt.Fprintf(&b, "(the paper: \"once connections are identified, the connection-level analyses are straightforward\")\n")
	return b.String()
}
