package experiments

import (
	"math"
	"testing"
)

// TestEMAblationShape: at equal per-iteration budget, private EM must
// not beat private k-means (its per-measurement noise is ~K× larger),
// and both stay above the exact baseline.
func TestEMAblationShape(t *testing.T) {
	// Average over seeds: both algorithms are noisy.
	var kmSum, emSum, exact float64
	const runs = 3
	for s := uint64(1); s <= runs; s++ {
		res := RunEMAblation(s, 1.0)
		kmSum += res.KMeansFinal
		emSum += res.EMFinal
		exact = res.ExactFinal
	}
	km, em := kmSum/runs, emSum/runs
	if em < km*0.95 {
		t.Errorf("EM (%v) beat k-means (%v) at equal budget", em, km)
	}
	if km < exact*0.9 {
		t.Errorf("private k-means (%v) implausibly beats exact (%v)", km, exact)
	}
	res := RunEMAblation(1, 1.0)
	if res.EMMeasurements <= res.KMeansMeasurements {
		t.Errorf("EM measurement count %d not above k-means %d",
			res.EMMeasurements, res.KMeansMeasurements)
	}
}

// TestCDFScalingLaws: fitted log-log slopes must match §4.1's error
// laws — cdf1 ≈ 1, cdf2 ≈ 0.5, cdf3 clearly sublinear and below cdf2.
func TestCDFScalingLaws(t *testing.T) {
	res := RunCDFScaling(1, 1.0)
	if math.Abs(res.FittedExponents[0]-1.0) > 0.15 {
		t.Errorf("cdf1 slope %v, theory 1", res.FittedExponents[0])
	}
	if math.Abs(res.FittedExponents[1]-0.5) > 0.2 {
		t.Errorf("cdf2 slope %v, theory 0.5", res.FittedExponents[1])
	}
	if res.FittedExponents[2] > res.FittedExponents[1] {
		t.Errorf("cdf3 slope %v not below cdf2 %v",
			res.FittedExponents[2], res.FittedExponents[1])
	}
	// At every resolution, cdf1 is the worst.
	for i := range res.BucketCounts {
		if res.RMSE[0][i] < res.RMSE[1][i] || res.RMSE[0][i] < res.RMSE[2][i] {
			t.Errorf("buckets=%d: cdf1 (%v) not worst (cdf2 %v, cdf3 %v)",
				res.BucketCounts[i], res.RMSE[0][i], res.RMSE[1][i], res.RMSE[2][i])
		}
	}
}

// TestPrincipalGranularityCost: coarsening the principal from packets
// to hosts must cost substantial accuracy at the same ε.
func TestPrincipalGranularityCost(t *testing.T) {
	res := RunPrincipal(1, 0.1)
	if res.HostPrincipalRMSE < 5*res.PacketPrincipalRMSE {
		t.Errorf("host principal RMSE %v not clearly above packet principal %v",
			res.HostPrincipalRMSE, res.PacketPrincipalRMSE)
	}
	if res.Hosts >= res.Packets {
		t.Errorf("host records (%d) should be far fewer than packets (%d)",
			res.Hosts, res.Packets)
	}
}

// TestThresholdSweepShape: the §4.3 claim — sub-noise thresholds flood
// the output with noise-promoted junk; very high thresholds prune real
// strings; a noise-aware middle recovers everything cleanly.
func TestThresholdSweepShape(t *testing.T) {
	res := RunThresholdSweep(1, 0.5)
	if res.FalsePositives[0] < 20 {
		t.Errorf("sub-noise threshold admitted only %d false positives; expected a flood",
			res.FalsePositives[0])
	}
	// Some middle threshold is clean and complete.
	clean := false
	for i := range res.Thresholds {
		if res.TruePositives[i] == sweepTopK && res.FalsePositives[i] == 0 {
			clean = true
		}
	}
	if !clean {
		t.Error("no threshold recovered all planted strings without false positives")
	}
	// The highest threshold prunes real strings.
	last := len(res.Thresholds) - 1
	if res.TruePositives[last] >= sweepTopK {
		t.Errorf("threshold %v should prune real strings, recovered %d",
			res.Thresholds[last], res.TruePositives[last])
	}
}
