package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// ItemsetRow is one mined port pair.
type ItemsetRow struct {
	Ports   [2]uint16
	Support float64
	Planted bool // matches one of the generator's planted pairs
}

// ItemsetsResult reproduces the §4.3 demonstration: the most common
// sets of ports used simultaneously by hosts (the paper's top five are
// (22,80), (25,22), (443,80), (445,139), (993,22), all correct).
type ItemsetsResult struct {
	Epsilon float64
	Top     []ItemsetRow
	// CorrectTop is how many of the first five mined pairs are
	// planted pairs.
	CorrectTop int
}

// portUniverse is the public list of well-known service ports the
// miner considers; item i is portUniverse[i].
var portUniverse = []uint16{22, 25, 53, 80, 110, 139, 443, 445, 993, 8080}

// RunItemsets builds per-host port baskets behind the curtain and
// mines co-used port pairs.
func RunItemsets(seed uint64, epsilonPerRound float64) *ItemsetsResult {
	h := hotspot()
	portIndex := make(map[uint16]int, len(portUniverse))
	for i, p := range portUniverse {
		portIndex[p] = i
	}

	q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, 55))
	// One basket per client host: the set of well-known destination
	// ports it used. The GroupBy happens behind the curtain.
	// A port joins a host's basket only when the host used it
	// repeatedly: one-off lookups would make the basket support many
	// spurious pairs and dilute its partitioned support across them.
	const minUses = 5
	groups := core.GroupBy(q, func(p trace.Packet) trace.IPv4 { return p.SrcIP })
	baskets := core.Select(groups, func(g core.Group[trace.IPv4, trace.Packet]) toolkit.Basket {
		uses := make(map[int]int)
		for _, p := range g.Items {
			if idx, ok := portIndex[p.DstPort]; ok {
				uses[idx]++
			}
		}
		items := make([]int, 0, len(uses))
		for idx, n := range uses {
			if n >= minUses {
				items = append(items, idx)
			}
		}
		sort.Ints(items)
		return toolkit.Basket{ID: uint64(g.Key), Items: items}
	})

	mined, err := toolkit.FrequentItemsets(baskets, len(portUniverse), toolkit.FrequentItemsetsConfig{
		MaxSize:         2,
		EpsilonPerRound: epsilonPerRound,
		Threshold:       15,
	})
	if err != nil {
		panic(err)
	}
	var pairs []toolkit.ItemsetCount
	for _, ic := range mined {
		if len(ic.Items) == 2 {
			pairs = append(pairs, ic)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Count > pairs[j].Count })

	planted := make(map[[2]uint16]bool)
	for _, pp := range h.truth.TopPortPairs {
		a, b := pp[0], pp[1]
		if a > b {
			a, b = b, a
		}
		planted[[2]uint16{a, b}] = true
	}
	res := &ItemsetsResult{Epsilon: epsilonPerRound}
	for i, ic := range pairs {
		key := [2]uint16{portUniverse[ic.Items[0]], portUniverse[ic.Items[1]]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		row := ItemsetRow{Ports: key, Support: ic.Count, Planted: planted[key]}
		res.Top = append(res.Top, row)
		if i < 5 && row.Planted {
			res.CorrectTop++
		}
	}
	return res
}

// String renders the mined pairs.
func (r *ItemsetsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 — frequently co-used port pairs (eps/round=%.1f)\n", r.Epsilon)
	n := len(r.Top)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		row := r.Top[i]
		mark := " "
		if row.Planted {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s (%d,%d) support %.0f\n", mark, row.Ports[0], row.Ports[1], row.Support)
	}
	fmt.Fprintf(&b, "planted pairs in top five: %d/5 (paper: 5/5)\n", r.CorrectTop)
	return b.String()
}
