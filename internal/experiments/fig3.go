package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/flowstats"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/stats"
	"dptrace/internal/toolkit"
)

// Fig3Result reproduces Figure 3: CDFs of per-flow RTT and downstream
// loss rate at the three privacy levels (paper RMSEs at ε=0.1: 2.8%
// for RTT, 0.2% for loss rate).
type Fig3Result struct {
	RTTBucketsMs []int64
	RTTExact     []float64
	RTTCurves    []Fig2Curve
	LossBuckets  []int64 // permille
	LossExact    []float64
	LossCurves   []Fig2Curve
}

// lossMinPackets is the paper's flow-size cut for loss rates.
const lossMinPackets = 10

// RunFig3 measures both flow-property CDFs.
func RunFig3(seed uint64) *Fig3Result {
	h := hotspot()
	res := &Fig3Result{
		RTTBucketsMs: toolkit.LinearBuckets(0, 10, 64), // 10 ms to 640 ms
		LossBuckets:  toolkit.LinearBuckets(0, 25, 41), // permille to 1025
	}
	rttMs := make([]int64, 0)
	for _, us := range flowstats.ExactRTTs(h.packets) {
		rttMs = append(rttMs, us/1000)
	}
	res.RTTExact = flowstats.ExactCDFFromValues(rttMs, res.RTTBucketsMs)
	res.LossExact = flowstats.ExactCDFFromValues(
		flowstats.ExactLossPermille(h.packets, lossMinPackets), res.LossBuckets)

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(80+i)))
		values, err := flowstats.PrivateRTTCDF(q, eps, res.RTTBucketsMs)
		if err != nil {
			panic(err)
		}
		rmse, _ := stats.RMSE(values, res.RTTExact)
		res.RTTCurves = append(res.RTTCurves, Fig2Curve{Epsilon: eps, Values: values, RMSE: rmse})

		q, _ = core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(90+i)))
		values, err = flowstats.PrivateLossCDF(q, eps, lossMinPackets, res.LossBuckets)
		if err != nil {
			panic(err)
		}
		rmse, _ = stats.RMSE(values, res.LossExact)
		res.LossCurves = append(res.LossCurves, Fig2Curve{Epsilon: eps, Values: values, RMSE: rmse})
	}
	return res
}

// String renders the RMSE summary.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — flow RTT and loss-rate CDFs\n")
	for _, c := range r.RTTCurves {
		fmt.Fprintf(&b, "RTT CDF   eps=%-5.1f relative RMSE = %.3f%% (paper at 0.1: 2.8%%)\n",
			c.Epsilon, c.RMSE*100)
	}
	for _, c := range r.LossCurves {
		fmt.Fprintf(&b, "loss CDF  eps=%-5.1f relative RMSE = %.3f%% (paper at 0.1: 0.2%%)\n",
			c.Epsilon, c.RMSE*100)
	}
	return b.String()
}
