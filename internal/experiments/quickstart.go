package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/trace"
)

// QuickstartResult reproduces the paper's §2.3 worked example:
// counting distinct hosts that send more than 1024 bytes to port 80.
type QuickstartResult struct {
	Epsilon     float64
	TrueCount   int
	NoisyCount  float64
	ExpectedErr float64 // ±2σ of the mechanism, known to the analyst
	BudgetSpent float64
}

// RunQuickstart runs the example at ε=0.1 (the paper's setting: true
// answer 120, one observed noisy answer 121).
func RunQuickstart(seed uint64) *QuickstartResult {
	h := hotspot()
	eps := 0.1

	// Noise-free ground truth, computed the same way sans noise.
	bytesTo80 := make(map[trace.IPv4]int)
	for i := range h.packets {
		p := &h.packets[i]
		if p.DstPort == 80 {
			bytesTo80[p.SrcIP] += int(p.Len)
		}
	}
	truth := 0
	for _, total := range bytesTo80 {
		if total > 1024 {
			truth++
		}
	}

	q, root := core.NewQueryable(h.packets, 1.0, noise.NewSeededSource(seed, 2010))
	grouped := core.GroupBy(
		q.Where(func(p trace.Packet) bool { return p.DstPort == 80 }),
		func(p trace.Packet) trace.IPv4 { return p.SrcIP })
	heavy := grouped.Where(func(g core.Group[trace.IPv4, trace.Packet]) bool {
		total := 0
		for _, p := range g.Items {
			total += int(p.Len)
		}
		return total > 1024
	})
	noisy, err := heavy.NoisyCount(eps)
	if err != nil {
		panic(err)
	}
	return &QuickstartResult{
		Epsilon:    eps,
		TrueCount:  truth,
		NoisyCount: noisy,
		// GroupBy doubles sensitivity: the count's noise std is
		// 2·√2/ε; report ±2σ.
		ExpectedErr: 2 * 2 * math.Sqrt2 / eps,
		BudgetSpent: root.Spent(),
	}
}

// String renders the example the way §2.3 narrates it.
func (r *QuickstartResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.3 example — distinct hosts sending >1024 B to port 80\n")
	fmt.Fprintf(&b, "epsilon=%.1f  true=%d  noisy=%.1f  expected error ±%.0f  budget spent=%.2f\n",
		r.Epsilon, r.TrueCount, r.NoisyCount, r.ExpectedErr, r.BudgetSpent)
	return b.String()
}
