package experiments

import (
	"fmt"
	"io"
)

// Series is one named x/y series for plotting.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plotter is implemented by experiment results whose figures can be
// regenerated from x/y series; cmd/experiments -csv writes them out.
type Plotter interface {
	Series() []Series
}

// WriteCSV writes series in long format (series,x,y), one row per
// point — directly loadable by any plotting tool.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func bucketsToX(buckets []int64) []float64 {
	out := make([]float64, len(buckets))
	for i, b := range buckets {
		out[i] = float64(b)
	}
	return out
}

func intsToX(values []int) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = float64(v)
	}
	return out
}

// Series implements Plotter: Figure 1's four CDF curves.
func (r *Fig1Result) Series() []Series {
	x := bucketsToX(r.BucketsMs)
	return []Series{
		{Name: "noise-free", X: x, Y: r.Exact},
		{Name: "cdf1", X: x, Y: r.CDF1},
		{Name: "cdf2", X: x, Y: r.CDF2},
		{Name: "cdf3", X: x, Y: r.CDF3},
		{Name: "cdf3-isotonic", X: x, Y: r.CDF3Isotonic},
	}
}

// Series implements Plotter: Figure 2's length and port CDFs.
func (r *Fig2Result) Series() []Series {
	out := []Series{
		{Name: "length-noise-free", X: bucketsToX(r.LengthBuckets), Y: r.LengthExact},
		{Name: "port-noise-free", X: bucketsToX(r.PortBuckets), Y: r.PortExact},
	}
	for _, c := range r.LengthCurves {
		out = append(out, Series{
			Name: fmt.Sprintf("length-eps=%g", c.Epsilon),
			X:    bucketsToX(r.LengthBuckets), Y: c.Values,
		})
	}
	for _, c := range r.PortCurves {
		out = append(out, Series{
			Name: fmt.Sprintf("port-eps=%g", c.Epsilon),
			X:    bucketsToX(r.PortBuckets), Y: c.Values,
		})
	}
	return out
}

// Series implements Plotter: Figure 3's RTT and loss-rate CDFs.
func (r *Fig3Result) Series() []Series {
	out := []Series{
		{Name: "rtt-noise-free", X: bucketsToX(r.RTTBucketsMs), Y: r.RTTExact},
		{Name: "loss-noise-free", X: bucketsToX(r.LossBuckets), Y: r.LossExact},
	}
	for _, c := range r.RTTCurves {
		out = append(out, Series{
			Name: fmt.Sprintf("rtt-eps=%g", c.Epsilon),
			X:    bucketsToX(r.RTTBucketsMs), Y: c.Values,
		})
	}
	for _, c := range r.LossCurves {
		out = append(out, Series{
			Name: fmt.Sprintf("loss-eps=%g", c.Epsilon),
			X:    bucketsToX(r.LossBuckets), Y: c.Values,
		})
	}
	return out
}

// Series implements Plotter: Figure 4's residual-norm curves.
func (r *Fig4Result) Series() []Series {
	x := make([]float64, r.Bins)
	for i := range x {
		x[i] = float64(i)
	}
	out := []Series{{Name: "noise-free", X: x, Y: r.ExactNorms}}
	for _, c := range r.Curves {
		out = append(out, Series{Name: fmt.Sprintf("eps=%g", c.Epsilon), X: x, Y: c.Values})
	}
	return out
}

// Series implements Plotter: Figure 5's objective-vs-iteration curves.
func (r *Fig5Result) Series() []Series {
	var out []Series
	for _, c := range r.Curves {
		x := make([]float64, len(c.Objective))
		for i := range x {
			x[i] = float64(i)
		}
		out = append(out, Series{Name: c.Label, X: x, Y: c.Objective})
	}
	return out
}

// Series implements Plotter: the CDF scaling-law sweep.
func (r *CDFScalingResult) Series() []Series {
	x := intsToX(r.BucketCounts)
	return []Series{
		{Name: "cdf1", X: x, Y: r.RMSE[0]},
		{Name: "cdf2", X: x, Y: r.RMSE[1]},
		{Name: "cdf3", X: x, Y: r.RMSE[2]},
	}
}
