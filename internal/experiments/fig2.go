package experiments

import (
	"fmt"
	"math"
	"strings"

	"dptrace/internal/analyses/packetdist"
	"dptrace/internal/core"
	"dptrace/internal/noise"
)

// Fig2Curve is one private CDF at one privacy level with its relative
// RMSE against the noise-free curve.
type Fig2Curve struct {
	Epsilon float64
	Values  []float64
	RMSE    float64
}

// Fig2Result reproduces Figure 2: packet-length and destination-port
// CDFs at the three privacy levels, plus the paper's 1/10th-data
// sensitivity check.
type Fig2Result struct {
	LengthBuckets []int64
	LengthExact   []float64
	LengthCurves  []Fig2Curve
	PortBuckets   []int64
	PortExact     []float64
	PortCurves    []Fig2Curve
	// TenthDataRMSE is the length-CDF RMSE at ε=0.1 using only a
	// tenth of the trace (paper: 0.01% → 0.02%).
	TenthDataRMSE float64
}

// RunFig2 measures both distributions with the CDF2 method the paper
// uses for its experiments.
func RunFig2(seed uint64) *Fig2Result {
	h := hotspot()
	res := &Fig2Result{
		LengthBuckets: packetdist.LengthBuckets(8),
		PortBuckets:   packetdist.PortBuckets(256),
	}
	res.LengthExact = packetdist.ExactLengthCDF(h.packets, res.LengthBuckets)
	res.PortExact = packetdist.ExactPortCDF(h.packets, res.PortBuckets)

	for i, eps := range Epsilons {
		q, _ := core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(20+i)))
		values, err := packetdist.PrivateLengthCDF(q, eps, res.LengthBuckets)
		if err != nil {
			panic(err)
		}
		rmse, _ := packetdist.RMSE(values, res.LengthExact)
		res.LengthCurves = append(res.LengthCurves, Fig2Curve{Epsilon: eps, Values: values, RMSE: rmse})

		q, _ = core.NewQueryable(h.packets, math.Inf(1), noise.NewSeededSource(seed, uint64(30+i)))
		values, err = packetdist.PrivatePortCDF(q, eps, res.PortBuckets)
		if err != nil {
			panic(err)
		}
		rmse, _ = packetdist.RMSE(values, res.PortExact)
		res.PortCurves = append(res.PortCurves, Fig2Curve{Epsilon: eps, Values: values, RMSE: rmse})
	}

	// Paper's robustness probe: a tenth of the data at ε=0.1.
	tenth := h.packets[:len(h.packets)/10]
	tenthExact := packetdist.ExactLengthCDF(tenth, res.LengthBuckets)
	q, _ := core.NewQueryable(tenth, math.Inf(1), noise.NewSeededSource(seed, 40))
	values, err := packetdist.PrivateLengthCDF(q, 0.1, res.LengthBuckets)
	if err != nil {
		panic(err)
	}
	res.TenthDataRMSE, _ = packetdist.RMSE(values, tenthExact)
	return res
}

// String renders the RMSE summary Figure 2's caption reports.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — packet length and port CDFs (CDF2 method)\n")
	for _, c := range r.LengthCurves {
		fmt.Fprintf(&b, "length CDF  eps=%-5.1f relative RMSE = %.4f%%\n", c.Epsilon, c.RMSE*100)
	}
	for _, c := range r.PortCurves {
		fmt.Fprintf(&b, "port CDF    eps=%-5.1f relative RMSE = %.4f%%\n", c.Epsilon, c.RMSE*100)
	}
	fmt.Fprintf(&b, "length CDF  eps=0.1 on 1/10th data: RMSE = %.4f%%\n", r.TenthDataRMSE*100)
	// The length spikes the paper highlights.
	spike := func(buckets []int64, cdf []float64, at int64) float64 {
		for i, edge := range buckets {
			if edge > at {
				if i == 0 {
					return cdf[0]
				}
				return cdf[i] - cdf[i-1]
			}
		}
		return 0
	}
	fmt.Fprintf(&b, "spikes in noise-free length CDF: @40B=%.0f pkts, @1492B=%.0f pkts\n",
		spike(r.LengthBuckets, r.LengthExact, 40), spike(r.LengthBuckets, r.LengthExact, 1492))
	return b.String()
}
