package experiments

import (
	"strings"
	"testing"
)

func TestWriteCSVFormat(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{3}, Y: []float64{30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,10\na,2,20\nb,3,30\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
}

// TestPlottersProduceConsistentSeries runs the cheapest plottable
// experiments and checks every series is well-formed (equal X/Y
// lengths, non-empty, named).
func TestPlottersProduceConsistentSeries(t *testing.T) {
	plotters := map[string]Plotter{
		"fig5":       RunFig5(1),
		"thresholds": RunThresholdSweep(1, 0.5),
	}
	for name, p := range plotters {
		for _, s := range p.Series() {
			if s.Name == "" {
				t.Errorf("%s: unnamed series", name)
			}
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: %d x values, %d y values", name, s.Name, len(s.X), len(s.Y))
			}
		}
	}
}
