// Package experiments regenerates every table and figure of the
// paper's evaluation on the synthetic substitute datasets. Each
// experiment has a Run function returning a structured result with a
// String method that prints the same rows/series the paper reports;
// cmd/experiments drives them all and bench_test.go wraps each in a
// testing.B benchmark.
//
// The datasets are generated once per process and shared across
// experiments (they are read-only); every private run wraps them in a
// fresh Queryable with its own budget, exactly as a data owner would
// host one dataset for many analyses.
package experiments

import (
	"sync"

	"dptrace/internal/trace"
	"dptrace/internal/tracegen"
)

// Epsilons are the paper's three privacy levels: strong, medium, weak.
var Epsilons = []float64{0.1, 1.0, 10.0}

// hotspotData bundles the Hotspot trace with its ground truth.
type hotspotData struct {
	cfg     tracegen.HotspotConfig
	packets []trace.Packet
	truth   *tracegen.HotspotTruth
}

var (
	hotspotOnce sync.Once
	hotspotD    *hotspotData
)

// hotspot returns the shared experiment-grade Hotspot trace
// (~3·10⁵ packets with all planted features).
func hotspot() *hotspotData {
	hotspotOnce.Do(func() {
		cfg := tracegen.DefaultHotspotConfig()
		packets, truth := tracegen.Hotspot(cfg)
		hotspotD = &hotspotData{cfg: cfg, packets: packets, truth: truth}
	})
	return hotspotD
}

var (
	sparseOnce sync.Once
	sparseD    *hotspotData
)

// hotspotSparse returns a low-signal stepping-stone trace: the same
// planted structure but only ~60 activations per flow, so the mined
// pair support sits near the ε=0.1 noise floor. The paper's trace hit
// this regime at its full activation counts because its wireless data
// was dense; ours reaches it by thinning the signal instead (see
// EXPERIMENTS.md).
func hotspotSparse() *hotspotData {
	sparseOnce.Do(func() {
		cfg := tracegen.DefaultHotspotConfig()
		cfg.Seed = 4
		cfg.Sessions = 300
		cfg.Worms = 0
		cfg.LowDispersionPayloads = 0
		cfg.BackgroundStrings = 0
		cfg.BackgroundTotal = 0
		cfg.StonePairs = 22
		cfg.DecoyFlows = 20
		cfg.StoneActivations = 60
		cfg.Duration = 600
		packets, truth := tracegen.Hotspot(cfg)
		sparseD = &hotspotData{cfg: cfg, packets: packets, truth: truth}
	})
	return sparseD
}

// ispData bundles the IspTraffic samples with ground truth.
type ispData struct {
	cfg     tracegen.IspConfig
	samples []trace.LinkSample
	truth   *tracegen.IspTruth
}

var (
	ispOnce sync.Once
	ispD    *ispData
)

// isp returns the shared IspTraffic dataset: 100 links × 336 bins at
// ~200 packets/bin (≈ 6.7M records), with the paper's signature
// anomaly around time bin 270. The paper's 15.7B-record trace is
// scaled down ~2000×; the analysis consumes only per-cell counts, so
// the scaling rescales the Fig 4 y-axis without changing its shape.
func isp() *ispData {
	ispOnce.Do(func() {
		cfg := tracegen.IspConfig{
			Seed:              2,
			Links:             100,
			Bins:              336,
			MeanPacketsPerBin: 200,
			NoiseFrac:         0.05,
			Anomalies: []tracegen.AnomalySpec{
				{StartBin: 268, Duration: 5, Links: []int{12, 13, 14, 15}, Factor: 5},
				{StartBin: 120, Duration: 3, Links: []int{60, 61}, Factor: 4},
			},
		}
		samples, truth := tracegen.IspTraffic(cfg)
		ispD = &ispData{cfg: cfg, samples: samples, truth: truth}
	})
	return ispD
}

// anomalyRank is the PCA rank used for the Fig 4 pipeline: the
// generator's normal traffic has (after column centering) two diurnal
// degrees of freedom (sin and cos mixtures across link phases).
const anomalyRank = 2

// scatterData bundles the IPscatter records with ground truth.
type scatterData struct {
	cfg     tracegen.ScatterConfig
	records []trace.HopRecord
	truth   *tracegen.ScatterTruth
}

var (
	scatterOnce sync.Once
	scatterD    *scatterData
)

// scatter returns the shared IPscatter dataset: 38 monitors, nine
// latent clusters (the paper clusters with nine centers), ~3600 IPs.
func scatter() *scatterData {
	scatterOnce.Do(func() {
		cfg := tracegen.DefaultScatterConfig()
		cfg.IPsPerCluster = 400
		records, truth := tracegen.IPScatter(cfg)
		scatterD = &scatterData{cfg: cfg, records: records, truth: truth}
	})
	return scatterD
}
