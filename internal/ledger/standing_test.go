package ledger

import (
	"errors"
	"fmt"
	"testing"
)

// These tests pin the standing-query fold: the standing_window event
// is atomic charge-plus-cursor (both move, or neither), replay
// reproduces spends in event order, the result ring is bounded exactly
// like the live one, and references the history never established are
// corruption.

// standingHistory builds dataset "d" plus one registration "sq-1"
// (width 20, ε 0.1 per window, reservation 1, base 64).
func standingHistory() []Event {
	return []Event{
		{Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 5},
		{Type: EventStandingRegistered, Dataset: "d", Analyst: "mon", Standing: "sq-1",
			Query: "count", Epsilon: 0.1, Reservation: 1, Width: 20, Base: 64,
			Body: []byte(`{"query":"count"}`)},
	}
}

func standingWindow(i uint64, charged float64, outcome string) Event {
	return Event{
		Type: EventStandingWindow, Dataset: "d", Analyst: "mon", Standing: "sq-1",
		Window: i, WindowStart: 64 + i*20, Watermark: 84 + i*20,
		Charged: charged, Outcome: outcome,
		Body: []byte(fmt.Sprintf(`{"window":%d}`, i)),
	}
}

func TestStandingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, standingHistory())
	appendAll(t, l, []Event{
		standingWindow(0, 0.1, "ok"),
		standingWindow(1, 0.1, "ok"),
		{Type: EventStandingCanceled, Dataset: "d", Analyst: "mon", Standing: "sq-1"},
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Recovery(); rec.Err != nil {
		t.Fatalf("recovery: %v", rec.Err)
	}
	st := l2.State().Standing[StandingKeyString("d", "sq-1")]
	if st == nil {
		t.Fatal("standing state not recovered")
	}
	if st.Kind != "count" || st.Epsilon != 0.1 || st.Reservation != 1 ||
		st.Width != 20 || st.Base != 64 || string(st.Request) != `{"query":"count"}` {
		t.Fatalf("registration fields lost: %+v", st)
	}
	if st.NextWindow != 2 || st.LastMark != 104 {
		t.Fatalf("cursor (%d, %d), want (2, 104)", st.NextWindow, st.LastMark)
	}
	if st.Spent != 0.2 || st.Status != StandingCanceled {
		t.Fatalf("spend/status (%v, %s), want (0.2, canceled)", st.Spent, st.Status)
	}
	if len(st.Windows) != 2 || string(st.Windows[1].Body) != `{"window":1}` {
		t.Fatalf("ring not recovered: %+v", st.Windows)
	}
	// The atomic half: window charges folded into the dataset's spends
	// exactly like live silent charges.
	ds := l2.State().Datasets["d"]
	if ds.Spent["mon"] != 0.2 || ds.TotalSpent != 0.2 {
		t.Fatalf("dataset spends (%v, %v), want (0.2, 0.2)", ds.Spent["mon"], ds.TotalSpent)
	}
}

func TestStandingExhaustedWindowStopsQuery(t *testing.T) {
	st := NewState(0)
	seq := uint64(0)
	apply := func(ev Event) error {
		seq++
		ev.Seq = seq
		return st.Apply(&ev)
	}
	for _, ev := range standingHistory() {
		if err := apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	// A refused window: zero charge, cursor still advances, status
	// flips — replay lands on the same refusal boundary as the live run.
	refusal := standingWindow(0, 0, StandingExhausted)
	if err := apply(refusal); err != nil {
		t.Fatal(err)
	}
	got := st.Standing[StandingKeyString("d", "sq-1")]
	if got.Status != StandingExhausted || got.Spent != 0 || got.NextWindow != 1 {
		t.Fatalf("exhausted fold: %+v", got)
	}
	if ds := st.Datasets["d"]; ds.TotalSpent != 0 {
		t.Fatalf("refused window charged the dataset: %v", ds.TotalSpent)
	}
}

func TestStandingRingCapBoundsState(t *testing.T) {
	st := NewState(0)
	seq := uint64(0)
	apply := func(ev Event) {
		seq++
		ev.Seq = seq
		if err := st.Apply(&ev); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range standingHistory() {
		apply(ev)
	}
	n := StandingRingCap + 6
	for i := 0; i < n; i++ {
		apply(standingWindow(uint64(i), 0.001, "ok"))
	}
	got := st.Standing[StandingKeyString("d", "sq-1")]
	if len(got.Windows) != StandingRingCap {
		t.Fatalf("ring holds %d records, want the %d cap", len(got.Windows), StandingRingCap)
	}
	if got.Windows[0].Window != uint64(n-StandingRingCap) || got.Windows[StandingRingCap-1].Window != uint64(n-1) {
		t.Fatalf("ring spans [%d,%d], want the most recent %d windows",
			got.Windows[0].Window, got.Windows[StandingRingCap-1].Window, StandingRingCap)
	}
	if got.NextWindow != uint64(n) {
		t.Fatalf("cursor %d, want %d — eviction must not move the cursor", got.NextWindow, n)
	}
}

func TestStandingCorruptReferences(t *testing.T) {
	base := standingHistory()
	cases := []struct {
		name string
		ev   Event
	}{
		{"window for unknown query", standingWindowFor("ghost")},
		{"window for unknown dataset", Event{Type: EventStandingWindow, Dataset: "nope",
			Analyst: "mon", Standing: "sq-1", Charged: 0.1, Outcome: "ok"}},
		{"cancel of unknown query", Event{Type: EventStandingCanceled, Dataset: "d",
			Analyst: "mon", Standing: "ghost"}},
		{"duplicate registration", base[1]},
		{"registration without id", Event{Type: EventStandingRegistered, Dataset: "d",
			Analyst: "mon", Query: "count", Epsilon: 0.1, Reservation: 1, Width: 20}},
		{"registration on unknown dataset", Event{Type: EventStandingRegistered, Dataset: "nope",
			Analyst: "mon", Standing: "sq-2", Query: "count", Epsilon: 0.1, Reservation: 1, Width: 20}},
	}
	for _, tc := range cases {
		st := NewState(0)
		seq := uint64(0)
		for _, ev := range base {
			seq++
			ev.Seq = seq
			if err := st.Apply(&ev); err != nil {
				t.Fatal(err)
			}
		}
		bad := tc.ev
		bad.Seq = seq + 1
		if err := st.Apply(&bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func standingWindowFor(id string) Event {
	ev := standingWindow(0, 0.1, "ok")
	ev.Standing = id
	return ev
}

// TestStandingSurvivesSnapshotCompaction: the Standing map must ride
// the snapshot, not just the WAL tail — compaction happens mid-stream.
func TestStandingSurvivesSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, standingHistory())
	for i := 0; i < 30; i++ {
		if err := l.Append(standingWindow(uint64(i), 0.01, "ok")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Recovery(); rec.Err != nil {
		t.Fatalf("recovery: %v", rec.Err)
	}
	st := l2.State().Standing[StandingKeyString("d", "sq-1")]
	if st == nil || st.NextWindow != 30 || len(st.Windows) != 30 {
		t.Fatalf("snapshot round trip lost standing state: %+v", st)
	}
	want := 0.0
	for i := 0; i < 30; i++ {
		want += 0.01
	}
	if st.Spent != want || l2.State().Datasets["d"].TotalSpent != want {
		t.Fatalf("spend %v (dataset %v), want the in-order sum %v",
			st.Spent, l2.State().Datasets["d"].TotalSpent, want)
	}
}
