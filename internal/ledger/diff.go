// Offline drift auditing: compare two ledger directories event by
// event — the check a failover runbook ends with, and the assertion
// the kill-the-primary acceptance test makes. Two ledgers are
// *consistent to the refusal boundary* when one's retained history is
// a byte-identical prefix of the other's: the shorter side (typically
// a killed primary whose final appends were never acked, or a follower
// that had not caught up) differs only by a tail, never by content.
package ledger

import (
	"encoding/json"
	"fmt"
	"math"

	"dptrace/internal/vfs"
)

// DiffDivergence pinpoints the first seq where the two histories hold
// different bytes.
type DiffDivergence struct {
	Seq  uint64
	A, B json.RawMessage // the conflicting record payloads (nil = replay-only detection)
}

// DiffReport is the result of Diff. Diverged == nil means the two
// directories are consistent to the refusal boundary; OnlyA/OnlyB then
// count the unshared tail (acceptable: un-acked appends lost with a
// killed primary, or replication lag), and the deltas quantify the ε
// it represents.
type DiffReport struct {
	// From/Through is the seq range compared byte-for-byte (inclusive;
	// From > Through when the retained histories do not overlap).
	From, Through uint64
	// SeqA/SeqB are each directory's replayed head seqs.
	SeqA, SeqB uint64
	// Diverged is non-nil when the histories conflict.
	Diverged *DiffDivergence
	// OnlyA/OnlyB count events past the common prefix.
	OnlyA, OnlyB uint64
	// SpentDelta is dataset → analyst → (spent in A − spent in B),
	// nonzero entries only. TotalDelta is the per-dataset total-spend
	// difference.
	SpentDelta map[string]map[string]float64
	TotalDelta map[string]float64
}

// Clean reports whether the two histories are prefix-consistent.
func (r *DiffReport) Clean() bool { return r.Diverged == nil }

// Diff compares the ledgers in dirA and dirB: replays both, walks the
// overlapping retained seq range byte-for-byte (CRC re-verified), and
// computes per-analyst spend deltas from the folded states. It returns
// an error when either history is itself unreadable or corrupt.
func Diff(dirA, dirB string, auditCap int) (*DiffReport, error) {
	stA, _, errA := Replay(dirA, auditCap)
	if errA != nil {
		return nil, fmt.Errorf("%s: %w", dirA, errA)
	}
	stB, _, errB := Replay(dirB, auditCap)
	if errB != nil {
		return nil, fmt.Errorf("%s: %w", dirB, errB)
	}
	r := &DiffReport{SeqA: stA.Seq, SeqB: stB.Seq}

	availA, err := oldestRetained(dirA, stA.Seq)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dirA, err)
	}
	availB, err := oldestRetained(dirB, stB.Seq)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dirB, err)
	}
	r.From = max64(availA, availB)
	r.Through = min64(stA.Seq, stB.Seq)

	if r.From <= r.Through {
		ta := NewTailReader(nil, dirA, r.From-1)
		tb := NewTailReader(nil, dirB, r.From-1)
		for seq := r.From; seq <= r.Through; seq++ {
			sa, pa, err := ta.Next()
			if err != nil {
				return nil, fmt.Errorf("%s at seq %d: %w", dirA, seq, err)
			}
			sb, pb, err := tb.Next()
			if err != nil {
				return nil, fmt.Errorf("%s at seq %d: %w", dirB, seq, err)
			}
			if sa != seq || sb != seq {
				return nil, fmt.Errorf("diff: reader desync at seq %d (%d vs %d)", seq, sa, sb)
			}
			if string(pa) != string(pb) {
				r.Diverged = &DiffDivergence{
					Seq: seq,
					A:   append(json.RawMessage(nil), pa...),
					B:   append(json.RawMessage(nil), pb...),
				}
				break
			}
		}
	}
	if r.SeqA > r.Through {
		r.OnlyA = r.SeqA - r.Through
	}
	if r.SeqB > r.Through {
		r.OnlyB = r.SeqB - r.Through
	}

	r.SpentDelta = make(map[string]map[string]float64)
	r.TotalDelta = make(map[string]float64)
	for _, name := range unionKeys(stA.Datasets, stB.Datasets) {
		var da, db *DatasetState
		if stA.Datasets != nil {
			da = stA.Datasets[name]
		}
		if stB.Datasets != nil {
			db = stB.Datasets[name]
		}
		if d := datasetTotal(da) - datasetTotal(db); d != 0 {
			r.TotalDelta[name] = d
		}
		analysts := map[string]struct{}{}
		if da != nil {
			for a := range da.Spent {
				analysts[a] = struct{}{}
			}
		}
		if db != nil {
			for a := range db.Spent {
				analysts[a] = struct{}{}
			}
		}
		for a := range analysts {
			d := analystSpent(da, a) - analystSpent(db, a)
			if d != 0 {
				if r.SpentDelta[name] == nil {
					r.SpentDelta[name] = make(map[string]float64)
				}
				r.SpentDelta[name][a] = d
			}
		}
	}
	return r, nil
}

// MaxSpentDelta returns the largest absolute per-analyst or total
// delta in the report — the headline drift number.
func (r *DiffReport) MaxSpentDelta() float64 {
	var m float64
	for _, v := range r.TotalDelta {
		m = math.Max(m, math.Abs(v))
	}
	for _, per := range r.SpentDelta {
		for _, v := range per {
			m = math.Max(m, math.Abs(v))
		}
	}
	return m
}

// oldestRetained is the smallest seq still readable from dir's WAL
// segments (headSeq+1 when nothing is retained, e.g. an empty dir).
func oldestRetained(dir string, headSeq uint64) (uint64, error) {
	segs, err := listSegments(vfs.OS{}, dir)
	if err != nil {
		return 0, err
	}
	for _, seg := range segs {
		// A segment can be empty (rotation happened, nothing appended
		// yet); its start is still the next retainable seq.
		if seg.start <= headSeq {
			return seg.start, nil
		}
	}
	return headSeq + 1, nil
}

func datasetTotal(ds *DatasetState) float64 {
	if ds == nil {
		return 0
	}
	return ds.TotalSpent
}

func analystSpent(ds *DatasetState, analyst string) float64 {
	if ds == nil {
		return 0
	}
	return ds.Spent[analyst]
}

func unionKeys(a, b map[string]*DatasetState) []string {
	seen := map[string]struct{}{}
	var out []string
	for k := range a {
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	for k := range b {
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
