package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryAtEveryTruncationOffset is the crash harness the torn-
// tail contract is defined by: append N events, then for EVERY byte
// offset inside the final record, truncate the WAL there and recover.
// Recovery must always succeed (a torn tail is a legitimate crash
// shape), yield exactly N or N−1 events, and never a corrupt state.
func TestRecoveryAtEveryTruncationOffset(t *testing.T) {
	const n = 8
	master := t.TempDir()
	l, err := Open(Options{Dir: master, Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(n)) // 1 dataset_created + n charges
	l.Close()

	segs, err := filepath.Glob(filepath.Join(master, "wal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// Locate the final record's start: walk the records once.
	lastStart := magicSize
	off := magicSize
	for off < len(full) {
		_, sz, err := DecodeRecord(full[off:])
		if err != nil {
			t.Fatalf("master WAL does not decode at %d: %v", off, err)
		}
		lastStart = off
		off += sz
	}
	total := n + 1 // dataset_created + n charges

	for cut := lastStart; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		rec := l2.Recovery()
		if rec.Err != nil {
			t.Fatalf("cut=%d: recovery refused a torn tail: %v", cut, rec.Err)
		}
		st := l2.State()
		// Everything before the final record must survive; the final
		// record itself must be dropped whole (cut < len(full) always
		// tears it).
		if got, want := st.Seq, uint64(total-1); got != want {
			t.Fatalf("cut=%d: recovered seq %d, want %d", cut, got, want)
		}
		ds := st.Datasets["d"]
		if ds == nil {
			t.Fatalf("cut=%d: dataset lost", cut)
		}
		want := 0.0
		for i := 0; i < n-1; i++ {
			want += 0.1
		}
		if ds.Spent["alice"] != want {
			t.Fatalf("cut=%d: alice spent %v, want %v", cut, ds.Spent["alice"], want)
		}
		// The ledger must keep working after truncation: the next
		// append takes the torn record's sequence number.
		if err := l2.Append(Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); err != nil {
			t.Fatalf("cut=%d: append after torn recovery: %v", cut, err)
		}
		if st.Seq != uint64(total) {
			t.Fatalf("cut=%d: seq %d after re-append, want %d", cut, st.Seq, total)
		}
		l2.Close()

		// And the re-healed ledger must recover cleanly once more.
		l3, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if rec := l3.Recovery(); rec.Err != nil || rec.TornBytes != 0 {
			t.Fatalf("cut=%d: second recovery not clean: err=%v torn=%d", cut, rec.Err, rec.TornBytes)
		}
		l3.Close()
	}

	// The untruncated file recovers all N events.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName), full, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.State().Seq; got != uint64(total) {
		t.Fatalf("full file recovered seq %d, want %d", got, total)
	}
}

// TestTruncationInsideHeaderOfFreshSegment covers the narrowest tear:
// the crash hit while the segment header itself was being written.
func TestTruncationInsideHeaderOfFreshSegment(t *testing.T) {
	for cut := 0; cut < magicSize; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte(walMagic)[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if rec := l.Recovery(); rec.Err != nil {
			t.Fatalf("cut=%d: torn header treated as corrupt: %v", cut, rec.Err)
		}
		if err := l.Append(Event{Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 1, PerAnalyst: 1}); err != nil {
			t.Fatalf("cut=%d: append: %v", cut, err)
		}
		l.Close()
	}
}

// TestTornRecordMidHistoryIsCorrupt: a truncation-shaped gap is only
// forgivable at the very end of history. The same gap with later
// segments present means durably-written records vanished — fail
// closed.
func TestTornRecordMidHistoryIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Two segments: force rotation via an explicit snapshot, then
	// delete the snapshot so recovery must rely on both segments.
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(4))
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, []Event{{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}})
	l.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, s := range snaps {
		os.Remove(s)
	}
	// Compaction removed the pre-snapshot segment, so recreate a torn
	// first segment: its name says it starts at seq 1, but it holds
	// only half a record.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("want 1 remaining segment, got %v", segs)
	}
	buf, err := EncodeRecord([]byte(walMagic), &Event{Seq: 1, Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf[:len(buf)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Recovery(); !errors.Is(rec.Err, ErrCorrupt) {
		t.Fatalf("mid-history tear recovered as %v, want ErrCorrupt", rec.Err)
	}
	if err := l2.Append(Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("append: %v, want ErrFrozen", err)
	}
}
