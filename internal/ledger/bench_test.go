package ledger

import (
	"testing"
)

// benchAppend measures charge-append throughput under one fsync
// policy. The spread between fsync=never and fsync=always is the
// price of the durability guarantee (one fdatasync per acknowledged
// ε-charge) and is recorded into BENCH_core.json by `make bench`.
func benchAppend(b *testing.B, policy FsyncPolicy) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: policy, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Event{Type: EventDatasetCreated, Dataset: "d",
		Kind: "packet", Total: -1, PerAnalyst: -1}); err != nil {
		b.Fatal(err)
	}
	ev := Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerAppendFsyncNever(b *testing.B)  { benchAppend(b, FsyncNever) }
func BenchmarkLedgerAppendFsyncAlways(b *testing.B) { benchAppend(b, FsyncAlways) }

func BenchmarkLedgerRecovery(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	appendAllB(b, l, chargeEvents(10000))
	l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(dir, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func appendAllB(b *testing.B, l *Ledger, evs []Event) {
	b.Helper()
	for i := range evs {
		if err := l.Append(evs[i]); err != nil {
			b.Fatalf("append %d: %v", i, err)
		}
	}
}
