package ledger

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dptrace/internal/obs"
	"dptrace/internal/vfs"
)

// FsyncPolicy controls when appended records are forced to stable
// storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs before every append returns: an acked charge is
	// durable even across power loss. The safe default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a background timer (Options.FsyncInterval).
	//
	// Crash window: a power loss (or kernel crash) can lose every record
	// written since the last timer sync, INCLUDING charges that were
	// already acked to analysts. Recovery then lands strictly at or
	// below the pre-crash acked total — never above it — so budgets may
	// be re-spent by up to one interval's worth of charges. That is the
	// only invariant this policy offers; deployments that cannot afford
	// the window must use FsyncAlways. An explicit Sync() closes the
	// window at the moment it returns. (Tested in fault_test.go.)
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves syncing to the OS. Survives process crashes
	// (the data is in the page cache) but not power loss.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("ledger: unknown fsync policy %q (always, interval, never)", s)
}

// Errors returned by Append.
var (
	// ErrFrozen means recovery found corrupt history: the ledger
	// refuses all new appends, which upstream refuses all new charges
	// (fail closed — see the package comment).
	ErrFrozen = errors.New("ledger: frozen (corrupt history, fail closed)")
	// ErrDegraded means a journal I/O operation failed at runtime (EIO,
	// ENOSPC, a failed fsync). The ledger permanently refuses all new
	// appends for the rest of the process lifetime — without touching
	// the disk again, so a full disk cannot error-loop. Two rules force
	// this design:
	//
	//   - fsyncgate: after a failed fsync the kernel may have dropped
	//     the dirty pages AND marked them clean, so retrying the sync
	//     can report success without the data being durable. The only
	//     honest response is to stop trusting the segment.
	//   - seq collision: rotating past a failed write and continuing
	//     could put two different records with the same seq on disk; a
	//     surviving phantom would shadow the real record at replay.
	//
	// A record whose write succeeded but whose sync failed may still
	// reach the disk; recovery then over-counts spend, which is the
	// conservative (privacy-safe) direction. Restart the process to
	// reopen the ledger once the disk is fixed.
	ErrDegraded = errors.New("ledger: degraded (journal I/O failure, fail closed)")
	// ErrClosed means the ledger has been Closed.
	ErrClosed = errors.New("ledger: closed")
)

// Options configures Open.
type Options struct {
	// Dir is the ledger directory, created if missing. The ledger owns
	// it exclusively.
	Dir string
	// Fsync is the durability policy; empty means FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval timer period; <=0 means 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery snapshots + compacts after this many appended
	// events. 0 means the 4096 default; negative disables automatic
	// snapshots (Snapshot can still be called explicitly).
	SnapshotEvery int
	// AuditCap bounds the persisted audit trail; <=0 uses the default.
	AuditCap int
	// Logf receives recovery warnings (torn-tail truncations, skipped
	// snapshots). Nil discards them.
	Logf func(format string, args ...any)
	// FS is the filesystem the ledger runs on; nil means the real OS.
	// Tests substitute vfs.FaultFS to exercise every I/O failure path.
	FS vfs.FS

	now func() time.Time // test seam
}

// defaultSnapshotEvery balances WAL replay length against snapshot
// write amplification.
const defaultSnapshotEvery = 4096

// Recovery describes what Open (or Replay) reconstructed.
type Recovery struct {
	// SnapshotSeq is the seq of the snapshot recovery started from
	// (0 = no snapshot).
	SnapshotSeq uint64
	// Events is the number of WAL-tail events replayed on top.
	Events int
	// Segments is the number of WAL segments visited.
	Segments int
	// TornBytes is the size of the torn final record truncated away
	// (0 = clean shutdown).
	TornBytes int64
	// Duration is the wall time recovery took.
	Duration time.Duration
	// Err is non-nil when the history is corrupt; the ledger is then
	// frozen and the state partial.
	Err error
}

// Ledger is an open budget ledger. All methods are safe for concurrent
// use.
type Ledger struct {
	mu          sync.Mutex
	dir         string
	opts        Options
	fs          vfs.FS
	state       *State
	active      vfs.File
	activeSize  int64
	activeStart uint64
	sinceSnap   int
	dirty       bool // writes not yet synced (interval policy)
	frozen      error
	degraded    error
	closed      bool
	rec         Recovery
	now         func() time.Time
	epoch       uint64
	commitHook  func(seq uint64, payload []byte)

	metricsMu sync.Mutex
	metrics   *obs.Registry

	stopInterval chan struct{}
	intervalDone chan struct{}
}

const (
	walMagic  = "dpwal01\n"
	snapMagic = "dpsnap1\n"
	magicSize = 8
)

func segmentName(startSeq uint64) string { return fmt.Sprintf("wal-%016d.wal", startSeq) }
func snapshotName(seq uint64) string     { return fmt.Sprintf("snap-%016d.snap", seq) }

// parseSeq extracts the sequence number from a wal-/snap- file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// Open opens (creating if needed) the ledger in opts.Dir and runs
// crash recovery. A torn final record is truncated with a warning; any
// deeper corruption leaves the ledger frozen: Open still returns it
// (so operators can inspect state and serve read-only traffic) but
// every Append fails with ErrFrozen. Check Recovery().Err.
func Open(opts Options) (*Ledger, error) {
	if opts.Dir == "" {
		return nil, errors.New("ledger: Options.Dir is required")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncAlways
	}
	if _, err := ParseFsyncPolicy(string(opts.Fsync)); err != nil {
		return nil, err
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.FS == nil {
		opts.FS = vfs.OS{}
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	now := opts.now
	if now == nil {
		now = time.Now
	}

	l := &Ledger{dir: opts.Dir, opts: opts, fs: opts.FS, now: now}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.loadEpoch(); err != nil {
		return nil, err
	}
	if l.frozen == nil && l.opts.Fsync == FsyncInterval {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.fsyncLoop()
	}
	return l, nil
}

// logf emits a recovery/operations warning.
func (l *Ledger) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// degrade marks the ledger permanently degraded (first cause wins) and
// returns the error Append should surface. Must hold l.mu.
func (l *Ledger) degrade(cause error) error {
	if l.degraded == nil {
		l.degraded = cause
		l.logf("ledger: DEGRADED, refusing all new appends (fail closed): %v", cause)
	}
	return fmt.Errorf("%w: %v", ErrDegraded, cause)
}

// recover loads the newest valid snapshot, replays the WAL tail, and
// opens the active segment for appending.
func (l *Ledger) recover() error {
	start := time.Now()
	state, rec, segs, tornPath, tornKeep := replay(l.fs, l.dir, l.opts.AuditCap, l.logf)
	l.state = state
	l.rec = rec
	l.rec.Duration = time.Since(start)
	l.state.pruneIdem(l.now().UnixNano())

	if rec.Err != nil {
		l.frozen = rec.Err
		l.logf("ledger: RECOVERY FAILED, freezing (no new charges will be accepted): %v", rec.Err)
		return nil
	}
	if tornPath != "" {
		l.logf("ledger: truncating torn tail of %s (%d bytes) after seq %d",
			filepath.Base(tornPath), rec.TornBytes, state.Seq)
		if tornKeep < magicSize {
			// The tear hit the segment header itself: the file holds no
			// records, so drop it and let rotation start a clean one.
			if err := l.fs.Remove(tornPath); err != nil {
				return fmt.Errorf("ledger: remove torn segment: %w", err)
			}
			segs = segs[:len(segs)-1]
		} else if err := l.fs.Truncate(tornPath, tornKeep); err != nil {
			return fmt.Errorf("ledger: truncate torn tail: %w", err)
		}
	}

	// Open the last segment for appending, or start the first one.
	if len(segs) == 0 {
		return l.rotateLocked()
	}
	last := segs[len(segs)-1]
	f, err := l.fs.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: open active segment: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("ledger: seek active segment: %w", err)
	}
	l.active, l.activeSize, l.activeStart = f, size, last.start
	return nil
}

// segment is one WAL file found on disk.
type segment struct {
	path  string
	start uint64
}

// replay reconstructs state from dir without modifying anything on
// disk. It returns the folded state, recovery stats, the segment list,
// and — when the final segment ends in a torn record — that segment's
// path plus the byte offset to keep. rec.Err is set (and folding stops)
// on corrupt history.
func replay(fsys vfs.FS, dir string, auditCap int, logf func(string, ...any)) (*State, Recovery, []segment, string, int64) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	state := NewState(auditCap)
	var rec Recovery

	entries, err := fsys.ReadDir(dir)
	if err != nil {
		rec.Err = fmt.Errorf("ledger: read dir: %w", err)
		return state, rec, nil, "", 0
	}
	var segs []segment
	var snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".wal"); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), start: seq})
		} else if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first

	// Newest loadable snapshot wins; unreadable ones are warned past.
	for _, seq := range snaps {
		path := filepath.Join(dir, snapshotName(seq))
		st, err := loadSnapshot(fsys, path, auditCap)
		if err != nil {
			logf("ledger: skipping unreadable snapshot %s: %v", filepath.Base(path), err)
			continue
		}
		state = st
		rec.SnapshotSeq = seq
		break
	}

	// Replay WAL records with seq > snapshot seq. Segments whose entire
	// range predates the snapshot are skipped without reading (their
	// successor's start seq bounds their contents).
	var tornPath string
	var tornKeep int64
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].start <= state.Seq+1 {
			continue
		}
		rec.Segments++
		data, err := fsys.ReadFile(seg.path)
		if err != nil {
			rec.Err = fmt.Errorf("ledger: read %s: %w", filepath.Base(seg.path), err)
			return state, rec, segs, "", 0
		}
		last := i == len(segs)-1
		if len(data) < magicSize {
			// A crash can tear even the header write of a fresh
			// segment, but only the final one.
			if last {
				tornPath, tornKeep = seg.path, 0
				rec.TornBytes = int64(len(data))
				break
			}
			rec.Err = fmt.Errorf("%w: %s: short header", ErrCorrupt, filepath.Base(seg.path))
			return state, rec, segs, "", 0
		}
		if string(data[:magicSize]) != walMagic {
			rec.Err = fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(seg.path))
			return state, rec, segs, "", 0
		}
		off := int64(magicSize)
		for off < int64(len(data)) {
			ev, n, err := DecodeRecord(data[off:])
			if errors.Is(err, ErrTornRecord) {
				if last {
					tornPath, tornKeep = seg.path, off
					rec.TornBytes = int64(len(data)) - off
					break
				}
				rec.Err = fmt.Errorf("%w: %s: torn record at offset %d with later history present",
					ErrCorrupt, filepath.Base(seg.path), off)
				return state, rec, segs, "", 0
			}
			if err != nil {
				rec.Err = fmt.Errorf("%s at offset %d: %w", filepath.Base(seg.path), off, err)
				return state, rec, segs, "", 0
			}
			if ev.Seq > state.Seq {
				if err := state.Apply(&ev); err != nil {
					rec.Err = fmt.Errorf("%s at offset %d: %w", filepath.Base(seg.path), off, err)
					return state, rec, segs, "", 0
				}
				rec.Events++
			}
			off += int64(n)
		}
	}
	return state, rec, segs, tornPath, tornKeep
}

// Replay reconstructs the ledger state read-only (nothing on disk is
// modified, torn tails included) — the engine behind `dpledger verify`
// and `dpledger inspect`.
func Replay(dir string, auditCap int) (*State, Recovery, error) {
	start := time.Now()
	state, rec, _, _, _ := replay(vfs.OS{}, dir, auditCap, nil)
	rec.Duration = time.Since(start)
	return state, rec, rec.Err
}

// loadSnapshot reads and verifies one snapshot file.
func loadSnapshot(fsys vfs.FS, path string, auditCap int) (*State, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < magicSize || string(data[:magicSize]) != snapMagic {
		return nil, errors.New("bad magic")
	}
	ev, n, err := DecodeRecord(data[magicSize:])
	if err != nil {
		return nil, err
	}
	if int64(magicSize+n) != int64(len(data)) {
		return nil, errors.New("trailing bytes after snapshot record")
	}
	return decodeSnapshotState(&ev, auditCap)
}

// decodeSnapshotState folds a decoded snapshot record into a State,
// normalizing maps JSON may have left nil.
func decodeSnapshotState(ev *Event, auditCap int) (*State, error) {
	if ev.Type != "snapshot" {
		return nil, fmt.Errorf("unexpected record type %q", ev.Type)
	}
	st := NewState(auditCap)
	if err := json.Unmarshal(ev.Body, st); err != nil {
		return nil, err
	}
	if st.Datasets == nil {
		st.Datasets = make(map[string]*DatasetState)
	}
	if st.Idem == nil {
		st.Idem = make(map[string]*IdemRecord)
	}
	for _, ds := range st.Datasets {
		if ds.Spent == nil {
			ds.Spent = make(map[string]float64)
		}
	}
	return st, nil
}

// State returns the ledger's folded state. Read it during startup
// restoration, before concurrent Appends begin: the same object is
// updated in place by Append.
func (l *Ledger) State() *State { return l.state }

// Recovery reports what Open reconstructed.
func (l *Ledger) Recovery() Recovery { return l.rec }

// Frozen reports the corruption that froze the ledger, or nil.
func (l *Ledger) Frozen() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frozen
}

// Degraded reports the runtime I/O failure that degraded the ledger,
// or nil.
func (l *Ledger) Degraded() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Refusing reports why the ledger refuses appends (frozen or degraded),
// or nil when it is accepting. Servers use it to shed spending traffic
// before doing any work.
func (l *Ledger) Refusing() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen != nil {
		return fmt.Errorf("%w: %v", ErrFrozen, l.frozen)
	}
	if l.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	return nil
}

// Append durably records one event. On return with a nil error the
// event is in the WAL (and, under FsyncAlways, on stable storage) —
// callers ack the charge only after that, so an acked charge is never
// lost. Any error means the event must be treated as NOT recorded and
// the charge refused; the one exception is a sync failure after a
// successful write, where the event may still survive — recovery then
// over-counts spend, which is the safe (conservative) direction.
//
// The first I/O error permanently degrades the ledger (see
// ErrDegraded): subsequent Appends refuse immediately without touching
// the disk.
func (l *Ledger) Append(ev Event) error {
	_, err := l.AppendSeq(ev)
	return err
}

// AppendSeq is Append, additionally returning the sequence number the
// event committed at — the handle replication waits on.
func (l *Ledger) AppendSeq(ev Event) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen != nil {
		return 0, fmt.Errorf("%w: %v", ErrFrozen, l.frozen)
	}
	if l.degraded != nil {
		return 0, fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	if l.closed {
		return 0, ErrClosed
	}
	ev.Seq = l.state.Seq + 1
	if ev.Time == 0 {
		ev.Time = l.now().UnixNano()
	}
	buf, err := EncodeRecord(nil, &ev)
	if err != nil {
		return 0, err
	}
	if err := l.appendRecordLocked(&ev, buf); err != nil {
		return 0, err
	}
	return ev.Seq, nil
}

// appendRecordLocked writes one encoded record (buf = header+payload,
// ev its decoded form with ev.Seq == state.Seq+1), syncs per policy,
// folds it into state, and fires the commit hook. Must hold l.mu.
func (l *Ledger) appendRecordLocked(ev *Event, buf []byte) error {
	if _, err := l.active.WriteAt(buf, l.activeSize); err != nil {
		// A partial write leaves a torn tail that the next recovery
		// truncates. Appending past it is NOT safe (a later successful
		// write would strand a corrupt record mid-history), so the
		// ledger degrades.
		return l.degrade(fmt.Errorf("append: %w", err))
	}
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncActive(); err != nil {
			// fsyncgate: the failed sync may have dropped the dirty
			// pages and marked them clean — retrying could falsely
			// report durability. Poison the segment instead.
			return l.degrade(fmt.Errorf("fsync: %w", err))
		}
	} else {
		l.dirty = true
	}
	l.activeSize += int64(len(buf))
	if err := l.state.Apply(ev); err != nil {
		// Cannot happen for events this process built; fail closed if
		// it somehow does.
		l.frozen = err
		return err
	}
	l.countAppend(ev.Type)
	if l.commitHook != nil {
		l.commitHook(ev.Seq, buf[recordHeaderSize:])
	}
	l.sinceSnap++
	if l.opts.SnapshotEvery > 0 && l.sinceSnap >= l.opts.SnapshotEvery {
		if err := l.snapshotLocked(); err != nil {
			// A failed snapshot is an operational problem, not a
			// correctness one: the WAL still has everything. (If the
			// failure implicated the WAL itself — a failed pre-sync or
			// rotation — snapshotLocked already degraded the ledger.)
			l.logf("ledger: snapshot failed (will retry): %v", err)
		}
	}
	return nil
}

// syncActive fsyncs the active segment, timing it into the metrics.
func (l *Ledger) syncActive() error {
	start := time.Now()
	err := l.active.Sync()
	l.observeFsync(time.Since(start))
	if err == nil {
		l.dirty = false
	}
	return err
}

// fsyncLoop is the FsyncInterval background syncer.
func (l *Ledger) fsyncLoop() {
	defer close(l.intervalDone)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.degraded == nil && l.dirty && l.active != nil {
				if err := l.syncActive(); err != nil {
					// fsyncgate again: the interval syncer must not
					// keep retrying a sync the kernel may have already
					// "absorbed" — degrade so no further charge is
					// acked against a segment of unknown durability.
					_ = l.degrade(fmt.Errorf("interval fsync: %w", err))
				}
			}
			l.mu.Unlock()
		case <-l.stopInterval:
			return
		}
	}
}

// Sync forces buffered appends to stable storage regardless of policy.
// Under FsyncInterval it closes the crash window at the moment it
// returns nil. A failure degrades the ledger (fsyncgate).
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	if l.closed || l.active == nil {
		return nil
	}
	if err := l.syncActive(); err != nil {
		return l.degrade(fmt.Errorf("sync: %w", err))
	}
	return nil
}

// Snapshot checkpoints the current state and compacts the WAL: older
// segments and snapshots are deleted once the new snapshot is durable.
func (l *Ledger) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen != nil {
		return fmt.Errorf("%w: %v", ErrFrozen, l.frozen)
	}
	if l.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	if l.closed {
		return ErrClosed
	}
	return l.snapshotLocked()
}

func (l *Ledger) snapshotLocked() error {
	// The WAL must be durable through the snapshot seq before older
	// segments become deletable.
	if l.dirty {
		if err := l.syncActive(); err != nil {
			// The WAL's durability is now unknown — this is an append
			// path failure, not a snapshot one.
			return l.degrade(fmt.Errorf("pre-snapshot fsync: %w", err))
		}
	}
	l.state.pruneIdem(l.now().UnixNano())
	body, err := json.Marshal(l.state)
	if err != nil {
		return err
	}
	seq := l.state.Seq
	buf := append([]byte(nil), snapMagic...)
	buf, err = EncodeRecord(buf, &Event{Seq: seq, Time: l.now().UnixNano(), Type: "snapshot", Body: body})
	if err != nil {
		return err
	}
	final := filepath.Join(l.dir, snapshotName(seq))
	tmp := final + ".tmp"
	// Snapshot-file failures are best-effort: the WAL still holds every
	// event, so the ledger keeps appending and retries at the next
	// SnapshotEvery boundary.
	if err := writeFileSync(l.fs, tmp, buf); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(l.fs, l.dir)
	l.sinceSnap = 0

	// Rotate to a fresh segment, then drop everything the snapshot
	// covers. A rotation failure leaves no active segment to append to,
	// so it degrades the ledger rather than leaving a nil file behind.
	if err := l.rotateLocked(); err != nil {
		return l.degrade(fmt.Errorf("rotate after snapshot: %w", err))
	}
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil // compaction is best-effort
	}
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), "wal-", ".wal"); ok && s <= seq {
			if err := l.fs.Remove(filepath.Join(l.dir, e.Name())); err != nil {
				l.logf("ledger: compaction: %v", err)
			}
		} else if s, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && s < seq {
			if err := l.fs.Remove(filepath.Join(l.dir, e.Name())); err != nil {
				l.logf("ledger: compaction: %v", err)
			}
		}
	}
	return nil
}

// rotateLocked closes the active segment and starts a new one at the
// next sequence number.
func (l *Ledger) rotateLocked() error {
	if l.active != nil {
		if l.dirty {
			if err := l.syncActive(); err != nil {
				return err
			}
		}
		l.active.Close()
		l.active = nil
	}
	start := l.state.Seq + 1
	path := filepath.Join(l.dir, segmentName(start))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: create segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
		f.Close()
		return fmt.Errorf("ledger: write segment header: %w", err)
	}
	if l.opts.Fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("ledger: sync segment header: %w", err)
		}
	}
	syncDir(l.fs, l.dir)
	l.active, l.activeSize, l.activeStart = f, magicSize, start
	return nil
}

// Close syncs and closes the ledger. Further Appends fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.active != nil {
		if l.dirty && l.degraded == nil {
			err = l.syncActive()
		}
		if cerr := l.active.Close(); err == nil && l.degraded == nil {
			err = cerr
		}
		l.active = nil
	}
	stop := l.stopInterval
	done := l.intervalDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creations are durable.
// Best-effort: some platforms refuse directory syncs.
func syncDir(fsys vfs.FS, dir string) {
	_ = fsys.SyncDir(dir)
}

// --- metrics ---------------------------------------------------------

// AttachMetrics exports the ledger's telemetry into reg:
// dp_ledger_appends_total{type=...}, dp_ledger_fsync_seconds,
// dp_ledger_recovery_events_total, dp_ledger_recovery_torn_bytes_total,
// dp_ledger_recovery_seconds, and the live gauges dp_ledger_seq,
// dp_ledger_frozen, and dp_ledger_degraded. Recovery totals are
// recorded once, at attach time.
func (l *Ledger) AttachMetrics(reg *obs.Registry) {
	l.metricsMu.Lock()
	l.metrics = reg
	l.metricsMu.Unlock()
	if reg == nil {
		return
	}
	reg.Counter("dp_ledger_recovery_events_total").Add(float64(l.rec.Events))
	reg.Counter("dp_ledger_recovery_torn_bytes_total").Add(float64(l.rec.TornBytes))
	reg.Counter("dp_ledger_recovery_seconds").Add(l.rec.Duration.Seconds())
	reg.GaugeFunc("dp_ledger_seq", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.state.Seq)
	})
	reg.GaugeFunc("dp_ledger_frozen", func() float64 {
		if l.Frozen() != nil {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("dp_ledger_degraded", func() float64 {
		if l.Degraded() != nil {
			return 1
		}
		return 0
	})
}

func (l *Ledger) countAppend(typ string) {
	l.metricsMu.Lock()
	reg := l.metrics
	l.metricsMu.Unlock()
	if reg != nil {
		reg.Counter("dp_ledger_appends_total", "type", typ).Inc()
	}
}

func (l *Ledger) observeFsync(d time.Duration) {
	l.metricsMu.Lock()
	reg := l.metrics
	l.metricsMu.Unlock()
	if reg != nil {
		reg.Histogram("dp_ledger_fsync_seconds", obs.DurationBuckets()).Observe(d.Seconds())
	}
}

// --- inspection ------------------------------------------------------

// Events reads every event in dir's WAL segments in order, read-only,
// calling fn for each (including those a snapshot already covers, when
// their segments still exist). It stops at a torn tail and returns
// ErrCorrupt-wrapped errors on deeper damage — `dpledger inspect`.
func Events(dir string, fn func(Event) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []segment
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".wal"); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), start: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		last := i == len(segs)-1
		if len(data) < magicSize || !bytes.Equal(data[:magicSize], []byte(walMagic)) {
			if last && len(data) < magicSize {
				return nil
			}
			return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(seg.path))
		}
		off := magicSize
		for off < len(data) {
			ev, n, err := DecodeRecord(data[off:])
			if errors.Is(err, ErrTornRecord) {
				if last {
					return nil
				}
				return fmt.Errorf("%w: %s: torn record mid-history", ErrCorrupt, filepath.Base(seg.path))
			}
			if err != nil {
				return fmt.Errorf("%s at offset %d: %w", filepath.Base(seg.path), off, err)
			}
			if err := fn(ev); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}
