package ledger

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drain reads every available record, returning seqs and payloads.
func drain(t *testing.T, tr *TailReader) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	for {
		seq, p, err := tr.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("TailReader.Next: %v", err)
		}
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), p...))
	}
}

func TestTailReaderStreamsAndResumes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, chargeEvents(9)) // seqs 1..10

	tr := NewTailReader(nil, dir, 0)
	seqs, _ := drain(t, tr)
	if len(seqs) != 10 || seqs[0] != 1 || seqs[9] != 10 {
		t.Fatalf("full stream seqs = %v", seqs)
	}

	// New appends become visible to the same reader (live tail).
	appendAll(t, l, []Event{{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}})
	seqs, _ = drain(t, tr)
	if len(seqs) != 1 || seqs[0] != 11 {
		t.Fatalf("live tail seqs = %v, want [11]", seqs)
	}

	// Resume from the middle.
	mid := NewTailReader(nil, dir, 6)
	seqs, _ = drain(t, mid)
	if len(seqs) != 5 || seqs[0] != 7 {
		t.Fatalf("resume seqs = %v, want 7..11", seqs)
	}
}

func TestTailReaderAcrossRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr := NewTailReader(nil, dir, 0)
	appendAll(t, l, chargeEvents(2)) // seqs 1..3
	seqs, _ := drain(t, tr)
	if len(seqs) != 3 {
		t.Fatalf("pre-rotation seqs = %v", seqs)
	}
	// Crossing SnapshotEvery (at seq 4) snapshots, rotates, and
	// compacts the old segment — including seq 4's own record. A
	// reader that had only reached seq 3 therefore finds its next
	// record gone and must fall back to a snapshot.
	appendAll(t, l, chargeEvents(3)[1:]) // seqs 4..6, snapshot at 4
	if _, _, err := tr.Next(); !errors.Is(err, ErrCompacted) {
		t.Fatalf("reader behind compaction err = %v, want ErrCompacted", err)
	}

	// A reader starting at the snapshot boundary streams the retained
	// tail from the rotated segment.
	fresh := NewTailReader(nil, dir, 4)
	seqs, _ = drain(t, fresh)
	if len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 6 {
		t.Fatalf("post-rotation seqs = %v, want 5..6", seqs)
	}

	// A fresh reader wanting the full compacted-away history also gets
	// ErrCompacted.
	old := NewTailReader(nil, dir, 0)
	if _, _, err := old.Next(); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted read err = %v, want ErrCompacted", err)
	}
}

func TestTailReaderDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(3))
	l.Close()

	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			path := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(path)
			data[len(data)/2] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr := NewTailReader(nil, dir, 0)
	var lastErr error
	for {
		_, _, err := tr.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrCorrupt) {
		t.Fatalf("corrupt segment err = %v, want ErrCorrupt", lastErr)
	}
}

func TestCommitHookFiresInOrderWithPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var seqs []uint64
	var crcs []uint32
	l.SetCommitHook(func(seq uint64, payload []byte) {
		seqs = append(seqs, seq)
		crcs = append(crcs, Checksum(payload))
	})
	appendAll(t, l, chargeEvents(4))
	if len(seqs) != 5 {
		t.Fatalf("hook fired %d times, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("hook seqs = %v, want 1..5", seqs)
		}
	}
	// Hook payloads must be the bytes on disk.
	tr := NewTailReader(nil, dir, 0)
	_, payloads := drain(t, tr)
	for i, p := range payloads {
		if Checksum(p) != crcs[i] {
			t.Fatalf("hook payload %d differs from disk", i)
		}
	}
}

func TestReplicaAppendByteIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(Options{Dir: dirA, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Options{Dir: dirB, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	appendAll(t, a, chargeEvents(6))
	tr := NewTailReader(nil, dirA, 0)
	for {
		seq, p, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := b.ReplicaAppend(seq, p); err != nil {
			t.Fatalf("ReplicaAppend(%d): %v", seq, err)
		}
	}
	if a.CommittedSeq() != b.CommittedSeq() {
		t.Fatalf("seq drift: %d vs %d", a.CommittedSeq(), b.CommittedSeq())
	}
	// The replica's WAL must hold the primary's exact bytes.
	ta, tb := NewTailReader(nil, dirA, 0), NewTailReader(nil, dirB, 0)
	_, pa := drain(t, ta)
	_, pb := drain(t, tb)
	if len(pa) != len(pb) {
		t.Fatalf("record counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if string(pa[i]) != string(pb[i]) {
			t.Fatalf("record %d differs between primary and replica", i)
		}
	}
	// Out-of-order and gapped appends are refused.
	_, p, _ := NewTailReader(nil, dirA, 2).Next()
	if err := b.ReplicaAppend(3, p); err == nil {
		t.Fatal("duplicate replica append accepted")
	}
}

func TestInstallSnapshotSeedsEmptyLedgerOnly(t *testing.T) {
	dirA := t.TempDir()
	a, err := Open(Options{Dir: dirA, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, a, chargeEvents(9))
	if err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	a.Close()

	seq, payload, err := SnapshotPayload(nil, dirA)
	if err != nil || seq != 10 {
		t.Fatalf("SnapshotPayload = seq %d, err %v", seq, err)
	}

	dirB := t.TempDir()
	b, err := Open(Options{Dir: dirB, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InstallSnapshot(payload); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if b.CommittedSeq() != 10 {
		t.Fatalf("seq after install = %d, want 10", b.CommittedSeq())
	}
	ds := b.State().Datasets["d"]
	if ds == nil || ds.Spent["alice"] == 0 {
		t.Fatal("snapshot state not installed")
	}
	// Appends continue at seq 11 and survive reopen.
	if err := b.Append(Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b2, err := Open(Options{Dir: dirB, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Recovery().Err != nil {
		t.Fatalf("reopen after install: %v", b2.Recovery().Err)
	}
	if b2.CommittedSeq() != 11 {
		t.Fatalf("reopened seq = %d, want 11", b2.CommittedSeq())
	}

	// A ledger with history refuses installation.
	if err := b2.InstallSnapshot(payload); err == nil {
		t.Fatal("InstallSnapshot onto non-empty ledger accepted")
	}
}

func TestEpochPersists(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", l.Epoch())
	}
	if err := l.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := l.SetEpoch(2); err == nil {
		t.Fatal("epoch rollback accepted")
	}
	if err := l.SetEpoch(3); err != nil {
		t.Fatalf("idempotent SetEpoch: %v", err)
	}
	l.Close()
	l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Epoch() != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", l2.Epoch())
	}
}

func TestRecordPayloadDivergenceProbe(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, chargeEvents(4))
	p, err := RecordPayload(nil, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := decodePayload(p, &ev); err != nil || ev.Seq != 3 {
		t.Fatalf("RecordPayload(3) decoded seq %d, err %v", ev.Seq, err)
	}
	if _, err := RecordPayload(nil, dir, 99); err == nil {
		t.Fatal("RecordPayload past the head succeeded")
	}
}
