package ledger

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// FuzzLedgerDecode hammers DecodeRecord with arbitrary bytes. The
// decoder sits on the recovery path — it must classify every input as
// a record, a torn tail, or corruption, and never panic. Successful
// decodes must survive an encode/decode round trip losslessly (a
// lossy trip would make replayed state drift from the live one).
func FuzzLedgerDecode(f *testing.F) {
	valid, err := EncodeRecord(nil, &Event{Seq: 1, Type: EventDatasetCreated,
		Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 1})
	if err != nil {
		f.Fatal(err)
	}
	charge, err := EncodeRecord(nil, &Event{Seq: 2, Type: EventCharge,
		Dataset: "d", Analyst: "alice", Epsilon: 0.1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(charge)
	f.Add(append(append([]byte(nil), valid...), charge...))
	f.Add(valid[:len(valid)-3]) // torn payload
	f.Add(valid[:5])            // torn header
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xFF // CRC mismatch
	f.Add(flipped)
	huge := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(huge, maxRecordSize+1) // oversized length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < recordHeaderSize || n > len(data) {
			t.Fatalf("decoded size %d out of range [%d, %d]", n, recordHeaderSize, len(data))
		}
		re, err := EncodeRecord(nil, &ev)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		ev2, n2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if len(ev.Body) == 0 {
			ev.Body = nil // omitempty folds []byte{} into absent
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("event did not round-trip:\n got %+v\nwant %+v", ev2, ev)
		}
	})
}
