package ledger

import (
	"fmt"
	"sort"
)

// State is the fold of a ledger's event history: everything a
// restarted server needs to pick up exactly where the crashed one
// stopped. Snapshots are a serialized State; recovery loads the newest
// valid snapshot and replays the WAL tail through Apply.
//
// Budgets inside State use the wire sentinel (-1 == +Inf); decode with
// DecodeBudget at the consumer boundary.
type State struct {
	// Seq is the sequence number of the last applied event.
	Seq      uint64                   `json:"seq"`
	Datasets map[string]*DatasetState `json:"datasets,omitempty"`
	// Audit is the persisted audit trail, oldest first, bounded by
	// auditCap with the same drop-oldest-half policy as the live log.
	Audit []AuditRecord `json:"audit,omitempty"`
	// Idem maps idemKeyString() to stored idempotent replies.
	Idem map[string]*IdemRecord `json:"idem,omitempty"`
	// Standing maps StandingKeyString() to standing-query state:
	// registration, window cursor, cumulative standing spend, and the
	// bounded ring of recent window results.
	Standing map[string]*StandingState `json:"standing,omitempty"`

	auditCap int
}

// DatasetState is one dataset's durable budget ledger.
type DatasetState struct {
	Kind string `json:"kind"`
	// Total and PerAnalyst are the registered budget bounds (wire
	// sentinel form).
	Total      float64 `json:"total"`
	PerAnalyst float64 `json:"perAnalyst"`
	// TotalSpent is the shared budget's cumulative draw, accumulated in
	// event order so replay reproduces the live run's float sum
	// bit-for-bit (and therefore the exact same refusal boundary).
	TotalSpent float64 `json:"totalSpent"`
	// Spent is each analyst's cumulative draw, same in-order property.
	Spent map[string]float64 `json:"spent,omitempty"`
}

// AuditRecord is the persisted form of one audit-trail entry.
type AuditRecord struct {
	Time    int64   `json:"time"`
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"`
	Epsilon float64 `json:"epsilon"`
	Charged float64 `json:"charged"`
	Outcome string  `json:"outcome"`
}

// IdemRecord is one stored idempotent reply.
type IdemRecord struct {
	Endpoint string `json:"endpoint"`
	Dataset  string `json:"dataset"`
	Analyst  string `json:"analyst"`
	Key      string `json:"key"`
	Status   int    `json:"status"`
	Body     []byte `json:"body"`
	Expires  int64  `json:"expires"`
}

// IdemKeyString is the State.Idem map key for one logical request.
func IdemKeyString(endpoint, dataset, analyst, key string) string {
	return endpoint + "\x00" + dataset + "\x00" + analyst + "\x00" + key
}

// StandingState is one standing query's durable state: everything a
// restarted server needs to resume the window schedule exactly where
// the crashed one stopped — never re-firing a charged window, never
// skipping an uncharged one.
type StandingState struct {
	// Seq is the registration event's sequence number. Restores replay
	// registrations in Seq order so the scheduler's deterministic
	// firing order (registration order) survives restarts.
	Seq         uint64  `json:"seq"`
	Dataset     string  `json:"dataset"`
	Analyst     string  `json:"analyst"`
	ID          string  `json:"id"`
	Kind        string  `json:"kind"`
	Epsilon     float64 `json:"epsilon"`
	Reservation float64 `json:"reservation"`
	Width       uint64  `json:"width,omitempty"`
	Stride      uint64  `json:"stride,omitempty"`
	EveryMs     int64   `json:"everyMs,omitempty"`
	Base        uint64  `json:"base"`
	// Request is the full registration request body (wire JSON), kept
	// so the restarted server can rebuild the executable query.
	Request []byte `json:"request,omitempty"`

	// Spent is the cumulative standing ε drawn by fired windows, the
	// in-order sum of standing_window Charged values.
	Spent float64 `json:"spent"`
	// NextWindow is the cursor: the index of the next window to fire.
	NextWindow uint64 `json:"nextWindow"`
	// LastMark is the end watermark of the last fired window.
	LastMark uint64 `json:"lastMark"`
	// LastFireNS is the wall time of the last fired window (Unix
	// nanoseconds) — the replayed deadline for wall-clock windows.
	LastFireNS int64 `json:"lastFireNs,omitempty"`
	// Status is "active", "exhausted", or "canceled".
	Status string `json:"status"`
	// Windows is the bounded ring of recent window results, oldest
	// first, capped at StandingRingCap like the live ring.
	Windows []StandingWindowRecord `json:"windows,omitempty"`
}

// StandingWindowRecord is the persisted form of one fired window.
type StandingWindowRecord struct {
	Window  uint64  `json:"window"`
	Start   uint64  `json:"start"`
	End     uint64  `json:"end"`
	Charged float64 `json:"charged"`
	Outcome string  `json:"outcome"`
	Body    []byte  `json:"body,omitempty"`
	Time    int64   `json:"time"`
}

// StandingKeyString is the State.Standing map key for one query.
func StandingKeyString(dataset, id string) string {
	return dataset + "\x00" + id
}

// StandingRingCap bounds the per-query result ring, in the fold and in
// the live registry alike — they must agree or replay would diverge
// from the live ring's contents.
const StandingRingCap = 64

// Standing statuses persisted in StandingState.Status.
const (
	StandingActive    = "active"
	StandingExhausted = "exhausted"
	StandingCanceled  = "canceled"
)

// defaultAuditCap mirrors the server-side audit log bound.
const defaultAuditCap = 10000

// NewState returns an empty state. auditCap <= 0 uses the default.
func NewState(auditCap int) *State {
	if auditCap <= 0 {
		auditCap = defaultAuditCap
	}
	return &State{
		Datasets: make(map[string]*DatasetState),
		Idem:     make(map[string]*IdemRecord),
		auditCap: auditCap,
	}
}

// Apply folds one event into the state. Events must arrive in strictly
// sequential order (seq = Seq+1); any violation, reference to an
// unknown dataset, or unknown event type means the history is not the
// one that was written — the caller must fail closed.
func (s *State) Apply(ev *Event) error {
	if ev.Seq != s.Seq+1 {
		return fmt.Errorf("%w: sequence gap: have %d, next event is %d", ErrCorrupt, s.Seq, ev.Seq)
	}
	switch ev.Type {
	case EventDatasetCreated:
		if ev.Dataset == "" {
			return fmt.Errorf("%w: dataset_created without a name (seq %d)", ErrCorrupt, ev.Seq)
		}
		if _, ok := s.Datasets[ev.Dataset]; ok {
			return fmt.Errorf("%w: dataset %q created twice (seq %d)", ErrCorrupt, ev.Dataset, ev.Seq)
		}
		s.Datasets[ev.Dataset] = &DatasetState{
			Kind:       ev.Kind,
			Total:      ev.Total,
			PerAnalyst: ev.PerAnalyst,
			Spent:      make(map[string]float64),
		}

	case EventCharge:
		ds, err := s.dataset(ev)
		if err != nil {
			return err
		}
		ds.Spent[ev.Analyst] += ev.Epsilon
		ds.TotalSpent += ev.Epsilon

	case EventRollback:
		ds, err := s.dataset(ev)
		if err != nil {
			return err
		}
		// Mirror the live agents' clamp-at-zero rollback semantics.
		ds.Spent[ev.Analyst] -= ev.Epsilon
		if ds.Spent[ev.Analyst] < 0 {
			ds.Spent[ev.Analyst] = 0
		}
		ds.TotalSpent -= ev.Epsilon
		if ds.TotalSpent < 0 {
			ds.TotalSpent = 0
		}

	case EventRefusal, EventAudit:
		cap := s.auditCap
		if cap <= 0 {
			cap = defaultAuditCap
		}
		if len(s.Audit) >= cap {
			keep := cap / 2
			copy(s.Audit, s.Audit[len(s.Audit)-keep:])
			s.Audit = s.Audit[:keep]
		}
		s.Audit = append(s.Audit, AuditRecord{
			Time: ev.Time, Analyst: ev.Analyst, Dataset: ev.Dataset,
			Query: ev.Query, Epsilon: ev.Epsilon, Charged: ev.Charged,
			Outcome: ev.Outcome,
		})

	case EventIdemReply:
		if s.Idem == nil {
			s.Idem = make(map[string]*IdemRecord)
		}
		s.Idem[IdemKeyString(ev.Endpoint, ev.Dataset, ev.Analyst, ev.Key)] = &IdemRecord{
			Endpoint: ev.Endpoint, Dataset: ev.Dataset, Analyst: ev.Analyst,
			Key: ev.Key, Status: ev.Status, Body: ev.Body, Expires: ev.Expires,
		}

	case EventStandingRegistered:
		if _, err := s.dataset(ev); err != nil {
			return err
		}
		if ev.Standing == "" {
			return fmt.Errorf("%w: standing_registered without an id (seq %d)", ErrCorrupt, ev.Seq)
		}
		key := StandingKeyString(ev.Dataset, ev.Standing)
		if s.Standing == nil {
			s.Standing = make(map[string]*StandingState)
		}
		if _, ok := s.Standing[key]; ok {
			return fmt.Errorf("%w: standing query %q registered twice on %q (seq %d)",
				ErrCorrupt, ev.Standing, ev.Dataset, ev.Seq)
		}
		s.Standing[key] = &StandingState{
			Seq: ev.Seq, Dataset: ev.Dataset, Analyst: ev.Analyst,
			ID: ev.Standing, Kind: ev.Query,
			Epsilon: ev.Epsilon, Reservation: ev.Reservation,
			Width: ev.Width, Stride: ev.Stride, EveryMs: ev.EveryMs,
			Base: ev.Base, LastMark: ev.Base, Request: ev.Body,
			Status: StandingActive,
		}

	case EventStandingWindow:
		st, err := s.standing(ev)
		if err != nil {
			return err
		}
		// Cursor and charge move together: this one event both advances
		// the window cursor and folds the window's ε into the dataset's
		// spends, mirroring the live run's silent in-memory charge.
		if ev.Charged != 0 {
			ds, err := s.dataset(ev)
			if err != nil {
				return err
			}
			ds.Spent[st.Analyst] += ev.Charged
			ds.TotalSpent += ev.Charged
		}
		st.Spent += ev.Charged
		st.NextWindow = ev.Window + 1
		st.LastMark = ev.Watermark
		st.LastFireNS = ev.Time
		if ev.Outcome == StandingExhausted {
			st.Status = StandingExhausted
		}
		if len(st.Windows) >= StandingRingCap {
			copy(st.Windows, st.Windows[1:])
			st.Windows = st.Windows[:len(st.Windows)-1]
		}
		st.Windows = append(st.Windows, StandingWindowRecord{
			Window: ev.Window, Start: ev.WindowStart, End: ev.Watermark,
			Charged: ev.Charged, Outcome: ev.Outcome, Body: ev.Body,
			Time: ev.Time,
		})

	case EventStandingCanceled:
		st, err := s.standing(ev)
		if err != nil {
			return err
		}
		st.Status = StandingCanceled

	default:
		return fmt.Errorf("%w: unknown event type %q (seq %d)", ErrCorrupt, ev.Type, ev.Seq)
	}
	s.Seq = ev.Seq
	return nil
}

// pruneIdem drops replies that expired before now (Unix nanoseconds).
func (s *State) pruneIdem(now int64) {
	for k, rec := range s.Idem {
		if rec.Expires != 0 && rec.Expires < now {
			delete(s.Idem, k)
		}
	}
}

// dataset resolves the event's dataset, failing closed on references
// to datasets the history never created.
func (s *State) dataset(ev *Event) (*DatasetState, error) {
	ds, ok := s.Datasets[ev.Dataset]
	if !ok {
		return nil, fmt.Errorf("%w: %s for unknown dataset %q (seq %d)", ErrCorrupt, ev.Type, ev.Dataset, ev.Seq)
	}
	return ds, nil
}

// standing resolves the event's standing query, failing closed on
// references to queries the history never registered.
func (s *State) standing(ev *Event) (*StandingState, error) {
	st, ok := s.Standing[StandingKeyString(ev.Dataset, ev.Standing)]
	if !ok {
		return nil, fmt.Errorf("%w: %s for unknown standing query %q on %q (seq %d)",
			ErrCorrupt, ev.Type, ev.Standing, ev.Dataset, ev.Seq)
	}
	return st, nil
}

// DatasetNames lists the datasets in the state, sorted.
func (s *State) DatasetNames() []string {
	names := make([]string, 0, len(s.Datasets))
	for name := range s.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
