package ledger

import (
	"fmt"
	"sort"
)

// State is the fold of a ledger's event history: everything a
// restarted server needs to pick up exactly where the crashed one
// stopped. Snapshots are a serialized State; recovery loads the newest
// valid snapshot and replays the WAL tail through Apply.
//
// Budgets inside State use the wire sentinel (-1 == +Inf); decode with
// DecodeBudget at the consumer boundary.
type State struct {
	// Seq is the sequence number of the last applied event.
	Seq      uint64                   `json:"seq"`
	Datasets map[string]*DatasetState `json:"datasets,omitempty"`
	// Audit is the persisted audit trail, oldest first, bounded by
	// auditCap with the same drop-oldest-half policy as the live log.
	Audit []AuditRecord `json:"audit,omitempty"`
	// Idem maps idemKeyString() to stored idempotent replies.
	Idem map[string]*IdemRecord `json:"idem,omitempty"`

	auditCap int
}

// DatasetState is one dataset's durable budget ledger.
type DatasetState struct {
	Kind string `json:"kind"`
	// Total and PerAnalyst are the registered budget bounds (wire
	// sentinel form).
	Total      float64 `json:"total"`
	PerAnalyst float64 `json:"perAnalyst"`
	// TotalSpent is the shared budget's cumulative draw, accumulated in
	// event order so replay reproduces the live run's float sum
	// bit-for-bit (and therefore the exact same refusal boundary).
	TotalSpent float64 `json:"totalSpent"`
	// Spent is each analyst's cumulative draw, same in-order property.
	Spent map[string]float64 `json:"spent,omitempty"`
}

// AuditRecord is the persisted form of one audit-trail entry.
type AuditRecord struct {
	Time    int64   `json:"time"`
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"`
	Epsilon float64 `json:"epsilon"`
	Charged float64 `json:"charged"`
	Outcome string  `json:"outcome"`
}

// IdemRecord is one stored idempotent reply.
type IdemRecord struct {
	Endpoint string `json:"endpoint"`
	Dataset  string `json:"dataset"`
	Analyst  string `json:"analyst"`
	Key      string `json:"key"`
	Status   int    `json:"status"`
	Body     []byte `json:"body"`
	Expires  int64  `json:"expires"`
}

// IdemKeyString is the State.Idem map key for one logical request.
func IdemKeyString(endpoint, dataset, analyst, key string) string {
	return endpoint + "\x00" + dataset + "\x00" + analyst + "\x00" + key
}

// defaultAuditCap mirrors the server-side audit log bound.
const defaultAuditCap = 10000

// NewState returns an empty state. auditCap <= 0 uses the default.
func NewState(auditCap int) *State {
	if auditCap <= 0 {
		auditCap = defaultAuditCap
	}
	return &State{
		Datasets: make(map[string]*DatasetState),
		Idem:     make(map[string]*IdemRecord),
		auditCap: auditCap,
	}
}

// Apply folds one event into the state. Events must arrive in strictly
// sequential order (seq = Seq+1); any violation, reference to an
// unknown dataset, or unknown event type means the history is not the
// one that was written — the caller must fail closed.
func (s *State) Apply(ev *Event) error {
	if ev.Seq != s.Seq+1 {
		return fmt.Errorf("%w: sequence gap: have %d, next event is %d", ErrCorrupt, s.Seq, ev.Seq)
	}
	switch ev.Type {
	case EventDatasetCreated:
		if ev.Dataset == "" {
			return fmt.Errorf("%w: dataset_created without a name (seq %d)", ErrCorrupt, ev.Seq)
		}
		if _, ok := s.Datasets[ev.Dataset]; ok {
			return fmt.Errorf("%w: dataset %q created twice (seq %d)", ErrCorrupt, ev.Dataset, ev.Seq)
		}
		s.Datasets[ev.Dataset] = &DatasetState{
			Kind:       ev.Kind,
			Total:      ev.Total,
			PerAnalyst: ev.PerAnalyst,
			Spent:      make(map[string]float64),
		}

	case EventCharge:
		ds, err := s.dataset(ev)
		if err != nil {
			return err
		}
		ds.Spent[ev.Analyst] += ev.Epsilon
		ds.TotalSpent += ev.Epsilon

	case EventRollback:
		ds, err := s.dataset(ev)
		if err != nil {
			return err
		}
		// Mirror the live agents' clamp-at-zero rollback semantics.
		ds.Spent[ev.Analyst] -= ev.Epsilon
		if ds.Spent[ev.Analyst] < 0 {
			ds.Spent[ev.Analyst] = 0
		}
		ds.TotalSpent -= ev.Epsilon
		if ds.TotalSpent < 0 {
			ds.TotalSpent = 0
		}

	case EventRefusal, EventAudit:
		cap := s.auditCap
		if cap <= 0 {
			cap = defaultAuditCap
		}
		if len(s.Audit) >= cap {
			keep := cap / 2
			copy(s.Audit, s.Audit[len(s.Audit)-keep:])
			s.Audit = s.Audit[:keep]
		}
		s.Audit = append(s.Audit, AuditRecord{
			Time: ev.Time, Analyst: ev.Analyst, Dataset: ev.Dataset,
			Query: ev.Query, Epsilon: ev.Epsilon, Charged: ev.Charged,
			Outcome: ev.Outcome,
		})

	case EventIdemReply:
		if s.Idem == nil {
			s.Idem = make(map[string]*IdemRecord)
		}
		s.Idem[IdemKeyString(ev.Endpoint, ev.Dataset, ev.Analyst, ev.Key)] = &IdemRecord{
			Endpoint: ev.Endpoint, Dataset: ev.Dataset, Analyst: ev.Analyst,
			Key: ev.Key, Status: ev.Status, Body: ev.Body, Expires: ev.Expires,
		}

	default:
		return fmt.Errorf("%w: unknown event type %q (seq %d)", ErrCorrupt, ev.Type, ev.Seq)
	}
	s.Seq = ev.Seq
	return nil
}

// pruneIdem drops replies that expired before now (Unix nanoseconds).
func (s *State) pruneIdem(now int64) {
	for k, rec := range s.Idem {
		if rec.Expires != 0 && rec.Expires < now {
			delete(s.Idem, k)
		}
	}
}

// dataset resolves the event's dataset, failing closed on references
// to datasets the history never created.
func (s *State) dataset(ev *Event) (*DatasetState, error) {
	ds, ok := s.Datasets[ev.Dataset]
	if !ok {
		return nil, fmt.Errorf("%w: %s for unknown dataset %q (seq %d)", ErrCorrupt, ev.Type, ev.Dataset, ev.Seq)
	}
	return ds, nil
}

// DatasetNames lists the datasets in the state, sorted.
func (s *State) DatasetNames() []string {
	names := make([]string, 0, len(s.Datasets))
	for name := range s.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
