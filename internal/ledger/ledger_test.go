package ledger

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chargeEvents builds a simple history: one dataset plus n charges.
func chargeEvents(n int) []Event {
	evs := []Event{{Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 1}}
	for i := 0; i < n; i++ {
		evs = append(evs, Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1})
	}
	return evs
}

func appendAll(t *testing.T, l *Ledger, evs []Event) {
	t.Helper()
	for i := range evs {
		if err := l.Append(evs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(5))
	if err := l.Append(Event{Type: EventRollback, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{Type: EventRefusal, Dataset: "d", Analyst: "bob",
		Query: "count", Epsilon: 5, Outcome: "refused"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Err != nil {
		t.Fatalf("recovery failed: %v", rec.Err)
	}
	// dataset_created + 5 charges + rollback + refusal.
	if rec.Events != 8 {
		t.Fatalf("replayed %d events, want 8", rec.Events)
	}
	st := l2.State()
	ds := st.Datasets["d"]
	if ds == nil {
		t.Fatal("dataset not recovered")
	}
	// 5 charges of 0.1 minus one rollback, summed in event order —
	// bit-identical to the live accumulation.
	want := 0.0
	for i := 0; i < 5; i++ {
		want += 0.1
	}
	want -= 0.1
	if ds.Spent["alice"] != want {
		t.Fatalf("alice spent %v, want %v", ds.Spent["alice"], want)
	}
	if ds.TotalSpent != want {
		t.Fatalf("total spent %v, want %v", ds.TotalSpent, want)
	}
	if len(st.Audit) != 1 || st.Audit[0].Outcome != "refused" {
		t.Fatalf("audit trail not recovered: %+v", st.Audit)
	}
}

func TestSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(35))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// 36 events with snapshots every 10: old segments must be gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wals, snaps int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".wal"):
			wals++
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		}
	}
	if wals != 1 {
		t.Fatalf("compaction left %d WAL segments, want 1", wals)
	}
	if snaps != 1 {
		t.Fatalf("compaction left %d snapshots, want 1", snaps)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Recovery(); rec.Err != nil {
		t.Fatalf("recovery failed: %v", rec.Err)
	} else if rec.SnapshotSeq == 0 {
		t.Fatal("recovery did not use a snapshot")
	}
	ds := l2.State().Datasets["d"]
	want := 0.0
	for i := 0; i < 35; i++ {
		want += 0.1
	}
	if ds.Spent["alice"] != want {
		t.Fatalf("alice spent %v across snapshot boundary, want %v", ds.Spent["alice"], want)
	}
	if l2.State().Seq != 36 {
		t.Fatalf("seq %d, want 36", l2.State().Seq)
	}

	// Appends continue after the recovered snapshot.
	if err := l2.Append(Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	if l2.State().Seq != 37 {
		t.Fatalf("seq %d after append, want 37", l2.State().Seq)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Fsync: policy, FsyncInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, chargeEvents(3))
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := l2.State().Seq; got != 4 {
				t.Fatalf("recovered seq %d, want 4", got)
			}
		})
	}
}

func TestCorruptHistoryFreezes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, chargeEvents(10))
	l.Close()

	// Flip one payload byte in the middle of the (single) segment:
	// durably-written history that no longer checks out.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Frozen() == nil {
		t.Fatal("corrupt history did not freeze the ledger")
	}
	if !errors.Is(l2.Recovery().Err, ErrCorrupt) {
		t.Fatalf("recovery error %v, want ErrCorrupt", l2.Recovery().Err)
	}
	if err := l2.Append(Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("append on frozen ledger: %v, want ErrFrozen", err)
	}
	// Read-only replay agrees.
	if _, _, err := Replay(dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay: %v, want ErrCorrupt", err)
	}
}

func TestChargeForUnknownDatasetIsCorrupt(t *testing.T) {
	st := NewState(0)
	err := st.Apply(&Event{Seq: 1, Type: EventCharge, Dataset: "ghost", Analyst: "a", Epsilon: 0.1})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestSequenceGapIsCorrupt(t *testing.T) {
	st := NewState(0)
	if err := st.Apply(&Event{Seq: 1, Type: EventDatasetCreated, Dataset: "d"}); err != nil {
		t.Fatal(err)
	}
	err := st.Apply(&Event{Seq: 3, Type: EventCharge, Dataset: "d", Analyst: "a", Epsilon: 0.1})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestIdemReplyPersistAndExpiry(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour).UnixNano()
	past := time.Now().Add(-time.Hour).UnixNano()
	evs := []Event{
		{Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 1},
		{Type: EventIdemReply, Endpoint: "/v1/query", Dataset: "d", Analyst: "alice",
			Key: "k1", Status: 200, Body: []byte(`{"values":[1]}`), Expires: future},
		{Type: EventIdemReply, Endpoint: "/v1/query", Dataset: "d", Analyst: "alice",
			Key: "k2", Status: 200, Body: []byte(`{"values":[2]}`), Expires: past},
	}
	appendAll(t, l, evs)
	l.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	idem := l2.State().Idem
	if got := idem[IdemKeyString("/v1/query", "d", "alice", "k1")]; got == nil || string(got.Body) != `{"values":[1]}` {
		t.Fatalf("live idem reply not recovered: %+v", got)
	}
	if got := idem[IdemKeyString("/v1/query", "d", "alice", "k2")]; got != nil {
		t.Fatal("expired idem reply survived recovery")
	}
}

func TestBudgetSentinel(t *testing.T) {
	if EncodeBudget(math.Inf(1)) != -1 {
		t.Fatal("EncodeBudget(+Inf) != -1")
	}
	if !math.IsInf(DecodeBudget(-1), 1) {
		t.Fatal("DecodeBudget(-1) != +Inf")
	}
	if DecodeBudget(EncodeBudget(2.5)) != 2.5 {
		t.Fatal("finite budget did not round-trip")
	}
	// And through a real ledger: unlimited budgets must survive the
	// JSON encoding, which cannot carry +Inf directly.
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{Type: EventDatasetCreated, Dataset: "d", Kind: "packet",
		Total: EncodeBudget(math.Inf(1)), PerAnalyst: EncodeBudget(math.Inf(1))}); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ds := l2.State().Datasets["d"]
	if !math.IsInf(DecodeBudget(ds.Total), 1) {
		t.Fatalf("unlimited budget did not survive snapshot: %v", ds.Total)
	}
}

func TestAuditCapBoundsState(t *testing.T) {
	st := NewState(10)
	if err := st.Apply(&Event{Seq: 1, Type: EventDatasetCreated, Dataset: "d"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := st.Apply(&Event{Seq: uint64(i + 2), Type: EventAudit,
			Dataset: "d", Analyst: "a", Query: "count", Outcome: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	if len(st.Audit) > 10 {
		t.Fatalf("audit trail grew to %d entries, cap is 10", len(st.Audit))
	}
}
