// Package ledger is the durable privacy-budget ledger: an append-only,
// checksummed write-ahead log of budget events with periodic snapshots,
// log compaction, and crash recovery.
//
// Differential privacy is a stateful guarantee — the budget-agent tree
// (paper §2, PINQ semantics) only protects the trace if cumulative
// ε-spend is never forgotten. Without this package a dpserver restart
// resets every analyst's spend to zero and silently re-opens the full
// budget. The ledger makes the spend history durable: every charge is
// journaled *before* it is acknowledged, so an acked charge survives a
// crash; recovery replays snapshot + WAL tail, tolerating a torn final
// record (truncate-and-warn) but refusing corrupt history (fail closed:
// a ledger that cannot be fully replayed refuses all new appends, which
// in turn refuses all new charges upstream).
//
// On-disk layout (all under one directory, owned exclusively by the
// ledger):
//
//	wal-<startseq>.wal    segments of length-prefixed, CRC32C-checked
//	                      records, JSON payloads, strictly increasing seq
//	snap-<seq>.snap       a checkpoint of the folded State through seq,
//	                      same record envelope, atomically renamed in
//
// Record envelope (little-endian):
//
//	uint32  payload length
//	uint32  CRC32C (Castagnoli) of the payload
//	[]byte  payload (JSON-encoded Event)
//
// Budgets may be +Inf, which JSON cannot carry; on the wire and in
// snapshots +Inf is the sentinel -1 (see EncodeBudget/DecodeBudget).
package ledger

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Event types. The ledger is a budget journal, not a data store: events
// carry spending metadata and replayable response bytes, never records.
const (
	// EventDatasetCreated registers a dataset's name, kind, and budget
	// bounds so a restarted server can match re-registrations against
	// the persisted ledger instead of starting a fresh budget.
	EventDatasetCreated = "dataset_created"
	// EventCharge is one acknowledged ε-spend by one analyst. Appended
	// by the core SpendJournal hook before the charge is acked.
	EventCharge = "charge"
	// EventRollback undoes a prior charge of the same ε (atomic
	// multi-parent spends that failed on a later parent).
	EventRollback = "rollback"
	// EventRefusal records a budget-refused query attempt: no ε moves,
	// but the owner's audit trail must survive restarts too.
	EventRefusal = "refusal"
	// EventAudit records a completed (ok / error / canceled) query for
	// the audit trail; its ε-movement is carried by charge events.
	EventAudit = "audit"
	// EventIdemReply stores a keyed idempotent response so a retry
	// across a restart replays bytes instead of re-charging ε.
	EventIdemReply = "idem_reply"
	// EventStandingRegistered registers a standing (continual) query:
	// its identity, window spec, per-window ε, and total reservation.
	// Body carries the full registration request so a restarted server
	// can rebuild the executable query.
	EventStandingRegistered = "standing_registered"
	// EventStandingWindow is one fired standing-query window — the
	// atomic charge-plus-cursor record. Charged is folded into the
	// dataset's per-analyst and total spends (window executions charge
	// the policy in memory only, bypassing the per-charge journal; see
	// core.AnalystPolicy.SilentAgentFor) and Window advances the
	// query's cursor, so no crash can charge a window without advancing
	// past it or advance past a window without its charge. Body carries
	// the result bytes replayed into the bounded result ring.
	EventStandingWindow = "standing_window"
	// EventStandingCanceled marks a standing query canceled: its
	// cursor stops, its spend history and result ring remain.
	EventStandingCanceled = "standing_canceled"
)

// Event is one ledger record. Fields are a union across event types;
// unused fields stay zero and are omitted from the wire encoding.
type Event struct {
	// Seq is the strictly-increasing event number, assigned by Append.
	Seq uint64 `json:"seq"`
	// Time is the append wall time in Unix nanoseconds.
	Time int64 `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`

	Dataset string  `json:"dataset,omitempty"`
	Analyst string  `json:"analyst,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`

	// dataset_created fields. Budgets use the -1 == +Inf sentinel.
	Kind       string  `json:"kind,omitempty"`
	Total      float64 `json:"total,omitempty"`
	PerAnalyst float64 `json:"perAnalyst,omitempty"`

	// refusal / audit fields.
	Query   string  `json:"query,omitempty"`
	Charged float64 `json:"charged,omitempty"`
	Outcome string  `json:"outcome,omitempty"`

	// idem_reply fields. Body is shared with the standing_* events
	// (registration request / window result bytes).
	Endpoint string `json:"endpoint,omitempty"`
	Key      string `json:"key,omitempty"`
	Status   int    `json:"status,omitempty"`
	Body     []byte `json:"body,omitempty"`

	// standing_* fields. Window boundaries are record-sequence
	// positions on the dataset's monotonic watermark; index 0 is a
	// valid window, distinguished by Type (only standing_window events
	// carry a window index at all).
	Standing    string  `json:"standing,omitempty"`    // standing query id
	Window      uint64  `json:"window,omitempty"`      // fired window index
	WindowStart uint64  `json:"windowStart,omitempty"` // window start (inclusive)
	Watermark   uint64  `json:"watermark,omitempty"`   // window end (exclusive)
	Width       uint64  `json:"width,omitempty"`       // record-count window width
	Stride      uint64  `json:"stride,omitempty"`      // sliding stride (== width: tumbling)
	EveryMs     int64   `json:"everyMs,omitempty"`     // wall-clock window period
	Reservation float64 `json:"reservation,omitempty"` // total standing ε reservation
	Base        uint64  `json:"base,omitempty"`        // watermark at registration
	// Expires is the replay-cache expiry in Unix nanoseconds; expired
	// entries are dropped during recovery and snapshotting.
	Expires int64 `json:"expires,omitempty"`
}

// EncodeBudget maps a budget to its wire form: +Inf (unlimited)
// becomes the sentinel -1, everything else passes through.
func EncodeBudget(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// DecodeBudget is the inverse of EncodeBudget.
func DecodeBudget(v float64) float64 {
	if v < 0 {
		return math.Inf(1)
	}
	return v
}

const (
	recordHeaderSize = 8
	// maxRecordSize bounds one payload; a larger length prefix is
	// corruption, not a real record (idem bodies are response-sized).
	maxRecordSize = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTornRecord means the buffer ends mid-record — the
// legitimate shape of a crash during the final append, recovered by
// truncation. ErrCorrupt means bytes that were durably written no
// longer decode — history cannot be trusted and replay must fail
// closed.
var (
	ErrTornRecord = errors.New("ledger: torn record")
	ErrCorrupt    = errors.New("ledger: corrupt record")
)

// EncodeRecord appends the wire encoding of ev to dst and returns the
// extended slice.
func EncodeRecord(dst []byte, ev *Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return dst, fmt.Errorf("ledger: encode event: %w", err)
	}
	if len(payload) > maxRecordSize {
		return dst, fmt.Errorf("ledger: event too large (%d bytes)", len(payload))
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeRecord decodes the record at the start of b, returning the
// event and the number of bytes consumed. A buffer that ends mid-record
// yields ErrTornRecord; a complete record whose checksum or payload is
// invalid yields ErrCorrupt (possibly wrapped with detail).
func DecodeRecord(b []byte) (Event, int, error) {
	var ev Event
	if len(b) < recordHeaderSize {
		return ev, 0, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxRecordSize {
		return ev, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if len(b) < recordHeaderSize+int(n) {
		return ev, 0, ErrTornRecord
	}
	payload := b[recordHeaderSize : recordHeaderSize+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return ev, 0, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	if err := json.Unmarshal(payload, &ev); err != nil {
		return ev, 0, fmt.Errorf("%w: bad payload: %v", ErrCorrupt, err)
	}
	return ev, recordHeaderSize + int(n), nil
}
