package ledger

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"dptrace/internal/vfs"
)

// This file is the fault-injection suite for every ledger I/O site:
// append writes, fsync (always and interval policies), snapshot
// writes, renames, segment rotation, and directory syncs. The
// invariant under every injected fault: an Append that returns an
// error has NOT acked the charge (callers refuse it), and any record
// that slips onto disk anyway (a write that landed before its sync
// failed) only ever makes recovery over-count spend — the
// conservative direction.

// openFault opens a fresh ledger on a FaultFS in a temp dir. Rules are
// injected by the caller afterwards, so Open's own I/O is not in the
// blast radius unless a test wants it to be.
func openFault(t *testing.T, opts Options) (*Ledger, *vfs.FaultFS, string) {
	t.Helper()
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(vfs.OS{})
	opts.Dir = dir
	opts.FS = fsys
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, fsys, dir
}

func charge() Event {
	return Event{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}
}

func seedDataset(t *testing.T, l *Ledger) {
	t.Helper()
	if err := l.Append(Event{Type: EventDatasetCreated, Dataset: "d", Kind: "packet", Total: 10, PerAnalyst: 1}); err != nil {
		t.Fatalf("seed dataset: %v", err)
	}
}

func TestAppendWriteFaultRefusesAndDegrades(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways})
	seedDataset(t, l)
	fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO})

	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("faulted append = %v, want ErrDegraded", err)
	}
	if l.State().Datasets["d"].TotalSpent != 0 {
		t.Fatalf("refused charge leaked into state: spent %v", l.State().Datasets["d"].TotalSpent)
	}
	if l.Degraded() == nil || l.Refusing() == nil {
		t.Fatal("ledger should report degraded")
	}

	// Degraded appends must refuse WITHOUT touching the disk — a full
	// disk must not error-loop.
	before := fsys.Counts()
	for i := 0; i < 5; i++ {
		if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
			t.Fatalf("append %d = %v, want ErrDegraded", i, err)
		}
	}
	after := fsys.Counts()
	for op, n := range after {
		if n != before[op] {
			t.Fatalf("degraded append touched the disk: %s %d -> %d", op, before[op], n)
		}
	}
}

func TestFsyncFaultPoisonsSegment(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways})
	seedDataset(t, l)
	fsys.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal-", Err: syscall.EIO})

	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append with failed fsync = %v, want ErrDegraded", err)
	}
	// fsyncgate: the ledger must NOT retry the sync and assume
	// durability. No further sync (or any other) ops after the poison.
	syncs := fsys.Counts()[vfs.OpSync]
	if err := l.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync on degraded ledger = %v, want ErrDegraded", err)
	}
	if got := fsys.Counts()[vfs.OpSync]; got != syncs {
		t.Fatalf("degraded ledger retried fsync: %d -> %d", syncs, got)
	}
}

func TestFsyncFaultOvercountsConservatively(t *testing.T) {
	l, fsys, dir := openFault(t, Options{Fsync: FsyncAlways})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge(), charge()}) // acked: 0.2
	fsys.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal-", Err: syscall.EIO, Sticky: true})
	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append = %v, want ErrDegraded", err)
	}
	ackedSpend := 0.2

	// The refused record's write DID land; replay sees it and
	// over-counts — recovered spend must be >= every acked spend.
	st, rec, err := Replay(dir, 0)
	if err != nil {
		t.Fatalf("replay: %v (rec %+v)", err, rec)
	}
	if got := st.Datasets["d"].TotalSpent; got < ackedSpend-1e-9 {
		t.Fatalf("recovered spend %v < acked %v: an acked charge was lost", got, ackedSpend)
	}
}

func TestStickyENOSPCRefusesWithoutErrorLoop(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways})
	seedDataset(t, l)
	fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Err: syscall.ENOSPC, Sticky: true})

	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ENOSPC append = %v, want ErrDegraded", err)
	}
	writes := fsys.Counts()[vfs.OpWrite]
	for i := 0; i < 100; i++ {
		if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
			t.Fatalf("append %d = %v, want ErrDegraded", i, err)
		}
	}
	if got := fsys.Counts()[vfs.OpWrite]; got != writes {
		t.Fatalf("full-disk error loop: %d extra writes attempted", got-writes)
	}
}

func TestSnapshotWriteFaultIsBestEffort(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge(), charge()})
	fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".tmp", Err: syscall.EIO})

	if err := l.Snapshot(); err == nil {
		t.Fatal("snapshot should report the tmp-write fault")
	}
	// The WAL still has everything: the ledger keeps appending and the
	// next snapshot succeeds.
	if l.Degraded() != nil {
		t.Fatalf("snapshot-file fault degraded the ledger: %v", l.Degraded())
	}
	if err := l.Append(charge()); err != nil {
		t.Fatalf("append after failed snapshot: %v", err)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("retried snapshot: %v", err)
	}
}

func TestSnapshotRenameFaultIsBestEffort(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge()})
	fsys.Inject(vfs.Rule{Op: vfs.OpRename, Path: ".tmp", Err: syscall.EIO})

	if err := l.Snapshot(); err == nil {
		t.Fatal("snapshot should report the rename fault")
	}
	if l.Degraded() != nil {
		t.Fatalf("rename fault degraded the ledger: %v", l.Degraded())
	}
	if err := l.Append(charge()); err != nil {
		t.Fatalf("append after failed snapshot rename: %v", err)
	}
}

func TestRotateFaultAfterSnapshotDegrades(t *testing.T) {
	// Regression: a failed segment rotation inside snapshotLocked used
	// to leave l.active nil, so the NEXT Append dereferenced a nil file
	// and panicked. It must instead degrade and refuse cleanly.
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge()})
	fsys.Inject(vfs.Rule{Op: vfs.OpOpen, Path: "wal-", Err: syscall.EIO})

	if err := l.Snapshot(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("snapshot with failed rotation = %v, want ErrDegraded", err)
	}
	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after failed rotation = %v, want ErrDegraded (not a panic)", err)
	}
}

func TestDirSyncFaultIsIgnored(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	fsys.Inject(vfs.Rule{Op: vfs.OpSyncDir, Err: syscall.EINVAL, Sticky: true})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge(), charge()})
	if err := l.Snapshot(); err != nil {
		t.Fatalf("snapshot with failing dir syncs: %v", err)
	}
	if l.Degraded() != nil {
		t.Fatalf("dir-sync fault degraded the ledger: %v", l.Degraded())
	}
}

func TestShortWriteTornTailIsTruncatedOnRecovery(t *testing.T) {
	l, fsys, dir := openFault(t, Options{Fsync: FsyncNever})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge(), charge()})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Tear the next record 10 bytes in — the on-disk shape of ENOSPC or
	// power loss mid-append.
	fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Short: 10, Err: syscall.ENOSPC})
	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn append = %v, want ErrDegraded", err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Err != nil {
		t.Fatalf("recovery after torn write failed: %v", rec.Err)
	}
	if rec.TornBytes != 10 {
		t.Fatalf("TornBytes = %d, want 10", rec.TornBytes)
	}
	if got := l2.State().Datasets["d"].TotalSpent; got != 0.2 {
		t.Fatalf("recovered spend %v, want the two acked charges (0.2)", got)
	}
	if err := l2.Append(charge()); err != nil {
		t.Fatalf("append on recovered ledger: %v", err)
	}
}

func TestIntervalFsyncFaultDegrades(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	seedDataset(t, l)
	fsys.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal-", Err: syscall.EIO, Sticky: true})
	if err := l.Append(charge()); err != nil {
		t.Fatalf("append (buffered): %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Degraded() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background fsync failure never degraded the ledger")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Append(charge()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after interval-fsync failure = %v, want ErrDegraded", err)
	}
}

// TestIntervalCrashWindow pins down the documented FsyncInterval
// contract: a crash may lose acked charges from the last interval, and
// recovery lands at or below the acked total — never above — with
// equality from the moment of an explicit Sync.
func TestIntervalCrashWindow(t *testing.T) {
	l, fsys, dir := openFault(t, Options{Fsync: FsyncInterval, FsyncInterval: time.Hour})
	seedDataset(t, l)
	appendAll(t, l, []Event{charge(), charge(), charge(), charge(), charge()})
	if err := l.Sync(); err != nil { // closes the window at 0.5 spent
		t.Fatal(err)
	}
	appendAll(t, l, []Event{charge(), charge(), charge()}) // acked 0.8, unsynced
	acked := 0.8

	if err := fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	st, rec, err := Replay(dir, 0)
	if err != nil {
		t.Fatalf("post-crash replay: %v (rec %+v)", err, rec)
	}
	got := st.Datasets["d"].TotalSpent
	if got > acked+1e-9 {
		t.Fatalf("recovered spend %v exceeds pre-crash acked %v", got, acked)
	}
	if got != 0.5 {
		t.Fatalf("recovered spend %v, want exactly the synced 0.5 (power-loss model drops unsynced bytes)", got)
	}
}

func TestDegradedErrorMentionsCause(t *testing.T) {
	l, fsys, _ := openFault(t, Options{Fsync: FsyncAlways})
	seedDataset(t, l)
	fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO})
	err := l.Append(charge())
	if err == nil || !strings.Contains(err.Error(), "input/output error") {
		t.Fatalf("degraded error should carry the I/O cause, got %v", err)
	}
}
