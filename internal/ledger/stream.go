// Replication seam: the pieces internal/repl builds on.
//
//   - A commit hook fires (under the ledger lock, post-fsync under
//     FsyncAlways) for every committed record with its raw payload, so
//     a primary can fan events out without re-reading the disk.
//   - TailReader re-reads committed records from any seq, re-verifying
//     every CRC — the catch-up path for followers that are behind the
//     in-memory window, and the engine behind dpledger diff.
//   - ReplicaAppend lets a follower write the primary's records into
//     its own WAL verbatim (byte-identical segments, same refusal
//     boundary on replay), and InstallSnapshot seeds an empty follower
//     that is behind the primary's compaction horizon.
//   - A durable fencing epoch, stored next to the WAL, makes a deposed
//     primary's late appends rejectable after a promotion.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dptrace/internal/vfs"
)

// ErrCompacted means the requested events no longer exist on disk —
// compaction deleted the segments that held them. Followers recover by
// installing a snapshot (empty ledger) or re-seeding (non-empty).
var ErrCompacted = errors.New("ledger: requested events compacted away")

// Checksum is the ledger's record checksum (CRC32C) over a raw record
// payload — shared with the replication handshake's divergence check.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

// SetCommitHook installs fn, called once per committed record (Append
// and ReplicaAppend alike) with the assigned seq and the raw payload
// bytes, in commit order, under the ledger lock — fn must not block
// and must not call back into the ledger. Install before concurrent
// appends begin.
func (l *Ledger) SetCommitHook(fn func(seq uint64, payload []byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.commitHook = fn
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// FS returns the filesystem the ledger runs on — TailReaders over a
// live ledger must read through the same (possibly fault-injected)
// filesystem.
func (l *Ledger) FS() vfs.FS { return l.fs }

// CommittedSeq returns the seq of the newest committed event.
func (l *Ledger) CommittedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.Seq
}

// --- fencing epoch ----------------------------------------------------

const epochFile = "epoch"

// loadEpoch reads the durable fencing epoch (missing file = epoch 0).
func (l *Ledger) loadEpoch() error {
	data, err := l.fs.ReadFile(filepath.Join(l.dir, epochFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			l.epoch = 0
			return nil
		}
		return fmt.Errorf("ledger: read epoch: %w", err)
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return fmt.Errorf("%w: epoch file: %v", ErrCorrupt, err)
	}
	l.epoch = n
	return nil
}

// Epoch returns the ledger's durable fencing epoch. Streams tagged
// with a lower epoch come from a deposed primary and must be rejected.
func (l *Ledger) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// SetEpoch durably raises the fencing epoch (tmp + rename + dirsync).
// Lowering it is refused: a rollback would let a deposed primary's
// appends back in.
func (l *Ledger) SetEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e < l.epoch {
		return fmt.Errorf("ledger: epoch rollback (%d -> %d) refused", l.epoch, e)
	}
	if e == l.epoch {
		return nil
	}
	final := filepath.Join(l.dir, epochFile)
	tmp := final + ".tmp"
	if err := writeFileSync(l.fs, tmp, []byte(strconv.FormatUint(e, 10)+"\n")); err != nil {
		return fmt.Errorf("ledger: write epoch: %w", err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("ledger: rename epoch: %w", err)
	}
	syncDir(l.fs, l.dir)
	l.epoch = e
	return nil
}

// --- follower write path ----------------------------------------------

// ReplicaAppend appends a replicated record verbatim: payload must be
// the primary's raw record payload for exactly state.Seq+1. The bytes
// written are identical to the primary's, so the two WALs replay to
// the same refusal boundary and compare clean under dpledger diff.
// Durability follows the ledger's fsync policy — under FsyncAlways a
// nil return means the record is on stable storage and safe to ack.
func (l *Ledger) ReplicaAppend(seq uint64, payload []byte) error {
	var ev Event
	if err := decodePayload(payload, &ev); err != nil {
		return err
	}
	if ev.Seq != seq {
		return fmt.Errorf("%w: payload seq %d, frame seq %d", ErrCorrupt, ev.Seq, seq)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen != nil {
		return fmt.Errorf("%w: %v", ErrFrozen, l.frozen)
	}
	if l.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	if l.closed {
		return ErrClosed
	}
	if seq != l.state.Seq+1 {
		return fmt.Errorf("ledger: replica append seq %d, want %d", seq, l.state.Seq+1)
	}
	buf := make([]byte, recordHeaderSize, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], Checksum(payload))
	buf = append(buf, payload...)
	return l.appendRecordLocked(&ev, buf)
}

// DecodeEventPayload re-verifies and decodes a raw record payload —
// the follower's view into the events it replicates.
func DecodeEventPayload(payload []byte, ev *Event) error {
	return decodePayload(payload, ev)
}

// decodePayload re-verifies and decodes a raw record payload.
func decodePayload(payload []byte, ev *Event) error {
	if len(payload) == 0 || len(payload) > maxRecordSize {
		return fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, len(payload))
	}
	rec := make([]byte, recordHeaderSize, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], Checksum(payload))
	rec = append(rec, payload...)
	decoded, _, err := DecodeRecord(rec)
	if err != nil {
		return err
	}
	*ev = decoded
	return nil
}

// InstallSnapshot seeds an EMPTY follower ledger from a primary
// snapshot record payload: the snapshot file lands byte-identical to
// the primary's, the state swaps to the checkpoint, and the WAL
// rotates to continue at the checkpoint seq + 1. A ledger that has
// already applied events refuses — mixing histories silently is how
// budgets drift; re-seed from a fresh directory instead.
func (l *Ledger) InstallSnapshot(payload []byte) error {
	var ev Event
	if err := decodePayload(payload, &ev); err != nil {
		return err
	}
	if ev.Seq == 0 {
		return fmt.Errorf("%w: snapshot at seq 0", ErrCorrupt)
	}
	st, err := decodeSnapshotState(&ev, l.opts.AuditCap)
	if err != nil {
		return fmt.Errorf("%w: snapshot state: %v", ErrCorrupt, err)
	}
	if st.Seq != ev.Seq {
		return fmt.Errorf("%w: snapshot state seq %d, record seq %d", ErrCorrupt, st.Seq, ev.Seq)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen != nil {
		return fmt.Errorf("%w: %v", ErrFrozen, l.frozen)
	}
	if l.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, l.degraded)
	}
	if l.closed {
		return ErrClosed
	}
	if l.state.Seq != 0 {
		return fmt.Errorf("ledger: snapshot install refused: ledger has history through seq %d", l.state.Seq)
	}

	buf := append([]byte(nil), snapMagic...)
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	final := filepath.Join(l.dir, snapshotName(ev.Seq))
	tmp := final + ".tmp"
	if err := writeFileSync(l.fs, tmp, buf); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(l.fs, l.dir)

	emptySeg := filepath.Join(l.dir, segmentName(l.activeStart))
	l.state = st
	l.sinceSnap = 0
	l.rec.SnapshotSeq = ev.Seq
	if err := l.rotateLocked(); err != nil {
		return l.degrade(fmt.Errorf("rotate after snapshot install: %w", err))
	}
	if emptySeg != filepath.Join(l.dir, segmentName(l.activeStart)) {
		if err := l.fs.Remove(emptySeg); err != nil {
			l.logf("ledger: snapshot install: remove empty segment: %v", err)
		}
	}
	return nil
}

// --- tail reading -----------------------------------------------------

// TailReader iterates committed WAL records from a given position,
// re-verifying every CRC, resuming across segment rotation, and
// tolerating concurrent appends (a partially-written tail reads as
// "no more yet"). It takes no ledger lock — it works off the on-disk
// bytes, exactly like recovery would.
//
// Next returns io.EOF when it has delivered everything currently
// committed (call again after more commits), ErrCompacted when the
// wanted seq has been compacted away, and ErrCorrupt on damage.
type TailReader struct {
	fs    vfs.FS
	dir   string
	next  uint64 // seq the next call must deliver
	path  string // buffered segment ("" = none)
	start uint64
	buf   []byte
	off   int64
}

// NewTailReader returns a reader delivering the records after afterSeq
// (so afterSeq = 0 streams the whole retained history). A nil fsys
// reads the real filesystem.
func NewTailReader(fsys vfs.FS, dir string, afterSeq uint64) *TailReader {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	return &TailReader{fs: fsys, dir: dir, next: afterSeq + 1}
}

// Next returns the next committed record's seq and raw payload. The
// payload aliases an internal buffer valid until the following call.
func (t *TailReader) Next() (uint64, []byte, error) {
	for {
		for t.off < int64(len(t.buf)) {
			ev, n, err := DecodeRecord(t.buf[t.off:])
			if errors.Is(err, ErrTornRecord) {
				break // incomplete tail: refill below
			}
			if err != nil {
				return 0, nil, fmt.Errorf("%s at offset %d: %w", filepath.Base(t.path), t.off, err)
			}
			off := t.off
			t.off += int64(n)
			if ev.Seq < t.next {
				continue
			}
			if ev.Seq != t.next {
				return 0, nil, fmt.Errorf("%w: %s: seq %d where %d expected",
					ErrCorrupt, filepath.Base(t.path), ev.Seq, t.next)
			}
			t.next++
			return ev.Seq, t.buf[off+recordHeaderSize : off+int64(n)], nil
		}
		more, err := t.refill()
		if err != nil {
			return 0, nil, err
		}
		if !more {
			return 0, nil, io.EOF
		}
	}
}

// refill grows the buffered segment or advances to the one containing
// t.next. Returns false when everything committed has been delivered.
func (t *TailReader) refill() (bool, error) {
	if t.path != "" {
		data, err := t.fs.ReadFile(t.path)
		if err == nil && len(data) > len(t.buf) {
			t.buf = data
			return true, nil
		}
		// Shorter/missing (compacted beneath us) or unchanged: fall
		// through and re-locate against the live directory listing.
	}
	segs, err := listSegments(t.fs, t.dir)
	if err != nil {
		return false, err
	}
	var pick *segment
	for i := range segs {
		if segs[i].start <= t.next {
			pick = &segs[i]
		} else {
			break
		}
	}
	if pick == nil {
		if len(segs) == 0 && t.next == 1 {
			return false, nil // brand-new ledger, nothing committed yet
		}
		return false, ErrCompacted
	}
	if pick.path == t.path {
		return false, nil // same segment, no growth: caught up
	}
	data, err := t.fs.ReadFile(pick.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, ErrCompacted // raced with compaction
		}
		return false, err
	}
	if len(data) < magicSize {
		if pick.path == segs[len(segs)-1].path {
			return false, nil // header write still in flight
		}
		return false, fmt.Errorf("%w: %s: short header", ErrCorrupt, filepath.Base(pick.path))
	}
	if string(data[:magicSize]) != walMagic {
		return false, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(pick.path))
	}
	t.path, t.start, t.buf, t.off = pick.path, pick.start, data, magicSize
	return true, nil
}

// listSegments returns dir's WAL segments sorted by start seq.
func listSegments(fsys vfs.FS, dir string) ([]segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".wal"); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), start: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// RecordPayload reads the raw payload of the record at seq, CRC
// re-verified — the primary's side of the handshake divergence check.
func RecordPayload(fsys vfs.FS, dir string, seq uint64) ([]byte, error) {
	if seq == 0 {
		return nil, fmt.Errorf("ledger: no record at seq 0")
	}
	_, payload, err := NewTailReader(fsys, dir, seq-1).Next()
	if err == io.EOF {
		return nil, fmt.Errorf("ledger: no record at seq %d", seq)
	}
	return payload, err
}

// SnapshotPayload returns the newest on-disk snapshot's seq and raw
// record payload (CRC re-verified), or (0, nil, nil) when none exists.
func SnapshotPayload(fsys vfs.FS, dir string) (uint64, []byte, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, nil, err
	}
	var best uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && seq > best {
			best = seq
		}
	}
	if best == 0 {
		return 0, nil, nil
	}
	path := filepath.Join(dir, snapshotName(best))
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < magicSize || string(data[:magicSize]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	ev, n, err := DecodeRecord(data[magicSize:])
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if int64(magicSize+n) != int64(len(data)) {
		return 0, nil, fmt.Errorf("%w: %s: trailing bytes", ErrCorrupt, filepath.Base(path))
	}
	if ev.Seq != best {
		return 0, nil, fmt.Errorf("%w: %s: snapshot seq %d in record", ErrCorrupt, filepath.Base(path), ev.Seq)
	}
	return best, data[magicSize+recordHeaderSize:], nil
}
