package ledger

import (
	"io"
	"math"
	"testing"
)

// replicate copies everything in src's WAL into a fresh ledger at dir.
func replicate(t *testing.T, srcDir, dir string) *Ledger {
	t.Helper()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTailReader(nil, srcDir, 0)
	for {
		seq, p, err := tr.Next()
		if err == io.EOF {
			return l
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := l.ReplicaAppend(seq, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiffIdenticalAndPrefix(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(Options{Dir: dirA, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	appendAll(t, a, chargeEvents(5))
	b := replicate(t, dirA, dirB)
	defer b.Close()

	r, err := Diff(dirA, dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() || r.OnlyA != 0 || r.OnlyB != 0 || r.MaxSpentDelta() != 0 {
		t.Fatalf("identical dirs not clean: %+v", r)
	}

	// A keeps appending: B becomes a strict prefix — still clean, with
	// the un-replicated tail quantified.
	appendAll(t, a, []Event{
		{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1},
		{Type: EventCharge, Dataset: "d", Analyst: "bob", Epsilon: 0.2},
	})
	r, err = Diff(dirA, dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("prefix dirs diverged: %+v", r.Diverged)
	}
	if r.OnlyA != 2 || r.OnlyB != 0 {
		t.Fatalf("tail counts = %d/%d, want 2/0", r.OnlyA, r.OnlyB)
	}
	if math.Abs(r.SpentDelta["d"]["bob"]-0.2) > 1e-12 {
		t.Fatalf("bob delta = %v, want 0.2", r.SpentDelta["d"]["bob"])
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(Options{Dir: dirA, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	appendAll(t, a, chargeEvents(3)) // seqs 1..4
	b := replicate(t, dirA, dirB)
	defer b.Close()

	// The histories fork at seq 5.
	appendAll(t, a, []Event{{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.5}})
	appendAll(t, b, []Event{{Type: EventCharge, Dataset: "d", Analyst: "mallory", Epsilon: 0.9}})

	r, err := Diff(dirA, dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatal("forked histories reported clean")
	}
	if r.Diverged.Seq != 5 {
		t.Fatalf("divergence at seq %d, want 5", r.Diverged.Seq)
	}
	if r.SpentDelta["d"]["mallory"] != -0.9 {
		t.Fatalf("mallory delta = %v, want -0.9", r.SpentDelta["d"]["mallory"])
	}
}

func TestDiffAcrossCompactionHorizon(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(Options{Dir: dirA, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	appendAll(t, a, chargeEvents(7))
	b := replicate(t, dirA, dirB)
	defer b.Close()
	// A snapshots and compacts: its retained history starts past seq 8,
	// B still holds everything. Still clean — the overlap matches and
	// the folded states agree.
	if err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, a, []Event{{Type: EventCharge, Dataset: "d", Analyst: "alice", Epsilon: 0.1}})
	_, p, err := NewTailReader(nil, dirA, 8).Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ReplicaAppend(9, p); err != nil {
		t.Fatal(err)
	}

	r, err := Diff(dirA, dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() || r.MaxSpentDelta() != 0 {
		t.Fatalf("compacted-vs-full not clean: %+v", r)
	}
	if r.From != 9 || r.Through != 9 {
		t.Fatalf("compared range %d..%d, want 9..9", r.From, r.Through)
	}
}
