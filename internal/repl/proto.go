// Package repl replicates the budget ledger: a primary streams
// committed WAL records — post-fsync, in seq order — to followers
// over a length-prefixed TCP protocol, and each follower writes them
// verbatim into its own durable WAL (byte-identical segments, same
// refusal boundary on replay) while keeping a warm in-memory policy
// state. See DESIGN.md §S35 for the replication contract.
//
// Wire protocol. Each side writes an 8-byte magic ("dprepl1\n") at
// connection start, then CRC-framed messages:
//
//	uint32  frame length (kind byte + payload)
//	uint32  CRC32C (Castagnoli) of kind + payload
//	byte    kind
//	[]byte  payload
//
// Kinds: 'S' subscribe (follower→primary: name, fencing epoch, last
// applied seq + its payload CRC), 'P' publish (primary→follower:
// epoch, committed seq, snapshot-coming flag), 'N' snapshot (raw
// ledger snapshot record payload), 'E' event (raw ledger record
// payload, exactly the bytes in the primary's WAL), 'A' ack
// (follower→primary: highest durably-applied seq, cumulative), 'H'
// heartbeat (primary→follower: committed seq + epoch; the follower
// answers with an ack so both directions detect dead peers), 'X'
// error (terminal, with a machine-readable code).
//
// Fencing: the subscribe/publish exchange carries each side's durable
// epoch. A primary that sees a higher epoch than its own has been
// deposed — it fences itself (refusing all further spends); a
// follower that sees a lower epoch than its own refuses to follow.
// Promotion bumps the follower's epoch durably before it accepts its
// first spend, so a deposed primary's late appends can never land on
// anyone who has seen the new regime.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const magic = "dprepl1\n"

const (
	kindSub       = 'S'
	kindPub       = 'P'
	kindSnapshot  = 'N'
	kindEvent     = 'E'
	kindAck       = 'A'
	kindHeartbeat = 'H'
	kindError     = 'X'
)

// maxFrameSize bounds one frame: a ledger record (≤16 MiB) plus
// envelope slack. Larger prefixes are corruption, not data.
const maxFrameSize = 17 << 20

const frameHeaderSize = 8

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// Terminal protocol errors.
var (
	// ErrFenced means a higher fencing epoch exists: this node has
	// been deposed and must stop accepting spends.
	ErrFenced = errors.New("repl: fenced by a higher epoch")
	// ErrDiverged means the two ledgers hold different bytes for the
	// same seq — histories forked, replication refuses to paper over
	// it. Run dpledger diff and re-seed the bad side.
	ErrDiverged = errors.New("repl: ledger histories diverged")
	// ErrBehind means the follower's position has been compacted away
	// on the primary and the follower is not empty, so it cannot take
	// a snapshot without discarding history. Re-seed it from an empty
	// directory.
	ErrBehind = errors.New("repl: follower behind the primary's compaction horizon")
	// ErrNoQuorum means fewer followers are connected than MinSync
	// requires; spends are refused before journaling (fail closed).
	ErrNoQuorum = errors.New("repl: not enough connected followers")
	// ErrAckTimeout means the local append committed but the required
	// follower acks did not arrive in time. The event IS durable on
	// the primary — treat the spend as charged (conservative: the
	// same direction as a post-write fsync failure).
	ErrAckTimeout = errors.New("repl: follower ack timeout (event journaled locally)")
	// ErrClosed refuses appends on a closed Primary: the node has
	// retired from the role and must not silently fall back to
	// unreplicated spending.
	ErrClosed = errors.New("repl: primary closed")
)

// subRequest is the follower's handshake.
type subRequest struct {
	Name    string `json:"name"`
	Epoch   uint64 `json:"epoch"`
	LastSeq uint64 `json:"lastSeq"`
	// LastCRC is the CRC32C of the record payload at LastSeq; the
	// primary re-verifies it against its own bytes to catch forked
	// histories before streaming a single event.
	LastCRC uint32 `json:"lastCRC,omitempty"`
}

// pubReply is the primary's handshake answer.
type pubReply struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// Snapshot announces an 'N' frame before the event stream: the
	// follower is empty and behind the compaction horizon.
	Snapshot bool `json:"snapshot,omitempty"`
}

// ackMsg carries the follower's cumulative durable position.
type ackMsg struct {
	Seq uint64 `json:"seq"`
}

// heartbeatMsg keeps lag fresh and detects dead peers while idle.
type heartbeatMsg struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// errMsg is a terminal 'X' frame.
type errMsg struct {
	Code    string `json:"code"` // fenced | diverged | behind | corrupt | internal
	Message string `json:"message"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// toError maps an errMsg to the package-level error values.
func (m errMsg) toError() error {
	switch m.Code {
	case "fenced":
		return fmt.Errorf("%w (epoch %d): %s", ErrFenced, m.Epoch, m.Message)
	case "diverged":
		return fmt.Errorf("%w: %s", ErrDiverged, m.Message)
	case "behind":
		return fmt.Errorf("%w: %s", ErrBehind, m.Message)
	default:
		return fmt.Errorf("repl: peer error %s: %s", m.Code, m.Message)
	}
}

// writeMagic/readMagic exchange the protocol preamble.
func writeMagic(w io.Writer) error {
	_, err := w.Write([]byte(magic))
	return err
}

func readMagic(r io.Reader) error {
	var buf [len(magic)]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("repl: read magic: %w", err)
	}
	if string(buf[:]) != magic {
		return fmt.Errorf("repl: bad magic %q", buf[:])
	}
	return nil
}

// writeFrame writes one frame. Callers own buffering and deadlines.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	n := 1 + len(payload)
	if n > maxFrameSize {
		return fmt.Errorf("repl: frame too large (%d bytes)", n)
	}
	hdr := make([]byte, frameHeaderSize+1)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Checksum([]byte{kind}, frameCRC)
	crc = crc32.Update(crc, frameCRC, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = kind
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeJSONFrame marshals v and writes it as one frame of the given
// kind.
func writeJSONFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, kind, payload)
}

// readFrame reads one frame, verifying length sanity and CRC.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 1 || n > maxFrameSize {
		return 0, nil, fmt.Errorf("repl: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("repl: short frame: %w", err)
	}
	if got, want := crc32.Checksum(body, frameCRC), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return body[0], body[1:], nil
}

// decodeJSON unmarshals a frame payload.
func decodeJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("repl: decode frame: %w", err)
	}
	return nil
}

// sendError best-effort writes a terminal 'X' frame.
func sendError(w io.Writer, code, message string, epoch uint64) {
	_ = writeJSONFrame(w, kindError, errMsg{Code: code, Message: message, Epoch: epoch})
}
