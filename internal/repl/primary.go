package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/obs/qlog"
)

// PrimaryConfig configures a Primary.
type PrimaryConfig struct {
	// Name identifies this node in events and handshakes.
	Name string
	// MinSync is the number of connected followers that must durably
	// ack an append before Append returns (0 = asynchronous
	// replication). With MinSync > 0 and fewer followers connected,
	// appends are refused BEFORE journaling — fail closed, no budget
	// bleeds while the standby is away.
	MinSync int
	// AckTimeout bounds the wait for follower acks; <=0 means 5s. On
	// timeout the append error wraps ErrAckTimeout: the event is
	// durable locally, so callers treat the spend as charged
	// (conservative over-count, never an under-count).
	AckTimeout time.Duration
	// HeartbeatInterval paces 'H' frames on idle streams; <=0 means
	// 500ms. Dead peers are detected after ~10 intervals.
	HeartbeatInterval time.Duration
	// RingSize is the in-memory window of recent commits served
	// without disk reads; <=0 means 4096.
	RingSize int
	// Events receives repl_connected / repl_lost wide events (nil
	// discards).
	Events *qlog.Logger
	// OnFenced is called (once) when a follower presents a higher
	// epoch: this primary has been deposed and the server must stop
	// accepting spends. Nil is allowed; Fenced() still reports it.
	OnFenced func(err error)
}

// Primary streams the ledger to followers and (optionally) holds
// appends until enough of them have durably acked.
type Primary struct {
	led *ledger.Ledger
	cfg PrimaryConfig

	mu        sync.Mutex
	sessions  map[*session]struct{}
	waiters   []*ackWaiter
	ring      commitRing
	committed uint64
	fenced    error
	closed    bool

	ln net.Listener
	wg sync.WaitGroup
}

type ackWaiter struct {
	seq  uint64
	ch   chan struct{}
	done bool
	// err is written (at most once) before ch closes: nil for a met
	// quorum, an ErrAckTimeout-class error when Close abandons the
	// wait with the event already durable locally.
	err error
}

// commitRing is a fixed window of recent commits indexed by seq.
type commitRing struct {
	entries []ringEntry
}

type ringEntry struct {
	seq     uint64
	payload []byte
}

func (r *commitRing) add(seq uint64, payload []byte) {
	r.entries[seq%uint64(len(r.entries))] = ringEntry{seq: seq, payload: payload}
}

func (r *commitRing) get(seq uint64) ([]byte, bool) {
	e := r.entries[seq%uint64(len(r.entries))]
	if e.seq != seq {
		return nil, false
	}
	return e.payload, true
}

// NewPrimary wires a Primary to led's commit hook. Create it before
// concurrent appends begin, then Serve a listener.
func NewPrimary(led *ledger.Ledger, cfg PrimaryConfig) *Primary {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	p := &Primary{
		led:      led,
		cfg:      cfg,
		sessions: make(map[*session]struct{}),
		ring:     commitRing{entries: make([]ringEntry, cfg.RingSize)},
	}
	p.committed = led.CommittedSeq()
	led.SetCommitHook(p.onCommit)
	return p
}

// onCommit runs under the ledger lock: record the payload in the ring
// and poke every session's sender. Must not call back into the ledger.
func (p *Primary) onCommit(seq uint64, payload []byte) {
	p.mu.Lock()
	p.committed = seq
	p.ring.add(seq, payload)
	for s := range p.sessions {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
}

// Serve accepts follower connections on ln until Close. It returns
// immediately; sessions run on their own goroutines.
func (p *Primary) Serve(ln net.Listener) {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handle(conn)
			}()
		}
	}()
}

// Append journals ev and, with MinSync > 0, holds until enough
// followers have durably acked it. The quorum is checked BEFORE the
// local append so that an unreplicatable spend is refused with
// nothing journaled.
func (p *Primary) Append(ev ledger.Event) error {
	if err := p.SyncGate(); err != nil {
		return err
	}
	seq, err := p.led.AppendSeq(ev)
	if err != nil {
		return err
	}
	return p.waitSynced(seq)
}

// SyncGate reports why a new spend must be refused before journaling:
// this primary is closed or fenced, or fewer than MinSync followers
// are connected. Nil means appends may proceed.
func (p *Primary) SyncGate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.fenced != nil {
		return p.fenced
	}
	if p.cfg.MinSync > 0 && len(p.sessions) < p.cfg.MinSync {
		return fmt.Errorf("%w: %d connected, need %d", ErrNoQuorum, len(p.sessions), p.cfg.MinSync)
	}
	return nil
}

// waitSynced blocks until MinSync followers acked seq or AckTimeout.
func (p *Primary) waitSynced(seq uint64) error {
	p.mu.Lock()
	if p.cfg.MinSync == 0 || p.ackedByLocked(seq) >= p.cfg.MinSync {
		p.mu.Unlock()
		return nil
	}
	if p.closed {
		// Close already drained the waiter list; registering now would
		// wait out the full timeout with no one left to release it.
		p.mu.Unlock()
		return fmt.Errorf("%w: primary closed with seq %d unacked", ErrAckTimeout, seq)
	}
	w := &ackWaiter{seq: seq, ch: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	t := time.NewTimer(p.cfg.AckTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return w.err
	case <-t.C:
		p.mu.Lock()
		done, doneErr := w.done, w.err
		if !done {
			w.done = true // abandon: releaseWaitersLocked skips it
		}
		p.mu.Unlock()
		if done {
			return doneErr // ack (or Close) raced the timer
		}
		return fmt.Errorf("%w: seq %d unacked after %v", ErrAckTimeout, seq, p.cfg.AckTimeout)
	}
}

// ackedByLocked counts sessions whose cumulative ack covers seq.
func (p *Primary) ackedByLocked(seq uint64) int {
	n := 0
	for s := range p.sessions {
		if s.acked >= seq {
			n++
		}
	}
	return n
}

// releaseWaitersLocked completes waiters whose quorum is now met.
func (p *Primary) releaseWaitersLocked() {
	kept := p.waiters[:0]
	for _, w := range p.waiters {
		if !w.done && p.ackedByLocked(w.seq) >= p.cfg.MinSync {
			w.done = true
			close(w.ch)
		}
		if !w.done {
			kept = append(kept, w)
		}
	}
	p.waiters = kept
}

// fence marks this primary deposed (first cause wins).
func (p *Primary) fence(err error) {
	p.mu.Lock()
	already := p.fenced != nil
	if !already {
		p.fenced = err
	}
	p.mu.Unlock()
	if !already {
		p.event(qlog.Error, "repl_fenced", qlog.F("error", err.Error()))
		if p.cfg.OnFenced != nil {
			p.cfg.OnFenced(err)
		}
	}
}

// Fenced reports why this primary is deposed, or nil.
func (p *Primary) Fenced() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// Connected returns the number of attached followers.
func (p *Primary) Connected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// MaxLag returns the largest (committed − acked) over attached
// followers, 0 with none attached.
func (p *Primary) MaxLag() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lag uint64
	for s := range p.sessions {
		if d := p.committed - s.acked; s.acked <= p.committed && d > lag {
			lag = d
		}
	}
	return lag
}

// Close stops the listener and all sessions and waits for them. New
// appends refuse with ErrClosed; appends already waiting for acks
// fail immediately with an ErrAckTimeout-class error (their event is
// durable locally — callers treat the spend as charged).
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	for _, w := range p.waiters {
		if !w.done {
			w.done = true
			w.err = fmt.Errorf("%w: primary closed with seq %d unacked", ErrAckTimeout, w.seq)
			close(w.ch)
		}
	}
	p.waiters = nil
	ln := p.ln
	sessions := make([]*session, 0, len(p.sessions))
	for s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.conn.Close()
	}
	p.wg.Wait()
}

func (p *Primary) event(level qlog.Level, name string, fields ...qlog.Field) {
	p.cfg.Events.Log(level, name, append([]qlog.Field{qlog.F("role", "primary"), qlog.F("node", p.cfg.Name)}, fields...)...)
}

// --- per-follower session ---------------------------------------------

type session struct {
	p      *Primary
	conn   net.Conn
	name   string
	notify chan struct{}
	acked  uint64 // guarded by p.mu
}

// handle runs one follower connection: handshake, then stream.
func (p *Primary) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)

	if err := writeMagic(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if err := readMagic(br); err != nil {
		return
	}
	kind, payload, err := readFrame(br)
	if err != nil || kind != kindSub {
		return
	}
	var sub subRequest
	if err := decodeJSON(payload, &sub); err != nil {
		return
	}

	epoch := p.led.Epoch()
	if sub.Epoch > epoch {
		// A follower from the future: someone promoted past us. Fence
		// this primary — its regime is over — and tell the follower.
		err := fmt.Errorf("%w: follower %q at epoch %d, ours %d", ErrFenced, sub.Name, sub.Epoch, epoch)
		sendError(bw, "fenced", err.Error(), sub.Epoch)
		bw.Flush()
		p.fence(err)
		return
	}
	committed := p.led.CommittedSeq()
	if sub.LastSeq > committed {
		sendError(bw, "diverged", fmt.Sprintf("follower at seq %d, primary at %d", sub.LastSeq, committed), epoch)
		bw.Flush()
		return
	}
	if sub.LastSeq > 0 {
		// Divergence check: the follower's last record must be OUR
		// record, byte for byte.
		mine, err := ledger.RecordPayload(p.led.FS(), p.led.Dir(), sub.LastSeq)
		if err != nil {
			if errors.Is(err, ledger.ErrCompacted) {
				sendError(bw, "behind", fmt.Sprintf("seq %d compacted away; re-seed the follower from an empty directory", sub.LastSeq), epoch)
			} else {
				sendError(bw, "internal", err.Error(), epoch)
			}
			bw.Flush()
			return
		}
		if ledger.Checksum(mine) != sub.LastCRC {
			sendError(bw, "diverged", fmt.Sprintf("record %d CRC mismatch (follower %08x, primary %08x)",
				sub.LastSeq, sub.LastCRC, ledger.Checksum(mine)), epoch)
			bw.Flush()
			return
		}
	}

	// Decide the catch-up path: stream from the WAL when the
	// follower's position is still retained, otherwise seed an empty
	// follower with a snapshot.
	nextSeq := sub.LastSeq + 1
	tr := ledger.NewTailReader(p.led.FS(), p.led.Dir(), sub.LastSeq)
	var snapPayload []byte
	probeSeq, probePayload, probeErr := tr.Next()
	pending := [][]byte(nil)
	switch {
	case probeErr == nil:
		if probeSeq != nextSeq {
			sendError(bw, "internal", fmt.Sprintf("probe seq %d, want %d", probeSeq, nextSeq), epoch)
			bw.Flush()
			return
		}
		pending = append(pending, append([]byte(nil), probePayload...))
	case probeErr == io.EOF:
		// caught up
	case errors.Is(probeErr, ledger.ErrCompacted):
		if sub.LastSeq != 0 {
			sendError(bw, "behind", fmt.Sprintf("seq %d compacted away; re-seed the follower from an empty directory", nextSeq), epoch)
			bw.Flush()
			return
		}
		snapSeq, sp, err := ledger.SnapshotPayload(p.led.FS(), p.led.Dir())
		if err != nil || snapSeq == 0 {
			sendError(bw, "internal", fmt.Sprintf("no snapshot behind compaction horizon: %v", err), epoch)
			bw.Flush()
			return
		}
		snapPayload = sp
		nextSeq = snapSeq + 1
		tr = ledger.NewTailReader(p.led.FS(), p.led.Dir(), snapSeq)
	default:
		sendError(bw, "internal", probeErr.Error(), epoch)
		bw.Flush()
		return
	}

	if err := writeJSONFrame(bw, kindPub, pubReply{Epoch: epoch, Seq: committed, Snapshot: snapPayload != nil}); err != nil {
		return
	}
	if snapPayload != nil {
		if err := writeFrame(bw, kindSnapshot, snapPayload); err != nil {
			return
		}
	}
	if err := bw.Flush(); err != nil {
		return
	}
	_ = conn.SetDeadline(time.Time{})

	s := &session{p: p, conn: conn, name: sub.Name, notify: make(chan struct{}, 1), acked: sub.LastSeq}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.sessions[s] = struct{}{}
	p.releaseWaitersLocked()
	p.mu.Unlock()
	p.event(qlog.Info, "repl_connected",
		qlog.F("peer", sub.Name), qlog.F("from_seq", nextSeq), qlog.F("epoch", epoch),
		qlog.F("snapshot", snapPayload != nil))

	var lostReason error
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.sessions, s)
		// Waiters can no longer be satisfied by this session; others
		// may still complete them, the rest time out.
		p.mu.Unlock()
		reason := "closed"
		if lostReason != nil {
			reason = lostReason.Error()
		}
		p.event(qlog.Warn, "repl_lost", qlog.F("peer", sub.Name), qlog.F("reason", reason))
	}()

	// Ack reader: cumulative positions, completing sync waiters.
	readErr := make(chan error, 1)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		idle := 10 * p.cfg.HeartbeatInterval
		for {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
			kind, payload, err := readFrame(br)
			if err != nil {
				readErr <- err
				return
			}
			if kind != kindAck {
				readErr <- fmt.Errorf("repl: unexpected frame %q from follower", kind)
				return
			}
			var ack ackMsg
			if err := decodeJSON(payload, &ack); err != nil {
				readErr <- err
				return
			}
			p.mu.Lock()
			if ack.Seq > s.acked {
				s.acked = ack.Seq
				p.releaseWaitersLocked()
			}
			p.mu.Unlock()
		}
	}()

	lostReason = s.stream(bw, tr, nextSeq, pending, readErr)
}

// stream is the sender loop: backlog (ring or disk) then live tail.
func (s *session) stream(bw *bufio.Writer, tr *ledger.TailReader, nextSeq uint64, pending [][]byte, readErr chan error) error {
	p := s.p
	hb := time.NewTicker(p.cfg.HeartbeatInterval)
	defer hb.Stop()
	fromDisk := true // tr is positioned at nextSeq
	for {
		// Drain everything committed.
		for {
			p.mu.Lock()
			committed := p.committed
			p.mu.Unlock()
			if nextSeq > committed && len(pending) == 0 {
				break
			}
			var payload []byte
			if len(pending) > 0 {
				payload, pending = pending[0], pending[1:]
			} else {
				p.mu.Lock()
				ringPayload, ok := p.ring.get(nextSeq)
				p.mu.Unlock()
				if ok {
					payload = ringPayload
					fromDisk = false
				} else {
					if !fromDisk {
						// Fell out of the ring window: re-position a
						// disk reader.
						tr = ledger.NewTailReader(p.led.FS(), p.led.Dir(), nextSeq-1)
						fromDisk = true
					}
					seq, diskPayload, err := tr.Next()
					if err == io.EOF {
						// Committed but not yet visible on disk —
						// the ring will have it momentarily.
						break
					}
					if err != nil {
						return err
					}
					if seq != nextSeq {
						return fmt.Errorf("repl: disk reader at seq %d, want %d", seq, nextSeq)
					}
					payload = diskPayload
				}
			}
			_ = s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeFrame(bw, kindEvent, payload); err != nil {
				return err
			}
			nextSeq++
		}
		if err := bw.Flush(); err != nil {
			return err
		}

		select {
		case <-s.notify:
		case <-hb.C:
			p.mu.Lock()
			committed := p.committed
			p.mu.Unlock()
			_ = s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeJSONFrame(bw, kindHeartbeat, heartbeatMsg{Seq: committed, Epoch: p.led.Epoch()}); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case err := <-readErr:
			return err
		}
	}
}
