package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/vfs"
)

func openLedger(t *testing.T, dir string, fsys vfs.FS, fsync ledger.FsyncPolicy, snapEvery int) *ledger.Ledger {
	t.Helper()
	l, err := ledger.Open(ledger.Options{Dir: dir, FS: fsys, Fsync: fsync, SnapshotEvery: snapEvery})
	if err != nil {
		t.Fatalf("ledger.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func charge(analyst string, eps float64) ledger.Event {
	return ledger.Event{Type: ledger.EventCharge, Dataset: "d", Analyst: analyst, Epsilon: eps}
}

// seedDataset registers the test dataset — charges against unknown
// datasets are refused as corruption.
func seedDataset(t *testing.T, l *ledger.Ledger) {
	t.Helper()
	if err := l.Append(ledger.Event{Type: ledger.EventDatasetCreated, Dataset: "d", Kind: "packets",
		Total: 100, PerAnalyst: 50}); err != nil {
		t.Fatal(err)
	}
}

// startPrimary wires a Primary over led and serves it on a loopback
// listener, returning the primary and its address.
func startPrimary(t *testing.T, led *ledger.Ledger, cfg PrimaryConfig) (*Primary, string) {
	t.Helper()
	p := NewPrimary(led, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.Serve(ln)
	t.Cleanup(p.Close)
	return p, ln.Addr().String()
}

func startFollower(t *testing.T, led *ledger.Ledger, cfg FollowerConfig) *Follower {
	t.Helper()
	f, err := NewFollower(led, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)
	return f
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func assertDiffClean(t *testing.T, dirA, dirB string) {
	t.Helper()
	r, err := ledger.Diff(dirA, dirB, 0)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if !r.Clean() {
		t.Fatalf("ledgers diverged at seq %d", r.Diverged.Seq)
	}
	if r.OnlyA != 0 || r.OnlyB != 0 || r.MaxSpentDelta() != 0 {
		t.Fatalf("ledgers drifted: onlyA=%d onlyB=%d maxDelta=%v", r.OnlyA, r.OnlyB, r.MaxSpentDelta())
	}
}

func TestStreamBacklogAndLiveTail(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	for i := 0; i < 5; i++ {
		if err := pl.Append(charge("alice", 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	p, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})

	var mu sync.Mutex
	var applied []uint64
	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f", OnApply: func(ev ledger.Event) {
		mu.Lock()
		applied = append(applied, ev.Seq)
		mu.Unlock()
	}})
	waitUntil(t, 5*time.Second, func() bool { return f.Applied() == 6 }, "backlog catch-up")

	// Live tail: appends through the primary reach the follower.
	for i := 0; i < 5; i++ {
		if err := p.Append(charge("bob", 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 5*time.Second, func() bool { return f.Applied() == 11 }, "live tail")
	mu.Lock()
	defer mu.Unlock()
	for i, seq := range applied {
		if seq != uint64(i+1) {
			t.Fatalf("OnApply seqs = %v, want 1..11 in order", applied)
		}
	}
	if f.Lag() != 0 {
		t.Fatalf("lag = %d after catch-up", f.Lag())
	}
	assertDiffClean(t, dirA, dirB)
}

func TestFollowerResumesFromMidSeq(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	for i := 0; i < 6; i++ {
		if err := pl.Append(charge("alice", 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})

	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return f.Applied() == 7 }, "first catch-up")
	f.Close()

	// The primary moves on while the follower is down.
	for i := 0; i < 4; i++ {
		if err := pl.Append(charge("bob", 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh follower over the same ledger resumes from seq 7 — the
	// handshake carries its position and last-record CRC.
	f2 := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return f2.Applied() == 11 }, "resume catch-up")
	assertDiffClean(t, dirA, dirB)
}

func TestSnapshotCatchUpBehindCompaction(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	// SnapshotEvery 4 compacts early history away: an empty follower
	// must be seeded with a snapshot, not a stream from seq 1.
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, 4)
	seedDataset(t, pl)
	for i := 0; i < 10; i++ {
		if err := pl.Append(charge("alice", 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})

	reset := 0
	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f", OnReset: func() { reset++ }})
	waitUntil(t, 5*time.Second, func() bool { return f.Applied() == 11 }, "snapshot catch-up")
	if reset != 1 {
		t.Fatalf("OnReset fired %d times, want 1", reset)
	}
	st := fl.State()
	if st.Seq != 11 || st.Datasets["d"] == nil || st.Datasets["d"].Spent["alice"] == 0 {
		t.Fatalf("follower state not warmed: %+v", st)
	}
	assertDiffClean(t, dirA, dirB)
}

func TestQuorumGateRefusesBeforeJournaling(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	p, addr := startPrimary(t, pl, PrimaryConfig{Name: "p", MinSync: 1, AckTimeout: 5 * time.Second})

	// No follower connected: the spend is refused BEFORE the journal —
	// nothing on disk, no budget moved.
	if err := p.Append(charge("alice", 0.1)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("append without quorum = %v, want ErrNoQuorum", err)
	}
	if pl.CommittedSeq() != 0 {
		t.Fatalf("refused append journaled anyway (seq %d)", pl.CommittedSeq())
	}

	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return p.Connected() == 1 }, "follower attach")

	// With the follower attached, Append returns only after the
	// follower has durably applied the event.
	if err := p.Append(ledger.Event{Type: ledger.EventDatasetCreated, Dataset: "d", Kind: "packets",
		Total: 100, PerAnalyst: 50}); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(charge("alice", 0.1)); err != nil {
		t.Fatal(err)
	}
	if got := f.Applied(); got != 2 {
		t.Fatalf("follower applied %d at Append return, want 2 (synchronous ack)", got)
	}
	assertDiffClean(t, dirA, dirB)
}

// fakeFollower speaks just enough protocol to subscribe and then
// misbehave in controlled ways.
type fakeFollower struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

func dialFake(t *testing.T, addr string, sub subRequest) (*fakeFollower, byte, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	ff := &fakeFollower{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := readMagic(ff.br); err != nil {
		t.Fatal(err)
	}
	if err := writeMagic(ff.bw); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFrame(ff.bw, kindSub, sub); err != nil {
		t.Fatal(err)
	}
	if err := ff.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := readFrame(ff.br)
	if err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	return ff, kind, payload
}

func TestAckTimeoutIsConservative(t *testing.T) {
	dirA := t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	p, addr := startPrimary(t, pl, PrimaryConfig{Name: "p", MinSync: 1, AckTimeout: 150 * time.Millisecond})

	// A follower that subscribes but never acks.
	_, kind, _ := dialFake(t, addr, subRequest{Name: "mute"})
	if kind != kindPub {
		t.Fatalf("handshake frame %q, want pub", kind)
	}
	waitUntil(t, 5*time.Second, func() bool { return p.Connected() == 1 }, "fake attach")

	err := p.Append(charge("alice", 0.1))
	if !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("append with mute follower = %v, want ErrAckTimeout", err)
	}
	// The event IS journaled: the timeout is an over-count (the charge
	// stands), never an under-count.
	if pl.CommittedSeq() != 2 {
		t.Fatalf("seq after ack timeout = %d, want 2 (journaled)", pl.CommittedSeq())
	}
}

// Close must not strand synchronous appends: waiters already holding
// a journaled event fail immediately with an ErrAckTimeout-class
// error (charged, conservative), and appends arriving after Close
// refuse with ErrClosed before journaling anything.
func TestCloseFailsWaitersImmediately(t *testing.T) {
	dirA := t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	// AckTimeout far beyond the test timeout: only Close can end the wait.
	p, addr := startPrimary(t, pl, PrimaryConfig{Name: "p", MinSync: 1, AckTimeout: time.Hour})

	// A follower that subscribes but never acks, so the append blocks.
	_, kind, _ := dialFake(t, addr, subRequest{Name: "mute"})
	if kind != kindPub {
		t.Fatalf("handshake frame %q, want pub", kind)
	}
	waitUntil(t, 5*time.Second, func() bool { return p.Connected() == 1 }, "fake attach")

	appendErr := make(chan error, 1)
	go func() { appendErr <- p.Append(charge("alice", 0.1)) }()
	waitUntil(t, 5*time.Second, func() bool { return pl.CommittedSeq() == 2 }, "append journaled")

	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case err := <-appendErr:
		if !errors.Is(err, ErrAckTimeout) {
			t.Fatalf("append interrupted by Close = %v, want ErrAckTimeout-class", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the synchronous append waiting")
	}
	<-done

	// The journaled event stands (over-count, never under-count) and
	// new appends refuse cleanly before journaling.
	if pl.CommittedSeq() != 2 {
		t.Fatalf("seq after Close = %d, want 2", pl.CommittedSeq())
	}
	if err := p.Append(charge("alice", 0.1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after Close = %v, want ErrClosed", err)
	}
	if pl.CommittedSeq() != 2 {
		t.Fatalf("post-Close append journaled anyway (seq %d)", pl.CommittedSeq())
	}
}

func TestFencingBothDirections(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	if err := pl.Append(charge("alice", 0.1)); err != nil {
		t.Fatal(err)
	}
	p, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})

	// The follower has lived through a promotion (epoch 3); this
	// primary is from a dead regime (epoch 0). The follower must refuse
	// it AND the primary must realize it has been deposed.
	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	if err := fl.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return f.Err() != nil }, "follower fatal")
	if !errors.Is(f.Err(), ErrFenced) {
		t.Fatalf("follower err = %v, want ErrFenced", f.Err())
	}
	waitUntil(t, 5*time.Second, func() bool { return p.Fenced() != nil }, "primary fenced")
	if err := p.Append(charge("alice", 0.1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed primary append = %v, want ErrFenced", err)
	}
	if pl.CommittedSeq() != 2 {
		t.Fatalf("deposed primary journaled anyway (seq %d)", pl.CommittedSeq())
	}
}

func TestDivergedHistoriesRefused(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	seedDataset(t, fl)
	// Two independent histories: same seqs, different bytes.
	for i := 0; i < 4; i++ {
		if err := pl.Append(charge("alice", 0.1)); err != nil {
			t.Fatal(err)
		}
		if err := fl.Append(charge("mallory", 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return f.Err() != nil }, "follower fatal")
	if !errors.Is(f.Err(), ErrDiverged) {
		t.Fatalf("follower err = %v, want ErrDiverged", f.Err())
	}
	if fl.CommittedSeq() != 5 {
		t.Fatal("divergence refusal must not modify the follower ledger")
	}
}

func TestPromoteSealsVerifiesAndBumpsEpoch(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pl := openLedger(t, dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, pl)
	_, addr := startPrimary(t, pl, PrimaryConfig{Name: "p"})
	for i := 0; i < 8; i++ {
		if err := pl.Append(charge("alice", 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	fl := openLedger(t, dirB, nil, ledger.FsyncNever, -1)
	f := startFollower(t, fl, FollowerConfig{Primary: addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return f.Applied() == 9 }, "catch-up")

	epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch != 1 || fl.Epoch() != 1 {
		t.Fatalf("epoch after promote = %d (ledger %d), want 1", epoch, fl.Epoch())
	}
	// The promoted ledger accepts spends at exactly the replayed
	// boundary.
	if err := fl.Append(charge("bob", 0.2)); err != nil {
		t.Fatal(err)
	}
	if fl.CommittedSeq() != 10 {
		t.Fatalf("first post-promote seq = %d, want 10", fl.CommittedSeq())
	}
	if _, err := f.Promote(); err == nil {
		t.Fatal("second Promote accepted")
	}
}
