package repl

// Fault injection on the FOLLOWER's WAL: the replication contract says
// a follower never acks a seq that is not durable on its own disk, a
// sick follower fails closed (stops acking, primary lag grows), and a
// crashed follower resyncs cleanly from its durable position. These
// tests script vfs.FaultFS faults under FsyncAlways — the production
// durability policy — and check each of those promises.

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/vfs"
)

// faultHarness is a primary plus one follower whose ledger runs on a
// FaultFS, caught up through the seed events.
type faultHarness struct {
	pl     *ledger.Ledger
	addr   string
	fsys   *vfs.FaultFS
	fl     *ledger.Ledger
	f      *Follower
	dirA   string
	dirB   string
	seeded uint64
}

func newFaultHarness(t *testing.T, charges int) *faultHarness {
	t.Helper()
	h := &faultHarness{dirA: t.TempDir(), dirB: t.TempDir()}
	h.pl = openLedger(t, h.dirA, nil, ledger.FsyncNever, -1)
	seedDataset(t, h.pl)
	for i := 0; i < charges; i++ {
		if err := h.pl.Append(charge("alice", 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	h.seeded = h.pl.CommittedSeq()
	_, h.addr = startPrimary(t, h.pl, PrimaryConfig{Name: "p"})

	h.fsys = vfs.NewFaultFS(nil)
	h.fl = openLedger(t, h.dirB, h.fsys, ledger.FsyncAlways, -1)
	h.f = startFollower(t, h.fl, FollowerConfig{Primary: h.addr, Name: "f"})
	waitUntil(t, 5*time.Second, func() bool { return h.f.Applied() == h.seeded }, "seed catch-up")
	return h
}

func TestFollowerEIOFailsClosed(t *testing.T) {
	h := newFaultHarness(t, 3)
	// The next WAL write returns EIO, sticky: the disk is gone.
	h.fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO, Sticky: true})

	if err := h.pl.Append(charge("bob", 0.5)); err != nil {
		t.Fatal(err)
	}
	// The follower must go fatal (degraded ledger), never acking the
	// event it could not persist.
	waitUntil(t, 5*time.Second, func() bool { return h.f.Err() != nil }, "follower fatal")
	if !errors.Is(h.f.Err(), ledger.ErrDegraded) {
		t.Fatalf("follower err = %v, want ErrDegraded", h.f.Err())
	}
	if h.f.Applied() != h.seeded {
		t.Fatalf("applied advanced to %d past a failed write (seeded %d)", h.f.Applied(), h.seeded)
	}
	if h.fl.CommittedSeq() != h.seeded {
		t.Fatalf("follower ledger at %d, want %d", h.fl.CommittedSeq(), h.seeded)
	}
	// The durable common prefix is still byte-identical: the primary
	// simply has un-replicated tail events.
	r, err := ledger.Diff(h.dirA, h.dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() || r.OnlyA != 1 {
		t.Fatalf("diff after EIO: clean=%v onlyA=%d", r.Clean(), r.OnlyA)
	}
}

func TestFollowerENOSPCOnFsyncNeverAcksUndurable(t *testing.T) {
	h := newFaultHarness(t, 3)
	// The write lands but the fsync fails with ENOSPC, sticky. Under
	// fsyncgate rules the ledger must degrade — the bytes may or may
	// not be stable, so the seq must never be acked.
	h.fsys.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal-", Err: syscall.ENOSPC, Sticky: true})

	if err := h.pl.Append(charge("bob", 0.5)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return h.f.Err() != nil }, "follower fatal")
	if !errors.Is(h.f.Err(), ledger.ErrDegraded) {
		t.Fatalf("follower err = %v, want ErrDegraded", h.f.Err())
	}
	if h.f.Applied() != h.seeded {
		t.Fatalf("acked seq %d whose fsync failed (seeded %d)", h.f.Applied(), h.seeded)
	}
}

func TestFollowerTornWriteCrashAndResync(t *testing.T) {
	h := newFaultHarness(t, 3)
	// The record write tears 5 bytes in, then the machine loses power:
	// the torn bytes were never synced, so the crash truncates them.
	h.fsys.Inject(vfs.Rule{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO, Short: 5})

	if err := h.pl.Append(charge("bob", 0.5)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return h.f.Err() != nil }, "follower fatal")
	if h.f.Applied() != h.seeded {
		t.Fatalf("acked a torn seq: applied %d, seeded %d", h.f.Applied(), h.seeded)
	}
	h.f.Close()
	h.fl.Close()
	if err := h.fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}

	// "Reboot": reopen on the surviving bytes with a healthy disk.
	// Recovery sees a clean tail (the torn bytes are gone) and the
	// follower resyncs from its durable position.
	fl2 := openLedger(t, h.dirB, nil, ledger.FsyncAlways, -1)
	if fl2.Recovery().Err != nil {
		t.Fatalf("recovery after crash: %v", fl2.Recovery().Err)
	}
	if fl2.CommittedSeq() != h.seeded {
		t.Fatalf("recovered seq %d, want %d", fl2.CommittedSeq(), h.seeded)
	}
	f2 := startFollower(t, fl2, FollowerConfig{Primary: h.addr, Name: "f"})
	want := h.pl.CommittedSeq()
	waitUntil(t, 5*time.Second, func() bool { return f2.Applied() == want }, "resync")
	assertDiffClean(t, h.dirA, h.dirB)
}

func TestFollowerCrashBetweenReceiveAndFsync(t *testing.T) {
	h := newFaultHarness(t, 3)
	// The record is fully written, then the crash hits DURING the
	// fsync — the exact window between receiving an event and making
	// it durable. The ack for that seq must never have been sent, and
	// the written-but-unsynced bytes must not survive the reboot.
	h.fsys.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal-", Crash: true})

	if err := h.pl.Append(charge("bob", 0.5)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return h.f.Err() != nil }, "follower fatal")
	if h.f.Applied() != h.seeded {
		t.Fatalf("acked an unsynced seq: applied %d, seeded %d", h.f.Applied(), h.seeded)
	}
	h.f.Close()
	h.fl.Close()
	if err := h.fsys.SimulateCrash(); err != nil {
		t.Fatal(err)
	}

	fl2 := openLedger(t, h.dirB, nil, ledger.FsyncAlways, -1)
	if fl2.Recovery().Err != nil {
		t.Fatalf("recovery after crash: %v", fl2.Recovery().Err)
	}
	// The unsynced record is gone: the follower is exactly at its last
	// acked position, so the resync re-delivers the lost event instead
	// of double-applying it.
	if fl2.CommittedSeq() != h.seeded {
		t.Fatalf("recovered seq %d, want %d (unsynced record must not survive)", fl2.CommittedSeq(), h.seeded)
	}
	f2 := startFollower(t, fl2, FollowerConfig{Primary: h.addr, Name: "f"})
	want := h.pl.CommittedSeq()
	waitUntil(t, 5*time.Second, func() bool { return f2.Applied() == want }, "resync")
	assertDiffClean(t, h.dirA, h.dirB)
}
