package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/obs/qlog"
	"dptrace/internal/retry"
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Primary is the host:port of the primary's replication listener.
	Primary string
	// Name identifies this node in handshakes and events.
	Name string
	// Retry paces reconnect attempts; zero value gets sensible caps.
	Retry retry.Policy
	// DialTimeout bounds each connection attempt; <=0 means 5s.
	DialTimeout time.Duration
	// Events receives repl_connected / repl_lost wide events (nil
	// discards).
	Events *qlog.Logger
	// OnApply is called after each replicated event is durable in the
	// follower's WAL — the server warms its in-memory policy state
	// here. Called in seq order from a single goroutine.
	OnApply func(ev ledger.Event)
	// OnReset is called when a snapshot is installed (the in-memory
	// state must be rebuilt from the ledger, not patched).
	OnReset func()
	// Dial overrides the dialer (tests inject fault paths); nil uses
	// net.Dialer.
	Dial DialFunc
}

// DialFunc opens a connection to a primary's replication address.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Follower tails a primary into the local ledger, acking each seq only
// after it is durable locally. It serves reads until Promote.
type Follower struct {
	led *ledger.Ledger
	cfg FollowerConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	conn   net.Conn
	sealed bool
	fatal  error

	connected    atomic.Bool
	applied      atomic.Uint64
	primarySeq   atomic.Uint64
	primaryEpoch atomic.Uint64
	lastCRC      atomic.Uint32
}

// NewFollower prepares a follower over led. Call Start to begin
// tailing.
func NewFollower(led *ledger.Ledger, cfg FollowerConfig) (*Follower, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Retry.BaseBackoff <= 0 {
		cfg.Retry.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.Retry.MaxBackoff <= 0 {
		cfg.Retry.MaxBackoff = 5 * time.Second
	}
	if cfg.Retry.Jitter == 0 {
		cfg.Retry.Jitter = 0.2
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{led: led, cfg: cfg, ctx: ctx, cancel: cancel}
	f.applied.Store(led.CommittedSeq())
	f.primarySeq.Store(led.CommittedSeq())
	if seq := led.CommittedSeq(); seq > 0 {
		p, err := ledger.RecordPayload(led.FS(), led.Dir(), seq)
		if err != nil {
			return nil, fmt.Errorf("repl: read own tail record %d: %w", seq, err)
		}
		f.lastCRC.Store(ledger.Checksum(p))
	}
	return f, nil
}

// Start launches the tailing loop: dial, stream, reconnect with capped
// backoff until Promote/Close or a fatal protocol error.
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.run()
	}()
}

func (f *Follower) run() {
	attempt := 0
	for {
		if f.ctx.Err() != nil || f.Err() != nil {
			return
		}
		streamed, err := f.session()
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if err != nil && isFatal(err) {
			f.setFatal(err)
			f.event(qlog.Error, "repl_lost", qlog.F("reason", err.Error()), qlog.F("fatal", true))
			return
		}
		if err != nil {
			f.event(qlog.Warn, "repl_lost", qlog.F("reason", err.Error()), qlog.F("fatal", false))
		}
		if streamed {
			attempt = 0 // made progress: restart the backoff ladder
		}
		if sleepErr := f.cfg.Retry.Sleep(f.ctx, attempt); sleepErr != nil {
			return
		}
		attempt++
	}
}

// isFatal reports errors that reconnecting cannot fix: fencing,
// divergence, falling behind compaction, or a sick local ledger.
func isFatal(err error) bool {
	return errors.Is(err, ErrFenced) || errors.Is(err, ErrDiverged) || errors.Is(err, ErrBehind) ||
		errors.Is(err, ledger.ErrDegraded) || errors.Is(err, ledger.ErrFrozen) || errors.Is(err, ledger.ErrCorrupt)
}

// session runs one connection lifetime. The bool reports whether the
// handshake completed (progress was made).
func (f *Follower) session() (bool, error) {
	dialCtx, cancel := context.WithTimeout(f.ctx, f.cfg.DialTimeout)
	defer cancel()
	dial := f.cfg.Dial
	if dial == nil {
		var d net.Dialer
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(dialCtx, f.cfg.Primary)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	f.mu.Lock()
	if f.sealed {
		f.mu.Unlock()
		return false, nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := readMagic(br); err != nil {
		return false, err
	}
	if err := writeMagic(bw); err != nil {
		return false, err
	}
	lastSeq := f.led.CommittedSeq()
	sub := subRequest{Name: f.cfg.Name, Epoch: f.led.Epoch(), LastSeq: lastSeq}
	if lastSeq > 0 {
		sub.LastCRC = f.lastCRC.Load()
	}
	if err := writeJSONFrame(bw, kindSub, sub); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}

	kind, payload, err := readFrame(br)
	if err != nil {
		return false, err
	}
	if kind == kindError {
		var em errMsg
		if err := decodeJSON(payload, &em); err != nil {
			return false, err
		}
		return false, em.toError()
	}
	if kind != kindPub {
		return false, fmt.Errorf("repl: handshake frame %q, want pub", kind)
	}
	var pub pubReply
	if err := decodeJSON(payload, &pub); err != nil {
		return false, err
	}
	if pub.Epoch < f.led.Epoch() {
		// A primary from a previous regime — refuse to follow it.
		return false, fmt.Errorf("%w: primary at epoch %d, we are at %d", ErrFenced, pub.Epoch, f.led.Epoch())
	}
	// Adopt the primary's epoch durably BEFORE acking anything under
	// its regime, so a later promotion bumps past it.
	if err := f.led.SetEpoch(pub.Epoch); err != nil {
		return false, err
	}
	f.primaryEpoch.Store(pub.Epoch)
	f.primarySeq.Store(pub.Seq)

	if pub.Snapshot {
		kind, payload, err := readFrame(br)
		if err != nil {
			return false, err
		}
		if kind != kindSnapshot {
			return false, fmt.Errorf("repl: frame %q, want snapshot", kind)
		}
		if err := f.led.InstallSnapshot(payload); err != nil {
			return false, fmt.Errorf("repl: install snapshot: %w", err)
		}
		f.applied.Store(f.led.CommittedSeq())
		f.lastCRC.Store(ledger.Checksum(payload))
		if f.cfg.OnReset != nil {
			f.cfg.OnReset()
		}
		if err := writeJSONFrame(bw, kindAck, ackMsg{Seq: f.led.CommittedSeq()}); err != nil {
			return false, err
		}
		if err := bw.Flush(); err != nil {
			return false, err
		}
	}

	_ = conn.SetDeadline(time.Time{})
	f.connected.Store(true)
	f.event(qlog.Info, "repl_connected",
		qlog.F("primary", f.cfg.Primary), qlog.F("epoch", pub.Epoch),
		qlog.F("local_seq", f.led.CommittedSeq()), qlog.F("primary_seq", pub.Seq),
		qlog.F("snapshot", pub.Snapshot))

	return true, f.stream(conn, br, bw)
}

// stream applies events until the connection dies or the follower is
// sealed. Every seq is durable locally BEFORE it is acked.
func (f *Follower) stream(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	idle := 10 * time.Second
	for {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		kind, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		switch kind {
		case kindEvent:
			ev, err := f.applyEvent(payload)
			if err != nil {
				return err
			}
			if f.cfg.OnApply != nil {
				f.cfg.OnApply(ev)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeJSONFrame(bw, kindAck, ackMsg{Seq: ev.Seq}); err != nil {
				return err
			}
			if br.Buffered() < frameHeaderSize {
				if err := bw.Flush(); err != nil {
					return err
				}
			}
		case kindHeartbeat:
			var hb heartbeatMsg
			if err := decodeJSON(payload, &hb); err != nil {
				return err
			}
			if hb.Epoch > f.primaryEpoch.Load() {
				f.primaryEpoch.Store(hb.Epoch)
			}
			if hb.Seq > f.primarySeq.Load() {
				f.primarySeq.Store(hb.Seq)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := writeJSONFrame(bw, kindAck, ackMsg{Seq: f.applied.Load()}); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case kindError:
			var em errMsg
			if err := decodeJSON(payload, &em); err != nil {
				return err
			}
			return em.toError()
		default:
			return fmt.Errorf("repl: unexpected frame %q", kind)
		}
	}
}

// applyEvent writes one replicated record durably and returns the
// decoded event. Sealed followers refuse: promotion froze the history.
func (f *Follower) applyEvent(payload []byte) (ledger.Event, error) {
	var ev ledger.Event
	if err := ledger.DecodeEventPayload(payload, &ev); err != nil {
		return ev, err
	}
	f.mu.Lock()
	sealed := f.sealed
	f.mu.Unlock()
	if sealed {
		return ev, errors.New("repl: follower sealed (promotion in progress)")
	}
	if err := f.led.ReplicaAppend(ev.Seq, payload); err != nil {
		return ev, err
	}
	f.applied.Store(ev.Seq)
	if ev.Seq > f.primarySeq.Load() {
		f.primarySeq.Store(ev.Seq)
	}
	f.lastCRC.Store(ledger.Checksum(payload))
	return ev, nil
}

// Promote seals the follower, verifies the replicated WAL tail
// replays bit-identically, durably bumps the fencing epoch, and
// returns the new epoch. After Promote returns, the ledger is safe to
// serve spends at exactly the replayed refusal boundary.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.sealed {
		f.mu.Unlock()
		return 0, errors.New("repl: already promoted")
	}
	f.sealed = true
	conn := f.conn
	f.mu.Unlock()
	f.cancel()
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()

	if err := f.led.Sync(); err != nil {
		return 0, fmt.Errorf("repl: sync before promote: %w", err)
	}
	if err := f.verifyTail(); err != nil {
		return 0, fmt.Errorf("repl: tail verification: %w", err)
	}
	epoch := f.led.Epoch() + 1
	if err := f.led.SetEpoch(epoch); err != nil {
		return 0, fmt.Errorf("repl: bump epoch: %w", err)
	}
	f.event(qlog.Info, "repl_promoted", qlog.F("epoch", epoch), qlog.F("seq", f.led.CommittedSeq()))
	return epoch, nil
}

// verifyTail re-reads the WAL from disk via a fresh Replay and checks
// it lands exactly on the live state: same seq, same per-dataset
// budgets bit for bit. This is the "verify the tail" step of
// promotion — the durable record and the warm state must agree before
// the first new spend.
func (f *Follower) verifyTail() error {
	st, rec, err := ledger.Replay(f.led.Dir(), 0)
	if err != nil {
		return err
	}
	if rec.Err != nil {
		return rec.Err
	}
	live := f.led.State()
	if st.Seq != live.Seq {
		return fmt.Errorf("replayed seq %d, live %d", st.Seq, live.Seq)
	}
	for name, ds := range live.Datasets {
		rd := st.Datasets[name]
		if rd == nil {
			return fmt.Errorf("dataset %q missing from replay", name)
		}
		if rd.TotalSpent != ds.TotalSpent {
			return fmt.Errorf("dataset %q total spent: replay %v, live %v", name, rd.TotalSpent, ds.TotalSpent)
		}
		for analyst, eps := range ds.Spent {
			if rd.Spent[analyst] != eps {
				return fmt.Errorf("dataset %q analyst %q: replay %v, live %v", name, analyst, rd.Spent[analyst], ds.Spent[analyst])
			}
		}
	}
	return nil
}

// Close stops tailing without promoting.
func (f *Follower) Close() {
	f.mu.Lock()
	conn := f.conn
	f.mu.Unlock()
	f.cancel()
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()
}

// Err returns the fatal error that stopped tailing, or nil.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fatal
}

func (f *Follower) setFatal(err error) {
	f.mu.Lock()
	if f.fatal == nil {
		f.fatal = err
	}
	f.mu.Unlock()
}

// Connected reports whether a stream is currently attached.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Applied returns the highest locally-durable replicated seq.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// PrimarySeq returns the primary's last advertised committed seq.
func (f *Follower) PrimarySeq() uint64 { return f.primarySeq.Load() }

// Epoch returns the last adopted primary epoch.
func (f *Follower) Epoch() uint64 { return f.primaryEpoch.Load() }

// Lag returns primarySeq − applied (floored at zero): how many
// committed events this follower has not yet durably applied.
func (f *Follower) Lag() uint64 {
	p, a := f.primarySeq.Load(), f.applied.Load()
	if p <= a {
		return 0
	}
	return p - a
}

func (f *Follower) event(level qlog.Level, name string, fields ...qlog.Field) {
	f.cfg.Events.Log(level, name, append([]qlog.Field{qlog.F("role", "follower"), qlog.F("node", f.cfg.Name)}, fields...)...)
}
