package obs

import (
	"sync"
	"time"
)

// Span is one timed region of work. A query's execution produces a
// tree of spans: the root covers the whole request, children cover
// each pipeline operator and the final aggregation. Spans carry only
// operational metadata (names, durations, record counts) — never
// record contents.
type Span struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"durationNs"` // JSON in nanoseconds
	Labels   map[string]string `json:"labels,omitempty"`
	Children []*Span           `json:"children,omitempty"`

	parent *Span
}

// NewSpan starts a root span now.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts a child span now. Spans themselves are not
// concurrency-safe; a pipeline builds its tree sequentially and
// TraceRecorder adds locking where needed.
func (s *Span) StartChild(name string) *Span {
	c := &Span{Name: name, Start: time.Now(), parent: s}
	s.Children = append(s.Children, c)
	return c
}

// Parent returns the span this one was started under (nil for roots).
func (s *Span) Parent() *Span { return s.parent }

// End closes the span. Duration is clamped to ≥1ns so a recorded span
// is always distinguishable from one that never ended, even when the
// clock's tick is coarser than the work.
func (s *Span) End() {
	d := time.Since(s.Start)
	if d <= 0 {
		d = 1
	}
	s.Duration = d
}

// SetLabel attaches a key/value to the span.
func (s *Span) SetLabel(k, v string) {
	if s.Labels == nil {
		s.Labels = make(map[string]string)
	}
	s.Labels[k] = v
}

// TraceRecorder materializes Recorder callbacks as a span tree under
// one root: each OpDone/AggDone becomes a completed child span whose
// start is back-dated by the reported duration. It is safe for
// concurrent use, though a single query pipeline reports sequentially.
type TraceRecorder struct {
	mu   sync.Mutex
	root *Span
	done bool
}

// NewTraceRecorder opens a root span with the given name.
func NewTraceRecorder(name string) *TraceRecorder {
	return &TraceRecorder{root: NewSpan(name)}
}

// SetLabel labels the root span.
func (t *TraceRecorder) SetLabel(k, v string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.SetLabel(k, v)
}

// OpDone implements Recorder.
func (t *TraceRecorder) OpDone(op string, d time.Duration, in, out, workers int) {
	labels := map[string]string{
		"records_in":  itoa(in),
		"records_out": itoa(out),
		"strategy":    StrategyName(workers),
	}
	if workers >= 2 {
		labels["workers"] = itoa(workers)
	}
	t.addChild(op, d, labels)
}

// AggDone implements Recorder.
func (t *TraceRecorder) AggDone(agg, outcome string, epsilon float64, d time.Duration) {
	t.addChild("aggregate:"+agg, d, map[string]string{
		"outcome": outcome,
		"epsilon": formatValue(epsilon),
	})
}

func (t *TraceRecorder) addChild(name string, d time.Duration, labels map[string]string) {
	if d <= 0 {
		d = 1
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	c := &Span{
		Name:     name,
		Start:    now.Add(-d),
		Duration: d,
		Labels:   labels,
		parent:   t.root,
	}
	t.root.Children = append(t.root.Children, c)
}

// Finish closes the root span and returns the completed tree. Further
// recorder callbacks are dropped.
func (t *TraceRecorder) Finish() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.root.End()
		t.done = true
	}
	return t.root
}

// TraceBuffer is a fixed-capacity ring of recent traces: the data
// owner's flight recorder behind GET /debug/traces.
type TraceBuffer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	count int
}

// DefaultTraceCap bounds the ring when NewTraceBuffer is given a
// non-positive capacity.
const DefaultTraceCap = 64

// NewTraceBuffer creates a ring holding the most recent max traces.
func NewTraceBuffer(max int) *TraceBuffer {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &TraceBuffer{ring: make([]*Span, max)}
}

// Add records one completed trace, evicting the oldest when full.
func (b *TraceBuffer) Add(s *Span) {
	if s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring[b.next] = s
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
}

// Len reports how many traces are held.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Snapshot returns the held traces, newest first.
func (b *TraceBuffer) Snapshot() []*Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Span, 0, b.count)
	for i := 1; i <= b.count; i++ {
		out = append(out, b.ring[(b.next-i+len(b.ring))%len(b.ring)])
	}
	return out
}
