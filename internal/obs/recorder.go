package obs

import (
	"strconv"
	"time"
)

// Recorder receives engine telemetry: one OpDone per transformation,
// one AggDone per aggregation attempt. Implementations must be safe
// for concurrent use; calls happen on query hot paths, so they should
// be cheap. The engine treats a nil Recorder as "off" and skips even
// the clock reads, keeping the default cost at a nil-check.
type Recorder interface {
	// OpDone reports one completed transformation: its operator name
	// (lowercase, e.g. "where", "groupby"), wall time, the record
	// counts flowing in and out, and the execution strategy — workers
	// is 0 when the operator ran sequentially and the shard count
	// (≥2) when the parallel engine ran it. Record counts are
	// protected data in the aggregate exposition sense only when the
	// owner publishes them; recorders feed owner-side surfaces, which
	// PINQ's model trusts with the raw records themselves.
	OpDone(op string, d time.Duration, recordsIn, recordsOut, workers int)
	// AggDone reports one aggregation attempt: its name ("count",
	// "sum", ...), outcome ("ok", "refused", or "error"), the ε
	// requested by the analyst (before sensitivity scaling), and wall
	// time (near-zero for attempts rejected before doing work).
	AggDone(agg, outcome string, epsilon float64, d time.Duration)
}

// Outcome classification strings shared by recorders and their
// consumers.
const (
	OutcomeOK      = "ok"
	OutcomeRefused = "refused"
	OutcomeError   = "error"
)

// Strategy names derived from OpDone's workers count.
const (
	StrategySequential = "sequential"
	StrategyParallel   = "parallel"
	StrategyFused      = "fused"
)

// FusedWorkers is the OpDone workers sentinel the fused streaming
// engine reports: the stage ran inside a single fused loop rather
// than as its own pass, so neither "sequential" (its own pass) nor a
// shard count describes it. Recorders that only branch on workers ≥ 2
// need no change.
const FusedWorkers = -1

// StrategyName maps an OpDone workers count to its strategy name:
// "parallel" for shard counts ≥ 2, "fused" for the FusedWorkers
// sentinel, "sequential" otherwise.
func StrategyName(workers int) string {
	if workers >= 2 {
		return StrategyParallel
	}
	if workers == FusedWorkers {
		return StrategyFused
	}
	return StrategySequential
}

// NopRecorder discards everything. The engine also accepts nil; this
// exists for callers that want an explicit value.
type NopRecorder struct{}

func (NopRecorder) OpDone(string, time.Duration, int, int, int)    {}
func (NopRecorder) AggDone(string, string, float64, time.Duration) {}

// MetricsRecorder aggregates engine telemetry into a Registry:
//
//	dp_op_duration_seconds{op=...}    histogram of operator wall time
//	dp_op_records_in_total{op=...}    records flowing into operators
//	dp_op_records_out_total{op=...}   records flowing out
//	dp_op_parallel_total{op=...}      operators run by the parallel engine
//	dp_agg_total{agg=...,outcome=...} aggregation attempts
//	dp_agg_duration_seconds{agg=...}  histogram of aggregation wall time
//	dp_budget_spend_total             sum of requested ε on successful
//	                                  aggregations (pre-scaling)
type MetricsRecorder struct {
	reg *Registry
}

// NewMetricsRecorder wraps reg as a Recorder.
func NewMetricsRecorder(reg *Registry) *MetricsRecorder {
	return &MetricsRecorder{reg: reg}
}

// Registry returns the backing registry.
func (m *MetricsRecorder) Registry() *Registry { return m.reg }

// OpDone implements Recorder.
func (m *MetricsRecorder) OpDone(op string, d time.Duration, in, out, workers int) {
	m.reg.Histogram("dp_op_duration_seconds", DurationBuckets(), "op", op).Observe(d.Seconds())
	m.reg.Counter("dp_op_records_in_total", "op", op).Add(float64(in))
	m.reg.Counter("dp_op_records_out_total", "op", op).Add(float64(out))
	if workers >= 2 {
		m.reg.Counter("dp_op_parallel_total", "op", op).Inc()
	}
}

// AggDone implements Recorder.
func (m *MetricsRecorder) AggDone(agg, outcome string, epsilon float64, d time.Duration) {
	m.reg.Counter("dp_agg_total", "agg", agg, "outcome", outcome).Inc()
	if outcome == OutcomeOK {
		m.reg.Histogram("dp_agg_duration_seconds", DurationBuckets(), "agg", agg).Observe(d.Seconds())
		m.reg.Counter("dp_budget_spend_total").Add(epsilon)
	}
}

// multiRecorder fans out to several recorders.
type multiRecorder []Recorder

func (m multiRecorder) OpDone(op string, d time.Duration, in, out, workers int) {
	for _, r := range m {
		r.OpDone(op, d, in, out, workers)
	}
}

func (m multiRecorder) AggDone(agg, outcome string, epsilon float64, d time.Duration) {
	for _, r := range m {
		r.AggDone(agg, outcome, epsilon, d)
	}
}

// Multi combines recorders; nils are dropped. It returns nil when
// nothing remains, so the engine's nil fast path still applies.
func Multi(recs ...Recorder) Recorder {
	out := make(multiRecorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// itoa is strconv.Itoa, aliased so recorder call sites stay short.
func itoa(v int) string { return strconv.Itoa(v) }
