// Package qlog is the system's structured wide-event logger: the
// single spine through which operational events — query completions,
// recovered panics, load sheds, ledger freeze/degrade transitions,
// drains — leave the process. One event is one JSON object on one
// line ("wide events": everything known about the occurrence in one
// record, rather than scattered printf fragments), so operators can
// grep a terminal, tail a file, or ship the stream to any pipeline
// without a parsing layer.
//
// Design constraints, in order:
//
//   - Zero dependencies (stdlib only), like the rest of internal/obs.
//   - Deterministic encoding: fields render in the order they were
//     attached, so an event type has ONE canonical JSON shape and the
//     schema can be pinned by golden tests.
//   - Bounded memory: a fixed ring of recent events backs the
//     server's GET /debug/queries flight recorder; the ring never
//     grows and never blocks a writer.
//   - Cheap to drop: a nil *Logger is valid and discards everything,
//     so call sites need no guards; per-event-name sampling thins
//     high-volume event types (sheds under overload) without losing
//     the rare ones.
//
// Events carry operational metadata only — names, durations, counts,
// ε amounts, outcomes. Never record data, and never raw (pre-noise)
// aggregate values; see the profile invariant in DESIGN.md §S31.
package qlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level classifies an event's severity.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String renders the level the way it appears on the wire.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "info"
	}
}

// MarshalJSON encodes the level as its lowercase name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON decodes a lowercase level name.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "debug":
		*l = Debug
	case "info":
		*l = Info
	case "warn":
		*l = Warn
	case "error":
		*l = Error
	default:
		return fmt.Errorf("qlog: unknown level %q", s)
	}
	return nil
}

// Field is one key/value pair of a wide event. Fields keep their
// attachment order through encoding, which is what makes an event
// type's JSON shape canonical.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; it exists so call sites read as F("analyst", a).
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one wide event. The wire form is a single flat JSON
// object: the three envelope keys ("time", "level", "event") followed
// by every field in attachment order:
//
//	{"time":"2026-08-08T12:00:00Z","level":"info","event":"query",
//	 "analyst":"alice","dataset":"hotspot",...}
type Event struct {
	Time   time.Time
	Level  Level
	Name   string
	Fields []Field
}

// envelope keys reserved by the Event encoding; a field using one
// would produce duplicate JSON keys, so With renames it.
func reservedKey(k string) bool {
	return k == "time" || k == "level" || k == "event"
}

// With returns a copy of the event with the extra fields appended.
// Fields whose key collides with an envelope key are prefixed with
// "field_" rather than silently producing invalid JSON.
func (e Event) With(fields ...Field) Event {
	out := e
	out.Fields = append(append([]Field(nil), e.Fields...), fields...)
	for i := range out.Fields {
		if reservedKey(out.Fields[i].Key) {
			out.Fields[i].Key = "field_" + out.Fields[i].Key
		}
	}
	return out
}

// MarshalJSON implements the canonical encoding described on Event.
func (e Event) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	b.WriteString(`"time":`)
	ts, err := e.Time.UTC().MarshalJSON()
	if err != nil {
		return nil, err
	}
	b.Write(ts)
	b.WriteString(`,"level":"`)
	b.WriteString(e.Level.String())
	b.WriteString(`","event":`)
	b.WriteString(strconv.Quote(e.Name))
	for _, f := range e.Fields {
		b.WriteByte(',')
		key := f.Key
		if reservedKey(key) {
			key = "field_" + key
		}
		b.WriteString(strconv.Quote(key))
		b.WriteByte(':')
		v, err := json.Marshal(f.Value)
		if err != nil {
			// A field that cannot encode (NaN, a channel) must not lose
			// the whole event; encode what we can say about it instead.
			v, _ = json.Marshal(fmt.Sprintf("!ERR(%v)", err))
		}
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes the envelope keys and collects every other
// key as a field. Field order follows the JSON document order.
func (e *Event) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("qlog: event must be a JSON object")
	}
	*e = Event{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key := keyTok.(string)
		switch key {
		case "time":
			var t time.Time
			if err := decodeNext(dec, &t); err != nil {
				return err
			}
			e.Time = t
		case "level":
			var l Level
			if err := decodeNext(dec, &l); err != nil {
				return err
			}
			e.Level = l
		case "event":
			var s string
			if err := decodeNext(dec, &s); err != nil {
				return err
			}
			e.Name = s
		default:
			var v any
			if err := decodeNext(dec, &v); err != nil {
				return err
			}
			e.Fields = append(e.Fields, Field{Key: key, Value: v})
		}
	}
	_, err = dec.Token() // closing brace
	return err
}

func decodeNext(dec *json.Decoder, v any) error {
	raw := json.RawMessage{}
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

// Options configures New.
type Options struct {
	// W receives one JSON line per emitted event. Nil keeps events in
	// the ring only — the mode a server uses when no log sink is
	// configured but /debug/queries should still work.
	W io.Writer
	// MinLevel drops events below it (default Debug: keep everything).
	MinLevel Level
	// RingSize bounds the ring of recent events; non-positive selects
	// DefaultRingSize.
	RingSize int
	// Sample maps an event name to its keep-1-in-N sampling rate:
	// Sample["query_shed"] = 100 keeps the 1st, 101st, 201st... shed
	// event and drops the rest (writer and ring alike). Names absent
	// from the map — and rates < 2 — are never sampled. Sampling is
	// counter-based and deterministic, so tests and replays see the
	// same kept set.
	Sample map[string]int
	// Now is the clock (a test seam); nil means time.Now.
	Now func() time.Time
	// Mirror, when set, additionally receives a human-readable
	// rendering of every kept event at Warn or above. It exists for
	// the deprecated WithLogf plumbing; new code should consume the
	// JSON stream.
	Mirror func(format string, args ...any)
}

// DefaultRingSize bounds the recent-event ring when Options.RingSize
// is unset.
const DefaultRingSize = 256

// Logger emits wide events. All methods are safe for concurrent use,
// and all methods on a nil *Logger are no-ops, so optional telemetry
// call sites need no guards.
type Logger struct {
	mu       sync.Mutex
	w        io.Writer
	min      Level
	ring     []Event
	next     int
	count    int
	sample   map[string]int
	counters map[string]uint64
	now      func() time.Time
	mirror   func(format string, args ...any)
	dropped  uint64
}

// New creates a Logger (see Options).
func New(opts Options) *Logger {
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Logger{
		w:        opts.W,
		min:      opts.MinLevel,
		ring:     make([]Event, size),
		sample:   opts.Sample,
		counters: make(map[string]uint64),
		now:      now,
		mirror:   opts.Mirror,
	}
}

// Log emits one event with the given fields, stamped now.
func (l *Logger) Log(level Level, name string, fields ...Field) {
	if l == nil {
		return
	}
	l.Emit(Event{Level: level, Name: name}.With(fields...))
}

// Emit records one event: into the ring, onto the writer, and through
// the mirror (Warn+). A zero Time is stamped with the logger's clock.
// Events below MinLevel, and events thinned by sampling, are counted
// as dropped and otherwise ignored.
func (l *Logger) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if e.Level < l.min || !l.keepLocked(e.Name) {
		l.dropped++
		l.mu.Unlock()
		return
	}
	if e.Time.IsZero() {
		e.Time = l.now()
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	var line []byte
	if l.w != nil {
		line, _ = json.Marshal(e)
	}
	w, mirror := l.w, l.mirror
	l.mu.Unlock()

	// I/O happens outside the lock so a slow sink cannot stall the
	// ring (writers may interleave lines only at whole-line
	// granularity because each write is a single call).
	if w != nil && line != nil {
		_, _ = w.Write(append(line, '\n'))
	}
	if mirror != nil && e.Level >= Warn {
		mirror("%s", e.Text())
	}
}

// keepLocked applies counter-based sampling for one event name.
func (l *Logger) keepLocked(name string) bool {
	rate := l.sample[name]
	if rate < 2 {
		return true
	}
	n := l.counters[name]
	l.counters[name] = n + 1
	return n%uint64(rate) == 0
}

// Recent returns up to n recent events, newest first; n <= 0 returns
// everything held.
func (l *Logger) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.count {
		n = l.count
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Len reports how many events the ring holds.
func (l *Logger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Dropped reports how many events were discarded by level filtering
// or sampling since creation.
func (l *Logger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Text renders the event for humans — "event k=v k=v ..." — the form
// the mirror and the deprecated printf-style shims emit.
func (e Event) Text() string {
	var b bytes.Buffer
	b.WriteString(e.Name)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%v", f.Key, f.Value)
	}
	return b.String()
}

// Logf adapts the logger to the func(format, args...) shape older
// seams expect (ledger.Options.Logf): each formatted line becomes one
// event of the given name with the rendered text under "msg".
func (l *Logger) Logf(level Level, name string) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Log(level, name, F("msg", fmt.Sprintf(format, args...)))
	}
}
