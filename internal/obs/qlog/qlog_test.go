package qlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock(sec int) func() time.Time {
	n := 0
	return func() time.Time {
		n++
		return time.Date(2026, 8, 8, 12, 0, sec+n, 0, time.UTC)
	}
}

// TestEventSchemaGolden pins the canonical wire shape of the wide
// events the server emits. If this test breaks, downstream consumers
// (log pipelines, /debug/queries scrapers) break too — change the
// goldens only with a deliberate schema revision.
func TestEventSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{W: &buf, Now: func() time.Time {
		return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	}})

	l.Log(Info, "query",
		F("analyst", "alice"),
		F("dataset", "hotspot"),
		F("query", "count"),
		F("outcome", "ok"),
		F("epsilon", 0.1),
		F("charged_epsilon", 0.1),
		F("duration_ms", 12.5),
		F("idempotency", "miss"),
		F("ops", 3),
		F("parallel_ops", 1),
	)
	l.Log(Warn, "panic_recovered",
		F("site", "aggregation"),
		F("query", "count"),
		F("panic", "boom"),
	)
	l.Log(Error, "ledger_frozen",
		F("dataset", "hotspot"),
		F("error", "wal: torn record"),
	)

	want := strings.Join([]string{
		`{"time":"2026-08-08T12:00:00Z","level":"info","event":"query","analyst":"alice","dataset":"hotspot","query":"count","outcome":"ok","epsilon":0.1,"charged_epsilon":0.1,"duration_ms":12.5,"idempotency":"miss","ops":3,"parallel_ops":1}`,
		`{"time":"2026-08-08T12:00:00Z","level":"warn","event":"panic_recovered","site":"aggregation","query":"count","panic":"boom"}`,
		`{"time":"2026-08-08T12:00:00Z","level":"error","event":"ledger_frozen","dataset":"hotspot","error":"wal: torn record"}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch\n got: %s\nwant: %s", got, want)
	}

	// Every line must also be valid JSON that round-trips through
	// Event, preserving name, level and field order.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line not decodable: %v\n%s", err, line)
		}
		re, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(re) != line {
			t.Errorf("round trip changed encoding\n got: %s\nwant: %s", re, line)
		}
	}
}

func TestEventReservedKeysRenamed(t *testing.T) {
	e := Event{Name: "x"}.With(F("event", "spoof"), F("time", "spoof"))
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m["event"] != "x" {
		t.Errorf("event key overwritten: %v", m["event"])
	}
	if m["field_event"] != "spoof" || m["field_time"] != "spoof" {
		t.Errorf("colliding fields not renamed: %v", m)
	}
}

func TestEventUnencodableField(t *testing.T) {
	b, err := json.Marshal(Event{Name: "x"}.With(F("ch", make(chan int))))
	if err != nil {
		t.Fatalf("event with bad field must still encode: %v", err)
	}
	if !json.Valid(b) {
		t.Fatalf("invalid JSON: %s", b)
	}
	if !strings.Contains(string(b), "!ERR(") {
		t.Errorf("bad field not flagged: %s", b)
	}
}

func TestRingEviction(t *testing.T) {
	l := New(Options{RingSize: 4, Now: fixedClock(0)})
	for i := 0; i < 10; i++ {
		l.Log(Info, fmt.Sprintf("e%d", i))
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	got := l.Recent(0)
	want := []string{"e9", "e8", "e7", "e6"}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("Recent[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
	if sub := l.Recent(2); len(sub) != 2 || sub[0].Name != "e9" || sub[1].Name != "e8" {
		t.Errorf("Recent(2) = %+v", sub)
	}
}

// TestRingConcurrentWriters exercises ring eviction under many
// concurrent writers; run with -race. The ring must neither grow nor
// lose its newest-first ordering invariants.
func TestRingConcurrentWriters(t *testing.T) {
	l := New(Options{RingSize: 8})
	const writers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Log(Info, "evt", F("writer", w), F("i", i))
				if i%50 == 0 {
					l.Recent(4) // concurrent readers too
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	recent := l.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("Recent(0) returned %d events", len(recent))
	}
	for _, e := range recent {
		if e.Name != "evt" || len(e.Fields) != 2 {
			t.Errorf("torn event in ring: %+v", e)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	l := New(Options{RingSize: 64, Sample: map[string]int{"noisy": 3}})
	for i := 0; i < 9; i++ {
		l.Log(Info, "noisy", F("i", i))
		l.Log(Info, "rare")
	}
	var noisy, rare int
	for _, e := range l.Recent(0) {
		switch e.Name {
		case "noisy":
			noisy++
		case "rare":
			rare++
		}
	}
	if noisy != 3 {
		t.Errorf("kept %d noisy events, want 3 (1 in 3 of 9)", noisy)
	}
	if rare != 9 {
		t.Errorf("kept %d rare events, want all 9", rare)
	}
	if got := l.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
}

func TestMinLevel(t *testing.T) {
	l := New(Options{RingSize: 8, MinLevel: Warn})
	l.Log(Debug, "d")
	l.Log(Info, "i")
	l.Log(Warn, "w")
	l.Log(Error, "e")
	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := l.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Log(Info, "x", F("k", "v"))
	l.Emit(Event{Name: "y"})
	if l.Recent(5) != nil || l.Len() != 0 || l.Dropped() != 0 {
		t.Error("nil logger must act empty")
	}
}

func TestMirrorWarnOnly(t *testing.T) {
	var lines []string
	l := New(Options{RingSize: 8, Mirror: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	l.Log(Info, "quiet", F("k", "v"))
	l.Log(Warn, "loud", F("err", "boom"))
	if len(lines) != 1 {
		t.Fatalf("mirror got %d lines, want 1: %v", len(lines), lines)
	}
	if want := "loud err=boom"; lines[0] != want {
		t.Errorf("mirror line = %q, want %q", lines[0], want)
	}
}

func TestLogfAdapter(t *testing.T) {
	l := New(Options{RingSize: 8})
	f := l.Logf(Warn, "ledger_warning")
	f("snapshot %d stale", 7)
	ev := l.Recent(1)
	if len(ev) != 1 || ev[0].Name != "ledger_warning" || ev[0].Level != Warn {
		t.Fatalf("adapter event = %+v", ev)
	}
	if len(ev[0].Fields) != 1 || ev[0].Fields[0].Value != "snapshot 7 stale" {
		t.Errorf("adapter fields = %+v", ev[0].Fields)
	}
}

func TestLevelJSON(t *testing.T) {
	for _, lv := range []Level{Debug, Info, Warn, Error} {
		b, err := json.Marshal(lv)
		if err != nil {
			t.Fatal(err)
		}
		var back Level
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != lv {
			t.Errorf("level %v round-tripped to %v", lv, back)
		}
	}
	var bad Level
	if err := json.Unmarshal([]byte(`"loud"`), &bad); err == nil {
		t.Error("unknown level must fail to decode")
	}
}
