package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProfileOp is one transformation row of an execution profile: which
// operator ran, for how long, over how many records, and under which
// execution strategy. Rows appear in pipeline order (a query's
// operators report sequentially).
type ProfileOp struct {
	Op         string  `json:"op"`
	DurationNs int64   `json:"durationNs"`
	RecordsIn  float64 `json:"recordsIn"`
	RecordsOut float64 `json:"recordsOut"`
	Strategy   string  `json:"strategy"`          // "sequential", "parallel", or "fused"
	Workers    int     `json:"workers,omitempty"` // shard count when parallel
	Redacted   bool    `json:"redacted,omitempty"`
}

// ProfileAgg is one aggregation row: the terminal (or per-partition)
// noisy measurement, its outcome, the ε the analyst requested, and the
// ε actually charged against the ledger (post-scaling, 0 on refusal).
// It never carries the aggregate's value — noisy or raw.
type ProfileAgg struct {
	Agg              string  `json:"agg"`
	Outcome          string  `json:"outcome"`
	EpsilonRequested float64 `json:"epsilonRequested"`
	EpsilonCharged   float64 `json:"epsilonCharged"`
	DurationNs       int64   `json:"durationNs"`
}

// Profile is a query's execution profile: the operator tree flattened
// into report order, plus every aggregation attempt. It is the
// per-query artifact behind wide events, GET /debug/queries, and the
// X-DP-Explain response field.
//
// Privacy: durations, strategies, operator names, and ε amounts are
// operational metadata. Exact record counts are NOT — the row count
// flowing into an aggregation is the raw, pre-noise value of that
// aggregate (DESIGN.md §S31) — so profiles bound for analysts must
// pass through Redact first. Owner-side surfaces keep the counts
// under the same trust model as /audit.
type Profile struct {
	Ops      []ProfileOp  `json:"ops,omitempty"`
	Aggs     []ProfileAgg `json:"aggs,omitempty"`
	Redacted bool         `json:"redacted,omitempty"`
}

// TotalCharged sums the ε charged across all aggregation rows.
func (p *Profile) TotalCharged() float64 {
	if p == nil {
		return 0
	}
	var sum float64
	for _, a := range p.Aggs {
		sum += a.EpsilonCharged
	}
	return sum
}

// ParallelOps counts rows run by the parallel engine.
func (p *Profile) ParallelOps() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, op := range p.Ops {
		if op.Strategy == StrategyParallel {
			n++
		}
	}
	return n
}

// FusedOps counts rows run inside a fused streaming loop. Fused rows
// report zero duration — the single pass's wall time lands on the
// aggregation row that consumed the stream.
func (p *Profile) FusedOps() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, op := range p.Ops {
		if op.Strategy == StrategyFused {
			n++
		}
	}
	return n
}

// Redact returns a copy safe for analyst-facing responses: record
// counts are zeroed and rows are marked, because exact operator
// cardinalities are pre-noise aggregate values. Everything else —
// operators, durations, strategies, ε accounting — survives, which is
// what an analyst needs to understand a plan and its cost.
func (p *Profile) Redact() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{
		Ops:      make([]ProfileOp, len(p.Ops)),
		Aggs:     append([]ProfileAgg(nil), p.Aggs...),
		Redacted: true,
	}
	for i, op := range p.Ops {
		op.RecordsIn, op.RecordsOut, op.Redacted = 0, 0, true
		out.Ops[i] = op
	}
	return out
}

// WriteText pretty-prints the profile as an indented plan, the
// rendering dpquery -explain shows:
//
//	where          sequential        1204 → 117    841µs
//	groupby        parallel ×8        117 → 32     2.1ms
//	Σ  count       ok                ε 0.1 requested, 0.1 charged
func (p *Profile) WriteText(w io.Writer) {
	if p == nil {
		return
	}
	for i, op := range p.Ops {
		strat := op.Strategy
		if op.Workers >= 2 {
			strat = fmt.Sprintf("%s ×%d", op.Strategy, op.Workers)
		}
		rows := fmt.Sprintf("%.0f → %.0f", op.RecordsIn, op.RecordsOut)
		if op.Redacted {
			rows = "[redacted]"
		}
		fmt.Fprintf(w, "%2d. %-12s %-14s %-16s %s\n",
			i+1, op.Op, strat, rows,
			time.Duration(op.DurationNs).Round(time.Microsecond))
	}
	for _, a := range p.Aggs {
		fmt.Fprintf(w, " Σ  %-12s %-14s ε %g requested, %g charged  %s\n",
			a.Agg, a.Outcome, a.EpsilonRequested, a.EpsilonCharged,
			time.Duration(a.DurationNs).Round(time.Microsecond))
	}
	if p.Redacted {
		fmt.Fprintln(w, "    (record counts redacted: exact cardinalities are pre-noise values)")
	}
}

// ChargeMeter reports cumulative ε charged so far for the principal a
// profile is being built for — typically a closure over the dataset
// policy's SpentBy(analyst). The recorder reads it around each
// aggregation to derive the per-aggregation charge, which captures
// sensitivity scaling and dual-agent rollbacks that the requested ε
// does not reflect.
type ChargeMeter func() float64

// ProfileRecorder assembles a Profile from Recorder callbacks. Safe
// for concurrent use; a single pipeline reports sequentially, which is
// what makes the before/after meter reads around AggDone a correct
// per-aggregation attribution.
type ProfileRecorder struct {
	mu      sync.Mutex
	profile Profile
	meter   ChargeMeter
	charged float64 // meter reading after the last aggregation
}

// NewProfileRecorder creates a recorder. meter may be nil, in which
// case every EpsilonCharged is 0 — the shape used for budget-free
// local runs.
func NewProfileRecorder(meter ChargeMeter) *ProfileRecorder {
	r := &ProfileRecorder{meter: meter}
	if meter != nil {
		r.charged = meter()
	}
	return r
}

// OpDone implements Recorder.
func (r *ProfileRecorder) OpDone(op string, d time.Duration, in, out, workers int) {
	row := ProfileOp{
		Op:         op,
		DurationNs: int64(d),
		RecordsIn:  float64(in),
		RecordsOut: float64(out),
		Strategy:   StrategyName(workers),
	}
	if workers >= 2 {
		row.Workers = workers
	}
	r.mu.Lock()
	r.profile.Ops = append(r.profile.Ops, row)
	r.mu.Unlock()
}

// AggDone implements Recorder. The charged ε is the meter's movement
// since the previous aggregation: 0 for refusals and errors (the
// agent rolled back or never applied), the post-scaling charge for
// successes.
func (r *ProfileRecorder) AggDone(agg, outcome string, epsilon float64, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var charged float64
	if r.meter != nil {
		now := r.meter()
		charged = now - r.charged
		r.charged = now
		if charged < 0 {
			charged = 0
		}
	}
	r.profile.Aggs = append(r.profile.Aggs, ProfileAgg{
		Agg:              agg,
		Outcome:          outcome,
		EpsilonRequested: epsilon,
		EpsilonCharged:   charged,
		DurationNs:       int64(d),
	})
}

// Profile returns a copy of the profile assembled so far.
func (r *ProfileRecorder) Profile() *Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Profile{
		Ops:  append([]ProfileOp(nil), r.profile.Ops...),
		Aggs: append([]ProfileAgg(nil), r.profile.Aggs...),
	}
}
