package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "endpoint", "/query")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if again := reg.Counter("requests_total", "endpoint", "/query"); again != c {
		t.Fatal("same name+labels should return the same counter")
	}
	if other := reg.Counter("requests_total", "endpoint", "/audit"); other == c {
		t.Fatal("different labels should return a different counter")
	}

	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}

	reg.GaugeFunc("live", func() float64 { return 42 })
	snap := reg.Snapshot()
	found := false
	for _, p := range snap.Gauges {
		if p.Name == "live" && p.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gauge func missing from snapshot: %+v", snap.Gauges)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", h.Sum())
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hp := snap.Histograms[0]
	// Cumulative: ≤0.1 holds 2 (0.05 and the boundary 0.1), ≤1 holds
	// 3, ≤10 holds 4, +Inf holds all 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if hp.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, hp.Buckets[i], w, hp.Buckets)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dp_agg_total", "agg", "count", "outcome", "ok").Add(4)
	reg.Counter("dp_agg_total", "agg", "count", "outcome", "refused").Inc()
	reg.Gauge("dp_budget_spent", "dataset", "hotspot").Set(1.5)
	reg.GaugeFunc("dp_budget_remaining", func() float64 { return math.Inf(1) }, "dataset", "hotspot")
	reg.Histogram("req_seconds", []float64{0.5}, "endpoint", "/query").Observe(0.25)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dp_agg_total counter",
		`dp_agg_total{agg="count",outcome="ok"} 4`,
		`dp_agg_total{agg="count",outcome="refused"} 1`,
		"# TYPE dp_budget_spent gauge",
		`dp_budget_spent{dataset="hotspot"} 1.5`,
		`dp_budget_remaining{dataset="hotspot"} +Inf`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="/query",le="0.5"} 1`,
		`req_seconds_bucket{endpoint="/query",le="+Inf"} 1`,
		`req_seconds_sum{endpoint="/query"} 0.25`,
		`req_seconds_count{endpoint="/query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	// A family's TYPE line must appear exactly once.
	if strings.Count(out, "# TYPE dp_agg_total counter") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "k", `odd"value`+"\n").Inc()
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, b.String())
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 1 {
		t.Fatalf("bad counters: %+v", snap.Counters)
	}
	if snap.Counters[0].Labels["k"] == "" {
		t.Fatalf("label lost: %+v", snap.Counters[0].Labels)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("c_total", "g", itoa(g%2)).Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h", []float64{1, 2}).Observe(float64(i % 3))
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Snapshot()
	total := 0.0
	for _, c := range snap.Counters {
		total += c.Value
	}
	if total != 8000 {
		t.Fatalf("counter total = %v, want 8000", total)
	}
	if snap.Histograms[0].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", snap.Histograms[0].Count)
	}
}

func TestMetricsRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	rec.OpDone("where", 1e6, 100, 40, 0)
	rec.OpDone("where", 2e6, 40, 40, 0)
	rec.AggDone("count", OutcomeOK, 0.1, 5e5)
	rec.AggDone("count", OutcomeRefused, 0.1, 0)

	if got := reg.Counter("dp_op_records_in_total", "op", "where").Value(); got != 140 {
		t.Fatalf("records in = %v, want 140", got)
	}
	if got := reg.Counter("dp_agg_total", "agg", "count", "outcome", "ok").Value(); got != 1 {
		t.Fatalf("ok aggs = %v, want 1", got)
	}
	if got := reg.Counter("dp_agg_total", "agg", "count", "outcome", "refused").Value(); got != 1 {
		t.Fatalf("refused aggs = %v, want 1", got)
	}
	// Refusals must not count as spend.
	if got := reg.Counter("dp_budget_spend_total").Value(); got != 0.1 {
		t.Fatalf("spend = %v, want 0.1", got)
	}
	h := reg.Histogram("dp_op_duration_seconds", DurationBuckets(), "op", "where")
	if h.Count() != 2 {
		t.Fatalf("op duration observations = %d, want 2", h.Count())
	}
}

func TestMultiRecorder(t *testing.T) {
	reg1, reg2 := NewRegistry(), NewRegistry()
	rec := Multi(nil, NewMetricsRecorder(reg1), NewMetricsRecorder(reg2))
	rec.OpDone("select", 1000, 5, 5, 8)
	for _, reg := range []*Registry{reg1, reg2} {
		if got := reg.Counter("dp_op_records_in_total", "op", "select").Value(); got != 5 {
			t.Fatalf("fan-out lost a recorder: got %v", got)
		}
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should collapse to nil")
	}
	single := NewMetricsRecorder(reg1)
	if Multi(single) != Recorder(single) {
		t.Fatal("Multi of one should return it unchanged")
	}
}

// TestLabelEscapingRoundTrip pins the Prometheus text exposition
// escaping rules — backslash, double-quote, and line feed escaped
// exactly once — and that labelMap recovers the original value.
func TestLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`back\slash`,
		`quo"te`,
		"new\nline",
		`a\nb`,         // escaped backslash then literal "nb" — not a newline
		`\\`,           // two backslashes
		`\"`,           // backslash then quote
		"mix\\\"\nend", // all three specials
		`trailing\`,    // ends on a backslash
	}
	for _, v := range values {
		reg := NewRegistry()
		reg.Counter("m_total", "k", v).Inc()

		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		line := ""
		for _, l := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(l, "m_total{") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("no sample line for %q:\n%s", v, b.String())
		}
		// The exposition value must contain no raw quote, backslash, or
		// newline inside the quoted label (only escape sequences).
		inner := strings.TrimSuffix(strings.TrimPrefix(line, `m_total{k="`), `"} 1`)
		for i := 0; i < len(inner); i++ {
			switch inner[i] {
			case '\n':
				t.Errorf("raw newline in exposition of %q: %q", v, inner)
			case '"':
				t.Errorf("unescaped quote in exposition of %q: %q", v, inner)
			case '\\':
				i++ // escape sequence: consumes the next byte
				if i >= len(inner) || (inner[i] != '\\' && inner[i] != '"' && inner[i] != 'n') {
					t.Errorf("bad escape in exposition of %q: %q", v, inner)
				}
			}
		}
		// And the canonical key must decode back to the original value.
		snap := reg.Snapshot()
		if len(snap.Counters) != 1 {
			t.Fatalf("counters = %+v", snap.Counters)
		}
		if got := snap.Counters[0].Labels["k"]; got != v {
			t.Errorf("round trip: got %q, want %q (line %q)", got, v, line)
		}
	}
}

func TestEscapeLabelDistinctValues(t *testing.T) {
	// `a\nb` (backslash-n-b) and "a\nb" (newline) must not collide into
	// one metric instance after escaping.
	reg := NewRegistry()
	reg.Counter("m_total", "k", `a\nb`).Inc()
	reg.Counter("m_total", "k", "a\nb").Inc()
	if got := len(reg.Snapshot().Counters); got != 2 {
		t.Fatalf("distinct values collided: %d instances", got)
	}
}
