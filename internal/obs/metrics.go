// Package obs is the system's self-instrumentation layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) with JSON and Prometheus-text exposition, a lightweight
// span abstraction for per-query traces, and the Recorder interface
// the DP engine reports through.
//
// The paper's deployment model (§7) has a data owner mediating analyst
// queries against a shared privacy budget; operating that service
// requires watching who is spending ε, which operators dominate query
// latency, and whether the process is healthy. Everything here is
// stdlib-only and safe for concurrent use; the engine's default
// recorder is nil/no-op, so library users who never ask for telemetry
// pay nothing on the hot paths.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 cell (CAS on the bit pattern).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by v; negative deltas are ignored so the
// counter stays monotone.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.Add(v)
}

// Value reports the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can move both ways.
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative "le"
// semantics on export, like Prometheus). Bounds are upper edges in
// ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DurationBuckets are the default latency bounds in seconds, spanning
// 100µs..10s: wide enough for both sub-millisecond counts and
// full-matrix extractions.
func DurationBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
		2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// EpsilonBuckets are the default bucket bounds for per-query ε
// histograms, spanning the 0.01..10 range the paper's analyses use.
func EpsilonBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// metricKey identifies one metric instance: a base name plus a
// canonical (sorted) label rendering.
type metricKey struct {
	name   string
	labels string // `k="v",k2="v2"` sorted by key, "" if none
}

func makeKey(name string, labels []string) metricKey {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	if len(labels) == 0 {
		return metricKey{name: name}
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+`="`+escapeLabel(labels[i+1])+`"`)
	}
	sort.Strings(pairs)
	return metricKey{name: name, labels: strings.Join(pairs, ",")}
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format (version 0.0.4): backslash, double-quote, and line feed are
// the only characters escaped, each exactly once.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func (k metricKey) String() string {
	if k.labels == "" {
		return k.name
	}
	return k.name + "{" + k.labels + "}"
}

// labelMap re-parses the canonical label string for JSON snapshots.
func (k metricKey) labelMap() map[string]string {
	if k.labels == "" {
		return nil
	}
	out := make(map[string]string)
	for _, pair := range splitLabelPairs(k.labels) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		val := pair[eq+1:]
		if s, err := unquoteLabel(val); err == nil {
			val = s
		}
		out[pair[:eq]] = val
	}
	return out
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// unquoteLabel reverses escapeLabel in a single pass, so values like
// `a\nb` (an escaped backslash followed by "nb") round-trip exactly —
// sequential ReplaceAll would corrupt them.
func unquoteLabel(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return s, fmt.Errorf("obs: not quoted")
	}
	s = s[1 : len(s)-1]
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("obs: trailing backslash in label value")
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("obs: invalid escape \\%c in label value", s[i])
		}
	}
	return b.String(), nil
}

// Registry holds a process- or server-scoped set of metrics. Lookups
// create on first use, so call sites just name what they record:
//
//	reg.Counter("dpserver_requests_total", "endpoint", "/query").Inc()
//
// Labels are alternating key/value strings; the same name+labels
// always returns the same instance.
type Registry struct {
	mu         sync.RWMutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	gaugeFuncs map[metricKey]func() float64
	hists      map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		gaugeFuncs: make(map[metricKey]func() float64),
		hists:      make(map[metricKey]*Histogram),
	}
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := makeKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := makeKey(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[k]; !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// GaugeFunc registers a live gauge whose value is read at snapshot
// time — the natural shape for budget totals that already live behind
// a policy's mutex. Re-registering the same name+labels replaces f.
func (r *Registry) GaugeFunc(name string, f func() float64, labels ...string) {
	k := makeKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[k] = f
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket bounds if needed (bounds are ignored on later
// lookups of an existing histogram).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	k := makeKey(name, labels)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[k]; !ok {
		if !sort.Float64sAreSorted(bounds) {
			panic("obs: histogram bounds must be ascending")
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[k] = h
	}
	return h
}

// MetricPoint is one scalar metric in a Snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramPoint is one histogram in a Snapshot. Bucket counts are
// cumulative (Prometheus "le" semantics); the final count covers +Inf.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Bounds  []float64         `json:"bounds"`
	Buckets []uint64          `json:"buckets"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric, ordered by name
// for stable output.
type Snapshot struct {
	Counters   []MetricPoint    `json:"counters"`
	Gauges     []MetricPoint    `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counterKeys := sortedKeys(r.counters)
	gaugeKeys := sortedKeys(r.gauges)
	funcKeys := sortedKeys(r.gaugeFuncs)
	histKeys := sortedKeys(r.hists)

	var snap Snapshot
	for _, k := range counterKeys {
		snap.Counters = append(snap.Counters, MetricPoint{
			Name: k.name, Labels: k.labelMap(), Value: r.counters[k].Value(),
		})
	}
	for _, k := range gaugeKeys {
		snap.Gauges = append(snap.Gauges, MetricPoint{
			Name: k.name, Labels: k.labelMap(), Value: r.gauges[k].Value(),
		})
	}
	funcs := make([]func() float64, len(funcKeys))
	for i, k := range funcKeys {
		funcs[i] = r.gaugeFuncs[k]
	}
	for _, k := range histKeys {
		h := r.hists[k]
		hp := HistogramPoint{
			Name: k.name, Labels: k.labelMap(),
			Bounds: append([]float64(nil), h.bounds...),
			Count:  h.Count(), Sum: h.Sum(),
		}
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			hp.Buckets = append(hp.Buckets, cum)
		}
		snap.Histograms = append(snap.Histograms, hp)
	}
	r.mu.RUnlock()

	// Live gauges are read outside the registry lock: their closures
	// may take other locks (budget policies) and must not deadlock
	// against concurrent registrations.
	for i, k := range funcKeys {
		snap.Gauges = append(snap.Gauges, MetricPoint{
			Name: k.name, Labels: k.labelMap(), Value: funcs[i](),
		})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool {
		if snap.Gauges[i].Name != snap.Gauges[j].Name {
			return snap.Gauges[i].Name < snap.Gauges[j].Name
		}
		return fmt.Sprint(snap.Gauges[i].Labels) < fmt.Sprint(snap.Gauges[j].Labels)
	})
	return snap
}

func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	return keys
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric
// family, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counterKeys := sortedKeys(r.counters)
	gaugeKeys := sortedKeys(r.gauges)
	funcKeys := sortedKeys(r.gaugeFuncs)
	histKeys := sortedKeys(r.hists)
	counters := make([]float64, len(counterKeys))
	for i, k := range counterKeys {
		counters[i] = r.counters[k].Value()
	}
	gauges := make([]float64, len(gaugeKeys))
	for i, k := range gaugeKeys {
		gauges[i] = r.gauges[k].Value()
	}
	funcs := make([]func() float64, len(funcKeys))
	for i, k := range funcKeys {
		funcs[i] = r.gaugeFuncs[k]
	}
	type histCopy struct {
		bounds  []float64
		buckets []uint64 // cumulative
		count   uint64
		sum     float64
	}
	hists := make([]histCopy, len(histKeys))
	for i, k := range histKeys {
		h := r.hists[k]
		hc := histCopy{bounds: h.bounds, count: h.Count(), sum: h.Sum()}
		cum := uint64(0)
		for j := range h.counts {
			cum += h.counts[j].Load()
			hc.buckets = append(hc.buckets, cum)
		}
		hists[i] = hc
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeFamily := func(keys []metricKey, typ string, value func(int) float64) {
		lastName := ""
		for i, k := range keys {
			if k.name != lastName {
				fmt.Fprintf(&b, "# TYPE %s %s\n", k.name, typ)
				lastName = k.name
			}
			fmt.Fprintf(&b, "%s %s\n", k.String(), formatValue(value(i)))
		}
	}
	writeFamily(counterKeys, "counter", func(i int) float64 { return counters[i] })
	writeFamily(gaugeKeys, "gauge", func(i int) float64 { return gauges[i] })
	// Live gauges read outside the lock, same reason as Snapshot.
	lastName := ""
	for i, k := range funcKeys {
		if k.name != lastName {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", k.name)
			lastName = k.name
		}
		fmt.Fprintf(&b, "%s %s\n", k.String(), formatValue(funcs[i]()))
	}
	lastName = ""
	for i, k := range histKeys {
		if k.name != lastName {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", k.name)
			lastName = k.name
		}
		hc := hists[i]
		for j, bound := range hc.bounds {
			fmt.Fprintf(&b, "%s %d\n", bucketKey(k, formatValue(bound)), hc.buckets[j])
		}
		fmt.Fprintf(&b, "%s %d\n", bucketKey(k, "+Inf"), hc.buckets[len(hc.buckets)-1])
		fmt.Fprintf(&b, "%s_sum%s %s\n", k.name, labelSuffix(k), formatValue(hc.sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", k.name, labelSuffix(k), hc.count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bucketKey(k metricKey, le string) string {
	if k.labels == "" {
		return fmt.Sprintf(`%s_bucket{le=%q}`, k.name, le)
	}
	return fmt.Sprintf(`%s_bucket{%s,le=%q}`, k.name, k.labels, le)
}

func labelSuffix(k metricKey) string {
	if k.labels == "" {
		return ""
	}
	return "{" + k.labels + "}"
}

// formatValue renders a float the way Prometheus expects (+Inf/-Inf
// spelled out, no exponent for integral values).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
