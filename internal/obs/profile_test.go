package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProfileRecorderAssemblesProfile(t *testing.T) {
	spent := 0.0
	r := NewProfileRecorder(func() float64 { return spent })

	r.OpDone("where", 2*time.Millisecond, 1000, 400, 0)
	r.OpDone("groupby", time.Millisecond, 400, 40, 8)
	spent = 0.25 // dual-agent charged more than requested (scaling)
	r.AggDone("count", OutcomeOK, 0.1, 500*time.Microsecond)
	spent = 0.25 // refusal: meter unchanged
	r.AggDone("count", OutcomeRefused, 5, 10*time.Microsecond)

	p := r.Profile()
	if len(p.Ops) != 2 || len(p.Aggs) != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Ops[0].Strategy != StrategySequential || p.Ops[0].Workers != 0 {
		t.Errorf("op 0 strategy = %+v", p.Ops[0])
	}
	if p.Ops[1].Strategy != StrategyParallel || p.Ops[1].Workers != 8 {
		t.Errorf("op 1 strategy = %+v", p.Ops[1])
	}
	if p.Ops[1].RecordsIn != 400 || p.Ops[1].RecordsOut != 40 {
		t.Errorf("op 1 rows = %+v", p.Ops[1])
	}
	if p.Aggs[0].EpsilonRequested != 0.1 || p.Aggs[0].EpsilonCharged != 0.25 {
		t.Errorf("agg 0 = %+v", p.Aggs[0])
	}
	if p.Aggs[1].EpsilonCharged != 0 || p.Aggs[1].Outcome != OutcomeRefused {
		t.Errorf("agg 1 = %+v", p.Aggs[1])
	}
	if got := p.TotalCharged(); got != 0.25 {
		t.Errorf("TotalCharged = %v", got)
	}
	if got := p.ParallelOps(); got != 1 {
		t.Errorf("ParallelOps = %v", got)
	}
}

func TestProfileRecorderNilMeter(t *testing.T) {
	r := NewProfileRecorder(nil)
	r.AggDone("count", OutcomeOK, 0.1, time.Microsecond)
	if got := r.Profile().Aggs[0].EpsilonCharged; got != 0 {
		t.Errorf("charged without meter = %v", got)
	}
}

// TestProfileRedact pins the §S31 invariant: an analyst-facing profile
// must not carry exact record counts (they are pre-noise aggregate
// values), while plan shape, timings, and ε accounting survive.
func TestProfileRedact(t *testing.T) {
	r := NewProfileRecorder(nil)
	r.OpDone("where", time.Millisecond, 12345, 678, 4)
	r.AggDone("count", OutcomeOK, 0.1, time.Microsecond)
	p := r.Profile()

	red := p.Redact()
	if !red.Redacted || !red.Ops[0].Redacted {
		t.Fatal("redacted copy not marked")
	}
	if red.Ops[0].RecordsIn != 0 || red.Ops[0].RecordsOut != 0 {
		t.Fatalf("record counts leaked: %+v", red.Ops[0])
	}
	if red.Ops[0].Op != "where" || red.Ops[0].Workers != 4 || red.Ops[0].DurationNs == 0 {
		t.Fatalf("plan shape lost: %+v", red.Ops[0])
	}
	if len(red.Aggs) != 1 || red.Aggs[0].EpsilonRequested != 0.1 {
		t.Fatalf("agg rows lost: %+v", red.Aggs)
	}
	// The original is untouched (owner-side surfaces keep counts).
	if p.Ops[0].RecordsIn != 12345 || p.Redacted {
		t.Fatalf("original mutated: %+v", p.Ops[0])
	}
	if (*Profile)(nil).Redact() != nil {
		t.Error("nil profile should redact to nil")
	}
}

func TestProfileWriteText(t *testing.T) {
	r := NewProfileRecorder(nil)
	r.OpDone("where", time.Millisecond, 100, 40, 0)
	r.OpDone("groupby", time.Millisecond, 40, 8, 4)
	r.AggDone("count", OutcomeOK, 0.1, time.Microsecond)
	p := r.Profile()

	var b strings.Builder
	p.WriteText(&b)
	text := b.String()
	for _, want := range []string{"where", "groupby", "parallel ×4", "100 → 40", "ε 0.1 requested"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan text missing %q:\n%s", want, text)
		}
	}

	b.Reset()
	p.Redact().WriteText(&b)
	if strings.Contains(b.String(), "100") {
		t.Errorf("redacted plan leaked counts:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "[redacted]") {
		t.Errorf("redacted plan not labeled:\n%s", b.String())
	}
}
