package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	c1 := root.StartChild("where")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.StartChild("groupby")
	c2.SetLabel("records_in", "10")
	c2.End()
	root.End()

	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if c1.Parent() != root || c2.Parent() != root {
		t.Fatal("parent links broken")
	}
	if c1.Duration < time.Millisecond {
		t.Fatalf("c1 duration = %v, want >= 1ms", c1.Duration)
	}
	for _, s := range []*Span{root, c1, c2} {
		if s.Duration <= 0 {
			t.Fatalf("span %q has non-positive duration %v", s.Name, s.Duration)
		}
	}
	if c2.Labels["records_in"] != "10" {
		t.Fatalf("labels = %v", c2.Labels)
	}

	// The tree must serialize without choking on the private parent
	// pointer, and durations must come out as nanoseconds.
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name       string `json:"name"`
			DurationNs int64  `json:"durationNs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "query" || len(decoded.Children) != 2 {
		t.Fatalf("bad JSON tree: %s", b)
	}
	if decoded.Children[0].DurationNs <= 0 {
		t.Fatalf("child duration not serialized: %s", b)
	}
}

func TestTraceRecorderBuildsChildren(t *testing.T) {
	tr := NewTraceRecorder("query:hosts")
	tr.SetLabel("analyst", "alice")
	tr.OpDone("where", 2*time.Millisecond, 100, 60, 0)
	tr.OpDone("groupby", time.Millisecond, 60, 12, 4)
	tr.AggDone("count", OutcomeOK, 0.1, 500*time.Microsecond)
	root := tr.Finish()

	if root.Name != "query:hosts" || root.Labels["analyst"] != "alice" {
		t.Fatalf("root = %+v", root)
	}
	names := []string{"where", "groupby", "aggregate:count"}
	if len(root.Children) != len(names) {
		t.Fatalf("children = %d, want %d", len(root.Children), len(names))
	}
	for i, want := range names {
		c := root.Children[i]
		if c.Name != want {
			t.Fatalf("child %d = %q, want %q", i, c.Name, want)
		}
		if c.Duration <= 0 {
			t.Fatalf("child %q duration = %v, want > 0", c.Name, c.Duration)
		}
	}
	if root.Children[0].Labels["records_out"] != "60" {
		t.Fatalf("op labels = %v", root.Children[0].Labels)
	}
	if root.Children[2].Labels["outcome"] != OutcomeOK {
		t.Fatalf("agg labels = %v", root.Children[2].Labels)
	}
	// Zero-duration callbacks are still visible spans.
	tr2 := NewTraceRecorder("q")
	tr2.OpDone("select", 0, 1, 1, 0)
	if got := tr2.Finish().Children[0].Duration; got <= 0 {
		t.Fatalf("zero-duration op span = %v, want > 0", got)
	}
	// Post-Finish callbacks are dropped, not appended.
	tr.OpDone("late", time.Millisecond, 1, 1, 0)
	if len(tr.Finish().Children) != len(names) {
		t.Fatal("callback after Finish should be dropped")
	}
}

func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 0; i < 5; i++ {
		s := NewSpan("q" + itoa(i))
		s.End()
		b.Add(s)
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	got := b.Snapshot()
	want := []string{"q4", "q3", "q2"} // newest first
	for i, w := range want {
		if got[i].Name != w {
			t.Fatalf("snapshot[%d] = %q, want %q", i, got[i].Name, w)
		}
	}
	b.Add(nil) // ignored
	if b.Len() != 3 {
		t.Fatal("nil add should be ignored")
	}
}

func TestTraceBufferConcurrent(t *testing.T) {
	b := NewTraceBuffer(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := NewSpan("s")
				s.End()
				b.Add(s)
				if i%50 == 0 {
					b.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if b.Len() != 8 {
		t.Fatalf("len = %d, want 8", b.Len())
	}
	for _, s := range b.Snapshot() {
		if s == nil {
			t.Fatal("ring leaked a nil slot")
		}
	}
}
