package api

import "encoding/json"

// Standing-query wire types: the /v1/standing/{dataset} family.

// StandingWindow is a registration's window specification. Exactly one
// of Width (record-sequence window, with optional Stride for sliding)
// or EveryMs (wall-clock tumbling window, resolved to record-sequence
// watermarks at ingest batch apply) must be set.
type StandingWindow struct {
	// Width is the window width in records; window i covers records
	// [base+i·stride, base+i·stride+width) of the dataset's monotonic
	// record watermark, where base is the watermark at registration.
	Width uint64 `json:"width,omitempty"`
	// Stride is the sliding step in records; 0 or == Width is a
	// tumbling window. Overlapping windows each charge the full
	// per-window epsilon (releases compose sequentially).
	Stride uint64 `json:"stride,omitempty"`
	// EveryMs is the wall-clock period in milliseconds; a window
	// closes at the first ingest batch apply at least EveryMs after
	// the previous close and covers the records since then.
	EveryMs int64 `json:"everyMs,omitempty"`
}

// StandingRequest registers a standing query against a dataset. The
// query-parameter fields (Filter, MinBytes, BucketStep, Fraction,
// SketchEps, Key) mirror QueryRequest and apply to every window
// execution.
type StandingRequest struct {
	Analyst string `json:"analyst"`
	// Query is the query kind, from GET /v1/kinds (packet kinds).
	Query string `json:"query"`
	// Epsilon is charged per fired window.
	Epsilon float64 `json:"epsilon"`
	// Reservation is the total standing budget: once the sum of
	// window charges would exceed it, the query stops (status
	// "exhausted") without charging the refused window.
	Reservation float64        `json:"reservation"`
	Window      StandingWindow `json:"window"`
	// ID optionally names the registration (1-64 chars of
	// [A-Za-z0-9._-]); empty mints "sq-N".
	ID string `json:"id,omitempty"`

	Filter     *Filter `json:"filter,omitempty"`
	MinBytes   int     `json:"minBytes,omitempty"`
	BucketStep int64   `json:"bucketStep,omitempty"`
	Fraction   float64 `json:"fraction,omitempty"`
	SketchEps  float64 `json:"sketchEps,omitempty"`
	Key        string  `json:"key,omitempty"`

	// IdempotencyKey makes the registration safely retryable: a retry
	// with the same key replays the original response instead of
	// registering twice.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// StandingInfo describes one registration and its live schedule state.
type StandingInfo struct {
	ID      string         `json:"id"`
	Dataset string         `json:"dataset"`
	Analyst string         `json:"analyst"`
	Query   string         `json:"query"`
	Epsilon float64        `json:"epsilon"`
	Window  StandingWindow `json:"window"`
	// Base is the dataset record watermark at registration; records
	// ingested before it are never windowed.
	Base        uint64  `json:"base"`
	Reservation float64 `json:"reservation"`
	// Spent is the cumulative ε charged by this query's fired windows.
	Spent float64 `json:"spent"`
	// NextWindow is the index of the next window to fire.
	NextWindow uint64 `json:"nextWindow"`
	// Status is "active", "exhausted", or "canceled".
	Status string `json:"status"`
	// Results is how many window results the bounded ring holds.
	Results int `json:"results"`
}

// StandingList is the GET /v1/standing/{dataset} response.
type StandingList struct {
	Dataset string         `json:"dataset"`
	Queries []StandingInfo `json:"queries"`
}

// StandingResult is one fired window's outcome, in the shape of a
// QueryResponse plus window coordinates. For outcome "ok" the noisy
// result fields are populated; "exhausted" and "error" windows carry
// Error and zero Charged ε ("error" windows still charge — the noisy
// computation may have partially run; see Charged).
type StandingResult struct {
	ID string `json:"id"`
	// Window is the fired window's index; Start/End its record-
	// sequence bounds [Start, End) on the dataset watermark.
	Window uint64 `json:"window"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	// Outcome is "ok", "exhausted", or "error".
	Outcome string `json:"outcome"`
	// Charged is the ε actually charged for this window (0 for a
	// refused "exhausted" window).
	Charged float64 `json:"charged"`
	// Spent is the query's cumulative standing spend after this window.
	Spent float64 `json:"spent"`
	// Time is the fire wall time in Unix nanoseconds.
	Time int64 `json:"time,omitempty"`

	Values []float64 `json:"values,omitempty"`
	// Buckets accompanies CDF kinds: the upper edge of each value.
	Buckets  []int64 `json:"buckets,omitempty"`
	NoiseStd float64 `json:"noiseStd,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// StandingResults is the GET /v1/standing/{dataset}/{id}/results
// response. Results are oldest-first, filtered to window index >= the
// "after" query parameter; with ?waitMs= the server long-polls until a
// new window commits or the wait expires. Each element is one
// StandingResult, carried as the exact bytes the window journaled —
// replays (including across server restarts) are byte-identical.
type StandingResults struct {
	Dataset string `json:"dataset"`
	ID      string `json:"id"`
	Status  string `json:"status"`
	// NextWindow is the poll cursor: pass it back as ?after= to see
	// only windows this response did not include.
	NextWindow uint64            `json:"nextWindow"`
	Results    []json.RawMessage `json:"results"`
}

// Decoded unmarshals the raw results into StandingResult values.
func (r *StandingResults) Decoded() ([]StandingResult, error) {
	out := make([]StandingResult, 0, len(r.Results))
	for _, raw := range r.Results {
		var sr StandingResult
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

// StandingRegistered is the POST /v1/standing/{dataset} response.
type StandingRegistered struct {
	Info StandingInfo `json:"info"`
}

// StandingCanceled is the DELETE /v1/standing/{dataset}/{id} response.
type StandingCanceled struct {
	Info StandingInfo `json:"info"`
	// AlreadyCanceled reports an idempotent repeat cancel.
	AlreadyCanceled bool `json:"alreadyCanceled,omitempty"`
}
