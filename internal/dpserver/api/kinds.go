package api

import "strings"

// QueryKind describes one entry of the query-kind registry: the
// vocabulary POST /v1/query (and the kind-specific endpoints) accept.
// The registry exists so the server's dispatch, the client's helpers,
// and load tools like cmd/dploadgen agree on one list instead of each
// hard-coding its own.
type QueryKind struct {
	// Name is the wire value of the "query" field.
	Name string
	// Dataset is the dataset kind the query runs over: "packet",
	// "link", or "hop".
	Dataset string
	// Endpoint is the canonical /v1 path serving the kind.
	Endpoint string
	// NeedsKey marks kinds requiring the "key" request field.
	NeedsKey bool
	// Description is one line for tooling and error messages.
	Description string
}

// queryKinds is the closed registry. Order is the documentation order;
// packet kinds first.
var queryKinds = []QueryKind{
	{Name: "count", Dataset: "packet", Endpoint: "/v1/query", Description: "noisy packet count"},
	{Name: "hosts", Dataset: "packet", Endpoint: "/v1/query", Description: "noisy count of sources sending > minBytes (paper §2.3)"},
	{Name: "lencdf", Dataset: "packet", Endpoint: "/v1/query", Description: "packet-length CDF"},
	{Name: "portcdf", Dataset: "packet", Endpoint: "/v1/query", Description: "destination-port CDF"},
	{Name: "medianlen", Dataset: "packet", Endpoint: "/v1/query", Description: "noisy median packet length"},
	{Name: "rttcdf", Dataset: "packet", Endpoint: "/v1/query", Description: "handshake-RTT CDF"},
	{Name: "losscdf", Dataset: "packet", Endpoint: "/v1/query", Description: "per-flow retransmission-rate CDF"},
	{Name: "lenquantile", Dataset: "packet", Endpoint: "/v1/query", Description: "packet-length quantile from a mergeable rank sketch (fused path)"},
	{Name: "srcfreq", Dataset: "packet", Endpoint: "/v1/query", NeedsKey: true, Description: "per-source packet frequency from a count-min sketch (fused path)"},
	{Name: "distinctsrc", Dataset: "packet", Endpoint: "/v1/query", Description: "distinct sources from HLL-style registers (fused path)"},
	{Name: "loadmatrix", Dataset: "link", Endpoint: "/v1/query/loadmatrix", Description: "noisy link×bin count matrix at one ε"},
	{Name: "monitoravgs", Dataset: "hop", Endpoint: "/v1/query/monitoravgs", Description: "per-monitor noisy average hop counts at one ε"},
}

// QueryKinds returns the registry (a copy; callers may reorder).
func QueryKinds() []QueryKind {
	out := make([]QueryKind, len(queryKinds))
	copy(out, queryKinds)
	return out
}

// KnownQueryKind reports whether name is a registered kind.
func KnownQueryKind(name string) bool {
	for _, k := range queryKinds {
		if k.Name == name {
			return true
		}
	}
	return false
}

// PacketQueryKinds lists the kind names POST /v1/query dispatches on,
// in registry order.
func PacketQueryKinds() []string {
	var names []string
	for _, k := range queryKinds {
		if k.Dataset == "packet" {
			names = append(names, k.Name)
		}
	}
	return names
}

// PacketQueryKindList renders the packet kinds as "a, b, c" for error
// messages.
func PacketQueryKindList() string {
	return strings.Join(PacketQueryKinds(), ", ")
}
