package api

// Ingest wire contract: POST /v1/ingest/{dataset} appends one batch
// of records to a live dataset. The body is a batch in one of two
// encodings, named by Content-Type:
//
//	application/x-ndjson   one JSON record per line (see
//	                       internal/trace's *JSON shapes; packets for
//	                       packet datasets, link samples for link
//	                       datasets, hop records for hop datasets)
//	application/x-dptr     the DPTR binary container (same bytes as
//	                       the on-disk trace files), count-prefixed
//
// A batch either applies atomically or not at all: queries never see
// a half-applied batch, and a batch carrying a (source, seq) identity
// applies at most once — retries replay the first response
// byte-identically (the PR3 idempotency machinery, reused).
//
// The server sheds with 429 + Retry-After when the ingest pipeline's
// watermarks (bytes or batches in flight) are exceeded, 413 when one
// batch exceeds the per-batch byte cap, and 503 while draining or
// while a frozen/degraded ledger has the spend path fail closed (no
// state may change when ε-accounting cannot be journaled; the read
// path keeps serving).

// Ingest content types.
const (
	// ContentTypeNDJSON is newline-delimited JSON records.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeDPTR is the binary trace container (trace.Write*).
	ContentTypeDPTR = "application/x-dptr"
)

// Ingest headers.
const (
	// BatchSourceHeader names the sending agent. Together with
	// BatchSeqHeader it forms the batch's at-most-once identity,
	// scoped to the dataset.
	BatchSourceHeader = "X-DP-Batch-Source"
	// BatchSeqHeader is the sender's per-source batch sequence number
	// (an opaque token on the wire; clients send monotonic integers).
	// Omitting it makes the batch fire-and-forget: a retry would
	// append twice.
	BatchSeqHeader = "X-DP-Batch-Seq"
)

// IngestPath returns the canonical ingest path for a dataset.
func IngestPath(dataset string) string { return "/v1/ingest/" + dataset }

// IngestResponse is the success body of one applied batch.
type IngestResponse struct {
	Dataset string `json:"dataset"`
	// Records is the number of records this batch appended.
	Records int `json:"records"`
	// TotalRecords is the dataset's record count after the append.
	TotalRecords int `json:"totalRecords"`
	// Batches is the dataset's total applied-batch count after this
	// one (applied batches, not attempts).
	Batches uint64 `json:"batches"`
	// Source and Seq echo the batch identity when one was sent.
	Source string `json:"source,omitempty"`
	Seq    string `json:"seq,omitempty"`
}
