// Package api is the single source of truth for the server's /v1 wire
// contract: every request and response struct, the uniform error
// envelope and its stable codes, the protocol headers, the query-kind
// registry, and the ingest batch formats. internal/dpserver serves
// these shapes and internal/dpclient consumes them — both import this
// package instead of keeping duplicated struct literals, so a contract
// change is one edit that the compiler propagates to both sides (and
// to cmd/dploadgen, which speaks the same types when hammering a
// server).
//
// The package is pure data: no handlers, no transport, no privacy
// machinery. It may import internal/trace (record shapes ride in
// ingest batches) and internal/obs (span trees and execution profiles
// ride in query responses), and nothing else of the engine.
package api

// Protocol headers.
const (
	// TimeoutHeader asks for a per-request execution deadline in
	// milliseconds; the server caps it at its configured maximum.
	TimeoutHeader = "X-DP-Timeout-Ms"

	// IdempotencyHeader carries an idempotency key for endpoints whose
	// body has no idempotencyKey field.
	IdempotencyHeader = "X-DP-Idempotency-Key"

	// ExplainHeader ("true" or "1") asks for the query's redacted
	// execution profile in the response, at zero extra ε.
	ExplainHeader = "X-DP-Explain"
)

// Error codes of the v1 envelope. Clients branch on these, never on
// message text.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeBudgetExhausted  = "budget_exhausted"
	CodeCanceled         = "canceled"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeOverloaded       = "overloaded"
	CodeShuttingDown     = "shutting_down"
	CodeLedgerRefused    = "ledger_refused"
	CodeNotPrimary       = "not_primary"
	CodeNotFollower      = "not_follower"
	CodeTooLarge         = "too_large"
	CodeInternal         = "internal"
)

// Error is the uniform v1 error envelope: a stable code, a human
// message, and whether a retry can succeed. Budget errors carry the
// analyst's remaining allowance; errors after a partial multi-step
// execution report the ε actually charged (a paid-for failure must
// not be blindly retried — that is what idempotency keys are for).
type Error struct {
	Code      string  `json:"code"`
	Message   string  `json:"message"`
	Retryable bool    `json:"retryable"`
	Remaining float64 `json:"remaining,omitempty"`
	Charged   float64 `json:"charged,omitempty"`
}

// LegacySunset is the documented removal date for the deprecated
// unversioned path aliases (RFC 8594 Sunset header, sent on every
// legacy response alongside Deprecation). After this date the aliases
// may be removed in any release; clients must use the /v1 paths.
const LegacySunset = "Mon, 01 Feb 2027 00:00:00 GMT"
