package api

import (
	"dptrace/internal/obs"
	"dptrace/internal/trace"
)

// Filter restricts the packets a query sees. Zero-valued fields are
// inactive; pointers distinguish absent from zero.
type Filter struct {
	DstPort *int `json:"dstPort,omitempty"`
	SrcPort *int `json:"srcPort,omitempty"`
	MinLen  *int `json:"minLen,omitempty"`
	Proto   *int `json:"proto,omitempty"`
}

// Match reports whether p passes the filter; a nil filter passes
// everything.
func (f *Filter) Match(p *trace.Packet) bool {
	if f == nil {
		return true
	}
	if f.DstPort != nil && int(p.DstPort) != *f.DstPort {
		return false
	}
	if f.SrcPort != nil && int(p.SrcPort) != *f.SrcPort {
		return false
	}
	if f.MinLen != nil && int(p.Len) < *f.MinLen {
		return false
	}
	if f.Proto != nil && int(p.Proto) != *f.Proto {
		return false
	}
	return true
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"` // see QueryKinds for the registry
	Epsilon float64 `json:"epsilon"`
	Filter  *Filter `json:"filter,omitempty"`
	// MinBytes applies to the hosts query (paper §2.3 threshold).
	MinBytes int `json:"minBytes,omitempty"`
	// BucketStep applies to the CDF queries.
	BucketStep int64 `json:"bucketStep,omitempty"`
	// Fraction selects the rank for the lenquantile query (0 defaults
	// to 0.5, the median).
	Fraction float64 `json:"fraction,omitempty"`
	// SketchEps is lenquantile's rank-accuracy target for the
	// underlying mergeable summary (0 selects the engine default;
	// public knowledge, no ε cost).
	SketchEps float64 `json:"sketchEps,omitempty"`
	// Key is the target for the srcfreq query: a source IP in dotted
	// form, e.g. "10.0.0.1".
	Key string `json:"key,omitempty"`
	// Trace asks the server to return the executed pipeline as a span
	// tree in the response (operational metadata only, no record data).
	Trace bool `json:"trace,omitempty"`
	// IdempotencyKey, when set, makes the query at-most-once per
	// dataset/analyst: the first execution's response is stored and
	// replayed byte-identically on retries instead of re-charging ε.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// QueryResponse is the success body.
type QueryResponse struct {
	Values []float64 `json:"values"`
	// Buckets accompanies CDF queries: the upper edge of each value.
	Buckets []int64 `json:"buckets,omitempty"`
	// NoiseStd is the standard deviation of the added noise, public
	// knowledge the analyst uses to judge significance.
	NoiseStd float64 `json:"noiseStd"`
	// Spent and Remaining describe the analyst's budget after this
	// query. Remaining is -1 when the budget is unlimited (JSON has
	// no infinity).
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	// Trace is the executed pipeline's span tree, present when the
	// request set "trace":true.
	Trace *obs.Span `json:"trace,omitempty"`
	// Profile is the query's execution profile, present when the
	// request carried the X-DP-Explain header. It is redacted (no
	// record counts — see DESIGN.md §S31) and costs no extra ε.
	Profile *obs.Profile `json:"profile,omitempty"`
}

// MatrixRequest is the POST /v1/query/loadmatrix body: extract the
// full noisy link×bin count matrix (the Fig 4 pipeline's first step).
// The nested partition prices the whole matrix at one ε.
type MatrixRequest struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Epsilon float64 `json:"epsilon"`
	// IdempotencyKey gives the extraction at-most-once ε-spend (see
	// QueryRequest.IdempotencyKey).
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// MatrixResponse carries the matrix in row-major order (rows = bins).
type MatrixResponse struct {
	Bins      int       `json:"bins"`
	Links     int       `json:"links"`
	Data      []float64 `json:"data"`
	NoiseStd  float64   `json:"noiseStd"`
	Spent     float64   `json:"spent"`
	Remaining float64   `json:"remaining"`
	// Profile is the redacted execution profile, present when the
	// request carried the X-DP-Explain header (free of charge).
	Profile *obs.Profile `json:"profile,omitempty"`
}

// HopAveragesRequest is the POST /v1/query/monitoravgs body:
// per-monitor noisy average hop counts (the topology analysis's
// imputation step).
type HopAveragesRequest struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Epsilon float64 `json:"epsilon"`
	MaxHops float64 `json:"maxHops"`
	// IdempotencyKey gives the extraction at-most-once ε-spend (see
	// QueryRequest.IdempotencyKey).
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
}

// HopAveragesResponse carries one average per monitor.
type HopAveragesResponse struct {
	Averages  []float64 `json:"averages"`
	Spent     float64   `json:"spent"`
	Remaining float64   `json:"remaining"`
	// Profile is the redacted execution profile, present when the
	// request carried the X-DP-Explain header (free of charge).
	Profile *obs.Profile `json:"profile,omitempty"`
}

// AnalystUsage summarizes one analyst's activity on one dataset, so
// the owner's ledger is queryable rather than dump-only. Requested is
// the sum of ε values analysts asked for; Charged is what the ledger
// actually drew (higher when derivations amplify sensitivity, zero
// for refusals); Spent is the policy's own ground truth, which equals
// the ledger's Charged sum unless audit entries have been evicted.
type AnalystUsage struct {
	Analyst   string  `json:"analyst"`
	Queries   int     `json:"queries"`
	Requested float64 `json:"requested"`
	Charged   float64 `json:"charged"`
	Spent     float64 `json:"spent"`
}

// DatasetInfo describes one hosted dataset in GET /v1/datasets.
type DatasetInfo struct {
	Name           string  `json:"name"`
	TotalSpent     float64 `json:"totalSpent"`
	TotalRemaining float64 `json:"totalRemaining"`
	// Records is the dataset's live record count — the static load
	// plus everything ingested so far. It is owner-side operational
	// metadata (the /datasets listing is the owner's surface, like
	// /audit), never derived from a query.
	Records int `json:"records"`
	// IngestedBatches counts batches applied via /v1/ingest.
	IngestedBatches uint64         `json:"ingestedBatches,omitempty"`
	Analysts        []AnalystUsage `json:"analysts,omitempty"`
}

// HealthStatus is the GET /v1/healthz body. It always answers 200
// while the process lives — liveness, not readiness (see /readyz).
type HealthStatus struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Datasets      int     `json:"datasets"`
	Goroutines    int     `json:"goroutines"`
	AuditEntries  int     `json:"auditEntries"`
	RecentTraces  int     `json:"recentTraces"`
	Degraded      bool    `json:"degraded,omitempty"`
	LedgerError   string  `json:"ledgerError,omitempty"`
}

// ReadyStatus is the GET /v1/readyz body: readiness, distinct from
// /healthz liveness. A degraded server (frozen or degraded ledger, or
// a drain in progress) is alive — read-only endpoints serve — but not
// ready for spending traffic.
type ReadyStatus struct {
	Ready  bool   `json:"ready"`
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	// Role is "primary" or "follower" when the server replicates its
	// ledger, empty for a standalone server.
	Role string `json:"role,omitempty"`
	// Repl carries the replication detail when Role is set.
	Repl *ReplStatus `json:"repl,omitempty"`
}

// ReplStatus describes a replicating node for /readyz: its role, link
// health, and position gap. On a follower, LagSeq is the number of
// primary-committed events not yet durably applied locally — the
// promote-safety signal (0 = caught up). On a primary, LagSeq is the
// slowest connected follower's un-acked backlog and Followers counts
// connected subscribers.
type ReplStatus struct {
	Role      string `json:"role"`
	Connected bool   `json:"connected"`
	LagSeq    uint64 `json:"lagSeq"`
	Epoch     uint64 `json:"epoch"`
	Followers int    `json:"followers,omitempty"`
}

// PromoteResult is the POST /v1/admin/promote success body: the node
// is now the primary, at the (durably bumped) fencing epoch.
type PromoteResult struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
}
