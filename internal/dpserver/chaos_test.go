package dpserver

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/noise"
	"dptrace/internal/vfs"
)

// chaosDur bounds the whole chaos run. The default keeps `go test`
// fast; `make chaos` passes -chaosdur 30s for a longer soak.
var chaosDur = flag.Duration("chaosdur", 2*time.Second, "wall-clock budget for TestChaosStorm")

// TestChaosStorm is the randomized fault harness: seeded rounds of a
// concurrent query storm against a ledger whose filesystem fails
// probabilistically (writes, fsyncs, renames), with handler panics
// sprinkled in. Whatever the schedule, three invariants must hold:
//
//  1. Every response is one of 200 OK, 500 internal, or 503
//     ledger_refused — the failure surface is closed.
//  2. The live in-memory spend equals the acked sum exactly: a
//     refused or panicked request leaves no ε residue.
//  3. The journal never undercounts: replaying the directory — both
//     as-is and after a simulated power loss — recovers at least
//     (and with fsync=always, exactly) the acked spend.
//
// Each round uses its own seed, so a failure report's round number
// reproduces the schedule deterministically.
func TestChaosStorm(t *testing.T) {
	deadline := time.Now().Add(*chaosDur)
	rounds := 0
	for round := uint64(1); rounds == 0 || time.Now().Before(deadline); round++ {
		rounds++
		chaosRound(t, round)
		if t.Failed() {
			t.Fatalf("invariant violated in round %d (seed %d): rerun with a focused seed to reproduce", rounds, round)
		}
	}
	t.Logf("chaos: %d rounds clean in %v", rounds, *chaosDur)
}

func chaosRound(t *testing.T, seed uint64) {
	const (
		workers = 6
		perG    = 15
		epsilon = 0.01
		faultP  = 0.03
	)
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(vfs.OS{})
	led, err := ledger.Open(ledger.Options{
		Dir: dir, FS: fsys, Fsync: ledger.FsyncAlways, SnapshotEvery: 8, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	defer led.Close()
	s := New(noise.NewSeededSource(seed, seed+1), WithLedger(led))
	if err := s.AddPacketTrace("hotspot", restartTrace(), math.Inf(1), math.Inf(1)); err != nil {
		t.Fatalf("seed %d: add trace: %v", seed, err)
	}
	// Every 13th execution panics inside the handler; the middleware
	// must contain it.
	var execs atomic.Int64
	s.execHook = func(context.Context) {
		if execs.Add(1)%13 == 0 {
			panic("chaos: injected handler panic")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Registration and the first WAL segment are written clean; the
	// chaos schedule starts with the storm itself.
	fsys.SetChaos(int64(seed), faultP, vfs.OpWrite, vfs.OpSync, vfs.OpRename)

	var (
		acked atomic.Int64
		wg    sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, body := postV1(t, ts.URL+"/v1/query", QueryRequest{
					Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: epsilon,
				}, nil)
				var e apiError
				switch resp.StatusCode {
				case http.StatusOK:
					acked.Add(1)
				case http.StatusInternalServerError:
					if json.Unmarshal(body, &e) != nil || e.Code != codeInternal {
						t.Errorf("seed %d: 500 with wrong envelope: %s", seed, body)
					}
				case http.StatusServiceUnavailable:
					if json.Unmarshal(body, &e) != nil || e.Code != codeLedgerRefused {
						t.Errorf("seed %d: 503 with wrong envelope: %s", seed, body)
					}
				default:
					t.Errorf("seed %d: status %d outside the failure surface: %s", seed, resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	ackedEps := float64(acked.Load()) * epsilon
	if got := s.datasets["hotspot"].policy.TotalSpent(); math.Abs(got-ackedEps) > 1e-9 {
		t.Errorf("seed %d: live spent %v != acked sum %v", seed, got, ackedEps)
	}
	// No charge without a journaled record: the directory replays to
	// at least every acked charge, even while the ledger is live…
	spent := func(st *ledger.State) float64 {
		ds, ok := st.Datasets["hotspot"]
		if !ok {
			return 0
		}
		return ds.TotalSpent
	}
	state, _, err := ledger.Replay(dir, 0)
	if err != nil {
		t.Errorf("seed %d: live replay: %v", seed, err)
	} else if got := spent(state); got < ackedEps-1e-9 {
		t.Errorf("seed %d: live replay %v < acked %v", seed, got, ackedEps)
	}
	// …and after a power loss that drops everything not yet fsynced,
	// recovery still holds every acked charge (fsync=always syncs
	// before ack) without inventing new ones.
	if err := fsys.SimulateCrash(); err != nil {
		t.Fatalf("seed %d: crash: %v", seed, err)
	}
	state, rec, err := ledger.Replay(dir, 0)
	if err != nil {
		t.Errorf("seed %d: post-crash replay: %v (recovery %+v)", seed, err, rec)
	} else {
		if got := spent(state); got < ackedEps-1e-9 {
			t.Errorf("seed %d: post-crash replay %v < acked %v", seed, got, ackedEps)
		}
		if got := spent(state); got > ackedEps+1e-9 {
			t.Errorf("seed %d: post-crash replay %v exceeds pre-crash acked spend %v", seed, got, ackedEps)
		}
	}

	// Liveness survives whatever the round did.
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("seed %d: healthz: %v", seed, err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("seed %d: healthz = %d, want 200", seed, hr.StatusCode)
	}
}
