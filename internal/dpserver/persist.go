package dpserver

import (
	"errors"
	"fmt"
	"time"

	"dptrace/internal/core"
	"dptrace/internal/ledger"
	"dptrace/internal/obs/qlog"
)

// This file wires the durable budget ledger (internal/ledger) through
// the server: dataset registrations, every acknowledged ε-charge, the
// audit trail, and keyed idempotent responses are journaled, and a
// restarted server rebuilds all of them before serving. Without a
// ledger the server keeps its original in-memory-only behavior.
//
// The privacy invariant: a charge is journaled BEFORE it is
// acknowledged (core.SpendJournal), so no crash can forget an acked
// spend; and a ledger that cannot be fully replayed freezes, which
// refuses all new charges (fail closed) while read-only endpoints stay
// up for inspection.

// Dataset kind tags persisted in dataset_created events.
const (
	kindPacket = "packet"
	kindLink   = "link"
	kindHop    = "hop"
)

// ErrLedgerMismatch is returned when a dataset is re-registered with a
// kind or budget bounds different from its persisted ledger: silently
// adopting the new bounds would rewrite the spend history's terms.
var ErrLedgerMismatch = errors.New("dpserver: registration conflicts with persisted ledger")

// WithLedger attaches a durable budget ledger (opened by the caller;
// see ledger.Open). The server restores the persisted audit trail and
// idempotent responses immediately; per-dataset budgets are restored
// as datasets are re-registered via Add*Trace.
func WithLedger(led *ledger.Ledger) ServerOption {
	return func(s *Server) { s.ledger = led }
}

// spendRefusal reports why budget-spending endpoints must shed, or
// nil when spending is possible: the node is a replication follower
// (read-only until promoted), the primary lacks its synchronous
// quorum or has been fenced by a newer epoch, or the ledger itself
// refuses appends (frozen on corrupt history, degraded after a
// runtime journal I/O failure). Without a ledger there is nothing to
// refuse.
func (s *Server) spendRefusal() error {
	s.replMu.Lock()
	p, f, closed := s.repl.primary, s.repl.follower, s.repl.closed
	s.replMu.Unlock()
	if f != nil {
		return errNotPrimary
	}
	if p != nil {
		if err := p.SyncGate(); err != nil {
			return err
		}
	} else if closed {
		return errReplRetired
	}
	return s.ledgerRefusal()
}

// ledgerRefusal is spendRefusal minus the replication role: only the
// ledger's own frozen/degraded state. Health surfaces use it so a
// healthy follower does not read as damaged.
func (s *Server) ledgerRefusal() error {
	if s.ledger == nil {
		return nil
	}
	return s.ledger.Refusing()
}

// restoreFromLedger runs once in New, after options: exports ledger
// metrics and rebuilds the audit trail and idempotency cache from the
// recovered state.
func (s *Server) restoreFromLedger() {
	led := s.ledger
	led.AttachMetrics(s.metrics)
	if cause := led.Refusing(); cause != nil {
		// The recovered history could not be fully replayed (or the
		// journal already failed): the server comes up frozen, shedding
		// every spend until the operator intervenes. Say so loudly —
		// this is the first thing to look for when queries 503.
		s.event(qlog.Error, "ledger_frozen", qlog.F("cause", cause.Error()))
		s.degradedNoted.Store(true)
	}
	s.restoreAuditIdem(led.State())
}

// registerDataset is the ledger half of Add*Trace (callers hold s.mu):
// a dataset already in the recovered state gets its spends restored
// and no new event; a new dataset is journaled before registration is
// acknowledged. Either way the policy's future charges flow through
// the ledger. With no ledger attached it does nothing.
func (s *Server) registerDataset(name, kind string, policy *core.AnalystPolicy, totalBudget, perAnalystBudget float64) error {
	if s.ledger == nil {
		return nil
	}
	state := s.ledger.State()
	if ds, ok := state.Datasets[name]; ok {
		if ds.Kind != kind ||
			ds.Total != ledger.EncodeBudget(totalBudget) ||
			ds.PerAnalyst != ledger.EncodeBudget(perAnalystBudget) {
			return fmt.Errorf("%w: %q is persisted as kind=%s total=%v perAnalyst=%v",
				ErrLedgerMismatch, name, ds.Kind,
				ledger.DecodeBudget(ds.Total), ledger.DecodeBudget(ds.PerAnalyst))
		}
		policy.RestoreSpent(ds.Spent, ds.TotalSpent)
	} else {
		if err := s.journalAppend(ledger.Event{
			Type: ledger.EventDatasetCreated, Dataset: name, Kind: kind,
			Total:      ledger.EncodeBudget(totalBudget),
			PerAnalyst: ledger.EncodeBudget(perAnalystBudget),
		}); err != nil {
			if s.ledger.Refusing() == nil && !errors.Is(err, errNotPrimary) {
				return fmt.Errorf("dpserver: journal dataset registration: %w", err)
			}
			// The ledger cannot journal the registration — it is
			// frozen or degraded, or this node is a follower — but in
			// every such state it also refuses every charge, so
			// hosting the dataset keeps the invariant (no ε can move
			// without a journaled record) while the read-only surface
			// stays up. A healthy restart re-registers and journals
			// normally; a promoted follower journals it during resync.
			s.event(qlog.Warn, "registration_unjournaled",
				qlog.F("dataset", name), qlog.F("kind", kind),
				qlog.F("error", err.Error()))
		}
	}
	policy.SetSpendJournal(
		func(analyst string, epsilon float64) error {
			return s.journalAppend(ledger.Event{
				Type: ledger.EventCharge, Dataset: name,
				Analyst: analyst, Epsilon: epsilon,
			})
		},
		func(analyst string, epsilon float64) {
			// A rollback that fails to journal leaves the ledger
			// over-counting the spend — conservative, so best-effort.
			_ = s.journalAppend(ledger.Event{
				Type: ledger.EventRollback, Dataset: name,
				Analyst: analyst, Epsilon: epsilon,
			})
		})
	return nil
}

// recordAudit journals one audit entry (refusals under their own event
// type, per the ledger's schema) and adds it to the live trail. The
// ledger append is best-effort: the charge events are the ε ground
// truth, the audit trail is the owner's activity record.
func (s *Server) recordAudit(e AuditEntry) {
	if s.ledger != nil {
		typ := ledger.EventAudit
		if e.Outcome == "refused" {
			typ = ledger.EventRefusal
		}
		_ = s.journalAppend(ledger.Event{
			Type: typ, Dataset: e.Dataset, Analyst: e.Analyst,
			Query: e.Query, Epsilon: e.Epsilon, Charged: e.Charged,
			Outcome: e.Outcome,
		})
	}
	s.audit.add(e)
}

// recordIdemReply journals one stored idempotent response so retries
// across a restart replay bytes instead of re-charging ε.
func (s *Server) recordIdemReply(k idemKey, status int, body []byte, expires time.Time) {
	if s.ledger == nil {
		return
	}
	_ = s.journalAppend(ledger.Event{
		Type: ledger.EventIdemReply, Endpoint: k.endpoint,
		Dataset: k.dataset, Analyst: k.analyst, Key: k.key,
		Status: status, Body: body, Expires: expires.UnixNano(),
	})
}
