// Package dpserver implements the paper's mediated-trace-analysis
// deployment model as an HTTP service: the data owner hosts raw
// traces, analysts submit declarative queries over the network, and
// only noisy aggregates ever leave — with per-analyst and total
// privacy budgets enforced by the §7 policy machinery.
//
// The wire protocol is JSON over HTTP (stdlib net/http only):
//
//	GET  /datasets              list datasets, budget state, per-analyst usage
//	GET  /budget?dataset=&analyst=   an analyst's remaining allowance
//	POST /query                 run one differentially-private query
//	GET  /audit?analyst=&dataset=&outcome=&limit=   the owner's query ledger
//
// A query names the analyst (authentication is out of scope — wire it
// to your ingress), the dataset, the query kind, its ε, and optional
// record filters:
//
//	{"analyst":"alice","dataset":"hotspot","query":"hosts",
//	 "epsilon":0.1,"filter":{"dstPort":80},"minBytes":1024}
//
// Refused queries (budget exhausted) return 403 with the remaining
// allowance; they consume nothing, and the refusal is data-independent
// (unlike the bit-leakage schemes the paper critiques, it reveals only
// the analyst's own spending).
//
// The server also instruments itself (see internal/obs) for the data
// owner operating it as a long-lived service:
//
//	GET  /metrics        Prometheus text exposition (?format=json for a
//	                     JSON snapshot): per-endpoint request counts and
//	                     latency histograms, per-dataset budget
//	                     total/spent/remaining gauges, per-operator
//	                     engine timings, aggregation outcome counters
//	GET  /healthz        liveness: uptime, dataset count, goroutines
//	GET  /debug/traces   ring buffer of recent query traces (?n= limit)
//	/debug/pprof/*       optional; mount with Handler(WithPprof())
//
// Setting "trace":true on POST /query returns the executed pipeline as
// a span tree in the response's "trace" field. None of these surfaces
// expose record data — only operational metadata and the budget ledger
// the owner already governs by — but /audit, /debug/*, and /metrics
// are owner-side endpoints; expose them accordingly.
package dpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dptrace/internal/analyses/flowstats"
	"dptrace/internal/analyses/packetdist"
	"dptrace/internal/core"
	"dptrace/internal/dpserver/api"
	"dptrace/internal/ingest"
	"dptrace/internal/ledger"
	"dptrace/internal/noise"
	"dptrace/internal/obs"
	"dptrace/internal/obs/qlog"
	"dptrace/internal/standing"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Server hosts protected datasets behind the query API.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*dataset
	linkSets map[string]*linkDataset
	hopSets  map[string]*hopDataset
	src      noise.Source
	audit    *auditLog

	// ledger, when attached (WithLedger), makes budget state durable:
	// charges are journaled before acknowledgement and replayed on
	// restart (see persist.go). Nil keeps in-memory-only behavior.
	ledger *ledger.Ledger

	// repl is the replication role (see repl.go): nil handles mean
	// standalone. replMu guards the rare role transitions
	// (StartReplication, Promote) against concurrent handler reads.
	replMu sync.Mutex
	repl   replState

	start     time.Time
	metrics   *obs.Registry
	engineRec obs.Recorder // aggregates engine telemetry into metrics
	traces    *obs.TraceBuffer

	// Request lifecycle (see lifecycle.go).
	limits        Limits
	sem           chan struct{} // concurrency slots; nil = unlimited
	lifecycleMu   sync.Mutex    // guards draining + inflight.Add atomicity
	draining      bool
	inflight      sync.WaitGroup
	inflightGauge atomic.Int64
	idem          *idemCache

	// execHook, when set, runs at the top of every query execution
	// with the request's context. Tests use it to inject latency and
	// observe cancellation; production code leaves it nil.
	execHook func(context.Context)

	// events is the server's wide-event spine: every operational
	// occurrence — query completions, panics, sheds, degrade
	// transitions, ledger freezes, drains — is one typed structured
	// event (see internal/obs/qlog). Always non-nil after New; the
	// ring behind it backs GET /debug/queries.
	events *qlog.Logger

	// degradedNoted tracks the last observed degrade state so the
	// entered/exited transition events fire exactly once per flip.
	degradedNoted atomic.Bool

	// analystGauges remembers which (dataset, analyst) burn-rate
	// gauges are registered, so each is created once.
	analystGauges sync.Map // "dataset\x00analyst" -> struct{}

	// Live ingestion (see ingest.go): the bounded pipeline behind
	// POST /v1/ingest/{dataset}, started lazily on first batch and
	// closed by Shutdown after the drain.
	ingestLimits ingest.Limits
	ingestMu     sync.Mutex
	ingestPipe   *ingest.Pipeline
	ingestClosed bool

	// standing is the continual-monitoring subsystem (see standing.go):
	// registered standing queries fire on deterministic window
	// boundaries as ingest advances each dataset's record watermark.
	standing *standing.Registry

	// log is the deprecated printf mirror (WithLogf): Warn+ events are
	// rendered to it as text lines. Nil discards them.
	log func(format string, args ...any)
}

// event emits one structured wide event, mirroring Warn and Error
// events to the deprecated WithLogf sink as rendered text.
func (s *Server) event(level qlog.Level, name string, fields ...qlog.Field) {
	e := qlog.Event{Level: level, Name: name}.With(fields...)
	s.events.Emit(e)
	if s.log != nil && level >= qlog.Warn {
		s.log("dpserver: %s", e.Text())
	}
}

// logf emits one operational warning through the deprecated printf
// mirror only (used where the caller already emitted a typed event
// with richer fields and just wants the legacy rendering).
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log(format, args...)
	}
}

// WithLogf directs a text rendering of the server's Warn and Error
// events — recovered panics, ledger trouble, drains — to f (e.g.
// log.Printf).
//
// Deprecated: WithLogf predates the structured event log and remains
// as a shim. New code should read the JSON event stream instead: pass
// WithEventLog a qlog.Logger writing to your sink.
func WithLogf(f func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.log = f }
}

// WithEventLog replaces the server's structured event logger — the
// way to direct the wide-event JSON stream at a file or stderr, tune
// the ring size, or set sampling (see qlog.Options). Passing nil
// keeps the default ring-only logger.
func WithEventLog(l *qlog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.events = l
		}
	}
}

// Events returns the server's structured event logger (never nil).
func (s *Server) Events() *qlog.Logger { return s.events }

type dataset struct {
	// packets is the dataset's live record slice. It is only ever
	// replaced wholesale (append returns a new header) under s.mu's
	// write lock; queries capture the header once under the read lock
	// and run against that immutable snapshot (see snapshotPackets).
	packets []trace.Packet
	policy  *core.AnalystPolicy
	exec    core.ExecOptions
	// ingestedBatches counts batches applied via /v1/ingest (guarded
	// by s.mu like packets).
	ingestedBatches uint64
	// watermark is the dataset's monotonic record-sequence counter:
	// the registration packets plus every ingested record, advanced
	// exactly once per batch at ingest apply (guarded by s.mu). It is
	// the single clock standing-query windows and the /v1/datasets
	// record count read — on the live server it always equals
	// len(packets), but the watermark is the contractual stream
	// position while the slice length is an implementation detail.
	watermark uint64
}

// New creates a server drawing noise from src (pass
// noise.NewCryptoSource() in production; tests use a seeded source).
// Options configure the request lifecycle: WithLimits for admission
// control and deadlines, WithIdempotencyCache for the at-most-once
// replay cache.
func New(src noise.Source, opts ...ServerOption) *Server {
	s := &Server{
		datasets: make(map[string]*dataset),
		linkSets: make(map[string]*linkDataset),
		hopSets:  make(map[string]*hopDataset),
		src:      noise.NewLockedSource(src),
		audit:    newAuditLog(0, nil),
		start:    time.Now(),
		metrics:  obs.NewRegistry(),
		traces:   obs.NewTraceBuffer(0),
		idem:     newIdemCache(),
		events:   qlog.New(qlog.Options{}),
	}
	s.standing = s.newStandingRegistry()
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	if s.ledger != nil {
		s.restoreFromLedger()
	}
	if s.limits.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, s.limits.MaxConcurrent)
	}
	s.engineRec = obs.NewMetricsRecorder(s.metrics)
	s.metrics.GaugeFunc("dpserver_audit_entries", func() float64 {
		return float64(s.audit.len())
	})
	// Cumulative transformations executed under a parallel strategy
	// (process-wide; see core.ParallelExecutions). Reads as a counter.
	s.metrics.GaugeFunc("dp_parallel_exec_total", func() float64 {
		return float64(core.ParallelExecutions())
	})
	// Query requests currently holding a concurrency slot.
	s.metrics.GaugeFunc("dp_inflight", func() float64 {
		return float64(s.inflightGauge.Load())
	})
	// 1 while spending endpoints shed fail-closed (frozen or degraded
	// ledger); read-only endpoints keep serving. Alert on this. A
	// healthy follower reads 0 — its shedding is a role, not damage.
	s.metrics.GaugeFunc("dp_degraded", func() float64 {
		if s.ledgerRefusal() != nil {
			return 1
		}
		return 0
	})
	// Standing queries currently firing windows (any dataset).
	s.metrics.GaugeFunc("dp_standing_active", func() float64 {
		return float64(s.standing.Active())
	})
	return s
}

// SetExecOptions configures the execution strategy for queries against
// the named dataset of any kind (see core.ExecOptions; the zero value
// restores sequential execution). Parallel execution changes only
// wall-clock time: results, ordering, and budget charges are identical
// to sequential execution, so it is safe to toggle on a live dataset.
func (s *Server) SetExecOptions(name string, exec core.ExecOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.datasets[name] != nil:
		s.datasets[name].exec = exec
	case s.linkSets[name] != nil:
		s.linkSets[name].exec = exec
	case s.hopSets[name] != nil:
		s.hopSets[name].exec = exec
	default:
		return fmt.Errorf("dpserver: unknown dataset %q", name)
	}
	return nil
}

// SetParallelism is SetExecOptions with the default size threshold:
// queries against the named dataset use workers concurrent workers for
// transformations over at least core.DefaultParallelThreshold records
// (workers <= 1 restores sequential execution).
func (s *Server) SetParallelism(name string, workers int) error {
	return s.SetExecOptions(name, core.ExecOptions{Workers: workers})
}

// ErrDatasetExists is returned when registering a dataset under a name
// that is already taken. Silently replacing would discard the old
// dataset's spent-budget ledger — exactly the state the privacy
// guarantee depends on — so collisions are refused.
var ErrDatasetExists = errors.New("dpserver: dataset already exists")

// nameTaken reports whether any dataset kind holds name; callers hold
// s.mu.
func (s *Server) nameTaken(name string) bool {
	if _, ok := s.datasets[name]; ok {
		return true
	}
	if _, ok := s.linkSets[name]; ok {
		return true
	}
	_, ok := s.hopSets[name]
	return ok
}

// AddPacketTrace registers a packet trace under name with the given
// total and per-analyst privacy budgets. It refuses (ErrDatasetExists)
// if the name is taken by any dataset kind: replacement would reset
// the spent-budget ledger and let analysts re-spend against the same
// records.
func (s *Server) AddPacketTrace(name string, packets []trace.Packet, totalBudget, perAnalystBudget float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nameTaken(name) {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	d := &dataset{
		packets:   packets,
		policy:    core.NewAnalystPolicy(totalBudget, perAnalystBudget),
		watermark: uint64(len(packets)),
	}
	if err := s.registerDataset(name, kindPacket, d.policy, totalBudget, perAnalystBudget); err != nil {
		return err
	}
	s.datasets[name] = d
	// A follower does not schedule standing queries — it cannot spend.
	// The replication stream keeps the ledger's standing state current,
	// and Promote installs it fresh into the scheduler.
	if s.replFollowerHandle() == nil {
		s.restoreStanding(name)
	}
	d.policy.RegisterGauges(s.metrics, "dataset", name)
	return nil
}

// Handler returns the HTTP handler for the query API. Every endpoint
// reports request counts and latency to the server's metrics registry.
//
// All endpoints are mounted under /v1/; the unversioned paths remain
// as deprecated aliases that answer identically but add a
// `Deprecation: true` header (and a Link to the successor). Errors on
// /v1/ use the uniform {code, message, retryable} envelope; the
// legacy paths keep the original {error, remaining} body. The three
// query-executing endpoints run behind the admission-control
// lifecycle (see lifecycle.go); read-only endpoints bypass it so
// health checks and scrapes keep working during drains and overload.
func (s *Server) Handler(opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	for _, rt := range routeTable {
		h := rt.handler(s)
		if rt.query {
			h = s.admit(h)
		}
		h = s.recoverPanics(h)
		mux.HandleFunc(rt.Method+" /v1"+rt.Path, s.instrument("/v1"+rt.Path, h))
		if rt.Legacy {
			mux.HandleFunc(rt.Method+" "+rt.Path, s.instrument(rt.Path, deprecated(rt.Path, h)))
		}
	}
	if cfg.pprof {
		attachPprof(mux)
	}
	return mux
}

// Route describes one API route: its method, its canonical path
// (mounted under /v1), and whether a deprecated unversioned alias is
// still served. Every endpoint has exactly one canonical /v1 mount —
// a test enforces it against this table.
type Route struct {
	Method string
	// Path is the canonical path relative to /v1 (ServeMux pattern
	// syntax; {dataset} is a wildcard).
	Path string
	// Legacy reports whether the unversioned alias is (still) mounted.
	// Aliases answer identically but carry Deprecation + Sunset
	// headers; they are removed at api.LegacySunset.
	Legacy bool

	query   bool // behind the admission lifecycle (admit)
	handler func(*Server) http.HandlerFunc
}

// routeTable is the single source of truth for what Handler mounts.
// Endpoints added after the /v1 cutover (ingest) are v1-only.
var routeTable = []Route{
	{Method: "GET", Path: "/datasets", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleDatasets }},
	{Method: "GET", Path: "/budget", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleBudget }},
	{Method: "POST", Path: "/query", Legacy: true, query: true, handler: func(s *Server) http.HandlerFunc { return s.handleQuery }},
	{Method: "GET", Path: "/audit", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleAudit }},
	{Method: "POST", Path: "/query/loadmatrix", Legacy: true, query: true, handler: func(s *Server) http.HandlerFunc { return s.handleLoadMatrix }},
	{Method: "POST", Path: "/query/monitoravgs", Legacy: true, query: true, handler: func(s *Server) http.HandlerFunc { return s.handleMonitorAverages }},
	{Method: "POST", Path: "/ingest/{dataset}", handler: func(s *Server) http.HandlerFunc { return s.handleIngest }},
	{Method: "POST", Path: "/standing/{dataset}", query: true, handler: func(s *Server) http.HandlerFunc { return s.handleStandingRegister }},
	{Method: "GET", Path: "/standing/{dataset}", handler: func(s *Server) http.HandlerFunc { return s.handleStandingList }},
	{Method: "DELETE", Path: "/standing/{dataset}/{id}", query: true, handler: func(s *Server) http.HandlerFunc { return s.handleStandingCancel }},
	{Method: "GET", Path: "/standing/{dataset}/{id}/results", handler: func(s *Server) http.HandlerFunc { return s.handleStandingResults }},
	{Method: "POST", Path: "/admin/promote", handler: func(s *Server) http.HandlerFunc { return s.handlePromote }},
	{Method: "GET", Path: "/metrics", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{Method: "GET", Path: "/healthz", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{Method: "GET", Path: "/readyz", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleReadyz }},
	{Method: "GET", Path: "/debug/traces", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleDebugTraces }},
	{Method: "GET", Path: "/debug/queries", Legacy: true, handler: func(s *Server) http.HandlerFunc { return s.handleDebugQueries }},
}

// Routes returns the mounted route table (a copy).
func Routes() []Route {
	out := make([]Route, len(routeTable))
	copy(out, routeTable)
	return out
}

// deprecated marks a legacy (unversioned) mount: responses carry a
// Deprecation header, a pointer at the /v1 successor (RFC 9745), and
// the Sunset date after which the alias is removed (RFC 8594).
func deprecated(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", api.LegacySunset)
		w.Header().Set("Link", `</v1`+path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// The /v1 wire contract — request/response structs, the error
// envelope, codes, headers, and the query-kind registry — lives in
// the api subpackage, shared verbatim with internal/dpclient. The
// aliases below keep this package's exported surface (and every
// existing caller) intact.

// Filter restricts the packets a query sees (see api.Filter).
type Filter = api.Filter

// QueryRequest is the POST /query body (see api.QueryRequest).
type QueryRequest = api.QueryRequest

// QueryResponse is the success body (see api.QueryResponse).
type QueryResponse = api.QueryResponse

// finiteOrUnlimited maps +Inf (an unlimited budget) to the JSON
// sentinel -1.
func finiteOrUnlimited(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// errorResponse is the failure body.
type errorResponse struct {
	Error     string  `json:"error"`
	Remaining float64 `json:"remaining,omitempty"`
}

// AnalystUsage summarizes one analyst's activity on one dataset (see
// api.AnalystUsage).
type AnalystUsage = api.AnalystUsage

// DatasetInfo describes one hosted dataset in GET /datasets (see
// api.DatasetInfo).
type DatasetInfo = api.DatasetInfo

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	// Ledger-side totals per dataset+analyst, folded into the listing.
	type ledgerKey struct{ dataset, analyst string }
	ledger := make(map[ledgerKey]*AnalystUsage)
	for _, e := range s.audit.snapshot() {
		k := ledgerKey{e.Dataset, e.Analyst}
		u := ledger[k]
		if u == nil {
			u = &AnalystUsage{Analyst: e.Analyst}
			ledger[k] = u
		}
		u.Queries++
		u.Requested += e.Epsilon
		u.Charged += e.Charged
	}

	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		info := DatasetInfo{
			Name:           name,
			TotalSpent:     d.policy.TotalSpent(),
			TotalRemaining: finiteOrUnlimited(d.policy.TotalRemaining()),
			// The record count IS the watermark: the same monotonic
			// counter standing-query windows are defined against.
			Records:         int(d.watermark),
			IngestedBatches: d.ingestedBatches,
		}
		for analyst, spent := range d.policy.PerAnalystSpent() {
			u := AnalystUsage{Analyst: analyst, Spent: spent}
			if l := ledger[ledgerKey{name, analyst}]; l != nil {
				u.Queries, u.Requested, u.Charged = l.Queries, l.Requested, l.Charged
			}
			info.Analysts = append(info.Analysts, u)
		}
		sort.Slice(info.Analysts, func(i, j int) bool {
			return info.Analysts[i].Analyst < info.Analysts[j].Analyst
		})
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	analyst := r.URL.Query().Get("analyst")
	if name == "" || analyst == "" {
		s.writeError(w, r, http.StatusBadRequest, apiError{Code: codeBadRequest, Message: "dataset and analyst are required"})
		return
	}
	d, ok := s.lookup(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, apiError{Code: codeNotFound, Message: fmt.Sprintf("unknown dataset %q", name)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"spent":     d.policy.SpentBy(analyst),
		"remaining": finiteOrUnlimited(d.policy.RemainingFor(analyst)),
	})
}

func (s *Server) lookup(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// execFor reads a dataset's execution options under the server lock
// (mutable after registration via SetExecOptions).
func (s *Server) execFor(d *dataset) core.ExecOptions {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return d.exec
}

// watermark reads a dataset's record-sequence position under the
// server lock.
func (s *Server) watermark(d *dataset) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return d.watermark
}

// snapshotPackets captures the dataset's record slice under the read
// lock. The returned snapshot is immutable: ingest appends replace
// the slice header (never elements below its length), so a query
// holding a snapshot sees a frozen dataset for its whole execution —
// its noise draws and ε-charges are byte-identical to a run against a
// static dataset with the same contents.
func (s *Server) snapshotPackets(d *dataset) []trace.Packet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return d.packets
}

// jsonDecoder builds the strict decoder shared by the query handlers.
func jsonDecoder(r *http.Request) *json.Decoder {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := jsonDecoder(r).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, apiError{Code: codeBadRequest, Message: "bad request: " + err.Error()})
		return
	}
	if req.Analyst == "" || req.Dataset == "" {
		s.writeError(w, r, http.StatusBadRequest, apiError{Code: codeBadRequest, Message: "analyst and dataset are required"})
		return
	}
	if req.Epsilon <= 0 {
		s.writeError(w, r, http.StatusBadRequest, apiError{Code: codeBadRequest, Message: "epsilon must be positive"})
		return
	}
	d, ok := s.lookup(req.Dataset)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, apiError{Code: codeNotFound, Message: fmt.Sprintf("unknown dataset %q", req.Dataset)})
		return
	}
	v1 := isV1(r)
	explain := wantsExplain(r)
	s.serveIdempotent(w, r, req.Dataset, req.Analyst, req.IdempotencyKey,
		func(ctx context.Context) (int, []byte, bool) {
			return s.executeQuery(ctx, v1, explain, d, &req)
		})
}

// executeQuery runs one packet-trace query to completion under ctx,
// returning the response status, its marshaled body, and whether the
// outcome may be replayed for an idempotency key. The one
// non-replayable outcome is a cancellation that charged nothing: a
// retry should execute, not be handed back its own timeout.
//
// Every execution — success or failure — ends in exactly one "query"
// wide event carrying the full execution profile (see finishQuery).
// explain additionally returns the redacted profile to the analyst in
// the response envelope; it changes no budget accounting and no
// ledger traffic.
func (s *Server) executeQuery(ctx context.Context, v1, explain bool, d *dataset, req *QueryRequest) (int, []byte, bool) {
	start := time.Now()
	if s.execHook != nil {
		s.execHook(ctx)
	}
	// Every query executes under a trace recorder (feeding the
	// /debug/traces ring), a profile recorder (feeding the wide event
	// and X-DP-Explain), and the server's metrics recorder.
	tr := obs.NewTraceRecorder("query:" + req.Query)
	tr.SetLabel("analyst", req.Analyst)
	tr.SetLabel("dataset", req.Dataset)
	prof := obs.NewProfileRecorder(func() float64 { return d.policy.SpentBy(req.Analyst) })
	rec := obs.Multi(s.engineRec, tr, prof)

	q := core.NewQueryableFor(s.snapshotPackets(d), d.policy.AgentFor(req.Analyst), s.src).
		WithRecorder(rec).WithExecOptions(s.execFor(d)).WithContext(ctx)

	spentBefore := d.policy.SpentBy(req.Analyst)
	entry := AuditEntry{
		Analyst: req.Analyst, Dataset: req.Dataset,
		Query: req.Query, Epsilon: req.Epsilon,
	}
	done := queryOutcome{
		endpoint: "/query", analyst: req.Analyst, dataset: req.Dataset,
		query: req.Query, epsilon: req.Epsilon, started: start,
		idempotency: idemStatus(req.IdempotencyKey), policy: d.policy,
	}
	resp, err := runQuery(q, req)
	if err != nil {
		if errors.Is(err, core.ErrInternal) {
			// A panic recovered at the aggregation boundary (the worker
			// or recoverAgg guards): the request gets a clean 500 and
			// the process lives, but the panic is still a bug — count
			// and log it like one the HTTP middleware caught.
			s.metrics.Counter("dp_panics_total", "site", "aggregation").Inc()
			s.event(qlog.Error, "panic_recovered",
				qlog.F("site", "aggregation"),
				qlog.F("analyst", req.Analyst),
				qlog.F("dataset", req.Dataset),
				qlog.F("query", req.Query),
				qlog.F("error", err.Error()))
		}
		charged := d.policy.SpentBy(req.Analyst) - spentBefore
		entry.Outcome = auditOutcome(err)
		entry.Charged = charged
		s.recordAudit(entry)
		tr.SetLabel("outcome", entry.Outcome)
		s.traces.Add(tr.Finish())
		status, ae := classify(err, finiteOrUnlimited(d.policy.RemainingFor(req.Analyst)), charged)
		cacheable := !(entry.Outcome == "canceled" && charged == 0)
		done.outcome, done.status, done.charged, done.profile = entry.Outcome, status, charged, prof.Profile()
		s.finishQuery(done)
		return status, marshalError(v1, ae), cacheable
	}
	resp.Spent = d.policy.SpentBy(req.Analyst)
	resp.Remaining = finiteOrUnlimited(d.policy.RemainingFor(req.Analyst))
	entry.Outcome = "ok"
	entry.Charged = resp.Spent - spentBefore
	s.recordAudit(entry)
	tr.SetLabel("outcome", entry.Outcome)
	span := tr.Finish()
	s.traces.Add(span)
	if req.Trace {
		resp.Trace = span
	}
	done.outcome, done.status, done.charged, done.profile = entry.Outcome, http.StatusOK, entry.Charged, prof.Profile()
	s.finishQuery(done)
	if explain {
		resp.Profile = done.profile.Redact()
	}
	return http.StatusOK, marshalJSON(resp), true
}

// marshalJSON renders a success body exactly as writeJSON would,
// with the trailing newline json.Encoder emits.
func marshalJSON(v any) []byte {
	b, _ := json.Marshal(v)
	return append(b, '\n')
}

// runQuery dispatches one packet-trace query. Most kinds filter and
// derive through the materializing operators; the sketch-backed kinds
// (lenquantile, srcfreq, distinctsrc) run the request filter through
// the fused streaming path instead — same results and ε-charges, one
// pass and no intermediate slices, visible as "fused" strategy rows in
// the execution profile.
func runQuery(q *core.Queryable[trace.Packet], req *QueryRequest) (*QueryResponse, error) {
	match := func(p trace.Packet) bool { return req.Filter.Match(&p) }

	switch req.Query {
	case "lenquantile":
		fraction := req.Fraction
		if fraction == 0 {
			fraction = 0.5
		}
		st := q.Stream().Where(match)
		v, err := core.StreamNoisyQuantile(st, req.Epsilon, fraction, req.SketchEps,
			func(p trace.Packet) float64 { return float64(p.Len) })
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}}, nil

	case "srcfreq":
		if req.Key == "" {
			return nil, fmt.Errorf(`srcfreq requires "key": the target source IP, e.g. "10.0.0.1"`)
		}
		st := q.Stream().Where(match)
		v, err := core.StreamNoisyFrequency(st, req.Epsilon,
			func(p trace.Packet) string { return p.SrcIP.String() }, req.Key)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "distinctsrc":
		st := q.Stream().Where(match)
		v, err := core.StreamNoisyDistinctSketch(st, req.Epsilon,
			func(p trace.Packet) string { return p.SrcIP.String() })
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil
	}

	filtered := core.WhereRecorded(q, match)
	switch req.Query {
	case "count":
		v, err := filtered.NoisyCount(req.Epsilon)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "hosts":
		minBytes := req.MinBytes
		if minBytes <= 0 {
			minBytes = 1024
		}
		grouped := core.GroupBy(filtered, func(p trace.Packet) trace.IPv4 { return p.SrcIP })
		heavy := core.WhereRecorded(grouped, func(g core.Group[trace.IPv4, trace.Packet]) bool {
			total := 0
			for _, p := range g.Items {
				total += int(p.Len)
			}
			return total > minBytes
		})
		v, err := heavy.NoisyCount(req.Epsilon)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: 2 * noise.LaplaceStd(req.Epsilon)}, nil

	case "lencdf":
		step := req.BucketStep
		if step <= 0 {
			step = 16
		}
		buckets := packetdist.LengthBuckets(step)
		values, err := packetdist.PrivateLengthCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "portcdf":
		step := req.BucketStep
		if step <= 0 {
			step = 1024
		}
		buckets := packetdist.PortBuckets(step)
		values, err := packetdist.PrivatePortCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "medianlen":
		v, err := core.NoisyMedian(filtered, req.Epsilon, func(p trace.Packet) float64 { return float64(p.Len) })
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}}, nil

	case "rttcdf":
		step := req.BucketStep
		if step <= 0 {
			step = 10 // ms
		}
		buckets := toolkit.LinearBuckets(0, step, 64)
		values, err := flowstats.PrivateRTTCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets,
			NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "losscdf":
		step := req.BucketStep
		if step <= 0 {
			step = 25 // permille
		}
		buckets := toolkit.LinearBuckets(0, step, 41)
		values, err := flowstats.PrivateLossCDF(filtered, req.Epsilon, 10, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets,
			NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	default:
		return nil, fmt.Errorf("unknown query %q (%s)", req.Query, api.PacketQueryKindList())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
