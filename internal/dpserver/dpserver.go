// Package dpserver implements the paper's mediated-trace-analysis
// deployment model as an HTTP service: the data owner hosts raw
// traces, analysts submit declarative queries over the network, and
// only noisy aggregates ever leave — with per-analyst and total
// privacy budgets enforced by the §7 policy machinery.
//
// The wire protocol is JSON over HTTP (stdlib net/http only):
//
//	GET  /datasets              list datasets and budget state
//	GET  /budget?dataset=&analyst=   an analyst's remaining allowance
//	POST /query                 run one differentially-private query
//
// A query names the analyst (authentication is out of scope — wire it
// to your ingress), the dataset, the query kind, its ε, and optional
// record filters:
//
//	{"analyst":"alice","dataset":"hotspot","query":"hosts",
//	 "epsilon":0.1,"filter":{"dstPort":80},"minBytes":1024}
//
// Refused queries (budget exhausted) return 403 with the remaining
// allowance; they consume nothing, and the refusal is data-independent
// (unlike the bit-leakage schemes the paper critiques, it reveals only
// the analyst's own spending).
package dpserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"

	"dptrace/internal/analyses/flowstats"
	"dptrace/internal/analyses/packetdist"
	"dptrace/internal/core"
	"dptrace/internal/noise"
	"dptrace/internal/toolkit"
	"dptrace/internal/trace"
)

// Server hosts protected datasets behind the query API.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*dataset
	linkSets map[string]*linkDataset
	hopSets  map[string]*hopDataset
	src      noise.Source
	audit    *auditLog
}

type dataset struct {
	packets []trace.Packet
	policy  *core.AnalystPolicy
}

// New creates a server drawing noise from src (pass
// noise.NewCryptoSource() in production; tests use a seeded source).
func New(src noise.Source) *Server {
	return &Server{
		datasets: make(map[string]*dataset),
		linkSets: make(map[string]*linkDataset),
		hopSets:  make(map[string]*hopDataset),
		src:      noise.NewLockedSource(src),
		audit:    newAuditLog(0, nil),
	}
}

// AddPacketTrace registers a packet trace under name with the given
// total and per-analyst privacy budgets.
func (s *Server) AddPacketTrace(name string, packets []trace.Packet, totalBudget, perAnalystBudget float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = &dataset{
		packets: packets,
		policy:  core.NewAnalystPolicy(totalBudget, perAnalystBudget),
	}
}

// Handler returns the HTTP handler for the query API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /budget", s.handleBudget)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /audit", s.handleAudit)
	mux.HandleFunc("POST /query/loadmatrix", s.handleLoadMatrix)
	mux.HandleFunc("POST /query/monitoravgs", s.handleMonitorAverages)
	return mux
}

// Filter restricts the packets a query sees. Zero-valued fields are
// inactive; ports use -1 in JSON to mean "any" but omitting them works
// too (pointers distinguish absent from zero).
type Filter struct {
	DstPort *int `json:"dstPort,omitempty"`
	SrcPort *int `json:"srcPort,omitempty"`
	MinLen  *int `json:"minLen,omitempty"`
	Proto   *int `json:"proto,omitempty"`
}

func (f *Filter) match(p *trace.Packet) bool {
	if f == nil {
		return true
	}
	if f.DstPort != nil && int(p.DstPort) != *f.DstPort {
		return false
	}
	if f.SrcPort != nil && int(p.SrcPort) != *f.SrcPort {
		return false
	}
	if f.MinLen != nil && int(p.Len) < *f.MinLen {
		return false
	}
	if f.Proto != nil && int(p.Proto) != *f.Proto {
		return false
	}
	return true
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"` // count, hosts, lencdf, portcdf, medianlen
	Epsilon float64 `json:"epsilon"`
	Filter  *Filter `json:"filter,omitempty"`
	// MinBytes applies to the hosts query (paper §2.3 threshold).
	MinBytes int `json:"minBytes,omitempty"`
	// BucketStep applies to the CDF queries.
	BucketStep int64 `json:"bucketStep,omitempty"`
}

// QueryResponse is the success body.
type QueryResponse struct {
	Values []float64 `json:"values"`
	// Buckets accompanies CDF queries: the upper edge of each value.
	Buckets []int64 `json:"buckets,omitempty"`
	// NoiseStd is the standard deviation of the added noise, public
	// knowledge the analyst uses to judge significance.
	NoiseStd float64 `json:"noiseStd"`
	// Spent and Remaining describe the analyst's budget after this
	// query. Remaining is -1 when the budget is unlimited (JSON has
	// no infinity).
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

// finiteOrUnlimited maps +Inf (an unlimited budget) to the JSON
// sentinel -1.
func finiteOrUnlimited(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// errorResponse is the failure body.
type errorResponse struct {
	Error     string  `json:"error"`
	Remaining float64 `json:"remaining,omitempty"`
}

// DatasetInfo describes one hosted dataset in GET /datasets.
type DatasetInfo struct {
	Name           string  `json:"name"`
	TotalSpent     float64 `json:"totalSpent"`
	TotalRemaining float64 `json:"totalRemaining"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		infos = append(infos, DatasetInfo{
			Name:           name,
			TotalSpent:     d.policy.TotalSpent(),
			TotalRemaining: finiteOrUnlimited(d.policy.TotalRemaining()),
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	analyst := r.URL.Query().Get("analyst")
	if name == "" || analyst == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "dataset and analyst are required"})
		return
	}
	d, ok := s.lookup(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown dataset %q", name)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"spent":     d.policy.SpentBy(analyst),
		"remaining": finiteOrUnlimited(d.policy.RemainingFor(analyst)),
	})
}

func (s *Server) lookup(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// jsonDecoder builds the strict decoder shared by the query handlers.
func jsonDecoder(r *http.Request) *json.Decoder {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := jsonDecoder(r).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.Analyst == "" || req.Dataset == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "analyst and dataset are required"})
		return
	}
	if req.Epsilon <= 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "epsilon must be positive"})
		return
	}
	d, ok := s.lookup(req.Dataset)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown dataset %q", req.Dataset)})
		return
	}

	q := core.NewQueryableFor(d.packets, d.policy.AgentFor(req.Analyst), s.src)
	filtered := q.Where(func(p trace.Packet) bool { return req.Filter.match(&p) })

	spentBefore := d.policy.SpentBy(req.Analyst)
	entry := AuditEntry{
		Analyst: req.Analyst, Dataset: req.Dataset,
		Query: req.Query, Epsilon: req.Epsilon,
	}
	resp, err := runQuery(filtered, &req)
	if err != nil {
		status := http.StatusBadRequest
		entry.Outcome = "error"
		if errors.Is(err, core.ErrBudgetExceeded) {
			status = http.StatusForbidden
			entry.Outcome = "refused"
		}
		s.audit.add(entry)
		writeJSON(w, status, errorResponse{
			Error:     err.Error(),
			Remaining: finiteOrUnlimited(d.policy.RemainingFor(req.Analyst)),
		})
		return
	}
	resp.Spent = d.policy.SpentBy(req.Analyst)
	resp.Remaining = finiteOrUnlimited(d.policy.RemainingFor(req.Analyst))
	entry.Outcome = "ok"
	entry.Charged = resp.Spent - spentBefore
	s.audit.add(entry)
	writeJSON(w, http.StatusOK, resp)
}

func runQuery(filtered *core.Queryable[trace.Packet], req *QueryRequest) (*QueryResponse, error) {
	switch req.Query {
	case "count":
		v, err := filtered.NoisyCount(req.Epsilon)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "hosts":
		minBytes := req.MinBytes
		if minBytes <= 0 {
			minBytes = 1024
		}
		grouped := core.GroupBy(filtered, func(p trace.Packet) trace.IPv4 { return p.SrcIP })
		heavy := grouped.Where(func(g core.Group[trace.IPv4, trace.Packet]) bool {
			total := 0
			for _, p := range g.Items {
				total += int(p.Len)
			}
			return total > minBytes
		})
		v, err := heavy.NoisyCount(req.Epsilon)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}, NoiseStd: 2 * noise.LaplaceStd(req.Epsilon)}, nil

	case "lencdf":
		step := req.BucketStep
		if step <= 0 {
			step = 16
		}
		buckets := packetdist.LengthBuckets(step)
		values, err := packetdist.PrivateLengthCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "portcdf":
		step := req.BucketStep
		if step <= 0 {
			step = 1024
		}
		buckets := packetdist.PortBuckets(step)
		values, err := packetdist.PrivatePortCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets, NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "medianlen":
		v, err := core.NoisyMedian(filtered, req.Epsilon, func(p trace.Packet) float64 { return float64(p.Len) })
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: []float64{v}}, nil

	case "rttcdf":
		step := req.BucketStep
		if step <= 0 {
			step = 10 // ms
		}
		buckets := toolkit.LinearBuckets(0, step, 64)
		values, err := flowstats.PrivateRTTCDF(filtered, req.Epsilon, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets,
			NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	case "losscdf":
		step := req.BucketStep
		if step <= 0 {
			step = 25 // permille
		}
		buckets := toolkit.LinearBuckets(0, step, 41)
		values, err := flowstats.PrivateLossCDF(filtered, req.Epsilon, 10, buckets)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Values: values, Buckets: buckets,
			NoiseStd: noise.LaplaceStd(req.Epsilon)}, nil

	default:
		return nil, fmt.Errorf("unknown query %q (count, hosts, lencdf, portcdf, medianlen, rttcdf, losscdf)", req.Query)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
