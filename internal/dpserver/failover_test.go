package dpserver

// Kill-the-primary failover: the PR's acceptance harness. A primary
// with a synchronous follower (MinSync 1) takes a concurrent storm of
// keyed queries, dies abruptly mid-storm, and the follower is
// promoted. The claims under test are the replication contract's:
//
//   - Zero budget drift: every client-ACKed ε exists on the new
//     primary (a 200 was only ever written after the follower acked
//     the charge durably), and no charge exists twice.
//   - dpledger-diff clean: the two ledger directories are
//     byte-identical up to the killed primary's un-acked tail.
//   - Idempotent replays return byte-identical bodies across the
//     failover, at zero additional ε.
//   - The promoted node serves new spends at exactly the replayed
//     refusal boundary, under a bumped fencing epoch.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dptrace/internal/dpserver/api"
	"dptrace/internal/ledger"
	"dptrace/internal/noise"
)

// failoverDur bounds the TestFailoverStorm soak. The default keeps
// `go test` fast; check.sh smokes ~3s and `make chaos` soaks 30s.
var failoverDur = flag.Duration("failoverdur", 2*time.Second, "wall-clock budget for TestFailoverStorm")

// failoverPair is a primary+standby pair over separate ledger
// directories, both hosting "hotspot".
type failoverPair struct {
	dirA, dirB string
	ledA, ledB *ledger.Ledger
	sA, sB     *Server
	tsA, tsB   *httptest.Server
}

func newFailoverPair(t *testing.T, seed uint64) *failoverPair {
	t.Helper()
	p := &failoverPair{dirA: t.TempDir(), dirB: t.TempDir()}

	var err error
	p.ledA, err = ledger.Open(ledger.Options{Dir: p.dirA, Fsync: ledger.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.ledA.Close() })
	p.sA = New(noise.NewSeededSource(seed, seed+1), WithLedger(p.ledA))
	if err := p.sA.AddPacketTrace("hotspot", restartTrace(), math.Inf(1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.sA.StartReplication(ReplicationConfig{
		Listen: ln, MinSync: 1, AckTimeout: 10 * time.Second, Name: "a",
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.sA.CloseReplication)
	p.tsA = httptest.NewServer(p.sA.Handler())
	t.Cleanup(p.tsA.Close)

	p.ledB, err = ledger.Open(ledger.Options{Dir: p.dirB, Fsync: ledger.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.ledB.Close() })
	p.sB = New(noise.NewSeededSource(seed+2, seed+3), WithLedger(p.ledB))
	// The follower starts replicating BEFORE hosting the trace: its
	// registration arrives through the stream as the primary's bytes.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.sB.StartReplication(ReplicationConfig{
		Follow: ln.Addr().String(), Listen: lnB, Name: "b",
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.sB.CloseReplication)
	if err := p.sB.AddPacketTrace("hotspot", restartTrace(), math.Inf(1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	p.tsB = httptest.NewServer(p.sB.Handler())
	t.Cleanup(p.tsB.Close)

	// Wait for the follower to catch the registration backlog.
	waitFor(t, 5*time.Second, func() bool {
		st := getReady(t, p.tsB)
		return st.Repl != nil && st.Repl.Connected && st.Repl.LagSeq == 0
	}, "follower catch-up")
	return p
}

func getReady(t *testing.T, ts *httptest.Server) *api.ReadyStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs api.ReadyStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	return &rs
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ackedQuery is one 200-acknowledged keyed query: the request that
// earned it and the exact response bytes the client holds.
type ackedQuery struct {
	req  QueryRequest
	body []byte
}

// failoverCycle runs one full kill-the-primary failover and returns
// the storm's acked queries. Assertions happen inside.
func failoverCycle(t *testing.T, seed uint64) {
	const epsilon = 0.01
	p := newFailoverPair(t, seed)

	// The storm: workers hammer the primary with keyed count queries
	// until the kill. Only 200 responses count as acked.
	const workers = 6
	var (
		mu    sync.Mutex
		acked []ackedQuery
		wg    sync.WaitGroup
		stop  = make(chan struct{})
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := QueryRequest{
					Analyst: fmt.Sprintf("analyst-%d", g), Dataset: "hotspot",
					Query: "count", Epsilon: epsilon,
					IdempotencyKey: fmt.Sprintf("storm-%d-%d-%d", seed, g, i),
				}
				resp, body, err := tryPostV1(p.tsA.URL+"/v1/query", req)
				if err != nil {
					// The kill in progress: connection refused/reset.
					return
				}
				if resp.StatusCode == http.StatusOK {
					mu.Lock()
					acked = append(acked, ackedQuery{req: req, body: body})
					mu.Unlock()
				}
			}
		}(g)
	}

	// Let the storm land some charges, then kill the primary
	// abruptly: in-flight connections die, the replication stream
	// dies, nothing is drained.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acked) >= 10
	}, "storm to land acked charges")
	close(stop)
	p.tsA.CloseClientConnections()
	p.sA.CloseReplication()
	wg.Wait()
	p.tsA.Close()
	mu.Lock()
	ackedFinal := append([]ackedQuery(nil), acked...)
	mu.Unlock()

	// Promote the standby over HTTP — the operator's path.
	resp, body, err := tryPostV1(p.tsB.URL+"/v1/admin/promote", struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", resp.StatusCode, body)
	}
	var pr api.PromoteResult
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Role != "primary" || pr.Epoch == 0 {
		t.Fatalf("promote result %+v, want role=primary epoch>0", pr)
	}
	if st := getReady(t, p.tsB); !st.Ready || st.Role != "primary" {
		t.Fatalf("post-promote readyz %+v, want ready primary", st)
	}

	// Diff the two directories at the runbook moment (before the new
	// primary takes new writes): the follower's history must be a
	// byte-identical prefix of the killed primary's — divergence here
	// would mean the ledgers disagree about a shared seq.
	p.ledA.Close() // release A for offline replay
	r, err := ledger.Diff(p.dirA, p.dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("ledgers diverged at seq %d:\n  A: %s\n  B: %s",
			r.Diverged.Seq, r.Diverged.A, r.Diverged.B)
	}
	if r.OnlyB != 0 {
		t.Fatalf("follower holds %d events the primary never journaled", r.OnlyB)
	}

	// Zero budget drift: every client-ACKed ε exists on the new
	// primary. (B may hold MORE — charges whose responses died with
	// the kill — which is the conservative direction.)
	stB, _, err := ledger.Replay(p.dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	ackedPer := map[string]float64{}
	for _, a := range ackedFinal {
		ackedPer[a.req.Analyst] += epsilon
	}
	ds := stB.Datasets["hotspot"]
	if ds == nil {
		t.Fatal("new primary lost the dataset")
	}
	for analyst, want := range ackedPer {
		if got := ds.Spent[analyst]; got < want-1e-9 {
			t.Fatalf("budget drift: %s acked %v but new primary holds %v", analyst, want, got)
		}
	}

	// Idempotent replays cross the failover byte-identically, at zero
	// additional ε: replay every acked key against the new primary
	// and compare bodies, then check the spend did not move.
	spentBefore := ds.TotalSpent
	for _, a := range ackedFinal {
		resp, body, err := tryPostV1(p.tsB.URL+"/v1/query", a.req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay of %s: status %d: %s", a.req.IdempotencyKey, resp.StatusCode, body)
		}
		if string(body) != string(a.body) {
			t.Fatalf("replay of %s not byte-identical:\n  acked:  %s\n  replay: %s",
				a.req.IdempotencyKey, a.body, body)
		}
	}
	if got := p.sB.datasets["hotspot"].policy.TotalSpent(); math.Abs(got-spentBefore) > 1e-9 {
		t.Fatalf("idempotent replays moved the spend: %v -> %v", spentBefore, got)
	}

	// The promoted primary accepts NEW spends from the replayed
	// boundary onward.
	fresh := QueryRequest{
		Analyst: "analyst-0", Dataset: "hotspot", Query: "count", Epsilon: epsilon,
		IdempotencyKey: fmt.Sprintf("post-%d", seed),
	}
	resp, body, err = tryPostV1(p.tsB.URL+"/v1/query", fresh)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh spend on promoted primary: status %d: %s", resp.StatusCode, body)
	}
	if got := p.sB.datasets["hotspot"].policy.TotalSpent(); math.Abs(got-(spentBefore+epsilon)) > 1e-9 {
		t.Fatalf("fresh spend: total %v, want %v", got, spentBefore+epsilon)
	}
	if got := p.ledB.Epoch(); got != pr.Epoch {
		t.Fatalf("ledger epoch %d, want promoted epoch %d", got, pr.Epoch)
	}
}

// tryPostV1 is postV1 without t.Fatal on transport errors — the storm
// must survive the kill it is part of.
func tryPostV1(url string, body any) (*http.Response, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, out, nil
}

// TestKillPrimaryFailover is the single-cycle acceptance test: one
// storm, one kill, one promotion, all invariants checked.
func TestKillPrimaryFailover(t *testing.T) {
	failoverCycle(t, 42)
}

// TestFailoverStorm soaks the cycle with fresh seeds until the
// -failoverdur budget runs out (check.sh smokes ~3s; `make chaos`
// runs 30s).
func TestFailoverStorm(t *testing.T) {
	deadline := time.Now().Add(*failoverDur)
	rounds := 0
	for seed := uint64(100); rounds == 0 || time.Now().Before(deadline); seed++ {
		rounds++
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			failoverCycle(t, seed)
		})
		if t.Failed() {
			t.Fatalf("failover invariant violated in round %d", rounds)
		}
	}
	t.Logf("failover storm: %d rounds clean in %v", rounds, *failoverDur)
}
