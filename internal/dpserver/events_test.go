package dpserver

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dptrace/internal/ledger"
	"dptrace/internal/noise"
	"dptrace/internal/obs"
	"dptrace/internal/obs/qlog"
	"dptrace/internal/tracegen"
)

// eventsNamed filters a server's recent events by name, oldest last
// (Recent returns newest first).
func eventsNamed(s *Server, name string) []qlog.Event {
	var out []qlog.Event
	for _, e := range s.Events().Recent(0) {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// fieldValue extracts one field from an event (nil if absent).
func fieldValue(e qlog.Event, key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return nil
}

// TestQueryWideEventInvariant is the PR's acceptance test: every
// completed budget-spending request emits exactly ONE "query" wide
// event, carrying the operator-tree execution profile, and the events
// are retrievable through GET /debug/queries.
func TestQueryWideEventInvariant(t *testing.T) {
	s := New(noise.NewSeededSource(1, 2))
	if err := s.AddPacketTrace("hotspot", restartTrace(), 2.0, 1.0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three spending requests with three outcomes: ok, refused (over
	// the per-analyst cap), and error (unknown query kind).
	for _, req := range []QueryRequest{
		{Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.5},
		{Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 5.0},
		{Analyst: "alice", Dataset: "hotspot", Query: "nonsense", Epsilon: 0.1},
	} {
		postV1(t, ts.URL+"/v1/query", req, nil)
	}

	events := eventsNamed(s, "query")
	if len(events) != 3 {
		t.Fatalf("got %d query events, want exactly 3 (one per spending request)", len(events))
	}
	outcomes := map[string]bool{}
	for _, e := range events {
		outcomes[fieldValue(e, "outcome").(string)] = true
	}
	for _, want := range []string{"ok", "refused", "error"} {
		if !outcomes[want] {
			t.Errorf("no query event with outcome %q (got %v)", want, outcomes)
		}
	}

	// The newest-first ring: events[2] is the successful query. Its
	// profile must hold the operator tree (the where row) and the
	// aggregation's ε accounting.
	okEvent := events[2]
	if got := fieldValue(okEvent, "charged_epsilon").(float64); got != 0.5 {
		t.Errorf("charged_epsilon = %v, want 0.5", got)
	}
	prof, ok := fieldValue(okEvent, "profile").(*obs.Profile)
	if !ok {
		t.Fatalf("profile field is %T, want *obs.Profile", fieldValue(okEvent, "profile"))
	}
	if len(prof.Ops) == 0 || prof.Ops[0].Op != "where" {
		t.Fatalf("profile ops = %+v, want the where row first", prof.Ops)
	}
	if prof.Ops[0].RecordsIn != 64 {
		t.Errorf("owner-side profile records_in = %v, want 64 (unredacted)", prof.Ops[0].RecordsIn)
	}
	if len(prof.Aggs) != 1 || prof.Aggs[0].EpsilonCharged != 0.5 {
		t.Errorf("profile aggs = %+v, want one count row charging 0.5", prof.Aggs)
	}

	// The same events come back over GET /debug/queries.
	resp, err := http.Get(ts.URL + "/v1/debug/queries?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fetched []qlog.Event
	if err := json.NewDecoder(resp.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 3 {
		t.Fatalf("GET /debug/queries?n=3 returned %d events", len(fetched))
	}
	// Decoded field values are generic JSON; the profile must survive
	// the trip with its operator rows intact.
	profAny, ok := fieldValue(fetched[2], "profile").(map[string]any)
	if !ok {
		t.Fatalf("fetched profile is %T", fieldValue(fetched[2], "profile"))
	}
	if ops, ok := profAny["ops"].([]any); !ok || len(ops) == 0 {
		t.Fatalf("fetched profile has no ops: %v", profAny)
	}
}

// TestWideEventPerEndpoint extends the one-event invariant to the
// other two spending endpoints.
func TestWideEventPerEndpoint(t *testing.T) {
	gen := tracegen.DefaultScatterConfig()
	gen.IPsPerCluster = 10
	gen.Clusters = 2
	gen.Monitors = 4
	records, _ := tracegen.IPScatter(gen)
	s := New(noise.NewSeededSource(3, 4))
	if err := s.AddHopTrace("hops", records, gen.Monitors, math.Inf(1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postV1(t, ts.URL+"/v1/query/monitoravgs", HopAveragesRequest{
		Analyst: "alice", Dataset: "hops", Epsilon: 0.5, MaxHops: 32,
	}, nil)

	events := eventsNamed(s, "query")
	if len(events) != 1 {
		t.Fatalf("got %d query events, want 1", len(events))
	}
	if ep := fieldValue(events[0], "endpoint"); ep != "/query/monitoravgs" {
		t.Errorf("endpoint = %v", ep)
	}
	prof := fieldValue(events[0], "profile").(*obs.Profile)
	if len(prof.Ops) == 0 || len(prof.Aggs) == 0 {
		t.Errorf("monitoravgs profile empty: %+v", prof)
	}
}

// TestSlowQueryBoundary pins the threshold comparison: a query landing
// exactly ON the threshold is slow (>=), one below is not, and zero
// disables the log entirely.
func TestSlowQueryBoundary(t *testing.T) {
	for _, tc := range []struct {
		d, threshold time.Duration
		want         bool
	}{
		{d: 5 * time.Millisecond, threshold: 0, want: false},
		{d: time.Hour, threshold: 0, want: false},
		{d: 4 * time.Millisecond, threshold: 5 * time.Millisecond, want: false},
		{d: 5*time.Millisecond - time.Nanosecond, threshold: 5 * time.Millisecond, want: false},
		{d: 5 * time.Millisecond, threshold: 5 * time.Millisecond, want: true},
		{d: 5*time.Millisecond + time.Nanosecond, threshold: 5 * time.Millisecond, want: true},
	} {
		if got := slowQuery(tc.d, tc.threshold); got != tc.want {
			t.Errorf("slowQuery(%v, %v) = %v, want %v", tc.d, tc.threshold, got, tc.want)
		}
	}
}

// TestSlowQueryEvent drives the threshold end to end: a query delayed
// past Limits.SlowQuery emits the warning event, a fast one does not.
func TestSlowQueryEvent(t *testing.T) {
	s := New(noise.NewSeededSource(1, 2), WithLimits(Limits{SlowQuery: 2 * time.Millisecond}))
	if err := s.AddPacketTrace("hotspot", restartTrace(), math.Inf(1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	var delay time.Duration
	s.execHook = func(context.Context) { time.Sleep(delay) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	delay = 0
	postV1(t, ts.URL+"/v1/query", QueryRequest{
		Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.1}, nil)
	if n := len(eventsNamed(s, "slow_query")); n != 0 {
		t.Fatalf("fast query emitted %d slow_query events", n)
	}

	delay = 10 * time.Millisecond
	postV1(t, ts.URL+"/v1/query", QueryRequest{
		Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.1}, nil)
	slow := eventsNamed(s, "slow_query")
	if len(slow) != 1 {
		t.Fatalf("slow query emitted %d slow_query events, want 1", len(slow))
	}
	if e := slow[0]; e.Level != qlog.Warn || fieldValue(e, "query") != "count" {
		t.Errorf("slow_query event = %+v", e)
	}
	if ms := fieldValue(slow[0], "duration_ms").(float64); ms < 2 {
		t.Errorf("slow_query duration_ms = %v, want >= threshold", ms)
	}
	// The slow query still emitted exactly one wide event per request.
	if n := len(eventsNamed(s, "query")); n != 2 {
		t.Errorf("got %d query events for 2 requests", n)
	}
}

// explainLedgerServer builds one ledger-backed seeded server for the
// ε-parity test below.
func explainLedgerServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	led, err := ledger.Open(ledger.Options{Dir: dir, Fsync: ledger.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	s := New(noise.NewSeededSource(7, 11), WithLedger(led))
	if err := s.AddPacketTrace("hotspot", restartTrace(), 2.0, 1.0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestExplainZeroEpsilonParity is the acceptance test for X-DP-Explain:
// two identically-seeded ledger-backed servers run the same queries,
// one with the explain header on every request. The explained run must
// return the profile, charge identical ε, and leave a byte-identical
// ledger tail (modulo append timestamps) — proving explain costs
// nothing and touches no accounting.
func TestExplainZeroEpsilonParity(t *testing.T) {
	dirPlain, dirExplain := t.TempDir(), t.TempDir()
	_, tsPlain := explainLedgerServer(t, dirPlain)
	_, tsExplain := explainLedgerServer(t, dirExplain)

	reqs := []QueryRequest{
		{Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.3},
		{Analyst: "alice", Dataset: "hotspot", Query: "hosts", Epsilon: 0.2, MinBytes: 10},
		{Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 9.0}, // refused
	}
	explainHdr := map[string]string{ExplainHeader: "true"}
	var lastPlain, lastExplain QueryResponse
	for _, req := range reqs {
		respP, bodyP := postV1(t, tsPlain.URL+"/v1/query", req, nil)
		respE, bodyE := postV1(t, tsExplain.URL+"/v1/query", req, explainHdr)
		if respP.StatusCode != respE.StatusCode {
			t.Fatalf("status diverged: %d vs %d", respP.StatusCode, respE.StatusCode)
		}
		if respP.StatusCode == http.StatusOK {
			if err := json.Unmarshal(bodyP, &lastPlain); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(bodyE, &lastExplain); err != nil {
				t.Fatal(err)
			}
			if lastPlain.Spent != lastExplain.Spent {
				t.Fatalf("spent diverged: %v vs %v", lastPlain.Spent, lastExplain.Spent)
			}
			if lastPlain.Values[0] != lastExplain.Values[0] {
				t.Fatalf("values diverged: %v vs %v (same seed, same noise draws)", lastPlain.Values[0], lastExplain.Values[0])
			}
		}
	}

	// The explained responses carry the redacted profile; plain ones
	// carry none.
	if lastPlain.Profile != nil {
		t.Error("plain response unexpectedly has a profile")
	}
	p := lastExplain.Profile
	if p == nil {
		t.Fatal("explain response has no profile")
	}
	if !p.Redacted {
		t.Error("explain profile not redacted")
	}
	for _, op := range p.Ops {
		if op.RecordsIn != 0 || op.RecordsOut != 0 {
			t.Errorf("explain profile leaked record counts: %+v (§S31)", op)
		}
	}
	if len(p.Aggs) == 0 || p.TotalCharged() == 0 {
		t.Errorf("explain profile lost ε accounting: %+v", p.Aggs)
	}

	// The ledger tails are byte-identical once append timestamps are
	// normalized: explain produced not one extra or different event.
	normalize := func(dir string) []string {
		var lines []string
		if err := ledger.Events(dir, func(ev ledger.Event) error {
			ev.Time = 0
			b, err := json.Marshal(ev)
			lines = append(lines, string(b))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	plainTail, explainTail := normalize(dirPlain), normalize(dirExplain)
	if len(plainTail) != len(explainTail) {
		t.Fatalf("ledger event counts diverged: %d vs %d", len(plainTail), len(explainTail))
	}
	for i := range plainTail {
		if plainTail[i] != explainTail[i] {
			t.Fatalf("ledger tails diverged at event %d:\n  plain:   %s\n  explain: %s",
				i, plainTail[i], explainTail[i])
		}
	}
}

// TestShedAndReplayEvents covers the remaining lifecycle event types:
// a shed under overload, a drain pair on Shutdown, and an idempotent
// replay event on a cache hit.
func TestShedAndReplayEvents(t *testing.T) {
	s := New(noise.NewSeededSource(1, 2))
	if err := s.AddPacketTrace("hotspot", restartTrace(), math.Inf(1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	keyed := QueryRequest{Analyst: "alice", Dataset: "hotspot", Query: "count",
		Epsilon: 0.1, IdempotencyKey: "replay-me"}
	postV1(t, ts.URL+"/v1/query", keyed, nil)
	postV1(t, ts.URL+"/v1/query", keyed, nil) // replayed from cache
	if n := len(eventsNamed(s, "query")); n != 1 {
		t.Errorf("replay re-executed: %d query events, want 1", n)
	}
	replays := eventsNamed(s, "query_replayed")
	if len(replays) != 1 {
		t.Fatalf("got %d query_replayed events, want 1", len(replays))
	}
	if a := fieldValue(replays[0], "analyst"); a != "alice" {
		t.Errorf("replay analyst = %v", a)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	postV1(t, ts.URL+"/v1/query", QueryRequest{
		Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.1}, nil)
	if n := len(eventsNamed(s, "drain_started")); n != 1 {
		t.Errorf("drain_started events = %d, want 1", n)
	}
	if n := len(eventsNamed(s, "drain_completed")); n != 1 {
		t.Errorf("drain_completed events = %d, want 1", n)
	}
	sheds := eventsNamed(s, "query_shed")
	if len(sheds) != 1 || fieldValue(sheds[0], "reason") != "shutting_down" {
		t.Errorf("query_shed events = %+v, want one shutting_down shed", sheds)
	}
}

// TestAnalystBudgetTelemetry checks the two new series: the per-query
// ε histogram and the per-analyst burn-rate gauge.
func TestAnalystBudgetTelemetry(t *testing.T) {
	s := New(noise.NewSeededSource(1, 2))
	if err := s.AddPacketTrace("hotspot", restartTrace(), 4.0, 2.0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		postV1(t, ts.URL+"/v1/query", QueryRequest{
			Analyst: "alice", Dataset: "hotspot", Query: "count", Epsilon: 0.5}, nil)
	}

	snap := s.Metrics().Snapshot()
	var sawHist, sawGauge bool
	for _, h := range snap.Histograms {
		if h.Name == "dp_query_epsilon" && h.Labels["analyst"] == "alice" && h.Labels["dataset"] == "hotspot" {
			sawHist = true
			if h.Count != 2 {
				t.Errorf("dp_query_epsilon count = %d, want 2", h.Count)
			}
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == "dp_analyst_budget_spent_ratio" && g.Labels["analyst"] == "alice" {
			sawGauge = true
			if math.Abs(g.Value-0.5) > 1e-9 { // spent 1.0 of a 2.0 cap
				t.Errorf("spent ratio = %v, want 0.5", g.Value)
			}
		}
	}
	if !sawHist {
		t.Error("dp_query_epsilon{analyst=alice} histogram not registered")
	}
	if !sawGauge {
		t.Error("dp_analyst_budget_spent_ratio{analyst=alice} gauge not registered")
	}
}
